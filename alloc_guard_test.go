package hsfq_test

import (
	"fmt"
	"strings"
	"testing"

	"hsfq/internal/checkpoint"
	"hsfq/internal/core"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// These tests pin down the PR's zero-allocation property: once a hierarchy
// is built and its threads have been seen once, the scheduling spine —
// Structure.Pick, Quantum, Charge, and the Enqueue/Charge(false) block
// cycle — performs no heap allocations and no map lookups per decision.
// A regression here (a map access growing back into the hot path, an
// interface conversion that boxes, a heap operation that reallocates)
// shows up as a non-zero AllocsPerRun.

// buildThreeLevelTree returns the Fig. 2-shaped structure used by the
// guards: root -> {rt, be} -> be/{u1, u2}, SFQ leaves, two threads per
// leaf, all runnable.
func buildThreeLevelTree(t testing.TB) (*core.Structure, []*sched.Thread) {
	s := core.NewStructure()
	mk := func(path string, w float64, leaf sched.Scheduler) core.NodeID {
		id, err := s.MknodPath(path, w, leaf)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	leaves := []core.NodeID{
		mk("/rt", 1, sched.NewSFQ(10*sim.Millisecond)),
		mk("/be/u1", 2, sched.NewSFQ(10*sim.Millisecond)),
		mk("/be/u2", 3, sched.NewSFQ(10*sim.Millisecond)),
	}
	var threads []*sched.Thread
	for i, id := range leaves {
		for j := 0; j < 2; j++ {
			th := sched.NewThread(i*2+j+1, fmt.Sprintf("t%d", i*2+j+1), float64(j+1))
			if err := s.Attach(th, id); err != nil {
				t.Fatal(err)
			}
			s.Enqueue(th, 0)
			threads = append(threads, th)
		}
	}
	return s, threads
}

// TestPickChargeDoesNotAllocate guards the steady-state decision cycle:
// Pick -> Quantum -> Charge(runnable) on a 3-level hierarchy with SFQ at
// every level.
func TestPickChargeDoesNotAllocate(t *testing.T) {
	s, _ := buildThreeLevelTree(t)
	now := sim.Time(0)
	// Warm caches: every thread picked and charged at least once.
	for i := 0; i < 32; i++ {
		th := s.Pick(now)
		s.Charge(th, 1_000_000, now, true)
		now += sim.Millisecond
	}
	allocs := testing.AllocsPerRun(1000, func() {
		th := s.Pick(now)
		_ = s.Quantum(th, now)
		s.Charge(th, 1_000_000, now, true)
		now += sim.Millisecond
	})
	if allocs != 0 {
		t.Fatalf("Pick/Quantum/Charge allocates %v times per decision, want 0", allocs)
	}
}

// TestBlockWakeCycleDoesNotAllocate guards the sleep/wake edge: a thread
// blocking (Charge runnable=false, emptying its leaf and walking the
// hsfq_sleep path) and re-entering (Enqueue, the hsfq_setrun walk).
func TestBlockWakeCycleDoesNotAllocate(t *testing.T) {
	s, _ := buildThreeLevelTree(t)
	now := sim.Time(0)
	for i := 0; i < 32; i++ {
		th := s.Pick(now)
		s.Charge(th, 1_000_000, now, true)
		now += sim.Millisecond
	}
	allocs := testing.AllocsPerRun(1000, func() {
		th := s.Pick(now)
		s.Charge(th, 1_000_000, now, false)
		now += sim.Millisecond
		s.Enqueue(th, now)
	})
	if allocs != 0 {
		t.Fatalf("block/wake cycle allocates %v times per cycle, want 0", allocs)
	}
}

// TestLeafSchedulersDoNotAllocate guards the flat hot path of every
// heap-based leaf algorithm (the randomized and queue-rotating ones — rr,
// lottery, svr4 — are excluded: their hot paths involve slice rotation or
// RNG state by design).
func TestLeafSchedulersDoNotAllocate(t *testing.T) {
	algos := map[string]sched.Scheduler{
		"sfq":      sched.NewSFQ(10 * sim.Millisecond),
		"edf":      sched.NewEDF(10 * sim.Millisecond),
		"rm":       sched.NewRM(10 * sim.Millisecond),
		"priority": sched.NewPriority(10 * sim.Millisecond),
		"stride":   sched.NewStride(10 * sim.Millisecond),
		"eevdf":    sched.NewEEVDF(10*sim.Millisecond, 1_000_000),
		"reserves": sched.NewReserves(10 * sim.Millisecond),
		"mlfq":     sched.NewMLFQ(4, 10*sim.Millisecond, sim.Second, 100_000_000),
		"drr":      sched.NewDRR(10*sim.Millisecond, 100_000_000),
	}
	for name, s := range algos {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 8; i++ {
				th := sched.NewThread(i+1, "t", float64(i%3+1))
				th.Period = sim.Time(i+1) * 10 * sim.Millisecond
				s.Enqueue(th, 0)
			}
			now := sim.Time(0)
			for i := 0; i < 16; i++ {
				th := s.Pick(now)
				s.Charge(th, 1_000_000, now, true)
				now += sim.Millisecond
			}
			allocs := testing.AllocsPerRun(1000, func() {
				th := s.Pick(now)
				s.Charge(th, 1_000_000, now, true)
				now += sim.Millisecond
			})
			if allocs != 0 {
				t.Fatalf("%s Pick/Charge allocates %v times per decision, want 0", name, allocs)
			}
		})
	}
}

// TestNewLeafSaveStateDoesNotAllocate guards the warm SaveState path of
// the PR's two new leaves directly: after one cold save has grown the
// scratch slices and the encoder buffer, snapshotting a live mlfq or drr
// runnable set allocates nothing, matching the discipline the other
// leaves established (they are covered through TestSnapshotDoesNotAllocate
// and the checkpoint grid).
func TestNewLeafSaveStateDoesNotAllocate(t *testing.T) {
	leaves := map[string]sched.Scheduler{
		"mlfq": sched.NewMLFQ(4, 10*sim.Millisecond, 100*sim.Millisecond, 100_000_000),
		"drr":  sched.NewDRR(10*sim.Millisecond, 100_000_000),
	}
	for name, s := range leaves {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 6; i++ {
				th := sched.NewThread(i+1, "t", 1)
				s.Enqueue(th, 0)
			}
			now := sim.Time(0)
			for i := 0; i < 32; i++ {
				th := s.Pick(now)
				s.Charge(th, 1_000_000, now, true)
				now += sim.Millisecond
			}
			st := s.(sched.Stater)
			var enc sim.Enc
			if err := st.SaveState(&enc); err != nil { // cold: grows buffers
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(1000, func() {
				th := s.Pick(now)
				s.Charge(th, 1_000_000, now, true)
				now += sim.Millisecond
				enc.Reset()
				if err := st.SaveState(&enc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s warm SaveState allocates %v times per call, want 0", name, allocs)
			}
		})
	}
}

// TestSnapshotDoesNotAllocate guards the in-memory checkpoint path: once
// the encoder's buffer has grown to size (one cold Snapshot), repeated
// snapshots of a live mid-run simulation perform no heap allocations.
// This is what makes high-frequency checkpointing (hsfqdiff's grid,
// hsfqsim -checkpoint-every) free of GC pressure: the simulation's hot
// loop and the snapshot loop share a zero-allocation steady state.
func TestSnapshotDoesNotAllocate(t *testing.T) {
	cfg, err := simconfig.Parse(strings.NewReader(`{
	  "horizon": "5s",
	  "seed": 9,
	  "nodes": [
	    {"path": "/rt", "weight": 2, "leaf": "edf", "quantum": "5ms"},
	    {"path": "/be", "weight": 1, "leaf": "sfq", "quantum": "10ms"}
	  ],
	  "threads": [
	    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "40ms", "cost": "6ms"}},
	    {"name": "job", "leaf": "/be", "program": {"kind": "loop"}}
	  ],
	  "interrupts": [{"kind": "periodic", "period": "10ms", "service": "100us"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	step := 100 * sim.Millisecond
	until := step
	s.Machine.Run(until)

	var enc sim.Enc
	if err := checkpoint.Snapshot(s, &enc); err != nil { // cold: grows the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		until += step
		s.Machine.Run(until) // keep the state moving between snapshots
		enc.Reset()
		if err := checkpoint.Snapshot(s, &enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Snapshot allocates %v times per call, want 0", allocs)
	}
	if enc.Len() == 0 {
		t.Fatal("snapshot encoded nothing")
	}
}

// TestSpineStillAllocFreeAfterSnapshot checks snapshots do not poison the
// scheduling spine's zero-allocation property: interleaving a Snapshot
// with the Pick/Charge cycle leaves the cycle itself allocation-free.
func TestSpineStillAllocFreeAfterSnapshot(t *testing.T) {
	s, _ := buildThreeLevelTree(t)
	now := sim.Time(0)
	for i := 0; i < 32; i++ {
		th := s.Pick(now)
		s.Charge(th, 1_000_000, now, true)
		now += sim.Millisecond
	}
	var enc sim.Enc
	enc.Reset()
	s.SaveState(&enc) // exercise the structure's encoder mid-stream
	allocs := testing.AllocsPerRun(1000, func() {
		th := s.Pick(now)
		s.Charge(th, 1_000_000, now, true)
		now += sim.Millisecond
	})
	if allocs != 0 {
		t.Fatalf("Pick/Charge allocates %v times per decision after a snapshot, want 0", allocs)
	}
}

// TestEventQueuesDoNotAllocate guards the engine's event spine under both
// queue implementations: once the engine's event pool is warm, a
// schedule/fire cycle (After + Step) heap-allocates nothing — for the
// wheel, that pins Push, Min, Pop, and the intrusive bucket links as
// zero-alloc in steady state; for the heap, the PR-1 property is kept.
func TestEventQueuesDoNotAllocate(t *testing.T) {
	for _, kind := range sim.EventQueueNames() {
		t.Run(kind, func(t *testing.T) {
			q, err := sim.NewEventQueue(kind)
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngineWith(q)
			nop := func() {}
			// Warm the pool with a burst larger than any steady-state set.
			for i := 0; i < 64; i++ {
				eng.After(sim.Time(i%7)*sim.Microsecond, nop)
			}
			for eng.Step() {
			}
			allocs := testing.AllocsPerRun(1000, func() {
				// A mixed cycle: near-future, same-instant pair, and a spread
				// that walks wheel levels; then drain.
				eng.After(3*sim.Microsecond, nop)
				eng.After(time17ms, nop)
				eng.After(time17ms, nop)
				eng.After(time900ms, nop)
				for eng.Step() {
				}
			})
			if allocs != 0 {
				t.Fatalf("%s engine schedule/fire cycle allocates %v times, want 0", kind, allocs)
			}
		})
	}
}

// TestEventQueueCancelDoesNotAllocate guards the cancel path: scheduling
// and cancelling through either queue reuses pooled handles.
func TestEventQueueCancelDoesNotAllocate(t *testing.T) {
	for _, kind := range sim.EventQueueNames() {
		t.Run(kind, func(t *testing.T) {
			q, err := sim.NewEventQueue(kind)
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngineWith(q)
			nop := func() {}
			for i := 0; i < 64; i++ {
				eng.After(sim.Time(i)*sim.Microsecond, nop)
			}
			for eng.Step() {
			}
			allocs := testing.AllocsPerRun(1000, func() {
				a := eng.After(5*sim.Microsecond, nop)
				b := eng.After(time17ms, nop)
				eng.Cancel(b)
				eng.Cancel(a)
			})
			if allocs != 0 {
				t.Fatalf("%s schedule/cancel cycle allocates %v times, want 0", kind, allocs)
			}
		})
	}
}

// Durations for the alloc guards' mixed horizons, named so the closure
// does not capture computed locals.
const (
	time17ms  = 17 * sim.Millisecond
	time900ms = 900 * sim.Millisecond
)
