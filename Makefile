GO ?= go

# Benchmarks covered by `make bench` — the scheduling spine plus the packet
# algorithms. Output is benchstat-compatible (`benchstat old.txt new.txt`).
BENCH ?= BenchmarkSchedule|BenchmarkLeafSchedulers|BenchmarkMachineSimulation|BenchmarkPacketAlgorithms
BENCH_COUNT ?= 5
BENCH_TIME ?= 200ms

# Parallelism of the sweep-bench parallel leg and repetitions per leg
# (benchjson aggregates repeated lines by median).
SWEEP_BENCH_WORKERS ?= 8
SWEEP_BENCH_COUNT ?= 3

.PHONY: all build test race vet bench fmt check sweep-smoke sweep-bench

all: build test

check: build test vet sweep-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Includes the sweep engine's determinism-under-concurrency tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) .

# 16-job grid (2 quanta x 2 leaf kinds x 2 weights x 2 seeds), every job
# run twice (-verify) across 4 workers: exercises the sweep engine's
# determinism guarantee end to end on a real scenario.
sweep-smoke:
	$(GO) run ./cmd/hsfqsweep -spec examples/sweeps/smoke.json -workers 4 -verify -o "" -metrics share:dec,frames:dec

# Serial vs parallel wall clock of the full figure suite, recorded as
# BENCH_PR2.json (before = -workers 1, after = -workers $(SWEEP_BENCH_WORKERS)).
sweep-bench:
	$(GO) build -o /tmp/hsfq-experiments ./cmd/experiments
	rm -f /tmp/hsfq-bench-serial.txt /tmp/hsfq-bench-parallel.txt
	for i in $$(seq $(SWEEP_BENCH_COUNT)); do \
		/tmp/hsfq-experiments -all -workers 1 -benchout /tmp/hsfq-bench-serial.txt >/dev/null && \
		/tmp/hsfq-experiments -all -workers $(SWEEP_BENCH_WORKERS) -benchout /tmp/hsfq-bench-parallel.txt >/dev/null \
		|| exit 1; \
	done
	$(GO) run ./cmd/benchjson -before /tmp/hsfq-bench-serial.txt -after /tmp/hsfq-bench-parallel.txt -o BENCH_PR2.json
	cat BENCH_PR2.json
