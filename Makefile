GO ?= go

# Benchmarks covered by `make bench` — the scheduling spine plus the packet
# algorithms. Output is benchstat-compatible (`benchstat old.txt new.txt`).
BENCH ?= BenchmarkSchedule|BenchmarkLeafSchedulers|BenchmarkMachineSimulation|BenchmarkPacketAlgorithms
BENCH_COUNT ?= 5
BENCH_TIME ?= 200ms

# Parallelism of the sweep-bench parallel leg and repetitions per leg
# (benchjson aggregates repeated lines by median).
SWEEP_BENCH_WORKERS ?= 8
SWEEP_BENCH_COUNT ?= 3

# Load test shape: LOADTEST_N requests from LOADTEST_C goroutines against
# a daemon with queue depth LOADTEST_QUEUE — concurrency 4x the queue so
# shedding (429) actually happens and the retry path is exercised.
LOADTEST_N ?= 64
LOADTEST_C ?= 64
LOADTEST_QUEUE ?= 16
LOADTEST_WORKERS ?= 4

# Tenant smoke shape: the weighted leg splits TENANT_SMOKE_C client
# goroutines across the tenants for TENANT_SMOKE_DURATION per phase
# against TENANT_SMOKE_WORKERS daemon workers — few enough workers that
# the pool saturates and the SFQ tree decides dispatch order.
TENANT_SMOKE_C ?= 32
TENANT_SMOKE_WORKERS ?= 2
TENANT_SMOKE_DURATION ?= 3s

# Fuzz-smoke budget per target. Minimization is capped at one attempt so
# the whole budget is spent fuzzing, not shrinking interesting inputs.
FUZZ_TIME ?= 30s

# Benchtime for the bench-smoke event-queue comparison: short, because the
# smoke only needs a real sim_ns/wall_ns sample, not a stable median.
BENCH_SMOKE_TIME ?= 50ms

.PHONY: all build test race vet bench fmt check sweep-smoke sweep-bench loadtest tenant-smoke fuzz-smoke mesh-smoke checkpoint-smoke smp-smoke bench-smoke queue-bench adversary-smoke trace-smoke

all: build test

check: build test vet sweep-smoke tenant-smoke fuzz-smoke mesh-smoke checkpoint-smoke smp-smoke bench-smoke adversary-smoke trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Includes the sweep engine's determinism-under-concurrency tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) .

# 16-job grid (2 quanta x 2 leaf kinds x 2 weights x 2 seeds), every job
# run twice (-verify) across 4 workers: exercises the sweep engine's
# determinism guarantee end to end on a real scenario.
sweep-smoke:
	$(GO) run ./cmd/hsfqsweep -spec examples/sweeps/smoke.json -workers 4 -verify -o "" -metrics share:dec,frames:dec

# Build hsfqd and fire concurrent mixed hit/miss traffic at it: zero 5xx,
# 429 only as shedding, byte-identical cached bodies, clean SIGTERM drain.
loadtest:
	$(GO) build -o /tmp/hsfqd ./cmd/hsfqd
	$(GO) run ./cmd/hsfqload -hsfqd /tmp/hsfqd -n $(LOADTEST_N) -c $(LOADTEST_C) \
		-queue $(LOADTEST_QUEUE) -workers $(LOADTEST_WORKERS)

# Multi-tenant serving end to end over real processes, three legs against
# a policy-carrying daemon:
#   1. classic header-less traffic must behave exactly as before the
#      tenant scheduler existed (byte-identical bodies, legacy /metrics
#      schema intact, clean drain);
#   2. gold:4 vs bronze:1 under saturation must complete requests in
#      proportion to weight within the fairness tolerance, with a shared
#      scenario byte-identical across tenants;
#   3. a one-tenant flood must leave the victim tenant's p99 within the
#      configured bound of its p99 alone.
# hsfqload exits non-zero on any violated invariant.
tenant-smoke:
	$(GO) build -o /tmp/hsfqd ./cmd/hsfqd
	$(GO) run ./cmd/hsfqload -hsfqd /tmp/hsfqd -policy examples/policies/tenants.json \
		-n $(LOADTEST_N) -c $(LOADTEST_C) -queue $(LOADTEST_QUEUE) -workers $(LOADTEST_WORKERS)
	$(GO) run ./cmd/hsfqload -hsfqd /tmp/hsfqd -policy examples/policies/tenants.json \
		-tenants gold:4,bronze:1 -duration $(TENANT_SMOKE_DURATION) -c $(TENANT_SMOKE_C) \
		-queue 64 -workers $(TENANT_SMOKE_WORKERS)
	$(GO) run ./cmd/hsfqload -hsfqd /tmp/hsfqd -policy examples/policies/tenants.json \
		-tenants victim:1,flood:1 -flood flood -duration 2s \
		-queue 64 -workers $(TENANT_SMOKE_WORKERS)

# Short coverage-guided runs of each fuzz target on top of the checked-in
# corpora: config intake must never panic, content addresses must survive
# the wire round trip and vary with the seed, and no byte stream may
# panic the trace-frame decoder or make it allocate unboundedly.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseConfig -fuzztime $(FUZZ_TIME) -fuzzminimizetime 1x ./internal/simconfig
	$(GO) test -run '^$$' -fuzz FuzzJobKey -fuzztime $(FUZZ_TIME) -fuzzminimizetime 1x ./internal/sweep
	$(GO) test -run '^$$' -fuzz FuzzDecodeCheckpoint -fuzztime $(FUZZ_TIME) -fuzzminimizetime 1x ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz FuzzEventQueueDiff -fuzztime $(FUZZ_TIME) -fuzzminimizetime 1x ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzTraceFrameDecode -fuzztime $(FUZZ_TIME) -fuzzminimizetime 1x ./internal/tracestream

# Event-queue equivalence and throughput smoke. The interrupt-storm
# scenario run under -queue heap and -queue wheel must produce
# byte-identical stdout and trace CSV (the traces are written to the same
# path in turn so the echoed filename matches too), then the storm and
# whole-run throughput microbenchmarks run under both queues and benchjson
# summarizes them (before = heap, after = wheel) with the
# sim_ns/wall_ns throughput section.
bench-smoke:
	$(GO) build -o /tmp/hsfqsim ./cmd/hsfqsim
	/tmp/hsfqsim -config examples/configs/interrupt-storm.json -queue heap \
		-trace /tmp/hsfq-queue-smoke.csv > /tmp/hsfq-queue-heap.txt
	mv /tmp/hsfq-queue-smoke.csv /tmp/hsfq-queue-heap.csv
	/tmp/hsfqsim -config examples/configs/interrupt-storm.json -queue wheel \
		-trace /tmp/hsfq-queue-smoke.csv > /tmp/hsfq-queue-wheel.txt
	cmp /tmp/hsfq-queue-heap.txt /tmp/hsfq-queue-wheel.txt
	cmp /tmp/hsfq-queue-heap.csv /tmp/hsfq-queue-smoke.csv
	$(GO) test -run '^$$' -bench 'BenchmarkEventStorm|BenchmarkSimThroughput' -benchmem \
		-benchtime $(BENCH_SMOKE_TIME) . | tee /tmp/hsfq-queue-bench.txt
	grep '/heap' /tmp/hsfq-queue-bench.txt | sed 's|/heap||' > /tmp/hsfq-queue-bench-heap.txt
	grep '/wheel' /tmp/hsfq-queue-bench.txt | sed 's|/wheel||' > /tmp/hsfq-queue-bench-wheel.txt
	$(GO) run ./cmd/benchjson -before /tmp/hsfq-queue-bench-heap.txt \
		-after /tmp/hsfq-queue-bench-wheel.txt -o /tmp/hsfq-queue-smoke.json
	cat /tmp/hsfq-queue-smoke.json

# Heap vs wheel across the storm/throughput microbenchmarks and the full
# figure suite (via -benchqueue), recorded as BENCH_PR7.json
# (before = heap, after = wheel; /heap and /wheel sub-benchmark names are
# folded together so benchjson pairs them).
queue-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEventStorm|BenchmarkSimThroughput' -benchmem \
		-count $(BENCH_COUNT) -benchtime $(BENCH_TIME) . > /tmp/hsfq-queue-both.txt
	grep '/heap' /tmp/hsfq-queue-both.txt | sed 's|/heap||' > /tmp/hsfq-queue-before.txt
	grep '/wheel' /tmp/hsfq-queue-both.txt | sed 's|/wheel||' > /tmp/hsfq-queue-after.txt
	$(GO) test -run '^$$' -bench 'Fig|Ablation' -benchmem -count $(BENCH_COUNT) \
		-benchtime $(BENCH_TIME) -benchqueue heap . >> /tmp/hsfq-queue-before.txt
	$(GO) test -run '^$$' -bench 'Fig|Ablation' -benchmem -count $(BENCH_COUNT) \
		-benchtime $(BENCH_TIME) -benchqueue wheel . >> /tmp/hsfq-queue-after.txt
	$(GO) run ./cmd/benchjson -before /tmp/hsfq-queue-before.txt \
		-after /tmp/hsfq-queue-after.txt -o BENCH_PR7.json
	cat BENCH_PR7.json

# Distributed dispatch end to end over real processes: a 64-job sweep
# across two hsfqd daemons (one SIGKILLed mid-sweep, hedging on) must be
# byte-identical to a serial hsfqsweep run, and a digest-tampering backend
# must be quarantined with exit 3 while the output is repaired locally.
mesh-smoke:
	$(GO) build -o /tmp/hsfqd ./cmd/hsfqd
	$(GO) build -o /tmp/hsfqmesh ./cmd/hsfqmesh
	$(GO) build -o /tmp/hsfqsweep ./cmd/hsfqsweep
	$(GO) run ./cmd/meshsmoke -hsfqd /tmp/hsfqd -hsfqmesh /tmp/hsfqmesh \
		-hsfqsweep /tmp/hsfqsweep -spec examples/sweeps/mesh.json

# Checkpoint/restore end to end over real processes: an hsfqsim run
# SIGKILLed mid-simulation must resume to a byte-identical trace, a
# horizon-axis sweep with a checkpoint store must emit byte-identical
# JSONL while resuming jobs, and hsfqdiff must pinpoint a deliberately
# planted divergence (exit 3) and clear identical configs (exit 0).
checkpoint-smoke:
	$(GO) build -o /tmp/hsfqsim ./cmd/hsfqsim
	$(GO) build -o /tmp/hsfqsweep ./cmd/hsfqsweep
	$(GO) build -o /tmp/hsfqdiff ./cmd/hsfqdiff
	$(GO) run ./cmd/ckptsmoke -hsfqsim /tmp/hsfqsim -hsfqsweep /tmp/hsfqsweep \
		-hsfqdiff /tmp/hsfqdiff -spec examples/sweeps/ckpt.json

# Multicore machine end to end over real processes: hsfqsim -cores 1 must
# be byte-identical to a coreless run while -cores 2 grows core-tagged
# output (and svr4 under -policy steal is rejected up front), and a
# verified cores x policy x migration-cost sweep must show one digest per
# seed on the cores:1 plane, steal migrations off a packed core, and
# throughput that scales with cores and drops under migration cost.
smp-smoke:
	$(GO) build -o /tmp/hsfqsim ./cmd/hsfqsim
	$(GO) build -o /tmp/hsfqsweep ./cmd/hsfqsweep
	$(GO) run ./cmd/smpsmoke -hsfqsim /tmp/hsfqsim -hsfqsweep /tmp/hsfqsweep \
		-spec examples/sweeps/smp.json

# Adversarial suite: every registered attacker program against every leaf
# it applies to, at 1 and 4 cores. Policies that promise isolation must
# keep their victims above the Theorem-1-derived bound; policies that are
# gameable by design must demonstrably lose. The whole matrix runs twice
# and the outcome digests must match, so any failure reproduces from the
# cell's config alone and bisects under hsfqdiff.
adversary-smoke:
	$(GO) run ./cmd/advsmoke

# Trace streaming end to end over a real daemon, three legs:
#   1. replay soundness: a follow stream consumed live, the stored
#      recording's digest header, and the recording re-decoded through
#      the wire codec must all hash identically;
#   2. drop accounting: a throttled reader on a minimum buffer must be
#      told exactly what it lost (rows + dropped == total);
#   3. diff parity: POST /v1/diff must return the same verdict,
#      divergence_at_ns, and first divergent rows as batch
#      `hsfqdiff -json` on the same planted divergence.
# A second hsfqload run exercises K concurrent follow streams (one
# deliberately slow) plus a SIGTERM with a stream open: fast readers
# gap-free and digest-matched, slow reader drop-accounted, drain clean.
trace-smoke:
	$(GO) build -o /tmp/hsfqd ./cmd/hsfqd
	$(GO) build -o /tmp/hsfqdiff ./cmd/hsfqdiff
	$(GO) run ./cmd/tracesmoke -hsfqd /tmp/hsfqd -hsfqdiff /tmp/hsfqdiff
	$(GO) run ./cmd/hsfqload -hsfqd /tmp/hsfqd -trace 3 -queue 16 -workers 2

# Serial vs parallel wall clock of the full figure suite, recorded as
# BENCH_PR2.json (before = -workers 1, after = -workers $(SWEEP_BENCH_WORKERS)).
sweep-bench:
	$(GO) build -o /tmp/hsfq-experiments ./cmd/experiments
	rm -f /tmp/hsfq-bench-serial.txt /tmp/hsfq-bench-parallel.txt
	for i in $$(seq $(SWEEP_BENCH_COUNT)); do \
		/tmp/hsfq-experiments -all -workers 1 -benchout /tmp/hsfq-bench-serial.txt >/dev/null && \
		/tmp/hsfq-experiments -all -workers $(SWEEP_BENCH_WORKERS) -benchout /tmp/hsfq-bench-parallel.txt >/dev/null \
		|| exit 1; \
	done
	$(GO) run ./cmd/benchjson -before /tmp/hsfq-bench-serial.txt -after /tmp/hsfq-bench-parallel.txt -o BENCH_PR2.json
	cat BENCH_PR2.json
