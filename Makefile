GO ?= go

# Benchmarks covered by `make bench` — the scheduling spine plus the packet
# algorithms. Output is benchstat-compatible (`benchstat old.txt new.txt`).
BENCH ?= BenchmarkSchedule|BenchmarkLeafSchedulers|BenchmarkMachineSimulation|BenchmarkPacketAlgorithms
BENCH_COUNT ?= 5
BENCH_TIME ?= 200ms

.PHONY: all build test race vet bench fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) .
