package hsfq_test

import (
	"flag"
	"strings"
	"testing"
	"time"

	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// -benchqueue switches the event-queue implementation under the figure
// benchmarks in bench_test.go, so `go test -bench Fig -benchqueue wheel`
// measures the whole suite on the wheel. The storm and throughput
// benchmarks below ignore it: they always run both queues as
// sub-benchmarks for a side-by-side line.
var benchQueue = flag.String("benchqueue", "", "event queue for the figure benchmarks: heap or wheel (default heap)")

// BenchmarkEventStorm is the engine's pure event-loop hot path under
// timer pressure: 4096 outstanding timers, each firing re-arms itself at
// a mostly-near-future horizon (with occasional far-future jumps that
// exercise the wheel's high levels and cascading). ns/op is the cost of
// one pop+push cycle at that population — the regime where the wheel's
// O(1) amortized work overtakes the heap's O(log n) comparisons.
func BenchmarkEventStorm(b *testing.B) {
	for _, kind := range sim.EventQueueNames() {
		b.Run(kind, func(b *testing.B) {
			q, err := sim.NewEventQueue(kind)
			if err != nil {
				b.Fatal(err)
			}
			eng := sim.NewEngineWith(q)
			rng := sim.NewRand(7)
			var arm func()
			arm = func() {
				delta := sim.Time(1_000 + rng.Int63n(1_000_000))
				if rng.Int63n(64) == 0 {
					delta = sim.Time(rng.Int63n(int64(10 * sim.Second)))
				}
				eng.After(delta, arm)
			}
			const outstanding = 4096
			for i := 0; i < outstanding; i++ {
				arm()
			}
			// Warm through one full population so the pool and the wheel's
			// levels reach steady state before the timer starts.
			for i := 0; i < outstanding; i++ {
				eng.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

// stormConfig is the whole-run throughput scenario: a hierarchy with
// periodic hard-real-time load, an MPEG decoder, interactive and batch
// threads, and two interrupt sources — the event-densest single-core
// shape the paper's evaluation uses.
const stormConfig = `{
  "rate_mips": 100,
  "horizon": "2s",
  "seed": 42,
  "nodes": [
    {"path": "/rt", "weight": 3},
    {"path": "/rt/hard", "weight": 2, "leaf": "edf"},
    {"path": "/rt/soft", "weight": 1, "leaf": "sfq", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "sensor", "leaf": "/rt/hard",
     "program": {"kind": "periodic", "period": "10ms", "cost": "1ms"}},
    {"name": "dec", "leaf": "/rt/soft", "weight": 3,
     "program": {"kind": "mpeg", "frames": 90, "loop": true}},
    {"name": "editor", "leaf": "/rt/soft",
     "program": {"kind": "interactive", "think_mean": "40ms"}},
    {"name": "make", "leaf": "/be",
     "program": {"kind": "dhrystone", "fault_every": 50, "fault_sleep": "2ms"}}
  ],
  "interrupts": [
    {"kind": "periodic", "period": "5ms", "service": "100us"},
    {"kind": "poisson", "rate_per_sec": 200, "service": "200us"}
  ]
}`

// BenchmarkSimThroughput measures whole-run speed as simulated
// nanoseconds per wall nanosecond (reported via the sim_ns/wall_ns
// metric; benchjson's throughput section aggregates it). One iteration
// builds and runs the storm scenario to its 2 s horizon.
func BenchmarkSimThroughput(b *testing.B) {
	cfg, err := simconfig.Parse(strings.NewReader(stormConfig))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range sim.EventQueueNames() {
		b.Run(kind, func(b *testing.B) {
			c := cfg
			c.EventQueue = kind
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var simulated sim.Time
			for i := 0; i < b.N; i++ {
				s, err := simconfig.Build(c, simconfig.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				s.Run()
				simulated += s.Engine.Now()
			}
			wall := time.Since(start)
			if wall > 0 {
				b.ReportMetric(float64(simulated)/float64(wall.Nanoseconds()), "sim_ns/wall_ns")
			}
		})
	}
}
