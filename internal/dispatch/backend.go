package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
)

// Backend executes claims of sweep jobs. Implementations must be safe for
// concurrent use: the coordinator runs up to Window claims against one
// backend at a time.
//
// The error return reports a *backend* fault (unreachable, timed out,
// malformed or mismatched response): the claim's jobs stay valid and are
// retried elsewhere. A JobResult with Error set reports a *job* fault
// from a healthy backend; the coordinator resolves those against the
// local authority instead of retrying remotely, so the error text in the
// output is always the one a serial local run would have produced.
type Backend interface {
	Name() string
	Run(ctx context.Context, jobs []sweep.Job) ([]sweep.JobResult, error)
	// Probe reports whether the backend is ready for claims; the
	// coordinator probes a backend marked down until it recovers.
	Probe(ctx context.Context) error
}

// Local is the in-process Backend: it executes jobs with sweep.RunJob,
// the exact code path of a serial hsfqsweep run. The coordinator uses it
// both as the fallback of last resort and as the authority that digest
// verification and mismatch arbitration compare remote results against.
type Local struct{}

// Name implements Backend.
func (Local) Name() string { return "local" }

// Probe implements Backend; the process is its own health.
func (Local) Probe(ctx context.Context) error { return nil }

// Run implements Backend, executing the claim's jobs sequentially.
func (Local) Run(ctx context.Context, jobs []sweep.Job) ([]sweep.JobResult, error) {
	out := make([]sweep.JobResult, 0, len(jobs))
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, sweep.RunJob(j, false))
	}
	return out, nil
}

// HTTP is an hsfqd Backend: claims go to POST /v1/jobs, health probes to
// GET /readyz. Every outcome is checked against the claim before it is
// believed: the response must carry exactly the claimed job IDs, and each
// outcome's content address must equal the pre-computed sweep.JobKey of
// its job — a backend answering the wrong computation is a backend
// fault, not a result. (The outcome *digest* cannot be checked without
// executing; that is the coordinator's verification pass.)
type HTTP struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTP builds a backend for an hsfqd base URL ("http://host:8377").
func NewHTTP(base string) (*HTTP, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("dispatch: bad backend URL %q", base)
	}
	return &HTTP{name: u.Host, base: strings.TrimRight(base, "/"), client: &http.Client{}}, nil
}

// Name implements Backend: the URL's host:port.
func (b *HTTP) Name() string { return b.name }

// wireJob and wireOutcome mirror hsfqd's POST /v1/jobs wire contract.
type wireJob struct {
	ID     int              `json:"id"`
	Seed   uint64           `json:"seed"`
	Config simconfig.Config `json:"config"`
}

type wireOutcome struct {
	ID      int                `json:"id"`
	Key     string             `json:"key"`
	Seed    uint64             `json:"seed"`
	Digest  string             `json:"digest"`
	Metrics map[string]float64 `json:"metrics"`
	Error   string             `json:"error"`
}

// Run implements Backend over POST /v1/jobs.
func (b *HTTP) Run(ctx context.Context, jobs []sweep.Job) ([]sweep.JobResult, error) {
	req := struct {
		Jobs []wireJob `json:"jobs"`
	}{Jobs: make([]wireJob, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = wireJob{ID: j.ID, Seed: j.Seed, Config: j.Config}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dispatch: marshaling claim: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: reading response: %w", b.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dispatch: %s: status %d: %s", b.name, resp.StatusCode, firstLine(raw))
	}
	var out struct {
		Results []wireOutcome `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("dispatch: %s: undecodable response: %w", b.name, err)
	}
	byID := make(map[int]wireOutcome, len(out.Results))
	for _, o := range out.Results {
		byID[o.ID] = o
	}
	results := make([]sweep.JobResult, len(jobs))
	for i, j := range jobs {
		o, ok := byID[j.ID]
		if !ok {
			return nil, fmt.Errorf("dispatch: %s: no outcome for job %d", b.name, j.ID)
		}
		if want := sweep.JobKey(j.Config, j.Seed); o.Key != want || o.Seed != j.Seed {
			return nil, fmt.Errorf("dispatch: %s: job %d: outcome for the wrong computation (key %s, want %s)",
				b.name, j.ID, o.Key, want)
		}
		if o.Error == "" && o.Digest == "" {
			return nil, fmt.Errorf("dispatch: %s: job %d: outcome carries neither digest nor error", b.name, j.ID)
		}
		// Point/Rep/Seed come from the local expansion, never the wire:
		// the backend only contributes the outcome.
		results[i] = sweep.JobResult{
			ID: j.ID, Point: j.Point, Rep: j.Rep, Seed: j.Seed,
			Digest: o.Digest, Metrics: o.Metrics, Error: o.Error,
		}
	}
	return results, nil
}

// Probe implements Backend over GET /readyz.
func (b *HTTP) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dispatch: %s: readyz status %d", b.name, resp.StatusCode)
	}
	return nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
