// Package dispatch shards a sweep's job grid across hsfqd backends and
// merges the results back into the exact byte stream a serial local run
// would have produced.
//
// The design leans entirely on two properties the rest of the repository
// already guarantees: every job's content address (sweep.JobKey) is
// computable before execution, and execution is deterministic, so a
// remote result is verifiable after the fact by re-running the job
// locally and comparing outcome digests. That makes remote execution
// trustless: a backend that returns a wrong answer — bit rot, a corrupted
// cache, a diverging build — is detected by digest mismatch, quarantined
// for the rest of the run, and overruled by the local authority.
//
// Scheduling is failure-first: each backend has a bounded in-flight
// window of claims; a claim that errors or times out marks the backend
// down (health-probed until it recovers) and requeues its jobs with
// exponential backoff, preferring a different backend; jobs that exhaust
// their remote retries, and all jobs when no remote is usable, fall back
// to the in-process local backend. Optional tail hedging re-dispatches a
// straggling job to a second backend and takes whichever result lands
// first — safe precisely because both must be byte-identical.
package dispatch

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hsfq/internal/metrics"
	"hsfq/internal/sweep"
)

// Per-backend counter names, in reporting order.
const (
	cDispatched  = "dispatched"
	cOK          = "ok"
	cClaimErrors = "claim_errors"
	cJobErrors   = "job_errors"
	cRetried     = "retried"
	cHedged      = "hedged"
	cVerified    = "verified"
	cVerifyErr   = "verify_errors"
	cMismatches  = "mismatches"
	cQuarantined = "quarantined"
	cDiscarded   = "discarded"
)

func newCounters() *metrics.CounterSet {
	return metrics.NewCounterSet(cDispatched, cOK, cClaimErrors, cJobErrors,
		cRetried, cHedged, cVerified, cVerifyErr, cMismatches, cQuarantined, cDiscarded)
}

// Options parameterize a distributed run.
type Options struct {
	// Window bounds concurrent claims per remote backend; <= 0 means 4.
	Window int
	// LocalWindow bounds concurrent claims on the local fallback backend;
	// <= 0 means 2.
	LocalWindow int
	// Batch is the number of jobs per claim; <= 0 means 1.
	Batch int
	// Timeout is the per-job attempt deadline (a claim of k jobs gets
	// k*Timeout); <= 0 means 30 s.
	Timeout time.Duration
	// Retries is how many failed remote attempts a job tolerates before
	// it becomes local-only; <= 0 means 3.
	Retries int
	// Backoff is the base of the per-job exponential backoff between
	// attempts; <= 0 means 50 ms. Capped at MaxBackoff (<= 0 means 2 s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// HedgeAfter re-dispatches a job still in flight after this long to a
	// different backend, first result wins; 0 disables hedging.
	HedgeAfter time.Duration
	// VerifyFraction in (0,1] re-executes that fraction of remote results
	// locally and compares outcome digests. A mismatch quarantines the
	// backend, substitutes the local result, and is reported in
	// Result.Mismatches. 1 makes every remote result verified.
	VerifyFraction float64
	// VerifySeed seeds the verification sampler; 0 means 1. Sampling
	// affects only how much is verified, never the output bytes.
	VerifySeed int64
	// ProbeInterval is the health-probe cadence for down backends;
	// <= 0 means 250 ms.
	ProbeInterval time.Duration
	// Logf, when non-nil, receives operational events (backend down,
	// recovered, quarantined).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.LocalWindow <= 0 {
		o.LocalWindow = 2
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.VerifySeed == 0 {
		o.VerifySeed = 1
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Coordinator shards jobs across Remotes with Local as fallback and
// verification authority.
type Coordinator struct {
	Remotes []Backend
	Local   Backend // required; Local{} in production
	Opt     Options
}

// BackendStats reports one backend's counters after a run.
type BackendStats struct {
	Name     string           `json:"name"`
	Local    bool             `json:"local,omitempty"`
	Counters map[string]int64 `json:"counters"`
	// Line is the counters rendered in stable order for operator output.
	Line string `json:"-"`
}

// Result is the outcome of a distributed run.
type Result struct {
	// Results lists every job's accepted result in job-ID order; the
	// bytes a WriterSink emitted for them are identical to a serial
	// local run's.
	Results  []sweep.JobResult
	Backends []BackendStats
	// Mismatches counts digest-verification failures: a nonzero value
	// means some backend returned a wrong answer for a deterministic
	// computation and was quarantined; callers must report it and exit
	// nonzero even though the output bytes were repaired locally.
	Mismatches int
}

type backendState struct {
	b           Backend
	local       bool
	counters    *metrics.CounterSet
	down        bool
	quarantined bool
}

type jobState struct {
	job         sweep.Job
	done        bool
	verifying   bool // local verification in progress; no new dispatches
	localOnly   bool
	remoteFails int
	lastBackend string
	notBefore   time.Time
	inflight    int
	runningOn   string // backend of the first outstanding attempt
	firstStart  time.Time
	hedged      bool

	acceptedFrom   string
	acceptedDigest string
	acceptedError  string
}

type run struct {
	mu     sync.Mutex
	cond   *sync.Cond
	opt    Options
	ctx    context.Context
	cancel context.CancelFunc

	backends []*backendState // remotes in order, then local
	byName   map[string]*backendState
	localB   *backendState

	jobs       []*jobState
	remaining  int
	ord        *sweep.Orderer
	mismatches int
	rng        *rand.Rand // verification sampler; guarded by mu
}

// Run dispatches every job and returns once all results are accepted and
// emitted (in job-ID order) to sink. The error is non-nil only for a
// cancelled context or a failing sink; job-level failures and detected
// corruption ride in the Result.
func (c *Coordinator) Run(ctx context.Context, jobs []sweep.Job, sink sweep.Sink) (*Result, error) {
	opt := c.Opt.withDefaults()
	if c.Local == nil {
		return nil, fmt.Errorf("dispatch: coordinator needs a local backend")
	}
	for i, j := range jobs {
		if j.ID != i {
			return nil, fmt.Errorf("dispatch: job %d has ID %d (want dense IDs in expansion order)", i, j.ID)
		}
	}
	rctx, cancel := context.WithCancel(ctx)
	r := &run{
		opt: opt, ctx: rctx, cancel: cancel,
		byName: map[string]*backendState{},
		ord:    sweep.NewOrderer(len(jobs), sink),
		rng:    rand.New(rand.NewSource(opt.VerifySeed)),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, b := range c.Remotes {
		bs := &backendState{b: b, counters: newCounters()}
		r.backends = append(r.backends, bs)
		r.byName[b.Name()] = bs
	}
	r.localB = &backendState{b: c.Local, local: true, counters: newCounters()}
	r.backends = append(r.backends, r.localB)
	r.byName[c.Local.Name()] = r.localB
	r.jobs = make([]*jobState, len(jobs))
	for i, j := range jobs {
		r.jobs[i] = &jobState{job: j}
	}
	r.remaining = len(jobs)

	var wg sync.WaitGroup
	// The ticker turns time-based eligibility (backoff expiry, hedge
	// deadlines) into cond wakeups, so workers need no per-job timers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-t.C:
				r.cond.Broadcast()
			}
		}
	}()
	for _, bs := range r.backends {
		if !bs.local {
			wg.Add(1)
			go func(bs *backendState) { defer wg.Done(); r.probe(bs) }(bs)
		}
		n := opt.Window
		if bs.local {
			n = opt.LocalWindow
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(bs *backendState) { defer wg.Done(); r.worker(bs) }(bs)
		}
	}

	r.mu.Lock()
	for r.remaining > 0 && rctx.Err() == nil {
		r.cond.Wait()
	}
	r.mu.Unlock()
	cancel()
	r.cond.Broadcast()
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dispatch: interrupted: %w", err)
	}
	if err := r.ord.Err(); err != nil {
		return nil, fmt.Errorf("dispatch: streaming results: %w", err)
	}
	res := &Result{Results: r.ord.Results(), Mismatches: r.mismatches}
	for _, bs := range r.backends {
		res.Backends = append(res.Backends, BackendStats{
			Name:     bs.b.Name(),
			Local:    bs.local,
			Counters: bs.counters.Snapshot(),
			Line:     bs.counters.String(),
		})
	}
	return res, nil
}

// worker is one claim slot of one backend: claim, execute, complete.
func (r *run) worker(bs *backendState) {
	for {
		claim := r.claim(bs)
		if len(claim) == 0 {
			return
		}
		jobs := make([]sweep.Job, len(claim))
		for i, js := range claim {
			jobs[i] = js.job
		}
		ctx, cancel := context.WithTimeout(r.ctx, r.opt.Timeout*time.Duration(len(claim)))
		results, err := bs.b.Run(ctx, jobs)
		cancel()
		if err == nil && len(results) != len(jobs) {
			err = fmt.Errorf("dispatch: %s: %d results for %d jobs", bs.b.Name(), len(results), len(jobs))
		}
		r.complete(bs, claim, results, err)
	}
}

// claim blocks until it can hand bs a batch of eligible jobs, or returns
// nil when the run is over (or bs is quarantined).
func (r *run) claim(bs *backendState) []*jobState {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.remaining == 0 || r.ctx.Err() != nil || bs.quarantined {
			return nil
		}
		if !bs.down {
			if claim := r.eligible(bs); len(claim) > 0 {
				now := time.Now()
				for _, js := range claim {
					js.inflight++
					js.lastBackend = bs.b.Name()
					if js.inflight == 1 {
						js.firstStart = now
						js.runningOn = bs.b.Name()
					} else {
						js.hedged = true
						bs.counters.Inc(cHedged)
					}
					bs.counters.Inc(cDispatched)
				}
				return claim
			}
		}
		r.cond.Wait()
	}
}

// eligible gathers up to Batch jobs bs may run. The first pass prefers
// jobs whose last attempt was on a different backend (retry-on-another-
// backend); when that yields nothing, the second pass allows repeats so a
// lone surviving backend still drains the grid. Caller holds r.mu.
func (r *run) eligible(bs *backendState) []*jobState {
	now := time.Now()
	var claim []*jobState
	for pass := 0; pass < 2 && len(claim) == 0; pass++ {
		for _, js := range r.jobs {
			if !r.jobEligible(js, bs, now, pass == 0) {
				continue
			}
			claim = append(claim, js)
			if len(claim) == r.opt.Batch {
				break
			}
		}
	}
	return claim
}

func (r *run) jobEligible(js *jobState, bs *backendState, now time.Time, strict bool) bool {
	if js.done || js.verifying || js.notBefore.After(now) {
		return false
	}
	if js.inflight > 0 {
		// Only a hedge double-dispatches: hedging on, one straggling
		// attempt past the hedge deadline, and a different backend.
		return r.opt.HedgeAfter > 0 && !js.hedged && js.inflight == 1 &&
			js.runningOn != bs.b.Name() && now.Sub(js.firstStart) >= r.opt.HedgeAfter
	}
	if bs.local {
		// The local authority is a fallback: it takes jobs the remotes
		// gave up on, and everything once no remote is usable.
		return js.localOnly || !r.usableRemotes()
	}
	if js.localOnly {
		return false
	}
	if strict && js.lastBackend == bs.b.Name() && r.usableOtherRemote(bs) {
		return false
	}
	return true
}

// usableRemotes reports whether any remote backend can take claims.
// Caller holds r.mu.
func (r *run) usableRemotes() bool {
	for _, bs := range r.backends {
		if !bs.local && !bs.down && !bs.quarantined {
			return true
		}
	}
	return false
}

func (r *run) usableOtherRemote(not *backendState) bool {
	for _, bs := range r.backends {
		if bs != not && !bs.local && !bs.down && !bs.quarantined {
			return true
		}
	}
	return false
}

// complete settles one executed claim.
func (r *run) complete(bs *backendState, claim []*jobState, results []sweep.JobResult, err error) {
	if err != nil {
		now := time.Now()
		r.mu.Lock()
		bs.counters.Inc(cClaimErrors)
		if !bs.local && !bs.down && r.ctx.Err() == nil {
			bs.down = true
			r.opt.Logf("dispatch: backend %s down, probing /readyz: %v", bs.b.Name(), err)
		}
		for _, js := range claim {
			js.inflight--
			if js.done {
				continue
			}
			if !bs.local {
				js.remoteFails++
				if js.remoteFails >= r.opt.Retries {
					js.localOnly = true
				}
			}
			js.notBefore = now.Add(r.backoff(js.remoteFails))
			bs.counters.Inc(cRetried)
		}
		r.mu.Unlock()
		r.cond.Broadcast()
		return
	}
	for i, js := range claim {
		r.finish(bs, js, results[i])
	}
}

// finish settles one job's result: duplicate cross-check, job-error
// fallback, optional digest verification, acceptance.
func (r *run) finish(bs *backendState, js *jobState, res sweep.JobResult) {
	r.mu.Lock()
	js.inflight--
	if js.done {
		// A late hedge duplicate is a free consistency check: two
		// executions of the same deterministic job must agree.
		if js.acceptedError == "" && res.Error == "" && js.acceptedDigest != "" &&
			res.Digest != "" && res.Digest != js.acceptedDigest {
			r.mu.Unlock()
			r.arbitrate(bs, js, res)
			return
		}
		bs.counters.Inc(cDiscarded)
		r.mu.Unlock()
		return
	}
	if res.Error != "" && !bs.local {
		// Remote job-level failures are resolved by the local authority
		// so the emitted error (or recovery) matches a serial local run.
		js.localOnly = true
		bs.counters.Inc(cJobErrors)
		r.mu.Unlock()
		r.cond.Broadcast()
		return
	}
	verify := false
	if !bs.local && r.opt.VerifyFraction > 0 {
		verify = r.opt.VerifyFraction >= 1 || r.rng.Float64() < r.opt.VerifyFraction
	}
	if !verify {
		r.accept(bs, js, res)
		r.mu.Unlock()
		r.cond.Broadcast()
		return
	}
	js.verifying = true
	r.mu.Unlock()

	local := r.localRun(js.job)
	r.mu.Lock()
	js.verifying = false
	switch {
	case local.Error != "":
		// The authority itself could not run the job; keep the remote
		// result but record that it went unverified.
		bs.counters.Inc(cVerifyErr)
		r.accept(bs, js, res)
	case local.Digest != res.Digest:
		r.mismatches++
		bs.counters.Inc(cMismatches)
		r.quarantineLocked(bs, js.job.ID, res.Digest, local.Digest)
		r.accept(r.localB, js, local)
	default:
		bs.counters.Inc(cVerified)
		r.accept(bs, js, res)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// accept finalizes a job with res and releases it to the ordered sink.
// Caller holds r.mu.
func (r *run) accept(bs *backendState, js *jobState, res sweep.JobResult) {
	js.done = true
	js.acceptedFrom = bs.b.Name()
	js.acceptedDigest = res.Digest
	js.acceptedError = res.Error
	bs.counters.Inc(cOK)
	r.remaining--
	r.ord.Done(res)
}

// arbitrate resolves a digest disagreement between an accepted result and
// a late duplicate: the local authority re-runs the job and whichever
// backend disagrees with it is quarantined. The accepted bytes may
// already be emitted — arbitration cannot repair them, only report the
// corruption (Result.Mismatches, nonzero exit). With VerifyFraction 1
// this path is unreachable for the accepted side, because acceptance
// itself was verified.
func (r *run) arbitrate(bs *backendState, js *jobState, res sweep.JobResult) {
	local := r.localRun(js.job)
	r.mu.Lock()
	r.mismatches++
	bs.counters.Inc(cMismatches)
	if local.Error == "" {
		if local.Digest != res.Digest {
			r.quarantineLocked(bs, js.job.ID, res.Digest, local.Digest)
		}
		if accepted := r.byName[js.acceptedFrom]; accepted != nil && !accepted.local &&
			local.Digest != js.acceptedDigest {
			r.quarantineLocked(accepted, js.job.ID, js.acceptedDigest, local.Digest)
		}
	} else {
		r.opt.Logf("dispatch: job %d: hedge duplicates disagree (%s vs %s) and local arbitration failed: %s",
			js.job.ID, js.acceptedFrom, bs.b.Name(), local.Error)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// quarantineLocked permanently bars bs from further claims this run.
// Caller holds r.mu.
func (r *run) quarantineLocked(bs *backendState, jobID int, got, want string) {
	if !bs.quarantined {
		bs.quarantined = true
		bs.counters.Inc(cQuarantined)
	}
	r.opt.Logf("dispatch: backend %s QUARANTINED: job %d digest %.12s, local authority says %.12s",
		bs.b.Name(), jobID, got, want)
}

// localRun executes one job on the local authority, outside any claim
// accounting.
func (r *run) localRun(job sweep.Job) sweep.JobResult {
	res, err := r.localB.b.Run(r.ctx, []sweep.Job{job})
	if err != nil || len(res) != 1 {
		return sweep.JobResult{ID: job.ID, Point: job.Point, Rep: job.Rep, Seed: job.Seed,
			Error: fmt.Sprintf("local rerun: %v", err)}
	}
	return res[0]
}

// probe re-checks a down backend until it answers /readyz, then returns
// it to service.
func (r *run) probe(bs *backendState) {
	t := time.NewTicker(r.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
		}
		r.mu.Lock()
		needed := bs.down && !bs.quarantined && r.remaining > 0
		r.mu.Unlock()
		if !needed {
			continue
		}
		pctx, cancel := context.WithTimeout(r.ctx, r.opt.ProbeInterval)
		err := bs.b.Probe(pctx)
		cancel()
		if err == nil {
			r.mu.Lock()
			bs.down = false
			r.mu.Unlock()
			r.opt.Logf("dispatch: backend %s recovered", bs.b.Name())
			r.cond.Broadcast()
		}
	}
}

// backoff is the delay before a job's next attempt after fails failures:
// Backoff doubled per failure, capped at MaxBackoff.
func (r *run) backoff(fails int) time.Duration {
	if fails < 1 {
		fails = 1
	}
	d := r.opt.Backoff << uint(min(fails-1, 20))
	if d <= 0 || d > r.opt.MaxBackoff {
		d = r.opt.MaxBackoff
	}
	return d
}
