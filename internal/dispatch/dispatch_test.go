package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsfq/internal/server"
	"hsfq/internal/sweep"
)

// testSpec is a small real grid (2 quanta x 2 seeds = 4 jobs by default)
// with a short horizon so distributed-vs-serial comparisons stay fast.
const testSpec = `{
  "name": "dispatch-test",
  "seeds": %d,
  "base": {
    "rate_mips": 100,
    "horizon": "20ms",
    "seed": 42,
    "nodes": [
      {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/be", "weight": 1, "leaf": "sfq"}
    ],
    "threads": [
      {"name": "a", "leaf": "/soft", "weight": 2, "program": {"kind": "loop"}},
      {"name": "b", "leaf": "/be", "program": {"kind": "loop"}}
    ]
  },
  "axes": [
    {"param": "quantum", "target": "/soft", "values": ["5ms", "20ms"]}
  ]
}`

func testJobs(t *testing.T, seeds int) []sweep.Job {
	t.Helper()
	spec, err := sweep.ParseSpec(strings.NewReader(fmt.Sprintf(testSpec, seeds)))
	if err != nil {
		t.Fatalf("parsing spec: %v", err)
	}
	jobs, err := sweep.Expand(spec)
	if err != nil {
		t.Fatalf("expanding spec: %v", err)
	}
	return jobs
}

// serialBytes is the reference output: every job run locally, in order.
func serialBytes(t *testing.T, jobs []sweep.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	ord := sweep.NewOrderer(len(jobs), sweep.WriterSink{W: &buf})
	for _, j := range jobs {
		ord.Done(sweep.RunJob(j, false))
	}
	if err := ord.Err(); err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	return buf.Bytes()
}

// fakeBackend executes jobs correctly via sweep.RunJob but can be told to
// fail claims, delay, corrupt digests, or report job errors.
type fakeBackend struct {
	name    string
	delay   time.Duration
	fail    atomic.Int64 // claims to fail before serving
	corrupt bool         // flip every digest's first hex digit
	jobErr  map[int]string

	mu     sync.Mutex
	claims int
	ran    map[int]int // job ID -> times executed
}

func newFake(name string) *fakeBackend {
	return &fakeBackend{name: name, ran: map[int]int{}}
}

func (f *fakeBackend) Name() string                    { return f.name }
func (f *fakeBackend) Probe(ctx context.Context) error { return nil }

func (f *fakeBackend) Run(ctx context.Context, jobs []sweep.Job) ([]sweep.JobResult, error) {
	f.mu.Lock()
	f.claims++
	f.mu.Unlock()
	if f.fail.Add(-1) >= 0 {
		return nil, fmt.Errorf("%s: injected claim failure", f.name)
	}
	if f.delay > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(f.delay):
		}
	}
	out := make([]sweep.JobResult, len(jobs))
	for i, j := range jobs {
		if msg, ok := f.jobErr[j.ID]; ok {
			out[i] = sweep.JobResult{ID: j.ID, Point: j.Point, Rep: j.Rep, Seed: j.Seed, Error: msg}
			continue
		}
		res := sweep.RunJob(j, false)
		if f.corrupt && res.Digest != "" {
			res.Digest = flipHex(res.Digest)
		}
		out[i] = res
		f.mu.Lock()
		f.ran[j.ID]++
		f.mu.Unlock()
	}
	return out, nil
}

func flipHex(s string) string {
	b := []byte(s)
	if b[0] == '0' {
		b[0] = '1'
	} else {
		b[0] = '0'
	}
	return string(b)
}

func runCoordinator(t *testing.T, c *Coordinator, jobs []sweep.Job) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	res, err := c.Run(context.Background(), jobs, sweep.WriterSink{W: &buf})
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	return res, buf.Bytes()
}

func fastOpts() Options {
	return Options{
		Timeout: 5 * time.Second, Retries: 2,
		Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
	}
}

func counters(res *Result, name string) map[string]int64 {
	for _, b := range res.Backends {
		if b.Name == name {
			return b.Counters
		}
	}
	return nil
}

func TestByteIdenticalAcrossBackends(t *testing.T) {
	jobs := testJobs(t, 4) // 8 jobs
	want := serialBytes(t, jobs)
	c := &Coordinator{
		Remotes: []Backend{newFake("r1"), newFake("r2")},
		Local:   Local{},
		Opt:     fastOpts(),
	}
	res, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("distributed output differs from serial:\n got: %s\nwant: %s", got, want)
	}
	if len(res.Results) != len(jobs) {
		t.Errorf("got %d results, want %d", len(res.Results), len(jobs))
	}
	total := int64(0)
	for _, name := range []string{"r1", "r2", "local"} {
		total += counters(res, name)["ok"]
	}
	if total != int64(len(jobs)) {
		t.Errorf("ok counters sum to %d, want %d", total, len(jobs))
	}
}

func TestRetryOnAnotherBackendAfterFailure(t *testing.T) {
	jobs := testJobs(t, 2) // 4 jobs
	want := serialBytes(t, jobs)
	bad := newFake("bad")
	bad.fail.Store(1 << 30) // every claim fails
	good := newFake("good")
	c := &Coordinator{Remotes: []Backend{bad, good}, Local: Local{}, Opt: fastOpts()}
	res, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from serial after failover:\n got: %s\nwant: %s", got, want)
	}
	if counters(res, "good")["ok"] == 0 {
		t.Errorf("good backend served nothing: %v", counters(res, "good"))
	}
	// The bad backend never succeeds; whether it got a claim at all before
	// the good one drained the grid is schedule-dependent.
	bad.mu.Lock()
	claimed := bad.claims
	bad.mu.Unlock()
	if bc := counters(res, "bad"); bc["ok"] != 0 || (claimed > 0 && bc["claim_errors"] == 0) {
		t.Errorf("bad backend counters: %v (claims %d)", bc, claimed)
	}
}

func TestLocalFallbackWhenAllRemotesFail(t *testing.T) {
	jobs := testJobs(t, 2)
	want := serialBytes(t, jobs)
	bad := newFake("bad")
	bad.fail.Store(1 << 30)
	c := &Coordinator{Remotes: []Backend{bad}, Local: Local{}, Opt: fastOpts()}
	res, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from serial under local fallback:\n got: %s\nwant: %s", got, want)
	}
	if lc := counters(res, "local"); lc["ok"] != int64(len(jobs)) {
		t.Errorf("local ok = %d, want %d (counters %v)", lc["ok"], len(jobs), lc)
	}
}

func TestRemoteJobErrorResolvedLocally(t *testing.T) {
	jobs := testJobs(t, 2)
	want := serialBytes(t, jobs)
	flaky := newFake("flaky")
	flaky.jobErr = map[int]string{0: "transient remote-only failure", 2: "another"}
	c := &Coordinator{Remotes: []Backend{flaky}, Local: Local{}, Opt: fastOpts()}
	res, got := runCoordinator(t, c, jobs)
	// The remote's made-up error strings must NOT appear: the local
	// authority re-ran those jobs and produced the serial result.
	if !bytes.Equal(got, want) {
		t.Errorf("remote job errors leaked into output:\n got: %s\nwant: %s", got, want)
	}
	if counters(res, "flaky")["job_errors"] != 2 {
		t.Errorf("flaky counters: %v", counters(res, "flaky"))
	}
	if counters(res, "local")["ok"] < 2 {
		t.Errorf("local counters: %v", counters(res, "local"))
	}
}

func TestVerificationQuarantinesCorruptBackend(t *testing.T) {
	jobs := testJobs(t, 4) // 8 jobs
	want := serialBytes(t, jobs)
	evil := newFake("evil")
	evil.corrupt = true
	var logs []string
	var logMu sync.Mutex
	opt := fastOpts()
	opt.VerifyFraction = 1
	opt.Logf = func(f string, a ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		logMu.Unlock()
	}
	c := &Coordinator{Remotes: []Backend{evil}, Local: Local{}, Opt: opt}
	res, got := runCoordinator(t, c, jobs)
	if res.Mismatches == 0 {
		t.Fatalf("corrupt backend produced no mismatches")
	}
	// Corruption is detected AND repaired: output still byte-identical.
	if !bytes.Equal(got, want) {
		t.Errorf("output not repaired after corruption:\n got: %s\nwant: %s", got, want)
	}
	if ec := counters(res, "evil"); ec["quarantined"] != 1 || ec["mismatches"] == 0 {
		t.Errorf("evil counters: %v", ec)
	}
	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "QUARANTINED") {
			found = true
		}
	}
	if !found {
		t.Errorf("no quarantine log line in %q", logs)
	}
}

func TestHedgingRescuesStraggler(t *testing.T) {
	jobs := testJobs(t, 2) // 4 jobs
	want := serialBytes(t, jobs)
	slow := newFake("slow")
	slow.delay = 2 * time.Second
	fast := newFake("fast")
	// Fail fast's first claim so slow is guaranteed to pick up a job (and
	// become the straggler) before fast recovers and starts hedging.
	fast.fail.Store(1)
	opt := fastOpts()
	opt.Window = 1
	opt.HedgeAfter = 10 * time.Millisecond
	c := &Coordinator{Remotes: []Backend{slow, fast}, Local: Local{}, Opt: opt}
	start := time.Now()
	res, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("hedged output differs from serial:\n got: %s\nwant: %s", got, want)
	}
	// Without hedging the slow backend would pin its job for 2s each; the
	// run must finish well before that because the fast backend hedged.
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Errorf("run took %v; hedging did not rescue the straggler", d)
	}
	hedges := counters(res, "fast")["hedged"] + counters(res, "slow")["hedged"] +
		counters(res, "local")["hedged"]
	if hedges == 0 {
		t.Errorf("no hedges recorded: %+v", res.Backends)
	}
}

func TestBatchClaims(t *testing.T) {
	jobs := testJobs(t, 4) // 8 jobs
	want := serialBytes(t, jobs)
	b := newFake("batcher")
	opt := fastOpts()
	opt.Batch = 3
	c := &Coordinator{Remotes: []Backend{b}, Local: Local{}, Opt: opt}
	_, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("batched output differs from serial:\n got: %s\nwant: %s", got, want)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.claims >= len(jobs) {
		t.Errorf("%d claims for %d jobs; batching not effective", b.claims, len(jobs))
	}
}

func TestRejectsNonDenseJobIDs(t *testing.T) {
	jobs := testJobs(t, 2)
	jobs[1].ID = 7
	c := &Coordinator{Local: Local{}, Opt: fastOpts()}
	if _, err := c.Run(context.Background(), jobs, sweep.WriterSink{W: &bytes.Buffer{}}); err == nil {
		t.Fatalf("non-dense job IDs accepted")
	}
}

func TestCancelledContext(t *testing.T) {
	jobs := testJobs(t, 2)
	slow := newFake("slow")
	slow.delay = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	opt := fastOpts()
	c := &Coordinator{Remotes: []Backend{slow}, Local: slow, Opt: opt}
	if _, err := c.Run(ctx, jobs, sweep.WriterSink{W: &bytes.Buffer{}}); err == nil {
		t.Fatalf("cancelled run returned nil error")
	}
}

// TestEndToEndHTTPBackends drives the coordinator against two real hsfqd
// server instances over HTTP, asserting byte identity with a serial run.
func TestEndToEndHTTPBackends(t *testing.T) {
	jobs := testJobs(t, 4) // 8 jobs
	want := serialBytes(t, jobs)
	var remotes []Backend
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{Workers: 2, QueueDepth: 8, SweepWorkers: 2, CacheDir: t.TempDir()})
		t.Cleanup(srv.Drain)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		hb, err := NewHTTP(ts.URL)
		if err != nil {
			t.Fatalf("NewHTTP(%q): %v", ts.URL, err)
		}
		remotes = append(remotes, hb)
	}
	opt := fastOpts()
	opt.Batch = 2
	opt.VerifyFraction = 0.5
	c := &Coordinator{Remotes: remotes, Local: Local{}, Opt: opt}
	res, got := runCoordinator(t, c, jobs)
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP end-to-end output differs from serial:\n got: %s\nwant: %s", got, want)
	}
	if res.Mismatches != 0 {
		t.Errorf("unexpected mismatches: %d", res.Mismatches)
	}
	// Second run hits the backends' caches and must be byte-identical too.
	_, again := runCoordinator(t, c, jobs)
	if !bytes.Equal(again, want) {
		t.Errorf("cached HTTP output differs from serial")
	}
}
