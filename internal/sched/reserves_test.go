package sched

import (
	"testing"

	"hsfq/internal/sim"
)

func TestReservesBudgetDepletion(t *testing.T) {
	s := NewReserves(10 * sim.Millisecond)
	a := NewThread(1, "a", 1)
	bg := NewThread(2, "bg", 1)
	s.SetReserve(a, 1000, 100*sim.Millisecond)
	s.Enqueue(a, 0)
	s.Enqueue(bg, 0)

	// With budget, the reserved thread outranks background.
	if got := s.Pick(0); got != a {
		t.Fatalf("picked %v, want reserved", got)
	}
	s.Charge(a, 1000, sim.Millisecond, true) // budget exhausted
	if s.Budget(a) != 0 {
		t.Fatalf("budget %d", s.Budget(a))
	}
	// Depleted: background round-robin order (bg was enqueued first).
	if got := s.Pick(2 * sim.Millisecond); got != bg {
		t.Fatalf("picked %v, want background thread", got)
	}
	s.Charge(bg, 10, 2*sim.Millisecond, true)
	// After the replenishment instant, the reserve refills and a wins
	// again.
	if got := s.Pick(150 * sim.Millisecond); got != a {
		t.Fatalf("picked %v after refill", got)
	}
	if s.Budget(a) != 1000 {
		t.Errorf("budget %d after refill", s.Budget(a))
	}
	s.Charge(a, 1, 150*sim.Millisecond, false)
}

func TestReservesEarliestReplenishmentFirst(t *testing.T) {
	s := NewReserves(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.SetReserve(a, 100, 200*sim.Millisecond)
	s.SetReserve(b, 100, 50*sim.Millisecond)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	// b's replenishment comes sooner: it runs first (deadline-ordered).
	if got := s.Pick(0); got != b {
		t.Fatalf("picked %v", got)
	}
	s.Charge(b, 10, 0, true)
}

func TestReservesPreemptsBackgroundOnly(t *testing.T) {
	s := NewReserves(0)
	bg := NewThread(1, "bg", 1)
	res := NewThread(2, "res", 1)
	s.SetReserve(res, 100, 100*sim.Millisecond)
	s.Enqueue(bg, 0)
	if got := s.Pick(0); got != bg {
		t.Fatal("background not picked when alone")
	}
	s.Enqueue(res, 0)
	if !s.Preempts(bg, res, 0) {
		t.Error("reserved wakeup did not preempt background")
	}
	s.Charge(bg, 1, 0, true)
	if got := s.Pick(0); got != res {
		t.Fatal("reserved thread not picked")
	}
	other := NewThread(3, "res2", 1)
	s.SetReserve(other, 100, 100*sim.Millisecond)
	s.Enqueue(other, 0)
	if s.Preempts(res, other, 0) {
		t.Error("reserved thread preempted a reserved thread")
	}
	s.Charge(res, 1, 0, false)
}

func TestReservesValidationAndForget(t *testing.T) {
	s := NewReserves(0)
	a := NewThread(1, "a", 1)
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		s.SetReserve(a, 0, sim.Second)
		return
	}(); !recovered {
		t.Error("zero capacity accepted")
	}
	s.SetReserve(a, 10, sim.Second)
	s.Enqueue(a, 0)
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		s.SetReserve(a, 10, sim.Second)
		return
	}(); !recovered {
		t.Error("SetReserve on runnable accepted")
	}
	s.Pick(0)
	s.Charge(a, 1, 0, false)
	s.Forget(a)
	if len(s.entries) != 0 {
		t.Error("not forgotten")
	}
}

// TestReservesEnforcesRates: two reserved threads plus one background hog;
// long-run shares must track the reserves, with the hog absorbing the
// slack.
func TestReservesEnforcesRates(t *testing.T) {
	s := NewReserves(10 * sim.Millisecond)
	a := NewThread(1, "a", 1) // 30% reserve
	b := NewThread(2, "b", 1) // 20% reserve
	hog := NewThread(3, "hog", 1)
	s.SetReserve(a, 30_000, 100*sim.Millisecond)
	s.SetReserve(b, 20_000, 100*sim.Millisecond)
	for _, th := range []*Thread{a, b, hog} {
		s.Enqueue(th, 0)
	}
	// Drive with 1 work unit == 1 us: serve in 1ms slices for 10 s.
	done := map[*Thread]Work{}
	now := sim.Time(0)
	for now < 10*sim.Second {
		p := s.Pick(now)
		used := Work(1000) // 1 ms
		done[p] += used
		now += sim.Millisecond
		s.Charge(p, used, now, true)
	}
	// Soft reserves: each thread is guaranteed its reserve, and once
	// depleted it competes equally in the background band. Per 100 ms:
	// a = 30 + 50/3, b = 20 + 50/3, hog = 50/3.
	total := float64(done[a] + done[b] + done[hog])
	shareA := float64(done[a]) / total
	shareB := float64(done[b]) / total
	hogShare := float64(done[hog]) / total
	if shareA < 0.44 || shareA > 0.49 {
		t.Errorf("a's share %.3f, want ~0.467", shareA)
	}
	if shareB < 0.34 || shareB > 0.39 {
		t.Errorf("b's share %.3f, want ~0.367", shareB)
	}
	if hogShare < 0.14 || hogShare > 0.20 {
		t.Errorf("hog share %.3f, want ~0.167", hogShare)
	}
	// The guarantee itself: a and b each got at least their reserve.
	if float64(done[a]) < 0.30*total || float64(done[b]) < 0.20*total {
		t.Errorf("reserve guarantee violated: a=%.3f b=%.3f", shareA, shareB)
	}
}
