package sched

import "fmt"

// WeightSetter is implemented by schedulers whose bookkeeping depends on
// thread weights, so a weight can be changed safely while the thread is
// runnable. The paper's Fig. 11 experiment changes thread weights at run
// time through exactly this path.
type WeightSetter interface {
	SetWeight(t *Thread, weight float64)
}

// SetWeight implements WeightSetter for SFQ. Tags already accumulated are
// not rewritten: service consumed before the change was accounted at the
// old rate, service after it accrues at the new rate.
func (s *SFQ) SetWeight(t *Thread, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("sfq: SetWeight(%v) with non-positive weight %v", t, weight))
	}
	if e, ok := s.entries[t]; ok && e.idx != -1 {
		s.total += weight - t.Weight
	}
	t.Weight = weight
}

// SetWeight implements WeightSetter for Lottery.
func (l *Lottery) SetWeight(t *Thread, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("lottery: SetWeight(%v) with non-positive weight %v", t, weight))
	}
	if l.index(t) != -1 {
		l.total += weight - t.Weight
	}
	t.Weight = weight
}

// SetWeight implements WeightSetter for Stride.
func (s *Stride) SetWeight(t *Thread, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("stride: SetWeight(%v) with non-positive weight %v", t, weight))
	}
	if e, ok := s.entries[t]; ok && e.idx != -1 {
		s.total += weight - t.Weight
	}
	t.Weight = weight
}

// SetWeight implements WeightSetter for EEVDF.
func (s *EEVDF) SetWeight(t *Thread, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("eevdf: SetWeight(%v) with non-positive weight %v", t, weight))
	}
	if e, ok := s.entries[t]; ok && e.idx != -1 {
		s.total += weight - t.Weight
	}
	t.Weight = weight
}

// Donation records a weight transfer made to avoid priority inversion, so
// it can be revoked precisely even if weights change in between.
type Donation struct {
	to     *Thread
	amount float64
}

// Donate transfers from's weight to to, the paper's §4 remedy for priority
// inversion under an SFQ leaf: "priority inversion can be avoided by
// transferring the weight of the blocked thread to the thread that is
// blocking it. Such a transfer will ensure that the blocking thread will
// have a weight ... at least as large as the weight of the blocked
// thread." The donor is typically blocked; its nominal weight is
// unchanged and its own tags stop advancing while it sleeps.
func (s *SFQ) Donate(from, to *Thread) Donation {
	if from == nil || to == nil || from == to {
		panic("sfq: bad donation")
	}
	amount := from.Weight
	s.donated[to] += amount
	if e, ok := s.entries[to]; ok && e.idx != -1 {
		s.total += amount
	}
	return Donation{to: to, amount: amount}
}

// Revoke undoes a donation, typically when the lock holder releases the
// resource the donor was waiting for.
func (s *SFQ) Revoke(d Donation) {
	if d.to == nil {
		panic("sfq: revoke of zero donation")
	}
	cur := s.donated[d.to]
	if cur < d.amount {
		panic(fmt.Sprintf("sfq: revoking %v from %v which only holds %v", d.amount, d.to, cur))
	}
	if cur == d.amount {
		delete(s.donated, d.to)
	} else {
		s.donated[d.to] = cur - d.amount
	}
	if e, ok := s.entries[d.to]; ok && e.idx != -1 {
		s.total -= d.amount
	}
}

// EffectiveWeight returns the weight SFQ charges t at: its own weight plus
// any donations it currently holds. Donations exist only while a priority
// inversion is being resolved, so the common case skips the map read
// entirely and the hot path stays map-free.
func (s *SFQ) EffectiveWeight(t *Thread) float64 {
	if len(s.donated) == 0 {
		return t.Weight
	}
	return t.Weight + s.donated[t]
}
