package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// Stride is Waldspurger & Weihl's deterministic proportional-share
// scheduler (MIT TM-528), the fix for lottery scheduling's short-interval
// unfairness and, as the paper's related work notes, a variant of WFQ.
// Each thread advances a pass value by used/weight; the minimum pass runs.
// On wakeup a thread resumes from max(own pass, global pass), so it cannot
// bank credit while asleep.
type Stride struct {
	quantum sim.Time
	entries map[*Thread]*strideEntry
	heap    sim.Heap[*strideEntry]
	global  float64 // pass of the most recently dispatched thread
	seq     uint64
	total   float64
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*strideEntry
}

type strideEntry struct {
	t    *Thread
	pass float64
	seq  uint64
	idx  int
}

// HeapLess implements sim.HeapItem: minimum pass first, FIFO among equal
// passes.
func (e *strideEntry) HeapLess(o *strideEntry) bool {
	if e.pass != o.pass {
		return e.pass < o.pass
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *strideEntry) HeapIndex() *int { return &e.idx }

// NewStride returns a stride scheduler; quantum <= 0 selects
// DefaultQuantum.
func NewStride(quantum sim.Time) *Stride {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Stride{quantum: quantum, entries: make(map[*Thread]*strideEntry)}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *Stride) entryFor(t *Thread) *strideEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*strideEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &strideEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *Stride) entryOf(t *Thread) *strideEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*strideEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Name implements Scheduler.
func (s *Stride) Name() string { return "stride" }

// Pass returns t's current pass value, for tests.
func (s *Stride) Pass(t *Thread) float64 {
	if e := s.entryOf(t); e != nil {
		return e.pass
	}
	return 0
}

// Enqueue implements Scheduler.
func (s *Stride) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("stride: Enqueue of runnable thread %v", t))
	}
	if e.pass < s.global {
		e.pass = s.global
	}
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
	s.total += t.Weight
}

// Remove implements Scheduler.
func (s *Stride) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("stride: Remove of non-runnable thread %v", t))
	}
	s.heap.Remove(e.idx)
	s.total -= t.Weight
}

// Pick implements Scheduler: minimum pass first.
func (s *Stride) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	e := s.heap.Min()
	s.global = e.pass
	return e.t
}

// Quantum implements Scheduler.
func (s *Stride) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler: pass advances in proportion to the service
// actually consumed, the natural generalization of "pass += stride" to
// variable-length quanta.
func (s *Stride) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("stride: Charge of non-runnable thread %v", t))
	}
	e.pass += float64(used) / t.Weight
	if runnable {
		e.seq = s.seq
		s.seq++
		s.heap.Fix(e.idx)
	} else {
		s.heap.Remove(e.idx)
		s.total -= t.Weight
	}
}

// Preempts implements Scheduler.
func (s *Stride) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *Stride) Len() int { return s.heap.Len() }

// TotalWeight implements WeightedLen.
func (s *Stride) TotalWeight() float64 { return s.total }
