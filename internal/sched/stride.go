package sched

import (
	"container/heap"
	"fmt"

	"hsfq/internal/sim"
)

// Stride is Waldspurger & Weihl's deterministic proportional-share
// scheduler (MIT TM-528), the fix for lottery scheduling's short-interval
// unfairness and, as the paper's related work notes, a variant of WFQ.
// Each thread advances a pass value by used/weight; the minimum pass runs.
// On wakeup a thread resumes from max(own pass, global pass), so it cannot
// bank credit while asleep.
type Stride struct {
	quantum sim.Time
	entries map[*Thread]*strideEntry
	heap    strideHeap
	global  float64 // pass of the most recently dispatched thread
	seq     uint64
	total   float64
}

type strideEntry struct {
	t    *Thread
	pass float64
	seq  uint64
	idx  int
}

type strideHeap []*strideEntry

func (h strideHeap) Len() int { return len(h) }
func (h strideHeap) Less(i, j int) bool {
	if h[i].pass != h[j].pass {
		return h[i].pass < h[j].pass
	}
	return h[i].seq < h[j].seq
}
func (h strideHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *strideHeap) Push(x any) {
	e := x.(*strideEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *strideHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewStride returns a stride scheduler; quantum <= 0 selects
// DefaultQuantum.
func NewStride(quantum sim.Time) *Stride {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Stride{quantum: quantum, entries: make(map[*Thread]*strideEntry)}
}

// Name implements Scheduler.
func (s *Stride) Name() string { return "stride" }

// Pass returns t's current pass value, for tests.
func (s *Stride) Pass(t *Thread) float64 {
	if e, ok := s.entries[t]; ok {
		return e.pass
	}
	return 0
}

// Enqueue implements Scheduler.
func (s *Stride) Enqueue(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil {
		e = &strideEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	if e.idx != -1 {
		panic(fmt.Sprintf("stride: Enqueue of runnable thread %v", t))
	}
	if e.pass < s.global {
		e.pass = s.global
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
	s.total += t.Weight
}

// Remove implements Scheduler.
func (s *Stride) Remove(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("stride: Remove of non-runnable thread %v", t))
	}
	heap.Remove(&s.heap, e.idx)
	s.total -= t.Weight
}

// Pick implements Scheduler: minimum pass first.
func (s *Stride) Pick(now sim.Time) *Thread {
	if len(s.heap) == 0 {
		return nil
	}
	s.global = s.heap[0].pass
	return s.heap[0].t
}

// Quantum implements Scheduler.
func (s *Stride) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler: pass advances in proportion to the service
// actually consumed, the natural generalization of "pass += stride" to
// variable-length quanta.
func (s *Stride) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("stride: Charge of non-runnable thread %v", t))
	}
	e.pass += float64(used) / t.Weight
	if runnable {
		e.seq = s.seq
		s.seq++
		heap.Fix(&s.heap, e.idx)
	} else {
		heap.Remove(&s.heap, e.idx)
		s.total -= t.Weight
	}
}

// Preempts implements Scheduler.
func (s *Stride) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *Stride) Len() int { return len(s.heap) }

// TotalWeight implements WeightedLen.
func (s *Stride) TotalWeight() float64 { return s.total }
