// Package sched defines the scheduling entities shared by the whole
// repository — threads, work units, and the Scheduler interface — together
// with the leaf scheduling algorithms evaluated in the paper: SFQ,
// round-robin, FIFO, fixed priority, EDF, Rate Monotonic, an SVR4-style
// time-sharing class, lottery, stride, and EEVDF.
//
// A Scheduler manages the runnable set of threads and answers one question:
// which thread runs next, and for how long. The simulated CPU
// (internal/cpu) drives a Scheduler through a strict protocol:
//
//	Enqueue(t)                 t became runnable
//	t := Pick()                choose the thread to run
//	q := Quantum(t)            how long it may run
//	... CPU runs t ...
//	Charge(t, used, runnable)  account the CPU time actually consumed
//
// Pick never removes the thread from the runnable set; Charge with
// runnable=false does. Between a Pick and its matching Charge no other
// Pick occurs. This mirrors the paper's kernel implementation, where
// hsfq_schedule() selects a thread and hsfq_update() is invoked with the
// duration for which the thread executed.
package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// Work is an amount of CPU service, measured in instructions, the unit the
// paper uses ("let the work done by the CPU for a thread be measured by the
// number of instructions executed for the thread").
type Work int64

// ThreadState is the lifecycle state of a thread.
type ThreadState int

// Thread lifecycle states.
const (
	StateNew ThreadState = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateExited
)

var stateNames = [...]string{"new", "runnable", "running", "blocked", "exited"}

func (s ThreadState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Thread is a schedulable entity. Algorithm-specific bookkeeping (tags,
// priorities, passes) is kept inside each scheduler, keyed by the thread,
// so the same Thread can move between leaf classes, as hsfq_move allows.
type Thread struct {
	ID   int
	Name string

	// Weight is the thread's share of its scheduler's bandwidth, the phi_f
	// of the paper. Proportional-share schedulers (SFQ, lottery, stride,
	// EEVDF) honor it; the others ignore it.
	Weight float64

	// Priority is used by fixed-priority schedulers; higher runs first.
	Priority int

	// Period and RelDeadline describe periodic real-time threads. Rate
	// Monotonic derives priorities from Period; EDF uses absolute deadlines
	// of Period-spaced jobs. RelDeadline defaults to Period when zero.
	Period      sim.Time
	RelDeadline sim.Time

	// State is maintained by the CPU machine, not by schedulers.
	State ThreadState

	// Accounting, maintained by the CPU machine.
	Done     Work     // total work completed
	Segments int      // completed run segments
	ReadyAt  sim.Time // when the thread last became runnable
	WokeAt   sim.Time // when the thread last transitioned blocked->runnable
	Waited   sim.Time // total time spent runnable but not running

	// Hot-path caches (see Slot): each layer of the scheduling spine pins
	// its per-thread state here so that a steady-state Pick/Quantum/Charge
	// cycle touches no map[*Thread]. The authoritative maps remain in the
	// owners and are consulted (then re-cached) only after a miss, e.g.
	// right after an hsfq_move.
	leafSlot Slot // leaf scheduler entry (package-internal)
	NodeSlot Slot // hierarchy attachment: internal/core caches the owning *Node
	MachSlot Slot // machine per-thread state: internal/cpu caches its *tstate
}

// NewThread returns a thread with the given identity and weight. Weight
// must be positive; scheduling tags divide by it.
func NewThread(id int, name string, weight float64) *Thread {
	if weight <= 0 {
		panic(fmt.Sprintf("sched: thread %q with non-positive weight %v", name, weight))
	}
	return &Thread{ID: id, Name: name, Weight: weight}
}

func (t *Thread) String() string {
	if t == nil {
		return "<idle>"
	}
	return fmt.Sprintf("%s#%d", t.Name, t.ID)
}

// Deadline returns the relative deadline of the thread's jobs: RelDeadline
// if set, else Period.
func (t *Thread) Deadline() sim.Time {
	if t.RelDeadline > 0 {
		return t.RelDeadline
	}
	return t.Period
}

// Scheduler is the contract between the CPU machine and any scheduling
// algorithm, leaf or hierarchical.
type Scheduler interface {
	// Name identifies the algorithm, e.g. "sfq" or "svr4-ts".
	Name() string

	// Enqueue adds a thread to the runnable set. Called when a thread is
	// created runnable or wakes from sleep. Enqueueing a thread that is
	// already runnable is a bug and panics.
	Enqueue(t *Thread, now sim.Time)

	// Remove takes a runnable (but not currently picked) thread out of the
	// runnable set without charging it, e.g. when it is moved to another
	// scheduling class or killed while waiting.
	Remove(t *Thread, now sim.Time)

	// Pick returns the thread that should run next, or nil if the runnable
	// set is empty. The thread stays in the runnable set; the caller must
	// follow up with Charge for the same thread before the next Pick.
	Pick(now sim.Time) *Thread

	// Quantum returns the maximum CPU time the picked thread may consume
	// before the scheduler is consulted again.
	Quantum(t *Thread, now sim.Time) sim.Time

	// Charge accounts used CPU service to t after a run segment. If
	// runnable is false the thread blocked or exited and leaves the
	// runnable set; the actual quantum length is known only here, the
	// property SFQ exploits ("the length of quantum is required only when
	// it finishes execution").
	Charge(t *Thread, used Work, now sim.Time, runnable bool)

	// Preempts reports whether the wakeup of thread woken must cut short
	// the current run segment of thread running.
	Preempts(running, woken *Thread, now sim.Time) bool

	// Len returns the number of runnable threads.
	Len() int
}

// WeightedLen is implemented by proportional-share schedulers that can
// report the total weight of their runnable set, used by admission control.
type WeightedLen interface {
	TotalWeight() float64
}

// DefaultQuantum is the quantum used by schedulers that do not take an
// explicit one. The paper's experiments use 10–25 ms quanta.
const DefaultQuantum = 10 * sim.Millisecond
