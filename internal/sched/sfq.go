package sched

import (
	"container/heap"
	"fmt"

	"hsfq/internal/sim"
)

// SFQ is the Start-time Fair Queuing scheduler of the paper (§3), used both
// as a leaf scheduler and, via internal/core, as the algorithm that
// schedules every intermediate node of the hierarchy.
//
// Each thread f carries a start tag S_f and a finish tag F_f. When quantum
// j is requested, S_f = max(v(t), F_f); when it completes after l
// instructions, F_f = S_f + l/phi_f. Threads run in increasing start-tag
// order. The virtual time v(t) is the start tag of the thread in service
// while the scheduler is busy, and the maximum finish tag ever assigned
// while it is idle.
type SFQ struct {
	quantum   sim.Time
	entries   map[*Thread]*sfqEntry
	heap      sfqHeap
	inService *sfqEntry
	maxFinish float64
	seq       uint64
	total     float64             // total effective weight of runnable threads
	donated   map[*Thread]float64 // priority-inversion weight transfers (§4)
	quanta    map[*Thread]sim.Time
}

type sfqEntry struct {
	t      *Thread
	start  float64
	finish float64
	seq    uint64 // tie-break: FIFO among equal start tags
	idx    int    // heap index; -1 while not runnable
}

type sfqHeap []*sfqEntry

func (h sfqHeap) Len() int { return len(h) }
func (h sfqHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].seq < h[j].seq
}
func (h sfqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *sfqHeap) Push(x any) {
	e := x.(*sfqEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *sfqHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewSFQ returns an SFQ scheduler granting the given quantum per
// scheduling decision; quantum <= 0 selects DefaultQuantum.
func NewSFQ(quantum sim.Time) *SFQ {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &SFQ{
		quantum: quantum,
		quanta:  make(map[*Thread]sim.Time),
		entries: make(map[*Thread]*sfqEntry),
		donated: make(map[*Thread]float64),
	}
}

// SetThreadQuantum overrides the quantum for one thread. SFQ's fairness
// and delay bounds (Eqs. 3 and 8) are expressed in per-thread maximum
// quantum lengths l_f^max, so giving latency-sensitive threads shorter
// quanta tightens exactly their terms of the bound. A zero duration
// restores the scheduler default.
func (s *SFQ) SetThreadQuantum(t *Thread, q sim.Time) {
	if q < 0 {
		panic(fmt.Sprintf("sfq: negative quantum for %v", t))
	}
	if q == 0 {
		delete(s.quanta, t)
		return
	}
	s.quanta[t] = q
}

// Name implements Scheduler.
func (s *SFQ) Name() string { return "sfq" }

// VirtualTime returns v(t): the start tag of the thread in service, the
// minimum runnable start tag between decisions, or the maximum finish tag
// ever assigned while idle.
func (s *SFQ) VirtualTime() float64 {
	if s.inService != nil {
		return s.inService.start
	}
	if len(s.heap) > 0 {
		return s.heap[0].start
	}
	return s.maxFinish
}

// Tags returns the current start and finish tags of t. Threads that have
// never been enqueued report zero tags.
func (s *SFQ) Tags(t *Thread) (start, finish float64) {
	if e, ok := s.entries[t]; ok {
		return e.start, e.finish
	}
	return 0, 0
}

// Enqueue implements Scheduler. The thread is stamped with
// S = max(v(now), F), so a thread returning from sleep cannot claim service
// for the time it was absent.
func (s *SFQ) Enqueue(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil {
		e = &sfqEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	if e.idx != -1 {
		panic(fmt.Sprintf("sfq: Enqueue of runnable thread %v", t))
	}
	e.start = maxf(s.VirtualTime(), e.finish)
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
	s.total += s.EffectiveWeight(t)
}

// Remove implements Scheduler.
func (s *SFQ) Remove(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("sfq: Remove of non-runnable thread %v", t))
	}
	if s.inService == e {
		panic(fmt.Sprintf("sfq: Remove of in-service thread %v", t))
	}
	heap.Remove(&s.heap, e.idx)
	s.total -= s.EffectiveWeight(t)
}

// Pick implements Scheduler: the runnable thread with the minimum start
// tag, ties broken in arrival order.
func (s *SFQ) Pick(now sim.Time) *Thread {
	if len(s.heap) == 0 {
		return nil
	}
	s.inService = s.heap[0]
	return s.inService.t
}

// Quantum implements Scheduler.
func (s *SFQ) Quantum(t *Thread, now sim.Time) sim.Time {
	if q, ok := s.quanta[t]; ok {
		return q
	}
	return s.quantum
}

// Charge implements Scheduler: the completed quantum's finish tag is
// F = S + used/phi (Eq. 2), and if the thread stays runnable its next
// quantum is stamped immediately with S = max(v, F). Since v equals the
// charged thread's own start tag while it is in service and F >= S, that
// reduces to S = F for a continuing thread, exactly as in the paper's
// worked example.
func (s *SFQ) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("sfq: Charge of non-runnable thread %v", t))
	}
	e.finish = e.start + float64(used)/s.EffectiveWeight(t)
	if e.finish > s.maxFinish {
		s.maxFinish = e.finish
	}
	s.inService = nil
	if runnable {
		e.start = e.finish
		e.seq = s.seq
		s.seq++
		heap.Fix(&s.heap, e.idx)
	} else {
		heap.Remove(&s.heap, e.idx)
		s.total -= s.EffectiveWeight(t)
	}
}

// Preempts implements Scheduler. SFQ is quantum-driven: a wakeup never cuts
// a quantum short; the new thread competes at the next decision point. This
// is what bounds the paper's Fig. 9 scheduling latency by the quantum.
func (s *SFQ) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *SFQ) Len() int { return len(s.heap) }

// TotalWeight implements WeightedLen.
func (s *SFQ) TotalWeight() float64 { return s.total }

// Forget discards tag state for an exited thread so the entry map does not
// grow without bound in long simulations.
func (s *SFQ) Forget(t *Thread) {
	if e, ok := s.entries[t]; ok {
		if e.idx != -1 {
			panic(fmt.Sprintf("sfq: Forget of runnable thread %v", t))
		}
		delete(s.entries, t)
		delete(s.quanta, t)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
