package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// SFQ is the Start-time Fair Queuing scheduler of the paper (§3), used both
// as a leaf scheduler and, via internal/core, as the algorithm that
// schedules every intermediate node of the hierarchy.
//
// Each thread f carries a start tag S_f and a finish tag F_f. When quantum
// j is requested, S_f = max(v(t), F_f); when it completes after l
// instructions, F_f = S_f + l/phi_f. Threads run in increasing start-tag
// order. The virtual time v(t) is the start tag of the thread in service
// while the scheduler is busy, and the maximum finish tag ever assigned
// while it is idle.
//
// The hot path is allocation- and map-free: the per-thread entry is cached
// on the Thread itself (Thread.leafSlot) and the runnable set is an
// intrusive sim.Heap. The entries map persists tag state across sleeps and
// hsfq_move round-trips, exactly as before, but is only consulted after a
// cache miss.
type SFQ struct {
	quantum   sim.Time
	entries   map[*Thread]*sfqEntry
	heap      sim.Heap[*sfqEntry]
	inService *sfqEntry
	maxFinish float64
	seq       uint64
	total     float64             // total effective weight of runnable threads
	donated   map[*Thread]float64 // priority-inversion weight transfers (§4)

	// SaveState scratch, reused so periodic checkpointing stays
	// allocation-free on the warm path.
	entScratch []*sfqEntry
	donScratch []*Thread
}

type sfqEntry struct {
	t       *Thread
	start   float64
	finish  float64
	quantum sim.Time // per-thread override; 0 selects the scheduler default
	seq     uint64   // tie-break: FIFO among equal start tags
	idx     int      // heap index; -1 while not runnable
}

// HeapLess implements sim.HeapItem: minimum start tag first, FIFO among
// equal start tags.
func (e *sfqEntry) HeapLess(o *sfqEntry) bool {
	if e.start != o.start {
		return e.start < o.start
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *sfqEntry) HeapIndex() *int { return &e.idx }

// NewSFQ returns an SFQ scheduler granting the given quantum per
// scheduling decision; quantum <= 0 selects DefaultQuantum.
func NewSFQ(quantum sim.Time) *SFQ {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &SFQ{
		quantum: quantum,
		entries: make(map[*Thread]*sfqEntry),
		donated: make(map[*Thread]float64),
	}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *SFQ) entryFor(t *Thread) *sfqEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*sfqEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &sfqEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *SFQ) entryOf(t *Thread) *sfqEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*sfqEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// SetThreadQuantum overrides the quantum for one thread. SFQ's fairness
// and delay bounds (Eqs. 3 and 8) are expressed in per-thread maximum
// quantum lengths l_f^max, so giving latency-sensitive threads shorter
// quanta tightens exactly their terms of the bound. A zero duration
// restores the scheduler default.
func (s *SFQ) SetThreadQuantum(t *Thread, q sim.Time) {
	if q < 0 {
		panic(fmt.Sprintf("sfq: negative quantum for %v", t))
	}
	s.entryFor(t).quantum = q
}

// Name implements Scheduler.
func (s *SFQ) Name() string { return "sfq" }

// VirtualTime returns v(t): the start tag of the thread in service, the
// minimum runnable start tag between decisions, or the maximum finish tag
// ever assigned while idle.
func (s *SFQ) VirtualTime() float64 {
	if s.inService != nil {
		return s.inService.start
	}
	if s.heap.Len() > 0 {
		return s.heap.Min().start
	}
	return s.maxFinish
}

// Tags returns the current start and finish tags of t. Threads that have
// never been enqueued report zero tags.
func (s *SFQ) Tags(t *Thread) (start, finish float64) {
	if e := s.entryOf(t); e != nil {
		return e.start, e.finish
	}
	return 0, 0
}

// Enqueue implements Scheduler. The thread is stamped with
// S = max(v(now), F), so a thread returning from sleep cannot claim service
// for the time it was absent.
func (s *SFQ) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("sfq: Enqueue of runnable thread %v", t))
	}
	e.start = sim.Maxf(s.VirtualTime(), e.finish)
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
	s.total += s.EffectiveWeight(t)
}

// Remove implements Scheduler.
func (s *SFQ) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("sfq: Remove of non-runnable thread %v", t))
	}
	if s.inService == e {
		panic(fmt.Sprintf("sfq: Remove of in-service thread %v", t))
	}
	s.heap.Remove(e.idx)
	s.total -= s.EffectiveWeight(t)
}

// Pick implements Scheduler: the runnable thread with the minimum start
// tag, ties broken in arrival order.
func (s *SFQ) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	s.inService = s.heap.Min()
	return s.inService.t
}

// Quantum implements Scheduler.
func (s *SFQ) Quantum(t *Thread, now sim.Time) sim.Time {
	if e := s.entryOf(t); e != nil && e.quantum != 0 {
		return e.quantum
	}
	return s.quantum
}

// Charge implements Scheduler: the completed quantum's finish tag is
// F = S + used/phi (Eq. 2), and if the thread stays runnable its next
// quantum is stamped immediately with S = max(v, F). Since v equals the
// charged thread's own start tag while it is in service and F >= S, that
// reduces to S = F for a continuing thread, exactly as in the paper's
// worked example.
func (s *SFQ) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("sfq: Charge of non-runnable thread %v", t))
	}
	e.finish = e.start + float64(used)/s.EffectiveWeight(t)
	if e.finish > s.maxFinish {
		s.maxFinish = e.finish
	}
	s.inService = nil
	if runnable {
		e.start = e.finish
		e.seq = s.seq
		s.seq++
		s.heap.Fix(e.idx)
	} else {
		s.heap.Remove(e.idx)
		s.total -= s.EffectiveWeight(t)
	}
}

// Preempts implements Scheduler. SFQ is quantum-driven: a wakeup never cuts
// a quantum short; the new thread competes at the next decision point. This
// is what bounds the paper's Fig. 9 scheduling latency by the quantum.
func (s *SFQ) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *SFQ) Len() int { return s.heap.Len() }

// TotalWeight implements WeightedLen.
func (s *SFQ) TotalWeight() float64 { return s.total }

// Forget discards tag state for an exited thread so the entry map does not
// grow without bound in long simulations.
func (s *SFQ) Forget(t *Thread) {
	if e, ok := s.entries[t]; ok {
		if e.idx != -1 {
			panic(fmt.Sprintf("sfq: Forget of runnable thread %v", t))
		}
		delete(s.entries, t)
		t.leafSlot.Drop(s)
	}
}
