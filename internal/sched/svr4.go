package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// SVR4 models the SVR4/Solaris 2.4 class-based dispatcher that the paper
// compares against and reuses as a leaf scheduler ("we have ... modified
// the existing SVR4 priority based scheduler to operate as a scheduler for
// a leaf node"). It implements two scheduling classes:
//
//   - A time-sharing (TS) class: 60 priority levels driven by a dispatch
//     table in the shape of ts_dptbl. Using a full quantum lowers a
//     thread's priority (tqexp); returning from sleep boosts it (slpret);
//     waiting on the run queue longer than maxwait boosts it (lwait).
//     These feedback rules are what make SVR4 TS throughput unpredictable
//     in the paper's Fig. 5.
//
//   - A real-time (RT) class: fixed priorities above every TS priority,
//     FIFO within a priority, preemptive on wakeup. The paper's Fig. 9
//     experiment runs two Rate-Monotonic threads in this class.
//
// Priorities are compared on a single global scale: TS occupies
// [0, TSLevels) and RT occupies [rtBase, rtBase+RTLevels).
type SVR4 struct {
	table     []DispatchEntry
	ips       int64 // CPU instructions per second, to convert Work to time
	rtQuantum sim.Time

	entries map[*Thread]*svr4Entry
	queues  map[int][]*svr4Entry // global priority -> FIFO
	count   int
	picked  *svr4Entry
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*svr4Entry
	prioScratch []int
}

// DispatchEntry is one row of the TS dispatch table, mirroring the fields
// of SVR4's ts_dptbl.
type DispatchEntry struct {
	Quantum sim.Time // time slice at this level
	TQExp   int      // new level after the quantum is fully consumed
	SlpRet  int      // level assigned when returning from sleep
	MaxWait sim.Time // run-queue wait that triggers a starvation boost
	LWait   int      // level assigned by the starvation boost
}

// TS priority geometry.
const (
	TSLevels    = 60 // TS priorities 0..59, higher is better
	TSInitial   = 29 // initial level of a new TS thread
	rtBase      = 100
	RTLevels    = 60
	classRT     = 1
	classTS     = 0
	frontInsert = true
	tailInsert  = false
)

type svr4Entry struct {
	t        *Thread
	class    int
	level    int      // TS level or RT priority (within class)
	waitFrom sim.Time // when enqueued on the run queue
	runnable bool
}

func (e *svr4Entry) globalPrio() int {
	if e.class == classRT {
		return rtBase + e.level
	}
	return e.level
}

// DefaultDispatchTable builds a ts_dptbl-shaped table: long quanta at low
// priorities (200 ms) shrinking to 20 ms at high priorities, a 10-level
// drop on quantum expiry, a 25-level boost on sleep return, and a 10-level
// boost after waiting one second.
func DefaultDispatchTable() []DispatchEntry {
	table := make([]DispatchEntry, TSLevels)
	for p := 0; p < TSLevels; p++ {
		q := 200 - 36*(p/10) // 200,164,128,92,56,20 ms per decade
		table[p] = DispatchEntry{
			Quantum: sim.Time(q) * sim.Millisecond,
			TQExp:   max(0, p-10),
			SlpRet:  min(TSLevels-1, p+25),
			MaxWait: sim.Second,
			LWait:   min(TSLevels-1, p+10),
		}
	}
	return table
}

// NewSVR4 returns an SVR4-style dispatcher. table may be nil to use
// DefaultDispatchTable. ips is the CPU speed in instructions per second,
// needed to decide whether a charge consumed the full quantum; it must
// match the machine the scheduler is attached to. rtQuantum bounds RT
// run segments (the paper uses 25 ms); <= 0 means run-until-block.
func NewSVR4(table []DispatchEntry, ips int64, rtQuantum sim.Time) *SVR4 {
	if table == nil {
		table = DefaultDispatchTable()
	}
	if len(table) != TSLevels {
		panic(fmt.Sprintf("svr4: dispatch table has %d levels, want %d", len(table), TSLevels))
	}
	if ips <= 0 {
		panic("svr4: non-positive instruction rate")
	}
	if rtQuantum <= 0 {
		rtQuantum = sim.Time(1 << 62)
	}
	return &SVR4{
		table:     table,
		ips:       ips,
		rtQuantum: rtQuantum,
		entries:   make(map[*Thread]*svr4Entry),
		queues:    make(map[int][]*svr4Entry),
	}
}

// Name implements Scheduler.
func (s *SVR4) Name() string { return "svr4" }

// SetRealTime places t in the RT class at the given RT priority (0..59,
// higher first). Must be called before the thread is enqueued.
func (s *SVR4) SetRealTime(t *Thread, prio int) {
	if prio < 0 || prio >= RTLevels {
		panic(fmt.Sprintf("svr4: RT priority %d out of range", prio))
	}
	e := s.entry(t)
	if e.runnable {
		panic(fmt.Sprintf("svr4: SetRealTime on runnable thread %v", t))
	}
	e.class = classRT
	e.level = prio
}

// Level returns the thread's current class and level, for tests and traces.
func (s *SVR4) Level(t *Thread) (class, level int) {
	e := s.entry(t)
	return e.class, e.level
}

// entry returns t's entry, creating and caching it on first contact.
func (s *SVR4) entry(t *Thread) *svr4Entry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*svr4Entry)
	}
	e := s.entries[t]
	if e == nil {
		e = &svr4Entry{t: t, class: classTS, level: TSInitial}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *SVR4) entryOf(t *Thread) *svr4Entry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*svr4Entry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Enqueue implements Scheduler. A TS thread waking from sleep returns at
// its level's slpret priority, the boost that lets interactive threads
// leapfrog CPU hogs.
func (s *SVR4) Enqueue(t *Thread, now sim.Time) {
	e := s.entry(t)
	if e.runnable {
		panic(fmt.Sprintf("svr4: Enqueue of runnable thread %v", t))
	}
	if e.class == classTS && t.WokeAt == now && t.Segments > 0 {
		e.level = s.table[e.level].SlpRet
	}
	s.insert(e, now, tailInsert)
}

func (s *SVR4) insert(e *svr4Entry, now sim.Time, front bool) {
	p := e.globalPrio()
	if front {
		q := append(s.queues[p], nil)
		copy(q[1:], q)
		q[0] = e
		s.queues[p] = q
	} else {
		s.queues[p] = append(s.queues[p], e)
	}
	e.runnable = true
	e.waitFrom = now
	s.count++
}

func (s *SVR4) unlink(e *svr4Entry) {
	p := e.globalPrio()
	q := s.queues[p]
	for i, x := range q {
		if x == e {
			s.queues[p] = append(q[:i], q[i+1:]...)
			if len(s.queues[p]) == 0 {
				delete(s.queues, p)
			}
			e.runnable = false
			s.count--
			return
		}
	}
	panic(fmt.Sprintf("svr4: thread %v not on its run queue", e.t))
}

// Remove implements Scheduler.
func (s *SVR4) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || !e.runnable {
		panic(fmt.Sprintf("svr4: Remove of non-runnable thread %v", t))
	}
	s.unlink(e)
}

// Pick implements Scheduler: the head of the highest-priority non-empty
// queue, after applying any starvation boosts that have come due (the
// lazy equivalent of SVR4's once-a-second ts_update scan).
func (s *SVR4) Pick(now sim.Time) *Thread {
	s.applyWaitBoosts(now)
	best := -1
	for p := range s.queues {
		if p > best {
			best = p
		}
	}
	if best < 0 {
		return nil
	}
	s.picked = s.queues[best][0]
	return s.picked.t
}

// applyWaitBoosts moves TS threads that have waited past their level's
// maxwait to the lwait level.
func (s *SVR4) applyWaitBoosts(now sim.Time) {
	var due []*svr4Entry
	for _, q := range s.queues {
		for _, e := range q {
			if e.class != classTS {
				continue
			}
			row := s.table[e.level]
			if row.LWait > e.level && now-e.waitFrom >= row.MaxWait {
				due = append(due, e)
			}
		}
	}
	// Deterministic order: by thread ID.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j-1].t.ID > due[j].t.ID; j-- {
			due[j-1], due[j] = due[j], due[j-1]
		}
	}
	for _, e := range due {
		wf := e.waitFrom
		s.unlink(e)
		e.level = s.table[e.level].LWait
		s.insert(e, now, tailInsert)
		e.waitFrom = wf // boost does not reset the wait clock origin
	}
}

// Quantum implements Scheduler.
func (s *SVR4) Quantum(t *Thread, now sim.Time) sim.Time {
	e := s.entry(t)
	if e.class == classRT {
		return s.rtQuantum
	}
	return s.table[e.level].Quantum
}

// Charge implements Scheduler. Full-quantum consumption demotes a TS
// thread to tqexp and requeues it at the tail; a preempted thread keeps
// its level and returns to the head of its queue.
func (s *SVR4) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || !e.runnable || s.picked != e {
		panic(fmt.Sprintf("svr4: Charge of thread %v that was not picked", t))
	}
	s.picked = nil
	s.unlink(e)
	if !runnable {
		return
	}
	usedTime := sim.Time(float64(used) / float64(s.ips) * float64(sim.Second))
	if e.class == classTS {
		if usedTime >= s.table[e.level].Quantum {
			e.level = s.table[e.level].TQExp
			s.insert(e, now, tailInsert)
		} else {
			s.insert(e, now, frontInsert)
		}
		return
	}
	// RT: round-robin within the priority on quantum expiry.
	if usedTime >= s.rtQuantum {
		s.insert(e, now, tailInsert)
	} else {
		s.insert(e, now, frontInsert)
	}
}

// Preempts implements Scheduler: SVR4 sets the dispatcher's "runrun" flag
// whenever a higher-priority thread becomes runnable.
func (s *SVR4) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || !re.runnable || !we.runnable {
		return false
	}
	return we.globalPrio() > re.globalPrio()
}

// Len implements Scheduler.
func (s *SVR4) Len() int { return s.count }
