package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// Lottery is Waldspurger & Weihl's randomized proportional-share scheduler
// (OSDI '94), discussed in the paper's related work: each decision draws a
// ticket uniformly at random, so allocation is fair only in expectation and
// only over long intervals — the limitation the A3 ablation experiment
// demonstrates against stride and SFQ.
//
// A thread's ticket count is its Weight; fractional weights are honored.
type Lottery struct {
	quantum sim.Time
	rng     *sim.Rand
	queue   []*Thread
	total   float64
	picked  *Thread
}

// NewLottery returns a lottery scheduler drawing randomness from rng, which
// must not be shared with other consumers if deterministic replay is
// desired. quantum <= 0 selects DefaultQuantum.
func NewLottery(quantum sim.Time, rng *sim.Rand) *Lottery {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if rng == nil {
		panic("lottery: nil rng")
	}
	return &Lottery{quantum: quantum, rng: rng}
}

// Name implements Scheduler.
func (l *Lottery) Name() string { return "lottery" }

// Enqueue implements Scheduler.
func (l *Lottery) Enqueue(t *Thread, now sim.Time) {
	if l.index(t) != -1 {
		panic(fmt.Sprintf("lottery: Enqueue of runnable thread %v", t))
	}
	l.queue = append(l.queue, t)
	l.total += t.Weight
}

// Remove implements Scheduler.
func (l *Lottery) Remove(t *Thread, now sim.Time) {
	i := l.index(t)
	if i == -1 {
		panic(fmt.Sprintf("lottery: Remove of non-runnable thread %v", t))
	}
	l.queue = append(l.queue[:i], l.queue[i+1:]...)
	l.total -= t.Weight
}

// Pick implements Scheduler: hold a lottery over the runnable tickets.
func (l *Lottery) Pick(now sim.Time) *Thread {
	if len(l.queue) == 0 {
		return nil
	}
	draw := l.rng.Float64() * l.total
	acc := 0.0
	for _, t := range l.queue {
		acc += t.Weight
		if draw < acc {
			l.picked = t
			return t
		}
	}
	// Floating-point slack: the draw landed past the last ticket.
	l.picked = l.queue[len(l.queue)-1]
	return l.picked
}

// Quantum implements Scheduler.
func (l *Lottery) Quantum(t *Thread, now sim.Time) sim.Time { return l.quantum }

// Charge implements Scheduler: lottery keeps no per-thread service state;
// history does not influence future draws.
func (l *Lottery) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	if l.picked != t {
		panic(fmt.Sprintf("lottery: Charge of thread %v that was not picked", t))
	}
	l.picked = nil
	if !runnable {
		l.Remove(t, now)
	}
}

// Preempts implements Scheduler.
func (l *Lottery) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (l *Lottery) Len() int { return len(l.queue) }

// TotalWeight implements WeightedLen.
func (l *Lottery) TotalWeight() float64 { return l.total }

func (l *Lottery) index(t *Thread) int {
	for i, q := range l.queue {
		if q == t {
			return i
		}
	}
	return -1
}
