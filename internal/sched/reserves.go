package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// Reserves implements Processor Capacity Reserves in the style of Mercer,
// Savage & Tokuda [13], one of the multimedia schedulers the paper's
// related work says "can be employed as leaf class scheduler in our
// framework". Each thread holds a reserve (C, T): every period T its
// budget refills to C; threads with budget remaining are scheduled
// earliest-replenishment-first (the usual deadline-ordered reserve
// discipline), and threads whose budget is depleted fall to a background
// round-robin band until their next replenishment.
//
// These are *soft* reserves: a depleted thread keeps running in the
// background band (Mercer's hard variant would park it until the next
// replenishment, which needs a timed wake the passive Scheduler interface
// cannot request).
//
// The contrast with SFQ as a leaf scheduler — the comparison the paper
// defers to future work and the A10 ablation runs — is that a reserve is
// a *budget*: demand above C_i in a period is served at background
// priority only, whereas SFQ's weights share whatever bandwidth exists in
// proportion, with no per-period cliff.
type Reserves struct {
	quantum sim.Time
	entries map[*Thread]*resEntry
	heap    sim.Heap[*resEntry] // runnable, with budget, by next replenishment
	bg      []*resEntry
	count   int
	picked  *resEntry
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*resEntry
}

type resEntry struct {
	t *Thread

	capacity Work     // C: budget per period, in work units
	period   sim.Time // T

	budget   Work     // remaining budget this period
	refillAt sim.Time // next replenishment instant
	runnable bool
	idx      int // heap index; -1 when not in the reserved band
}

// HeapLess implements sim.HeapItem: earliest replenishment first, ties by
// thread ID.
func (e *resEntry) HeapLess(o *resEntry) bool {
	if e.refillAt != o.refillAt {
		return e.refillAt < o.refillAt
	}
	return e.t.ID < o.t.ID
}

// HeapIndex implements sim.HeapItem.
func (e *resEntry) HeapIndex() *int { return &e.idx }

// NewReserves returns a reserve-based scheduler; quantum <= 0 selects
// DefaultQuantum. Threads without a reserve run in the background band.
func NewReserves(quantum sim.Time) *Reserves {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Reserves{quantum: quantum, entries: make(map[*Thread]*resEntry)}
}

// Name implements Scheduler.
func (s *Reserves) Name() string { return "reserves" }

// SetReserve grants t a reserve of capacity work units every period. It
// must be set before the thread first runs; the first period starts at
// the thread's first enqueue.
func (s *Reserves) SetReserve(t *Thread, capacity Work, period sim.Time) {
	if capacity <= 0 || period <= 0 {
		panic(fmt.Sprintf("reserves: bad reserve C=%d T=%v", capacity, period))
	}
	e := s.entry(t)
	if e.runnable {
		panic(fmt.Sprintf("reserves: SetReserve on runnable thread %v", t))
	}
	e.capacity = capacity
	e.period = period
	e.budget = capacity
	e.refillAt = -1 // anchored at first enqueue
}

// Budget returns t's remaining budget this period, for tests.
func (s *Reserves) Budget(t *Thread) Work { return s.entry(t).budget }

// entry returns t's entry, creating and caching it on first contact.
func (s *Reserves) entry(t *Thread) *resEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*resEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &resEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *Reserves) entryOf(t *Thread) *resEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*resEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// refresh applies any replenishments due by now.
func (e *resEntry) refresh(now sim.Time) {
	if e.capacity == 0 {
		return
	}
	if e.refillAt < 0 {
		e.refillAt = now + e.period
		return
	}
	for now >= e.refillAt {
		e.budget = e.capacity
		e.refillAt += e.period
	}
}

// Enqueue implements Scheduler.
func (s *Reserves) Enqueue(t *Thread, now sim.Time) {
	e := s.entry(t)
	if e.runnable {
		panic(fmt.Sprintf("reserves: Enqueue of runnable thread %v", t))
	}
	e.runnable = true
	e.refresh(now)
	s.place(e)
	s.count++
}

// place puts an entry in the reserved heap or the background queue
// according to its budget.
func (s *Reserves) place(e *resEntry) {
	if e.capacity > 0 && e.budget > 0 {
		s.heap.Push(e)
	} else {
		e.idx = -1
		s.bg = append(s.bg, e)
	}
}

// unlink removes a runnable entry from whichever band holds it.
func (s *Reserves) unlink(e *resEntry) {
	if e.idx != -1 {
		s.heap.Remove(e.idx)
		return
	}
	for i, x := range s.bg {
		if x == e {
			s.bg = append(s.bg[:i], s.bg[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("reserves: thread %v not queued", e.t))
}

// Remove implements Scheduler.
func (s *Reserves) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || !e.runnable {
		panic(fmt.Sprintf("reserves: Remove of non-runnable thread %v", t))
	}
	s.unlink(e)
	e.runnable = false
	s.count--
}

// Pick implements Scheduler: reserved threads (budget in hand) run before
// any background thread; within the reserved band the earliest
// replenishment runs first. Replenishments due by now are applied first,
// possibly promoting background threads.
func (s *Reserves) Pick(now sim.Time) *Thread {
	// Promote background entries whose reserves refilled.
	kept := s.bg[:0]
	for _, e := range s.bg {
		e.refresh(now)
		if e.capacity > 0 && e.budget > 0 {
			s.heap.Push(e)
		} else {
			kept = append(kept, e)
		}
	}
	s.bg = kept
	if s.heap.Len() > 0 {
		s.picked = s.heap.Min()
		return s.picked.t
	}
	if len(s.bg) > 0 {
		s.picked = s.bg[0]
		return s.picked.t
	}
	return nil
}

// Quantum implements Scheduler: a reserved thread may run until its
// budget or the quantum expires, whichever is smaller in service time;
// the machine converts work to time, so return the quantum and let Charge
// clip the budget.
func (s *Reserves) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler.
func (s *Reserves) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || !e.runnable || s.picked != e {
		panic(fmt.Sprintf("reserves: Charge of thread %v that was not picked", t))
	}
	s.picked = nil
	s.unlink(e)
	if e.capacity > 0 {
		e.budget -= used
		if e.budget < 0 {
			e.budget = 0
		}
		e.refresh(now)
	}
	if !runnable {
		e.runnable = false
		s.count--
		return
	}
	s.place(e)
}

// Preempts implements Scheduler: a reserved wakeup preempts a background
// thread (budgeted work is the priority band), but not another reserved
// one.
func (s *Reserves) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || !re.runnable || !we.runnable {
		return false
	}
	runningReserved := re.capacity > 0 && re.budget > 0
	wokenReserved := we.capacity > 0 && we.budget > 0
	return wokenReserved && !runningReserved
}

// Len implements Scheduler.
func (s *Reserves) Len() int { return s.count }

// Forget drops state for an exited thread.
func (s *Reserves) Forget(t *Thread) {
	if e, ok := s.entries[t]; ok {
		if e.runnable {
			panic(fmt.Sprintf("reserves: Forget of runnable thread %v", t))
		}
		delete(s.entries, t)
		t.leafSlot.Drop(s)
	}
}
