package sched

import (
	"testing"

	"hsfq/internal/sim"
)

func TestEDFOrdersByDeadline(t *testing.T) {
	s := NewEDF(0)
	long := NewThread(1, "long", 1)
	long.RelDeadline = 500 * sim.Millisecond
	short := NewThread(2, "short", 1)
	short.RelDeadline = 100 * sim.Millisecond
	s.Enqueue(long, 0)
	s.Enqueue(short, 0)
	if got := s.Pick(0); got != short {
		t.Fatalf("picked %v, want shortest deadline", got)
	}
	s.Charge(short, 1, 0, false)
	if got := s.Pick(0); got != long {
		t.Fatalf("picked %v after short finished", got)
	}
	s.Charge(long, 1, 0, false)
}

func TestEDFDeadlineFromEnqueueTime(t *testing.T) {
	s := NewEDF(0)
	a := NewThread(1, "a", 1)
	a.Period = 100 * sim.Millisecond
	s.Enqueue(a, 50*sim.Millisecond)
	if d := s.Deadline(a); d != 150*sim.Millisecond {
		t.Errorf("deadline %v, want 150ms", d)
	}
	// An earlier-released but longer-deadline job loses to a
	// later-released shorter one.
	b := NewThread(2, "b", 1)
	b.RelDeadline = 10 * sim.Millisecond
	s.Enqueue(b, 60*sim.Millisecond)
	if got := s.Pick(60 * sim.Millisecond); got != b {
		t.Errorf("picked %v, want b (deadline 70ms)", got)
	}
	s.Charge(b, 1, 60*sim.Millisecond, false)
}

func TestEDFBackgroundThreadsLast(t *testing.T) {
	s := NewEDF(0)
	bg := NewThread(1, "bg", 1) // no period, no deadline
	rt := NewThread(2, "rt", 1)
	rt.Period = 50 * sim.Millisecond
	s.Enqueue(bg, 0)
	s.Enqueue(rt, 0)
	if got := s.Pick(0); got != rt {
		t.Fatalf("background thread beat a deadline job")
	}
	s.Charge(rt, 1, 0, false)
	if got := s.Pick(0); got != bg {
		t.Fatalf("background thread not served when alone")
	}
	s.Charge(bg, 1, 0, true)
}

func TestEDFPreempts(t *testing.T) {
	s := NewEDF(0)
	running := NewThread(1, "running", 1)
	running.RelDeadline = sim.Second
	s.Enqueue(running, 0)
	s.Pick(0)

	woken := NewThread(2, "woken", 1)
	woken.RelDeadline = 10 * sim.Millisecond
	s.Enqueue(woken, sim.Millisecond)
	if !s.Preempts(running, woken, sim.Millisecond) {
		t.Error("earlier deadline did not preempt")
	}
	if s.Preempts(woken, running, sim.Millisecond) {
		t.Error("later deadline preempted")
	}
	s.Charge(running, 1, sim.Millisecond, false)
}

func TestSchedulableEDF(t *testing.T) {
	ms := func(v int) sim.Time { return sim.Time(v) * sim.Millisecond }
	if !SchedulableEDF([]sim.Time{ms(10), ms(150)}, []sim.Time{ms(60), ms(960)}) {
		t.Error("paper's Fig. 9 task set must be schedulable (u=0.32)")
	}
	if SchedulableEDF([]sim.Time{ms(50), ms(60)}, []sim.Time{ms(100), ms(100)}) {
		t.Error("u=1.1 accepted")
	}
	if !SchedulableEDF(nil, nil) {
		t.Error("empty set rejected")
	}
	if SchedulableEDF([]sim.Time{ms(10)}, []sim.Time{0}) {
		t.Error("zero period accepted")
	}
}

func TestRMOrdersByPeriod(t *testing.T) {
	s := NewRM(0)
	slow := NewThread(1, "slow", 1)
	slow.Period = 960 * sim.Millisecond
	fast := NewThread(2, "fast", 1)
	fast.Period = 60 * sim.Millisecond
	s.Enqueue(slow, 0)
	s.Enqueue(fast, 0)
	if got := s.Pick(0); got != fast {
		t.Fatalf("picked %v, want shorter period", got)
	}
	// Fixed priority: fast wins again even after being served.
	s.Charge(fast, 1, 0, true)
	if got := s.Pick(0); got != fast {
		t.Fatalf("RM is fixed priority; picked %v", got)
	}
	s.Charge(fast, 1, 0, false)
	if got := s.Pick(0); got != slow {
		t.Fatalf("picked %v", got)
	}
	s.Charge(slow, 1, 0, false)
}

func TestRMAperiodicByPriority(t *testing.T) {
	s := NewRM(0)
	lo := NewThread(1, "lo", 1)
	lo.Priority = 1
	hi := NewThread(2, "hi", 1)
	hi.Priority = 9
	periodic := NewThread(3, "p", 1)
	periodic.Period = sim.Second
	s.Enqueue(lo, 0)
	s.Enqueue(hi, 0)
	s.Enqueue(periodic, 0)
	if got := s.Pick(0); got != periodic {
		t.Fatalf("aperiodic beat periodic: %v", got)
	}
	s.Charge(periodic, 1, 0, false)
	if got := s.Pick(0); got != hi {
		t.Fatalf("picked %v, want higher priority aperiodic", got)
	}
	s.Charge(hi, 1, 0, false)
}

func TestRMPreempts(t *testing.T) {
	s := NewRM(0)
	slow := NewThread(1, "slow", 1)
	slow.Period = sim.Second
	s.Enqueue(slow, 0)
	s.Pick(0)
	fast := NewThread(2, "fast", 1)
	fast.Period = 50 * sim.Millisecond
	s.Enqueue(fast, 0)
	if !s.Preempts(slow, fast, 0) {
		t.Error("shorter period did not preempt")
	}
	if s.Preempts(fast, slow, 0) {
		t.Error("longer period preempted")
	}
	s.Charge(slow, 1, 0, false)
}

func TestSchedulableRM(t *testing.T) {
	ms := func(v int) sim.Time { return sim.Time(v) * sim.Millisecond }
	// Fig. 9 task set: u = 0.323 <= 2(sqrt(2)-1) = 0.828.
	if !SchedulableRM([]sim.Time{ms(10), ms(150)}, []sim.Time{ms(60), ms(960)}) {
		t.Error("paper's task set must pass the Liu-Layland bound")
	}
	// u = 0.9 with n=2 exceeds the bound (conservative reject).
	if SchedulableRM([]sim.Time{ms(45), ms(45)}, []sim.Time{ms(100), ms(100)}) {
		t.Error("u=0.9 accepted by the n=2 bound")
	}
	if !SchedulableRM(nil, nil) {
		t.Error("empty set rejected")
	}
}

// TestEDFSchedulesFeasibleSet drives a full EDF simulation at the
// scheduler level: two jobs at 80% utilization, verifying no deadline is
// ever passed while work remains.
func TestEDFMeetsDeadlinesUnderFullProtocol(t *testing.T) {
	s := NewEDF(10 * sim.Millisecond)
	a := NewThread(1, "a", 1)
	a.Period = 100 * sim.Millisecond
	b := NewThread(2, "b", 1)
	b.Period = 250 * sim.Millisecond

	type job struct {
		t        *Thread
		left     Work
		deadline sim.Time
	}
	// 1 work unit = 1 us of CPU at this abstraction.
	us := func(d sim.Time) Work { return Work(d / sim.Microsecond) }
	jobs := map[*Thread]*job{}
	release := func(t *Thread, now sim.Time, cost Work) {
		jobs[t] = &job{t: t, left: cost, deadline: now + t.Period}
		s.Enqueue(t, now)
	}
	release(a, 0, us(40*sim.Millisecond))
	release(b, 0, us(100*sim.Millisecond))
	nextA, nextB := a.Period, b.Period

	now := sim.Time(0)
	for now < 10*sim.Second {
		p := s.Pick(now)
		if p == nil {
			// Idle until next release.
			now = sim.MinTime(nextA, nextB)
		} else {
			j := jobs[p]
			run := j.left
			if lim := us(10 * sim.Millisecond); run > lim {
				run = lim
			}
			now += sim.Time(run) * sim.Microsecond
			j.left -= run
			done := j.left == 0
			s.Charge(p, run, now, !done)
			if done && now > j.deadline {
				t.Fatalf("%v missed deadline %v at %v", p, j.deadline, now)
			}
		}
		if now >= nextA && jobs[a].left == 0 {
			release(a, nextA, us(40*sim.Millisecond))
			nextA += a.Period
		}
		if now >= nextB && jobs[b].left == 0 {
			release(b, nextB, us(100*sim.Millisecond))
			nextB += b.Period
		}
	}
}
