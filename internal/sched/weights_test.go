package sched

import (
	"math"
	"testing"

	"hsfq/internal/sim"
)

func TestSetWeightWhileRunnable(t *testing.T) {
	mk := map[string]func() Scheduler{
		"sfq":     func() Scheduler { return NewSFQ(0) },
		"lottery": func() Scheduler { return NewLottery(0, sim.NewRand(1)) },
		"stride":  func() Scheduler { return NewStride(0) },
		"eevdf":   func() Scheduler { return NewEEVDF(0, 1000) },
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			s := f()
			a := NewThread(1, "a", 1)
			b := NewThread(2, "b", 1)
			s.Enqueue(a, 0)
			s.Enqueue(b, 0)
			ws := s.(WeightSetter)
			ws.SetWeight(a, 3)
			if a.Weight != 3 {
				t.Fatal("weight not applied")
			}
			if wl, ok := s.(WeightedLen); ok {
				if wl.TotalWeight() != 4 {
					t.Errorf("total weight %v, want 4", wl.TotalWeight())
				}
			}
			got := serve(s, 8000, 1000)
			ratio := float64(got[a]) / float64(got[b])
			lo, hi := 2.7, 3.3
			if name == "lottery" {
				lo, hi = 2.4, 3.6 // randomized
			}
			if ratio < lo || ratio > hi {
				t.Errorf("post-change ratio %v, want ~3", ratio)
			}
		})
	}
}

func TestSetWeightWhileBlocked(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	s.SetWeight(a, 5)
	if a.Weight != 5 {
		t.Fatal("weight not applied to blocked thread")
	}
	s.Enqueue(a, 0)
	if s.TotalWeight() != 5 {
		t.Errorf("total %v", s.TotalWeight())
	}
	s.Remove(a, 0)
}

func TestSetWeightValidation(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive weight did not panic")
		}
	}()
	s.SetWeight(a, 0)
}

func TestDonationRaisesEffectiveWeight(t *testing.T) {
	s := NewSFQ(0)
	blocked := NewThread(1, "blocked", 4)
	holder := NewThread(2, "holder", 1)
	other := NewThread(3, "other", 1)
	s.Enqueue(holder, 0)
	s.Enqueue(other, 0)

	// Without donation: 1:1 between holder and other.
	d := s.Donate(blocked, holder)
	if s.EffectiveWeight(holder) != 5 {
		t.Fatalf("effective weight %v, want 5", s.EffectiveWeight(holder))
	}
	if s.TotalWeight() != 6 {
		t.Fatalf("total %v, want 6", s.TotalWeight())
	}
	got := serve(s, 6000, 100)
	ratio := float64(got[holder]) / float64(got[other])
	if math.Abs(ratio-5) > 0.2 {
		t.Errorf("donated ratio %v, want ~5", ratio)
	}

	s.Revoke(d)
	if s.EffectiveWeight(holder) != 1 {
		t.Errorf("effective weight %v after revoke", s.EffectiveWeight(holder))
	}
	if s.TotalWeight() != 2 {
		t.Errorf("total %v after revoke", s.TotalWeight())
	}
}

func TestDonationStacksAndRevokesPrecisely(t *testing.T) {
	s := NewSFQ(0)
	d1src := NewThread(1, "d1", 2)
	d2src := NewThread(2, "d2", 3)
	holder := NewThread(3, "holder", 1)
	s.Enqueue(holder, 0)
	don1 := s.Donate(d1src, holder)
	don2 := s.Donate(d2src, holder)
	if s.EffectiveWeight(holder) != 6 {
		t.Fatalf("stacked effective weight %v", s.EffectiveWeight(holder))
	}
	// Donor's weight changes after the fact do not alter the recorded
	// donation amount.
	d1src.Weight = 100
	s.Revoke(don1)
	if s.EffectiveWeight(holder) != 4 {
		t.Errorf("after first revoke: %v, want 4", s.EffectiveWeight(holder))
	}
	s.Revoke(don2)
	if s.EffectiveWeight(holder) != 1 {
		t.Errorf("after both revokes: %v, want 1", s.EffectiveWeight(holder))
	}
	s.Remove(holder, 0)
}

func TestDonationValidation(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		s.Donate(a, a)
		return
	}(); !recovered {
		t.Error("self-donation did not panic")
	}
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		s.Revoke(Donation{})
		return
	}(); !recovered {
		t.Error("zero revoke did not panic")
	}
	b := NewThread(2, "b", 1)
	d := s.Donate(a, b)
	s.Revoke(d)
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		s.Revoke(d)
		return
	}(); !recovered {
		t.Error("double revoke did not panic")
	}
}

func TestDonationChargesAtEffectiveWeight(t *testing.T) {
	// §4: "the blocking thread will have a weight (and hence, the CPU
	// allocation) that is at least as large as the weight of the blocked
	// thread" — its finish tag must advance at the boosted rate.
	s := NewSFQ(0)
	blocked := NewThread(1, "blocked", 3)
	holder := NewThread(2, "holder", 1)
	s.Enqueue(holder, 0)
	s.Donate(blocked, holder)
	s.Pick(0)
	s.Charge(holder, 400, 0, true)
	if _, f := s.Tags(holder); f != 100 {
		t.Errorf("finish tag %v, want 400/(1+3) = 100", f)
	}
}
