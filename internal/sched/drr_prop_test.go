// Property-based check of DRR's quantum adaptation: across seeded random
// burst patterns the per-thread quantum must
//
//  1. track the oracle recurrence q' = clamp((q+burst)/2, base/8, base*8)
//     exactly,
//  2. adapt monotonically — it moves toward the observed burst and never
//     past it (so a stream of bursts longer than the quantum can only grow
//     it, and shorter ones can only shrink it), and
//  3. converge geometrically under a steady burst length.
package sched_test

import (
	"math/rand"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

const drrPropIPS = 1_000_000_000 // 1 instruction == 1 simulated ns, exact

func absT(d sim.Time) sim.Time {
	if d < 0 {
		return -d
	}
	return d
}

func TestDRRQuantumAdaptsMonotonically(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := sim.Time(1+rng.Intn(20)) * sim.Millisecond
		s := sched.NewDRR(base, drrPropIPS)
		lo, hi := s.Bounds()
		nthreads := 1 + rng.Intn(4)
		threads := make([]*sched.Thread, nthreads)
		oracle := make([]sim.Time, nthreads)
		for i := range threads {
			threads[i] = sched.NewThread(i+1, "t", 1)
			s.Enqueue(threads[i], 0)
			oracle[i] = base
		}
		var now sim.Time
		for i := 0; i < 400; i++ {
			p := s.Pick(now)
			if p == nil {
				t.Fatalf("seed %d decision %d: Pick returned nil", seed, i)
			}
			idx := p.ID - 1
			granted := s.Quantum(p, now)
			if granted != oracle[idx] {
				t.Fatalf("seed %d decision %d: granted quantum %v, oracle %v", seed, i, granted, oracle[idx])
			}
			// Burst: anywhere from a sliver to 3x the granted quantum (a
			// thread can overrun when a wakeup never arrives to preempt it).
			burst := sim.Time(1 + rng.Int63n(int64(granted)*3))
			before := oracle[idx]
			s.Charge(p, sched.Work(burst), now, true)
			now += burst

			q := (before + burst) / 2
			if q < lo {
				q = lo
			}
			if q > hi {
				q = hi
			}
			oracle[idx] = q
			got := s.ThreadQuantum(p)
			if got != q {
				t.Fatalf("seed %d decision %d: quantum %v, oracle %v", seed, i, got, q)
			}
			// Monotone: toward the burst, never past it, always in band.
			if got < lo || got > hi {
				t.Fatalf("seed %d decision %d: quantum %v outside [%v, %v]", seed, i, got, lo, hi)
			}
			if burst >= before && got < before {
				t.Fatalf("seed %d decision %d: burst %v >= quantum %v but quantum shrank to %v",
					seed, i, burst, before, got)
			}
			if burst <= before && got > before {
				t.Fatalf("seed %d decision %d: burst %v <= quantum %v but quantum grew to %v",
					seed, i, burst, before, got)
			}
			if absT(got-burst) > absT(before-burst) && got != lo && got != hi {
				t.Fatalf("seed %d decision %d: quantum moved away from burst (%v -> %v, burst %v)",
					seed, i, before, got, burst)
			}
		}
	}
}

// TestDRRConvergesToSteadyBurst checks the geometric half-life: a thread
// with a constant burst length b (inside the band) sees its quantum within
// 1 ns of b after 40 updates.
func TestDRRConvergesToSteadyBurst(t *testing.T) {
	for _, burst := range []sim.Time{2 * sim.Millisecond, 10 * sim.Millisecond, 60 * sim.Millisecond} {
		s := sched.NewDRR(10*sim.Millisecond, drrPropIPS)
		th := sched.NewThread(1, "t", 1)
		s.Enqueue(th, 0)
		var now sim.Time
		for i := 0; i < 40; i++ {
			p := s.Pick(now)
			s.Charge(p, sched.Work(burst), now, true)
			now += burst
		}
		got := s.ThreadQuantum(th)
		if d := got - burst; d < -1 || d > 1 {
			t.Errorf("after 40 steady bursts of %v, quantum = %v", burst, got)
		}
	}
}

// TestDRRZeroChargeKeepsQuantum pins the dequeue-on-dispatch interaction:
// the protocol's zero-work removal Charge must not disturb the learned
// quantum or the adaptation stream.
func TestDRRZeroChargeKeepsQuantum(t *testing.T) {
	s := sched.NewDRR(10*sim.Millisecond, drrPropIPS)
	th := sched.NewThread(1, "t", 1)
	s.Enqueue(th, 0)
	p := s.Pick(0)
	s.Charge(p, sched.Work(4*sim.Millisecond), 0, true) // learn: 7ms
	want := s.ThreadQuantum(th)
	p = s.Pick(0)
	s.Charge(p, 0, 0, false) // dispatch-protocol removal
	s.Enqueue(th, 0)
	s.Charge(th, 0, 0, true) // wakeup racing a dispatch
	if got := s.ThreadQuantum(th); got != want {
		t.Errorf("zero-work charges moved the quantum: %v -> %v", want, got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after zero-charge cycle", s.Len())
	}
}

// TestDRRConstructorPanics pins the rejection surface simconfig.Validate
// must mirror.
func TestDRRConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		base sim.Time
		ips  int64
	}{
		{"base-overflow", sim.Time(1) << 61, 1},
		{"zero-ips", 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDRR(%v, %d) did not panic", c.base, c.ips)
				}
			}()
			sched.NewDRR(c.base, c.ips)
		})
	}
}
