package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hsfq/internal/sim"
)

// This file reads and writes TS dispatch tables in the format of SVR4's
// dispadmin(1M) output, so tables tuned on a real system can be dropped
// into the simulated SVR4 class:
//
//	# ts_quantum  ts_tqexp  ts_slpret  ts_maxwait  ts_lwait  PRIORITY LEVEL
//	      200         0        50          1         50      #     0
//	      ...
//
// Quanta and maxwait are in milliseconds (dispadmin's RES=1000).

// ParseDispatchTable reads a dispadmin-format table. It must define
// exactly TSLevels consecutive levels starting at 0.
func ParseDispatchTable(r io.Reader) ([]DispatchEntry, error) {
	var table []DispatchEntry
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Strip a trailing "# N" level comment.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("sched: dispatch table line %d: want 5 fields, got %d", lineno, len(fields))
		}
		var vals [5]int
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("sched: dispatch table line %d: %w", lineno, err)
			}
			vals[i] = v
		}
		level := len(table)
		e := DispatchEntry{
			Quantum: sim.Time(vals[0]) * sim.Millisecond,
			TQExp:   vals[1],
			SlpRet:  vals[2],
			MaxWait: sim.Time(vals[3]) * sim.Millisecond,
			LWait:   vals[4],
		}
		if e.Quantum <= 0 {
			return nil, fmt.Errorf("sched: dispatch table level %d: non-positive quantum", level)
		}
		if e.TQExp < 0 || e.TQExp >= TSLevels || e.SlpRet < 0 || e.SlpRet >= TSLevels ||
			e.LWait < 0 || e.LWait >= TSLevels {
			return nil, fmt.Errorf("sched: dispatch table level %d: target priority out of range", level)
		}
		table = append(table, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(table) != TSLevels {
		return nil, fmt.Errorf("sched: dispatch table has %d levels, want %d", len(table), TSLevels)
	}
	return table, nil
}

// WriteDispatchTable emits a table in the format ParseDispatchTable
// accepts.
func WriteDispatchTable(w io.Writer, table []DispatchEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ts_quantum  ts_tqexp  ts_slpret  ts_maxwait  ts_lwait  # LEVEL")
	for i, e := range table {
		if _, err := fmt.Fprintf(bw, "%8d %9d %10d %11d %9d  # %5d\n",
			int64(e.Quantum/sim.Millisecond), e.TQExp, e.SlpRet,
			int64(e.MaxWait/sim.Millisecond), e.LWait, i); err != nil {
			return err
		}
	}
	return bw.Flush()
}
