package sched

import (
	"math"
	"testing"
	"testing/quick"

	"hsfq/internal/sim"
)

// serve runs n Pick/Charge rounds of `used` work each and returns the
// total work served per thread.
func serve(s Scheduler, n int, used Work) map[*Thread]Work {
	got := make(map[*Thread]Work)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		p := s.Pick(now)
		if p == nil {
			break
		}
		got[p] += used
		s.Charge(p, used, now, true)
		now += sim.Millisecond
	}
	return got
}

func TestSFQProportionalAllocation(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 2)
	c := NewThread(3, "c", 4)
	for _, th := range []*Thread{a, b, c} {
		s.Enqueue(th, 0)
	}
	got := serve(s, 7000, 100)
	// Normalized service must be near-identical (fairness theorem).
	na, nb, nc := float64(got[a])/1, float64(got[b])/2, float64(got[c])/4
	if math.Abs(na-nb) > 200 || math.Abs(nb-nc) > 200 {
		t.Errorf("normalized service diverged: %v %v %v", na, nb, nc)
	}
}

func TestSFQFairnessBoundPairwise(t *testing.T) {
	// Eq. 3: |W_f/w_f - W_m/w_m| <= l_f^max/w_f + l_m^max/w_m during any
	// interval in which both are runnable. Served quanta are all `used`.
	const used = 1000
	weights := []float64{1, 3, 7, 2.5}
	s := NewSFQ(0)
	threads := make([]*Thread, len(weights))
	for i, w := range weights {
		threads[i] = NewThread(i+1, "t", w)
		s.Enqueue(threads[i], 0)
	}
	work := make(map[*Thread]Work)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		p := s.Pick(now)
		work[p] += used
		s.Charge(p, used, now, true)
		for ai, a := range threads {
			for _, b := range threads[ai+1:] {
				gap := math.Abs(float64(work[a])/a.Weight - float64(work[b])/b.Weight)
				bound := used/a.Weight + used/b.Weight
				if gap > bound+1e-6 {
					t.Fatalf("fairness bound violated at round %d: gap %v > %v", i, gap, bound)
				}
			}
		}
		now += sim.Microsecond
	}
}

func TestSFQVirtualTimeIdle(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	s.Pick(0)
	s.Charge(a, 500, 0, false) // blocks
	if v := s.VirtualTime(); v != 500 {
		t.Errorf("idle virtual time = %v, want max finish tag 500", v)
	}
	// A thread waking during idle is stamped with v, not its stale tags.
	b := NewThread(2, "b", 1)
	s.Enqueue(b, sim.Second)
	if sb, _ := s.Tags(b); sb != 500 {
		t.Errorf("S_b = %v, want 500", sb)
	}
}

func TestSFQNoCreditForSleeping(t *testing.T) {
	// A thread that sleeps must not accumulate claims: after it returns,
	// it shares from "now" rather than catching up.
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	// b blocks immediately; a runs alone for a long time.
	if s.Pick(0) != a {
		// arrival order tie-break
		t.Fatal("expected a first")
	}
	s.Charge(a, 1000, 0, true)
	s.Remove(b, 0)
	for i := 0; i < 99; i++ {
		s.Pick(0)
		s.Charge(a, 1000, 0, true)
	}
	// b returns; service from here on must be ~50:50, not a catch-up
	// binge for b.
	s.Enqueue(b, sim.Second)
	got := serve(s, 1000, 1000)
	if math.Abs(float64(got[a])-float64(got[b])) > 1000 {
		t.Errorf("post-return split %v:%v, want equal", got[a], got[b])
	}
}

func TestSFQTagsFollowPaperRecurrences(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 2)
	s.Enqueue(a, 0)
	if sa, fa := s.Tags(a); sa != 0 || fa != 0 {
		t.Fatalf("initial tags %v %v", sa, fa)
	}
	s.Pick(0)
	s.Charge(a, 100, 0, true)
	if sa, fa := s.Tags(a); sa != 50 || fa != 50 {
		t.Fatalf("after 100 work at weight 2: S=%v F=%v, want 50, 50", sa, fa)
	}
	s.Pick(0)
	s.Charge(a, 60, 0, false)
	if _, fa := s.Tags(a); fa != 80 {
		t.Fatalf("F after second quantum = %v, want 80", fa)
	}
}

func TestSFQPickThenRemovePanics(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	s.Pick(0)
	defer func() {
		if recover() == nil {
			t.Error("Remove of in-service thread did not panic")
		}
	}()
	s.Remove(a, 0)
}

func TestSFQChargeWithoutEnqueuePanics(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	defer func() {
		if recover() == nil {
			t.Error("Charge of unknown thread did not panic")
		}
	}()
	s.Charge(a, 1, 0, true)
}

func TestSFQForget(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	s.Pick(0)
	s.Charge(a, 100, 0, false)
	s.Forget(a)
	if _, f := s.Tags(a); f != 0 {
		t.Error("Forget did not clear tags")
	}
	// Forgetting a runnable thread is a bug.
	s.Enqueue(a, 0)
	defer func() {
		if recover() == nil {
			t.Error("Forget of runnable thread did not panic")
		}
	}()
	s.Forget(a)
}

func TestSFQTotalWeightTracking(t *testing.T) {
	s := NewSFQ(0)
	a := NewThread(1, "a", 1.5)
	b := NewThread(2, "b", 2.5)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	if s.TotalWeight() != 4 {
		t.Errorf("total %v", s.TotalWeight())
	}
	s.Remove(a, 0)
	if s.TotalWeight() != 2.5 {
		t.Errorf("total %v after remove", s.TotalWeight())
	}
	s.Pick(0)
	s.Charge(b, 1, 0, false)
	if s.TotalWeight() != 0 {
		t.Errorf("total %v after drain", s.TotalWeight())
	}
}

// TestSFQFairnessQuick is the property-based fairness check: random
// weights and random (bounded) quantum lengths; the pairwise normalized
// service gap at every prefix must respect Eq. 3 with per-thread maximum
// quantum lengths.
func TestSFQFairnessQuick(t *testing.T) {
	f := func(w1, w2 uint8, lens []uint8) bool {
		wa := float64(w1%50) + 1
		wb := float64(w2%50) + 1
		s := NewSFQ(0)
		a := NewThread(1, "a", wa)
		b := NewThread(2, "b", wb)
		s.Enqueue(a, 0)
		s.Enqueue(b, 0)
		var workA, workB, lmaxA, lmaxB float64
		for _, l := range lens {
			used := Work(l%100) + 1
			p := s.Pick(0)
			s.Charge(p, used, 0, true)
			if p == a {
				workA += float64(used)
				lmaxA = math.Max(lmaxA, float64(used))
			} else {
				workB += float64(used)
				lmaxB = math.Max(lmaxB, float64(used))
			}
			gap := math.Abs(workA/wa - workB/wb)
			bound := lmaxA/wa + lmaxB/wb
			if gap > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSFQPerThreadQuantum(t *testing.T) {
	s := NewSFQ(10 * sim.Millisecond)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.SetThreadQuantum(a, 2*sim.Millisecond)
	if s.Quantum(a, 0) != 2*sim.Millisecond {
		t.Errorf("a quantum %v", s.Quantum(a, 0))
	}
	if s.Quantum(b, 0) != 10*sim.Millisecond {
		t.Errorf("b quantum %v", s.Quantum(b, 0))
	}
	s.SetThreadQuantum(a, 0)
	if s.Quantum(a, 0) != 10*sim.Millisecond {
		t.Errorf("reset quantum %v", s.Quantum(a, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("negative quantum accepted")
		}
	}()
	s.SetThreadQuantum(a, -1)
}
