package sched

import (
	"testing"

	"hsfq/internal/sim"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"drr", "edf", "eevdf", "fifo", "lottery", "mlfq", "priority", "reserves", "rm", "rr", "sfq", "stride", "svr4"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		if !Known(n) {
			t.Errorf("Known(%q) = false", n)
		}
	}
	if Known("nope") {
		t.Error(`Known("nope") = true`)
	}
}

func TestRegistryNew(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, LeafConfig{Quantum: 10 * sim.Millisecond, IPS: 100_000_000, RNG: sim.NewRand(7)})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		if s.Len() != 0 {
			t.Errorf("New(%q).Len() = %d", name, s.Len())
		}
	}
	if _, err := New("nope", LeafConfig{}); err == nil {
		t.Error(`New("nope") did not fail`)
	}
}

// TestRegistryZeroConfig checks every constructor tolerates the zero
// LeafConfig: defaults for quantum, rate, and RNG must kick in.
func TestRegistryZeroConfig(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, LeafConfig{})
		if err != nil || s == nil {
			t.Fatalf("New(%q, zero): %v, %v", name, s, err)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("sfq", func(LeafConfig) Scheduler { return NewFIFO() })
}

// TestWorkFor pins the registry's time->work conversion to the cpu
// package's (floor semantics), which eevdf's lag unit depends on.
func TestWorkFor(t *testing.T) {
	if got := workFor(100_000_000, 10*sim.Millisecond); got != 1_000_000 {
		t.Errorf("workFor(100 MIPS, 10ms) = %d, want 1000000", got)
	}
	if got := workFor(3, sim.Second/2); got != 1 { // floor(1.5)
		t.Errorf("workFor(3 ips, 500ms) = %d, want 1", got)
	}
}
