package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// MLFQ is a multilevel feedback queue with starvation aging, the classic
// time-sharing heuristic the SVR4 dispatch table approximates and the
// multilevel variant of arxiv 1309.3096's dynamic round robin. Level 0 is
// the highest priority; each lower level doubles the quantum:
//
//   - A new thread enters level 0.
//   - Consuming a full level quantum demotes the thread one level (tail).
//   - Yielding or blocking before the quantum expires keeps the level, so
//     interactive threads float at the top. This is the textbook gaming
//     surface: a CPU hog that sleeps just before expiry is never demoted
//     (see internal/adversary, which encodes exactly that attack).
//   - A thread that has waited longer than the aging bound is boosted back
//     to level 0, which bounds starvation: every runnable thread reaches
//     the top level within one aging period and is then served after at
//     most the level-0 round-robin backlog.
//
// Unlike SVR4 and the slice-rotating queues, MLFQ keeps each level as an
// intrusive doubly-linked list and its Charge re-stamps any enqueued
// thread (no remembered pick, no head-only accounting), so it is safe for
// the multicore dequeue-on-dispatch protocol and allocation-free in steady
// state.
type MLFQ struct {
	levels []mlfqList
	base   sim.Time // level-0 quantum; level i gets base << i
	aging  sim.Time // runnable wait that triggers a boost to level 0
	ips    int64    // CPU speed, to convert charged Work to time

	entries map[*Thread]*mlfqEntry
	count   int
	// ageScratch and saveScratch are reused across Pick and SaveState so
	// aging sweeps and periodic checkpointing stay allocation-free.
	ageScratch  []*mlfqEntry
	saveScratch []*mlfqEntry
}

// MLFQMaxLevels bounds the level count; with doubling quanta more levels
// than this would overflow sim.Time for any useful base quantum.
const MLFQMaxLevels = 16

// MLFQDefaultLevels and mlfqDefaultAging are the defaults selected by
// zero-valued constructor arguments. MLFQDefaultLevels is exported so
// simconfig.Validate can apply the overflow rule to configs that rely on
// the default.
const (
	MLFQDefaultLevels = 4
	mlfqDefaultAging  = sim.Second
)

// MLFQQuantumOverflows reports whether the base quantum cannot be doubled
// across the given level count without overflowing sim.Time. Zero values
// select the same defaults as NewMLFQ, which panics on exactly the
// combinations this reports — simconfig.Validate rejects them up front.
func MLFQQuantumOverflows(levels int, base sim.Time) bool {
	if levels == 0 {
		levels = MLFQDefaultLevels
	}
	if levels < 1 || levels > MLFQMaxLevels {
		return true
	}
	if base <= 0 {
		base = DefaultQuantum
	}
	return base > sim.Time(1<<62)>>(levels-1)
}

type mlfqEntry struct {
	t          *Thread
	level      int
	waitFrom   sim.Time // when enqueued on its run queue
	next, prev *mlfqEntry
	queued     bool
}

// mlfqList is one level's FIFO of runnable entries.
type mlfqList struct {
	head, tail *mlfqEntry
}

func (l *mlfqList) pushTail(e *mlfqEntry) {
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *mlfqList) pushHead(e *mlfqEntry) {
	e.next = l.head
	e.prev = nil
	if l.head != nil {
		l.head.prev = e
	} else {
		l.tail = e
	}
	l.head = e
}

func (l *mlfqList) unlink(e *mlfqEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.next, e.prev = nil, nil
}

// NewMLFQ returns a multilevel feedback queue scheduler. levels is the
// number of priority levels (0 selects 4; must be <= MLFQMaxLevels). base
// is the level-0 quantum, doubled per level (<= 0 selects DefaultQuantum).
// aging is the runnable-wait bound that boosts a thread back to level 0
// (0 selects one second). ips is the CPU speed in instructions per second,
// needed to decide whether a charge consumed the full level quantum.
func NewMLFQ(levels int, base, aging sim.Time, ips int64) *MLFQ {
	if MLFQQuantumOverflows(levels, base) {
		panic(fmt.Sprintf("mlfq: levels %d / base quantum %v out of range", levels, base))
	}
	if levels == 0 {
		levels = MLFQDefaultLevels
	}
	if base <= 0 {
		base = DefaultQuantum
	}
	if aging == 0 {
		aging = mlfqDefaultAging
	}
	if aging < 0 {
		panic(fmt.Sprintf("mlfq: negative aging bound %v", aging))
	}
	if ips <= 0 {
		panic("mlfq: non-positive instruction rate")
	}
	return &MLFQ{
		levels:  make([]mlfqList, levels),
		base:    base,
		aging:   aging,
		ips:     ips,
		entries: make(map[*Thread]*mlfqEntry),
	}
}

// Name implements Scheduler.
func (s *MLFQ) Name() string { return "mlfq" }

// NumLevels returns the number of priority levels, for tests.
func (s *MLFQ) NumLevels() int { return len(s.levels) }

// AgingBound returns the starvation-boost wait bound, for tests.
func (s *MLFQ) AgingBound() sim.Time { return s.aging }

// LevelQuantum returns the quantum of the given level, for tests.
func (s *MLFQ) LevelQuantum(level int) sim.Time { return s.base << level }

// Level returns t's current level, for tests and traces.
func (s *MLFQ) Level(t *Thread) int { return s.entry(t).level }

// entry returns t's entry, creating and caching it on first contact.
func (s *MLFQ) entry(t *Thread) *mlfqEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*mlfqEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &mlfqEntry{t: t}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *MLFQ) entryOf(t *Thread) *mlfqEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*mlfqEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Enqueue implements Scheduler. The thread re-enters at its current level:
// blocking early never demotes, which is the interactivity heuristic (and
// the gaming surface the adversary suite attacks).
func (s *MLFQ) Enqueue(t *Thread, now sim.Time) {
	e := s.entry(t)
	if e.queued {
		panic(fmt.Sprintf("mlfq: Enqueue of runnable thread %v", t))
	}
	s.insert(e, now, tailInsert)
}

func (s *MLFQ) insert(e *mlfqEntry, now sim.Time, front bool) {
	if front {
		s.levels[e.level].pushHead(e)
	} else {
		s.levels[e.level].pushTail(e)
	}
	e.queued = true
	e.waitFrom = now
	s.count++
}

func (s *MLFQ) unlink(e *mlfqEntry) {
	s.levels[e.level].unlink(e)
	e.queued = false
	s.count--
}

// Remove implements Scheduler.
func (s *MLFQ) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || !e.queued {
		panic(fmt.Sprintf("mlfq: Remove of non-runnable thread %v", t))
	}
	s.unlink(e)
}

// Pick implements Scheduler: the head of the highest non-empty level,
// after boosting any thread that has waited past the aging bound (the lazy
// equivalent of MLFQ's periodic priority-boost scan).
func (s *MLFQ) Pick(now sim.Time) *Thread {
	s.applyAging(now)
	for i := range s.levels {
		if e := s.levels[i].head; e != nil {
			return e.t
		}
	}
	return nil
}

// applyAging boosts threads whose runnable wait exceeds the aging bound
// back to level 0. Sweep order is level-major, queue order within a level,
// so the boost order — and therefore the resulting level-0 FIFO — is
// deterministic.
func (s *MLFQ) applyAging(now sim.Time) {
	due := s.ageScratch[:0]
	for i := 1; i < len(s.levels); i++ {
		for e := s.levels[i].head; e != nil; e = e.next {
			if now-e.waitFrom >= s.aging {
				due = append(due, e)
			}
		}
	}
	for _, e := range due {
		s.unlink(e)
		e.level = 0
		s.insert(e, now, tailInsert)
	}
	s.ageScratch = due[:0]
}

// Quantum implements Scheduler: the level quantum, doubling per level so
// demoted CPU hogs run longer but less often.
func (s *MLFQ) Quantum(t *Thread, now sim.Time) sim.Time {
	return s.base << s.entry(t).level
}

// Charge implements Scheduler. Full-quantum consumption demotes the thread
// one level (tail); a shorter charge keeps the level but still rotates the
// thread to the tail of its queue, so identical CPU-bound threads whose
// compute actions end mid-quantum round-robin fairly instead of the head
// re-winning every decision. Only a zero-work charge — the multicore
// dequeue-on-dispatch removal step, or a wakeup racing a dispatch — keeps
// the queue position. Accounting depends only on the thread's own entry —
// any enqueued thread can be charged — which is what makes the leaf safe
// for the dequeue-on-dispatch protocol.
func (s *MLFQ) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || !e.queued {
		panic(fmt.Sprintf("mlfq: Charge of non-runnable thread %v", t))
	}
	s.unlink(e)
	if !runnable {
		return
	}
	if used <= 0 {
		s.insert(e, now, frontInsert)
		return
	}
	if timeFor(s.ips, used) >= s.base<<e.level {
		if e.level < len(s.levels)-1 {
			e.level++
		}
	}
	s.insert(e, now, tailInsert)
}

// Preempts implements Scheduler: a wakeup at a higher level (lower index)
// cuts the running thread short, so interactive threads get the CPU as
// soon as they wake — the behavior the interactive-vs-batch experiment
// measures against svr4.
func (s *MLFQ) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || !re.queued || !we.queued {
		return false
	}
	return we.level < re.level
}

// Len implements Scheduler.
func (s *MLFQ) Len() int { return s.count }
