package sched

import (
	"fmt"
	"math"

	"hsfq/internal/sim"
)

// RM is a Rate Monotonic scheduler: fixed priorities, shorter period runs
// first. The paper's Fig. 9 experiment schedules two periodic threads with
// RM inside one leaf of the hierarchy; this implementation reproduces that
// leaf. Threads without a period fall back to their explicit Priority
// (higher first), below all periodic threads.
type RM struct {
	quantum sim.Time
	entries map[*Thread]*rmEntry
	heap    sim.Heap[*rmEntry]
	seq     uint64
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*rmEntry
}

type rmEntry struct {
	t   *Thread
	key rmKey
	seq uint64
	idx int
}

// rmKey orders periodic threads by period (ascending) ahead of aperiodic
// threads by priority (descending).
type rmKey struct {
	period sim.Time // MaxInt64 for aperiodic
	prio   int
}

func (a rmKey) less(b rmKey) bool {
	if a.period != b.period {
		return a.period < b.period
	}
	return a.prio > b.prio
}

// HeapLess implements sim.HeapItem: highest rate-monotonic priority first,
// FIFO among equal keys.
func (e *rmEntry) HeapLess(o *rmEntry) bool {
	if e.key != o.key {
		return e.key.less(o.key)
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *rmEntry) HeapIndex() *int { return &e.idx }

// NewRM returns a Rate Monotonic scheduler. quantum <= 0 means
// run-until-block (preemption still occurs on higher-priority wakeups);
// the paper's Fig. 9 uses 25 ms quanta.
func NewRM(quantum sim.Time) *RM {
	if quantum <= 0 {
		quantum = sim.Time(1 << 62)
	}
	return &RM{quantum: quantum, entries: make(map[*Thread]*rmEntry)}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *RM) entryFor(t *Thread) *rmEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*rmEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &rmEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *RM) entryOf(t *Thread) *rmEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*rmEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Name implements Scheduler.
func (s *RM) Name() string { return "rm" }

func rmKeyFor(t *Thread) rmKey {
	if t.Period > 0 {
		return rmKey{period: t.Period, prio: t.Priority}
	}
	return rmKey{period: sim.Time(math.MaxInt64), prio: t.Priority}
}

// Enqueue implements Scheduler.
func (s *RM) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("rm: Enqueue of runnable thread %v", t))
	}
	e.key = rmKeyFor(t)
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
}

// Remove implements Scheduler.
func (s *RM) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("rm: Remove of non-runnable thread %v", t))
	}
	s.heap.Remove(e.idx)
}

// Pick implements Scheduler: highest rate-monotonic priority first.
func (s *RM) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	return s.heap.Min().t
}

// Quantum implements Scheduler.
func (s *RM) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler.
func (s *RM) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("rm: Charge of non-runnable thread %v", t))
	}
	if !runnable {
		s.heap.Remove(e.idx)
	}
}

// Preempts implements Scheduler: a higher-priority wakeup preempts.
func (s *RM) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || re.idx == -1 || we.idx == -1 {
		return false
	}
	return we.key.less(re.key)
}

// Len implements Scheduler.
func (s *RM) Len() int { return s.heap.Len() }

// SchedulableRM reports whether periodic demands are schedulable under Rate
// Monotonic by the Liu & Layland sufficient bound:
// sum(C_i/T_i) <= n(2^(1/n)-1). It is conservative: task sets above the
// bound may still be schedulable (up to 1.0 for harmonic periods).
func SchedulableRM(compute, period []sim.Time) bool {
	if len(compute) != len(period) {
		panic("sched: SchedulableRM with mismatched slice lengths")
	}
	n := len(compute)
	if n == 0 {
		return true
	}
	u := 0.0
	for i := range compute {
		if period[i] <= 0 {
			return false
		}
		u += float64(compute[i]) / float64(period[i])
	}
	bound := float64(n) * (math.Pow(2, 1/float64(n)) - 1)
	return u <= bound
}
