// Property-based check of the paper's Theorem 1: for any interval in
// which two threads f and g are both continuously runnable under SFQ,
//
//	| W_f(t1,t2)/phi_f  -  W_g(t1,t2)/phi_g |  <=  l_f/phi_f + l_g/phi_g
//
// where W is the work received in the interval and l_f is the maximum
// work thread f is charged for one scheduling decision. The test drives
// hundreds of seeded random workloads — random weights, random per-
// decision charges, random lengths — and checks the bound over EVERY
// interval, not just the whole run: with both threads runnable
// throughout, the worst interval gap equals the range (max minus min) of
// the prefix differences D_f(k) - D_g(k), where D is cumulative
// normalized work after k decisions.
//
// The same property is then required of the full hierarchy: internal/core
// schedules nodes with SFQ at every level, so two single-thread sibling
// nodes must satisfy the bound with the node weights as the rates — both
// as direct children of the root and at the bottom of deeper chains.
package sched_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// twoThreadTrial is one randomized workload: weights, per-decision charge
// caps, and length, all derived from the seed.
type twoThreadTrial struct {
	seed      int64
	wf, wg    float64
	lf, lg    int64 // max work per decision
	decisions int
}

func newTrial(seed int64) twoThreadTrial {
	rng := rand.New(rand.NewSource(seed))
	w := func() float64 { return math.Round((0.1+rng.Float64()*7.9)*100) / 100 }
	l := func() int64 { return 1 + rng.Int63n(2000) }
	return twoThreadTrial{
		seed: seed, wf: w(), wg: w(), lf: l(), lg: l(),
		decisions: 300 + rng.Intn(500),
	}
}

// drive runs the trial on s, with f and g enqueued and permanently
// runnable, and returns the worst interval gap and the Theorem 1 bound
// built from the OBSERVED maximum charges (which can only be <= the
// trial's caps, so the bound is the tightest honest one).
func drive(s sched.Scheduler, f, g *sched.Thread, tr twoThreadTrial) (gap, bound float64, err error) {
	rng := rand.New(rand.NewSource(tr.seed + 1))
	s.Enqueue(f, 0)
	s.Enqueue(g, 0)
	var now sim.Time
	var df, dg float64          // cumulative normalized work
	var maxLf, maxLg sched.Work // observed per-decision maxima
	minDelta, maxDelta := 0.0, 0.0
	for i := 0; i < tr.decisions; i++ {
		p := s.Pick(now)
		if p == nil {
			return 0, 0, fmt.Errorf("decision %d: Pick returned nil with both threads runnable", i)
		}
		var used sched.Work
		switch p {
		case f:
			used = sched.Work(1 + rng.Int63n(tr.lf))
			df += float64(used) / tr.wf
			if used > maxLf {
				maxLf = used
			}
		case g:
			used = sched.Work(1 + rng.Int63n(tr.lg))
			dg += float64(used) / tr.wg
			if used > maxLg {
				maxLg = used
			}
		default:
			return 0, 0, fmt.Errorf("decision %d: Pick returned unknown thread %v", i, p)
		}
		s.Charge(p, used, now, true)
		now += sim.Time(used) // 1 instruction ~ 1ns; only tags matter
		delta := df - dg
		if delta < minDelta {
			minDelta = delta
		}
		if delta > maxDelta {
			maxDelta = delta
		}
	}
	if maxLf == 0 || maxLg == 0 {
		return 0, 0, fmt.Errorf("a thread was never scheduled (f %d, g %d of %d decisions)",
			maxLf, maxLg, tr.decisions)
	}
	return maxDelta - minDelta, float64(maxLf)/tr.wf + float64(maxLg)/tr.wg, nil
}

// eps absorbs float64 rounding in the normalized-work sums.
const eps = 1e-6

func TestSFQFairnessBoundProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		tr := newTrial(seed)
		s := sched.NewSFQ(0)
		f := sched.NewThread(1, "f", tr.wf)
		g := sched.NewThread(2, "g", tr.wg)
		gap, bound, err := drive(s, f, g, tr)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", seed, tr, err)
		}
		if gap > bound+eps {
			t.Errorf("trial %d (%+v): fairness gap %v exceeds Theorem 1 bound %v",
				seed, tr, gap, bound)
		}
	}
}

// hierarchy builds a Structure whose two competing entities are single-
// thread leaf nodes at the given paths, with the trial's weights; the
// thread weights are irrelevant (each is alone in its leaf), so the
// node weights are the rates Theorem 1 sees at the contended level.
func hierarchy(t *testing.T, tr twoThreadTrial, pathF, pathG string) (*core.Structure, *sched.Thread, *sched.Thread) {
	t.Helper()
	st := core.NewStructure()
	nf, err := st.MknodPath(pathF, tr.wf, sched.NewSFQ(0))
	if err != nil {
		t.Fatalf("MknodPath(%q): %v", pathF, err)
	}
	ng, err := st.MknodPath(pathG, tr.wg, sched.NewSFQ(0))
	if err != nil {
		t.Fatalf("MknodPath(%q): %v", pathG, err)
	}
	f := sched.NewThread(1, "f", 1)
	g := sched.NewThread(2, "g", 1)
	if err := st.Attach(f, nf); err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(g, ng); err != nil {
		t.Fatal(err)
	}
	return st, f, g
}

func TestHierarchicalFairnessBoundProperty(t *testing.T) {
	// Sibling leaves directly under the root, and siblings at the bottom
	// of a single-child chain (the chain nodes get weight 1 and never
	// split bandwidth, so the leaf weights are still the effective rates).
	shapes := []struct{ name, pathF, pathG string }{
		{"root-siblings", "/f", "/g"},
		{"deep-siblings", "/sys/rt/f", "/sys/rt/g"},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				tr := newTrial(seed)
				st, f, g := hierarchy(t, tr, shape.pathF, shape.pathG)
				gap, bound, err := drive(st, f, g, tr)
				if err != nil {
					t.Fatalf("trial %d (%+v): %v", seed, tr, err)
				}
				if gap > bound+eps {
					t.Errorf("trial %d (%+v): hierarchical fairness gap %v exceeds bound %v",
						seed, tr, gap, bound)
				}
			}
		})
	}
}

// TestFairnessBoundIsTight rejects a vacuous bound: for equal weights and
// charges near the cap, the observed gap should come within an order of
// magnitude of the bound at least once across the trials — a regression
// here would suggest the checker is measuring the wrong quantity.
func TestFairnessBoundIsTight(t *testing.T) {
	best := 0.0
	for seed := int64(0); seed < 50; seed++ {
		tr := newTrial(seed)
		tr.wf, tr.wg = 1, 1
		s := sched.NewSFQ(0)
		f := sched.NewThread(1, "f", tr.wf)
		g := sched.NewThread(2, "g", tr.wg)
		gap, bound, err := drive(s, f, g, tr)
		if err != nil {
			t.Fatalf("trial %d: %v", seed, err)
		}
		if r := gap / bound; r > best {
			best = r
		}
	}
	if best < 0.1 {
		t.Errorf("gap never exceeded %.0f%% of the bound; the property check looks vacuous", best*100)
	}
}
