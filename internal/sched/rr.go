package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// RoundRobin is a single-queue round-robin scheduler with a fixed quantum.
// It stands in for the "unmodified kernel" baseline of the paper's Fig. 7
// overhead experiment: the cheapest predictable scheduler against which the
// hierarchical scheduler's cost is compared.
type RoundRobin struct {
	quantum sim.Time
	queue   []*Thread
}

// NewRoundRobin returns a round-robin scheduler; quantum <= 0 selects
// DefaultQuantum.
func NewRoundRobin(quantum sim.Time) *RoundRobin {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &RoundRobin{quantum: quantum}
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "rr" }

// Enqueue implements Scheduler.
func (r *RoundRobin) Enqueue(t *Thread, now sim.Time) {
	if r.index(t) != -1 {
		panic(fmt.Sprintf("rr: Enqueue of runnable thread %v", t))
	}
	r.queue = append(r.queue, t)
}

// Remove implements Scheduler.
func (r *RoundRobin) Remove(t *Thread, now sim.Time) {
	i := r.index(t)
	if i == -1 {
		panic(fmt.Sprintf("rr: Remove of non-runnable thread %v", t))
	}
	r.queue = append(r.queue[:i], r.queue[i+1:]...)
}

// Pick implements Scheduler: the head of the queue.
func (r *RoundRobin) Pick(now sim.Time) *Thread {
	if len(r.queue) == 0 {
		return nil
	}
	return r.queue[0]
}

// Quantum implements Scheduler.
func (r *RoundRobin) Quantum(t *Thread, now sim.Time) sim.Time { return r.quantum }

// Charge implements Scheduler: the charged thread rotates to the tail if it
// stays runnable.
func (r *RoundRobin) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	if len(r.queue) == 0 || r.queue[0] != t {
		panic(fmt.Sprintf("rr: Charge of thread %v that was not picked", t))
	}
	r.queue = r.queue[1:]
	if runnable {
		r.queue = append(r.queue, t)
	}
}

// Preempts implements Scheduler: round-robin never preempts mid-quantum.
func (r *RoundRobin) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (r *RoundRobin) Len() int { return len(r.queue) }

func (r *RoundRobin) index(t *Thread) int {
	for i, q := range r.queue {
		if q == t {
			return i
		}
	}
	return -1
}

// FIFO is a run-to-block scheduler: the thread at the head of the queue
// runs until it blocks or exits. It models the SVR4 fixed-priority "system"
// discipline within a single priority and is useful as a degenerate
// baseline in fairness tests.
type FIFO struct {
	queue []*Thread
}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(t *Thread, now sim.Time) {
	if f.index(t) != -1 {
		panic(fmt.Sprintf("fifo: Enqueue of runnable thread %v", t))
	}
	f.queue = append(f.queue, t)
}

// Remove implements Scheduler.
func (f *FIFO) Remove(t *Thread, now sim.Time) {
	i := f.index(t)
	if i == -1 {
		panic(fmt.Sprintf("fifo: Remove of non-runnable thread %v", t))
	}
	f.queue = append(f.queue[:i], f.queue[i+1:]...)
}

// Pick implements Scheduler.
func (f *FIFO) Pick(now sim.Time) *Thread {
	if len(f.queue) == 0 {
		return nil
	}
	return f.queue[0]
}

// Quantum implements Scheduler: effectively unbounded; FIFO threads run
// until they block.
func (f *FIFO) Quantum(t *Thread, now sim.Time) sim.Time { return sim.Time(1 << 62) }

// Charge implements Scheduler: the head keeps its place unless it blocked.
func (f *FIFO) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	if len(f.queue) == 0 || f.queue[0] != t {
		panic(fmt.Sprintf("fifo: Charge of thread %v that was not picked", t))
	}
	if !runnable {
		f.queue = f.queue[1:]
	}
}

// Preempts implements Scheduler.
func (f *FIFO) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.queue) }

func (f *FIFO) index(t *Thread) int {
	for i, q := range f.queue {
		if q == t {
			return i
		}
	}
	return -1
}
