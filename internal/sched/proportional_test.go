package sched

import (
	"math"
	"testing"

	"hsfq/internal/sim"
)

func TestLotteryProportionalInExpectation(t *testing.T) {
	rng := sim.NewRand(123)
	s := NewLottery(0, rng)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 3)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	got := serve(s, 40000, 100)
	ratio := float64(got[b]) / float64(got[a])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("long-run ratio %v, want ~3", ratio)
	}
}

func TestLotteryDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		s := NewLottery(0, sim.NewRand(99))
		a := NewThread(1, "a", 1)
		b := NewThread(2, "b", 1)
		s.Enqueue(a, 0)
		s.Enqueue(b, 0)
		var picks []int
		for i := 0; i < 200; i++ {
			p := s.Pick(0)
			picks = append(picks, p.ID)
			s.Charge(p, 1, 0, true)
		}
		return picks
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different lottery outcomes")
		}
	}
}

func TestLotteryFractionalTickets(t *testing.T) {
	s := NewLottery(0, sim.NewRand(7))
	a := NewThread(1, "a", 0.5)
	b := NewThread(2, "b", 1.5)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	if s.TotalWeight() != 2 {
		t.Errorf("total tickets %v", s.TotalWeight())
	}
	got := serve(s, 20000, 100)
	ratio := float64(got[b]) / float64(got[a])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("ratio %v, want ~3", ratio)
	}
}

func TestStrideExactInterleave(t *testing.T) {
	s := NewStride(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 2)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	// With weights 1:2 and equal quanta, every window of 3 decisions
	// contains exactly 1 a and 2 b (after the start-up transient).
	var picks []int
	for i := 0; i < 30; i++ {
		p := s.Pick(0)
		picks = append(picks, p.ID)
		s.Charge(p, 100, 0, true)
	}
	for start := 3; start+3 <= len(picks); start += 3 {
		countA := 0
		for _, id := range picks[start : start+3] {
			if id == 1 {
				countA++
			}
		}
		if countA != 1 {
			t.Fatalf("window at %d has %d picks of a: %v", start, countA, picks)
		}
	}
}

func TestStrideNoSleepCredit(t *testing.T) {
	s := NewStride(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.Enqueue(a, 0)
	for i := 0; i < 100; i++ {
		p := s.Pick(0)
		s.Charge(p, 1000, 0, true)
	}
	passA := s.Pass(a)
	s.Enqueue(b, 0)
	// The global pass is captured at Pick time, so a joiner may trail the
	// last charge by at most one quantum (1000/weight) — bounded lag, no
	// binge.
	if s.Pass(b) < passA-1000 {
		t.Errorf("joining thread pass %v far below %v: would binge", s.Pass(b), passA)
	}
	got := serve(s, 1000, 1000)
	if math.Abs(float64(got[a])-float64(got[b])) > 1000 {
		t.Errorf("post-join split %v:%v", got[a], got[b])
	}
}

func TestStrideTotalWeight(t *testing.T) {
	s := NewStride(0)
	a := NewThread(1, "a", 2)
	s.Enqueue(a, 0)
	if s.TotalWeight() != 2 {
		t.Errorf("total %v", s.TotalWeight())
	}
	s.Pick(0)
	s.Charge(a, 1, 0, false)
	if s.TotalWeight() != 0 {
		t.Errorf("total %v after block", s.TotalWeight())
	}
}

func TestEEVDFProportionalAllocation(t *testing.T) {
	s := NewEEVDF(0, 1000)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 3)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	got := serve(s, 8000, 1000)
	ratio := float64(got[b]) / float64(got[a])
	if ratio < 2.95 || ratio > 3.05 {
		t.Errorf("ratio %v, want 3", ratio)
	}
}

func TestEEVDFEligibilityGate(t *testing.T) {
	// A thread cannot run ahead of its eligible time: after consuming a
	// full request, its next request is eligible only at its old virtual
	// deadline, letting the other thread catch up.
	s := NewEEVDF(0, 1000)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	first := s.Pick(0)
	s.Charge(first, 1000, 0, true) // full request consumed
	second := s.Pick(0)
	if second == first {
		t.Errorf("same thread served twice while peer was eligible")
	}
	s.Charge(second, 1000, 0, true)
}

func TestEEVDFVirtualTimeAdvances(t *testing.T) {
	s := NewEEVDF(0, 1000)
	a := NewThread(1, "a", 2)
	s.Enqueue(a, 0)
	v0 := s.VirtualTime()
	s.Pick(0)
	s.Charge(a, 500, 0, true)
	if s.VirtualTime() != v0+250 {
		t.Errorf("vtime advanced to %v, want %v (used/totalWeight)", s.VirtualTime(), v0+250)
	}
}

func TestEEVDFNoSleepCredit(t *testing.T) {
	s := NewEEVDF(0, 1000)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.Enqueue(a, 0)
	for i := 0; i < 50; i++ {
		s.Pick(0)
		s.Charge(a, 1000, 0, true)
	}
	s.Enqueue(b, 0)
	got := serve(s, 400, 1000)
	if math.Abs(float64(got[a])-float64(got[b])) > 2000 {
		t.Errorf("post-join split %v:%v", got[a], got[b])
	}
}

// TestEEVDFLagBound: EEVDF's defining property is bounded lag — each
// client's service never drifts from its ideal proportional share by more
// than one request size in normalized terms.
func TestEEVDFLagBound(t *testing.T) {
	const req = 1000
	s := NewEEVDF(0, req)
	weights := []float64{1, 2, 5}
	threads := make([]*Thread, len(weights))
	total := 0.0
	for i, w := range weights {
		threads[i] = NewThread(i+1, "t", w)
		s.Enqueue(threads[i], 0)
		total += w
	}
	served := make(map[*Thread]float64)
	elapsed := 0.0
	for round := 0; round < 5000; round++ {
		p := s.Pick(0)
		s.Charge(p, req, 0, true)
		served[p] += req
		elapsed += req
		for i, th := range threads {
			ideal := elapsed * weights[i] / total
			lag := math.Abs(served[th]-ideal) / weights[i]
			// One request per weight unit of slack on either side.
			if lag > 2*req {
				t.Fatalf("round %d: thread %d lag %v exceeds 2 requests", round, i, lag)
			}
		}
	}
}
