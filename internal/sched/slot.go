package sched

// Slot is an owner-validated cache cell: one (owner, value) pair that lets
// a scheduler, hierarchy, or machine pin its per-thread state directly on
// the Thread and skip a map[*Thread] lookup on every scheduling decision.
//
// The owner token makes the cell safe under movement: when a thread is
// handed to a different scheduler (hsfq_move), the new owner's first
// lookup misses, falls back to its own authoritative map, and re-installs
// the cell. The maps therefore remain the source of truth for cold-path
// ownership checks and validation; the Slot is purely a hot-path cache.
//
// Owners and values must be pointers (they are stored in interfaces, and
// pointers neither allocate on conversion nor fail comparison).
type Slot struct {
	owner any
	value any
}

// Get returns the cached value if it was installed by owner.
func (s *Slot) Get(owner any) (any, bool) {
	if s.owner == owner {
		return s.value, true
	}
	return nil, false
}

// Set installs value for owner, displacing any other owner's cache.
func (s *Slot) Set(owner, value any) {
	s.owner, s.value = owner, value
}

// Drop clears the cell if it is held by owner.
func (s *Slot) Drop(owner any) {
	if s.owner == owner {
		s.owner, s.value = nil, nil
	}
}
