package sched

import (
	"testing"

	"hsfq/internal/sim"
)

// allSchedulers returns one fresh instance of every Scheduler
// implementation, for contract tests that must hold across algorithms.
func allSchedulers() map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"sfq":      func() Scheduler { return NewSFQ(10 * sim.Millisecond) },
		"rr":       func() Scheduler { return NewRoundRobin(10 * sim.Millisecond) },
		"fifo":     func() Scheduler { return NewFIFO() },
		"edf":      func() Scheduler { return NewEDF(10 * sim.Millisecond) },
		"rm":       func() Scheduler { return NewRM(10 * sim.Millisecond) },
		"svr4":     func() Scheduler { return NewSVR4(nil, 100_000_000, 25*sim.Millisecond) },
		"lottery":  func() Scheduler { return NewLottery(10*sim.Millisecond, sim.NewRand(1)) },
		"priority": func() Scheduler { return NewPriority(10 * sim.Millisecond) },
		"stride":   func() Scheduler { return NewStride(10 * sim.Millisecond) },
		"eevdf":    func() Scheduler { return NewEEVDF(10*sim.Millisecond, 1_000_000) },
		"reserves": func() Scheduler { return NewReserves(10 * sim.Millisecond) },
		"mlfq":     func() Scheduler { return NewMLFQ(4, 10*sim.Millisecond, sim.Second, 100_000_000) },
		"drr":      func() Scheduler { return NewDRR(10*sim.Millisecond, 100_000_000) },
	}
}

func testThreads(n int) []*Thread {
	out := make([]*Thread, n)
	for i := range out {
		out[i] = NewThread(i+1, "t", float64(i+1))
		out[i].Period = sim.Time(i+1) * 100 * sim.Millisecond
	}
	return out
}

// TestContractPickCharge: every scheduler must serve all enqueued threads
// through the Pick/Charge protocol without losing or duplicating any, and
// report Len consistently.
func TestContractPickCharge(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			threads := testThreads(5)
			for i, th := range threads {
				s.Enqueue(th, sim.Time(i))
				if s.Len() != i+1 {
					t.Fatalf("Len=%d after %d enqueues", s.Len(), i+1)
				}
			}
			served := make(map[*Thread]int)
			now := sim.Time(100)
			for i := 0; i < 200; i++ {
				p := s.Pick(now)
				if p == nil {
					t.Fatal("Pick returned nil with runnable threads")
				}
				served[p]++
				s.Charge(p, 1_000_000, now, true)
				now += sim.Millisecond
			}
			// Proportional-share schedulers must serve everyone;
			// priority-based ones (fifo, edf, rm, svr4) legitimately
			// starve low-priority threads.
			switch name {
			case "sfq", "rr", "lottery", "stride", "eevdf", "mlfq", "drr":
				for _, th := range threads {
					if served[th] == 0 {
						t.Errorf("thread %v never served in 200 rounds", th)
					}
				}
			}
			// Drain: charge each picked thread as blocking.
			for s.Len() > 0 {
				p := s.Pick(now)
				s.Charge(p, 1000, now, false)
				now += sim.Millisecond
			}
			if p := s.Pick(now); p != nil {
				t.Errorf("Pick on empty scheduler returned %v", p)
			}
		})
	}
}

// TestContractSMPDequeueProtocol: every leaf kind declared SMPSafe must
// survive the multicore dequeue-on-dispatch protocol — Pick, zero-work
// blocking Charge (removal), then Enqueue followed by a position-
// independent Charge of the segment — without panicking or losing
// threads. The capability list must also cover every registered leaf,
// so a newly registered scheduler makes an explicit safe/unsafe call.
func TestContractSMPDequeueProtocol(t *testing.T) {
	schedulers := allSchedulers()
	for _, name := range Names() {
		if _, ok := schedulers[name]; !ok {
			t.Errorf("registered leaf %q missing from allSchedulers", name)
		}
	}
	for name, mk := range schedulers {
		if !SMPSafe(name) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			s := mk()
			threads := testThreads(4)
			for _, th := range threads {
				s.Enqueue(th, 0)
			}
			now := sim.Time(1)
			for i := 0; i < 100; i++ {
				p := s.Pick(now)
				if p == nil {
					t.Fatal("Pick returned nil with runnable threads")
				}
				s.Charge(p, 0, now, false) // dequeue: remove at dispatch
				if s.Len() != len(threads)-1 {
					t.Fatalf("Len=%d with one thread dispatched", s.Len())
				}
				now += sim.Millisecond
				s.Enqueue(p, now)
				s.Charge(p, 1_000_000, now, true) // segment-end re-stamp
				if s.Len() != len(threads) {
					t.Fatalf("Len=%d after requeue", s.Len())
				}
			}
		})
	}
}

// TestContractRemove: removing a runnable (not picked) thread shrinks the
// set and the thread is never served again.
func TestContractRemove(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			threads := testThreads(4)
			for _, th := range threads {
				s.Enqueue(th, 0)
			}
			victim := threads[2]
			s.Remove(victim, 0)
			if s.Len() != 3 {
				t.Fatalf("Len=%d after remove, want 3", s.Len())
			}
			now := sim.Time(1)
			for i := 0; i < 50; i++ {
				p := s.Pick(now)
				if p == victim {
					t.Fatal("removed thread was served")
				}
				s.Charge(p, 1000, now, true)
				now += sim.Millisecond
			}
		})
	}
}

// TestContractReEnqueue: a thread that blocks can be re-enqueued and
// served again.
func TestContractReEnqueue(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			th := testThreads(1)[0]
			s.Enqueue(th, 0)
			p := s.Pick(0)
			s.Charge(p, 500, 0, false)
			if s.Len() != 0 {
				t.Fatalf("Len=%d after blocking charge", s.Len())
			}
			s.Enqueue(th, sim.Second)
			if s.Len() != 1 {
				t.Fatalf("Len=%d after re-enqueue", s.Len())
			}
			if got := s.Pick(sim.Second); got != th {
				t.Fatalf("Pick=%v after re-enqueue", got)
			}
			s.Charge(th, 500, sim.Second, true)
		})
	}
}

// TestContractDoubleEnqueuePanics: enqueueing a runnable thread is a bug.
func TestContractDoubleEnqueuePanics(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			th := testThreads(1)[0]
			s.Enqueue(th, 0)
			defer func() {
				if recover() == nil {
					t.Error("double enqueue did not panic")
				}
			}()
			s.Enqueue(th, 0)
		})
	}
}

// TestContractRemoveMissingPanics: removing a thread that is not runnable
// is a bug.
func TestContractRemoveMissingPanics(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			th := testThreads(1)[0]
			defer func() {
				if recover() == nil {
					t.Error("remove of missing thread did not panic")
				}
			}()
			s.Remove(th, 0)
		})
	}
}

// TestContractQuantumPositive: every scheduler grants a positive quantum.
func TestContractQuantumPositive(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			th := testThreads(1)[0]
			s.Enqueue(th, 0)
			p := s.Pick(0)
			if q := s.Quantum(p, 0); q <= 0 {
				t.Errorf("quantum %v", q)
			}
			s.Charge(p, 1, 0, false)
		})
	}
}

// TestContractNames: names are non-empty and unique.
func TestContractNames(t *testing.T) {
	seen := map[string]bool{}
	for key, mk := range allSchedulers() {
		n := mk().Name()
		if n == "" {
			t.Errorf("%s: empty name", key)
		}
		if seen[n] {
			t.Errorf("duplicate scheduler name %q", n)
		}
		seen[n] = true
	}
}

// TestThreadBasics covers the Thread helpers.
func TestThreadBasics(t *testing.T) {
	th := NewThread(3, "x", 2)
	if th.String() != "x#3" {
		t.Errorf("String = %q", th.String())
	}
	var nilT *Thread
	if nilT.String() != "<idle>" {
		t.Errorf("nil String = %q", nilT.String())
	}
	if StateNew.String() != "new" || StateExited.String() != "exited" {
		t.Error("state names wrong")
	}
	if ThreadState(99).String() == "" {
		t.Error("out-of-range state name empty")
	}
	th.Period = 100
	if th.Deadline() != 100 {
		t.Error("Deadline should default to Period")
	}
	th.RelDeadline = 50
	if th.Deadline() != 50 {
		t.Error("explicit RelDeadline ignored")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero weight did not panic")
		}
	}()
	NewThread(1, "bad", 0)
}
