package sched

import (
	"container/heap"
	"fmt"
	"math"

	"hsfq/internal/sim"
)

// EDF is an Earliest Deadline First scheduler for hard real-time leaf
// classes (§1: "Conventional schedulers such as the Earliest Deadline First
// ... are suitable for such applications").
//
// A thread's job deadline is assigned when it is enqueued: now +
// t.Deadline(). Periodic programs wake the thread exactly at each release,
// so the deadline of job j released at r_j is r_j + D. Threads with no
// period and no relative deadline are treated as background (infinite
// deadline).
type EDF struct {
	quantum sim.Time
	entries map[*Thread]*edfEntry
	heap    edfHeap
	seq     uint64
}

type edfEntry struct {
	t        *Thread
	deadline sim.Time
	seq      uint64
	idx      int
}

type edfHeap []*edfEntry

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h edfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *edfHeap) Push(x any) {
	e := x.(*edfEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewEDF returns an EDF scheduler. quantum bounds how long a job may run
// before the scheduler re-examines the queue; <= 0 means jobs run until
// they block or a wakeup preempts them.
func NewEDF(quantum sim.Time) *EDF {
	if quantum <= 0 {
		quantum = sim.Time(1 << 62)
	}
	return &EDF{quantum: quantum, entries: make(map[*Thread]*edfEntry)}
}

// Name implements Scheduler.
func (s *EDF) Name() string { return "edf" }

// Deadline returns the absolute deadline of t's current job, or the maximum
// time if t is background or not runnable.
func (s *EDF) Deadline(t *Thread) sim.Time {
	if e, ok := s.entries[t]; ok && e.idx != -1 {
		return e.deadline
	}
	return sim.Time(math.MaxInt64)
}

// Enqueue implements Scheduler.
func (s *EDF) Enqueue(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil {
		e = &edfEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	if e.idx != -1 {
		panic(fmt.Sprintf("edf: Enqueue of runnable thread %v", t))
	}
	if d := t.Deadline(); d > 0 {
		e.deadline = now + d
	} else {
		e.deadline = sim.Time(math.MaxInt64)
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

// Remove implements Scheduler.
func (s *EDF) Remove(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("edf: Remove of non-runnable thread %v", t))
	}
	heap.Remove(&s.heap, e.idx)
}

// Pick implements Scheduler: earliest absolute deadline first.
func (s *EDF) Pick(now sim.Time) *Thread {
	if len(s.heap) == 0 {
		return nil
	}
	return s.heap[0].t
}

// Quantum implements Scheduler.
func (s *EDF) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler. EDF keeps the job's deadline across
// preemptions; a blocked job gets a fresh deadline at its next release.
func (s *EDF) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("edf: Charge of non-runnable thread %v", t))
	}
	if !runnable {
		heap.Remove(&s.heap, e.idx)
	}
}

// Preempts implements Scheduler: a woken job with an earlier deadline
// preempts immediately.
func (s *EDF) Preempts(running, woken *Thread, now sim.Time) bool {
	re, ok1 := s.entries[running]
	we, ok2 := s.entries[woken]
	if !ok1 || !ok2 || re.idx == -1 || we.idx == -1 {
		return false
	}
	return we.deadline < re.deadline
}

// Len implements Scheduler.
func (s *EDF) Len() int { return len(s.heap) }

// SchedulableEDF reports whether a set of periodic demands (compute time
// per period) is schedulable under EDF on a dedicated CPU: sum(C_i/T_i) <=
// 1 (Liu & Layland). Used by the QoS manager's deterministic admission
// control for hard real-time classes.
func SchedulableEDF(compute, period []sim.Time) bool {
	if len(compute) != len(period) {
		panic("sched: SchedulableEDF with mismatched slice lengths")
	}
	u := 0.0
	for i := range compute {
		if period[i] <= 0 {
			return false
		}
		u += float64(compute[i]) / float64(period[i])
	}
	return u <= 1.0
}
