package sched

import (
	"fmt"
	"math"

	"hsfq/internal/sim"
)

// EDF is an Earliest Deadline First scheduler for hard real-time leaf
// classes (§1: "Conventional schedulers such as the Earliest Deadline First
// ... are suitable for such applications").
//
// A thread's job deadline is assigned when it is enqueued: now +
// t.Deadline(). Periodic programs wake the thread exactly at each release,
// so the deadline of job j released at r_j is r_j + D. Threads with no
// period and no relative deadline are treated as background (infinite
// deadline).
type EDF struct {
	quantum sim.Time
	entries map[*Thread]*edfEntry
	heap    sim.Heap[*edfEntry]
	seq     uint64
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*edfEntry
}

type edfEntry struct {
	t        *Thread
	deadline sim.Time
	seq      uint64
	idx      int
}

// HeapLess implements sim.HeapItem: earliest deadline first, FIFO among
// equal deadlines.
func (e *edfEntry) HeapLess(o *edfEntry) bool {
	if e.deadline != o.deadline {
		return e.deadline < o.deadline
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *edfEntry) HeapIndex() *int { return &e.idx }

// NewEDF returns an EDF scheduler. quantum bounds how long a job may run
// before the scheduler re-examines the queue; <= 0 means jobs run until
// they block or a wakeup preempts them.
func NewEDF(quantum sim.Time) *EDF {
	if quantum <= 0 {
		quantum = sim.Time(1 << 62)
	}
	return &EDF{quantum: quantum, entries: make(map[*Thread]*edfEntry)}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *EDF) entryFor(t *Thread) *edfEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*edfEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &edfEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *EDF) entryOf(t *Thread) *edfEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*edfEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Name implements Scheduler.
func (s *EDF) Name() string { return "edf" }

// Deadline returns the absolute deadline of t's current job, or the maximum
// time if t is background or not runnable.
func (s *EDF) Deadline(t *Thread) sim.Time {
	if e := s.entryOf(t); e != nil && e.idx != -1 {
		return e.deadline
	}
	return sim.Time(math.MaxInt64)
}

// Enqueue implements Scheduler.
func (s *EDF) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("edf: Enqueue of runnable thread %v", t))
	}
	if d := t.Deadline(); d > 0 {
		e.deadline = now + d
	} else {
		e.deadline = sim.Time(math.MaxInt64)
	}
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
}

// Remove implements Scheduler.
func (s *EDF) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("edf: Remove of non-runnable thread %v", t))
	}
	s.heap.Remove(e.idx)
}

// Pick implements Scheduler: earliest absolute deadline first.
func (s *EDF) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	return s.heap.Min().t
}

// Quantum implements Scheduler.
func (s *EDF) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler. EDF keeps the job's deadline across
// preemptions; a blocked job gets a fresh deadline at its next release.
func (s *EDF) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("edf: Charge of non-runnable thread %v", t))
	}
	if !runnable {
		s.heap.Remove(e.idx)
	}
}

// Preempts implements Scheduler: a woken job with an earlier deadline
// preempts immediately.
func (s *EDF) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || re.idx == -1 || we.idx == -1 {
		return false
	}
	return we.deadline < re.deadline
}

// Len implements Scheduler.
func (s *EDF) Len() int { return s.heap.Len() }

// SchedulableEDF reports whether a set of periodic demands (compute time
// per period) is schedulable under EDF on a dedicated CPU: sum(C_i/T_i) <=
// 1 (Liu & Layland). Used by the QoS manager's deterministic admission
// control for hard real-time classes.
func SchedulableEDF(compute, period []sim.Time) bool {
	if len(compute) != len(period) {
		panic("sched: SchedulableEDF with mismatched slice lengths")
	}
	u := 0.0
	for i := range compute {
		if period[i] <= 0 {
			return false
		}
		u += float64(compute[i]) / float64(period[i])
	}
	return u <= 1.0
}
