package sched

import (
	"testing"
	"testing/quick"

	"hsfq/internal/sim"
)

func ms(v int64) sim.Time { return sim.Time(v) * sim.Millisecond }

func TestResponseTimesRMClassic(t *testing.T) {
	// The textbook example: C = {1, 2, 3}, T = {4, 6, 10}.
	// R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3; R3: 3 + ceil(R/4)*1 + ceil(R/6)*2
	// -> fixed point at 10 (3+3*1+2*2=10; check: ceil(10/4)=3, ceil(10/6)=2).
	resp, ok := ResponseTimesRM([]sim.Time{ms(1), ms(2), ms(3)}, []sim.Time{ms(4), ms(6), ms(10)})
	if !ok {
		t.Fatal("classic set reported unschedulable")
	}
	want := []sim.Time{ms(1), ms(3), ms(10)}
	for i := range want {
		if resp[i] != want[i] {
			t.Errorf("R[%d] = %v, want %v", i, resp[i], want[i])
		}
	}
}

func TestSchedulableRMExactHarmonic(t *testing.T) {
	// Harmonic periods at utilization 1.0: Liu-Layland rejects, RTA
	// accepts (and RM really schedules it).
	compute := []sim.Time{ms(10), ms(20), ms(40)}
	period := []sim.Time{ms(20), ms(40), ms(160)}
	// u = 0.5 + 0.5 + 0.25 = 1.25?? -> adjust: 10/20 + 20/80 + 40/160 = 1.0
	period = []sim.Time{ms(20), ms(80), ms(160)}
	u := 0.0
	for i := range compute {
		u += float64(compute[i]) / float64(period[i])
	}
	if u != 1.0 {
		t.Fatalf("test setup: u=%v", u)
	}
	if SchedulableRM(compute, period) {
		t.Error("Liu-Layland accepted u=1.0 for n=3 (bound is 0.78)")
	}
	if !SchedulableRMExact(compute, period) {
		t.Error("RTA rejected a harmonic set at u=1.0")
	}
}

func TestSchedulableRMExactRejectsOverload(t *testing.T) {
	if SchedulableRMExact([]sim.Time{ms(60), ms(60)}, []sim.Time{ms(100), ms(100)}) {
		t.Error("u=1.2 accepted")
	}
	if !SchedulableRMExact(nil, nil) {
		t.Error("empty set rejected")
	}
}

func TestRTAOrderIndependence(t *testing.T) {
	// The result must not depend on input order.
	c1 := []sim.Time{ms(3), ms(1), ms(2)}
	p1 := []sim.Time{ms(10), ms(4), ms(6)}
	resp, ok := ResponseTimesRM(c1, p1)
	if !ok {
		t.Fatal("unschedulable")
	}
	if resp[1] != ms(1) || resp[2] != ms(3) || resp[0] != ms(10) {
		t.Errorf("resp %v", resp)
	}
}

// TestRTAAgreesWithLiuLayland: anything the sufficient bound accepts, the
// exact test must also accept (RTA dominates Liu-Layland).
func TestRTAAgreesWithLiuLayland(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		n := rng.Intn(4) + 1
		compute := make([]sim.Time, n)
		period := make([]sim.Time, n)
		for i := 0; i < n; i++ {
			period[i] = sim.Time(rng.Intn(400)+20) * sim.Millisecond
			compute[i] = sim.Time(rng.Intn(int(period[i]/4)) + 1)
		}
		if SchedulableRM(compute, period) && !SchedulableRMExact(compute, period) {
			t.Logf("seed %d: LL accepted but RTA rejected C=%v T=%v", seed, compute, period)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
