package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// DRR is a dynamic-quantum round robin in the spirit of arxiv 1309.3096:
// a single FIFO of runnable threads, but each thread's quantum adapts to
// its observed burst lengths instead of staying fixed. After every charged
// segment the thread's quantum moves halfway toward the observed burst,
//
//	q' = clamp((q + burst) / 2, base/8, base*8)
//
// so short-burst (interactive) threads converge to short quanta — they are
// revisited more often — while CPU-bound threads converge to long quanta
// and amortize switch cost. The adaptation is monotone: the quantum moves
// toward the burst and never past it, a property the seeded trials in
// drr_prop_test.go pin down.
//
// The queue is an intrusive doubly-linked list and Charge re-stamps any
// enqueued thread (no remembered pick, no head-only accounting), so DRR is
// safe for the multicore dequeue-on-dispatch protocol and allocation-free
// in steady state.
type DRR struct {
	base  sim.Time // initial quantum and the center of the clamp band
	minQ  sim.Time // base / drrAdaptRange, floored at 1
	maxQ  sim.Time // base * drrAdaptRange
	ips   int64    // CPU speed, to convert charged Work to time
	list  drrList  // intrusive round-robin queue
	lists map[*Thread]*drrEntry
	count int
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*drrEntry
}

// drrList is the intrusive FIFO of runnable entries.
type drrList struct{ head, tail *drrEntry }

// drrAdaptRange bounds how far a thread's quantum may drift from the base
// in either direction.
const drrAdaptRange = 8

// DRRQuantumOverflows reports whether the base quantum's adaptation band
// [base/8, base*8] would overflow sim.Time. Zero selects the same default
// as NewDRR, which panics on exactly the values this reports —
// simconfig.Validate rejects them up front.
func DRRQuantumOverflows(base sim.Time) bool {
	if base <= 0 {
		base = DefaultQuantum
	}
	return base > sim.Time(1<<62)/drrAdaptRange
}

type drrEntry struct {
	t          *Thread
	quantum    sim.Time
	next, prev *drrEntry
	queued     bool
}

// NewDRR returns a dynamic-quantum round-robin scheduler. base is the
// initial per-thread quantum (<= 0 selects DefaultQuantum); quanta adapt
// within [base/8, base*8]. ips is the CPU speed in instructions per
// second, needed to measure observed burst lengths.
func NewDRR(base sim.Time, ips int64) *DRR {
	if DRRQuantumOverflows(base) {
		panic(fmt.Sprintf("drr: base quantum %v overflows the adaptation band", base))
	}
	if base <= 0 {
		base = DefaultQuantum
	}
	if ips <= 0 {
		panic("drr: non-positive instruction rate")
	}
	minQ := base / drrAdaptRange
	if minQ < 1 {
		minQ = 1
	}
	return &DRR{
		base:  base,
		minQ:  minQ,
		maxQ:  base * drrAdaptRange,
		ips:   ips,
		lists: make(map[*Thread]*drrEntry),
	}
}

// Name implements Scheduler.
func (s *DRR) Name() string { return "drr" }

// Bounds returns the clamp band of the adaptive quantum, for tests.
func (s *DRR) Bounds() (lo, hi sim.Time) { return s.minQ, s.maxQ }

// ThreadQuantum returns t's current adaptive quantum, for tests.
func (s *DRR) ThreadQuantum(t *Thread) sim.Time { return s.entry(t).quantum }

// entry returns t's entry, creating and caching it on first contact.
func (s *DRR) entry(t *Thread) *drrEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*drrEntry)
	}
	e := s.lists[t]
	if e == nil {
		e = &drrEntry{t: t, quantum: s.base}
		s.lists[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *DRR) entryOf(t *Thread) *drrEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*drrEntry)
	}
	if e := s.lists[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Enqueue implements Scheduler: tail of the round-robin queue.
func (s *DRR) Enqueue(t *Thread, now sim.Time) {
	e := s.entry(t)
	if e.queued {
		panic(fmt.Sprintf("drr: Enqueue of runnable thread %v", t))
	}
	s.insert(e, tailInsert)
}

func (s *DRR) insert(e *drrEntry, front bool) {
	if front {
		e.next = s.list.head
		e.prev = nil
		if s.list.head != nil {
			s.list.head.prev = e
		} else {
			s.list.tail = e
		}
		s.list.head = e
	} else {
		e.prev = s.list.tail
		e.next = nil
		if s.list.tail != nil {
			s.list.tail.next = e
		} else {
			s.list.head = e
		}
		s.list.tail = e
	}
	e.queued = true
	s.count++
}

func (s *DRR) unlink(e *drrEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.list.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.list.tail = e.prev
	}
	e.next, e.prev = nil, nil
	e.queued = false
	s.count--
}

// Remove implements Scheduler.
func (s *DRR) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || !e.queued {
		panic(fmt.Sprintf("drr: Remove of non-runnable thread %v", t))
	}
	s.unlink(e)
}

// Pick implements Scheduler: the head of the queue.
func (s *DRR) Pick(now sim.Time) *Thread {
	if s.list.head == nil {
		return nil
	}
	return s.list.head.t
}

// Quantum implements Scheduler: the thread's adaptive quantum.
func (s *DRR) Quantum(t *Thread, now sim.Time) sim.Time { return s.entry(t).quantum }

// Charge implements Scheduler: the quantum moves halfway toward the
// observed burst (clamped to the adaptation band) and the thread rotates
// to the tail. A zero-length charge — the dequeue-on-dispatch protocol's
// removal step, or a wakeup racing a dispatch — keeps both the quantum and
// the queue position.
func (s *DRR) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || !e.queued {
		panic(fmt.Sprintf("drr: Charge of non-runnable thread %v", t))
	}
	s.unlink(e)
	if used > 0 {
		burst := timeFor(s.ips, used)
		q := (e.quantum + burst) / 2
		if q < s.minQ {
			q = s.minQ
		}
		if q > s.maxQ {
			q = s.maxQ
		}
		e.quantum = q
	}
	if !runnable {
		return
	}
	if used > 0 {
		s.insert(e, tailInsert)
	} else {
		s.insert(e, frontInsert)
	}
}

// Preempts implements Scheduler: round robin never preempts mid-quantum.
func (s *DRR) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *DRR) Len() int { return s.count }
