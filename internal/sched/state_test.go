package sched

import (
	"bytes"
	"testing"

	"hsfq/internal/sim"
)

// stateHarness builds one scheduler of each kind plus the thread set it
// schedules, so the round-trip test can rebuild an identical fresh
// instance for the restore side.
type stateHarness struct {
	name  string
	build func() (Scheduler, []*Thread)
}

func stateHarnesses() []stateHarness {
	mkThreads := func() []*Thread {
		a := NewThread(1, "a", 1)
		b := NewThread(2, "b", 2)
		c := NewThread(3, "c", 4)
		c.Priority = 7
		b.Priority = 3
		a.Period, a.RelDeadline = 30*sim.Millisecond, 30*sim.Millisecond
		b.Period, b.RelDeadline = 50*sim.Millisecond, 40*sim.Millisecond
		return []*Thread{a, b, c}
	}
	return []stateHarness{
		{"sfq", func() (Scheduler, []*Thread) {
			ts := mkThreads()
			s := NewSFQ(10 * sim.Millisecond)
			s.SetThreadQuantum(ts[1], 5*sim.Millisecond)
			return s, ts
		}},
		{"rr", func() (Scheduler, []*Thread) { return NewRoundRobin(10 * sim.Millisecond), mkThreads() }},
		{"fifo", func() (Scheduler, []*Thread) { return NewFIFO(), mkThreads() }},
		{"priority", func() (Scheduler, []*Thread) { return NewPriority(10 * sim.Millisecond), mkThreads() }},
		{"edf", func() (Scheduler, []*Thread) { return NewEDF(10 * sim.Millisecond), mkThreads() }},
		{"rm", func() (Scheduler, []*Thread) { return NewRM(10 * sim.Millisecond), mkThreads() }},
		{"svr4", func() (Scheduler, []*Thread) {
			ts := mkThreads()
			s := NewSVR4(nil, 100_000_000, 25*sim.Millisecond)
			s.SetRealTime(ts[2], 10)
			return s, ts
		}},
		{"lottery", func() (Scheduler, []*Thread) {
			return NewLottery(10*sim.Millisecond, sim.NewRand(42)), mkThreads()
		}},
		{"stride", func() (Scheduler, []*Thread) { return NewStride(10 * sim.Millisecond), mkThreads() }},
		{"eevdf", func() (Scheduler, []*Thread) {
			return NewEEVDF(10*sim.Millisecond, 1_000_000), mkThreads()
		}},
		{"reserves", func() (Scheduler, []*Thread) {
			ts := mkThreads()
			s := NewReserves(10 * sim.Millisecond)
			s.SetReserve(ts[0], 500_000, 30*sim.Millisecond)
			return s, ts
		}},
		{"mlfq", func() (Scheduler, []*Thread) {
			return NewMLFQ(4, 5*sim.Millisecond, 100*sim.Millisecond, 100_000_000), mkThreads()
		}},
		{"drr", func() (Scheduler, []*Thread) {
			return NewDRR(5*sim.Millisecond, 100_000_000), mkThreads()
		}},
	}
}

// driveStep performs one deterministic Pick/Charge cycle and returns the
// picked thread's ID, or -1 if the scheduler is empty. Work charged and
// the occasional block/re-enqueue vary with the step counter so tags,
// budgets, queue rotations, and feedback tables all move.
func driveStep(s Scheduler, threads []*Thread, step int, now *sim.Time) int {
	t := s.Pick(*now)
	if t == nil {
		// Everyone asleep: wake all blocked threads.
		for _, w := range threads {
			if w.State == StateBlocked {
				w.State = StateRunnable
				w.WokeAt = *now
				s.Enqueue(w, *now)
			}
		}
		return -1
	}
	used := Work(200_000 + 70_000*(step%5))
	*now += sim.Time(step%3+1) * sim.Millisecond
	blocks := step%7 == 3
	if blocks {
		t.State = StateBlocked
	}
	t.Segments++
	s.Charge(t, used, *now, !blocks)
	// Re-enqueue one blocked thread every few steps, as a wakeup would.
	if step%7 == 5 {
		for _, w := range threads {
			if w.State == StateBlocked {
				w.State = StateRunnable
				w.WokeAt = *now
				s.Enqueue(w, *now)
				break
			}
		}
	}
	return t.ID
}

// TestStateRoundTripContinuesIdentically drives each scheduler for a
// while, snapshots it mid-run, restores into a freshly built instance
// with fresh threads, and checks both continuations pick the identical
// thread sequence — the sched-layer half of resume equivalence. It also
// pins encoding canonicality: saving twice yields identical bytes.
func TestStateRoundTripContinuesIdentically(t *testing.T) {
	const warm, tail = 37, 80
	for _, h := range stateHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			s1, ts1 := h.build()
			now1 := sim.Time(0)
			for _, th := range ts1 {
				th.State = StateRunnable
				s1.Enqueue(th, now1)
			}
			for i := 0; i < warm; i++ {
				driveStep(s1, ts1, i, &now1)
			}

			var e sim.Enc
			st1 := s1.(Stater)
			if err := st1.SaveState(&e); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			snap := append([]byte(nil), e.Bytes()...)
			e.Reset()
			if err := st1.SaveState(&e); err != nil {
				t.Fatalf("second SaveState: %v", err)
			}
			if !bytes.Equal(snap, e.Bytes()) {
				t.Fatalf("SaveState is not canonical: two saves differ")
			}

			s2, ts2 := h.build()
			byID := map[int]*Thread{}
			for _, th := range ts2 {
				byID[th.ID] = th
			}
			// Thread-level fields the machine normally restores.
			for i, th := range ts2 {
				th.State = ts1[i].State
				th.Segments = ts1[i].Segments
				th.WokeAt = ts1[i].WokeAt
			}
			resolve := func(id int) *Thread { return byID[id] }
			if err := s2.(Stater).LoadState(sim.NewDec(snap), resolve); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if s1.Len() != s2.Len() {
				t.Fatalf("Len after restore = %d, want %d", s2.Len(), s1.Len())
			}

			now2 := now1
			for i := warm; i < warm+tail; i++ {
				got1 := driveStep(s1, ts1, i, &now1)
				got2 := driveStep(s2, ts2, i, &now2)
				if got1 != got2 {
					t.Fatalf("step %d: restored scheduler picked %d, original picked %d", i, got2, got1)
				}
			}
		})
	}
}

// TestLoadStateRejectsHostileInput checks that corrupt checkpoints fail
// with errors rather than panics or silent corruption.
func TestLoadStateRejectsHostileInput(t *testing.T) {
	for _, h := range stateHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			s1, ts1 := h.build()
			now := sim.Time(0)
			for _, th := range ts1 {
				th.State = StateRunnable
				s1.Enqueue(th, now)
			}
			for i := 0; i < 20; i++ {
				driveStep(s1, ts1, i, &now)
			}
			var e sim.Enc
			if err := s1.(Stater).SaveState(&e); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			snap := e.Bytes()

			fresh := func() (Stater, func(id int) *Thread) {
				s2, ts2 := h.build()
				byID := map[int]*Thread{}
				for _, th := range ts2 {
					byID[th.ID] = th
				}
				return s2.(Stater), func(id int) *Thread { return byID[id] }
			}

			// Truncations at every byte boundary must error, never panic.
			for cut := 0; cut < len(snap); cut += 7 {
				s2, resolve := fresh()
				if err := s2.LoadState(sim.NewDec(snap[:cut]), resolve); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			// Bit flips must either decode to the same scheduler or error;
			// they must never panic. (Many flips only touch float tags and
			// decode fine — that is acceptable.)
			for pos := 0; pos < len(snap); pos += 11 {
				mut := append([]byte(nil), snap...)
				mut[pos] ^= 0x80
				s2, resolve := fresh()
				_ = s2.LoadState(sim.NewDec(mut), resolve)
			}
		})
	}
}
