package sched

import (
	"container/heap"
	"fmt"

	"hsfq/internal/sim"
)

// Priority is a preemptive static-priority scheduler (higher Priority
// first, round-robin within a level). §3 item 4 of the paper names this
// family as the cheaper alternative that fails the requirements:
// "Although static priority algorithms have lower complexity, they
// provide no protection, and hence, have been found to be unsatisfactory
// for multimedia operating systems [15]" — the ablation-protection
// experiment demonstrates the starvation that sentence refers to.
type Priority struct {
	quantum sim.Time
	entries map[*Thread]*prioEntry
	heap    prioHeap
	seq     uint64
}

type prioEntry struct {
	t    *Thread
	prio int
	seq  uint64
	idx  int
}

type prioHeap []*prioEntry

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *prioHeap) Push(x any) {
	e := x.(*prioEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewPriority returns a static-priority scheduler; quantum <= 0 selects
// DefaultQuantum (the quantum only round-robins equal priorities).
func NewPriority(quantum sim.Time) *Priority {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Priority{quantum: quantum, entries: make(map[*Thread]*prioEntry)}
}

// Name implements Scheduler.
func (s *Priority) Name() string { return "priority" }

// Enqueue implements Scheduler. The thread's Priority field is read at
// enqueue time.
func (s *Priority) Enqueue(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil {
		e = &prioEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	if e.idx != -1 {
		panic(fmt.Sprintf("priority: Enqueue of runnable thread %v", t))
	}
	e.prio = t.Priority
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

// Remove implements Scheduler.
func (s *Priority) Remove(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("priority: Remove of non-runnable thread %v", t))
	}
	heap.Remove(&s.heap, e.idx)
}

// Pick implements Scheduler.
func (s *Priority) Pick(now sim.Time) *Thread {
	if len(s.heap) == 0 {
		return nil
	}
	return s.heap[0].t
}

// Quantum implements Scheduler.
func (s *Priority) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler: equal priorities round-robin via the
// refreshed sequence number; higher priorities simply keep running.
func (s *Priority) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("priority: Charge of non-runnable thread %v", t))
	}
	if !runnable {
		heap.Remove(&s.heap, e.idx)
		return
	}
	e.seq = s.seq
	s.seq++
	heap.Fix(&s.heap, e.idx)
}

// Preempts implements Scheduler: a strictly higher-priority wakeup
// preempts immediately.
func (s *Priority) Preempts(running, woken *Thread, now sim.Time) bool {
	re, ok1 := s.entries[running]
	we, ok2 := s.entries[woken]
	if !ok1 || !ok2 || re.idx == -1 || we.idx == -1 {
		return false
	}
	return we.prio > re.prio
}

// Len implements Scheduler.
func (s *Priority) Len() int { return len(s.heap) }

// Forget drops state for an exited thread.
func (s *Priority) Forget(t *Thread) {
	if e, ok := s.entries[t]; ok {
		if e.idx != -1 {
			panic(fmt.Sprintf("priority: Forget of runnable thread %v", t))
		}
		delete(s.entries, t)
	}
}
