package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// Priority is a preemptive static-priority scheduler (higher Priority
// first, round-robin within a level). §3 item 4 of the paper names this
// family as the cheaper alternative that fails the requirements:
// "Although static priority algorithms have lower complexity, they
// provide no protection, and hence, have been found to be unsatisfactory
// for multimedia operating systems [15]" — the ablation-protection
// experiment demonstrates the starvation that sentence refers to.
type Priority struct {
	quantum sim.Time
	entries map[*Thread]*prioEntry
	heap    sim.Heap[*prioEntry]
	seq     uint64
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*prioEntry
}

type prioEntry struct {
	t    *Thread
	prio int
	seq  uint64
	idx  int
}

// HeapLess implements sim.HeapItem: higher priority first, FIFO within a
// level.
func (e *prioEntry) HeapLess(o *prioEntry) bool {
	if e.prio != o.prio {
		return e.prio > o.prio
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *prioEntry) HeapIndex() *int { return &e.idx }

// NewPriority returns a static-priority scheduler; quantum <= 0 selects
// DefaultQuantum (the quantum only round-robins equal priorities).
func NewPriority(quantum sim.Time) *Priority {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Priority{quantum: quantum, entries: make(map[*Thread]*prioEntry)}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *Priority) entryFor(t *Thread) *prioEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*prioEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &prioEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *Priority) entryOf(t *Thread) *prioEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*prioEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Name implements Scheduler.
func (s *Priority) Name() string { return "priority" }

// Enqueue implements Scheduler. The thread's Priority field is read at
// enqueue time.
func (s *Priority) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("priority: Enqueue of runnable thread %v", t))
	}
	e.prio = t.Priority
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
}

// Remove implements Scheduler.
func (s *Priority) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("priority: Remove of non-runnable thread %v", t))
	}
	s.heap.Remove(e.idx)
}

// Pick implements Scheduler.
func (s *Priority) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	return s.heap.Min().t
}

// Quantum implements Scheduler.
func (s *Priority) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler: equal priorities round-robin via the
// refreshed sequence number; higher priorities simply keep running.
func (s *Priority) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("priority: Charge of non-runnable thread %v", t))
	}
	if !runnable {
		s.heap.Remove(e.idx)
		return
	}
	e.seq = s.seq
	s.seq++
	s.heap.Fix(e.idx)
}

// Preempts implements Scheduler: a strictly higher-priority wakeup
// preempts immediately.
func (s *Priority) Preempts(running, woken *Thread, now sim.Time) bool {
	re := s.entryOf(running)
	we := s.entryOf(woken)
	if re == nil || we == nil || re.idx == -1 || we.idx == -1 {
		return false
	}
	return we.prio > re.prio
}

// Len implements Scheduler.
func (s *Priority) Len() int { return s.heap.Len() }

// Forget drops state for an exited thread.
func (s *Priority) Forget(t *Thread) {
	if e, ok := s.entries[t]; ok {
		if e.idx != -1 {
			panic(fmt.Sprintf("priority: Forget of runnable thread %v", t))
		}
		delete(s.entries, t)
		t.leafSlot.Drop(s)
	}
}
