// Property-based check of MLFQ's aging guarantee: however the level
// geometry is drawn and however the load is shaped — even with an
// attacker that games the feedback rule by sleeping just before quantum
// expiry so it is never demoted — every continuously runnable thread is
// served within a bounded window,
//
//	window <= aging + (N+1) * maxQuantum
//
// where N is the thread count and maxQuantum the bottom level's quantum.
// The argument: after waiting `aging` the thread is boosted to the tail of
// level 0; at most N-1 threads can precede it there (level-0 occupants
// plus same-sweep boosts), each consuming at most one quantum before
// demotion, plus one decision already in flight.
package sched_test

import (
	"math/rand"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// mlfqTrial is one randomized geometry + load shape. ips is fixed at 1e9
// so one instruction is exactly one simulated nanosecond and quantum
// comparisons in the scheduler are exact.
type mlfqTrial struct {
	seed    int64
	levels  int
	base    sim.Time
	aging   sim.Time
	threads int
	gamer   bool // thread 1 sleeps just before every quantum expiry
}

const mlfqPropIPS = 1_000_000_000

func newMLFQTrial(seed int64) mlfqTrial {
	rng := rand.New(rand.NewSource(seed))
	return mlfqTrial{
		seed:    seed,
		levels:  2 + rng.Intn(5),
		base:    sim.Time(1+rng.Intn(20)) * sim.Millisecond,
		aging:   sim.Time(50+rng.Intn(450)) * sim.Millisecond,
		threads: 2 + rng.Intn(5),
		gamer:   seed%2 == 0,
	}
}

// driveMLFQ runs the trial and returns the worst observed gap between
// consecutive services of any thread (measured in simulated time), and
// whether the gamer — if any — was ever demoted below level 0.
func driveMLFQ(t *testing.T, tr mlfqTrial, decisions int) (worstGap sim.Time, gamerDemoted bool) {
	t.Helper()
	s := sched.NewMLFQ(tr.levels, tr.base, tr.aging, mlfqPropIPS)
	threads := make([]*sched.Thread, tr.threads)
	lastServed := make([]sim.Time, tr.threads)
	for i := range threads {
		threads[i] = sched.NewThread(i+1, "t", 1)
		threads[i].State = sched.StateRunnable
		s.Enqueue(threads[i], 0)
	}
	var now sim.Time
	for i := 0; i < decisions; i++ {
		p := s.Pick(now)
		if p == nil {
			t.Fatalf("decision %d: Pick returned nil with all threads runnable", i)
		}
		q := s.Quantum(p, now)
		if tr.gamer && p == threads[0] {
			// The attack: run one nanosecond short of the quantum, then
			// block and wake immediately — never demoted, always level 0.
			used := sched.Work(q - 1)
			now += q - 1
			p.State = sched.StateBlocked
			p.Segments++
			s.Charge(p, used, now, false)
			lastServed[0] = now
			p.State = sched.StateRunnable
			p.WokeAt = now
			s.Enqueue(p, now)
		} else {
			used := sched.Work(q) // exactly the full quantum: demotion path
			now += q
			p.Segments++
			s.Charge(p, used, now, true)
			lastServed[p.ID-1] = now
		}
		for j := range threads {
			if gap := now - lastServed[j]; gap > worstGap {
				worstGap = gap
			}
		}
		if tr.gamer && s.Level(threads[0]) > 0 {
			gamerDemoted = true
		}
	}
	return worstGap, gamerDemoted
}

func TestMLFQNoStarvationUnderAging(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		tr := newMLFQTrial(seed)
		maxQ := tr.base << (tr.levels - 1)
		bound := tr.aging + sim.Time(tr.threads+1)*maxQ
		worstGap, gamerDemoted := driveMLFQ(t, tr, 600)
		if worstGap > bound {
			t.Errorf("trial %d (%+v): service gap %v exceeds aging bound %v",
				seed, tr, worstGap, bound)
		}
		if tr.gamer && gamerDemoted {
			t.Errorf("trial %d (%+v): sleep-before-expiry thread was demoted — the gaming surface the adversary suite relies on has changed", seed, tr)
		}
	}
}

// TestMLFQAgingBoundIsReal removes aging (sets it absurdly large) and
// checks the gamer DOES starve its victims past the small-aging bound —
// i.e. the property above is the aging mechanism's doing, not an accident
// of round-robin order.
func TestMLFQAgingBoundIsReal(t *testing.T) {
	tr := mlfqTrial{
		seed: 1, levels: 3, base: 5 * sim.Millisecond,
		aging: sim.Time(1) << 50, threads: 3, gamer: true,
	}
	worstGap, _ := driveMLFQ(t, tr, 600)
	smallAgingBound := 100*sim.Millisecond + sim.Time(tr.threads+1)*(tr.base<<(tr.levels-1))
	if worstGap <= smallAgingBound {
		t.Fatalf("without aging the gamer should starve victims (worst gap %v <= %v); the no-starvation property check looks vacuous",
			worstGap, smallAgingBound)
	}
}

// TestMLFQDemotionGeometry pins the level quanta and the demote/keep rules
// the property tests and DESIGN.md §12 describe.
func TestMLFQDemotionGeometry(t *testing.T) {
	s := sched.NewMLFQ(3, 4*sim.Millisecond, sim.Second, mlfqPropIPS)
	if got := s.NumLevels(); got != 3 {
		t.Fatalf("NumLevels = %d", got)
	}
	for i, want := range []sim.Time{4 * sim.Millisecond, 8 * sim.Millisecond, 16 * sim.Millisecond} {
		if got := s.LevelQuantum(i); got != want {
			t.Errorf("LevelQuantum(%d) = %v, want %v", i, got, want)
		}
	}
	th := sched.NewThread(1, "t", 1)
	s.Enqueue(th, 0)
	if lvl := s.Level(th); lvl != 0 {
		t.Fatalf("new thread at level %d", lvl)
	}
	// Full quantum: demote. 4ms at 1e9 ips = 4e6 instructions.
	s.Pick(0)
	s.Charge(th, 4_000_000, 4*sim.Millisecond, true)
	if lvl := s.Level(th); lvl != 1 {
		t.Fatalf("level after full quantum = %d, want 1", lvl)
	}
	// Partial use: keep the level.
	s.Pick(4 * sim.Millisecond)
	s.Charge(th, 1_000, 5*sim.Millisecond, true)
	if lvl := s.Level(th); lvl != 1 {
		t.Fatalf("level after partial use = %d, want 1", lvl)
	}
	// Demotion saturates at the bottom level.
	for i := 0; i < 5; i++ {
		s.Pick(0)
		s.Charge(th, 100_000_000, 0, true)
	}
	if lvl := s.Level(th); lvl != 2 {
		t.Fatalf("level after repeated expiry = %d, want 2", lvl)
	}
}

// TestMLFQConstructorPanics pins the constructor's rejection surface;
// simconfig.Validate must reject the same combinations (fuzz-enforced).
func TestMLFQConstructorPanics(t *testing.T) {
	cases := []struct {
		name   string
		levels int
		base   sim.Time
		aging  sim.Time
		ips    int64
	}{
		{"negative-levels", -1, 0, 0, 1},
		{"too-many-levels", sched.MLFQMaxLevels + 1, 0, 0, 1},
		{"quantum-overflow", 16, sim.Time(1) << 60, 0, 1},
		{"negative-aging", 4, 0, -sim.Second, 1},
		{"zero-ips", 4, 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMLFQ(%d, %v, %v, %d) did not panic", c.levels, c.base, c.aging, c.ips)
				}
			}()
			sched.NewMLFQ(c.levels, c.base, c.aging, c.ips)
		})
	}
}
