// Property-based checks of the multiprocessor machine, extending the
// Theorem 1 tests in fairness_prop_test.go to N cores:
//
//   - Partitioned placement keeps one SFQ hierarchy per core, so the
//     uniprocessor fairness bound must hold independently on EVERY core:
//     for two continuously runnable threads pinned to the same core, the
//     worst interval gap of normalized work stays within
//     l_f/phi_f + l_g/phi_g, measured from the core-tagged charge stream.
//
//   - Global placement shares one hierarchy across cores, so it must
//     never run one thread on two cores at once (the dequeue-on-dispatch
//     guard) and must stay work-conserving: with at least one always-
//     runnable thread per core, no core accumulates idle time.
//
//   - Work stealing must balance utilization: with every thread homed on
//     core 0, the sibling cores steal themselves busy, migrations are
//     observed, and per-core busy time stays balanced.
//
// All trials are seeded and deterministic; each property runs 100+.
package sched_test

import (
	"math/rand"
	"testing"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// smpListener funnels the machine's core-tagged callbacks into closures,
// so each property test keeps only the state it asserts on.
type smpListener struct {
	cpu.BaseListener
	dispatch func(core int, t *sched.Thread, now sim.Time)
	charge   func(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool)
}

func (l *smpListener) OnDispatchCore(core int, t *sched.Thread, now sim.Time) {
	if l.dispatch != nil {
		l.dispatch(core, t, now)
	}
}

func (l *smpListener) OnChargeCore(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	if l.charge != nil {
		l.charge(core, t, used, now, runnable)
	}
}

func (l *smpListener) OnIdleCore(core int, now sim.Time) {}

const smpHorizon = 200 * sim.Millisecond

func smpConfig(seed int64, cores int, policy string, quantum sim.Time, threads []simconfig.ThreadConfig) simconfig.Config {
	return simconfig.Config{
		RateMIPS: 100,
		Horizon:  simconfig.Duration(smpHorizon),
		Seed:     uint64(seed + 1),
		Cores:    cores,
		Policy:   policy,
		Nodes: []simconfig.NodeConfig{
			{Path: "/run", Weight: 1, Leaf: "sfq", Quantum: simconfig.Duration(quantum)},
		},
		Threads: threads,
	}
}

// TestPartitionedPerCoreFairness pins two CPU-bound threads with random
// weights to every core of a partitioned machine and checks the
// Theorem 1 interval bound per core over the prefix differences of
// normalized work, exactly as the uniprocessor property test does.
func TestPartitionedPerCoreFairness(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(3)
		quantum := sim.Time(1+rng.Intn(8)) * sim.Millisecond
		w := func() float64 { return 0.1 + rng.Float64()*7.9 }

		var threads []simconfig.ThreadConfig
		weight := map[string]float64{}
		for c := 0; c < cores; c++ {
			pin := c
			for _, base := range []string{"f", "g"} {
				name := base + string(rune('0'+c))
				wt := w()
				weight[name] = wt
				threads = append(threads, simconfig.ThreadConfig{
					Name: name, Leaf: "/run", Weight: wt, Affinity: &pin,
				})
			}
		}
		s, err := simconfig.Build(smpConfig(seed, cores, "partitioned", quantum, threads), simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}

		// Per-core running state of the interval-gap computation.
		type coreAcc struct {
			df, dg             float64 // cumulative normalized work
			minDelta, maxDelta float64
			maxLf, maxLg       sched.Work
		}
		acc := make([]coreAcc, cores)
		home := map[int]int{}
		kind := map[int]byte{} // 'f' or 'g'
		for _, th := range s.Threads {
			home[th.ID] = int(th.Name[1] - '0')
			kind[th.ID] = th.Name[0]
		}
		s.Machine.Listen(&smpListener{
			charge: func(core int, th *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
				if core != home[th.ID] {
					t.Fatalf("seed %d: thread %s pinned to core %d charged on core %d",
						seed, th.Name, home[th.ID], core)
				}
				a := &acc[core]
				if kind[th.ID] == 'f' {
					a.df += float64(used) / weight[th.Name]
					if used > a.maxLf {
						a.maxLf = used
					}
				} else {
					a.dg += float64(used) / weight[th.Name]
					if used > a.maxLg {
						a.maxLg = used
					}
				}
				delta := a.df - a.dg
				if delta < a.minDelta {
					a.minDelta = delta
				}
				if delta > a.maxDelta {
					a.maxDelta = delta
				}
			},
		})
		s.Run()

		for c := 0; c < cores; c++ {
			a := acc[c]
			if a.maxLf == 0 || a.maxLg == 0 {
				t.Fatalf("seed %d core %d: a pinned thread was never charged", seed, c)
			}
			wf := weight["f"+string(rune('0'+c))]
			wg := weight["g"+string(rune('0'+c))]
			gap := a.maxDelta - a.minDelta
			bound := float64(a.maxLf)/wf + float64(a.maxLg)/wg
			if gap > bound+eps {
				t.Errorf("seed %d core %d: fairness gap %v exceeds Theorem 1 bound %v (wf=%v wg=%v)",
					seed, c, gap, bound, wf, wg)
			}
		}
	}
}

// noDoubleRun tracks dispatch/charge pairing and fails the test if any
// thread is dispatched while a previous dispatch of it is still
// uncharged — i.e. while it is running on some core.
func noDoubleRun(t *testing.T, seed int64) *smpListener {
	running := map[int]int{}
	return &smpListener{
		dispatch: func(core int, th *sched.Thread, now sim.Time) {
			if prev, ok := running[th.ID]; ok {
				t.Fatalf("seed %d: thread %s dispatched on core %d at %v while running on core %d",
					seed, th.Name, core, now, prev)
			}
			running[th.ID] = core
		},
		charge: func(core int, th *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
			delete(running, th.ID)
		},
	}
}

// TestGlobalNoDoubleRunAndWorkConserving drives a shared-hierarchy
// machine with a churning mix of hogs and interactive threads: no thread
// may ever run on two cores at once, and with more always-runnable hogs
// than cores no core may sit idle while work is queued.
func TestGlobalNoDoubleRunAndWorkConserving(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		cores := 2 + rng.Intn(3)
		quantum := sim.Time(1+rng.Intn(8)) * sim.Millisecond

		var threads []simconfig.ThreadConfig
		for i := 0; i < cores+2; i++ {
			threads = append(threads, simconfig.ThreadConfig{
				Name: "hog" + string(rune('a'+i)), Leaf: "/run", Weight: 0.1 + rng.Float64()*7.9,
			})
		}
		// Blocking threads churn wakeups through placeWoken's idle-scan
		// and preemption paths without breaking work conservation.
		threads = append(threads, simconfig.ThreadConfig{
			Name: "chat", Leaf: "/run", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "interactive", ThinkMean: simconfig.Duration(20 * sim.Millisecond)},
		})
		s, err := simconfig.Build(smpConfig(seed, cores, "global", quantum, threads), simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		s.Machine.Listen(noDoubleRun(t, seed))
		s.Run()

		for c := 0; c < cores; c++ {
			if idle := s.Machine.CoreStats(c).Idle; idle > smpHorizon/100 {
				t.Errorf("seed %d: core %d idle %v with %d always-runnable threads on %d cores",
					seed, c, idle, cores+2, cores)
			}
		}
	}
}

// TestStealBalancesUtilization homes every thread on core 0 under the
// stealing policy: the sibling cores must steal themselves busy (bounded
// idle, balanced busy time across cores), migrations must actually
// happen, and the no-double-run invariant must hold throughout.
func TestStealBalancesUtilization(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		cores := 2 + rng.Intn(2)
		quantum := sim.Time(1+rng.Intn(8)) * sim.Millisecond
		home := 0

		var threads []simconfig.ThreadConfig
		for i := 0; i < 2*cores; i++ {
			threads = append(threads, simconfig.ThreadConfig{
				Name: "hog" + string(rune('a'+i)), Leaf: "/run",
				Weight: 0.1 + rng.Float64()*7.9, Affinity: &home,
			})
		}
		cfg := smpConfig(seed, cores, "steal", quantum, threads)
		cfg.MigrationCost = simconfig.Duration(sim.Time(rng.Intn(200)) * sim.Microsecond)
		s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		s.Machine.Listen(noDoubleRun(t, seed))
		s.Run()

		if mig := s.Machine.Stats().Migrations; mig == 0 {
			t.Errorf("seed %d: no migrations with all %d threads homed on core 0 of %d cores",
				seed, 2*cores, cores)
		}
		minBusy, maxBusy := smpHorizon, sim.Time(0)
		for c := 0; c < cores; c++ {
			idle := s.Machine.CoreStats(c).Idle
			if idle > smpHorizon/50 {
				t.Errorf("seed %d: core %d idle %v; stealing failed to keep it busy", seed, c, idle)
			}
			busy := smpHorizon - idle
			if busy < minBusy {
				minBusy = busy
			}
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		if maxBusy-minBusy > smpHorizon/50 {
			t.Errorf("seed %d: per-core busy time imbalanced: min %v max %v", seed, minBusy, maxBusy)
		}
	}
}

// TestDispatchCostsReduceThroughput checks that switch and migration
// costs are charged against real capacity: the same workload completes
// strictly less work when the costs are nonzero.
func TestDispatchCostsReduceThroughput(t *testing.T) {
	run := func(policy string, switchCost, migrationCost sim.Time) (sched.Work, int64) {
		home := 0
		// Three hogs on two cores: the odd thread out rotates through the
		// cores, so the stealing run is guaranteed to migrate (an even
		// count settles into a stable no-migration assignment).
		var threads []simconfig.ThreadConfig
		for i := 0; i < 3; i++ {
			tc := simconfig.ThreadConfig{Name: "hog" + string(rune('a'+i)), Leaf: "/run", Weight: 1}
			if policy == "steal" {
				tc.Affinity = &home
			}
			threads = append(threads, tc)
		}
		cfg := smpConfig(42, 2, policy, 5*sim.Millisecond, threads)
		cfg.SwitchCost = simconfig.Duration(switchCost)
		cfg.MigrationCost = simconfig.Duration(migrationCost)
		s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("build %s: %v", policy, err)
		}
		s.Run()
		return s.Machine.Stats().Work, s.Machine.Stats().Migrations
	}

	free, _ := run("global", 0, 0)
	costly, _ := run("global", 2*sim.Millisecond, 0)
	if costly >= free {
		t.Errorf("global: work %d with 2ms switch cost, %d without; cost did not reduce throughput", costly, free)
	}
	free, _ = run("steal", 0, 0)
	costly, mig := run("steal", 0, 2*sim.Millisecond)
	if mig == 0 {
		t.Fatal("steal: no migrations; the throughput comparison is vacuous")
	}
	if costly >= free {
		t.Errorf("steal: work %d with 2ms migration cost, %d without; cost did not reduce throughput", costly, free)
	}
}
