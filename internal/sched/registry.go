package sched

import (
	"fmt"
	"math/bits"
	"sort"

	"hsfq/internal/sim"
)

// LeafConfig carries the parameters a leaf-scheduler constructor may need.
// Every field has a sensible zero value, so callers set only what they
// know: a quantum from a config file, the machine speed, a seeded stream.
type LeafConfig struct {
	// Quantum is the scheduling quantum; <= 0 selects the algorithm's
	// default (DefaultQuantum for most, 25 ms for the SVR4 class).
	Quantum sim.Time

	// IPS is the speed of the machine the scheduler will run on, in
	// instructions per second. Algorithms that convert between time and
	// work (svr4's dispatch table, eevdf's lag unit) need it; 0 selects
	// 100 MIPS, the paper's machine class.
	IPS int64

	// RNG feeds randomized schedulers (lottery). Constructors fork the
	// stream they are handed, so the caller's stream advances exactly one
	// draw per randomized leaf and leaves built from the same stream stay
	// independent. nil selects a fixed private stream.
	RNG *sim.Rand

	// Levels is the priority-level count for multilevel schedulers (mlfq);
	// 0 selects the algorithm's default.
	Levels int

	// Aging is the starvation-boost wait bound for aging schedulers
	// (mlfq); 0 selects the algorithm's default.
	Aging sim.Time
}

func (c LeafConfig) ips() int64 {
	if c.IPS <= 0 {
		return 100_000_000
	}
	return c.IPS
}

// Ctor builds one leaf scheduler from a LeafConfig.
type Ctor func(LeafConfig) Scheduler

var leafCtors = map[string]Ctor{}

// Register adds a leaf-scheduler constructor under a unique name, making
// it available to every surface that names schedulers by string —
// simconfig files, hsfqctl scripts, sweep specs. It panics on an empty
// name or a duplicate, like http.Handle or sql.Register.
func Register(name string, ctor Ctor) {
	if name == "" {
		panic("sched: Register with empty name")
	}
	if ctor == nil {
		panic("sched: Register with nil constructor for " + name)
	}
	if _, dup := leafCtors[name]; dup {
		panic("sched: duplicate leaf scheduler " + name)
	}
	leafCtors[name] = ctor
}

// New constructs the named leaf scheduler.
func New(name string, cfg LeafConfig) (Scheduler, error) {
	ctor, ok := leafCtors[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown leaf scheduler %q (have %v)", name, Names())
	}
	return ctor(cfg), nil
}

// Known reports whether name is a registered leaf scheduler.
func Known(name string) bool {
	_, ok := leafCtors[name]
	return ok
}

// smpSafe lists the leaf kinds whose Charge re-stamps ANY enqueued
// thread: their accounting depends only on the thread's entry, never on
// a remembered pick or a queue-head position. The multicore global and
// stealing policies rely on that property — they remove a thread from
// the shared hierarchy at dispatch (so no sibling core can pick it) and
// re-enqueue it immediately before charging the segment, which reaches
// Charge with no outstanding Pick. Leaves that track the picked thread
// (svr4, lottery, eevdf, reserves) or charge only the queue head (rr,
// fifo) panic under that protocol and are restricted to single-core and
// partitioned machines, where the picked thread stays in place between
// Pick and Charge.
var smpSafe = map[string]bool{
	"sfq":      true,
	"stride":   true,
	"priority": true,
	"edf":      true,
	"rm":       true,
	"mlfq":     true,
	"drr":      true,
}

// SMPSafe reports whether the named leaf scheduler supports the
// multicore dequeue-on-dispatch protocol used by the global and
// stealing placement policies.
func SMPSafe(name string) bool { return smpSafe[name] }

// SMPSafeNames returns the dequeue-safe leaf names, sorted.
func SMPSafeNames() []string {
	names := make([]string, 0, len(smpSafe))
	for name := range smpSafe {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Names returns the registered leaf-scheduler names, sorted.
func Names() []string {
	names := make([]string, 0, len(leafCtors))
	for name := range leafCtors {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// workFor returns the instructions executed in duration d at ips
// instructions per second, rounded down — the same arithmetic as
// cpu.Rate.WorkFor, reimplemented here because cpu imports sched.
func workFor(ips int64, d sim.Time) Work {
	hi, lo := bits.Mul64(uint64(d), uint64(ips))
	if hi >= uint64(sim.Second) {
		panic("sched: workFor overflow")
	}
	q, _ := bits.Div64(hi, lo, uint64(sim.Second))
	return Work(q)
}

// timeFor is the inverse of workFor: the duration w instructions take at
// ips instructions per second, rounded down. The mlfq and drr leaves use
// it to compare charged work against their quanta with exact integer
// arithmetic (svr4 predates it and keeps its float conversion — its
// byte-frozen traces depend on the historical rounding).
func timeFor(ips int64, w Work) sim.Time {
	if w <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(w), uint64(sim.Second))
	if hi >= uint64(ips) {
		panic("sched: timeFor overflow")
	}
	q, _ := bits.Div64(hi, lo, uint64(ips))
	return sim.Time(q)
}

func init() {
	Register("sfq", func(c LeafConfig) Scheduler { return NewSFQ(c.Quantum) })
	Register("rr", func(c LeafConfig) Scheduler { return NewRoundRobin(c.Quantum) })
	Register("fifo", func(c LeafConfig) Scheduler { return NewFIFO() })
	Register("priority", func(c LeafConfig) Scheduler { return NewPriority(c.Quantum) })
	Register("reserves", func(c LeafConfig) Scheduler { return NewReserves(c.Quantum) })
	Register("edf", func(c LeafConfig) Scheduler { return NewEDF(c.Quantum) })
	Register("rm", func(c LeafConfig) Scheduler { return NewRM(c.Quantum) })
	Register("svr4", func(c LeafConfig) Scheduler {
		q := c.Quantum
		if q <= 0 {
			q = 25 * sim.Millisecond
		}
		return NewSVR4(nil, c.ips(), q)
	})
	Register("lottery", func(c LeafConfig) Scheduler {
		rng := c.RNG
		if rng == nil {
			rng = sim.NewRand(1)
		}
		return NewLottery(c.Quantum, rng.Fork())
	})
	Register("stride", func(c LeafConfig) Scheduler { return NewStride(c.Quantum) })
	Register("mlfq", func(c LeafConfig) Scheduler {
		return NewMLFQ(c.Levels, c.Quantum, c.Aging, c.ips())
	})
	Register("drr", func(c LeafConfig) Scheduler { return NewDRR(c.Quantum, c.ips()) })
	Register("eevdf", func(c LeafConfig) Scheduler {
		q := c.Quantum
		if q <= 0 {
			q = DefaultQuantum
		}
		return NewEEVDF(q, workFor(c.ips(), q))
	})
}
