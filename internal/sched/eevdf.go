package sched

import (
	"container/heap"
	"fmt"

	"hsfq/internal/sim"
)

// EEVDF is the Earliest Eligible Virtual Deadline First scheduler of
// Stoica, Abdel-Wahab & Jeffay (RTSS '96), cited in the paper's related
// work as a contemporaneous proportionate-share algorithm. Each runnable
// thread holds a request of nominal size reqWork; the request is eligible
// at virtual time ve and has virtual deadline vd = ve + reqWork/weight.
// System virtual time advances by used/totalWeight as work is served; the
// scheduler runs the eligible request with the earliest virtual deadline.
type EEVDF struct {
	quantum sim.Time
	reqWork Work
	entries map[*Thread]*eevdfEntry
	heap    eevdfHeap // ordered by (vd, seq); eligibility filtered at Pick
	vtime   float64
	total   float64
	seq     uint64
	picked  *eevdfEntry
}

type eevdfEntry struct {
	t      *Thread
	ve, vd float64
	served Work // progress within the current request
	seq    uint64
	idx    int
}

type eevdfHeap []*eevdfEntry

func (h eevdfHeap) Len() int { return len(h) }
func (h eevdfHeap) Less(i, j int) bool {
	if h[i].vd != h[j].vd {
		return h[i].vd < h[j].vd
	}
	return h[i].seq < h[j].seq
}
func (h eevdfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eevdfHeap) Push(x any) {
	e := x.(*eevdfEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eevdfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewEEVDF returns an EEVDF scheduler. reqWork is the nominal request size
// in work units (typically quantum x CPU rate); it must be positive.
func NewEEVDF(quantum sim.Time, reqWork Work) *EEVDF {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if reqWork <= 0 {
		panic("eevdf: non-positive request size")
	}
	return &EEVDF{quantum: quantum, reqWork: reqWork, entries: make(map[*Thread]*eevdfEntry)}
}

// Name implements Scheduler.
func (s *EEVDF) Name() string { return "eevdf" }

// VirtualTime returns the system virtual time, for tests.
func (s *EEVDF) VirtualTime() float64 { return s.vtime }

// Enqueue implements Scheduler: a joining thread's request becomes
// eligible no earlier than the current virtual time, so sleeping banks no
// credit.
func (s *EEVDF) Enqueue(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil {
		e = &eevdfEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	if e.idx != -1 {
		panic(fmt.Sprintf("eevdf: Enqueue of runnable thread %v", t))
	}
	if e.ve < s.vtime {
		e.ve = s.vtime
	}
	e.vd = e.ve + float64(s.reqWork)/t.Weight
	e.served = 0
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
	s.total += t.Weight
}

// Remove implements Scheduler.
func (s *EEVDF) Remove(t *Thread, now sim.Time) {
	e := s.entries[t]
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("eevdf: Remove of non-runnable thread %v", t))
	}
	heap.Remove(&s.heap, e.idx)
	s.total -= t.Weight
}

// Pick implements Scheduler: the eligible request with the earliest
// virtual deadline. If no request is eligible (possible after sleeps), the
// virtual clock jumps forward to the earliest eligible time, keeping the
// scheduler work-conserving.
func (s *EEVDF) Pick(now sim.Time) *Thread {
	if len(s.heap) == 0 {
		return nil
	}
	best := s.eligibleMinVD()
	if best == nil {
		// Jump virtual time to the earliest eligible request.
		minVE := s.heap[0].ve
		for _, e := range s.heap {
			if e.ve < minVE {
				minVE = e.ve
			}
		}
		s.vtime = minVE
		best = s.eligibleMinVD()
	}
	s.picked = best
	return best.t
}

func (s *EEVDF) eligibleMinVD() *eevdfEntry {
	// The heap is ordered by vd; scan for the first eligible entry. The
	// scan is O(n) in the worst case but the heap order makes the common
	// case (heap top eligible) O(1).
	var best *eevdfEntry
	for _, e := range s.heap {
		if e.ve > s.vtime {
			continue
		}
		if best == nil || e.vd < best.vd || (e.vd == best.vd && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

// Quantum implements Scheduler.
func (s *EEVDF) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler.
func (s *EEVDF) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entries[t]
	if e == nil || e.idx == -1 || s.picked != e {
		panic(fmt.Sprintf("eevdf: Charge of thread %v that was not picked", t))
	}
	s.picked = nil
	if s.total > 0 {
		s.vtime += float64(used) / s.total
	}
	e.served += used
	for e.served >= s.reqWork {
		// Request fulfilled: issue the next one back to back.
		e.served -= s.reqWork
		e.ve = e.vd
		e.vd = e.ve + float64(s.reqWork)/t.Weight
	}
	if runnable {
		e.seq = s.seq
		s.seq++
		heap.Fix(&s.heap, e.idx)
	} else {
		heap.Remove(&s.heap, e.idx)
		s.total -= t.Weight
	}
}

// Preempts implements Scheduler.
func (s *EEVDF) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *EEVDF) Len() int { return len(s.heap) }

// TotalWeight implements WeightedLen.
func (s *EEVDF) TotalWeight() float64 { return s.total }
