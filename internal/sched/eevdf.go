package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// EEVDF is the Earliest Eligible Virtual Deadline First scheduler of
// Stoica, Abdel-Wahab & Jeffay (RTSS '96), cited in the paper's related
// work as a contemporaneous proportionate-share algorithm. Each runnable
// thread holds a request of nominal size reqWork; the request is eligible
// at virtual time ve and has virtual deadline vd = ve + reqWork/weight.
// System virtual time advances by used/totalWeight as work is served; the
// scheduler runs the eligible request with the earliest virtual deadline.
type EEVDF struct {
	quantum sim.Time
	reqWork Work
	entries map[*Thread]*eevdfEntry
	heap    sim.Heap[*eevdfEntry] // ordered by (vd, seq); eligibility filtered at Pick
	vtime   float64
	total   float64
	seq     uint64
	picked  *eevdfEntry
	// saveScratch is reused across SaveState calls so periodic
	// checkpointing stays allocation-free (see alloc_guard_test.go).
	saveScratch []*eevdfEntry
}

type eevdfEntry struct {
	t      *Thread
	ve, vd float64
	served Work // progress within the current request
	seq    uint64
	idx    int
}

// HeapLess implements sim.HeapItem: earliest virtual deadline first, FIFO
// among equal deadlines.
func (e *eevdfEntry) HeapLess(o *eevdfEntry) bool {
	if e.vd != o.vd {
		return e.vd < o.vd
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *eevdfEntry) HeapIndex() *int { return &e.idx }

// NewEEVDF returns an EEVDF scheduler. reqWork is the nominal request size
// in work units (typically quantum x CPU rate); it must be positive.
func NewEEVDF(quantum sim.Time, reqWork Work) *EEVDF {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if reqWork <= 0 {
		panic("eevdf: non-positive request size")
	}
	return &EEVDF{quantum: quantum, reqWork: reqWork, entries: make(map[*Thread]*eevdfEntry)}
}

// entryFor returns t's entry, creating and caching it on first contact.
func (s *EEVDF) entryFor(t *Thread) *eevdfEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*eevdfEntry)
	}
	e := s.entries[t]
	if e == nil {
		e = &eevdfEntry{t: t, idx: -1}
		s.entries[t] = e
	}
	t.leafSlot.Set(s, e)
	return e
}

// entryOf returns t's entry, or nil if the thread has never been seen.
func (s *EEVDF) entryOf(t *Thread) *eevdfEntry {
	if v, ok := t.leafSlot.Get(s); ok {
		return v.(*eevdfEntry)
	}
	if e := s.entries[t]; e != nil {
		t.leafSlot.Set(s, e)
		return e
	}
	return nil
}

// Name implements Scheduler.
func (s *EEVDF) Name() string { return "eevdf" }

// VirtualTime returns the system virtual time, for tests.
func (s *EEVDF) VirtualTime() float64 { return s.vtime }

// Enqueue implements Scheduler: a joining thread's request becomes
// eligible no earlier than the current virtual time, so sleeping banks no
// credit.
func (s *EEVDF) Enqueue(t *Thread, now sim.Time) {
	e := s.entryFor(t)
	if e.idx != -1 {
		panic(fmt.Sprintf("eevdf: Enqueue of runnable thread %v", t))
	}
	if e.ve < s.vtime {
		e.ve = s.vtime
	}
	e.vd = e.ve + float64(s.reqWork)/t.Weight
	e.served = 0
	e.seq = s.seq
	s.seq++
	s.heap.Push(e)
	s.total += t.Weight
}

// Remove implements Scheduler.
func (s *EEVDF) Remove(t *Thread, now sim.Time) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 {
		panic(fmt.Sprintf("eevdf: Remove of non-runnable thread %v", t))
	}
	s.heap.Remove(e.idx)
	s.total -= t.Weight
}

// Pick implements Scheduler: the eligible request with the earliest
// virtual deadline. If no request is eligible (possible after sleeps), the
// virtual clock jumps forward to the earliest eligible time, keeping the
// scheduler work-conserving.
func (s *EEVDF) Pick(now sim.Time) *Thread {
	if s.heap.Len() == 0 {
		return nil
	}
	best := s.eligibleMinVD()
	if best == nil {
		// Jump virtual time to the earliest eligible request.
		items := s.heap.Items()
		minVE := items[0].ve
		for _, e := range items {
			if e.ve < minVE {
				minVE = e.ve
			}
		}
		s.vtime = minVE
		best = s.eligibleMinVD()
	}
	s.picked = best
	return best.t
}

func (s *EEVDF) eligibleMinVD() *eevdfEntry {
	// The heap is ordered by vd; scan for the first eligible entry. The
	// scan is O(n) in the worst case but the heap order makes the common
	// case (heap top eligible) O(1).
	var best *eevdfEntry
	for _, e := range s.heap.Items() {
		if e.ve > s.vtime {
			continue
		}
		if best == nil || e.vd < best.vd || (e.vd == best.vd && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

// Quantum implements Scheduler.
func (s *EEVDF) Quantum(t *Thread, now sim.Time) sim.Time { return s.quantum }

// Charge implements Scheduler.
func (s *EEVDF) Charge(t *Thread, used Work, now sim.Time, runnable bool) {
	e := s.entryOf(t)
	if e == nil || e.idx == -1 || s.picked != e {
		panic(fmt.Sprintf("eevdf: Charge of thread %v that was not picked", t))
	}
	s.picked = nil
	if s.total > 0 {
		s.vtime += float64(used) / s.total
	}
	e.served += used
	for e.served >= s.reqWork {
		// Request fulfilled: issue the next one back to back.
		e.served -= s.reqWork
		e.ve = e.vd
		e.vd = e.ve + float64(s.reqWork)/t.Weight
	}
	if runnable {
		e.seq = s.seq
		s.seq++
		s.heap.Fix(e.idx)
	} else {
		s.heap.Remove(e.idx)
		s.total -= t.Weight
	}
}

// Preempts implements Scheduler.
func (s *EEVDF) Preempts(running, woken *Thread, now sim.Time) bool { return false }

// Len implements Scheduler.
func (s *EEVDF) Len() int { return s.heap.Len() }

// TotalWeight implements WeightedLen.
func (s *EEVDF) TotalWeight() float64 { return s.total }
