package sched

import (
	"fmt"
	"math"
	"slices"

	"hsfq/internal/sim"
)

// Stater is implemented by schedulers whose mutable state can be captured
// into a checkpoint and restored into a freshly rebuilt simulation. Static
// configuration (quanta, dispatch tables, request sizes) is NOT
// serialized — the rebuild recreates it deterministically — only state
// that advances as the simulation runs: tags, queues, passes, budgets,
// RNG streams.
//
// Encodings are canonical: per-thread entries are emitted sorted by
// thread ID, so identical state always produces identical bytes. Load
// resolves thread IDs through the supplied resolve function and validates
// every structural invariant it relies on (strictly increasing IDs, no
// thread queued twice, picked threads runnable), so corrupt or hostile
// checkpoints fail with an error rather than corrupting the scheduler.
//
// Heaps are rebuilt by pushing runnable entries in thread-ID order. That
// is sound because every heap in this package tie-breaks on a monotone
// sequence number: the ordering is a strict total order, so the sequence
// of minima — the only thing the scheduling trace observes — does not
// depend on the heap's internal array layout.
type Stater interface {
	SaveState(e *sim.Enc) error
	LoadState(d *sim.Dec, resolve func(id int) *Thread) error
}

var (
	_ Stater = (*SFQ)(nil)
	_ Stater = (*RoundRobin)(nil)
	_ Stater = (*FIFO)(nil)
	_ Stater = (*Priority)(nil)
	_ Stater = (*EDF)(nil)
	_ Stater = (*RM)(nil)
	_ Stater = (*SVR4)(nil)
	_ Stater = (*Lottery)(nil)
	_ Stater = (*Stride)(nil)
	_ Stater = (*EEVDF)(nil)
	_ Stater = (*Reserves)(nil)
	_ Stater = (*MLFQ)(nil)
	_ Stater = (*DRR)(nil)
)

// encTID appends a thread reference: the ID, or -1 for "none".
func encTID(e *sim.Enc, t *Thread) {
	if t == nil {
		e.Int(-1)
		return
	}
	e.Int(t.ID)
}

// decTID reads a thread ID written by encTID and resolves it. A -1
// yields (nil, nil); an unknown ID is an error.
func decTID(d *sim.Dec, resolve func(id int) *Thread, what string) (*Thread, error) {
	id := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if id == -1 {
		return nil, nil
	}
	t := resolve(id)
	if t == nil {
		return nil, fmt.Errorf("sched: %s references unknown thread %d", what, id)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// SFQ

// SaveState implements Stater. Tag totals are stored as raw float bits:
// they were accumulated incrementally, so recomputing them from weights
// would not reproduce the exact values the uninterrupted run carries.
func (s *SFQ) SaveState(e *sim.Enc) error {
	e.F64(s.maxFinish)
	e.U64(s.seq)
	e.F64(s.total)
	if s.inService != nil {
		encTID(e, s.inService.t)
	} else {
		e.Int(-1)
	}

	s.donScratch = s.donScratch[:0]
	for t := range s.donated {
		s.donScratch = append(s.donScratch, t)
	}
	slices.SortFunc(s.donScratch, func(a, b *Thread) int { return a.ID - b.ID })
	e.Int(len(s.donScratch))
	for _, t := range s.donScratch {
		e.Int(t.ID)
		e.F64(s.donated[t])
	}

	s.entScratch = s.entScratch[:0]
	for _, en := range s.entries {
		s.entScratch = append(s.entScratch, en)
	}
	slices.SortFunc(s.entScratch, func(a, b *sfqEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.entScratch))
	for _, en := range s.entScratch {
		e.Int(en.t.ID)
		e.F64(en.start)
		e.F64(en.finish)
		e.Time(en.quantum)
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *SFQ) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("sfq: LoadState into a scheduler with runnable threads")
	}
	s.maxFinish = d.F64()
	s.seq = d.U64()
	s.total = d.F64()
	svcID := d.Int()

	clear(s.donated)
	n := d.Count(16)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		amt := d.F64()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("sfq: donation thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("sfq: donation references unknown thread %d", id)
		}
		s.donated[t] = amt
	}

	n = d.Count(41)
	prev = math.MinInt
	s.inService = nil
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("sfq: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("sfq: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("sfq: thread %d already runnable", id)
		}
		en.start = d.F64()
		en.finish = d.F64()
		en.quantum = d.Time()
		en.seq = d.U64()
		runnable := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if en.quantum < 0 {
			return fmt.Errorf("sfq: negative quantum for thread %d", id)
		}
		if runnable {
			s.heap.Push(en)
		}
		if id == svcID {
			s.inService = en
		}
	}
	if svcID != -1 {
		if s.inService == nil {
			return fmt.Errorf("sfq: in-service thread %d not in checkpoint", svcID)
		}
		if s.inService.idx == -1 {
			return fmt.Errorf("sfq: in-service thread %d not runnable", svcID)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// RoundRobin / FIFO: the queue order IS the state.

// SaveState implements Stater.
func (r *RoundRobin) SaveState(e *sim.Enc) error {
	e.Int(len(r.queue))
	for _, t := range r.queue {
		e.Int(t.ID)
	}
	return nil
}

// LoadState implements Stater.
func (r *RoundRobin) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if len(r.queue) != 0 {
		return fmt.Errorf("rr: LoadState into a scheduler with runnable threads")
	}
	n := d.Count(8)
	for i := 0; i < n; i++ {
		t, err := decTID(d, resolve, "rr queue")
		if err != nil {
			return err
		}
		if t == nil || r.index(t) != -1 {
			return fmt.Errorf("rr: invalid or duplicate queue entry at position %d", i)
		}
		r.queue = append(r.queue, t)
	}
	return d.Err()
}

// SaveState implements Stater.
func (f *FIFO) SaveState(e *sim.Enc) error {
	e.Int(len(f.queue))
	for _, t := range f.queue {
		e.Int(t.ID)
	}
	return nil
}

// LoadState implements Stater.
func (f *FIFO) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if len(f.queue) != 0 {
		return fmt.Errorf("fifo: LoadState into a scheduler with runnable threads")
	}
	n := d.Count(8)
	for i := 0; i < n; i++ {
		t, err := decTID(d, resolve, "fifo queue")
		if err != nil {
			return err
		}
		if t == nil || f.index(t) != -1 {
			return fmt.Errorf("fifo: invalid or duplicate queue entry at position %d", i)
		}
		f.queue = append(f.queue, t)
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// Priority

// SaveState implements Stater.
func (s *Priority) SaveState(e *sim.Enc) error {
	e.U64(s.seq)
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *prioEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Int(en.prio)
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *Priority) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("priority: LoadState into a scheduler with runnable threads")
	}
	s.seq = d.U64()
	n := d.Count(25)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("priority: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("priority: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("priority: thread %d already runnable", id)
		}
		en.prio = d.Int()
		en.seq = d.U64()
		if d.Bool() && d.Err() == nil {
			s.heap.Push(en)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// EDF

// SaveState implements Stater.
func (s *EDF) SaveState(e *sim.Enc) error {
	e.U64(s.seq)
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *edfEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Time(en.deadline)
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *EDF) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("edf: LoadState into a scheduler with runnable threads")
	}
	s.seq = d.U64()
	n := d.Count(25)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("edf: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("edf: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("edf: thread %d already runnable", id)
		}
		en.deadline = d.Time()
		en.seq = d.U64()
		if d.Bool() && d.Err() == nil {
			s.heap.Push(en)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// RM

// SaveState implements Stater.
func (s *RM) SaveState(e *sim.Enc) error {
	e.U64(s.seq)
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *rmEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Time(en.key.period)
		e.Int(en.key.prio)
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *RM) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("rm: LoadState into a scheduler with runnable threads")
	}
	s.seq = d.U64()
	n := d.Count(33)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("rm: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("rm: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("rm: thread %d already runnable", id)
		}
		en.key.period = d.Time()
		en.key.prio = d.Int()
		en.seq = d.U64()
		if d.Bool() && d.Err() == nil {
			s.heap.Push(en)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// SVR4

// SaveState implements Stater. Per-priority FIFO queue order is state:
// front-inserted preempted threads must come back out ahead of
// tail-inserted ones, so queues are serialized as ordered ID lists, one
// per occupied global priority (ascending).
func (s *SVR4) SaveState(e *sim.Enc) error {
	if s.picked != nil {
		encTID(e, s.picked.t)
	} else {
		e.Int(-1)
	}
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *svr4Entry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Int(en.class)
		e.Int(en.level)
		e.Time(en.waitFrom)
	}
	s.prioScratch = s.prioScratch[:0]
	for p := range s.queues {
		s.prioScratch = append(s.prioScratch, p)
	}
	slices.Sort(s.prioScratch)
	e.Int(len(s.prioScratch))
	for _, p := range s.prioScratch {
		q := s.queues[p]
		e.Int(p)
		e.Int(len(q))
		for _, en := range q {
			e.Int(en.t.ID)
		}
	}
	return nil
}

// LoadState implements Stater. Runnability is derived from queue
// membership; every queued thread's saved class and level must place it
// exactly on the priority it was saved under.
func (s *SVR4) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.count != 0 {
		return fmt.Errorf("svr4: LoadState into a scheduler with runnable threads")
	}
	pickedID := d.Int()
	n := d.Count(32)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("svr4: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("svr4: checkpoint references unknown thread %d", id)
		}
		en := s.entry(t)
		en.class = d.Int()
		en.level = d.Int()
		en.waitFrom = d.Time()
		en.runnable = false
		if err := d.Err(); err != nil {
			return err
		}
		switch en.class {
		case classTS:
			if en.level < 0 || en.level >= TSLevels {
				return fmt.Errorf("svr4: TS level %d of thread %d out of range", en.level, id)
			}
		case classRT:
			if en.level < 0 || en.level >= RTLevels {
				return fmt.Errorf("svr4: RT priority %d of thread %d out of range", en.level, id)
			}
		default:
			return fmt.Errorf("svr4: unknown class %d of thread %d", en.class, id)
		}
	}

	s.picked = nil
	np := d.Count(24)
	prevP := math.MinInt
	for i := 0; i < np; i++ {
		p := d.Int()
		cnt := d.Count(8)
		if err := d.Err(); err != nil {
			return err
		}
		if p <= prevP {
			return fmt.Errorf("svr4: queue priorities not strictly increasing at %d", p)
		}
		prevP = p
		if cnt == 0 {
			return fmt.Errorf("svr4: empty queue at priority %d", p)
		}
		for j := 0; j < cnt; j++ {
			id := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			t := resolve(id)
			if t == nil {
				return fmt.Errorf("svr4: queue references unknown thread %d", id)
			}
			en := s.entryOf(t)
			if en == nil {
				return fmt.Errorf("svr4: queued thread %d has no entry", id)
			}
			if en.runnable {
				return fmt.Errorf("svr4: thread %d queued twice", id)
			}
			if en.globalPrio() != p {
				return fmt.Errorf("svr4: thread %d queued at priority %d but carries %d", id, p, en.globalPrio())
			}
			en.runnable = true
			s.queues[p] = append(s.queues[p], en)
			s.count++
			if id == pickedID {
				s.picked = en
			}
		}
	}
	if pickedID != -1 && s.picked == nil {
		return fmt.Errorf("svr4: picked thread %d is not runnable", pickedID)
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// Lottery

// SaveState implements Stater. The RNG state is essential: without it a
// resumed run would hold different lotteries and diverge immediately.
func (l *Lottery) SaveState(e *sim.Enc) error {
	e.U64(l.rng.State())
	e.F64(l.total)
	encTID(e, l.picked)
	e.Int(len(l.queue))
	for _, t := range l.queue {
		e.Int(t.ID)
	}
	return nil
}

// LoadState implements Stater.
func (l *Lottery) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if len(l.queue) != 0 {
		return fmt.Errorf("lottery: LoadState into a scheduler with runnable threads")
	}
	st := d.U64()
	l.total = d.F64()
	picked, err := decTID(d, resolve, "lottery picked thread")
	if err != nil {
		return err
	}
	n := d.Count(8)
	for i := 0; i < n; i++ {
		t, err := decTID(d, resolve, "lottery queue")
		if err != nil {
			return err
		}
		if t == nil || l.index(t) != -1 {
			return fmt.Errorf("lottery: invalid or duplicate queue entry at position %d", i)
		}
		l.queue = append(l.queue, t)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if picked != nil && l.index(picked) == -1 {
		return fmt.Errorf("lottery: picked thread %d is not queued", picked.ID)
	}
	l.picked = picked
	l.rng.SetState(st)
	return nil
}

// ---------------------------------------------------------------------------
// Stride

// SaveState implements Stater.
func (s *Stride) SaveState(e *sim.Enc) error {
	e.F64(s.global)
	e.U64(s.seq)
	e.F64(s.total)
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *strideEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.F64(en.pass)
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *Stride) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("stride: LoadState into a scheduler with runnable threads")
	}
	s.global = d.F64()
	s.seq = d.U64()
	s.total = d.F64()
	n := d.Count(25)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("stride: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("stride: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("stride: thread %d already runnable", id)
		}
		en.pass = d.F64()
		en.seq = d.U64()
		if d.Bool() && d.Err() == nil {
			s.heap.Push(en)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// EEVDF

// SaveState implements Stater.
func (s *EEVDF) SaveState(e *sim.Enc) error {
	e.F64(s.vtime)
	e.F64(s.total)
	e.U64(s.seq)
	if s.picked != nil {
		encTID(e, s.picked.t)
	} else {
		e.Int(-1)
	}
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *eevdfEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.F64(en.ve)
		e.F64(en.vd)
		e.I64(int64(en.served))
		e.U64(en.seq)
		e.Bool(en.idx != -1)
	}
	return nil
}

// LoadState implements Stater.
func (s *EEVDF) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.heap.Len() != 0 {
		return fmt.Errorf("eevdf: LoadState into a scheduler with runnable threads")
	}
	s.vtime = d.F64()
	s.total = d.F64()
	s.seq = d.U64()
	pickedID := d.Int()
	s.picked = nil
	n := d.Count(41)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("eevdf: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("eevdf: checkpoint references unknown thread %d", id)
		}
		en := s.entryFor(t)
		if en.idx != -1 {
			return fmt.Errorf("eevdf: thread %d already runnable", id)
		}
		en.ve = d.F64()
		en.vd = d.F64()
		en.served = Work(d.I64())
		en.seq = d.U64()
		if d.Bool() && d.Err() == nil {
			s.heap.Push(en)
		}
		if id == pickedID {
			s.picked = en
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if pickedID != -1 {
		if s.picked == nil || s.picked.idx == -1 {
			return fmt.Errorf("eevdf: picked thread %d is not runnable", pickedID)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// MLFQ

// SaveState implements Stater. Like SVR4, per-level FIFO order is state
// (front-inserted preempted threads come back out first), so each occupied
// level is serialized as an ordered ID list after the per-thread entries.
func (s *MLFQ) SaveState(e *sim.Enc) error {
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *mlfqEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Int(en.level)
		e.Time(en.waitFrom)
	}
	occupied := 0
	for i := range s.levels {
		if s.levels[i].head != nil {
			occupied++
		}
	}
	e.Int(occupied)
	for i := range s.levels {
		if s.levels[i].head == nil {
			continue
		}
		n := 0
		for en := s.levels[i].head; en != nil; en = en.next {
			n++
		}
		e.Int(i)
		e.Int(n)
		for en := s.levels[i].head; en != nil; en = en.next {
			e.Int(en.t.ID)
		}
	}
	return nil
}

// LoadState implements Stater. Runnability is derived from queue
// membership; every queued thread's saved level must place it exactly on
// the level it was saved under.
func (s *MLFQ) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.count != 0 {
		return fmt.Errorf("mlfq: LoadState into a scheduler with runnable threads")
	}
	n := d.Count(24)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("mlfq: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("mlfq: checkpoint references unknown thread %d", id)
		}
		en := s.entry(t)
		en.level = d.Int()
		en.waitFrom = d.Time()
		en.queued = false
		if err := d.Err(); err != nil {
			return err
		}
		if en.level < 0 || en.level >= len(s.levels) {
			return fmt.Errorf("mlfq: level %d of thread %d out of range", en.level, id)
		}
	}
	nl := d.Count(16)
	prevL := math.MinInt
	for i := 0; i < nl; i++ {
		lvl := d.Int()
		cnt := d.Count(8)
		if err := d.Err(); err != nil {
			return err
		}
		if lvl <= prevL {
			return fmt.Errorf("mlfq: queue levels not strictly increasing at %d", lvl)
		}
		prevL = lvl
		if lvl < 0 || lvl >= len(s.levels) {
			return fmt.Errorf("mlfq: queue at level %d out of range", lvl)
		}
		if cnt == 0 {
			return fmt.Errorf("mlfq: empty queue at level %d", lvl)
		}
		for j := 0; j < cnt; j++ {
			id := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			t := resolve(id)
			if t == nil {
				return fmt.Errorf("mlfq: queue references unknown thread %d", id)
			}
			en := s.entryOf(t)
			if en == nil {
				return fmt.Errorf("mlfq: queued thread %d has no entry", id)
			}
			if en.queued {
				return fmt.Errorf("mlfq: thread %d queued twice", id)
			}
			if en.level != lvl {
				return fmt.Errorf("mlfq: thread %d queued at level %d but carries %d", id, lvl, en.level)
			}
			wf := en.waitFrom
			s.insert(en, wf, tailInsert)
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// DRR

// SaveState implements Stater. The adaptive quanta are per-thread learned
// state; the round-robin queue order is serialized as an ordered ID list.
func (s *DRR) SaveState(e *sim.Enc) error {
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.lists {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *drrEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.Time(en.quantum)
	}
	e.Int(s.count)
	for en := s.list.head; en != nil; en = en.next {
		e.Int(en.t.ID)
	}
	return nil
}

// LoadState implements Stater.
func (s *DRR) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.count != 0 {
		return fmt.Errorf("drr: LoadState into a scheduler with runnable threads")
	}
	n := d.Count(16)
	prev := math.MinInt
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("drr: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("drr: checkpoint references unknown thread %d", id)
		}
		en := s.entry(t)
		en.quantum = d.Time()
		en.queued = false
		if err := d.Err(); err != nil {
			return err
		}
		if en.quantum < s.minQ || en.quantum > s.maxQ {
			return fmt.Errorf("drr: quantum %v of thread %d outside [%v, %v]", en.quantum, id, s.minQ, s.maxQ)
		}
	}
	nq := d.Count(8)
	for i := 0; i < nq; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("drr: queue references unknown thread %d", id)
		}
		en := s.entryOf(t)
		if en == nil {
			return fmt.Errorf("drr: queued thread %d has no entry", id)
		}
		if en.queued {
			return fmt.Errorf("drr: thread %d queued twice", id)
		}
		s.insert(en, tailInsert)
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// Reserves

// SaveState implements Stater. The background band is an ordered
// round-robin queue, so it is serialized as an ordered ID list; reserved
// (budgeted) membership is per-entry and the heap is rebuilt from it.
func (s *Reserves) SaveState(e *sim.Enc) error {
	e.Int(s.count)
	if s.picked != nil {
		encTID(e, s.picked.t)
	} else {
		e.Int(-1)
	}
	s.saveScratch = s.saveScratch[:0]
	for _, en := range s.entries {
		s.saveScratch = append(s.saveScratch, en)
	}
	slices.SortFunc(s.saveScratch, func(a, b *resEntry) int { return a.t.ID - b.t.ID })
	e.Int(len(s.saveScratch))
	for _, en := range s.saveScratch {
		e.Int(en.t.ID)
		e.I64(int64(en.capacity))
		e.Time(en.period)
		e.I64(int64(en.budget))
		e.Time(en.refillAt)
		e.Bool(en.runnable)
		e.Bool(en.idx != -1)
	}
	e.Int(len(s.bg))
	for _, en := range s.bg {
		e.Int(en.t.ID)
	}
	return nil
}

// LoadState implements Stater.
func (s *Reserves) LoadState(d *sim.Dec, resolve func(id int) *Thread) error {
	if s.count != 0 {
		return fmt.Errorf("reserves: LoadState into a scheduler with runnable threads")
	}
	savedCount := d.Int()
	pickedID := d.Int()
	s.picked = nil
	n := d.Count(42)
	prev := math.MinInt
	runnable := 0
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("reserves: thread IDs not strictly increasing at %d", id)
		}
		prev = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("reserves: checkpoint references unknown thread %d", id)
		}
		en := s.entry(t)
		en.capacity = Work(d.I64())
		en.period = d.Time()
		en.budget = Work(d.I64())
		en.refillAt = d.Time()
		en.runnable = d.Bool()
		reserved := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if en.capacity != 0 && (en.capacity < 0 || en.period <= 0) {
			return fmt.Errorf("reserves: thread %d with invalid reserve C=%d T=%v", id, en.capacity, en.period)
		}
		if en.refillAt < -1 {
			return fmt.Errorf("reserves: thread %d with invalid replenishment time %v", id, en.refillAt)
		}
		if reserved && !en.runnable {
			return fmt.Errorf("reserves: thread %d reserved but not runnable", id)
		}
		en.idx = -1
		if reserved {
			// Pushing in thread-ID order is sound: the heap order
			// (refillAt, thread ID) is a strict total order.
			s.heap.Push(en)
		}
		if en.runnable {
			runnable++
		}
		if id == pickedID {
			s.picked = en
		}
	}
	nbg := d.Count(8)
	if d.Err() == nil && nbg != runnable-s.heap.Len() {
		return fmt.Errorf("reserves: background band has %d threads, want %d", nbg, runnable-s.heap.Len())
	}
	for i := 0; i < nbg; i++ {
		t, err := decTID(d, resolve, "reserves background band")
		if err != nil {
			return err
		}
		if t == nil {
			return fmt.Errorf("reserves: invalid background entry at position %d", i)
		}
		en := s.entryOf(t)
		if en == nil || !en.runnable || en.idx != -1 {
			return fmt.Errorf("reserves: background thread %d not runnable or already reserved", t.ID)
		}
		for _, x := range s.bg {
			if x == en {
				return fmt.Errorf("reserves: thread %d in background band twice", t.ID)
			}
		}
		s.bg = append(s.bg, en)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if runnable != savedCount {
		return fmt.Errorf("reserves: %d runnable threads but count %d", runnable, savedCount)
	}
	s.count = runnable
	if pickedID != -1 && (s.picked == nil || !s.picked.runnable) {
		return fmt.Errorf("reserves: picked thread %d is not runnable", pickedID)
	}
	return nil
}
