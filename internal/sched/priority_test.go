package sched

import (
	"testing"

	"hsfq/internal/sim"
)

func TestPriorityOrdersAndStarves(t *testing.T) {
	s := NewPriority(0)
	hi := NewThread(1, "hi", 1)
	hi.Priority = 9
	lo := NewThread(2, "lo", 1)
	lo.Priority = 1
	s.Enqueue(lo, 0)
	s.Enqueue(hi, 0)
	// The high-priority thread runs every time — no protection at all.
	for i := 0; i < 50; i++ {
		if got := s.Pick(0); got != hi {
			t.Fatalf("round %d picked %v", i, got)
		}
		s.Charge(hi, 1000, 0, true)
	}
	s.Pick(0)
	s.Charge(hi, 1000, 0, false)
	if got := s.Pick(0); got != lo {
		t.Fatalf("low-priority thread not served after hi left: %v", got)
	}
	s.Charge(lo, 1, 0, true)
}

func TestPriorityRoundRobinWithinLevel(t *testing.T) {
	s := NewPriority(0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	a.Priority = 5
	b.Priority = 5
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	var picks []int
	for i := 0; i < 6; i++ {
		p := s.Pick(0)
		picks = append(picks, p.ID)
		s.Charge(p, 1000, 0, true)
	}
	want := []int{1, 2, 1, 2, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks %v, want alternation", picks)
		}
	}
}

func TestPriorityPreempts(t *testing.T) {
	s := NewPriority(0)
	lo := NewThread(1, "lo", 1)
	lo.Priority = 1
	s.Enqueue(lo, 0)
	s.Pick(0)
	hi := NewThread(2, "hi", 1)
	hi.Priority = 9
	s.Enqueue(hi, 0)
	if !s.Preempts(lo, hi, 0) {
		t.Error("higher priority did not preempt")
	}
	same := NewThread(3, "same", 1)
	same.Priority = 1
	s.Enqueue(same, 0)
	if s.Preempts(lo, same, 0) {
		t.Error("equal priority preempted")
	}
	s.Charge(lo, 1, 0, true)
}

func TestPriorityForget(t *testing.T) {
	s := NewPriority(0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	s.Pick(0)
	s.Charge(a, 1, 0, false)
	s.Forget(a)
	if len(s.entries) != 0 {
		t.Error("entry not forgotten")
	}
	s.Enqueue(a, 0)
	defer func() {
		if recover() == nil {
			t.Error("Forget of runnable did not panic")
		}
	}()
	s.Forget(a)
}

func TestPriorityReadsPriorityAtEnqueue(t *testing.T) {
	s := NewPriority(sim.Millisecond)
	a := NewThread(1, "a", 1)
	a.Priority = 1
	b := NewThread(2, "b", 1)
	b.Priority = 5
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	if s.Pick(0) != b {
		t.Fatal("b should win")
	}
	s.Charge(b, 1, 0, false)
	// Raising a's priority while queued takes effect at next enqueue,
	// not retroactively.
	a.Priority = 9
	if s.Pick(0) != a {
		t.Fatal("a is alone")
	}
	s.Charge(a, 1, 0, false)
	s.Enqueue(a, 0)
	b.Priority = 7
	s.Enqueue(b, 0)
	if s.Pick(0) != a {
		t.Error("a's new priority 9 not honored at enqueue")
	}
	s.Charge(a, 1, 0, true)
}
