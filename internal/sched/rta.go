package sched

import (
	"fmt"

	"hsfq/internal/sim"
)

// This file implements exact response-time analysis (RTA) for fixed
// priority scheduling (Joseph & Pandya / Audsley). The Liu-Layland bound
// used by SchedulableRM is only sufficient; RTA is exact for synchronous
// periodic task sets with deadlines equal to periods, so a QoS manager
// can admit harmonic task sets the simple bound rejects.

// ResponseTimesRM computes the worst-case response time of each task
// under Rate Monotonic priorities (shorter period = higher priority),
// given compute times and periods. It returns ok=false if any task's
// recurrence fails to converge within its period (the task set is
// unschedulable) — response times beyond the period are not meaningful
// for deadline=period task sets and iteration stops there.
//
// The recurrence for task i with higher-priority set hp(i):
//
//	R = C_i + sum_{j in hp(i)} ceil(R / T_j) * C_j
//
// iterated to a fixed point.
func ResponseTimesRM(compute, period []sim.Time) (resp []sim.Time, ok bool) {
	if len(compute) != len(period) {
		panic("sched: ResponseTimesRM with mismatched slice lengths")
	}
	n := len(compute)
	resp = make([]sim.Time, n)
	ok = true
	// Priority order: ascending period (ties by index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if period[a] > period[b] || (period[a] == period[b] && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	for rank, i := range order {
		if compute[i] <= 0 || period[i] <= 0 {
			panic(fmt.Sprintf("sched: task %d with non-positive parameters", i))
		}
		r := compute[i]
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				panic("sched: RTA failed to converge")
			}
			next := compute[i]
			for _, j := range order[:rank] {
				jobs := (r + period[j] - 1) / period[j] // ceil(r / T_j)
				next += jobs * compute[j]
			}
			if next == r {
				break
			}
			r = next
			if r > period[i] {
				// Deadline (= period) already blown; no point iterating on.
				ok = false
				break
			}
		}
		resp[i] = r
	}
	return resp, ok
}

// SchedulableRMExact reports whether the task set is schedulable under
// Rate Monotonic by exact response-time analysis: every task's worst-case
// response time fits within its period. Unlike SchedulableRM's
// Liu-Layland bound, this is necessary and sufficient for synchronous
// deadline=period task sets — e.g. harmonic sets at utilization 1.0 are
// accepted.
func SchedulableRMExact(compute, period []sim.Time) bool {
	if len(compute) == 0 {
		return true
	}
	resp, ok := ResponseTimesRM(compute, period)
	if !ok {
		return false
	}
	for i, r := range resp {
		if r > period[i] {
			return false
		}
	}
	return true
}
