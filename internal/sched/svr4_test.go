package sched

import (
	"strings"
	"testing"

	"hsfq/internal/sim"
)

const svr4IPS = 100_000_000 // 100 MIPS, matching the experiments

func msWork(ms int64) Work { return Work(ms * svr4IPS / 1000) }

func TestDispatchTableShape(t *testing.T) {
	table := DefaultDispatchTable()
	if len(table) != TSLevels {
		t.Fatalf("table has %d levels", len(table))
	}
	for p, row := range table {
		if row.Quantum <= 0 {
			t.Errorf("level %d: quantum %v", p, row.Quantum)
		}
		if p > 0 && table[p].Quantum > table[p-1].Quantum {
			t.Errorf("quantum grows with priority at level %d", p)
		}
		if row.TQExp > p {
			t.Errorf("level %d: tqexp %d raises priority", p, row.TQExp)
		}
		if row.SlpRet < p {
			t.Errorf("level %d: slpret %d lowers priority", p, row.SlpRet)
		}
		if row.LWait < p {
			t.Errorf("level %d: lwait %d lowers priority", p, row.LWait)
		}
		if row.TQExp < 0 || row.SlpRet >= TSLevels || row.LWait >= TSLevels {
			t.Errorf("level %d: targets out of range", p)
		}
	}
	if table[0].Quantum != 200*sim.Millisecond {
		t.Errorf("lowest level quantum %v, want 200ms", table[0].Quantum)
	}
	if table[TSLevels-1].Quantum != 20*sim.Millisecond {
		t.Errorf("highest level quantum %v, want 20ms", table[TSLevels-1].Quantum)
	}
}

func TestSVR4QuantumExpiryDemotes(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	_, before := s.Level(a)
	p := s.Pick(0)
	q := s.Quantum(p, 0)
	s.Charge(p, Work(int64(q)*svr4IPS/int64(sim.Second)), q, true)
	_, after := s.Level(a)
	if after >= before {
		t.Errorf("level %d -> %d after full quantum, want demotion", before, after)
	}
}

func TestSVR4PartialQuantumKeepsLevel(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	_, before := s.Level(a)
	s.Pick(0)
	s.Charge(a, msWork(1), sim.Millisecond, true) // preempted early
	_, after := s.Level(a)
	if after != before {
		t.Errorf("level changed %d -> %d on partial quantum", before, after)
	}
}

func TestSVR4SleepReturnBoost(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	s.Pick(0)
	s.Charge(a, msWork(1), 0, false) // blocks
	a.Segments = 1
	_, before := s.Level(a)
	a.WokeAt = sim.Second
	s.Enqueue(a, sim.Second)
	_, after := s.Level(a)
	want := DefaultDispatchTable()[before].SlpRet
	if after != want {
		t.Errorf("sleep return level %d, want slpret %d", after, want)
	}
}

func TestSVR4HigherLevelRunsFirst(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	hog := NewThread(1, "hog", 1)
	s.Enqueue(hog, 0)
	// Demote the hog through several full quanta.
	for i := 0; i < 3; i++ {
		p := s.Pick(0)
		if p != hog {
			t.Fatalf("round %d picked %v", i, p)
		}
		q := s.Quantum(p, 0)
		s.Charge(p, Work(int64(q)*svr4IPS/int64(sim.Second)), 0, true)
	}
	fresh := NewThread(2, "fresh", 1)
	s.Enqueue(fresh, 0)
	if got := s.Pick(0); got != fresh {
		t.Errorf("demoted hog beat a fresh thread")
	}
	s.Charge(fresh, 1, 0, false)
}

func TestSVR4WaitBoost(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	waiter := NewThread(1, "waiter", 1)
	s.Enqueue(waiter, 0)
	// Demote waiter far below initial.
	for i := 0; i < 3; i++ {
		p := s.Pick(0)
		q := s.Quantum(p, 0)
		s.Charge(p, Work(int64(q)*svr4IPS/int64(sim.Second)), 0, true)
	}
	_, demoted := s.Level(waiter)
	// After waiting more than MaxWait, Pick must apply the lwait boost.
	s.Pick(2 * sim.Second)
	_, boosted := s.Level(waiter)
	if boosted <= demoted {
		t.Errorf("no starvation boost: %d -> %d", demoted, boosted)
	}
	s.Charge(waiter, 1, 2*sim.Second, false)
}

func TestSVR4RTClassAboveTS(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 25*sim.Millisecond)
	ts := NewThread(1, "ts", 1)
	rt := NewThread(2, "rt", 1)
	s.SetRealTime(rt, 0)
	s.Enqueue(ts, 0)
	s.Enqueue(rt, 0)
	if got := s.Pick(0); got != rt {
		t.Fatalf("RT thread did not outrank TS")
	}
	if q := s.Quantum(rt, 0); q != 25*sim.Millisecond {
		t.Errorf("RT quantum %v", q)
	}
	s.Charge(rt, 1, 0, false)
	if got := s.Pick(0); got != ts {
		t.Fatal("TS thread not served after RT left")
	}
	s.Charge(ts, 1, 0, true)
}

func TestSVR4RTPriorityOrderAndPreempt(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	lo := NewThread(1, "rt-lo", 1)
	hi := NewThread(2, "rt-hi", 1)
	ts := NewThread(3, "ts", 1)
	s.SetRealTime(lo, 10)
	s.SetRealTime(hi, 20)
	s.Enqueue(lo, 0)
	s.Enqueue(ts, 0)
	if got := s.Pick(0); got != lo {
		t.Fatalf("picked %v", got)
	}
	// A higher-priority RT wakeup preempts; a TS one does not.
	s.Enqueue(hi, 0)
	if !s.Preempts(lo, hi, 0) {
		t.Error("higher RT priority did not preempt")
	}
	if s.Preempts(lo, ts, 0) {
		t.Error("TS preempted RT")
	}
	s.Charge(lo, 1, 0, true)
	if got := s.Pick(0); got != hi {
		t.Errorf("picked %v, want rt-hi", got)
	}
	s.Charge(hi, 1, 0, false)
}

func TestSVR4SetRealTimeValidation(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	defer func() {
		if recover() == nil {
			t.Error("SetRealTime on runnable thread did not panic")
		}
	}()
	s.SetRealTime(a, 5)
}

func TestSVR4FIFOWithinPriority(t *testing.T) {
	s := NewSVR4(nil, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	b := NewThread(2, "b", 1)
	s.Enqueue(a, 0)
	s.Enqueue(b, 0)
	if got := s.Pick(0); got != a {
		t.Fatalf("picked %v, want FIFO head", got)
	}
	// Full quantum sends a to the tail of a lower level; b now runs.
	q := s.Quantum(a, 0)
	s.Charge(a, Work(int64(q)*svr4IPS/int64(sim.Second)), 0, true)
	if got := s.Pick(0); got != b {
		t.Errorf("picked %v, want b", got)
	}
	s.Charge(b, 1, 0, false)
}

func TestDispatchTableRoundTrip(t *testing.T) {
	orig := DefaultDispatchTable()
	var buf strings.Builder
	if err := WriteDispatchTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDispatchTable(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("level %d: %+v != %+v", i, got[i], orig[i])
		}
	}
	// The parsed table drives a working scheduler.
	s := NewSVR4(got, svr4IPS, 0)
	a := NewThread(1, "a", 1)
	s.Enqueue(a, 0)
	if s.Pick(0) != a {
		t.Fatal("parsed table unusable")
	}
	s.Charge(a, 1, 0, false)
}

func TestParseDispatchTableErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields":   "200 0 50 1\n",
		"non-numeric":    "abc 0 50 1 50\n",
		"zero quantum":   "0 0 50 1 50\n",
		"bad target":     "200 99 50 1 50\n",
		"too few levels": "200 0 50 1 50\n200 0 50 1 50\n",
	}
	for name, in := range cases {
		if _, err := ParseDispatchTable(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSVR4NoStarvationProperty: whatever the mix of hogs, the lwait boost
// guarantees every TS thread keeps making progress — unlike pure static
// priority. Random thread counts and phases; every thread must be served
// within any window of a few seconds.
func TestSVR4NoStarvationProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRand(seed)
		s := NewSVR4(nil, svr4IPS, 0)
		n := rng.Intn(6) + 2
		threads := make([]*Thread, n)
		lastServed := make(map[*Thread]sim.Time)
		for i := 0; i < n; i++ {
			threads[i] = NewThread(i+1, "t", 1)
			s.Enqueue(threads[i], 0)
			lastServed[threads[i]] = 0
		}
		now := sim.Time(0)
		for now < 60*sim.Second {
			p := s.Pick(now)
			q := s.Quantum(p, now)
			used := Work(int64(q) * svr4IPS / int64(sim.Second))
			now += q
			s.Charge(p, used, now, true)
			lastServed[p] = now
			for _, th := range threads {
				if wait := now - lastServed[th]; wait > 10*sim.Second {
					t.Fatalf("seed %d: %v starved for %v with %d threads", seed, th, wait, n)
				}
			}
		}
	}
}
