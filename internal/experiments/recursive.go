package experiments

import (
	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/fcserver"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("ablation-recursive", "A9: recursive FC guarantee down a three-level hierarchy (§3)", runAblationRecursive)
}

// runAblationRecursive validates the paper's recursion argument: "if SFQ
// is used for hierarchical partitioning and if the CPU is an FC(EBF)
// server, then each of the sub-classes of the root class are FC(EBF)
// servers. Using this argument recursively, we conclude that ... each of
// the sub-classes are also FC(EBF) servers, the parameters of which can
// be derived using (6) and (7)."
//
// Structure: root -> {A (w=1), B (w=3)}; B -> {B1 (w=1), B2 (w=2)}; every
// leaf holds two equal CPU-bound threads. The CPU loses 10% to periodic
// interrupts (an FC server). Eq. 6 is applied once to get each top class's
// FC parameters, and again inside B to get B1's and B2's; all five node
// traces must conform to their derived models.
func runAblationRecursive(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	quantum := 10 * sim.Millisecond

	s := core.NewStructure()
	idA, err := s.Mknod("A", core.RootID, 1, sched.NewSFQ(quantum))
	must(err)
	idB, err := s.Mknod("B", core.RootID, 3, nil)
	must(err)
	idB1, err := s.Mknod("B1", idB, 1, sched.NewSFQ(quantum))
	must(err)
	idB2, err := s.Mknod("B2", idB, 2, sched.NewSFQ(quantum))
	must(err)

	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, s)
	m.AddInterrupts(&cpu.PeriodicInterrupts{Period: 10 * sim.Millisecond, Service: sim.Millisecond})

	attachPair := func(leaf core.NodeID, base int) [2]*sched.Thread {
		var out [2]*sched.Thread
		for i := 0; i < 2; i++ {
			t := sched.NewThread(base+i, "t", 1)
			must(s.Attach(t, leaf))
			m.Add(t, cpu.Forever(cpu.Compute(1_000_000)), 0)
			out[i] = t
		}
		return out
	}
	aThreads := attachPair(idA, 10)
	b1Threads := attachPair(idB1, 20)
	b2Threads := attachPair(idB2, 30)

	all := []*sched.Thread{aThreads[0], aThreads[1], b1Threads[0], b1Threads[1], b2Threads[0], b2Threads[1]}
	col := fcserver.NewCollector(all...)
	m.Listen(col)
	m.Run(horizon)

	// Node-level service traces.
	traceA := fcserver.MergePoints(col.Points(aThreads[0]), col.Points(aThreads[1]))
	traceB1 := fcserver.MergePoints(col.Points(b1Threads[0]), col.Points(b1Threads[1]))
	traceB2 := fcserver.MergePoints(col.Points(b2Threads[0]), col.Points(b2Threads[1]))
	traceB := fcserver.MergePoints(traceB1, traceB2)

	// Level 0: the CPU under 10% interrupt load is FC(0.9C, C*1ms).
	cpuFC := fcserver.FC{Rate: 0.9 * float64(rate), Burst: float64(rate) / 1000}
	lmax := float64(rate) * quantum.Seconds()

	// Level 1: Eq. 6 at the root (weights 1:3, two competitors each way;
	// each node's quantum at the root level is one leaf quantum).
	fcA := fcserver.SFQThroughput(cpuFC, 0.25*cpuFC.Rate, lmax, []float64{lmax})
	fcB := fcserver.SFQThroughput(cpuFC, 0.75*cpuFC.Rate, lmax, []float64{lmax})

	// Level 2: Eq. 6 again, inside B (weights 1:2), with B's own FC
	// parameters as the server.
	fcB1 := fcserver.SFQThroughput(fcB, fcB.Rate/3, lmax, []float64{lmax})
	fcB2 := fcserver.SFQThroughput(fcB, 2*fcB.Rate/3, lmax, []float64{lmax})

	tbl := metrics.NewTable("node", "level", "FC rate", "FC burst", "worst deficit")
	allOK := true
	check := func(name string, level int, fc fcserver.FC, trace []fcserver.ServicePoint) {
		d := fc.WorstDeficit(trace)
		if d > 1 {
			allOK = false
		}
		tbl.AddRow(name, level, fc.Rate, fc.Burst, d)
	}
	check("A", 1, fcA, traceA)
	check("B", 1, fcB, traceB)
	check("B1", 2, fcB1, traceB1)
	check("B2", 2, fcB2, traceB2)
	r.Printf("%s", tbl.String())

	r.Check(allOK, "recursive Eq.6 holds at every level",
		"all four node traces conform to their derived FC parameters")
	// Sanity: the shares themselves are right.
	workA := float64(aThreads[0].Done + aThreads[1].Done)
	workB2 := float64(b2Threads[0].Done + b2Threads[1].Done)
	r.Check(within(workB2/workA, 2.0, 0.02), "B2 gets 2x A",
		"B2/A = %.3f (B2: 2/3 of 3/4; A: 1/4)", workB2/workA)
	return r
}
