package experiments

import (
	"hsfq/internal/metrics"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig1", "Variation in decompression times of frames in an MPEG compressed video sequence", runFig1)
}

// runFig1 regenerates the Fig. 1 trace: per-frame decode times of a VBR
// MPEG sequence, exhibiting variability both frame-to-frame (tens of
// milliseconds apart) and scene-to-scene (seconds apart).
func runFig1(opt Options) *Result {
	r := &Result{}
	rng := sim.NewRand(opt.Seed)
	gen := workload.DefaultMPEG(int64(rate), rng)
	const frames = 2000
	trace := gen.Trace(frames)

	// Decode time per frame in milliseconds at the machine rate.
	ms := make([]float64, frames)
	for i, w := range trace {
		ms[i] = float64(w) / float64(rate) * 1000
	}

	// Frame-scale variability: coefficient of variation across frames.
	frameCV := metrics.CoefficientOfVariation(ms)

	// Scene-scale variability: means over 2-second (60-frame) windows.
	const win = 60
	var sceneMeans []float64
	for i := 0; i+win <= frames; i += win {
		sum := 0.0
		for _, v := range ms[i : i+win] {
			sum += v
		}
		sceneMeans = append(sceneMeans, sum/win)
	}
	sceneCV := metrics.CoefficientOfVariation(sceneMeans)
	lo, hi := sceneMeans[0], sceneMeans[0]
	for _, v := range sceneMeans {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}

	sum := metrics.Summarize(ms)
	r.Printf("MPEG decode cost per frame (%d frames, GOP=%s, %d fps):\n", frames, gen.GOP, gen.FPS)
	r.Printf("  per-frame ms: %v\n", sum)
	r.Printf("  frame-scale CV=%.3f; scene-window (2s) means: min=%.2f max=%.2f CV=%.3f\n",
		frameCV, lo, hi, sceneCV)
	if opt.Plot {
		series := map[rune][]float64{'*': ms[:300]}
		must(metrics.AsciiPlot(&r.out, 12, series))
	}

	tbl := metrics.NewTable("frame", "type", "decode_ms")
	for i := 0; i < 30; i++ {
		tbl.AddRow(i, string(gen.GOP[i%len(gen.GOP)]), ms[i])
	}
	r.Printf("%s", tbl.String())

	// Paper shape: decode time varies strongly frame-to-frame (I vs B
	// frames) and the per-scene mean wanders by a large factor over
	// seconds, and neither variation is degenerate.
	r.Check(frameCV > 0.3, "frame-scale variability", "CV=%.3f, want > 0.3", frameCV)
	r.Check(hi/lo > 1.5, "scene-scale variability", "scene mean max/min=%.2f, want > 1.5", hi/lo)
	r.Check(sum.Max/sum.Min > 3, "I-vs-B spread", "max/min=%.2f, want > 3", sum.Max/sum.Min)
	return r
}
