package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/fairqueue"
	"hsfq/internal/fcserver"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("ablation-fairness", "A1: SFQ vs WFQ/FQS/SCFQ fairness under fluctuating server rate", runAblationFairness)
	register("ablation-delay", "A2: delay of a low-throughput flow, SFQ vs WFQ", runAblationDelay)
	register("ablation-lottery", "A3: short-interval fairness, lottery vs stride vs SFQ", runAblationLottery)
	register("ablation-bounds", "A5: measured service vs FC throughput bound under interrupt load", runAblationBounds)
}

// runAblationFairness reproduces the paper's central argument for SFQ over
// WFQ/FQS (§2 requirement 1, §6): fairness must survive bandwidth
// fluctuation. Three equal-weight flows; flows 0 and 1 are backlogged from
// t=0; the server's rate drops to a fifth of nominal during [2s, 6s]; flow
// 2 becomes backlogged at t=4s. WFQ and FQS stamp flow 2 with a GPS
// virtual time computed at *nominal* rate — far ahead of the service
// actually delivered — so flow 2 is starved long after it joins. SFQ's
// virtual time follows actual service and shares 1:1:1 immediately.
func runAblationFairness(opt Options) *Result {
	r := &Result{}
	const nominal = float64(rate) // work/sec
	pkt := sched.Work(rate / 1000)
	mkPackets := func() []*fairqueue.Packet {
		return fairqueue.Merge(
			fairqueue.Batch(0, pkt, 30000, 0),
			fairqueue.Batch(1, pkt, 30000, 0),
			fairqueue.Batch(2, pkt, 30000, 4*sim.Second),
		)
	}
	changes := []fairqueue.RateChange{
		{At: 0, Rate: nominal},
		{At: 2 * sim.Second, Rate: nominal / 5},
		{At: 6 * sim.Second, Rate: nominal},
	}
	weights := []float64{1, 1, 1}

	// Measure each flow's normalized service in [4s, 8s] — the window in
	// which all three flows are backlogged.
	window := [2]sim.Time{4 * sim.Second, 8 * sim.Second}
	type algCase struct {
		name string
		alg  fairqueue.Algorithm
	}
	cases := []algCase{
		{"sfq", fairqueue.NewSFQ(weights)},
		{"scfq", fairqueue.NewSCFQ(weights)},
		{"wfq", fairqueue.NewWFQ(nominal, weights)},
		{"fqs", fairqueue.NewFQS(nominal, weights)},
	}

	tbl := metrics.NewTable("algorithm", "flow0/w", "flow1/w", "flow2/w", "max gap", "flow2 share")
	gaps := map[string]float64{}
	share2 := map[string]float64{}
	for _, c := range cases {
		srv := fairqueue.NewServer(c.alg, changes)
		served := srv.Run(mkPackets())
		norm := fairqueue.NormalizedService(srv, served, weights, window[0], window[1])
		gap := fairqueue.MaxGap(norm)
		total := norm[0] + norm[1] + norm[2]
		gaps[c.name] = gap
		share2[c.name] = norm[2] / total
		tbl.AddRow(c.name, norm[0], norm[1], norm[2], gap, norm[2]/total)
	}
	r.Printf("server: %v nominal, /5 during [2s,6s]; flow 2 joins at 4s; window [4s,8s]\n", nominal)
	r.Printf("%s", tbl.String())

	// SFQ's gap is bounded by lmax/w_i + lmax/w_j regardless of
	// fluctuation (Eq. 3); the reference-clock algorithms blow through it.
	bound := 2 * float64(pkt) / weights[0]
	r.Check(gaps["sfq"] <= bound+1, "SFQ within fairness bound",
		"gap %.0f, bound %.0f", gaps["sfq"], bound)
	r.Check(gaps["wfq"] > 10*bound, "WFQ unfair under fluctuation",
		"gap %.0f vs SFQ bound %.0f", gaps["wfq"], bound)
	r.Check(gaps["fqs"] > 10*bound, "FQS unfair under fluctuation",
		"gap %.0f vs SFQ bound %.0f", gaps["fqs"], bound)
	r.Check(share2["sfq"] > 0.30 && share2["sfq"] < 0.36, "SFQ gives joiner its share",
		"flow2 share %.3f, want ~1/3", share2["sfq"])
	r.Check(share2["wfq"] < share2["sfq"]/2, "WFQ starves joiner",
		"flow2 share %.3f under WFQ vs %.3f under SFQ", share2["wfq"], share2["sfq"])
	// SCFQ's self-clock also follows actual service; it should remain fair
	// (its weakness is delay, not fluctuation — see ablation-delay).
	r.Check(gaps["scfq"] <= 2*bound, "SCFQ fair under fluctuation",
		"gap %.0f", gaps["scfq"])
	return r
}

// runAblationDelay reproduces §6's low-throughput delay comparison: a
// low-rate flow sends a small request periodically while a heavy flow
// stays backlogged. WFQ orders by finish tags, penalizing the low-weight
// flow by L/r_f; SFQ orders by start tags and serves it almost
// immediately.
func runAblationDelay(opt Options) *Result {
	r := &Result{}
	const nominal = float64(rate)
	weights := []float64{1, 9}
	req := sched.Work(rate / 100) // 10 ms of service
	mk := func() []*fairqueue.Packet {
		return fairqueue.Merge(
			fairqueue.Spaced(0, req, 50, 0, 500*sim.Millisecond),
			fairqueue.Batch(1, req, 100000, 0),
		)
	}

	maxDelay := func(alg fairqueue.Algorithm) sim.Time {
		srv := fairqueue.ConstantServer(alg, nominal)
		served := srv.Run(mk())
		var worst sim.Time
		for _, p := range served {
			if p.Flow == 0 {
				if d := p.Departed - p.Arrive; d > worst {
					worst = d
				}
			}
		}
		return worst
	}

	dSFQ := maxDelay(fairqueue.NewSFQ(weights))
	dWFQ := maxDelay(fairqueue.NewWFQ(nominal, weights))
	dSCFQ := maxDelay(fairqueue.NewSCFQ(weights))

	r.Printf("low-rate flow (w=1 of 10) max request delay: sfq=%v wfq=%v scfq=%v\n", dSFQ, dWFQ, dSCFQ)

	// Analytic cross-check from fcserver: with equal quanta, SFQ beats
	// WFQ exactly when r_f < C/(n-1).
	adv := fcserver.DelayAdvantageSFQ(fcserver.FC{Rate: nominal}, float64(req), nominal/10, 2)
	r.Printf("analytic D_sfq - D_wfq for this configuration: %.4fs (negative favors SFQ)\n", adv)

	r.Check(dSFQ < dWFQ, "SFQ lower delay for low-throughput flow",
		"sfq %v < wfq %v", dSFQ, dWFQ)
	r.Check(adv < 0, "analytic bound agrees", "advantage %.4fs", adv)
	r.Check(dSCFQ >= dSFQ, "SCFQ delay no better than SFQ", "scfq %v vs sfq %v", dSCFQ, dSFQ)
	return r
}

// runAblationLottery reproduces the related-work observation that lottery
// scheduling "achieved fairness only over large time-intervals" while
// stride and SFQ are fair over any interval: two equal-weight CPU-bound
// threads, windowed throughput ratio over 100 ms windows.
func runAblationLottery(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	quantum := 10 * sim.Millisecond

	run := func(mk func(rng *sim.Rand) sched.Scheduler) (windowCV float64, longRatio float64) {
		eng := opt.Engine()
		rng := sim.NewRand(opt.Seed)
		m := cpu.NewMachine(eng, rate, mk(rng))
		a := m.Spawn("a", 1, cpu.Forever(cpu.Compute(1_000_000)), 0)
		b := m.Spawn("b", 1, cpu.Forever(cpu.Compute(1_000_000)), 0)
		sampler := metrics.NewSampler(100*sim.Millisecond, a, b)
		sampler.Install(eng, horizon)
		m.Run(horizon)
		da, db := sampler.Deltas(0), sampler.Deltas(1)
		var ratios []float64
		for i := range da {
			if db[i] > 0 {
				ratios = append(ratios, float64(da[i])/float64(db[i]))
			}
		}
		return metrics.CoefficientOfVariation(ratios), float64(a.Done) / float64(b.Done)
	}

	cvLottery, longLottery := run(func(rng *sim.Rand) sched.Scheduler { return sched.NewLottery(quantum, rng) })
	cvStride, longStride := run(func(rng *sim.Rand) sched.Scheduler { return sched.NewStride(quantum) })
	cvSFQ, longSFQ := run(func(rng *sim.Rand) sched.Scheduler { return sched.NewSFQ(quantum) })

	tbl := metrics.NewTable("scheduler", "100ms-window ratio CV", "30s ratio")
	tbl.AddRow("lottery", cvLottery, longLottery)
	tbl.AddRow("stride", cvStride, longStride)
	tbl.AddRow("sfq", cvSFQ, longSFQ)
	r.Printf("%s", tbl.String())

	r.Check(within(longLottery, 1, 0.05), "lottery fair long-run", "30s ratio %.3f", longLottery)
	r.Check(cvLottery > 10*cvSFQ && cvLottery > 0.05, "lottery unfair short-run",
		"window CV %.4f vs SFQ %.4f", cvLottery, cvSFQ)
	r.Check(cvStride < 0.05 && cvSFQ < 0.05, "stride and SFQ fair short-run",
		"stride %.4f, sfq %.4f", cvStride, cvSFQ)
	return r
}

// runAblationBounds validates the FC throughput guarantee (Eq. 6) against
// a measured schedule: an SFQ leaf with three weighted threads on a CPU
// losing 10% of its bandwidth to periodic interrupts. The effective CPU
// is FC(0.9C, delta); every thread's measured service must conform to the
// FC parameters Eq. (6) predicts.
func runAblationBounds(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	quantum := 10 * sim.Millisecond
	eng := opt.Engine()
	leaf := sched.NewSFQ(quantum)
	m := cpu.NewMachine(eng, rate, leaf)
	m.AddInterrupts(&cpu.PeriodicInterrupts{Period: 10 * sim.Millisecond, Service: sim.Millisecond})

	weights := []float64{1, 2, 5}
	var threads []*sched.Thread
	for i, w := range weights {
		threads = append(threads, m.Spawn("t", w, cpu.Forever(cpu.Compute(1_000_000)), 0))
		_ = i
	}
	col := fcserver.NewCollector(threads...)
	m.Listen(col)
	m.Run(horizon)

	// Effective CPU: rate 0.9C; burstiness = work lost to one service
	// window = C * 1ms (the server can be a full interrupt behind).
	server := fcserver.FC{Rate: 0.9 * float64(rate), Burst: float64(rate) / 1000}
	lmax := float64(rate) * quantum.Seconds() // quantum in instructions
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}

	tbl := metrics.NewTable("thread", "weight", "measured work", "FC rate", "FC burst (Eq.6)", "worst deficit")
	allOK := true
	for i, t := range threads {
		rf := weights[i] / totalW * server.Rate
		others := []float64{}
		for j := range threads {
			if j != i {
				others = append(others, lmax)
			}
		}
		fc := fcserver.SFQThroughput(server, rf, lmax, others)
		deficit := fc.WorstDeficit(col.Points(t))
		if deficit > 1 {
			allOK = false
		}
		tbl.AddRow(t.ID, weights[i], int64(t.Done), fc.Rate, fc.Burst, deficit)
	}
	r.Printf("%s", tbl.String())
	r.Check(allOK, "Eq.6 FC bound holds", "every thread's measured service conforms")

	// Tightest measured burst must not exceed the analytic bound for the
	// lightest thread (the most exposed one).
	rf := weights[0] / totalW * server.Rate
	bound := fcserver.SFQThroughput(server, rf, lmax, []float64{lmax, lmax}).Burst
	tight := fcserver.TightestBurst(rf, col.Points(threads[0]))
	r.Printf("thread1 tightest empirical burst %.0f vs analytic bound %.0f\n", tight, bound)
	r.Check(tight <= bound, "empirical burst within bound", "%.0f <= %.0f", tight, bound)
	return r
}
