// Package experiments contains one driver per figure in the paper's
// evaluation (§5) plus the ablations listed in DESIGN.md. Each driver
// rebuilds the experiment's scenario on the simulated machine, renders the
// same rows/series the paper plots, and self-checks the figure's *shape*
// (who wins, by what ratio, where the bounds lie) — absolute SPARCstation
// numbers are not reproducible and not attempted.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

// Options parameterize a run.
type Options struct {
	// Seed drives every random stream of the experiment; the same seed
	// reproduces the run bit for bit.
	Seed uint64
	// Plot adds crude ASCII plots of the figure's series to the output.
	Plot bool
	// EventQueue selects the engine's event-queue implementation by
	// sim.NewEventQueue name ("" = default heap). Results and digests are
	// identical for any conforming queue; the knob exists so the whole
	// figure suite can be benchmarked under each queue.
	EventQueue string
}

// Engine builds the experiment's event engine on the queue the options
// select. Unknown names panic: callers validate the flag up front
// (cmd/experiments), so here it is a programming error.
func (o Options) Engine() *sim.Engine {
	q, err := sim.NewEventQueue(o.EventQueue)
	if err != nil {
		panic(err)
	}
	return sim.NewEngineWith(q)
}

// DefaultOptions is used by tests and the -all command path.
func DefaultOptions() Options { return Options{Seed: 42} }

// Check is one shape assertion of an experiment.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Result is the outcome of an experiment run.
type Result struct {
	ID     string
	Title  string
	Checks []Check
	out    strings.Builder
}

// Output returns the rendered tables/series.
func (r *Result) Output() string { return r.out.String() }

// Printf appends to the experiment's rendered output.
func (r *Result) Printf(format string, args ...any) {
	fmt.Fprintf(&r.out, format, args...)
}

// Check records a shape assertion.
func (r *Result) Check(pass bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Digest returns the hex SHA-256 of the experiment's rendered output and
// check table — the unit of determinism for CI and sweep comparisons: two
// runs at the same seed must digest identically.
func (r *Result) Digest() string {
	sum := sha256.Sum256([]byte(r.Output() + r.Summary()))
	return hex.EncodeToString(sum[:])
}

// Summary renders the checks as a table footer.
func (r *Result) Summary() string {
	var b strings.Builder
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-32s %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(opt Options) *Result

type entry struct {
	title string
	run   Runner
}

var registry = map[string]entry{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{title: title, run: run}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title of an experiment.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	r := e.run(opt)
	r.ID = id
	r.Title = e.title
	return r, nil
}

// ---- shared scenario builders ----

// rate is the simulated CPU speed used by all experiments: 100 MIPS, the
// class of machine the paper evaluated on.
const rate = cpu.DefaultRate

// dhry is the standard benchmark configuration: one loop costs 100 us of
// CPU, and every ~509 loops the thread takes a 2 ms involuntary sleep
// (page-in); the prime spacing staggers faults across threads.
func dhry(phase int) workload.Dhrystone {
	return workload.Dhrystone{
		LoopWork:   sched.Work(rate / 10000), // 100 us
		FaultEvery: 509,
		FaultSleep: 2 * sim.Millisecond,
		Phase:      phase * 97,
	}
}

// dhryPure is the benchmark without fault sleeps, for experiments where
// blocking would only add noise (the Fig. 7 overhead measurements).
func dhryPure() workload.Dhrystone {
	return workload.Dhrystone{LoopWork: sched.Work(rate / 10000)}
}

// fig6 builds the scheduling structure of the paper's Fig. 6, used by the
// evaluation: root with children SFQ-1, SFQ-2 (SFQ leaves) and SVR4 (the
// modified SVR4 leaf scheduler), with the given weights.
type fig6 struct {
	S        *core.Structure
	SFQ1     core.NodeID
	SFQ2     core.NodeID
	SVR4     core.NodeID
	SFQ1Leaf *sched.SFQ
	SFQ2Leaf *sched.SFQ
	SVR4Leaf *sched.SVR4
}

func buildFig6(w1, w2, wsvr float64, quantum sim.Time) fig6 {
	s := core.NewStructure()
	l1 := sched.NewSFQ(quantum)
	l2 := sched.NewSFQ(quantum)
	lsvr := sched.NewSVR4(nil, int64(rate), 25*sim.Millisecond)
	id1, err := s.Mknod("SFQ-1", core.RootID, w1, l1)
	must(err)
	id2, err := s.Mknod("SFQ-2", core.RootID, w2, l2)
	must(err)
	id3, err := s.Mknod("SVR4", core.RootID, wsvr, lsvr)
	must(err)
	return fig6{S: s, SFQ1: id1, SFQ2: id2, SVR4: id3, SFQ1Leaf: l1, SFQ2Leaf: l2, SVR4Leaf: lsvr}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// attach creates a thread, attaches it to a leaf of the structure, and
// registers it with the machine.
func attach(m *cpu.Machine, s *core.Structure, leaf core.NodeID, id int, name string, weight float64, prog cpu.Program) *sched.Thread {
	t := sched.NewThread(id, name, weight)
	must(s.Attach(t, leaf))
	m.Add(t, prog, 0)
	return t
}

// ratioStr formats a/b.
func ratioStr(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.3f", a/b)
}

// within reports |got-want| <= tol*want.
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*want
}
