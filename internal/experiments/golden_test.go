package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs")

// goldenIDs are experiments whose full rendered output is pinned: any
// behavioral drift in the scheduler, machine, or workloads shows up as a
// golden diff. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenOutputs -update

func TestGoldenOutputs(t *testing.T) {
	// Every experiment is seed-deterministic, so all outputs are pinned.
	// (Computed here, not at package init: the registry fills in init().)
	goldenIDs := IDs()
	if len(goldenIDs) < 19 {
		t.Fatalf("only %d experiments registered", len(goldenIDs))
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Output() + res.Summary()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s; run with -update if intentional.\n--- got ---\n%s", path, got)
			}
		})
	}
}
