package experiments

import (
	"fmt"
	"math"

	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig11", "Dynamic bandwidth allocation: throughput tracks weight changes", runFig11)
}

// fig11Phase describes one segment of the experiment's timeline.
type fig11Phase struct {
	from, to sim.Time
	want     float64 // expected thread1/thread2 throughput ratio; 0 while thread1 sleeps
}

// runFig11 reproduces the dynamic bandwidth allocation experiment: two
// Dhrystone threads in SFQ-1 whose weights (and liveness) change on the
// paper's schedule; the per-second throughput ratio must track the weight
// ratio throughout.
func runFig11(opt Options) *Result {
	r := &Result{}
	const horizon = 26 * sim.Second
	f := buildFig6(1, 1, 1, 10*sim.Millisecond)
	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, f.S)

	burst := sched.Work(rate / 10000)
	// Thread 1 is put to sleep at t=6 and resumes at t=9.
	t1 := sched.NewThread(1, "thread1", 4)
	must(f.S.Attach(t1, f.SFQ1))
	m.Add(t1, workload.ScheduledLoop(burst, []workload.Window{{From: 6 * sim.Second, To: 9 * sim.Second}}), 0)
	t2 := sched.NewThread(2, "thread2", 4)
	must(f.S.Attach(t2, f.SFQ1))
	m.Add(t2, workload.ScheduledLoop(burst, nil), 0)

	// The paper's weight-change schedule, applied through the hsfq_admin
	// path (Structure.SetThreadWeight).
	setW := func(at sim.Time, t *sched.Thread, w float64) {
		eng.At(at, func() { must(f.S.SetThreadWeight(t, w)) })
	}
	setW(4*sim.Second, t2, 2)  // ratio 4:2
	setW(12*sim.Second, t1, 8) // ratio 8:2
	setW(16*sim.Second, t2, 4) // ratio 8:4
	setW(22*sim.Second, t1, 4) // ratio 4:4

	sampler := metrics.NewSampler(sim.Second, t1, t2)
	sampler.Install(eng, horizon)
	m.Run(horizon)

	phases := []fig11Phase{
		{0, 4 * sim.Second, 1},
		{4 * sim.Second, 6 * sim.Second, 2},
		{6 * sim.Second, 9 * sim.Second, 0},
		{9 * sim.Second, 12 * sim.Second, 2},
		{12 * sim.Second, 16 * sim.Second, 4},
		{16 * sim.Second, 22 * sim.Second, 2},
		{22 * sim.Second, 26 * sim.Second, 1},
	}

	d1 := sampler.Deltas(0)
	d2 := sampler.Deltas(1)
	tbl := metrics.NewTable("t(s)", "thread1 work", "thread2 work", "ratio")
	for i := range d1 {
		ratio := math.NaN()
		if d2[i] > 0 {
			ratio = float64(d1[i]) / float64(d2[i])
		}
		tbl.AddRow(i+1, int64(d1[i]), int64(d2[i]), ratio)
	}
	r.Printf("%s", tbl.String())
	if opt.Plot {
		must(metrics.AsciiPlot(&r.out, 10, map[rune][]float64{
			'1': workSeries(d1), '2': workSeries(d2),
		}))
	}

	// Per phase, skip the boundary second (a weight change mid-interval
	// mixes two regimes) and check interior seconds against the expected
	// ratio.
	allOK := true
	detail := ""
	for _, ph := range phases {
		for s := ph.from/sim.Second + 1; s < ph.to/sim.Second; s++ {
			i := int(s) // deltas[i] covers [i, i+1) seconds
			if i >= len(d1) {
				continue
			}
			if ph.want == 0 {
				if d1[i] > sched.Work(rate/100) { // >10ms of work while asleep
					allOK = false
					detail = sprintfPhase(ph, i, float64(d1[i]), 0)
				}
				continue
			}
			got := float64(d1[i]) / float64(d2[i])
			if !within(got, ph.want, 0.08) {
				allOK = false
				detail = sprintfPhase(ph, i, got, ph.want)
			}
		}
	}
	r.Check(allOK, "ratio tracks weights", "phases 1,2,0,2,4,2,1 %s", detail)

	// While thread1 sleeps, thread2 takes the whole node's bandwidth.
	sleepSec := d2[7] // second [7,8) is inside the sleep window
	awakeSec := d2[2]
	r.Check(float64(sleepSec) > 1.8*float64(awakeSec), "sleeper's share redistributed",
		"thread2 work asleep-window %d vs shared-window %d", sleepSec, awakeSec)
	return r
}

func workSeries(d []sched.Work) []float64 {
	out := make([]float64, len(d))
	for i, w := range d {
		out[i] = float64(w)
	}
	return out
}

func sprintfPhase(ph fig11Phase, sec int, got, want float64) string {
	return fmt.Sprintf("(phase %v-%v second %d: ratio %.3f, want %.3f)", ph.from, ph.to, sec, got, want)
}
