package experiments

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("fig3", "Computation of virtual time, start tag, and finish tag in SFQ: worked example", runFig3)
}

// fig3Row is one scheduling decision of the worked example.
type fig3Row struct {
	At     sim.Time
	Thread string
	SA, FA float64
	SB, FB float64
	V      float64
}

// fig3Expected is the execution sequence the paper derives in §3 and
// draws in Fig. 3: threads A and B with weights 1 and 2, 10 ms quanta,
// each consuming full quanta; B blocks at t=60 ms (resumes at 115 ms) and
// A blocks at t=90 ms (resumes at 110 ms). Tags are in the paper's units
// (1 tag unit = 1 ms of service). v is the virtual time as each quantum
// is dispatched. The entries through t=110 follow the paper's prose
// verbatim; the tail extends the same arithmetic to both threads' exits.
var fig3Expected = []struct {
	at     sim.Time
	thread string
	v      float64
}{
	{0, "A", 0},                     // S_A=0
	{10 * sim.Millisecond, "B", 0},  // S_B=0, F_A=10
	{20 * sim.Millisecond, "B", 5},  // F_B=5
	{30 * sim.Millisecond, "A", 10}, // F_B=10, tie A first (FIFO)
	{40 * sim.Millisecond, "B", 10},
	{50 * sim.Millisecond, "B", 15},
	{60 * sim.Millisecond, "A", 20},  // B blocks with F_B=20
	{70 * sim.Millisecond, "A", 30},  // "v(t) changes at the beginning of each quantum of A"
	{80 * sim.Millisecond, "A", 40},  // A blocks at 90 with F_A=50; idle v=50
	{110 * sim.Millisecond, "A", 50}, // A wakes: S_A=max(50,50)=50
	{120 * sim.Millisecond, "B", 50}, // B woke at 115 with S_B=max(50,20)=50
	{130 * sim.Millisecond, "B", 55},
	{140 * sim.Millisecond, "A", 60}, // tie at 60, A's tag is older
	{150 * sim.Millisecond, "B", 60},
}

func runFig3(opt Options) *Result {
	r := &Result{}
	// 1 instruction = 1 ms of CPU so tags read exactly as in the paper.
	const figRate = cpu.Rate(1000)
	eng := opt.Engine()
	leaf := sched.NewSFQ(10 * sim.Millisecond)
	m := cpu.NewMachine(eng, figRate, leaf)

	// A: 20 ms by t=60 plus 30 ms until it blocks at t=90, then 20 ms
	// after resuming. B: 40 ms by t=60, then 30 ms after resuming.
	a := m.Spawn("A", 1, cpu.Sequence(
		cpu.Compute(50), cpu.SleepUntil(110*sim.Millisecond), cpu.Compute(20), cpu.Exit(),
	), 0)
	b := m.Spawn("B", 2, cpu.Sequence(
		cpu.Compute(40), cpu.SleepUntil(115*sim.Millisecond), cpu.Compute(30), cpu.Exit(),
	), 0)

	finalF := map[*sched.Thread]float64{}
	var rows []fig3Row
	m.Listen(fig3ExitListener(func(t *sched.Thread, now sim.Time) {
		_, f := leaf.Tags(t)
		finalF[t] = f
	}))
	m.Listen(fig3Listener(func(t *sched.Thread, now sim.Time) {
		sa, fa := leaf.Tags(a)
		sb, fb := leaf.Tags(b)
		rows = append(rows, fig3Row{
			At: now, Thread: t.Name,
			SA: sa, FA: fa, SB: sb, FB: fb,
			V: leaf.VirtualTime(),
		})
	}))
	m.Run(200 * sim.Millisecond)

	tbl := metrics.NewTable("t", "runs", "v(t)", "S_A", "F_A", "S_B", "F_B")
	for _, row := range rows {
		tbl.AddRow(row.At, row.Thread, row.V, row.SA, row.FA, row.SB, row.FB)
	}
	r.Printf("%s", tbl.String())

	ok := len(rows) == len(fig3Expected)
	detail := fmt.Sprintf("%d dispatches, want %d", len(rows), len(fig3Expected))
	if ok {
		for i, want := range fig3Expected {
			got := rows[i]
			if got.At != want.at || got.Thread != want.thread || got.V != want.v {
				ok = false
				detail = fmt.Sprintf("dispatch %d: got (%v, %s, v=%g), want (%v, %s, v=%g)",
					i, got.At, got.Thread, got.V, want.at, want.thread, want.v)
				break
			}
		}
	}
	r.Check(ok, "golden execution sequence", "%s", detail)

	// Final tags, captured at exit (the machine forgets exited threads):
	// A exits after 70 units of normalized service, B after a resumed run
	// stamped at S=50 plus 30 ms at weight 2.
	fa := finalF[a]
	fb := finalF[b]
	r.Check(fa == 70, "F_A final", "got %v, want 70 (= 50 at block + 20/1 after resume)", fa)
	r.Check(fb == 65, "F_B final", "got %v, want 65 (= resume at S=50 + 30/2)", fb)
	r.Check(a.State == sched.StateExited && b.State == sched.StateExited,
		"completion", "A=%v B=%v", a.State, b.State)
	return r
}

type fig3Listener func(*sched.Thread, sim.Time)

func (f fig3Listener) OnDispatch(t *sched.Thread, now sim.Time)         { f(t, now) }
func (fig3Listener) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}
func (fig3Listener) OnWake(*sched.Thread, sim.Time)                     {}
func (fig3Listener) OnBlock(*sched.Thread, sim.Time)                    {}
func (fig3Listener) OnExit(*sched.Thread, sim.Time)                     {}
func (fig3Listener) OnInterrupt(sim.Time, sim.Time)                     {}
func (fig3Listener) OnIdle(sim.Time)                                    {}

type fig3ExitListener func(*sched.Thread, sim.Time)

func (fig3ExitListener) OnDispatch(*sched.Thread, sim.Time)                 {}
func (fig3ExitListener) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}
func (fig3ExitListener) OnWake(*sched.Thread, sim.Time)                     {}
func (fig3ExitListener) OnBlock(*sched.Thread, sim.Time)                    {}
func (f fig3ExitListener) OnExit(t *sched.Thread, now sim.Time)             { f(t, now) }
func (fig3ExitListener) OnInterrupt(sim.Time, sim.Time)                     {}
func (fig3ExitListener) OnIdle(sim.Time)                                    {}
