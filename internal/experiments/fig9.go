package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig9", "Hard real-time under the hierarchy: scheduling latency and slack time", runFig9)
}

// runFig9 reproduces the hard real-time experiment: thread1 (10 ms every
// 60 ms) and thread2 (150 ms every 960 ms) run in the RT class of the
// SVR4 node under Rate Monotonic priorities, with an MPEG decoder in
// SFQ-1; SVR4 and SFQ-1 have equal weights and 25 ms quanta. The paper
// finds thread1's scheduling latency bounded by the quantum and its slack
// always positive.
func runFig9(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	const quantum = 25 * sim.Millisecond
	f := buildFig6(1, 1, 1, quantum)
	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, f.S)
	rng := sim.NewRand(opt.Seed)

	msWork := func(ms int64) sched.Work { return sched.Work(ms * int64(rate) / 1000) }

	// Rate monotonic: thread1 has the shorter period, hence the higher RT
	// priority.
	p1 := &workload.Periodic{Period: 60 * sim.Millisecond, Cost: msWork(10)}
	t1 := sched.NewThread(1, "thread1", 1)
	t1.Period = p1.Period
	f.SVR4Leaf.SetRealTime(t1, 20)
	must(f.S.Attach(t1, f.SVR4))
	m.Add(t1, p1, 0)

	p2 := &workload.Periodic{Period: 960 * sim.Millisecond, Cost: msWork(150)}
	t2 := sched.NewThread(2, "thread2", 1)
	t2.Period = p2.Period
	f.SVR4Leaf.SetRealTime(t2, 10)
	must(f.S.Attach(t2, f.SVR4))
	m.Add(t2, p2, 0)

	// An MPEG decoder in SFQ-1, competing from the sibling node.
	gen := workload.DefaultMPEG(int64(rate), rng)
	dec := workload.NewDecoder(gen.Trace(100000), true)
	td := sched.NewThread(3, "mpeg", 1)
	must(f.S.Attach(td, f.SFQ1))
	m.Add(td, dec, 0)

	lat := metrics.NewLatencyRecorder(t1, t2)
	m.Listen(lat)
	m.Run(horizon)

	l1 := metrics.Durations(lat.Latencies(t1))
	s1 := metrics.Durations(p1.Slack)
	s2 := metrics.Durations(p2.Slack)
	r.Printf("thread1: %d rounds, latency(ms): %v\n", len(p1.Slack), metrics.Summarize(l1))
	r.Printf("thread1 slack(ms): %v\n", metrics.Summarize(s1))
	r.Printf("thread2: %d rounds, slack(ms): %v\n", len(p2.Slack), metrics.Summarize(s2))
	if opt.Plot {
		must(metrics.AsciiPlot(&r.out, 8, map[rune][]float64{'L': l1[:min(len(l1), 200)]}))
		must(metrics.AsciiPlot(&r.out, 8, map[rune][]float64{'S': s1[:min(len(s1), 200)]}))
	}

	// Paper shape (Fig. 9a): "thread1 gained access to the CPU within a
	// bounded period of time (equal to the length of the scheduling
	// quantum) after its clock interrupt". The exact SFQ delay bound for
	// two equal-weight competing nodes is two quanta — the sibling may be
	// mid-quantum at the wakeup, and the waking node's finish tag may
	// trail by up to one more quantum of service (Eq. 8 with one
	// competitor: (lmax_other + l_own)/C). The bulk of wakeups (p90) land
	// within the single quantum the paper plots.
	maxLat := lat.MaxLatency(t1)
	p90 := metrics.Summarize(l1).P90
	r.Check(maxLat <= 2*quantum+sim.Millisecond, "latency within SFQ delay bound",
		"max latency %v, bound 2x quantum = %v", maxLat, 2*quantum)
	r.Check(p90 <= quantum.Milliseconds()+1, "p90 latency within one quantum",
		"p90 %.2fms, quantum %v", p90, quantum)
	// Fig. 9b: "none of the deadlines for thread1 were violated (i.e.,
	// the slack time is always positive)".
	r.Check(p1.MissedDeadlines() == 0 && p1.MinSlack() > 0, "thread1 slack positive",
		"missed=%d minSlack=%v over %d rounds", p1.MissedDeadlines(), p1.MinSlack(), len(p1.Slack))
	r.Check(p2.MissedDeadlines() == 0, "thread2 deadlines met",
		"missed=%d minSlack=%v", p2.MissedDeadlines(), p2.MinSlack())
	r.Check(td.Done > 0, "decoder progresses", "decoder work %d", td.Done)
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
