package experiments

import (
	"math"

	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig10", "SFQ as a leaf scheduler: frames decoded by MPEG threads with weights 5 and 10", runFig10)
}

// runFig10 reproduces the SFQ-as-leaf-scheduler experiment: two threads
// running the MPEG video player with weights 5 and 10 in node SFQ-1. The
// paper finds "the thread with weight 10 decodes twice as many frames as
// compared to the other thread in any time interval".
func runFig10(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	f := buildFig6(1, 1, 1, 10*sim.Millisecond)
	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, f.S)
	rng := sim.NewRand(opt.Seed)

	// Both players decode the same clip, like two instances of the
	// Berkeley player on one sequence.
	// A short looped clip of the Berkeley-player era: GOP structure intact
	// but mild scene modulation, like the paper's test sequence.
	gen := workload.DefaultMPEG(int64(rate), rng)
	gen.SceneLow, gen.SceneHigh = 0.85, 1.25
	clip := gen.Trace(200000)
	d5 := workload.NewDecoder(clip, true)
	d10 := workload.NewDecoder(clip, true)

	t5 := sched.NewThread(1, "mpeg-w5", 5)
	must(f.S.Attach(t5, f.SFQ1))
	m.Add(t5, d5, 0)
	t10 := sched.NewThread(2, "mpeg-w10", 10)
	must(f.S.Attach(t10, f.SFQ1))
	m.Add(t10, d10, 0)

	sampler := metrics.NewSampler(2*sim.Second, t5, t10)
	sampler.Install(eng, horizon)
	m.Run(horizon)

	d5w := sampler.Deltas(0)
	d10w := sampler.Deltas(1)
	tbl := metrics.NewTable("t(s)", "frames w=5", "frames w=10", "frame ratio", "CPU ratio")
	worstWork := 0.0
	worstFrames := 0.0
	var r5prev, r10prev int
	for i := range d5w {
		s := sim.Time(i+1) * 2 * sim.Second
		n5 := d5.FramesDecoded(s)
		n10 := d10.FramesDecoded(s)
		frameIv := math.NaN()
		if n5 > r5prev {
			frameIv = float64(n10-r10prev) / float64(n5-r5prev)
			if abs(frameIv-2) > worstFrames {
				worstFrames = abs(frameIv - 2)
			}
		}
		workIv := float64(d10w[i]) / float64(d5w[i])
		if abs(workIv-2) > worstWork {
			worstWork = abs(workIv - 2)
		}
		tbl.AddRow(int64(s/sim.Second), n5, n10, frameIv, workIv)
		r5prev, r10prev = n5, n10
	}
	r.Printf("%s", tbl.String())
	total5 := d5.FramesDecoded(horizon)
	total10 := d10.FramesDecoded(horizon)
	r.Printf("totals: w=5 decoded %d, w=10 decoded %d (ratio %s)\n",
		total5, total10, ratioStr(float64(total10), float64(total5)))
	r.Printf("worst interval deviation from 2: CPU %.3f, frames %.3f\n", worstWork, worstFrames)

	// The CPU split is exactly 2:1 in every interval; the per-interval
	// frame ratio wobbles around 2 because the two decoders sit at
	// different positions of the VBR trace (different scene complexity),
	// while the cumulative frame count converges to 2x, which is what the
	// paper's cumulative Fig. 10 curves show.
	r.Check(worstWork < 0.05, "2x CPU in any interval",
		"worst |CPU interval ratio - 2| = %.3f, want < 0.05", worstWork)
	r.Check(within(float64(total10)/float64(total5), 2, 0.05), "2x frames overall",
		"ratio %.3f", float64(total10)/float64(total5))
	r.Check(worstFrames < 1.0, "interval frame ratio tracks 2x",
		"worst |frame interval ratio - 2| = %.3f (VBR scene wobble)", worstFrames)
	return r
}
