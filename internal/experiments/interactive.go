package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("ablation-interactive", "A11: interactive vs batch — response time under feedback queues (svr4, mlfq) vs round robin", runAblationInteractive)
}

// runAblationInteractive measures the property time-sharing schedulers are
// built around (§2: "the UNIX SVR4 scheduler attempts to give interactive
// threads higher priority"): a thread that sleeps between short compute
// bursts should get the CPU quickly when it wakes, even against a wall of
// CPU-bound batch work. One interactive thread (0.5 ms burst, 20 ms think
// time) competes with four batch hogs under three leaf disciplines:
//
//   - svr4: the sleep-return boost lifts the waking thread above any
//     priority a CPU-bound hog can hold, so wakeups preempt.
//   - mlfq: the hogs burn full quanta and sink to the bottom level while
//     the interactive thread, always blocking early, stays at level 0 and
//     preempts on wake.
//   - round robin (the feedback-free baseline): the waking thread joins
//     the tail and waits out up to four full hog quanta.
//
// The shape checks assert the interactive win — both feedback queues beat
// the baseline's p90 response time by a wide margin — and that neither
// buys it by starving batch. This is the flip side of the adversary
// suite's boost-abuse attack: the same mechanism that makes svr4 and mlfq
// gameable by a sleeping hog is what earns them their response-time win
// for honest interactive work.
func runAblationInteractive(opt Options) *Result {
	r := &Result{}
	const horizon = 10 * sim.Second
	const quantum = sched.DefaultQuantum

	type outcome struct {
		lat       metrics.Summary
		interDone sched.Work
		batchWork sched.Work
		topLevel  int // interactive's final mlfq level, -1 elsewhere
	}
	run := func(mk func() sched.Scheduler) outcome {
		leaf := mk()
		m := cpu.NewMachine(opt.Engine(), rate, leaf)
		inter := sched.NewThread(1, "interactive", 1)
		m.Add(inter, cpu.Forever(cpu.Compute(sched.Work(rate/2000)), cpu.Sleep(20*sim.Millisecond)), 0)
		// Batch bursts are longer than svr4's largest quantum (200 ms at
		// level 0) so quantum expiry, not compute-action boundaries, governs
		// the hogs' priority feedback. A hog whose bursts end mid-quantum is
		// front-inserted at its level and can climb the lwait ladder to the
		// slpret ceiling and camp there — that is the boost-abuse cell of
		// internal/adversary, not the batch workload of this experiment.
		hogs := make([]*sched.Thread, 4)
		for i := range hogs {
			hogs[i] = sched.NewThread(2+i, "batch", 1)
			m.Add(hogs[i], cpu.Forever(cpu.Compute(25_000_000)), 0)
		}
		lat := metrics.NewLatencyRecorder(inter)
		m.Listen(lat)
		m.Run(horizon)
		m.Flush()
		out := outcome{
			lat:       metrics.Summarize(metrics.Durations(lat.Latencies(inter))),
			interDone: inter.Done,
			topLevel:  -1,
		}
		for _, h := range hogs {
			out.batchWork += h.Done
		}
		if q, ok := leaf.(*sched.MLFQ); ok {
			out.topLevel = q.Level(inter)
		}
		return out
	}

	svr4 := run(func() sched.Scheduler { return sched.NewSVR4(nil, int64(rate), 25*sim.Millisecond) })
	mlfq := run(func() sched.Scheduler { return sched.NewMLFQ(0, quantum, 0, int64(rate)) })
	rr := run(func() sched.Scheduler { return sched.NewRoundRobin(quantum) })

	tbl := metrics.NewTable("scheduler", "wakeups", "latency p50(ms)", "p90(ms)", "max(ms)", "interactive work", "batch work")
	row := func(name string, o outcome) {
		tbl.AddRow(name, o.lat.N, o.lat.P50, o.lat.P90, o.lat.Max, int64(o.interDone), int64(o.batchWork))
	}
	row("svr4", svr4)
	row("mlfq", mlfq)
	row("rr", rr)
	r.Printf("%s", tbl.String())

	r.Check(svr4.lat.P90 < rr.lat.P90/3, "svr4 wins interactive response time",
		"p90 %.2fms vs rr %.2fms (sleep-return boost preempts the hogs)", svr4.lat.P90, rr.lat.P90)
	r.Check(mlfq.lat.P90 < rr.lat.P90/3, "mlfq wins interactive response time",
		"p90 %.2fms vs rr %.2fms (level 0 preempts the demoted hogs)", mlfq.lat.P90, rr.lat.P90)
	r.Check(mlfq.topLevel == 0, "mlfq keeps interactive at the top level",
		"final level %d (blocking early never demotes)", mlfq.topLevel)
	r.Check(svr4.interDone > rr.interDone && mlfq.interDone > rr.interDone,
		"feedback completes more interactive cycles",
		"svr4 %d, mlfq %d vs rr %d", svr4.interDone, mlfq.interDone, rr.interDone)
	r.Check(svr4.batchWork > 0 && mlfq.batchWork > 0,
		"batch not starved for the win",
		"svr4 %d, mlfq %d (rr %d)", svr4.batchWork, mlfq.batchWork, rr.batchWork)
	return r
}
