package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig5", "Throughput of 5 Dhrystone threads: time-sharing vs SFQ", runFig5)
}

// runFig5 reproduces the limitation-of-conventional-schedulers
// experiment: 5 identical Dhrystone threads under the SVR4 time-sharing
// scheduler receive visibly different throughput, while under SFQ (equal
// weights) they receive the same throughput. The paper ran "in multiuser
// mode with all the normal system processes"; we run the same background
// mix of interactive daemons in both configurations.
func runFig5(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	bench := dhry(0)

	run := func(mk func() sched.Scheduler) ([]int64, []float64) {
		eng := opt.Engine()
		m := cpu.NewMachine(eng, rate, mk())
		rng := sim.NewRand(opt.Seed)
		var threads []*sched.Thread
		for i := 0; i < 5; i++ {
			d := dhry(i)
			threads = append(threads, m.Spawn(
				"dhry", 1, d.Program(), 0))
		}
		// Normal system processes: interactive daemons waking frequently.
		for i := 0; i < 4; i++ {
			iv := workload.Interactive{
				ThinkMean: 120 * sim.Millisecond,
				BurstMean: sched.Work(rate / 500), // 2 ms
				Rand:      rng.Fork(),
			}
			m.Spawn("daemon", 1, iv.Program(), 0)
		}
		m.Run(horizon)
		loops := make([]int64, len(threads))
		f := make([]float64, len(threads))
		for i, t := range threads {
			loops[i] = bench.Loops(t.Done)
			f[i] = float64(loops[i])
		}
		return loops, f
	}

	tsLoops, tsF := run(func() sched.Scheduler {
		return sched.NewSVR4(nil, int64(rate), 25*sim.Millisecond)
	})
	sfqLoops, sfqF := run(func() sched.Scheduler {
		return sched.NewSFQ(10 * sim.Millisecond)
	})

	tbl := metrics.NewTable("thread", "TS loops", "SFQ loops")
	for i := range tsLoops {
		tbl.AddRow(i+1, tsLoops[i], sfqLoops[i])
	}
	r.Printf("%s", tbl.String())

	tsCV := metrics.CoefficientOfVariation(tsF)
	sfqCV := metrics.CoefficientOfVariation(sfqF)
	tsSpread := spread(tsF)
	sfqSpread := spread(sfqF)
	r.Printf("TS: CV=%.4f max/min=%.3f | SFQ: CV=%.4f max/min=%.3f\n", tsCV, tsSpread, sfqCV, sfqSpread)

	// Paper shape: "the throughput received by the threads in the
	// time-sharing scheduler varies significantly ... In contrast, all
	// the threads in SFQ received the same throughput".
	r.Check(tsCV > 0.02, "TS throughput varies", "CV=%.4f, want > 0.02", tsCV)
	r.Check(sfqCV < 0.005, "SFQ throughput equal", "CV=%.4f, want < 0.005", sfqCV)
	r.Check(tsCV > 5*sfqCV, "TS vs SFQ spread", "TS CV %.4f vs SFQ CV %.4f", tsCV, sfqCV)
	return r
}

func spread(v []float64) float64 {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}
