package experiments

import (
	"math"

	"hsfq/internal/cpu"
	"hsfq/internal/fcserver"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("ablation-ebf", "A7: stochastic (EBF) throughput guarantee under Poisson interrupt load", runAblationEBF)
}

// runAblationEBF validates the Eq. (7) stochastic guarantee: under
// irregular (Poisson) interrupt load the CPU is an EBF server, and each
// SFQ thread's service must then be EBF with the composed parameters —
// the empirical probability of falling behind its rate by more than
// burst+gamma must stay under B*exp(-alpha*gamma) for every probed gamma.
func runAblationEBF(opt Options) *Result {
	r := &Result{}
	const horizon = 60 * sim.Second
	quantum := 10 * sim.Millisecond
	eng := opt.Engine()
	leaf := sched.NewSFQ(quantum)
	m := cpu.NewMachine(eng, rate, leaf)
	rng := sim.NewRand(opt.Seed)

	// Poisson interrupts: 100/s with mean service 1 ms, capped at 5 ms
	// so the load stays ~10% with exponential bursts.
	m.AddInterrupts(&cpu.PoissonInterrupts{
		RatePerSec:  100,
		ServiceMean: sim.Millisecond,
		ServiceCap:  5 * sim.Millisecond,
		Rand:        rng.Fork(),
	})

	weights := []float64{1, 2, 5}
	var threads []*sched.Thread
	for _, w := range weights {
		threads = append(threads, m.Spawn("t", w, cpu.Forever(cpu.Compute(1_000_000)), 0))
	}
	col := fcserver.NewCollector(threads...)
	m.Listen(col)
	m.Run(horizon)

	stolenFrac := float64(m.Stats().Stolen) / float64(horizon)
	// Model the effective CPU as an EBF server: average rate (1-p)*C.
	// The burst/tail parameters are modeled, not derived; the experiment
	// checks that the *composed* per-thread models hold empirically with
	// slack, which is the property the hierarchy relies on.
	server := fcserver.EBF{
		Rate:  (1 - stolenFrac) * float64(rate),
		Burst: float64(rate) / 1000 * 5, // one max interrupt burst
		B:     1,
		Alpha: 1.0 / (float64(rate) / 1000), // tail decays per ms of work
	}
	lmax := float64(rate) * quantum.Seconds()
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}

	gammas := []float64{0, lmax / 2, lmax, 2 * lmax, 4 * lmax}
	tbl := metrics.NewTable("thread", "weight", "EBF rate", "EBF burst", "violating gamma")
	allOK := true
	for i, t := range threads {
		rf := weights[i] / totalW * server.Rate
		others := []float64{}
		for j := range threads {
			if j != i {
				others = append(others, lmax)
			}
		}
		model := fcserver.SFQThroughputEBF(server, rf, lmax, others)
		// Windows of ~1 s of charges: with 10 ms quanta each thread is
		// charged ~weight/total*100 times per second.
		stride := int(math.Max(1, weights[i]/totalW*100))
		bad := model.ConformsEmpirically(col.Points(t), stride, gammas)
		if bad >= 0 {
			allOK = false
		}
		tbl.AddRow(t.ID, weights[i], model.Rate, model.Burst, bad)
	}
	r.Printf("interrupt load: %.1f%% stolen (%d interrupts)\n",
		100*stolenFrac, m.Stats().Interrupts)
	r.Printf("%s", tbl.String())

	r.Check(allOK, "Eq.7 EBF bounds hold", "no probed gamma violated for any thread")
	r.Check(stolenFrac > 0.05 && stolenFrac < 0.2, "interrupt load realistic",
		"stolen fraction %.3f", stolenFrac)
	return r
}
