package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("ablation-protection", "A8: static priority vs SFQ — protection of best-effort work (§3 item 4, [15])", runAblationProtection)
}

// runAblationProtection demonstrates the sentence the paper builds on
// [15]: "when a multimedia application is run as a real-time thread in
// the SVR4 scheduler, the whole system may become unusable". A
// CPU-hungry video thread and two interactive/batch threads run under
// (a) a static-priority scheduler with the video thread at high priority,
// and (b) SFQ with a high weight. Static priority starves everything
// below; SFQ bounds the video thread to its (large) share and everyone
// progresses.
func runAblationProtection(opt Options) *Result {
	r := &Result{}
	const horizon = 10 * sim.Second

	type outcome struct {
		videoShare float64
		batchWork  sched.Work
		interDone  sched.Work
		maxWait    sim.Time
	}
	run := func(mk func() sched.Scheduler, configure func(video, batch, inter *sched.Thread)) outcome {
		eng := opt.Engine()
		m := cpu.NewMachine(eng, rate, mk())
		video := sched.NewThread(1, "video", 1)
		batch := sched.NewThread(2, "batch", 1)
		inter := sched.NewThread(3, "interactive", 1)
		configure(video, batch, inter)
		m.Add(video, cpu.Forever(cpu.Compute(1_000_000)), 0)
		m.Add(batch, cpu.Forever(cpu.Compute(1_000_000)), 0)
		m.Add(inter, cpu.Forever(cpu.Compute(sched.Work(rate/1000)), cpu.Sleep(50*sim.Millisecond)), 0)
		lat := metrics.NewLatencyRecorder(inter)
		m.Listen(lat)
		m.Run(horizon)
		m.Flush()
		return outcome{
			videoShare: float64(video.Done) / float64(m.Stats().Work),
			batchWork:  batch.Done,
			interDone:  inter.Done,
			maxWait:    lat.MaxLatency(inter),
		}
	}

	prio := run(
		func() sched.Scheduler { return sched.NewPriority(10 * sim.Millisecond) },
		func(video, batch, inter *sched.Thread) {
			video.Priority = 10 // "real-time" band
			batch.Priority = 1
			inter.Priority = 1
		})
	sfq := run(
		func() sched.Scheduler { return sched.NewSFQ(10 * sim.Millisecond) },
		func(video, batch, inter *sched.Thread) {
			video.Weight = 8 // same intent: video matters most
			batch.Weight = 1
			inter.Weight = 1
		})

	tbl := metrics.NewTable("scheduler", "video share", "batch work", "interactive work", "interactive max wait")
	tbl.AddRow("static priority", prio.videoShare, int64(prio.batchWork), int64(prio.interDone), prio.maxWait.String())
	tbl.AddRow("sfq (w=8:1:1)", sfq.videoShare, int64(sfq.batchWork), int64(sfq.interDone), sfq.maxWait.String())
	r.Printf("%s", tbl.String())

	r.Check(prio.batchWork == 0, "static priority starves batch",
		"batch did %d work under a high-priority CPU hog", prio.batchWork)
	// The interactive thread is never even dispatched once: no recorded
	// wait, zero progress — "the whole system may become unusable".
	r.Check(prio.interDone == 0, "static priority freezes interactive",
		"interactive did %d work in %v", prio.interDone, horizon)
	r.Check(sfq.batchWork > 0 && sfq.interDone > 0, "SFQ protects best effort",
		"batch %d, interactive %d", sfq.batchWork, sfq.interDone)
	r.Check(sfq.maxWait < 100*sim.Millisecond, "SFQ bounds interactive wait",
		"max wait %v", sfq.maxWait)
	r.Check(sfq.videoShare > 0.7, "SFQ still favors video",
		"video share %.2f with weight 8/10", sfq.videoShare)
	return r
}
