package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("fig8a", "Hierarchical CPU allocation: aggregate throughput of SFQ-1 and SFQ-2 in ratio 1:3", runFig8a)
	register("fig8b", "Isolation of heterogeneous leaf schedulers: SFQ-1 vs SVR4, equal weights", runFig8b)
}

// runFig8a: Fig. 6 structure with weights SFQ-1=2, SFQ-2=6, SVR4=1; two
// Dhrystone threads in each SFQ node, the system's other threads in SVR4.
// The SVR4 load fluctuates, so the bandwidth left for SFQ-1 and SFQ-2
// varies — and must still be split 1:3.
func runFig8a(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	f := buildFig6(2, 6, 1, 10*sim.Millisecond)
	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, f.S)
	rng := sim.NewRand(opt.Seed)

	// The benchmark threads are pure CPU hogs, as in the paper; the fault
	// modeling used for Fig. 5 would only add convoy noise here.
	var sfq1, sfq2 []*sched.Thread
	for i := 0; i < 2; i++ {
		sfq1 = append(sfq1, attach(m, f.S, f.SFQ1, 10+i, "sfq1-dhry", 1, dhryPure().Program()))
		sfq2 = append(sfq2, attach(m, f.S, f.SFQ2, 20+i, "sfq2-dhry", 1, dhryPure().Program()))
	}
	// "SVR4 node contained all the other threads in the system": a
	// fluctuating on/off load plus interactive daemons.
	attach(m, f.S, f.SVR4, 30, "burst", 1,
		workload.OnOff(sched.Work(rate/100), 22, 2*sim.Second))
	for i := 0; i < 3; i++ {
		iv := workload.Interactive{ThinkMean: 150 * sim.Millisecond, BurstMean: sched.Work(rate / 250), Rand: rng.Fork()}
		attach(m, f.S, f.SVR4, 31+i, "daemon", 1, iv.Program())
	}

	all := append(append([]*sched.Thread{}, sfq1...), sfq2...)
	sampler := metrics.NewSampler(2*sim.Second, all...)
	sampler.Install(eng, horizon)
	m.Run(horizon)

	// Aggregate per-interval throughput of each node.
	n := len(sampler.Times()) - 1
	agg1 := make([]float64, n)
	agg2 := make([]float64, n)
	for j := range sfq1 {
		for i, d := range sampler.Deltas(j) {
			agg1[i] += float64(d)
		}
	}
	for j := range sfq2 {
		for i, d := range sampler.Deltas(2 + j) {
			agg2[i] += float64(d)
		}
	}

	tbl := metrics.NewTable("t(2s windows)", "SFQ-1 work", "SFQ-2 work", "ratio")
	worst := 0.0
	var ratios []float64
	for i := 0; i < n; i++ {
		ratio := agg2[i] / agg1[i]
		ratios = append(ratios, ratio)
		if abs(ratio-3) > worst {
			worst = abs(ratio - 3)
		}
		tbl.AddRow(i+1, agg1[i], agg2[i], ratio)
	}
	r.Printf("%s", tbl.String())
	if opt.Plot {
		must(metrics.AsciiPlot(&r.out, 10, map[rune][]float64{'1': agg1, '2': agg2}))
	}

	// Paper shape: aggregate throughputs in 1:3 per interval, despite the
	// fluctuating SVR4 usage; and the SVR4 fluctuation is real.
	cvTotal := metrics.CoefficientOfVariation(sumSeries(agg1, agg2))
	r.Printf("per-interval SFQ-2/SFQ-1 worst deviation from 3: %.3f; available-bandwidth CV: %.3f\n", worst, cvTotal)
	r.Check(worst < 0.1, "1:3 split per interval", "worst |ratio-3| = %.3f, want < 0.1", worst)
	r.Check(cvTotal > 0.01, "available bandwidth fluctuates", "CV of SFQ-1+SFQ-2 aggregate = %.3f, want > 0.01", cvTotal)
	return r
}

func sumSeries(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// runFig8b: SFQ-1 (two Dhrystone threads, SFQ leaf) and SVR4 (one
// Dhrystone thread, SVR4 leaf) with equal node weights: both nodes make
// progress and receive equal throughput — unlike the stock SVR4
// scheduler, where a real-time-class thread could monopolize the CPU.
func runFig8b(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	f := buildFig6(1, 1, 1, 10*sim.Millisecond)
	eng := opt.Engine()
	m := cpu.NewMachine(eng, rate, f.S)

	a := attach(m, f.S, f.SFQ1, 1, "sfq-dhry-1", 1, dhryPure().Program())
	b := attach(m, f.S, f.SFQ1, 2, "sfq-dhry-2", 1, dhryPure().Program())
	// The SVR4 thread runs in the RT class: under stock SVR4 it would
	// monopolize the CPU; under the hierarchy it is confined to its node.
	rt := sched.NewThread(3, "svr4-rt-dhry", 1)
	f.SVR4Leaf.SetRealTime(rt, 10)
	must(f.S.Attach(rt, f.SVR4))
	m.Add(rt, dhryPure().Program(), 0)

	// SFQ-2 stays empty; its share goes to the busy nodes (weights 1:1).
	m.Run(horizon)

	node := float64(a.Done + b.Done)
	svr := float64(rt.Done)
	r.Printf("SFQ-1 node work: %.0f (threads %d, %d)  SVR4 node work: %.0f\n",
		node, a.Done, b.Done, svr)
	r.Printf("SFQ-1/SVR4 = %s\n", ratioStr(node, svr))

	r.Check(within(node/svr, 1, 0.02), "equal node throughput",
		"SFQ-1/SVR4 = %.3f, want 1.0 +- 2%%", node/svr)
	r.Check(within(float64(a.Done)/float64(b.Done), 1, 0.02), "fair within SFQ-1",
		"ratio %.3f", float64(a.Done)/float64(b.Done))
	r.Check(svr > 0 && node > 0, "both make progress", "svr=%.0f node=%.0f", svr, node)
	return r
}
