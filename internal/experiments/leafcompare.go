package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func init() {
	register("ablation-leaf", "A10: SFQ vs capacity reserves as the leaf scheduler for VBR video (§6 future work)", runAblationLeaf)
}

// runAblationLeaf runs the comparison the paper's related work defers:
// "A detailed experimental investigation of the relative merits of these
// algorithms vis-a-vis SFQ as a leaf class scheduler is the subject of
// our current research." Two paced VBR decoders (30 fps, mean demand
// ~25% each, scene bursts to ~1.8x) share a leaf with a CPU hog.
//
//   - Reserves (Mercer et al. [13]): each decoder gets a budget sized to
//     1.2x its mean demand per frame period. During complex scenes the
//     budget runs out and the decoder falls to the background band, where
//     it must share with the hog — deadlines slip in exactly the scenes
//     that need CPU most.
//
//   - SFQ: decoders get weights 6:6 against two weight-1 hogs, a minimum
//     share of 3/7 each — headroom that covers the bursts without any
//     cliff, while the hogs still absorb every cycle the decoders leave
//     idle.
//
// This is the §1 observation made concrete: algorithms that need a
// precise characterization of demand (a reserve) handle unpredictable
// VBR badly, while SFQ "just requires relative importance of tasks".
func runAblationLeaf(opt Options) *Result {
	r := &Result{}
	const horizon = 30 * sim.Second
	const fps = 30
	framePeriod := sim.Second / fps

	mkClip := func(rng *sim.Rand) []sched.Work {
		gen := workload.DefaultMPEG(int64(rate), rng)
		// Scale to mean demand ~17% of the CPU per decoder, bursting to
		// ~30% in complex scenes.
		gen.IMean, gen.PMean, gen.BMean = gen.IMean/2, gen.PMean/2, gen.BMean/2
		return gen.Trace(int(horizon/framePeriod) + 1)
	}

	type outcome struct {
		missed  [2]int
		frames  [2]int
		hogWork sched.Work
	}
	run := func(useReserves bool) outcome {
		rng := sim.NewRand(opt.Seed)
		var leaf sched.Scheduler
		var res *sched.Reserves
		if useReserves {
			res = sched.NewReserves(5 * sim.Millisecond)
			leaf = res
		} else {
			leaf = sched.NewSFQ(5 * sim.Millisecond)
		}
		m := cpu.NewMachine(opt.Engine(), rate, leaf)

		var out outcome
		decoders := [2]*workload.PacedDecoder{}
		for i := 0; i < 2; i++ {
			clip := mkClip(rng.Fork())
			decoders[i] = workload.NewPacedDecoder(clip, framePeriod)
			t := sched.NewThread(i+1, "decoder", 6)
			if useReserves {
				// Budget: 1.2x the clip's mean frame cost per period.
				var sum sched.Work
				for _, c := range clip {
					sum += c
				}
				mean := int64(sum) / int64(len(clip))
				res.SetReserve(t, sched.Work(mean*12/10), framePeriod)
			}
			m.Add(t, decoders[i], 0)
		}
		hogs := [2]*sched.Thread{}
		for h := range hogs {
			hogs[h] = sched.NewThread(3+h, "hog", 1)
			m.Add(hogs[h], cpu.Forever(cpu.Compute(1_000_000)), 0)
		}
		m.Run(horizon)
		for i, d := range decoders {
			out.missed[i] = d.MissedDeadlines()
			out.frames[i] = len(d.Lateness)
		}
		out.hogWork = hogs[0].Done + hogs[1].Done
		return out
	}

	withReserves := run(true)
	withSFQ := run(false)

	tbl := metrics.NewTable("leaf scheduler", "dec0 missed/frames", "dec1 missed/frames", "hog work")
	row := func(name string, o outcome) {
		tbl.AddRow(name,
			ratioStr(float64(o.missed[0]), float64(o.frames[0]))+" of "+itoa(o.frames[0]),
			ratioStr(float64(o.missed[1]), float64(o.frames[1]))+" of "+itoa(o.frames[1]),
			int64(o.hogWork))
	}
	row("reserves (1.2x mean)", withReserves)
	row("sfq (w=6:6:1:1)", withSFQ)
	r.Printf("%s", tbl.String())

	missedRes := withReserves.missed[0] + withReserves.missed[1]
	missedSFQ := withSFQ.missed[0] + withSFQ.missed[1]
	r.Printf("total missed deadlines: reserves %d, sfq %d\n", missedRes, missedSFQ)

	r.Check(missedSFQ*2 < missedRes, "SFQ misses far fewer VBR deadlines",
		"sfq %d vs reserves %d (structural: budget cliff vs proportional headroom)", missedSFQ, missedRes)
	r.Check(missedRes > 0, "reserve budget cliff is real",
		"reserves missed %d frames during scene bursts", missedRes)
	r.Check(withSFQ.hogWork > 0 && withReserves.hogWork > 0, "hog progresses under both",
		"sfq %d, reserves %d", withSFQ.hogWork, withReserves.hogWork)
	return r
}

func itoa(v int) string { return ratioStr(float64(v), 1) }
