package experiments

import (
	"fmt"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func init() {
	register("fig7a", "Scheduling overhead: hierarchical vs unmodified throughput ratio, 1-20 threads", runFig7a)
	register("fig7b", "Scheduling overhead: throughput vs depth of hierarchy, 0-30", runFig7b)
}

// Modeled per-decision scheduling costs, calibrated against the
// microbenchmarks in bench_test.go (BenchmarkScheduleFanout and friends
// measure ~0.1-1 us per Pick+Charge on commodity hardware). The
// "unmodified kernel" baseline pays the flat cost; the hierarchical
// scheduler pays a base cost plus a per-level cost for the tag updates on
// the path to the leaf.
const (
	flatDispatchCost = 2 * sim.Microsecond
	hierBaseCost     = 2 * sim.Microsecond
	hierPerLevelCost = 400 * sim.Nanosecond
)

// runFig7a compares aggregate Dhrystone throughput of N CPU-bound threads
// under the hierarchical scheduler (threads in node SFQ-1 of the Fig. 6
// structure) against the unmodified baseline (a flat round-robin
// dispatcher), for N = 1..20, as the ratio hierarchical/unmodified. The
// paper measures the ratio within 1% of 1.0; the reproduction models the
// measured per-decision costs and must land in the same band.
func runFig7a(opt Options) *Result {
	r := &Result{}
	const horizon = 10 * sim.Second
	const quantum = 20 * sim.Millisecond
	bench := dhryPure()

	runFlat := func(n int) sched.Work {
		eng := opt.Engine()
		m := cpu.NewMachine(eng, rate, sched.NewRoundRobin(quantum))
		m.SetDispatchCost(func(*sched.Thread) sim.Time { return flatDispatchCost })
		for i := 0; i < n; i++ {
			m.Spawn("dhry", 1, bench.Program(), 0)
		}
		m.Run(horizon)
		m.Flush()
		return m.Stats().Work
	}
	runHier := func(n int) sched.Work {
		f := buildFig6(2, 6, 1, quantum)
		eng := opt.Engine()
		m := cpu.NewMachine(eng, rate, f.S)
		m.SetDispatchCost(func(t *sched.Thread) sim.Time {
			leaf := f.S.LeafOf(t)
			d, err := f.S.Depth(leaf.ID())
			must(err)
			return hierBaseCost + sim.Time(d)*hierPerLevelCost
		})
		for i := 0; i < n; i++ {
			attach(m, f.S, f.SFQ1, i+1, "dhry", 1, bench.Program())
		}
		m.Run(horizon)
		m.Flush()
		return m.Stats().Work
	}

	tbl := metrics.NewTable("threads", "unmodified", "hierarchical", "ratio")
	worst := 1.0
	for n := 1; n <= 20; n++ {
		flat := runFlat(n)
		hier := runHier(n)
		ratio := float64(hier) / float64(flat)
		if diff := abs(ratio - 1); diff > abs(worst-1) {
			worst = ratio
		}
		tbl.AddRow(n, int64(flat), int64(hier), ratio)
	}
	r.Printf("%s", tbl.String())
	r.Printf("worst ratio: %.5f\n", worst)
	r.Check(abs(worst-1) < 0.01, "within 1% of unmodified",
		"worst hierarchical/unmodified ratio %.5f (paper: within 1%%)", worst)
	return r
}

// runFig7b varies the number of intermediate nodes between the root and
// the leaf from 0 to 30 and measures one thread's throughput; the paper
// finds the variation within 0.2%.
func runFig7b(opt Options) *Result {
	r := &Result{}
	const horizon = 10 * sim.Second
	const quantum = 20 * sim.Millisecond
	bench := dhryPure()

	run := func(depth int) sched.Work {
		s := core.NewStructure()
		parent := core.RootID
		for d := 0; d < depth; d++ {
			id, err := s.Mknod(fmt.Sprintf("mid%d", d), parent, 1, nil)
			must(err)
			parent = id
		}
		leafID, err := s.Mknod("leaf", parent, 1, sched.NewSFQ(quantum))
		must(err)
		eng := opt.Engine()
		m := cpu.NewMachine(eng, rate, s)
		m.SetDispatchCost(func(t *sched.Thread) sim.Time {
			return hierBaseCost + sim.Time(depth+1)*hierPerLevelCost
		})
		attach(m, s, leafID, 1, "dhry", 1, bench.Program())
		m.Run(horizon)
		m.Flush()
		return m.Stats().Work
	}

	base := run(0)
	tbl := metrics.NewTable("depth", "work", "vs depth 0")
	worst := 1.0
	for _, depth := range []int{0, 2, 5, 10, 15, 20, 25, 30} {
		w := run(depth)
		ratio := float64(w) / float64(base)
		if abs(ratio-1) > abs(worst-1) {
			worst = ratio
		}
		tbl.AddRow(depth, int64(w), ratio)
	}
	r.Printf("%s", tbl.String())
	r.Printf("worst ratio: %.5f\n", worst)
	r.Check(abs(worst-1) < 0.002, "within 0.2% across depths",
		"worst ratio %.5f (paper: within 0.2%%)", worst)
	return r
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
