package experiments

import (
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/synch"
)

func init() {
	register("ablation-inversion", "A6: priority inversion under an SFQ leaf, with and without weight transfer (§4)", runAblationInversion)
}

// runAblationInversion quantifies §4's claim that transferring a blocked
// thread's weight to the thread blocking it avoids priority inversion: a
// weight-1 lock holder, a weight-8 hog, and a weight-16 thread that needs
// the lock, all in one SFQ leaf.
func runAblationInversion(opt Options) *Result {
	r := &Result{}
	run := func(transfer bool) []sim.Time {
		leaf := sched.NewSFQ(sim.Millisecond)
		m := cpu.NewMachine(opt.Engine(), rate, leaf)
		var donate *sched.SFQ
		if transfer {
			donate = leaf
		}
		mu := synch.NewMutex("m", m, donate)

		low := sched.NewThread(1, "low", 1)
		m.Add(low, &synch.CriticalLoop{
			Mutex: mu, Thread: low,
			CS:    rate.WorkFor(30 * sim.Millisecond),
			Think: 10 * sim.Millisecond,
		}, 0)
		hog := sched.NewThread(2, "hog", 8)
		m.Add(hog, cpu.Forever(cpu.Compute(1_000_000)), 0)
		high := sched.NewThread(3, "high", 16)
		loop := &synch.CriticalLoop{
			Mutex: mu, Thread: high,
			CS:    rate.WorkFor(500 * sim.Microsecond),
			Think: 50 * sim.Millisecond,
		}
		m.Add(high, loop, 5*sim.Millisecond)

		m.Run(20 * sim.Second)
		return loop.AcquireDelays
	}

	without := metrics.Summarize(metrics.Durations(run(false)))
	with := metrics.Summarize(metrics.Durations(run(true)))

	tbl := metrics.NewTable("configuration", "n", "p50 ms", "p90 ms", "max ms")
	tbl.AddRow("no transfer", without.N, without.P50, without.P90, without.Max)
	tbl.AddRow("weight transfer", with.N, with.P50, with.P90, with.Max)
	r.Printf("%s", tbl.String())

	// Shape: the holder's critical section runs ~30ms/(1/25 share) =
	// ~750 ms without transfer vs ~30ms/(17/25) = ~44 ms with it. Demand
	// a conservative 3x improvement in worst-case wait, and that the
	// high-weight thread's p90 also improves.
	r.Check(without.Max > 3*with.Max, "worst-case wait improves >= 3x",
		"max %.1f ms -> %.1f ms", without.Max, with.Max)
	r.Check(with.P90 < without.P90, "p90 wait improves",
		"p90 %.1f ms -> %.1f ms", without.P90, with.P90)
	r.Check(with.N >= without.N, "throughput of lock user not hurt",
		"acquisitions %d -> %d", without.N, with.N)
	return r
}
