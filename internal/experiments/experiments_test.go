package experiments

import (
	"strings"
	"sync"
	"testing"
)

// TestAllExperimentsReproduceShapes is the repository's headline
// integration test: every figure of the paper's evaluation, re-run on the
// simulated machine, must pass its shape checks.
func TestAllExperimentsReproduceShapes(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Checks) == 0 {
				t.Fatal("experiment made no checks")
			}
			if !res.Passed() {
				t.Errorf("shape checks failed:\n%s", res.Summary())
			}
			if res.Output() == "" {
				t.Error("experiment produced no output")
			}
		})
	}
}

// TestExperimentsDeterministic: the same seed renders byte-identical
// output, the repeatability the simulator promises.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"fig3", "fig8a", "fig11", "ablation-fairness"} {
		a, err := Run(id, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if a.Output() != b.Output() {
			t.Errorf("%s: same seed produced different output", id)
		}
	}
}

// TestSeedSensitivity: stochastic experiments still pass their checks
// under a different seed (the shapes are robust, not tuned to seed 42).
func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in full mode only")
	}
	for _, seed := range []uint64{1, 99, 2026} {
		for _, id := range []string{"fig1", "fig5", "fig8a", "fig9", "fig10", "ablation-lottery"} {
			res, err := Run(id, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed() {
				t.Errorf("%s failed under seed %d:\n%s", id, seed, res.Summary())
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 13 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, want := range []string{"fig1", "fig3", "fig5", "fig7a", "fig7b", "fig8a", "fig8b", "fig9", "fig10", "fig11"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("figure %s not registered", want)
		}
		if title, ok := Title(want); !ok || title == "" {
			t.Errorf("figure %s has no title", want)
		}
	}
	if _, err := Run("no-such", DefaultOptions()); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown id error: %v", err)
	}
}

func TestPlotOption(t *testing.T) {
	res, err := Run("fig1", Options{Seed: 42, Plot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output(), "│") {
		t.Error("plot output missing")
	}
}

// TestParallelRunsMatchSerial runs a batch of experiments concurrently
// (as `experiments -all -workers N` does) and requires every digest to
// match a serial run of the same seed: experiments share no mutable state,
// so parallelism outside the simulation cannot change any figure.
func TestParallelRunsMatchSerial(t *testing.T) {
	ids := []string{"fig3", "fig5", "fig8a", "fig9", "ablation-lottery"}
	serial := make([]string, len(ids))
	for i, id := range ids {
		res, err := Run(id, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res.Digest()
	}
	parallel := make([]string, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			res, err := Run(id, DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			parallel[i] = res.Digest()
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if parallel[i] != serial[i] {
			t.Errorf("%s: parallel digest %s != serial %s", id, parallel[i], serial[i])
		}
	}
}

// TestDigest pins the digest to the rendered output + checks.
func TestDigest(t *testing.T) {
	a, err := Run("fig3", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("same run, different digests")
	}
	if len(a.Digest()) != 64 {
		t.Errorf("digest %q is not hex sha256", a.Digest())
	}
	c, err := Run("fig1", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Error("different experiments share a digest")
	}
}
