package fcserver

import (
	"sort"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Collector implements cpu.Listener and records a cumulative service
// trace per tracked thread (a ServicePoint at every charge), the raw
// material for FC/EBF conformance checks against measured schedules.
type Collector struct {
	cpu.BaseListener
	tracked map[*sched.Thread]bool
	pts     map[*sched.Thread][]ServicePoint
	cum     map[*sched.Thread]sched.Work
}

// NewCollector tracks the given threads; with none given it tracks every
// thread it sees.
func NewCollector(threads ...*sched.Thread) *Collector {
	c := &Collector{
		pts: make(map[*sched.Thread][]ServicePoint),
		cum: make(map[*sched.Thread]sched.Work),
	}
	if len(threads) > 0 {
		c.tracked = make(map[*sched.Thread]bool, len(threads))
		for _, t := range threads {
			c.tracked[t] = true
		}
	}
	return c
}

// OnCharge implements cpu.Listener.
func (c *Collector) OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	if c.tracked != nil && !c.tracked[t] {
		return
	}
	c.cum[t] += used
	c.pts[t] = append(c.pts[t], ServicePoint{At: now, Work: c.cum[t]})
}

// Points returns the cumulative service trace of t.
func (c *Collector) Points(t *sched.Thread) []ServicePoint {
	out := make([]ServicePoint, len(c.pts[t]))
	copy(out, c.pts[t])
	return out
}

// BusySlice returns the points of t that fall inside [from, to], with
// work re-based to zero at the first point — convenient for checking FC
// conformance over a window in which the thread was continuously
// runnable.
func (c *Collector) BusySlice(t *sched.Thread, from, to sim.Time) []ServicePoint {
	var out []ServicePoint
	var base sched.Work
	first := true
	for _, p := range c.pts[t] {
		if p.At < from || p.At > to {
			continue
		}
		if first {
			base = p.Work
			first = false
		}
		out = append(out, ServicePoint{At: p.At - from, Work: p.Work - base})
	}
	return out
}

// MergePoints combines several cumulative service traces into one: the
// aggregate service of a scheduling class is the sum of its members'. The
// result has one point per input point, in time order, with cumulative
// work summed across all inputs — exactly the service process of the
// node that contains those threads.
func MergePoints(traces ...[]ServicePoint) []ServicePoint {
	type delta struct {
		at sim.Time
		w  sched.Work
	}
	var deltas []delta
	for _, tr := range traces {
		var prev sched.Work
		for _, p := range tr {
			deltas = append(deltas, delta{p.At, p.Work - prev})
			prev = p.Work
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })
	out := make([]ServicePoint, 0, len(deltas))
	var cum sched.Work
	for _, d := range deltas {
		cum += d.w
		out = append(out, ServicePoint{At: d.at, Work: cum})
	}
	return out
}
