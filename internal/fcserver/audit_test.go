package fcserver

import (
	"testing"
	"testing/quick"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func TestAuditFairnessPerfectAlternation(t *testing.T) {
	// Two equal threads alternating 1000-work quanta: D oscillates within
	// one quantum; bound is 2 quanta.
	var f, m []ServicePoint
	var wf, wm sched.Work
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Millisecond
		if i%2 == 0 {
			wf += 1000
			f = append(f, ServicePoint{At: at, Work: wf})
		} else {
			wm += 1000
			m = append(m, ServicePoint{At: at, Work: wm})
		}
	}
	res := AuditFairness(f, m, 1, 1, 1000, 1000, 0, sim.Second)
	if !res.Conforms(0) {
		t.Errorf("alternation failed audit: %v", res)
	}
	if res.WorstGap != 1000 {
		t.Errorf("gap %v, want 1000", res.WorstGap)
	}
}

func TestAuditFairnessCatchesStarvation(t *testing.T) {
	// Thread f receives 10 quanta in a row while m receives nothing:
	// gap 10000 exceeds the 2000 bound.
	var f []ServicePoint
	for i := 0; i < 10; i++ {
		f = append(f, ServicePoint{At: sim.Time(i) * sim.Millisecond, Work: sched.Work((i + 1) * 1000)})
	}
	m := []ServicePoint{{At: 20 * sim.Millisecond, Work: 1000}}
	res := AuditFairness(f, m, 1, 1, 1000, 1000, 0, sim.Second)
	if res.Conforms(0) {
		t.Fatalf("starvation passed audit: %v", res)
	}
	if res.WorstExcess != 8000 {
		t.Errorf("excess %v, want 8000", res.WorstExcess)
	}
}

// TestAuditSFQOnMachine: Eq. 3 must hold over every window of a real
// machine run, for every thread pair, including under interrupt load.
func TestAuditSFQOnMachine(t *testing.T) {
	quantum := 10 * sim.Millisecond
	leaf := sched.NewSFQ(quantum)
	m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf)
	m.AddInterrupts(&cpu.PeriodicInterrupts{Period: 7 * sim.Millisecond, Service: 500 * sim.Microsecond})
	weights := []float64{1, 2.5, 7}
	var threads []*sched.Thread
	for _, w := range weights {
		threads = append(threads, m.Spawn("t", w, cpu.Forever(cpu.Compute(100_000_000)), 0))
	}
	col := NewCollector(threads...)
	m.Listen(col)
	m.Run(20 * sim.Second)

	lmax := float64(cpu.DefaultRate.WorkFor(quantum))
	for i := range threads {
		for j := i + 1; j < len(threads); j++ {
			res := AuditFairness(col.Points(threads[i]), col.Points(threads[j]),
				weights[i], weights[j], lmax, lmax, 0, 20*sim.Second)
			if !res.Conforms(1) {
				t.Errorf("pair (%d,%d): %v", i, j, res)
			}
			if res.Windows == 0 {
				t.Errorf("pair (%d,%d): no windows audited", i, j)
			}
		}
	}
}

// TestAuditSFQQuick: property form — random weights and quantum, the
// audit must pass for CPU-bound threads under SFQ.
func TestAuditSFQQuick(t *testing.T) {
	f := func(w1, w2 uint8, qms uint8) bool {
		wa := float64(w1%20) + 1
		wb := float64(w2%20) + 1
		quantum := sim.Time(int(qms)%20+1) * sim.Millisecond
		leaf := sched.NewSFQ(quantum)
		m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf)
		a := m.Spawn("a", wa, cpu.Forever(cpu.Compute(100_000_000)), 0)
		b := m.Spawn("b", wb, cpu.Forever(cpu.Compute(100_000_000)), 0)
		col := NewCollector(a, b)
		m.Listen(col)
		m.Run(3 * sim.Second)
		lmax := float64(cpu.DefaultRate.WorkFor(quantum))
		res := AuditFairness(col.Points(a), col.Points(b), wa, wb, lmax, lmax, 0, 3*sim.Second)
		if !res.Conforms(1) {
			t.Logf("w=%v:%v q=%v: %v", wa, wb, quantum, res)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAuditRoundRobinViolatesWeightedBound: a negative control — plain
// round-robin ignores weights, so with unequal weights the audit must
// flag it.
func TestAuditRoundRobinViolatesWeightedBound(t *testing.T) {
	quantum := 10 * sim.Millisecond
	rr := sched.NewRoundRobin(quantum)
	m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, rr)
	a := m.Spawn("a", 1, cpu.Forever(cpu.Compute(100_000_000)), 0)
	b := m.Spawn("b", 10, cpu.Forever(cpu.Compute(100_000_000)), 0)
	col := NewCollector(a, b)
	m.Listen(col)
	m.Run(20 * sim.Second)
	lmax := float64(cpu.DefaultRate.WorkFor(quantum))
	res := AuditFairness(col.Points(a), col.Points(b), 1, 10, lmax, lmax, 0, 20*sim.Second)
	if res.Conforms(0) {
		t.Errorf("round-robin passed a weighted audit: %v", res)
	}
}

func TestMergePoints(t *testing.T) {
	a := []ServicePoint{{At: 10, Work: 5}, {At: 30, Work: 12}}
	b := []ServicePoint{{At: 20, Work: 3}}
	got := MergePoints(a, b)
	want := []ServicePoint{{At: 10, Work: 5}, {At: 20, Work: 8}, {At: 30, Work: 15}}
	if len(got) != len(want) {
		t.Fatalf("merged %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := MergePoints(); len(out) != 0 {
		t.Error("empty merge not empty")
	}
}
