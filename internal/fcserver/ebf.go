package fcserver

import (
	"fmt"
	"math"

	"hsfq/internal/sim"
)

// EBF is an Exponentially Bounded Fluctuation server (Definition 2), the
// stochastic relaxation of FC: for all intervals [t1,t2] of a busy period
// and all gamma >= 0,
//
//	P( W(t1,t2) < Rate*(t2-t1) - Burst - gamma ) <= B * e^(-Alpha*gamma)
//
// Intuitively, the probability of the server falling behind the average
// rate by more than Burst+gamma decays exponentially in gamma.
type EBF struct {
	Rate  float64 // average rate C, instructions/second
	Burst float64 // base burstiness delta, instructions
	B     float64 // probability prefactor
	Alpha float64 // exponential decay rate, 1/instructions
}

func (e EBF) String() string {
	return fmt.Sprintf("EBF(C=%.4g, delta=%.4g, B=%.4g, alpha=%.4g)", e.Rate, e.Burst, e.B, e.Alpha)
}

// ExceedanceBound returns the model's bound on the probability of a
// deficit larger than Burst+gamma.
func (e EBF) ExceedanceBound(gamma float64) float64 {
	if gamma < 0 {
		panic("fcserver: negative gamma")
	}
	p := e.B * math.Exp(-e.Alpha*gamma)
	if p > 1 {
		return 1
	}
	return p
}

// EmpiricalExceedance estimates, from a cumulative service trace, the
// fraction of sampled same-length windows whose service deficit relative
// to Rate exceeds Burst+gamma. The window is expressed in samples
// (stride >= 1); every start position is examined.
func (e EBF) EmpiricalExceedance(pts []ServicePoint, stride int, gamma float64) float64 {
	if stride < 1 {
		panic("fcserver: non-positive stride")
	}
	if len(pts) <= stride {
		return 0
	}
	exceed, total := 0, 0
	for i := 0; i+stride < len(pts); i++ {
		a, b := pts[i], pts[i+stride]
		w := float64(b.Work - a.Work)
		dt := (b.At - a.At).Seconds()
		if w < e.Rate*dt-e.Burst-gamma {
			exceed++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(exceed) / float64(total)
}

// ConformsEmpirically checks the EBF bound at the given gammas against a
// service trace, sampling windows of the given stride. It returns the
// first gamma that violates the bound, or -1 if all conform.
func (e EBF) ConformsEmpirically(pts []ServicePoint, stride int, gammas []float64) float64 {
	for _, g := range gammas {
		if e.EmpiricalExceedance(pts, stride, g) > e.ExceedanceBound(g) {
			return g
		}
	}
	return -1
}

// SFQThroughputEBF computes the paper's Eq. (7): if the CPU is an EBF
// server, the throughput received by thread f with rate r_f is also EBF.
// The burstiness composes as in the FC case (Eq. 6); the probability tail
// keeps the prefactor and rescales the decay to the thread's rate share:
//
//	rate   r_f
//	burst  r_f/C * (delta + sum_{m != f} lmax_m) + lmax_f
//	B      B
//	alpha  alpha * C / r_f
//
// (The tail must steepen in thread units because a deficit of gamma for
// the thread corresponds to a server deficit of gamma * C/r_f.)
func SFQThroughputEBF(server EBF, rf float64, lmaxSelf float64, lmaxOthers []float64) EBF {
	if rf <= 0 || rf > server.Rate {
		panic(fmt.Sprintf("fcserver: thread rate %v outside (0, %v]", rf, server.Rate))
	}
	sum := 0.0
	for _, l := range lmaxOthers {
		sum += l
	}
	return EBF{
		Rate:  rf,
		Burst: rf/server.Rate*(server.Burst+sum) + lmaxSelf,
		B:     server.B,
		Alpha: server.Alpha * server.Rate / rf,
	}
}

// SFQDelayBoundEBF computes the stochastic analogue of Eq. (8) (the
// paper's Eq. 10/11 block): the probability that quantum j of length lj
// completes later than
//
//	eat + (delta + gamma + sum_{m != f} lmax_m + lj) / C
//
// is at most B*e^(-alpha*gamma). It returns that completion bound for the
// given gamma.
func SFQDelayBoundEBF(server EBF, eat sim.Time, lj float64, lmaxOthers []float64, gamma float64) (bound sim.Time, prob float64) {
	sum := 0.0
	for _, l := range lmaxOthers {
		sum += l
	}
	d := (server.Burst + gamma + sum + lj) / server.Rate
	return eat + sim.Time(d*float64(sim.Second)), server.ExceedanceBound(gamma)
}
