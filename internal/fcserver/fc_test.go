package fcserver

import (
	"math"
	"testing"
	"testing/quick"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func pts(pairs ...int64) []ServicePoint {
	out := make([]ServicePoint, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, ServicePoint{At: sim.Time(pairs[i]) * sim.Millisecond, Work: sched.Work(pairs[i+1])})
	}
	return out
}

func TestFCMinService(t *testing.T) {
	fc := FC{Rate: 1000, Burst: 50}
	if got := fc.MinService(sim.Second); got != 950 {
		t.Errorf("MinService = %v", got)
	}
	if got := fc.MinService(0); got != -50 {
		t.Errorf("MinService(0) = %v", got)
	}
}

func TestFCConformance(t *testing.T) {
	// A constant-rate trace at exactly the FC rate conforms with zero
	// burst.
	fc := FC{Rate: 1000, Burst: 0} // 1000 work/s = 1 per ms
	trace := pts(0, 0, 100, 100, 200, 200, 300, 300)
	if d := fc.WorstDeficit(trace); d != 0 {
		t.Errorf("constant-rate deficit %v", d)
	}
	// A stall of 100 ms creates a deficit of 100 work units.
	stall := pts(0, 0, 100, 100, 200, 100, 300, 200)
	if d := fc.WorstDeficit(stall); math.Abs(d-100) > 1e-9 {
		t.Errorf("stall deficit %v, want 100", d)
	}
	if !(FC{Rate: 1000, Burst: 100}).Conforms(stall, 1e-9) {
		t.Error("burst 100 should absorb the stall")
	}
	if (FC{Rate: 1000, Burst: 99}).Conforms(stall, 1e-9) {
		t.Error("burst 99 should not absorb the stall")
	}
	if d := fc.WorstDeficit(nil); d != 0 {
		t.Errorf("empty trace deficit %v", d)
	}
}

func TestTightestBurst(t *testing.T) {
	stall := pts(0, 0, 100, 100, 200, 100, 300, 200)
	if b := TightestBurst(1000, stall); math.Abs(b-100) > 1e-9 {
		t.Errorf("tightest burst %v", b)
	}
}

// TestFCWorstDeficitMatchesBruteForce cross-checks the O(n) deficit scan
// against the O(n^2) definition on random traces.
func TestFCWorstDeficitMatchesBruteForce(t *testing.T) {
	f := func(deltas []uint8, rate16 uint16) bool {
		if len(deltas) < 2 {
			return true
		}
		rate := float64(rate16%5000) + 1
		trace := make([]ServicePoint, len(deltas))
		var at sim.Time
		var work sched.Work
		for i, d := range deltas {
			at += sim.Time(d%50+1) * sim.Millisecond
			work += sched.Work(d)
			trace[i] = ServicePoint{At: at, Work: work}
		}
		fc := FC{Rate: rate}
		fast := fc.WorstDeficit(trace)
		brute := 0.0
		for i := 0; i < len(trace); i++ {
			for j := i + 1; j < len(trace); j++ {
				w := float64(trace[j].Work - trace[i].Work)
				need := rate * (trace[j].At - trace[i].At).Seconds()
				if v := need - w; v > brute {
					brute = v
				}
			}
		}
		return math.Abs(fast-brute) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSFQThroughputComposition(t *testing.T) {
	// Eq. 6 with the paper's style of numbers: C=100 MIPS, delta=1e5,
	// thread at 30 MIPS with 1e6-instruction quanta against two others.
	server := FC{Rate: 100e6, Burst: 1e5}
	fc := SFQThroughput(server, 30e6, 1e6, []float64{1e6, 1e6})
	if fc.Rate != 30e6 {
		t.Errorf("rate %v", fc.Rate)
	}
	want := 0.3*(1e5+2e6) + 1e6
	if math.Abs(fc.Burst-want) > 1 {
		t.Errorf("burst %v, want %v", fc.Burst, want)
	}
	// Recursive composition: treating the thread's service as the server
	// of a nested class keeps it FC.
	nested := SFQThroughput(fc, 10e6, 1e5, []float64{1e5})
	if nested.Rate != 10e6 || nested.Burst <= 0 {
		t.Errorf("nested %+v", nested)
	}
}

func TestSFQThroughputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rate above capacity did not panic")
		}
	}()
	SFQThroughput(FC{Rate: 100}, 200, 1, nil)
}

func TestEATRecursion(t *testing.T) {
	// rf = 1000 work/s; quanta of 100 take 100 ms at reserved rate.
	e := NewEAT(1000)
	if got := e.Observe(0, 100); got != 0 {
		t.Errorf("EAT(0) = %v", got)
	}
	// Arrives before the previous quantum would have finished at rf.
	if got := e.Observe(10*sim.Millisecond, 100); got != 100*sim.Millisecond {
		t.Errorf("EAT(1) = %v, want 100ms", got)
	}
	// Arrives long after: EAT = arrival.
	if got := e.Observe(sim.Second, 100); got != sim.Second {
		t.Errorf("EAT(2) = %v", got)
	}
}

func TestDelayBounds(t *testing.T) {
	server := FC{Rate: 1000, Burst: 0}
	eat := sim.Time(0)
	// SFQ: (0 + lmax_other + lj)/C = (100+100)/1000 s = 200 ms.
	if got := SFQDelayBound(server, eat, 100, []float64{100}); got != 200*sim.Millisecond {
		t.Errorf("SFQ bound %v", got)
	}
	// WFQ for rf = 100 work/s: lj/rf + lmax/C = 1s + 100ms.
	if got := WFQDelayBound(server, eat, 100, 100, 100); got != 1100*sim.Millisecond {
		t.Errorf("WFQ bound %v", got)
	}
	// SCFQ adds sum of other lmax / C on top of WFQ.
	if got := SCFQDelayBound(server, eat, 100, 100, 100, []float64{100}); got != 1200*sim.Millisecond {
		t.Errorf("SCFQ bound %v", got)
	}
	// Low-throughput flow: SFQ strictly better.
	if adv := DelayAdvantageSFQ(server, 100, 100, 2); adv >= 0 {
		t.Errorf("advantage %v, want negative", adv)
	}
	// High-throughput flow with many competitors: WFQ can win.
	if adv := DelayAdvantageSFQ(server, 100, 900, 10); adv <= 0 {
		t.Errorf("advantage %v, want positive", adv)
	}
}

func TestEBFBounds(t *testing.T) {
	e := EBF{Rate: 1000, Burst: 10, B: 1, Alpha: 0.1}
	if p := e.ExceedanceBound(0); p != 1 {
		t.Errorf("P(gamma=0) = %v", p)
	}
	p := e.ExceedanceBound(10)
	if math.Abs(p-math.Exp(-1)) > 1e-12 {
		t.Errorf("P(gamma=10) = %v", p)
	}
	// Monotone decreasing.
	if e.ExceedanceBound(20) >= p {
		t.Error("bound not decreasing")
	}
}

func TestEBFEmpirical(t *testing.T) {
	// Perfect-rate trace: no exceedances at any gamma.
	trace := pts(0, 0, 100, 100, 200, 200, 300, 300, 400, 400)
	e := EBF{Rate: 1000, Burst: 0, B: 1, Alpha: 1}
	if p := e.EmpiricalExceedance(trace, 1, 0); p != 0 {
		t.Errorf("exceedance %v", p)
	}
	if g := e.ConformsEmpirically(trace, 1, []float64{0, 10, 100}); g != -1 {
		t.Errorf("violated at gamma %v", g)
	}
	// A long stall violates a tight EBF model at gamma=0... bound at
	// gamma 0 is B=1e-9, so any deficit violates.
	stall := pts(0, 0, 100, 100, 200, 100, 300, 200)
	tight := EBF{Rate: 1000, Burst: 0, B: 1e-9, Alpha: 1}
	if g := tight.ConformsEmpirically(stall, 1, []float64{0}); g != 0 {
		t.Errorf("stall accepted by tight model (g=%v)", g)
	}
}

func TestSFQThroughputEBF(t *testing.T) {
	server := EBF{Rate: 100e6, Burst: 1e5, B: 0.5, Alpha: 1e-6}
	out := SFQThroughputEBF(server, 25e6, 1e6, []float64{1e6})
	if out.Rate != 25e6 || out.B != 0.5 {
		t.Errorf("%+v", out)
	}
	if out.Alpha != 1e-6*4 {
		t.Errorf("alpha %v, want scaled by C/rf=4", out.Alpha)
	}
	wantBurst := 0.25*(1e5+1e6) + 1e6
	if math.Abs(out.Burst-wantBurst) > 1 {
		t.Errorf("burst %v want %v", out.Burst, wantBurst)
	}
	bound, prob := SFQDelayBoundEBF(server, sim.Second, 1e6, []float64{1e6}, 1e5)
	if bound <= sim.Second || prob <= 0 || prob > 1 {
		t.Errorf("bound %v prob %v", bound, prob)
	}
}

func TestCollector(t *testing.T) {
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	c := NewCollector(a)
	c.OnCharge(a, 100, 10*sim.Millisecond, true)
	c.OnCharge(b, 999, 10*sim.Millisecond, true) // untracked
	c.OnCharge(a, 50, 20*sim.Millisecond, false)
	got := c.Points(a)
	if len(got) != 2 || got[1].Work != 150 {
		t.Errorf("points %v", got)
	}
	if len(c.Points(b)) != 0 {
		t.Error("untracked thread collected")
	}
	slice := c.BusySlice(a, 10*sim.Millisecond, 20*sim.Millisecond)
	if len(slice) != 2 || slice[0].At != 0 || slice[0].Work != 0 || slice[1].Work != 50 {
		t.Errorf("busy slice %v", slice)
	}
}
