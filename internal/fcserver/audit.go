package fcserver

import (
	"fmt"
	"sort"

	"hsfq/internal/sim"
)

// This file implements a fairness auditor for measured schedules: it
// checks SFQ's fairness theorem (Eq. 3),
//
//	| W_f(t1,t2)/w_f - W_m(t1,t2)/w_m | <= lmax_f/w_f + lmax_m/w_m
//
// over EVERY window [t1,t2] of a pair of service traces, not just the
// full run — the property that makes SFQ "near-optimal" [4] and that the
// A1 ablation shows WFQ/FQS losing under fluctuation.

// AuditResult reports the worst window found for one thread pair.
type AuditResult struct {
	WorstExcess float64  // max over windows of gap - bound; <= 0 conforms
	WorstGap    float64  // the gap in that window
	Bound       float64  // lmax_f/w_f + lmax_m/w_m
	From, To    sim.Time // the worst window
	Windows     int      // windows examined
}

// Conforms reports whether every window respected the bound within tol.
func (a AuditResult) Conforms(tol float64) bool { return a.WorstExcess <= tol }

func (a AuditResult) String() string {
	return fmt.Sprintf("worst excess %.3f (gap %.3f vs bound %.3f) in [%v,%v] over %d windows",
		a.WorstExcess, a.WorstGap, a.Bound, a.From, a.To, a.Windows)
}

// AuditFairness checks Eq. 3 for a pair of threads that were both
// continuously runnable during [from, to], given their cumulative service
// traces (as collected by Collector), weights, and maximum quantum
// lengths (in work units).
//
// The normalized service difference D(t) = Wf(t)/wf - Wm(t)/wm is a step
// function changing only at charge instants; the maximum window gap is
// max D - min D over the merged event sequence, so the audit over all
// O(n^2) windows costs O(n log n).
func AuditFairness(f, m []ServicePoint, wf, wm, lmaxF, lmaxM float64, from, to sim.Time) AuditResult {
	if wf <= 0 || wm <= 0 {
		panic("fcserver: non-positive weight in audit")
	}
	type ev struct {
		at   sim.Time
		draw float64 // change in D at this instant
	}
	var evs []ev
	add := func(pts []ServicePoint, w float64, sign float64) {
		var prev float64
		for _, p := range pts {
			if p.At < from || p.At > to {
				if p.At < from {
					prev = float64(p.Work)
				}
				continue
			}
			evs = append(evs, ev{p.At, sign * (float64(p.Work) - prev) / w})
			prev = float64(p.Work)
		}
	}
	add(f, wf, +1)
	add(m, wm, -1)
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	bound := lmaxF/wf + lmaxM/wm
	res := AuditResult{Bound: bound, WorstExcess: -bound}
	d := 0.0
	minD, maxD := 0.0, 0.0
	minAt, maxAt := from, from
	for _, e := range evs {
		d += e.draw
		res.Windows++
		if d < minD {
			minD, minAt = d, e.at
		}
		if d > maxD {
			maxD, maxAt = d, e.at
		}
		if gap := maxD - minD; gap-bound > res.WorstExcess {
			res.WorstExcess = gap - bound
			res.WorstGap = gap
			res.From, res.To = sim.MinTime(minAt, maxAt), sim.MaxTime(minAt, maxAt)
		}
	}
	return res
}
