// Package fcserver implements the Fluctuation Constrained (FC) and
// Exponentially Bounded Fluctuation (EBF) server models of Lee [11] that
// the paper uses to characterize a CPU whose effective bandwidth varies
// because interrupts are serviced at top priority (§3, Definitions 1-2),
// together with SFQ's throughput and delay guarantees built on them
// (Eqs. 6-8) and the WFQ/SCFQ comparators of §6.
//
// Work is measured in the same instruction units as the rest of the
// repository; rates are instructions per second.
package fcserver

import (
	"fmt"
	"math"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// FC is a Fluctuation Constrained server (Definition 1): in any interval
// [t1,t2] of a busy period, the server does at least
// Rate*(t2-t1) - Burst work:
//
//	W(t1,t2) >= Rate*(t2-t1) - Burst
type FC struct {
	Rate  float64 // average rate C, instructions/second
	Burst float64 // burstiness delta(C), instructions
}

func (fc FC) String() string {
	return fmt.Sprintf("FC(C=%.4g instr/s, delta=%.4g instr)", fc.Rate, fc.Burst)
}

// MinService returns the FC lower bound on work done in an interval of
// length dt within a busy period.
func (fc FC) MinService(dt sim.Time) float64 {
	return fc.Rate*dt.Seconds() - fc.Burst
}

// ServicePoint is a sample of cumulative service: by time At the observed
// entity had received Work total service.
type ServicePoint struct {
	At   sim.Time
	Work sched.Work
}

// WorstDeficit returns the largest violation of the FC bound over all
// sample pairs (t1 < t2): max over pairs of
// Rate*(t2-t1) - Burst - W(t1,t2), clamped below at 0. A deficit of 0
// means the trace conforms to the model. The scan is O(n) via the running
// maximum of W_i - Rate*t_i.
func (fc FC) WorstDeficit(pts []ServicePoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	worst := 0.0
	maxD := math.Inf(-1)
	for _, p := range pts {
		d := float64(p.Work) - fc.Rate*p.At.Seconds()
		if maxD > d+fc.Burst {
			if v := maxD - d - fc.Burst; v > worst {
				worst = v
			}
		}
		if d > maxD {
			maxD = d
		}
	}
	return worst
}

// Conforms reports whether the sampled service trace satisfies the FC
// bound, within a numerical tolerance of tol work units.
func (fc FC) Conforms(pts []ServicePoint, tol float64) bool {
	return fc.WorstDeficit(pts) <= tol
}

// TightestBurst returns the smallest Burst for which a trace conforms to
// an FC server of the given rate — the empirical delta(C) of a measured
// schedule.
func TightestBurst(rate float64, pts []ServicePoint) float64 {
	return FC{Rate: rate}.WorstDeficit(pts)
}

// SFQThroughput computes the paper's Eq. (6): if the CPU is FC(C, delta)
// and thread f has rate r_f (its weight interpreted as a rate, with
// sum of rates <= C), then f's service is FC with
//
//	rate  r_f
//	burst r_f/C * (delta + sum_{m in Q, m != f} lmax_m) + lmax_f
//
// where lmax_m is the maximum quantum length (in instructions) of thread
// m. Applied recursively down the scheduling structure, this is what makes
// every class of the hierarchy an FC server (§3).
func SFQThroughput(server FC, rf float64, lmaxSelf float64, lmaxOthers []float64) FC {
	if rf <= 0 || rf > server.Rate {
		panic(fmt.Sprintf("fcserver: thread rate %v outside (0, %v]", rf, server.Rate))
	}
	sum := 0.0
	for _, l := range lmaxOthers {
		sum += l
	}
	return FC{
		Rate:  rf,
		Burst: rf/server.Rate*(server.Burst+sum) + lmaxSelf,
	}
}

// EAT tracks the expected arrival time recursion of §3: EAT(j) is "the
// time at which quantum j would start if only thread f was in the system
// and the CPU capacity was r_f":
//
//	EAT(j) = max(A(j), EAT(j-1) + l_{j-1}/r_f)
type EAT struct {
	rf       float64
	lastEAT  float64 // seconds
	lastLen  float64 // instructions
	observed bool
}

// NewEAT returns a tracker for a thread with rate rf.
func NewEAT(rf float64) *EAT {
	if rf <= 0 {
		panic("fcserver: EAT with non-positive rate")
	}
	return &EAT{rf: rf}
}

// Observe records quantum j's arrival (request) time and length and
// returns its expected arrival time.
func (e *EAT) Observe(arrival sim.Time, length sched.Work) sim.Time {
	a := arrival.Seconds()
	eat := a
	if e.observed {
		if prev := e.lastEAT + e.lastLen/e.rf; prev > eat {
			eat = prev
		}
	}
	e.observed = true
	e.lastEAT = eat
	e.lastLen = float64(length)
	return sim.Time(eat * float64(sim.Second))
}

// SFQDelayBound computes the paper's Eq. (8): under an FC(C, delta)
// server, SFQ guarantees that a quantum of length lj with expected arrival
// time eat completes by
//
//	eat + (delta + sum_{m != f} lmax_m + lj) / C
func SFQDelayBound(server FC, eat sim.Time, lj float64, lmaxOthers []float64) sim.Time {
	sum := 0.0
	for _, l := range lmaxOthers {
		sum += l
	}
	d := (server.Burst + sum + lj) / server.Rate
	return eat + sim.Time(d*float64(sim.Second))
}

// WFQDelayBound computes the corresponding WFQ guarantee discussed in §6
// (for a constant-rate server of capacity C): a quantum of length lj of a
// thread with rate rf completes by
//
//	eat + lj/rf + lmaxAny/C
//
// where lmaxAny is the maximum quantum length ever scheduled at the CPU.
// Note WFQ carries no fairness guarantee at all once the rate fluctuates;
// the bound is only meaningful with Burst = 0.
func WFQDelayBound(server FC, eat sim.Time, lj, rf, lmaxAny float64) sim.Time {
	d := lj/rf + lmaxAny/server.Rate
	return eat + sim.Time(d*float64(sim.Second))
}

// SCFQDelayBound computes SCFQ's guarantee: §6 notes SCFQ "increases the
// maximum delay of quantum j" over WFQ by sum_{m != f} lmax_m / C.
func SCFQDelayBound(server FC, eat sim.Time, lj, rf, lmaxAny float64, lmaxOthers []float64) sim.Time {
	sum := 0.0
	for _, l := range lmaxOthers {
		sum += l
	}
	base := WFQDelayBound(server, eat, lj, rf, lmaxAny)
	return base + sim.Time(sum/server.Rate*float64(sim.Second))
}

// DelayAdvantageSFQ returns D_sfq - D_wfq for equal quantum lengths l and
// n competing threads: positive means WFQ's bound is tighter, negative
// means SFQ's is. With equal quanta this reduces to
//
//	(n-1)*l/C - l/rf
//
// which is negative — SFQ wins — exactly when rf < C/(n-1); for the
// low-throughput (interactive) threads of §6 this always holds.
func DelayAdvantageSFQ(server FC, l, rf float64, n int) float64 {
	return float64(n-1)*l/server.Rate - l/rf
}
