package tracestream

import (
	"strings"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

const testScenario = `{
  "rate_mips": 100,
  "horizon": "50ms",
  "seed": 7,
  "nodes": [
    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "rr"}
  ],
  "threads": [
    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
  ],
  "interrupts": [
    {"kind": "periodic", "period": "10ms", "service": "100us"}
  ]
}`

// runTraced runs the test scenario with the broadcaster and a reference
// trace.Hasher attached to the same machine.
func runTraced(t *testing.T, b *Broadcaster) *trace.Hasher {
	t.Helper()
	cfg, err := simconfig.Parse(strings.NewReader(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	s.Machine.Listen(h)
	s.Machine.Listen(b)
	b.Begin(s.ThreadMetas())
	s.Run()
	b.Finish()
	return h
}

// drainDecode decodes everything the subscriber has pending.
func drainDecode(t *testing.T, sub *Subscriber, dec *Decoder) []*Frame {
	t.Helper()
	var out []*Frame
	for {
		chunk := sub.Take()
		if chunk == nil {
			return out
		}
		dec.Feed(chunk)
		for {
			f, err := dec.Next()
			if err != nil {
				t.Fatal(err)
			}
			if f == nil {
				break
			}
			out = append(out, f)
		}
	}
}

func TestBroadcasterStreamMatchesHasher(t *testing.T) {
	b := New()
	b.EnableRecording(0)
	sub := b.Subscribe(0) // attached before the run: must be gap-free
	h := runTraced(t, b)

	rec := b.Snapshot()
	if rec.Digest != h.Sum() {
		t.Fatalf("recording digest %s != hasher %s", rec.Digest, h.Sum())
	}
	if rec.Rows != h.Rows() || rec.Rows == 0 {
		t.Fatalf("recording rows %d, hasher %d", rec.Rows, h.Rows())
	}
	if rec.Truncated || rec.Lost != 0 {
		t.Fatalf("unexpected truncation: %+v", rec)
	}

	// The live subscriber's stream re-hashes to the same digest.
	dec := NewDecoder()
	frames := drainDecode(t, sub, dec)
	rd := NewRowDigest(1)
	var end *Frame
	for _, f := range frames {
		switch f.Type {
		case frameEvent:
			rd.Add(f.Event)
		case frameDrop:
			t.Fatalf("fast subscriber saw a drop frame")
		case frameEnd:
			end = f
		case frameHeader:
			rd = NewRowDigest(f.NumCores)
		}
	}
	if end == nil {
		t.Fatal("no end frame")
	}
	if rd.Sum() != h.Sum() || end.Digest != h.Sum() {
		t.Fatalf("subscriber digest %s, end frame %s, hasher %s", rd.Sum(), end.Digest, h.Sum())
	}
	if rd.Rows() != h.Rows() || int(end.Rows) != h.Rows() {
		t.Fatalf("subscriber rows %d, end %d, hasher %d", rd.Rows(), end.Rows, h.Rows())
	}
	if sub.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d", sub.Dropped())
	}
}

func TestLateSubscriberSeededFromRecording(t *testing.T) {
	b := New()
	b.EnableRecording(0)
	h := runTraced(t, b)

	// Subscribing after Finish replays the whole recording.
	sub := b.Subscribe(0)
	rd := NewRowDigest(1)
	var sawEnd bool
	for _, f := range drainDecode(t, sub, NewDecoder()) {
		switch f.Type {
		case frameEvent:
			rd.Add(f.Event)
		case frameEnd:
			sawEnd = true
		}
	}
	if !sawEnd || rd.Sum() != h.Sum() {
		t.Fatalf("replay digest %s, hasher %s, end=%v", rd.Sum(), h.Sum(), sawEnd)
	}
}

func TestSlowSubscriberDropsWithoutBackpressure(t *testing.T) {
	b := New()
	b.EnableRecording(0)
	b.Begin([]trace.ThreadMeta{{TID: 1, Name: "x", Depth: 1, Path: "/x"}})
	th := sched.NewThread(1, "x", 1)

	sub := b.Subscribe(256) // tiny buffer, never drained during the burst
	drainDecode(t, sub, NewDecoder())
	for i := 0; i < 1000; i++ {
		b.OnCharge(th, 1, 0, true)
	}
	if sub.Dropped() == 0 {
		t.Fatal("slow subscriber should have dropped events")
	}
	// Recording is unaffected by the slow subscriber.
	if b.Snapshot().Rows != 1000 {
		t.Fatalf("recording rows %d", b.Snapshot().Rows)
	}
	// After draining, the next event materializes the drop marker.
	sub.Take()
	b.OnCharge(th, 1, 0, true)
	b.Finish()
	var drops uint64
	events := 0
	for _, f := range drainDecode(t, sub, NewDecoder()) {
		switch f.Type {
		case frameDrop:
			drops += f.Dropped
		case frameEvent:
			events++
		}
	}
	if drops == 0 {
		t.Fatal("no drop frame after gap")
	}
	if drops != sub.Dropped() {
		t.Fatalf("drop frames claim %d, counter %d", drops, sub.Dropped())
	}
	if events == 0 {
		t.Fatal("no events after the gap")
	}
}

func TestTruncatedRecordingMarksGapForLateSubscriber(t *testing.T) {
	b := New()
	b.EnableRecording(512)
	b.Begin([]trace.ThreadMeta{{TID: 1, Name: "x", Depth: 1, Path: "/x"}})
	th := sched.NewThread(1, "x", 1)
	for i := 0; i < 1000; i++ {
		b.OnCharge(th, 1, 0, true)
	}
	b.Finish()
	rec := b.Snapshot()
	if !rec.Truncated || rec.Lost == 0 || rec.Rows != 1000 {
		t.Fatalf("recording: %+v", rec)
	}
	sub := b.Subscribe(0)
	var drops uint64
	for _, f := range drainDecode(t, sub, NewDecoder()) {
		if f.Type == frameDrop {
			drops += f.Dropped
		}
	}
	if drops != rec.Lost {
		t.Fatalf("late subscriber saw %d drops, recording lost %d", drops, rec.Lost)
	}
}

func TestUnsubscribeClosesAndDeactivates(t *testing.T) {
	b := New()
	sub := b.Subscribe(0)
	if !b.active.Load() {
		t.Fatal("subscriber should activate the broadcaster")
	}
	b.Unsubscribe(sub)
	if !sub.Closed() {
		t.Fatal("unsubscribed subscriber should be closed")
	}
	if b.active.Load() {
		t.Fatal("no subscribers and no recording: broadcaster should be inactive")
	}
	if b.Subscribers() != 0 {
		t.Fatal("subscriber count should be 0")
	}
}

func TestBroadcasterNoSubscriberZeroAllocs(t *testing.T) {
	b := New()
	th := sched.NewThread(1, "x", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		b.OnDispatch(th, 0)
		b.OnCharge(th, 1, 0, true)
		b.OnInterrupt(0, 1)
		b.OnIdle(0)
	})
	if allocs != 0 {
		t.Fatalf("no-subscriber hot path allocates %v allocs/op, want 0", allocs)
	}
}
