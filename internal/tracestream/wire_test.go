package tracestream

import (
	"bytes"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/trace"
)

func TestWireRoundTrip(t *testing.T) {
	meta := []trace.ThreadMeta{
		{TID: 1, Name: "dec", Depth: 1, Path: "/soft"},
		{TID: 2, Name: "hog", Depth: 2, Path: "/be/user1"},
	}
	events := []trace.Event{
		{At: 0, Kind: trace.Dispatch, Thread: "dec", ThreadID: 1},
		{At: 10, Kind: trace.Charge, Thread: "dec", ThreadID: 1, Used: 7, Runnable: true},
		{At: 10, Kind: trace.Interrupt, Service: 100},
		{At: 20, Kind: trace.Idle, Core: 3},
		{At: 30, Kind: trace.Block, Thread: "hog", ThreadID: 2},
	}
	var stream []byte
	stream = AppendHeaderFrame(stream, 4)
	stream = AppendThreadsFrame(stream, meta)
	for _, e := range events {
		stream = AppendEventFrame(stream, e)
	}
	stream = AppendDropFrame(stream, 42)
	stream = AppendEndFrame(stream, len(events), "abc123")

	dec := NewDecoder()
	// Feed byte-by-byte to exercise incremental reassembly.
	var frames []*Frame
	for i := 0; i < len(stream); i++ {
		dec.Feed(stream[i : i+1])
		for {
			f, err := dec.Next()
			if err != nil {
				t.Fatalf("decode at byte %d: %v", i, err)
			}
			if f == nil {
				break
			}
			frames = append(frames, f)
		}
	}
	if len(frames) != 2+len(events)+2 {
		t.Fatalf("got %d frames, want %d", len(frames), 2+len(events)+2)
	}
	if frames[0].Type != frameHeader || frames[0].NumCores != 4 || frames[0].Version != Version {
		t.Fatalf("header: %+v", frames[0])
	}
	if dec.NumCores() != 4 {
		t.Fatalf("decoder NumCores = %d", dec.NumCores())
	}
	if frames[1].Type != frameThreads || len(frames[1].Threads) != 2 || frames[1].Threads[1].Path != "/be/user1" {
		t.Fatalf("threads: %+v", frames[1])
	}
	for i, e := range events {
		got := frames[2+i]
		if got.Type != frameEvent {
			t.Fatalf("frame %d type %d", i, got.Type)
		}
		// Canonical rows must round-trip exactly (the digest depends on it).
		want := trace.RowText(e, 4)
		if have := trace.RowText(got.Event, 4); have != want {
			t.Fatalf("event %d row = %q, want %q", i, have, want)
		}
	}
	if d := frames[len(frames)-2]; d.Type != frameDrop || d.Dropped != 42 {
		t.Fatalf("drop: %+v", d)
	}
	if e := frames[len(frames)-1]; e.Type != frameEnd || e.Rows != uint64(len(events)) || e.Digest != "abc123" {
		t.Fatalf("end: %+v", e)
	}
}

func TestDecoderResolvesNames(t *testing.T) {
	var stream []byte
	stream = AppendHeaderFrame(stream, 1)
	stream = AppendThreadsFrame(stream, []trace.ThreadMeta{{TID: 7, Name: "editor", Depth: 2, Path: "/be/user2"}})
	stream = AppendEventFrame(stream, trace.Event{At: 5, Kind: trace.Wake, Thread: "editor", ThreadID: 7})
	dec := NewDecoder()
	dec.Feed(stream)
	var ev *Frame
	for {
		f, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			break
		}
		if f.Type == frameEvent {
			ev = f
		}
	}
	if ev == nil || ev.Event.Thread != "editor" {
		t.Fatalf("name not resolved: %+v", ev)
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":      appendFrame(nil, append([]byte{frameHeader}, []byte("NOTTS!\x01\x01")...)),
		"bad version":    appendFrame(nil, append([]byte{frameHeader}, append([]byte(Magic), 99, 1)...)),
		"empty frame":    {0},
		"unknown type":   appendFrame(nil, []byte{0x7f}),
		"huge length":    {0xff, 0xff, 0xff, 0xff, 0x7f},
		"bad event kind": appendFrame(nil, []byte{frameEvent, 0xee, 0, 0, 0, 0, 0, 0}),
		"truncated body": appendFrame(nil, []byte{frameEvent, 0}),
	}
	for name, in := range cases {
		dec := NewDecoder()
		dec.Feed(in)
		var err error
		for i := 0; i < 10; i++ {
			var f *Frame
			f, err = dec.Next()
			if err != nil || f == nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: decoder accepted malformed input %x", name, in)
			continue
		}
		// Errors are sticky.
		if _, err2 := dec.Next(); err2 == nil {
			t.Errorf("%s: error not sticky", name)
		}
	}
}

func TestDecoderCompaction(t *testing.T) {
	// Many small feeds with interleaved frame boundaries must not grow the
	// internal buffer without bound.
	dec := NewDecoder()
	frame := AppendEventFrame(nil, trace.Event{At: 1, Kind: trace.Idle})
	for i := 0; i < 100000; i++ {
		dec.Feed(frame)
		f, err := dec.Next()
		if err != nil || f == nil {
			t.Fatalf("iter %d: %v %v", i, f, err)
		}
	}
	if len(dec.buf)-dec.off > len(frame) {
		t.Fatalf("decoder retained %d unconsumed bytes", len(dec.buf)-dec.off)
	}
}

func TestEventFrameNegativeValuesRoundTrip(t *testing.T) {
	// Wire uses uvarints; int64 values round-trip through uint64 casts.
	e := trace.Event{At: sim.Time(-1), Kind: trace.Charge, ThreadID: 3, Used: sched.Work(-5)}
	stream := AppendEventFrame(nil, e)
	dec := NewDecoder()
	dec.Feed(stream)
	f, err := dec.Next()
	if err != nil || f == nil {
		t.Fatalf("decode: %v %v", f, err)
	}
	if f.Event.At != e.At || f.Event.Used != e.Used {
		t.Fatalf("round-trip: %+v", f.Event)
	}
}

func FuzzTraceFrameDecode(f *testing.F) {
	var seed []byte
	seed = AppendHeaderFrame(seed, 2)
	seed = AppendThreadsFrame(seed, []trace.ThreadMeta{{TID: 1, Name: "dec", Depth: 1, Path: "/soft"}})
	seed = AppendEventFrame(seed, trace.Event{At: 10, Kind: trace.Charge, Thread: "dec", ThreadID: 1, Used: 5, Runnable: true, Core: 1})
	seed = AppendDropFrame(seed, 3)
	seed = AppendEndFrame(seed, 1, "deadbeef")
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(AppendHeaderFrame(nil, 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder must never panic, loop forever, or retain unbounded
		// state, whatever the input. Feed in two chunks to cover the
		// incremental path.
		dec := NewDecoder()
		half := len(data) / 2
		dec.Feed(data[:half])
		for i := 0; i < len(data)+2; i++ {
			f, err := dec.Next()
			if err != nil {
				return
			}
			if f == nil {
				break
			}
		}
		dec.Feed(data[half:])
		for i := 0; i < len(data)+2; i++ {
			f, err := dec.Next()
			if err != nil {
				return
			}
			if f == nil {
				return
			}
		}
	})
}
