package tracestream

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/trace"
)

// RowDigest folds canonical event rows (trace.AppendRow) into a running
// SHA-256 — the same digest trace.Hasher computes from machine callbacks,
// but fed with already-materialized trace.Events. The Broadcaster uses it
// for recordings; stream clients use it to verify what they received.
type RowDigest struct {
	h        hash.Hash
	buf      []byte
	rows     int
	numCores int
}

// NewRowDigest returns an empty digest for a numCores-wide stream.
func NewRowDigest(numCores int) *RowDigest {
	if numCores < 1 {
		numCores = 1
	}
	return &RowDigest{h: sha256.New(), numCores: numCores}
}

// Add folds one event into the digest.
func (d *RowDigest) Add(e trace.Event) {
	d.buf = trace.AppendRow(d.buf[:0], e, d.numCores)
	d.h.Write(d.buf)
	d.rows++
}

// Rows returns how many events have been folded in.
func (d *RowDigest) Rows() int { return d.rows }

// Sum returns the hex digest so far without disturbing the state.
func (d *RowDigest) Sum() string { return fmt.Sprintf("%x", d.h.Sum(nil)) }

// Recording is a finished trace stream: the encoded frames (header,
// threads, events, terminated by an end frame) plus the digest metadata,
// ready to be replayed to late subscribers or served over HTTP.
type Recording struct {
	// Frames is the complete encoded stream including the end frame.
	Frames []byte
	// Digest is the trace.Hasher hex digest over every event of the run —
	// complete even when Frames is truncated.
	Digest string
	// Rows is the total event count of the run.
	Rows int
	// Truncated reports that the frame cap was hit: Frames is missing
	// Lost events (a drop frame marks the gap), though Digest and Rows
	// still cover the whole run.
	Truncated bool
	// Lost is how many events the recording dropped to stay under its cap.
	Lost uint64
}

// Broadcaster implements cpu.Listener (and cpu.SMPListener): it encodes
// every scheduling event into the wire format and fans it out to any
// number of subscribers through bounded per-subscriber buffers. With no
// subscriber attached and recording disabled, the hot path is a single
// atomic load — 0 allocs/op, enforced by an alloc-guard test.
//
// Lifecycle: New → [EnableRecording] → Machine.Listen (sets the core
// count) → Begin(meta) → run → Finish(). Subscribe works at any point;
// a subscriber attaching mid-run is seeded with the recording so far, so
// its stream is gap-free from tick zero unless the recording cap was hit.
type Broadcaster struct {
	cpu.BaseListener

	// active gates the event hot path: true iff recording is enabled or
	// at least one subscriber is attached. Read without the lock.
	active atomic.Bool

	mu       sync.Mutex
	numCores int
	meta     []trace.ThreadMeta
	began    bool
	finished bool
	subs     map[*Subscriber]struct{}
	scratch  []byte

	// Recording state (nil digest = recording disabled).
	recCap    int
	recFrames []byte
	recDigest *RowDigest
	recTrunc  bool
	recLost   uint64
}

// New returns a Broadcaster with no subscribers and recording disabled.
func New() *Broadcaster {
	return &Broadcaster{numCores: 1, subs: make(map[*Subscriber]struct{})}
}

// EnableRecording makes the broadcaster keep the encoded stream, up to
// maxBytes of frames (<=0 means unbounded). The digest always covers the
// full run even if the frame cap is hit. Call before Begin.
func (b *Broadcaster) EnableRecording(maxBytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.recCap = maxBytes
	b.recDigest = NewRowDigest(b.numCores)
	b.active.Store(true)
}

// SetNumCores implements the optional Listener upgrade: Machine.Listen
// calls it before any event. It must run before Begin.
func (b *Broadcaster) SetNumCores(n int) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.numCores = n
	if b.recDigest != nil && b.recDigest.Rows() == 0 {
		b.recDigest = NewRowDigest(n)
	}
}

// Begin opens the stream: it emits the header and threads frames to the
// recording and all current subscribers. Events observed before Begin
// are dropped from the stream (none exist in the normal lifecycle).
func (b *Broadcaster) Begin(meta []trace.ThreadMeta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.began {
		return
	}
	b.began = true
	b.meta = meta
	b.scratch = AppendHeaderFrame(b.scratch[:0], b.numCores)
	b.scratch = AppendThreadsFrame(b.scratch, meta)
	b.record(nil, b.scratch)
	for s := range b.subs {
		s.push(b.scratch, false)
	}
}

// Finish closes the stream: it appends the end frame (row count + full
// digest) to the recording and every subscriber. The broadcaster ignores
// events after Finish.
func (b *Broadcaster) Finish() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.finished {
		return
	}
	b.finished = true
	rows, digest := 0, ""
	if b.recDigest != nil {
		rows, digest = b.recDigest.Rows(), b.recDigest.Sum()
	}
	b.scratch = AppendEndFrame(b.scratch[:0], rows, digest)
	b.record(nil, b.scratch)
	for s := range b.subs {
		s.push(b.scratch, false)
	}
}

// Snapshot returns the recording. Meaningful after Finish; before that
// it reflects the stream so far (without an end frame).
func (b *Broadcaster) Snapshot() Recording {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec := Recording{
		Frames:    append([]byte(nil), b.recFrames...),
		Truncated: b.recTrunc,
		Lost:      b.recLost,
	}
	if b.recDigest != nil {
		rec.Digest = b.recDigest.Sum()
		rec.Rows = b.recDigest.Rows()
	}
	return rec
}

// Subscribe attaches a new subscriber with the given pending-buffer cap
// in bytes (<=0 picks a 1 MiB default). The subscriber is seeded with the
// recorded stream so far — gap-free from tick zero when the recording is
// complete, or marked with a drop frame when the recording cap was hit —
// and then receives live frames.
func (b *Broadcaster) Subscribe(bufBytes int) *Subscriber {
	if bufBytes <= 0 {
		bufBytes = 1 << 20
	}
	s := &Subscriber{max: bufBytes, notify: make(chan struct{}, 1)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.recFrames) > 0 {
		// Seed beyond the cap if needed: catch-up happens once, and a
		// subscriber that asked for a tiny buffer still needs a coherent
		// stream prefix.
		s.buf = append(s.buf, b.recFrames...)
		if b.recTrunc {
			s.buf = AppendDropFrame(s.buf, b.recLost)
			s.dropped += b.recLost
		}
		s.signal()
	} else if b.began {
		// No recording to seed from: open the stream for this subscriber.
		s.buf = AppendHeaderFrame(s.buf, b.numCores)
		s.buf = AppendThreadsFrame(s.buf, b.meta)
		s.signal()
	}
	b.subs[s] = struct{}{}
	b.active.Store(true)
	return s
}

// Unsubscribe detaches and closes a subscriber.
func (b *Broadcaster) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	delete(b.subs, s)
	b.active.Store(b.recDigest != nil || len(b.subs) > 0)
	b.mu.Unlock()
	s.Close()
}

// Subscribers returns the number of attached subscribers.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// record folds one event (e != nil) or a control frame into the
// recording. Control frames are always kept — they are tiny and every
// late subscriber is seeded from recFrames, so the stream prefix must
// stay coherent even when event recording is disabled or capped. Caller
// holds b.mu.
func (b *Broadcaster) record(e *trace.Event, frame []byte) {
	if e != nil {
		if b.recDigest == nil {
			return
		}
		b.recDigest.Add(*e)
		if b.recCap > 0 && len(b.recFrames)+len(frame) > b.recCap {
			b.recTrunc = true
			b.recLost++
			return
		}
	}
	b.recFrames = append(b.recFrames, frame...)
}

// event is the hot path: encode once, record, fan out.
func (b *Broadcaster) event(e trace.Event) {
	if !b.active.Load() {
		return
	}
	b.mu.Lock()
	if b.finished || !b.began {
		b.mu.Unlock()
		return
	}
	b.scratch = AppendEventFrame(b.scratch[:0], e)
	b.record(&e, b.scratch)
	for s := range b.subs {
		s.push(b.scratch, true)
	}
	b.mu.Unlock()
}

// OnDispatch implements cpu.Listener.
func (b *Broadcaster) OnDispatch(t *sched.Thread, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Dispatch, Thread: t.Name, ThreadID: t.ID})
}

// OnCharge implements cpu.Listener.
func (b *Broadcaster) OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	b.event(trace.Event{At: now, Kind: trace.Charge, Thread: t.Name, ThreadID: t.ID, Used: used, Runnable: runnable})
}

// OnWake implements cpu.Listener.
func (b *Broadcaster) OnWake(t *sched.Thread, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Wake, Thread: t.Name, ThreadID: t.ID})
}

// OnBlock implements cpu.Listener.
func (b *Broadcaster) OnBlock(t *sched.Thread, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Block, Thread: t.Name, ThreadID: t.ID})
}

// OnExit implements cpu.Listener.
func (b *Broadcaster) OnExit(t *sched.Thread, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Exit, Thread: t.Name, ThreadID: t.ID})
}

// OnInterrupt implements cpu.Listener.
func (b *Broadcaster) OnInterrupt(now, service sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Interrupt, Service: service})
}

// OnIdle implements cpu.Listener.
func (b *Broadcaster) OnIdle(now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Idle})
}

// OnDispatchCore implements cpu.SMPListener.
func (b *Broadcaster) OnDispatchCore(core int, t *sched.Thread, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Dispatch, Thread: t.Name, ThreadID: t.ID, Core: core})
}

// OnChargeCore implements cpu.SMPListener.
func (b *Broadcaster) OnChargeCore(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	b.event(trace.Event{At: now, Kind: trace.Charge, Thread: t.Name, ThreadID: t.ID, Used: used, Runnable: runnable, Core: core})
}

// OnIdleCore implements cpu.SMPListener.
func (b *Broadcaster) OnIdleCore(core int, now sim.Time) {
	b.event(trace.Event{At: now, Kind: trace.Idle, Core: core})
}

// Subscriber is one consumer's bounded view of the stream. The producer
// appends encoded frames to a pending buffer; the consumer waits on
// Notify and drains with Take. Event frames that would overflow the
// buffer are counted and replaced by a single drop frame once space
// frees up — the producer never blocks on a slow consumer.
type Subscriber struct {
	mu      sync.Mutex
	buf     []byte
	max     int
	dropped uint64 // total events dropped, including not-yet-materialized
	pending uint64 // dropped events awaiting a drop frame
	closed  bool
	notify  chan struct{}
}

// push appends one encoded frame. droppable marks event frames — the
// only kind that may be discarded under pressure; control frames always
// go through, even past the cap, so the protocol stays coherent.
func (s *Subscriber) push(frame []byte, droppable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.pending > 0 {
		var scratch [16]byte
		drop := AppendDropFrame(scratch[:0], s.pending)
		if droppable && len(s.buf)+len(drop)+len(frame) > s.max {
			s.pending++
			s.dropped++
			return
		}
		s.buf = append(s.buf, drop...)
		s.pending = 0
	} else if droppable && len(s.buf)+len(frame) > s.max {
		s.pending = 1
		s.dropped++
		return
	}
	s.buf = append(s.buf, frame...)
	s.signal()
}

func (s *Subscriber) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Notify returns a channel that receives (at least) one token whenever
// pending bytes arrive or the subscriber closes.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// Take drains and returns all pending bytes (nil if none). The returned
// slice is owned by the caller.
func (s *Subscriber) Take() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return nil
	}
	out := s.buf
	s.buf = nil
	return out
}

// Dropped returns the total number of events this subscriber lost.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Closed reports whether the subscriber has been closed.
func (s *Subscriber) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close marks the subscriber closed and wakes any waiter. Pending bytes
// remain drainable via Take.
func (s *Subscriber) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.signal()
	}
	s.mu.Unlock()
}
