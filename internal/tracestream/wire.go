// Package tracestream turns the simulator's scheduling-event stream into
// a live service: a compact framed wire encoding of trace events, and a
// Broadcaster that fans the stream out to any number of subscribers
// through bounded per-subscriber buffers — a slow client gets a `dropped`
// gap marker, never backpressure into the engine.
package tracestream

import (
	"encoding/binary"
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/trace"
)

// The wire format is a sequence of length-prefixed frames:
//
//	uvarint(len(body)) || body
//	body = type byte || payload
//
// A stream opens with a header frame (magic + version + core count),
// usually followed by a threads frame describing every thread's position
// in the scheduling tree (events carry only thread IDs; the decoder
// resolves names through this table). Event frames then carry one
// scheduling event each; a drop frame marks a gap where a slow consumer
// lost events; an end frame closes a complete stream with the row count
// and the trace.Hasher digest of the whole run.
const (
	frameHeader  = 0x01
	frameThreads = 0x02
	frameEvent   = 0x03
	frameDrop    = 0x04
	frameEnd     = 0x05
)

// Exported frame-type values, for consumers switching on Frame.Type.
const (
	FrameHeader  = frameHeader
	FrameThreads = frameThreads
	FrameEvent   = frameEvent
	FrameDrop    = frameDrop
	FrameEnd     = frameEnd
)

// Magic opens every stream's header frame.
const Magic = "HSFQTS"

// Version is the wire format version this package encodes.
const Version = 1

// Decoder safety limits: a malformed or hostile stream can declare
// absurd lengths; the decoder rejects anything beyond these before
// allocating.
const (
	maxFrameLen  = 1 << 20
	maxThreads   = 1 << 15
	maxStringLen = 1 << 12
)

// kindCodes maps event kinds to their single-byte wire codes. Codes are
// part of the format: never renumber, only append.
var kindCodes = map[trace.Kind]byte{
	trace.Dispatch:  0,
	trace.Charge:    1,
	trace.Wake:      2,
	trace.Block:     3,
	trace.Exit:      4,
	trace.Interrupt: 5,
	trace.Idle:      6,
}

var codeKinds = func() map[byte]trace.Kind {
	m := make(map[byte]trace.Kind, len(kindCodes))
	for k, c := range kindCodes {
		m[c] = k
	}
	return m
}()

// appendFrame wraps a finished body in its length prefix.
func appendFrame(buf, body []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendHeaderFrame appends the stream-opening header frame.
func AppendHeaderFrame(buf []byte, numCores int) []byte {
	body := make([]byte, 0, 16)
	body = append(body, frameHeader)
	body = append(body, Magic...)
	body = append(body, Version)
	body = binary.AppendUvarint(body, uint64(numCores))
	return appendFrame(buf, body)
}

// AppendThreadsFrame appends the thread-metadata frame.
func AppendThreadsFrame(buf []byte, meta []trace.ThreadMeta) []byte {
	body := make([]byte, 0, 16+32*len(meta))
	body = append(body, frameThreads)
	body = binary.AppendUvarint(body, uint64(len(meta)))
	for _, m := range meta {
		body = binary.AppendUvarint(body, uint64(m.TID))
		body = binary.AppendUvarint(body, uint64(m.Depth))
		body = appendString(body, m.Name)
		body = appendString(body, m.Path)
	}
	return appendFrame(buf, body)
}

// AppendEventFrame appends one scheduling event. The thread name is not
// encoded — events carry only the TID, resolved against the threads
// frame on decode — so the frame stays a handful of bytes.
func AppendEventFrame(buf []byte, e trace.Event) []byte {
	var scratch [64]byte
	body := scratch[:0]
	body = append(body, frameEvent)
	code, ok := kindCodes[e.Kind]
	if !ok {
		code = 0xff // decoder rejects; must never happen for machine-fed events
	}
	body = append(body, code)
	body = binary.AppendUvarint(body, uint64(e.At))
	body = binary.AppendUvarint(body, uint64(e.ThreadID))
	body = binary.AppendUvarint(body, uint64(e.Used))
	if e.Runnable {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = binary.AppendUvarint(body, uint64(e.Service))
	body = binary.AppendUvarint(body, uint64(e.Core))
	return appendFrame(buf, body)
}

// AppendDropFrame appends a gap marker: count events were dropped here
// because the subscriber's buffer was full.
func AppendDropFrame(buf []byte, count uint64) []byte {
	var scratch [16]byte
	body := scratch[:0]
	body = append(body, frameDrop)
	body = binary.AppendUvarint(body, count)
	return appendFrame(buf, body)
}

// AppendEndFrame appends the stream-closing frame: total row count and
// the trace.Hasher hex digest of the complete run.
func AppendEndFrame(buf []byte, rows int, digest string) []byte {
	body := make([]byte, 0, 80)
	body = append(body, frameEnd)
	body = binary.AppendUvarint(body, uint64(rows))
	body = appendString(body, digest)
	return appendFrame(buf, body)
}

// Frame is one decoded wire frame. Type selects which fields are set.
type Frame struct {
	Type     byte
	Version  int
	NumCores int                // header
	Threads  []trace.ThreadMeta // threads
	Event    trace.Event        // event, Thread name resolved via the threads table
	Dropped  uint64             // drop
	Rows     uint64             // end
	Digest   string             // end
}

// Decoder incrementally decodes a frame stream. Feed it byte chunks in
// arrival order and call Next until it returns nil. The decoder carries
// the stream state (core count, TID→name table) across frames so event
// frames come back as fully resolved trace.Events. It is hardened
// against malformed input: any structural violation returns an error and
// no input can make it allocate unboundedly.
type Decoder struct {
	buf      []byte
	off      int
	numCores int
	names    map[int]string
	sawHdr   bool
	err      error
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{numCores: 1} }

// Feed appends a chunk of stream bytes.
func (d *Decoder) Feed(p []byte) {
	// Compact consumed bytes before growing.
	if d.off > 0 && d.off == len(d.buf) {
		d.buf = d.buf[:0]
		d.off = 0
	} else if d.off > 1<<16 {
		d.buf = append(d.buf[:0], d.buf[d.off:]...)
		d.off = 0
	}
	d.buf = append(d.buf, p...)
}

// NumCores returns the core count from the header frame (1 before one is
// seen) — the value to pass to trace.AppendRow for canonical row text.
func (d *Decoder) NumCores() int { return d.numCores }

// Next returns the next complete frame, nil if more input is needed, or
// an error for a malformed stream. After an error the decoder is stuck:
// every subsequent call returns the same error.
func (d *Decoder) Next() (*Frame, error) {
	if d.err != nil {
		return nil, d.err
	}
	f, err := d.next()
	if err != nil {
		d.err = err
	}
	return f, err
}

func (d *Decoder) next() (*Frame, error) {
	rest := d.buf[d.off:]
	n, sz := binary.Uvarint(rest)
	if sz == 0 {
		return nil, nil // need more bytes for the length prefix
	}
	if sz < 0 || n > maxFrameLen {
		return nil, fmt.Errorf("tracestream: frame length %d exceeds limit", n)
	}
	if len(rest) < sz+int(n) {
		return nil, nil // body not fully arrived
	}
	body := rest[sz : sz+int(n)]
	d.off += sz + int(n)
	if len(body) == 0 {
		return nil, fmt.Errorf("tracestream: empty frame")
	}
	f := &Frame{Type: body[0]}
	body = body[1:]
	switch f.Type {
	case frameHeader:
		return d.decodeHeader(f, body)
	case frameThreads:
		return d.decodeThreads(f, body)
	case frameEvent:
		return d.decodeEvent(f, body)
	case frameDrop:
		var ok bool
		if f.Dropped, body, ok = takeUvarint(body); !ok || len(body) != 0 {
			return nil, fmt.Errorf("tracestream: malformed drop frame")
		}
		return f, nil
	case frameEnd:
		var ok bool
		if f.Rows, body, ok = takeUvarint(body); !ok {
			return nil, fmt.Errorf("tracestream: malformed end frame")
		}
		if f.Digest, body, ok = takeString(body); !ok || len(body) != 0 {
			return nil, fmt.Errorf("tracestream: malformed end frame")
		}
		return f, nil
	default:
		return nil, fmt.Errorf("tracestream: unknown frame type 0x%02x", f.Type)
	}
}

func (d *Decoder) decodeHeader(f *Frame, body []byte) (*Frame, error) {
	if len(body) < len(Magic)+1 || string(body[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("tracestream: bad magic")
	}
	f.Version = int(body[len(Magic)])
	if f.Version != Version {
		return nil, fmt.Errorf("tracestream: unsupported version %d", f.Version)
	}
	cores, rest, ok := takeUvarint(body[len(Magic)+1:])
	if !ok || len(rest) != 0 || cores == 0 || cores > 1<<12 {
		return nil, fmt.Errorf("tracestream: malformed header frame")
	}
	f.NumCores = int(cores)
	d.numCores = f.NumCores
	d.sawHdr = true
	return f, nil
}

func (d *Decoder) decodeThreads(f *Frame, body []byte) (*Frame, error) {
	count, body, ok := takeUvarint(body)
	if !ok || count > maxThreads {
		return nil, fmt.Errorf("tracestream: malformed threads frame")
	}
	if d.names == nil {
		d.names = make(map[int]string, count)
	}
	f.Threads = make([]trace.ThreadMeta, 0, count)
	for i := uint64(0); i < count; i++ {
		var m trace.ThreadMeta
		var tid, depth uint64
		if tid, body, ok = takeUvarint(body); !ok {
			return nil, fmt.Errorf("tracestream: malformed threads frame")
		}
		if depth, body, ok = takeUvarint(body); !ok {
			return nil, fmt.Errorf("tracestream: malformed threads frame")
		}
		if m.Name, body, ok = takeString(body); !ok {
			return nil, fmt.Errorf("tracestream: malformed threads frame")
		}
		if m.Path, body, ok = takeString(body); !ok {
			return nil, fmt.Errorf("tracestream: malformed threads frame")
		}
		m.TID = int(tid)
		m.Depth = int(depth)
		f.Threads = append(f.Threads, m)
		d.names[m.TID] = m.Name
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("tracestream: trailing bytes in threads frame")
	}
	return f, nil
}

func (d *Decoder) decodeEvent(f *Frame, body []byte) (*Frame, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	kind, ok := codeKinds[body[0]]
	if !ok {
		return nil, fmt.Errorf("tracestream: unknown event kind 0x%02x", body[0])
	}
	body = body[1:]
	var at, tid, used, service, core uint64
	if at, body, ok = takeUvarint(body); !ok {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	if tid, body, ok = takeUvarint(body); !ok {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	if used, body, ok = takeUvarint(body); !ok {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	if len(body) < 1 || body[0] > 1 {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	runnable := body[0] == 1
	body = body[1:]
	if service, body, ok = takeUvarint(body); !ok {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	if core, body, ok = takeUvarint(body); !ok || len(body) != 0 {
		return nil, fmt.Errorf("tracestream: malformed event frame")
	}
	f.Event = trace.Event{
		At:       sim.Time(at),
		Kind:     kind,
		ThreadID: int(tid),
		Used:     sched.Work(used),
		Runnable: runnable,
		Service:  sim.Time(service),
		Core:     int(core),
	}
	if tid != 0 {
		f.Event.Thread = d.names[int(tid)]
	}
	return f, nil
}

func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

func takeString(b []byte) (string, []byte, bool) {
	n, b, ok := takeUvarint(b)
	if !ok || n > maxStringLen || uint64(len(b)) < n {
		return "", b, false
	}
	return string(b[:n]), b[n:], true
}
