// Package testutil holds small helpers shared by the repo's tests and
// smoke harnesses. It is ordinary (non-test) code so the cmd/ smoke
// binaries can import it too.
package testutil

import (
	"bytes"
	"fmt"
)

// DiffBytes compares two byte buffers that are expected to be identical —
// trace CSVs, sweep JSONL, HTTP response bodies — and reports the first
// difference line by line. It returns "" when the buffers are equal.
//
// Byte-for-byte equality of line-oriented output is this repo's standard
// determinism check, and "outputs differ" alone is useless for debugging
// a multi-megabyte trace; every comparison site wants the same thing:
// which line, and what each side said.
func DiffBytes(got, want []byte) string {
	if bytes.Equal(got, want) {
		return ""
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("equal through line %d, then lengths differ: got %d line(s) (%d bytes), want %d line(s) (%d bytes)",
		n, len(gl), len(got), len(wl), len(want))
}
