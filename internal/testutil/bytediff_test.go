package testutil

import (
	"strings"
	"testing"
)

func TestDiffBytesEqual(t *testing.T) {
	if d := DiffBytes([]byte("a\nb\n"), []byte("a\nb\n")); d != "" {
		t.Errorf("equal buffers reported: %q", d)
	}
	if d := DiffBytes(nil, nil); d != "" {
		t.Errorf("nil buffers reported: %q", d)
	}
}

func TestDiffBytesLine(t *testing.T) {
	d := DiffBytes([]byte("a\nX\nc\n"), []byte("a\nb\nc\n"))
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "X") || !strings.Contains(d, "b") {
		t.Errorf("diff = %q", d)
	}
}

func TestDiffBytesLength(t *testing.T) {
	d := DiffBytes([]byte("a\nb\nextra"), []byte("a\nb"))
	if !strings.Contains(d, "lengths differ") {
		t.Errorf("diff = %q", d)
	}
}
