package qosmgr

import (
	"errors"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func TestMoveBetweenClasses(t *testing.T) {
	m := newManager(t)
	th := sched1(t)

	// Start in best effort.
	if err := m.AdmitBestEffort(th, "alice"); err != nil {
		t.Fatal(err)
	}
	// Promote to soft.
	if err := m.MoveToSoft(th, msWork(10), 100*sim.Millisecond); err != nil {
		t.Fatalf("to soft: %v", err)
	}
	if m.structure.LeafOf(th).ID() != m.ClassNode(SoftRealTime) {
		t.Fatal("not in soft leaf")
	}
	// Promote to hard.
	if err := m.MoveToHard(th, msWork(5), 100*sim.Millisecond); err != nil {
		t.Fatalf("to hard: %v", err)
	}
	if m.structure.LeafOf(th).ID() != m.ClassNode(HardRealTime) {
		t.Fatal("not in hard leaf")
	}
	if len(m.softRes) != 0 {
		t.Error("soft reservation not released on promotion")
	}
	// Demote back to best effort: reservation released.
	if err := m.MoveToBestEffort(th, "alice"); err != nil {
		t.Fatalf("to best effort: %v", err)
	}
	if len(m.hardRes) != 0 {
		t.Error("hard reservation not released on demotion")
	}
	if u := m.hardUtilization(nil); u != 0 {
		t.Errorf("hard utilization %v after demotion", u)
	}
}

func TestMoveRefusalRestores(t *testing.T) {
	m := newManager(t)
	th := sched1(t)
	if err := m.AdmitSoft(th, msWork(10), 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A hard reservation needing 200% of the hard class is refused; the
	// thread must keep its soft placement and reservation.
	if err := m.MoveToHard(th, msWork(20), 100*sim.Millisecond); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err %v", err)
	}
	if m.structure.LeafOf(th).ID() != m.ClassNode(SoftRealTime) {
		t.Error("thread lost its placement on refused move")
	}
	if len(m.softRes) != 1 {
		t.Error("soft reservation lost on refused move")
	}
}

func TestMoveUnknownThread(t *testing.T) {
	m := newManager(t)
	th := sched1(t)
	if err := m.MoveToBestEffort(th, "x"); !errors.Is(err, ErrUnknown) {
		t.Errorf("err %v", err)
	}
}

func sched1(t *testing.T) *sched.Thread {
	t.Helper()
	return sched.NewThread(1, "app", 1)
}

func TestHardPolicyRM(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultRate)
	cfg.HardPolicy = "rm"
	m, err := New(core.NewStructure(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.HardLeaf().Name() != "rm" {
		t.Fatalf("hard leaf %q", m.HardLeaf().Name())
	}
	// Hard class: 10% of 100 MIPS = 10 MIPS. A harmonic pair at class
	// utilization ~0.85 passes RTA (with the 2-quantum margin) even
	// though it is above the n=2 Liu-Layland bound (0.828):
	// task1: 4ms CPU / 100ms = 40ms class time per 100ms (u=0.4)
	// task2: 3.6ms CPU / 200ms = 36ms class time per 200ms (u=0.18)...
	t1 := sched.NewThread(1, "t1", 1)
	if err := m.AdmitHard(t1, msWork(4), 100*sim.Millisecond); err != nil {
		t.Fatalf("t1: %v", err)
	}
	t2 := sched.NewThread(2, "t2", 1)
	if err := m.AdmitHard(t2, msWork(7), 200*sim.Millisecond); err != nil {
		t.Fatalf("t2 (R=40+70+40=150ms <= 200-20): %v", err)
	}
	// A third task pushing response times past the margin is refused.
	t3 := sched.NewThread(3, "t3", 1)
	if err := m.AdmitHard(t3, msWork(5), 200*sim.Millisecond); !errors.Is(err, ErrAdmission) {
		t.Fatalf("t3 err = %v, want admission denial", err)
	}
}

func TestHardPolicyValidation(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultRate)
	cfg.HardPolicy = "bogus"
	if _, err := New(core.NewStructure(), cfg); err == nil {
		t.Error("bogus hard policy accepted")
	}
}
