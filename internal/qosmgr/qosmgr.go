// Package qosmgr implements the Quality of Service manager the paper
// envisions in front of the hierarchical scheduler (§4, Fig. 4): it
// creates the class partitions, runs class-dependent admission control —
// deterministic for hard real-time, statistical for soft real-time, none
// for best effort — places applications into leaves, and dynamically
// adjusts class weights as the mix of applications changes.
package qosmgr

import (
	"errors"
	"fmt"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Class identifies the three top-level application classes of the paper's
// example structure (Fig. 2).
type Class int

// Application classes.
const (
	HardRealTime Class = iota
	SoftRealTime
	BestEffort
)

func (c Class) String() string {
	switch c {
	case HardRealTime:
		return "hard-real-time"
	case SoftRealTime:
		return "soft-real-time"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Errors returned by admission control.
var (
	ErrAdmission = errors.New("qosmgr: admission denied")
	ErrUnknown   = errors.New("qosmgr: unknown thread")
)

// Config parameterizes the manager.
type Config struct {
	// Rate is the CPU speed the reservations are made against.
	Rate cpu.Rate
	// HardWeight, SoftWeight, BestEffortWeight partition the root. The
	// paper's Fig. 2 example uses 1:3:6.
	HardWeight, SoftWeight, BestEffortWeight float64
	// Overbook is the factor by which the soft real-time class may be
	// oversubscribed on *mean* demand (§1: "to efficiently utilize CPU, an
	// operating system will be required to over-book CPU bandwidth").
	// 1.0 means no overbooking; 1.5 admits 50% more mean demand than the
	// class's guaranteed bandwidth.
	Overbook float64
	// Quantum is the leaf scheduling quantum.
	Quantum sim.Time
	// HardPolicy selects the hard class's scheduler and admission test:
	// "edf" (default; utilization bound, exact for EDF) or "rm" (Rate
	// Monotonic with exact response-time analysis). Both tests run
	// against the class's guaranteed rate — the fluid approximation —
	// with a safety margin of two quanta on RM response times to absorb
	// the hierarchy's Eq. 8 scheduling delay.
	HardPolicy string
}

// DefaultConfig mirrors the paper's example: weights 1:3:6, 30%
// overbooking for soft real-time, 10 ms quanta.
func DefaultConfig(rate cpu.Rate) Config {
	return Config{
		Rate:             rate,
		HardWeight:       1,
		SoftWeight:       3,
		BestEffortWeight: 6,
		Overbook:         1.3,
		Quantum:          10 * sim.Millisecond,
	}
}

// reservation records an admitted real-time task's demand.
type reservation struct {
	cost   sched.Work
	period sim.Time
}

// Manager is the QoS manager.
type Manager struct {
	cfg       Config
	structure *core.Structure
	hardID    core.NodeID
	softID    core.NodeID
	beID      core.NodeID
	hardLeaf  sched.Scheduler
	softLeaf  *sched.SFQ
	users     map[string]core.NodeID
	hardRes   map[*sched.Thread]reservation
	softRes   map[*sched.Thread]reservation
}

// New builds the class partitions inside structure and returns the
// manager. The structure must not already contain nodes named
// "hard-real-time", "soft-real-time", or "best-effort" at the root.
func New(structure *core.Structure, cfg Config) (*Manager, error) {
	if cfg.Rate <= 0 || cfg.HardWeight <= 0 || cfg.SoftWeight <= 0 || cfg.BestEffortWeight <= 0 {
		return nil, fmt.Errorf("qosmgr: invalid config %+v", cfg)
	}
	if cfg.Overbook < 1 {
		return nil, fmt.Errorf("qosmgr: overbook factor %v below 1", cfg.Overbook)
	}
	var hardLeaf sched.Scheduler
	switch cfg.HardPolicy {
	case "", "edf":
		cfg.HardPolicy = "edf"
		hardLeaf = sched.NewEDF(cfg.Quantum)
	case "rm":
		hardLeaf = sched.NewRM(cfg.Quantum)
	default:
		return nil, fmt.Errorf("qosmgr: unknown hard policy %q", cfg.HardPolicy)
	}
	softLeaf := sched.NewSFQ(cfg.Quantum)
	hardID, err := structure.Mknod("hard-real-time", core.RootID, cfg.HardWeight, hardLeaf)
	if err != nil {
		return nil, err
	}
	softID, err := structure.Mknod("soft-real-time", core.RootID, cfg.SoftWeight, softLeaf)
	if err != nil {
		return nil, err
	}
	beID, err := structure.Mknod("best-effort", core.RootID, cfg.BestEffortWeight, nil)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:       cfg,
		structure: structure,
		hardID:    hardID,
		softID:    softID,
		beID:      beID,
		hardLeaf:  hardLeaf,
		softLeaf:  softLeaf,
		users:     make(map[string]core.NodeID),
		hardRes:   make(map[*sched.Thread]reservation),
		softRes:   make(map[*sched.Thread]reservation),
	}, nil
}

// Structure returns the managed scheduling structure.
func (m *Manager) Structure() *core.Structure { return m.structure }

// ClassNode returns the node id of a class partition.
func (m *Manager) ClassNode(c Class) core.NodeID {
	switch c {
	case HardRealTime:
		return m.hardID
	case SoftRealTime:
		return m.softID
	default:
		return m.beID
	}
}

// classRate returns the CPU bandwidth (instructions/second) guaranteed to
// a class under the current weights.
func (m *Manager) classRate(id core.NodeID) float64 {
	frac, err := m.structure.Bandwidth(id)
	if err != nil {
		panic(err)
	}
	return frac * float64(m.cfg.Rate)
}

// hardAdmissible runs the configured deterministic admission test with
// the candidate reservation included.
func (m *Manager) hardAdmissible(extra *reservation) error {
	if m.cfg.HardPolicy == "rm" {
		compute, period := m.hardTaskSet(extra)
		margin := 2 * m.cfg.Quantum
		resp, ok := sched.ResponseTimesRM(compute, period)
		if !ok {
			return fmt.Errorf("%w: RM response-time analysis diverged", ErrAdmission)
		}
		for i, r := range resp {
			if r+margin > period[i] {
				return fmt.Errorf("%w: RM response time %v + margin %v exceeds period %v",
					ErrAdmission, r, margin, period[i])
			}
		}
		return nil
	}
	if u := m.hardUtilization(extra); u > 1 {
		return fmt.Errorf("%w: hard class utilization would be %.2f", ErrAdmission, u)
	}
	return nil
}

// hardTaskSet renders the admitted reservations (plus the candidate) as
// compute times at the class's guaranteed rate, for response-time
// analysis.
func (m *Manager) hardTaskSet(extra *reservation) (compute, period []sim.Time) {
	rate := m.classRate(m.hardID)
	add := func(r reservation) {
		c := sim.Time(float64(r.cost) / rate * float64(sim.Second))
		if c < 1 {
			c = 1
		}
		compute = append(compute, c)
		period = append(period, r.period)
	}
	for _, r := range m.hardRes {
		add(r)
	}
	if extra != nil {
		add(*extra)
	}
	return compute, period
}

// hardUtilization returns the demand of admitted hard tasks plus the
// candidate, as a fraction of the hard class's guaranteed rate.
func (m *Manager) hardUtilization(extra *reservation) float64 {
	rate := m.classRate(m.hardID)
	u := 0.0
	add := func(r reservation) {
		u += float64(r.cost) / r.period.Seconds() / rate
	}
	for _, r := range m.hardRes {
		add(r)
	}
	if extra != nil {
		add(*extra)
	}
	return u
}

// softDemand returns the mean demand of admitted soft tasks plus the
// candidate, in instructions/second.
func (m *Manager) softDemand(extra *reservation) float64 {
	d := 0.0
	add := func(r reservation) {
		d += float64(r.cost) / r.period.Seconds()
	}
	for _, r := range m.softRes {
		add(r)
	}
	if extra != nil {
		add(*extra)
	}
	return d
}

// AdmitHard admits a periodic hard real-time task needing cost
// instructions every period, using the deterministic test of the
// configured hard policy against the class's guaranteed bandwidth: the
// EDF utilization bound (u <= 1), or exact RM response-time analysis.
func (m *Manager) AdmitHard(t *sched.Thread, cost sched.Work, period sim.Time) error {
	if cost <= 0 || period <= 0 {
		return fmt.Errorf("qosmgr: invalid hard reservation cost=%d period=%v", cost, period)
	}
	cand := reservation{cost: cost, period: period}
	if err := m.hardAdmissible(&cand); err != nil {
		return err
	}
	t.Period = period
	if err := m.structure.Attach(t, m.hardID); err != nil {
		return err
	}
	m.hardRes[t] = cand
	return nil
}

// AdmitSoft admits a soft real-time task by statistical admission
// control: the sum of *mean* demands may exceed the class's guaranteed
// rate by at most the overbooking factor. Weight is the share the task
// gets within the class.
func (m *Manager) AdmitSoft(t *sched.Thread, meanCost sched.Work, period sim.Time) error {
	if meanCost <= 0 || period <= 0 {
		return fmt.Errorf("qosmgr: invalid soft reservation cost=%d period=%v", meanCost, period)
	}
	cand := reservation{cost: meanCost, period: period}
	budget := m.cfg.Overbook * m.classRate(m.softID)
	if d := m.softDemand(&cand); d > budget {
		return fmt.Errorf("%w: soft class mean demand %.3g would exceed budget %.3g", ErrAdmission, d, budget)
	}
	if err := m.structure.Attach(t, m.softID); err != nil {
		return err
	}
	m.softRes[t] = cand
	return nil
}

// AdmitBestEffort places a task in the named user's best-effort leaf,
// creating the leaf (weight 1, SFQ) on first use. Best effort is never
// denied (§1: "the QoS manager would not deny the request").
func (m *Manager) AdmitBestEffort(t *sched.Thread, user string) error {
	id, ok := m.users[user]
	if !ok {
		var err error
		id, err = m.structure.Mknod(user, m.beID, 1, sched.NewSFQ(m.cfg.Quantum))
		if err != nil {
			return err
		}
		m.users[user] = id
	}
	return m.structure.Attach(t, id)
}

// Release removes a task's reservation and detaches it. The thread must
// be blocked or exited.
func (m *Manager) Release(t *sched.Thread) error {
	if err := m.structure.Detach(t); err != nil {
		return err
	}
	delete(m.hardRes, t)
	delete(m.softRes, t)
	return nil
}

// SetClassWeight changes a class partition's weight, re-validating that
// admitted hard guarantees still hold (a shrink that would break them is
// refused).
func (m *Manager) SetClassWeight(c Class, weight float64) error {
	id := m.ClassNode(c)
	old, err := m.structure.NodeWeightOf(id)
	if err != nil {
		return err
	}
	if err := m.structure.SetNodeWeight(id, weight); err != nil {
		return err
	}
	if err := m.hardAdmissible(nil); err != nil {
		// Roll back: the change would violate hard guarantees.
		if rbErr := m.structure.SetNodeWeight(id, old); rbErr != nil {
			panic(rbErr)
		}
		return fmt.Errorf("weight change rejected: %w", err)
	}
	return nil
}

// GrowSoft implements the paper's motivating policy: "initially soft
// real-time applications may be allocated very small fraction of the CPU,
// but when many video decoders ... are started, the allocation of soft
// real-time class may be increased significantly". It raises the soft
// class weight until the pending reservation fits, while keeping the
// best-effort class at or above minBestEffortShare of the root and hard
// guarantees intact. It returns the weight chosen.
func (m *Manager) GrowSoft(pending reservation, minBestEffortShare float64) (float64, error) {
	if minBestEffortShare < 0 || minBestEffortShare >= 1 {
		return 0, fmt.Errorf("qosmgr: bad best-effort floor %v", minBestEffortShare)
	}
	orig, err := m.structure.NodeWeightOf(m.softID)
	if err != nil {
		return 0, err
	}
	w := orig
	for i := 0; i < 64; i++ {
		budget := m.cfg.Overbook * m.classRate(m.softID)
		if m.softDemand(&pending) <= budget {
			return w, nil
		}
		w *= 1.5
		if err := m.SetClassWeight(SoftRealTime, w); err != nil {
			break
		}
		if frac, err := m.structure.Bandwidth(m.beID); err != nil || frac < minBestEffortShare {
			break
		}
	}
	// Could not satisfy: restore and refuse.
	if err := m.SetClassWeight(SoftRealTime, orig); err != nil {
		panic(err)
	}
	return orig, fmt.Errorf("%w: cannot grow soft class without starving best effort", ErrAdmission)
}

// TryAdmitSoftGrowing admits a soft task, growing the soft class (within
// the best-effort floor) if needed.
func (m *Manager) TryAdmitSoftGrowing(t *sched.Thread, meanCost sched.Work, period sim.Time, minBestEffortShare float64) error {
	if err := m.AdmitSoft(t, meanCost, period); err == nil {
		return nil
	}
	if _, err := m.GrowSoft(reservation{cost: meanCost, period: period}, minBestEffortShare); err != nil {
		return err
	}
	return m.AdmitSoft(t, meanCost, period)
}

// HardLeaf returns the hard class's scheduler (EDF or RM per HardPolicy).
func (m *Manager) HardLeaf() sched.Scheduler { return m.hardLeaf }

// SoftLeaf returns the soft class's SFQ scheduler.
func (m *Manager) SoftLeaf() *sched.SFQ { return m.softLeaf }

// UserLeaf returns the node id of a best-effort user's leaf, if present.
func (m *Manager) UserLeaf(user string) (core.NodeID, bool) {
	id, ok := m.users[user]
	return id, ok
}
