package qosmgr

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// This file implements the paper's class mobility: "The QoS manager may
// also move applications between classes or change the resource
// allocation in response to change in QoS requirements" (§4). A move
// re-runs the destination class's admission control; on refusal the
// thread stays where it was, reservation intact. The thread must be
// blocked, as for Structure.Move.

// release undoes t's current placement and returns a restore function.
func (m *Manager) release(t *sched.Thread) (restore func(), err error) {
	from := m.structure.LeafOf(t)
	if from == nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknown, t)
	}
	oldHard, hadHard := m.hardRes[t]
	oldSoft, hadSoft := m.softRes[t]
	if err := m.Release(t); err != nil {
		return nil, err
	}
	return func() {
		if err := m.structure.Attach(t, from.ID()); err != nil {
			panic(fmt.Sprintf("qosmgr: cannot restore %v: %v", t, err))
		}
		if hadHard {
			m.hardRes[t] = oldHard
		}
		if hadSoft {
			m.softRes[t] = oldSoft
		}
	}, nil
}

// MoveToHard re-homes a blocked thread into the hard real-time class
// under a fresh deterministic reservation.
func (m *Manager) MoveToHard(t *sched.Thread, cost sched.Work, period sim.Time) error {
	restore, err := m.release(t)
	if err != nil {
		return err
	}
	if err := m.AdmitHard(t, cost, period); err != nil {
		restore()
		return err
	}
	return nil
}

// MoveToSoft re-homes a blocked thread into the soft real-time class
// under a fresh statistical reservation.
func (m *Manager) MoveToSoft(t *sched.Thread, meanCost sched.Work, period sim.Time) error {
	restore, err := m.release(t)
	if err != nil {
		return err
	}
	if err := m.AdmitSoft(t, meanCost, period); err != nil {
		restore()
		return err
	}
	return nil
}

// MoveToBestEffort drops a thread's reservation and re-homes it into the
// named user's best-effort leaf. Best effort never refuses, so this
// always succeeds for a managed, blocked thread.
func (m *Manager) MoveToBestEffort(t *sched.Thread, user string) error {
	restore, err := m.release(t)
	if err != nil {
		return err
	}
	if err := m.AdmitBestEffort(t, user); err != nil {
		restore()
		return err
	}
	return nil
}
