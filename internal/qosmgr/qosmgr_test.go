package qosmgr

import (
	"errors"
	"math"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(core.NewStructure(), DefaultConfig(cpu.DefaultRate))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func msWork(ms int64) sched.Work { return sched.Work(ms * int64(cpu.DefaultRate) / 1000) }

func TestManagerBuildsFig2Shape(t *testing.T) {
	m := newManager(t)
	s := m.Structure()
	for _, c := range []Class{HardRealTime, SoftRealTime, BestEffort} {
		id := m.ClassNode(c)
		if s.Node(id) == nil {
			t.Fatalf("class %v has no node", c)
		}
	}
	// Weights 1:3:6 give bandwidth 0.1 / 0.3 / 0.6.
	for _, tc := range []struct {
		c    Class
		want float64
	}{{HardRealTime, 0.1}, {SoftRealTime, 0.3}, {BestEffort, 0.6}} {
		bw, err := s.Bandwidth(m.ClassNode(tc.c))
		if err != nil || math.Abs(bw-tc.want) > 1e-9 {
			t.Errorf("%v bandwidth %v, want %v", tc.c, bw, tc.want)
		}
	}
	if HardRealTime.String() != "hard-real-time" || Class(42).String() == "" {
		t.Error("class names wrong")
	}
}

func TestAdmitHardDeterministic(t *testing.T) {
	m := newManager(t)
	// Hard class: 10% of 100 MIPS = 10 MIPS budget.
	// Task: 5 ms every 100 ms at 100 MIPS = 5 MIPS demand (u=0.5).
	t1 := sched.NewThread(1, "rt1", 1)
	if err := m.AdmitHard(t1, msWork(5), 100*sim.Millisecond); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if t1.Period != 100*sim.Millisecond {
		t.Error("period not set on admitted thread")
	}
	// Second identical task fills the class exactly (u=1.0).
	t2 := sched.NewThread(2, "rt2", 1)
	if err := m.AdmitHard(t2, msWork(5), 100*sim.Millisecond); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	// A third must be refused.
	t3 := sched.NewThread(3, "rt3", 1)
	if err := m.AdmitHard(t3, msWork(5), 100*sim.Millisecond); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third admit err = %v, want admission denial", err)
	}
	// Releasing one frees capacity.
	if err := m.Release(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.AdmitHard(t3, msWork(5), 100*sim.Millisecond); err != nil {
		t.Errorf("admit after release: %v", err)
	}
	// Bad reservations rejected.
	if err := m.AdmitHard(sched.NewThread(9, "x", 1), 0, sim.Second); err == nil {
		t.Error("zero cost accepted")
	}
}

func TestAdmitSoftStatisticalOverbooking(t *testing.T) {
	m := newManager(t)
	// Soft class: 30% of 100 MIPS = 30 MIPS; overbook 1.3 -> 39 MIPS of
	// mean demand allowed.
	mk := func(id int) *sched.Thread { return sched.NewThread(id, "dec", 1) }
	// Each decoder: mean 12 ms per 33 ms frame at 100 MIPS = ~36.4% of
	// the CPU... use 10 ms per 100 ms = 10 MIPS each.
	for i := 0; i < 3; i++ {
		if err := m.AdmitSoft(mk(i+1), msWork(10), 100*sim.Millisecond); err != nil {
			t.Fatalf("decoder %d refused: %v", i, err)
		}
	}
	// Total now 30 MIPS; a 10 MIPS fourth would hit 40 > 39: refused.
	if err := m.AdmitSoft(mk(4), msWork(10), 100*sim.Millisecond); !errors.Is(err, ErrAdmission) {
		t.Fatalf("overbooked admit err = %v", err)
	}
	// But an 8 MIPS one fits (38 <= 39): overbooking beyond guaranteed
	// 30 MIPS is the point.
	if err := m.AdmitSoft(mk(5), msWork(8), 100*sim.Millisecond); err != nil {
		t.Errorf("within-overbook admit refused: %v", err)
	}
}

func TestAdmitBestEffortNeverDenied(t *testing.T) {
	m := newManager(t)
	for i := 0; i < 50; i++ {
		th := sched.NewThread(i+1, "be", 1)
		user := "alice"
		if i%2 == 1 {
			user = "bob"
		}
		if err := m.AdmitBestEffort(th, user); err != nil {
			t.Fatalf("best effort denied: %v", err)
		}
	}
	if _, ok := m.UserLeaf("alice"); !ok {
		t.Error("alice's leaf missing")
	}
	if _, ok := m.UserLeaf("carol"); ok {
		t.Error("phantom leaf")
	}
	aliceID, _ := m.UserLeaf("alice")
	ts, err := m.Structure().Threads(aliceID)
	if err != nil || len(ts) != 25 {
		t.Errorf("alice has %d threads (%v)", len(ts), err)
	}
}

func TestSetClassWeightProtectsHardGuarantees(t *testing.T) {
	m := newManager(t)
	// Fill hard class to u=1.0 at its 10% share.
	th := sched.NewThread(1, "rt", 1)
	if err := m.AdmitHard(th, msWork(10), 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Shrinking hard's weight would break the guarantee: refused and
	// rolled back.
	if err := m.SetClassWeight(HardRealTime, 0.5); !errors.Is(err, ErrAdmission) {
		t.Fatalf("weight shrink err = %v", err)
	}
	if w, _ := m.Structure().NodeWeightOf(m.ClassNode(HardRealTime)); w != 1 {
		t.Errorf("weight not rolled back: %v", w)
	}
	// Growing best-effort also shrinks hard's share: refused too.
	if err := m.SetClassWeight(BestEffort, 60); !errors.Is(err, ErrAdmission) {
		t.Errorf("best-effort growth err = %v", err)
	}
	// Growing hard is fine.
	if err := m.SetClassWeight(HardRealTime, 2); err != nil {
		t.Errorf("grow hard: %v", err)
	}
}

func TestGrowSoftPolicy(t *testing.T) {
	m := newManager(t)
	// Demand 50 MIPS of soft work: doesn't fit in 39; the manager must
	// grow the soft class, keeping best-effort at >= 20%.
	th := sched.NewThread(1, "conf", 1)
	if err := m.TryAdmitSoftGrowing(th, msWork(50), 100*sim.Millisecond, 0.2); err != nil {
		t.Fatalf("growing admit failed: %v", err)
	}
	bw, _ := m.Structure().Bandwidth(m.ClassNode(SoftRealTime))
	if bw*float64(cpu.DefaultRate)*m.cfg.Overbook < 50e6 {
		t.Errorf("soft budget still too small: bw=%v", bw)
	}
	if bwBE, _ := m.Structure().Bandwidth(m.ClassNode(BestEffort)); bwBE < 0.2 {
		t.Errorf("best effort starved: %v", bwBE)
	}
	// An absurd demand cannot be satisfied within the floor: refused,
	// weights restored.
	before, _ := m.Structure().NodeWeightOf(m.ClassNode(SoftRealTime))
	th2 := sched.NewThread(2, "huge", 1)
	if err := m.TryAdmitSoftGrowing(th2, msWork(10000), 100*sim.Millisecond, 0.2); !errors.Is(err, ErrAdmission) {
		t.Fatalf("absurd demand err = %v", err)
	}
	after, _ := m.Structure().NodeWeightOf(m.ClassNode(SoftRealTime))
	if before != after {
		t.Errorf("weights not restored: %v -> %v", before, after)
	}
}

func TestManagerEndToEndSchedules(t *testing.T) {
	// Full integration: admitted threads actually run under the machine
	// with the promised proportions.
	s := core.NewStructure()
	mgr, err := New(s, DefaultConfig(cpu.DefaultRate))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, cpu.DefaultRate, s)

	hard := sched.NewThread(1, "hard", 1)
	if err := mgr.AdmitHard(hard, msWork(5), 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	m.Add(hard, cpu.Forever(cpu.Compute(msWork(5)), cpu.Sleep(95*sim.Millisecond)), 0)

	soft := sched.NewThread(2, "soft", 1)
	if err := mgr.AdmitSoft(soft, msWork(20), 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	m.Add(soft, cpu.Forever(cpu.Compute(1_000_000)), 0)

	be := sched.NewThread(3, "be", 1)
	if err := mgr.AdmitBestEffort(be, "alice"); err != nil {
		t.Fatal(err)
	}
	m.Add(be, cpu.Forever(cpu.Compute(1_000_000)), 0)

	m.Run(10 * sim.Second)
	// Hard gets what it asked for (5%); residual splits 3:6 between soft
	// and best-effort.
	hardShare := float64(hard.Done) / float64(m.Stats().Work)
	softShare := float64(soft.Done) / float64(m.Stats().Work)
	beShare := float64(be.Done) / float64(m.Stats().Work)
	if math.Abs(hardShare-0.05) > 0.01 {
		t.Errorf("hard share %.3f", hardShare)
	}
	if r := beShare / softShare; math.Abs(r-2) > 0.1 {
		t.Errorf("best-effort:soft = %.3f, want 2", r)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(core.NewStructure(), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig(cpu.DefaultRate)
	cfg.Overbook = 0.5
	if _, err := New(core.NewStructure(), cfg); err == nil {
		t.Error("overbook < 1 accepted")
	}
	// Duplicate class nodes refused.
	s := core.NewStructure()
	if _, err := New(s, DefaultConfig(cpu.DefaultRate)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, DefaultConfig(cpu.DefaultRate)); err == nil {
		t.Error("second manager on same structure accepted")
	}
}
