package sim

import (
	"fmt"
	"sort"
)

// EventQueue is the engine's pluggable pending-event store. The engine
// owns event handles and their pooling; a queue only orders them.
//
// The ordering contract: Pop and Min select the event that HeapLess
// ranks first — strictly ascending At, and among events at the same
// instant, strictly ascending Seq. Because At panics on past times and
// AtSeq forbids reused sequence numbers, (At, Seq) is a strict total
// order, so the minimum is unique and every conforming implementation
// yields the identical pop sequence for the identical push sequence.
// That equivalence is what keeps simulation output independent of the
// queue choice; TestEventQueueDifferential and FuzzEventQueueDiff pin it
// between the heap and the timing wheel.
//
// Push may assume the event's At is not below the time of the last event
// popped (the engine's clock only moves forward, and it validates At
// against the clock before pushing). Pop and Min panic on an empty
// queue, like indexing a slice out of range; callers gate on Len. An
// implementation must maintain the event's intrusive index field
// (HeapIndex): any non-negative value while queued, -1 once popped or
// removed — Event.Cancelled and Engine.Cancel read it.
type EventQueue interface {
	// Push adds a detached event to the queue.
	Push(*Event)
	// Pop removes and returns the (At, Seq)-minimal event.
	Pop() *Event
	// Min returns the (At, Seq)-minimal event without removing it.
	Min() *Event
	// Remove detaches a currently queued event (cancellation). Calling
	// it with an event that is not queued is a bug in the caller.
	Remove(*Event)
	// Len returns the number of queued events.
	Len() int
}

// timeResetter is implemented by queues that anchor their bucket math to
// a notion of current time; Engine.Reset re-anchors them after forcing
// the clock (checkpoint restore), once the queue has been drained.
type timeResetter interface {
	resetTime(now Time)
}

// eventQueues registers the queue implementations by config name.
var eventQueues = map[string]func() EventQueue{
	"heap":  func() EventQueue { return new(heapQueue) },
	"wheel": func() EventQueue { return NewWheel() },
}

// NewEventQueue constructs a queue implementation by name. The empty
// name selects the default binary heap; unknown names are an error (the
// config layer reports them with a field path, so this is the single
// source of truth for what exists).
func NewEventQueue(kind string) (EventQueue, error) {
	if kind == "" {
		kind = "heap"
	}
	mk, ok := eventQueues[kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown event queue %q (have %v)", kind, EventQueueNames())
	}
	return mk(), nil
}

// KnownEventQueue reports whether kind names a registered queue
// implementation. The empty string is known: it means the default.
func KnownEventQueue(kind string) bool {
	if kind == "" {
		return true
	}
	_, ok := eventQueues[kind]
	return ok
}

// EventQueueNames returns the registered queue names, sorted.
func EventQueueNames() []string {
	names := make([]string, 0, len(eventQueues))
	for name := range eventQueues {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// heapQueue is the default EventQueue: the intrusive binary min-heap
// that has backed the engine since PR 1. O(log n) push and pop with
// excellent constants at the small pending-event counts typical of
// machine simulations; the timing wheel (wheel.go) overtakes it when
// thousands of timers are outstanding.
type heapQueue struct {
	h Heap[*Event]
}

func (q *heapQueue) Push(ev *Event)   { q.h.Push(ev) }
func (q *heapQueue) Pop() *Event      { return q.h.Pop() }
func (q *heapQueue) Min() *Event      { return q.h.Min() }
func (q *heapQueue) Remove(ev *Event) { q.h.Remove(ev.idx) }
func (q *heapQueue) Len() int         { return q.h.Len() }
