package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the EventQueue equivalence contract at the engine level:
// for any workload of schedules, cancels, and checkpoint-style AtSeq
// re-arms — same-instant bursts included — an Engine on the heap and an
// Engine on the wheel must fire the identical event sequence. The
// queue-level twin-pop test (wheel_test.go) checks the structures in
// isolation; here the workload flows through the full Engine surface the
// simulator actually uses (At, After, AtSeq, Cancel, Step, Run,
// RunUntil), including callbacks that schedule and cancel while firing.

// diffHarness drives one engine and records its firing trace.
type diffHarness struct {
	eng  *Engine
	log  []string
	live map[int]*Event // tag -> handle, for cancels
	next int            // next tag to assign
}

func newDiffHarness(t *testing.T, kind string) *diffHarness {
	t.Helper()
	q, err := NewEventQueue(kind)
	if err != nil {
		t.Fatal(err)
	}
	return &diffHarness{eng: NewEngineWith(q), live: map[int]*Event{}}
}

// schedule arms one event at the given time and returns its tag.
func (h *diffHarness) schedule(at Time) int {
	tag := h.next
	h.next++
	h.live[tag] = h.eng.At(at, func() {
		h.log = append(h.log, fmt.Sprintf("%d@%d", tag, h.eng.Now()))
		delete(h.live, tag)
	})
	return tag
}

// cancel removes the event with the given tag if it is still pending.
func (h *diffHarness) cancel(tag int) {
	if ev, ok := h.live[tag]; ok {
		h.eng.Cancel(ev)
		delete(h.live, tag)
	}
}

// digest hashes the firing trace.
func (h *diffHarness) digest() [sha256.Size]byte {
	hs := sha256.New()
	for _, line := range h.log {
		hs.Write([]byte(line))
		hs.Write([]byte{'\n'})
	}
	var out [sha256.Size]byte
	copy(out[:], hs.Sum(nil))
	return out
}

// compare fails the test at the first divergence between the two traces.
func compareTraces(t *testing.T, ctx string, heap, wheel *diffHarness) {
	t.Helper()
	n := len(heap.log)
	if len(wheel.log) < n {
		n = len(wheel.log)
	}
	for i := 0; i < n; i++ {
		if heap.log[i] != wheel.log[i] {
			t.Fatalf("%s: firing %d diverges: heap %s, wheel %s", ctx, i, heap.log[i], wheel.log[i])
		}
	}
	if len(heap.log) != len(wheel.log) {
		t.Fatalf("%s: heap fired %d events, wheel %d", ctx, len(heap.log), len(wheel.log))
	}
	if heap.digest() != wheel.digest() {
		t.Fatalf("%s: trace digests diverge", ctx)
	}
}

// TestEventQueueDifferential replays seeded random workloads through both
// engines: schedules at mixed horizons (same-instant bursts through
// far-future cascade fodder), interleaved cancels, and stepped/batched
// dispatch, with callbacks themselves scheduling follow-on work.
func TestEventQueueDifferential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		heap, wheel := newDiffHarness(t, "heap"), newDiffHarness(t, "wheel")
		both := []*diffHarness{heap, wheel}

		for round := 0; round < 300; round++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // one event at a mixed horizon
				var delta Time
				switch rng.Intn(4) {
				case 0:
					delta = 0
				case 1:
					delta = Time(rng.Intn(100))
				case 2:
					delta = Time(rng.Intn(1_000_000))
				default:
					delta = Time(rng.Int63n(int64(1) << uint(20+rng.Intn(25))))
				}
				for _, h := range both {
					h.schedule(h.eng.Now() + delta)
				}
			case 3: // same-instant burst
				delta := Time(rng.Intn(50_000))
				k := 2 + rng.Intn(6)
				for _, h := range both {
					at := h.eng.Now() + delta
					for j := 0; j < k; j++ {
						h.schedule(at)
					}
				}
			case 4: // self-rescheduling event: callback schedules more
				delta := Time(rng.Intn(200_000))
				hops := 1 + rng.Intn(3)
				for _, h := range both {
					h := h
					tag := h.next
					h.next++
					var arm func(at Time, hop int)
					arm = func(at Time, hop int) {
						h.live[tag] = h.eng.At(at, func() {
							h.log = append(h.log, fmt.Sprintf("%d.%d@%d", tag, hop, h.eng.Now()))
							delete(h.live, tag)
							if hop < hops {
								arm(h.eng.Now()+delta/2+1, hop+1)
							}
						})
					}
					arm(h.eng.Now()+delta, 0)
				}
			case 5, 6: // cancel a random pending tag
				if len(heap.live) == 0 {
					continue
				}
				tags := make([]int, 0, len(heap.live))
				for tag := range heap.live {
					tags = append(tags, tag)
				}
				// map order is random; pick deterministically by value
				min := tags[0]
				for _, tg := range tags {
					if tg < min {
						min = tg
					}
				}
				victim := min + rng.Intn(heap.next-min)
				for _, h := range both {
					h.cancel(victim)
				}
			case 7, 8: // step a few events
				k := 1 + rng.Intn(4)
				for _, h := range both {
					for j := 0; j < k; j++ {
						h.eng.Step()
					}
				}
			default: // run to a deadline: batched same-tick dispatch
				delta := Time(rng.Intn(500_000))
				for _, h := range both {
					h.eng.RunUntil(h.eng.Now() + delta)
				}
			}
			if heap.eng.Pending() != wheel.eng.Pending() {
				t.Fatalf("seed %d round %d: pending diverges: heap %d, wheel %d",
					seed, round, heap.eng.Pending(), wheel.eng.Pending())
			}
		}
		for _, h := range both {
			h.eng.Run()
		}
		compareTraces(t, fmt.Sprintf("seed %d", seed), heap, wheel)
		if heap.eng.Now() != wheel.eng.Now() || heap.eng.Fired() != wheel.eng.Fired() {
			t.Fatalf("seed %d: final state diverges: heap now=%v fired=%d, wheel now=%v fired=%d",
				seed, heap.eng.Now(), heap.eng.Fired(), wheel.eng.Now(), wheel.eng.Fired())
		}
	}
}

// TestEventQueueDifferentialRestore pins the checkpoint-restore pattern:
// Reset to a forced clock and seq counter, re-arm a pending set through
// AtSeq under explicit (shuffled, same-instant-heavy) sequence numbers,
// and require identical firing order — the path that dirties wheel
// buckets and triggers the seq re-sort.
func TestEventQueueDifferentialRestore(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		heap, wheel := newDiffHarness(t, "heap"), newDiffHarness(t, "wheel")

		// A synthetic checkpoint: n pending events at few distinct instants
		// (forcing same-instant seq ordering) under shuffled original seqs.
		n := 5 + rng.Intn(60)
		base := Time(rng.Int63n(1_000_000_000))
		instants := make([]Time, 1+rng.Intn(8))
		for i := range instants {
			instants[i] = base + Time(rng.Int63n(int64(1)<<uint(10+rng.Intn(30))))
		}
		seqs := rng.Perm(n)
		type arm struct {
			at  Time
			seq uint64
		}
		arms := make([]arm, n)
		for i := range arms {
			arms[i] = arm{at: instants[rng.Intn(len(instants))], seq: uint64(seqs[i])}
		}

		for _, h := range []*diffHarness{heap, wheel} {
			h := h
			h.eng.Reset(base, uint64(n), 0)
			for _, a := range arms {
				a := a
				h.eng.AtSeq(a.at, a.seq, func() {
					h.log = append(h.log, fmt.Sprintf("s%d@%d", a.seq, h.eng.Now()))
				})
			}
			h.eng.Run()
		}
		compareTraces(t, fmt.Sprintf("restore seed %d", seed), heap, wheel)
	}
}

// FuzzEventQueueDiff interprets arbitrary bytes as an op script driven
// through both engines and requires identical firing traces. Each op is
// two bytes: an opcode selector and an argument.
func FuzzEventQueueDiff(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 2, 2, 0, 0})                     // twin instants, step
	f.Add([]byte{0, 200, 1, 3, 3, 1, 2, 8})                     // far push, burst, cancel, steps
	f.Add([]byte{1, 9, 1, 9, 4, 50, 2, 40})                     // bursts, run-until, drain
	f.Add([]byte{0, 255, 0, 1, 0, 0, 3, 0, 3, 1, 2, 9, 4, 255}) // cancel-heavy
	f.Fuzz(func(t *testing.T, data []byte) {
		q1, _ := NewEventQueue("heap")
		q2, _ := NewEventQueue("wheel")
		engines := []*Engine{NewEngineWith(q1), NewEngineWith(q2)}
		logs := make([][]uint64, 2)
		var live [2][]*Event

		schedule := func(i int, at Time) {
			ev := engines[i].At(at, func() {
				logs[i] = append(logs[i], uint64(engines[i].Now()))
			})
			live[i] = append(live[i], ev)
		}
		for p := 0; p+1 < len(data); p += 2 {
			op, arg := data[p], int64(data[p+1])
			switch op % 5 {
			case 0: // schedule at a spread-out horizon (arg scales the span)
				for i := range engines {
					schedule(i, engines[i].Now()+Time(arg*arg*arg))
				}
			case 1: // same-instant burst of arg%7+2 events
				for i := range engines {
					at := engines[i].Now() + Time(arg*17)
					for j := int64(0); j < arg%7+2; j++ {
						schedule(i, at)
					}
				}
			case 2: // step up to arg%5+1 events
				for i := range engines {
					for j := int64(0); j < arg%5+1; j++ {
						engines[i].Step()
					}
				}
			case 3: // cancel the (arg mod len)-th scheduled handle
				if len(live[0]) == 0 {
					continue
				}
				k := int(arg) % len(live[0])
				for i := range engines {
					engines[i].Cancel(live[i][k])
					live[i] = append(live[i][:k], live[i][k+1:]...)
				}
			case 4: // batched dispatch to a deadline
				for i := range engines {
					engines[i].RunUntil(engines[i].Now() + Time(arg*1000))
				}
			}
			if engines[0].Pending() != engines[1].Pending() {
				t.Fatalf("pending diverges: heap %d, wheel %d", engines[0].Pending(), engines[1].Pending())
			}
		}
		for i := range engines {
			engines[i].Run()
		}
		h1, h2 := sha256.New(), sha256.New()
		var buf [8]byte
		for _, v := range logs[0] {
			binary.LittleEndian.PutUint64(buf[:], v)
			h1.Write(buf[:])
		}
		for _, v := range logs[1] {
			binary.LittleEndian.PutUint64(buf[:], v)
			h2.Write(buf[:])
		}
		if string(h1.Sum(nil)) != string(h2.Sum(nil)) {
			n := len(logs[0])
			if len(logs[1]) < n {
				n = len(logs[1])
			}
			for i := 0; i < n; i++ {
				if logs[0][i] != logs[1][i] {
					t.Fatalf("firing %d diverges: heap t=%d, wheel t=%d", i, logs[0][i], logs[1][i])
				}
			}
			t.Fatalf("heap fired %d events, wheel %d", len(logs[0]), len(logs[1]))
		}
		if engines[0].Now() != engines[1].Now() {
			t.Fatalf("final clocks diverge: heap %v, wheel %v", engines[0].Now(), engines[1].Now())
		}
	})
}
