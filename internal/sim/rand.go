package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64). It exists so that simulations never depend on math/rand
// global state or on wall-clock seeding: every source of randomness in the
// repository is a Rand with an explicit seed.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// State returns the generator's internal state word. Checkpoints capture
// it because any forked stream that advances during a run (interactive
// think times, Poisson interrupt arrivals, lottery draws) must resume at
// exactly the same point for the continuation to be byte-identical.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state word previously obtained from State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Fork derives an independent generator from r's stream, so subsystems can
// be given private streams without correlating with each other.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
