// Package sim provides the discrete-event simulation kernel used by every
// other subsystem: a virtual clock, an event queue, and a deterministic
// pseudo-random number generator.
//
// All simulated time in the repository is sim.Time (int64 nanoseconds) and
// all randomness flows from sim.Rand with explicit seeds, so every
// experiment is bit-reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: the simulation
// never consults the wall clock.
type Time int64

// Common durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to a simulated delta.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with a unit chosen for readability.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t%Microsecond == 0:
		return fmt.Sprintf("%dus", t/Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
