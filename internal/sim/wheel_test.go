package sim

import (
	"math/rand"
	"testing"
)

// newTestEvent fabricates a detached event the way the engine would.
func newTestEvent(at Time, seq uint64) *Event {
	return &Event{At: at, seq: seq, idx: -1}
}

// drain pops q empty, asserting the (At, seq) stream is strictly
// increasing in the queue order contract.
func drain(t *testing.T, q EventQueue) []*Event {
	t.Helper()
	var out []*Event
	for q.Len() > 0 {
		min := q.Min()
		ev := q.Pop()
		if ev != min {
			t.Fatalf("Pop returned %v/%d but Min promised %v/%d", ev.At, ev.seq, min.At, min.seq)
		}
		if ev.idx != -1 {
			t.Fatalf("popped event still marked queued (idx %d)", ev.idx)
		}
		if n := len(out); n > 0 {
			prev := out[n-1]
			if ev.At < prev.At || (ev.At == prev.At && ev.seq <= prev.seq) {
				t.Fatalf("pop order violated: %v/%d after %v/%d", ev.At, ev.seq, prev.At, prev.seq)
			}
		}
		out = append(out, ev)
	}
	return out
}

// TestWheelMatchesHeapRandom pushes an identical random workload into the
// wheel and the heap and requires identical pop streams — the
// queue-level form of the engine equivalence contract.
func TestWheelMatchesHeapRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w, h := NewWheel(), new(heapQueue)
		var seq uint64
		var now Time
		var wheelLive, heapLive []*Event
		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // push a pair of twins
				// Mix near-future, same-instant, and far-future times so
				// every wheel level and the cascade path get traffic.
				var at Time
				switch rng.Intn(4) {
				case 0:
					at = now // same-instant burst
				case 1:
					at = now + Time(rng.Intn(64))
				case 2:
					at = now + Time(rng.Intn(100_000))
				default:
					at = now + Time(rng.Int63n(int64(1)<<uint(20+rng.Intn(30))))
				}
				we, he := newTestEvent(at, seq), newTestEvent(at, seq)
				seq++
				w.Push(we)
				h.Push(he)
				wheelLive = append(wheelLive, we)
				heapLive = append(heapLive, he)
			case r < 8: // pop from both
				if w.Len() == 0 {
					continue
				}
				we, he := w.Pop(), h.Pop()
				if we.At != he.At || we.seq != he.seq {
					t.Fatalf("seed %d: wheel popped %v/%d, heap %v/%d", seed, we.At, we.seq, he.At, he.seq)
				}
				if we.At < now {
					t.Fatalf("seed %d: pop went backwards: %v < %v", seed, we.At, now)
				}
				now = we.At
				wheelLive = removeLive(wheelLive, we)
				heapLive = removeLive(heapLive, he)
			default: // cancel the same random live event in both
				if len(wheelLive) == 0 {
					continue
				}
				i := rng.Intn(len(wheelLive))
				w.Remove(wheelLive[i])
				h.Remove(heapLive[i])
				wheelLive = append(wheelLive[:i], wheelLive[i+1:]...)
				heapLive = append(heapLive[:i], heapLive[i+1:]...)
			}
			if w.Len() != h.Len() {
				t.Fatalf("seed %d: lengths diverge: wheel %d heap %d", seed, w.Len(), h.Len())
			}
		}
		ws, hs := drain(t, w), drain(t, h)
		for i := range ws {
			if ws[i].At != hs[i].At || ws[i].seq != hs[i].seq {
				t.Fatalf("seed %d: drain[%d]: wheel %v/%d heap %v/%d",
					seed, i, ws[i].At, ws[i].seq, hs[i].At, hs[i].seq)
			}
		}
	}
}

func removeLive(live []*Event, ev *Event) []*Event {
	for i, e := range live {
		if e == ev {
			return append(live[:i], live[i+1:]...)
		}
	}
	return live
}

// TestWheelFarFutureCascade plants events across every wheel level —
// including times that only fit in the top levels — and checks they
// cascade out in exact time order.
func TestWheelFarFutureCascade(t *testing.T) {
	w := NewWheel()
	var seq uint64
	times := []Time{
		0, 1, 63, 64, 65, 4095, 4096, 1 << 20, 1<<20 + 1,
		1 << 30, 1 << 40, 1 << 50, 1 << 60, 1<<62 + 12345,
	}
	// Push in reverse so nothing arrives pre-sorted.
	for i := len(times) - 1; i >= 0; i-- {
		w.Push(newTestEvent(times[i], seq))
		seq++
	}
	got := drain(t, w)
	if len(got) != len(times) {
		t.Fatalf("drained %d events, want %d", len(got), len(times))
	}
	for i, ev := range got {
		if ev.At != times[i] {
			t.Fatalf("pop %d at %v, want %v", i, ev.At, times[i])
		}
	}
}

// TestWheelSameInstantFIFO checks that a large same-tick burst pops in
// push (seq) order even after the burst cascades down from a high level.
func TestWheelSameInstantFIFO(t *testing.T) {
	w := NewWheel()
	const at = Time(1<<30 + 777) // starts several levels up
	for s := uint64(0); s < 500; s++ {
		w.Push(newTestEvent(at, s))
	}
	for want := uint64(0); want < 500; want++ {
		if ev := w.Pop(); ev.seq != want {
			t.Fatalf("same-instant pop got seq %d, want %d", ev.seq, want)
		}
	}
}

// TestWheelDirtyBucketSort pushes same-instant events with explicitly
// out-of-order sequence numbers — the AtSeq checkpoint-restore pattern —
// and checks the wheel still pops them in seq order.
func TestWheelDirtyBucketSort(t *testing.T) {
	for _, at := range []Time{5, 1 << 25} {
		w := NewWheel()
		for _, s := range []uint64{7, 2, 9, 4, 4_000, 1, 8, 0} {
			w.Push(newTestEvent(at, s))
		}
		w.Push(newTestEvent(at+1, 3)) // neighbor instant interleaved
		var prev *Event
		for w.Len() > 0 {
			ev := w.Pop()
			if prev != nil && !prev.HeapLess(ev) {
				t.Fatalf("at=%v: popped %v/%d after %v/%d", at, ev.At, ev.seq, prev.At, prev.seq)
			}
			prev = ev
		}
	}
}

// TestWheelMinIsStable checks Min returns the same event repeatedly
// without consuming it, across cascades.
func TestWheelMinIsStable(t *testing.T) {
	w := NewWheel()
	w.Push(newTestEvent(1<<33, 0))
	w.Push(newTestEvent(10, 1))
	for i := 0; i < 3; i++ {
		if min := w.Min(); min.At != 10 {
			t.Fatalf("Min #%d at %v, want 10", i, min.At)
		}
	}
	if w.Len() != 2 {
		t.Fatalf("Min consumed events: len %d", w.Len())
	}
	if ev := w.Pop(); ev.At != 10 {
		t.Fatalf("popped %v, want 10", ev.At)
	}
	if min := w.Min(); min.At != 1<<33 {
		t.Fatalf("second Min at %v, want %v", min.At, Time(1<<33))
	}
}

// TestWheelRemoveMin removes the cached minimum and checks the next Min
// is recomputed correctly.
func TestWheelRemoveMin(t *testing.T) {
	w := NewWheel()
	a, b, c := newTestEvent(5, 0), newTestEvent(5, 1), newTestEvent(900_000, 2)
	w.Push(a)
	w.Push(b)
	w.Push(c)
	if w.Min() != a {
		t.Fatal("min is not the first same-instant event")
	}
	w.Remove(a)
	if w.Min() != b {
		t.Fatalf("after removing min, Min is %v/%d, want 5/1", w.Min().At, w.Min().seq)
	}
	w.Remove(b)
	if w.Min() != c {
		t.Fatal("after removing both, Min is not the far event")
	}
	if w.Len() != 1 {
		t.Fatalf("len %d, want 1", w.Len())
	}
}

// TestWheelResetTime re-anchors an empty wheel backwards, the checkpoint
// restore pattern (drain walked past the snapshot instant), and checks
// re-armed events order correctly.
func TestWheelResetTime(t *testing.T) {
	w := NewWheel()
	w.Push(newTestEvent(1_000_000, 0))
	w.Pop() // cur is now 1_000_000
	w.resetTime(500)
	w.Push(newTestEvent(600, 5))
	w.Push(newTestEvent(500, 9))
	if ev := w.Pop(); ev.At != 500 {
		t.Fatalf("after resetTime, popped %v, want 500", ev.At)
	}
	if ev := w.Pop(); ev.At != 600 {
		t.Fatalf("after resetTime, popped %v, want 600", ev.At)
	}
}

// TestWheelPushPastPanics pins the defensive check: scheduling before
// the wheel's current time is an engine bug, never valid input.
func TestWheelPushPastPanics(t *testing.T) {
	w := NewWheel()
	w.Push(newTestEvent(100, 0))
	w.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("push before wheel time did not panic")
		}
	}()
	w.Push(newTestEvent(50, 1))
}

// TestWheelEmptyPanics pins Min/Pop behavior on an empty wheel: a panic,
// like the heap's out-of-range index.
func TestWheelEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty wheel did not panic")
		}
	}()
	NewWheel().Min()
}
