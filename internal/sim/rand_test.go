package sim

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(8)
	same := 0
	a2 := NewRand(7)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d times", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(1)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] < 700 || seen[v] > 1300 {
			t.Errorf("value %d drawn %d times of 10000, badly skewed", v, seen[v])
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(2)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestRandExpFloat64Mean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.97 || mean > 1.03 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(4)
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if sd < 0.97 || sd > 1.03 {
		t.Errorf("normal sd = %v, want ~1", sd)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(50)
	if len(p) != 50 {
		t.Fatalf("perm length %d", len(p))
	}
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(6)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked streams start identically")
	}
	// Forking is itself deterministic.
	r2 := NewRand(6)
	g1 := r2.Fork()
	r3 := NewRand(6)
	h1 := r3.Fork()
	if g1.Uint64() != h1.Uint64() {
		t.Error("fork of same seed differs")
	}
}
