package sim

import (
	"fmt"
	"math/bits"
)

// This file implements EventQueue as a hashed hierarchical timing wheel,
// the O(1)-amortized alternative to the binary heap for the simulator's
// mostly-monotonic timer workload (Brown's calendar-queue observation:
// event-driven simulators schedule overwhelmingly near-future, roughly
// sorted work, so a bucketed structure beats a comparison-based one).
//
// Geometry: wheelLevels levels of wheelSlots buckets each. A bucket at
// level k spans 64^k nanoseconds, so level 0 buckets are exact one-tick
// buckets and level k covers times up to 64^(k+1) past the wheel's
// current time. With 11 levels the top spans 2^66 ns — beyond the int64
// time range — so every schedulable instant lands in some level and
// there is no separate unbounded-overflow list; far-future events simply
// enter a high level and cascade down ("overflow cascading") as the
// wheel's time approaches them.
//
// Placement: an event at time t goes to the lowest level k at which t
// and the wheel's current time agree in all bit positions at and above
// 6*(k+1) — i.e. the lowest level whose current span contains t. Its
// slot is bits [6k, 6k+6) of t. Two consequences make the search cheap:
//
//   - No wraparound. Events at level k share the wheel time's level-(k+1)
//     prefix, so their level-k slots are all >= the wheel time's own
//     slot; a per-level occupancy bitmap plus TrailingZeros64 finds the
//     earliest non-empty bucket in a few instructions.
//   - Level order is time order. Every event at level k precedes every
//     event at any higher level, so the earliest event always lives in
//     the lowest occupied level's lowest occupied slot.
//
// Exactness: a level-0 bucket holds events of a single instant, and
// lists keep push order, which for At-scheduled events is seq order —
// so popping a level-0 bucket front to back yields the documented
// (At, Seq) order with no comparisons at all. The one way a bucket can
// go out of seq order is checkpoint restore re-arming events through
// AtSeq with explicit, non-monotone sequence numbers; pushes detect any
// inversion against the bucket's tail and mark the bucket dirty, and a
// dirty level-0 bucket is insertion-sorted by seq once before it is
// drained. Steady-state operation never sorts.
//
// Push, Pop, Min, and Remove allocate nothing: buckets are intrusive
// doubly-linked lists threaded through the Event handles the engine
// already pools (alloc_guard_test.go enforces this).
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 buckets per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 6*11 = 66 bits: all of int64 time, no overflow list
)

// wheelBucket is one intrusive event list. dirty records that an AtSeq
// push inverted the list's seq order somewhere; it is sticky until the
// bucket is cascaded (re-detected downstream) or sorted at level 0.
type wheelBucket struct {
	head, tail *Event
	dirty      bool
}

// Wheel is the hierarchical timing-wheel EventQueue. The zero value is
// not usable; construct with NewWheel (or sim.NewEventQueue("wheel")).
type Wheel struct {
	cur   Time // wheel time: no queued event is earlier
	count int
	min   *Event // cached (At, Seq) minimum; nil means recompute
	occ   [wheelLevels]uint64
	slots [wheelLevels][wheelSlots]wheelBucket
}

// NewWheel returns an empty wheel anchored at time zero.
func NewWheel() *Wheel {
	return &Wheel{}
}

// Len implements EventQueue.
func (w *Wheel) Len() int { return w.count }

// Push implements EventQueue.
func (w *Wheel) Push(ev *Event) {
	if ev.At < w.cur {
		panic(fmt.Sprintf("sim: wheel push at %v, before wheel time %v", ev.At, w.cur))
	}
	w.place(ev)
	w.count++
	// Keep the cached minimum exact. A nil cache on a non-empty wheel
	// means "invalidated, recompute lazily" — seeding it from the pushed
	// event there would shadow an earlier event already queued.
	if w.count == 1 {
		w.min = ev
	} else if w.min != nil && ev.HeapLess(w.min) {
		w.min = ev
	}
}

// place links ev into the bucket its time selects relative to w.cur,
// preserving push order and flagging seq inversions. It is shared by
// Push and by cascading, so relative order of same-instant events — and
// the dirty detection that guards it — survives every level change.
func (w *Wheel) place(ev *Event) {
	k := 0
	if x := uint64(ev.At ^ w.cur); x != 0 {
		k = (63 - bits.LeadingZeros64(x)) / wheelBits
	}
	s := int(ev.At>>(uint(k)*wheelBits)) & wheelMask
	b := &w.slots[k][s]
	ev.qprev = b.tail
	ev.qnext = nil
	if b.tail != nil {
		b.tail.qnext = ev
		if ev.HeapLess(b.tail) {
			b.dirty = true
		}
	} else {
		b.head = ev
	}
	b.tail = ev
	w.occ[k] |= 1 << uint(s)
	ev.idx = k*wheelSlots + s
}

// Min implements EventQueue. It never moves the wheel's time: the
// engine's contract only promises that pushes stay at or after the last
// POPPED time, so peeking at a future minimum must not commit the wheel
// to it. Min only reads — plus the one-off seq sort of a dirty level-0
// bucket, a reorganization that changes no observable ordering.
func (w *Wheel) Min() *Event {
	if w.min != nil {
		return w.min
	}
	if w.count == 0 {
		panic("sim: Min of an empty wheel")
	}
	k, s := w.lowest()
	b := &w.slots[k][s]
	if k == 0 {
		if b.dirty {
			sortBucketBySeq(b)
		}
		w.min = b.head
		return w.min
	}
	// A level >= 1 bucket spans many instants, so the head is not
	// necessarily first: scan the list for the (At, Seq) minimum. The
	// scan's cost is repaid by the Pop that follows, which empties the
	// bucket by cascading it one or more levels down.
	min := b.head
	for ev := b.head.qnext; ev != nil; ev = ev.qnext {
		if ev.HeapLess(min) {
			min = ev
		}
	}
	w.min = min
	return min
}

// lowest returns the lowest occupied level and its lowest occupied slot —
// by the placement invariants, the bucket holding the earliest events.
// The caller guarantees the wheel is non-empty.
func (w *Wheel) lowest() (k, s int) {
	for k = 0; k < wheelLevels; k++ {
		if w.occ[k] != 0 {
			return k, bits.TrailingZeros64(w.occ[k])
		}
	}
	panic("sim: lowest of an empty wheel")
}

// Pop implements EventQueue.
func (w *Wheel) Pop() *Event {
	ev := w.min
	if ev == nil {
		ev = w.Min()
	}
	// ev is the strict (At, Seq) minimum, so every remaining event's time
	// is >= ev.At and moving the wheel time to it keeps every event at or
	// after cur. Prefix agreement at the levels above an event's own also
	// survives: cur moves toward the event's time, and a shared prefix is
	// shared by everything in between.
	w.cur = ev.At
	k, s := ev.idx/wheelSlots, ev.idx&wheelMask
	b := &w.slots[k][s]
	w.unlink(ev, b)
	w.count--
	if k == 0 {
		// Same-tick fast path: a clean level-0 bucket is a single instant
		// in seq order, so its new head is the next global minimum — the
		// batch of co-scheduled events the engine dispatches costs O(1)
		// per event.
		if b.head != nil && !b.dirty {
			w.min = b.head
		} else {
			w.min = nil
		}
		return ev
	}
	// cur just moved inside a level-k bucket's span, so that bucket's
	// remaining events now belong one or more levels lower ("overflow
	// cascading"). Cascading them immediately is what keeps level order
	// equal to time order for the next lowest() scan. Levels below k were
	// empty — k held the minimum — so no other bucket's span contains cur,
	// and re-placing relative to the new cur is strictly lowering.
	rest := b.head
	b.head, b.tail, b.dirty = nil, nil, false
	w.occ[k] &^= 1 << uint(s)
	for rest != nil {
		next := rest.qnext
		w.place(rest)
		rest = next
	}
	w.min = nil
	return ev
}

// Remove implements EventQueue.
func (w *Wheel) Remove(ev *Event) {
	k := ev.idx / wheelSlots
	w.unlink(ev, &w.slots[k][ev.idx&wheelMask])
	w.count--
	if w.min == ev {
		w.min = nil
	}
}

// unlink detaches ev from its bucket, clearing the occupancy bit when
// the bucket empties.
func (w *Wheel) unlink(ev *Event, b *wheelBucket) {
	if ev.qprev != nil {
		ev.qprev.qnext = ev.qnext
	} else {
		b.head = ev.qnext
	}
	if ev.qnext != nil {
		ev.qnext.qprev = ev.qprev
	} else {
		b.tail = ev.qprev
	}
	if b.head == nil {
		w.occ[ev.idx/wheelSlots] &^= 1 << uint(ev.idx&wheelMask)
		b.dirty = false
	}
	ev.qnext, ev.qprev = nil, nil
	ev.idx = -1
}

// resetTime re-anchors an empty wheel for Engine.Reset: checkpoint
// restore forces the clock to the snapshot instant, which may lie before
// the times the drain walked past.
func (w *Wheel) resetTime(now Time) {
	if w.count != 0 {
		panic("sim: resetTime of a non-empty wheel")
	}
	w.cur = now
	w.min = nil
}

// sortBucketBySeq insertion-sorts a level-0 bucket's list by sequence
// number. All events in such a bucket share one instant, so seq order is
// full (At, Seq) order. Only checkpoint restore can dirty a bucket, so
// this never runs in steady state; it allocates nothing either way.
func sortBucketBySeq(b *wheelBucket) {
	var head, tail *Event
	for ev := b.head; ev != nil; {
		next := ev.qnext
		// Walk the sorted list from the tail: inputs are mostly sorted
		// runs, so insertion near the end is the common case.
		at := tail
		for at != nil && ev.seq < at.seq {
			at = at.qprev
		}
		if at == nil { // new head
			ev.qprev, ev.qnext = nil, head
			if head != nil {
				head.qprev = ev
			} else {
				tail = ev
			}
			head = ev
		} else {
			ev.qprev, ev.qnext = at, at.qnext
			if at.qnext != nil {
				at.qnext.qprev = ev
			} else {
				tail = ev
			}
			at.qnext = ev
		}
		ev = next
	}
	b.head, b.tail = head, tail
	b.dirty = false
}
