package sim

// Maxf returns the larger of a and b: a if a > b, else b. This is the one
// float helper the tag arithmetic of SFQ needs (S = max(v, F)); it lives
// here so internal/sched and internal/core share a single definition. It
// deliberately does not use the built-in max, whose signed-zero and NaN
// normalization could perturb bit-for-bit golden schedules.
func Maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
