package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events fire in increasing time order;
// events at the same instant fire in the order they were scheduled, which
// keeps the simulation deterministic.
//
// Event handles are pooled: once an event has fired or been cancelled the
// engine may recycle the Event value for a later At/After, so holders must
// drop their reference at that point. Cancelled is meaningful only until
// the handle's event is recycled.
type Event struct {
	At Time
	Fn func()
	// Core tags the event with the CPU core it concerns, for observability
	// on multicore machines (0 on a uniprocessor). It does not affect
	// ordering and is not part of the engine's checkpointed state; owners
	// re-set it when re-arming restored events.
	Core int
	seq  uint64
	idx  int // heap index, -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from the queue
// (either by firing or by Engine.Cancel).
func (e *Event) Cancelled() bool { return e.idx == -1 }

// HeapLess implements sim.HeapItem: earlier time first, FIFO at the same
// instant.
func (e *Event) HeapLess(o *Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *Event) HeapIndex() *int { return &e.idx }

// Engine is the discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    Time
	queue  Heap[*Event]
	free   []*Event // fired/cancelled events awaiting reuse
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed, a cheap progress
// and determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Seq returns the next sequence number the engine will assign. Together
// with Now and Fired it is the engine's whole mutable state apart from the
// queue itself; checkpoints capture it so that restored runs hand out the
// same FIFO tie-break ordering the original run would have.
func (e *Engine) Seq() uint64 { return e.seq }

// Seq returns the event's scheduling sequence number, the FIFO tie-break
// among events at the same instant. Checkpoints record it so pending
// events can be re-armed in their original relative order on restore.
func (e *Event) Seq() uint64 { return e.seq }

// Reset discards every pending event (returning the handles to the pool)
// and forces the clock and counters, clearing any halt. It exists for
// checkpoint restore: a freshly built simulation carries the build's
// initial events, which Reset drops before the restored pending events are
// re-armed. Holders of outstanding event handles must drop them.
func (e *Engine) Reset(now Time, seq, fired uint64) {
	for e.queue.Len() > 0 {
		e.release(e.queue.Pop())
	}
	e.now, e.seq, e.fired, e.halted = now, seq, fired, false
}

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it is always a simulation bug, never recoverable input error.
// The returned handle is valid until the event fires or is cancelled,
// after which the engine recycles it.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.Core, ev.seq = at, fn, 0, e.seq
	} else {
		ev = &Event{At: at, Fn: fn, seq: e.seq, idx: -1}
	}
	e.seq++
	e.queue.Push(ev)
	return ev
}

// AtSeq schedules fn at the absolute time at under an explicit sequence
// number. It exists for checkpoint restore: re-arming pending events with
// their original seqs makes the restored engine indistinguishable from
// the saved one, so save→restore→save is a byte-level fixed point. The
// caller must pass seqs below the engine's next counter (Reset to the
// saved value first) and must not reuse a seq; restore code validates
// both before calling.
func (e *Engine) AtSeq(at Time, seq uint64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, e.now))
	}
	if seq >= e.seq {
		panic(fmt.Sprintf("sim: re-armed event seq %d not below engine seq %d", seq, e.seq))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.Core, ev.seq = at, fn, 0, seq
	} else {
		ev = &Event{At: at, Fn: fn, seq: seq, idx: -1}
	}
	e.queue.Push(ev)
	return ev
}

// After schedules fn to run delta after the current time.
func (e *Engine) After(delta Time, fn func()) *Event {
	return e.At(e.now+delta, fn)
}

// Cancel removes ev from the queue if it has not fired. It is safe to call
// on an already-fired or already-cancelled event only while the holder has
// not released the handle to a new At/After (see Event).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx == -1 {
		return
	}
	e.queue.Remove(ev.idx)
	e.release(ev)
}

// release returns a detached event to the pool.
func (e *Engine) release(ev *Event) {
	ev.Fn = nil // free the closure for collection while pooled
	e.free = append(e.free, ev)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := e.queue.Pop()
	e.now = ev.At
	e.fired++
	fn := ev.Fn
	fn()
	// Recycle only after the callback: the handle stays stable while its
	// own callback runs, so holders can clear their reference inside it.
	e.release(ev)
	return true
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (even if no event lies exactly there). Events scheduled at
// the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 && e.queue.Min().At <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }
