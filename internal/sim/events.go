package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events fire in increasing time order;
// events at the same instant fire in the order they were scheduled, which
// keeps the simulation deterministic.
//
// Event handles are pooled: once an event has fired or been cancelled the
// engine may recycle the Event value for a later At/After, so holders must
// drop their reference at that point. Cancelled is meaningful only until
// the handle's event is recycled.
type Event struct {
	At Time
	Fn func()
	// Core tags the event with the CPU core it concerns, for observability
	// on multicore machines (0 on a uniprocessor). It does not affect
	// ordering and is not part of the engine's checkpointed state; owners
	// re-set it when re-arming restored events.
	Core int
	seq  uint64
	idx  int // queue position marker, -1 once popped or cancelled
	// qnext/qprev thread the event into a timing-wheel bucket list; the
	// heap queue leaves them nil. Only the owning queue touches them.
	qnext, qprev *Event
}

// Cancelled reports whether the event has been removed from the queue
// (either by firing or by Engine.Cancel).
func (e *Event) Cancelled() bool { return e.idx == -1 }

// HeapLess implements sim.HeapItem: earlier time first, FIFO at the same
// instant.
func (e *Event) HeapLess(o *Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.seq < o.seq
}

// HeapIndex implements sim.HeapItem.
func (e *Event) HeapIndex() *int { return &e.idx }

// Engine is the discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine or NewEngineWith.
type Engine struct {
	now    Time
	queue  EventQueue
	free   []*Event // fired/cancelled events awaiting reuse
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero, backed by the
// default binary-heap event queue.
func NewEngine() *Engine {
	return NewEngineWith(new(heapQueue))
}

// NewEngineWith returns an engine running on the given event queue. The
// queue must be empty and is owned by the engine from here on. Any
// conforming EventQueue (see the interface's ordering contract) yields
// byte-identical simulations; the choice only changes speed.
func NewEngineWith(q EventQueue) *Engine {
	return &Engine{queue: q}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed, a cheap progress
// and determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Seq returns the next sequence number this engine will assign — the
// engine-side counter, not any event's own number (for that, see
// Event.Seq). Together with Now and Fired it is the engine's whole
// mutable state apart from the pending events themselves; checkpoints
// capture it so that restored runs hand out the same FIFO tie-break
// ordering the original run would have.
func (e *Engine) Seq() uint64 { return e.seq }

// Seq returns this event's already-assigned scheduling sequence number —
// the FIFO tie-break among events at the same instant, drawn from the
// engine counter Engine.Seq reports the next value of. Checkpoints
// record it per pending event so restores can re-arm events under their
// original numbers (Engine.AtSeq) and reproduce the exact pop order.
func (e *Event) Seq() uint64 { return e.seq }

// Reset discards every pending event (returning the handles to the pool)
// and forces the clock and counters, clearing any halt. It exists for
// checkpoint restore: a freshly built simulation carries the build's
// initial events, which Reset drops before the restored pending events are
// re-armed. Holders of outstanding event handles must drop them. The
// drain goes through the EventQueue interface, so any queue
// implementation restores identically; queues that anchor bucket math to
// a current time are re-anchored to the forced clock afterwards.
func (e *Engine) Reset(now Time, seq, fired uint64) {
	for e.queue.Len() > 0 {
		e.release(e.queue.Pop())
	}
	if r, ok := e.queue.(timeResetter); ok {
		r.resetTime(now)
	}
	e.now, e.seq, e.fired, e.halted = now, seq, fired, false
}

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it is always a simulation bug, never recoverable input error.
// The returned handle is valid until the event fires or is cancelled,
// after which the engine recycles it.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.Core, ev.seq = at, fn, 0, e.seq
	} else {
		ev = &Event{At: at, Fn: fn, seq: e.seq, idx: -1}
	}
	e.seq++
	e.queue.Push(ev)
	return ev
}

// AtSeq schedules fn at the absolute time at under an explicit sequence
// number. It exists for checkpoint restore: re-arming pending events with
// their original seqs makes the restored engine indistinguishable from
// the saved one, so save→restore→save is a byte-level fixed point. The
// caller must pass seqs below the engine's next counter (Reset to the
// saved value first) and must not reuse a seq; restore code validates
// both before calling.
func (e *Engine) AtSeq(at Time, seq uint64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, e.now))
	}
	if seq >= e.seq {
		panic(fmt.Sprintf("sim: re-armed event seq %d not below engine seq %d", seq, e.seq))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.Core, ev.seq = at, fn, 0, seq
	} else {
		ev = &Event{At: at, Fn: fn, seq: seq, idx: -1}
	}
	e.queue.Push(ev)
	return ev
}

// After schedules fn to run delta after the current time.
func (e *Engine) After(delta Time, fn func()) *Event {
	return e.At(e.now+delta, fn)
}

// Cancel removes ev from the queue if it has not fired. It is safe to call
// on an already-fired or already-cancelled event only while the holder has
// not released the handle to a new At/After (see Event).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx == -1 {
		return
	}
	e.queue.Remove(ev)
	e.release(ev)
}

// release returns a detached event to the pool.
func (e *Engine) release(ev *Event) {
	ev.Fn = nil // free the closure for collection while pooled
	e.free = append(e.free, ev)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	e.fire(e.queue.Pop())
	return true
}

// fire executes one popped event and recycles its handle.
func (e *Engine) fire(ev *Event) {
	e.now = ev.At
	e.fired++
	fn := ev.Fn
	fn()
	// Recycle only after the callback: the handle stays stable while its
	// own callback runs, so holders can clear their reference inside it.
	e.release(ev)
}

// Run executes events until the queue is empty or Halt is called. All
// events at one instant dispatch as a batch: the outer loop reads the
// batch's time once and the inner loop drains events at exactly that
// time, which keeps the queue's minimum hot (a timing wheel serves a
// same-tick run from one bucket in O(1) per event). Events stay queued
// until individually popped, so a callback cancelling a later
// same-instant event still prevents it from firing, exactly as under
// one-at-a-time stepping.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 {
		at := e.queue.Min().At
		for !e.halted && e.queue.Len() > 0 && e.queue.Min().At == at {
			e.fire(e.queue.Pop())
		}
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (even if no event lies exactly there). Events scheduled at
// the deadline do fire. Same-instant events dispatch as a batch, checking
// the deadline once per instant rather than once per event.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 {
		at := e.queue.Min().At
		if at > deadline {
			break
		}
		for !e.halted && e.queue.Len() > 0 && e.queue.Min().At == at {
			e.fire(e.queue.Pop())
		}
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }
