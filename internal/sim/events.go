package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in increasing time order;
// events at the same instant fire in the order they were scheduled, which
// keeps the simulation deterministic.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index, -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from the queue
// (either by firing or by Engine.Cancel).
func (e *Event) Cancelled() bool { return e.idx == -1 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed, a cheap progress
// and determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it is always a simulation bug, never recoverable input error.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, e.now))
	}
	ev := &Event{At: at, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delta after the current time.
func (e *Engine) After(delta Time, fn func()) *Event {
	return e.At(e.now+delta, fn)
}

// Cancel removes ev from the queue if it has not fired. It is safe to call
// on an already-fired or already-cancelled event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx == -1 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.fired++
	ev.Fn()
	return true
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (even if no event lies exactly there). Events scheduled at
// the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }
