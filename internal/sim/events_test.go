package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{3 * Second, "3s"},
		{Millisecond, "1ms"},
		{1500 * Microsecond, "1500us"},
		{Microsecond, "1us"},
		{7, "7ns"},
		{2*Second + 500*Millisecond, "2500ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Duration(1500*time.Millisecond) != 1500*Millisecond {
		t.Error("Duration conversion wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if (3 * Millisecond).Milliseconds() != 3.0 {
		t.Error("Milliseconds conversion wrong")
	}
	if MinTime(2, 5) != 2 || MaxTime(2, 5) != 5 {
		t.Error("min/max wrong")
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired in order %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("clock at %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got[%d]=%d", i, v)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event does not report cancelled")
	}
}

func TestEngineCancelFromEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev *Event
	e.At(5, func() { e.Cancel(ev) })
	ev = e.At(10, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(got))
	}
	if e.Now() != 25 {
		t.Errorf("clock advanced to %v, want 25", e.Now())
	}
	// Events exactly at the deadline fire.
	e.RunUntil(30)
	if len(got) != 3 {
		t.Errorf("fired %d events by t=30, want 3", len(got))
	}
	e.RunUntil(100)
	if len(got) != 4 || e.Now() != 100 {
		t.Errorf("final state: %d events, now %v", len(got), e.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Halt() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("halt did not stop the loop: %d events fired", count)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if count != 2 {
		t.Errorf("resume after halt failed: %d", count)
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.At(0, rec)
	e.Run()
	if depth != 100 {
		t.Errorf("chained %d events, want 100", depth)
	}
	if e.Now() != 99 {
		t.Errorf("clock %v, want 99", e.Now())
	}
	if e.Fired() != 100 {
		t.Errorf("fired %d, want 100", e.Fired())
	}
}

// TestEngineOrderProperty: for any set of (time, id) pairs, execution
// order is sorted by time with ties in insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, at := range times {
			i := i
			at := Time(at)
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
