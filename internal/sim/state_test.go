package sim

import (
	"bytes"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0)
	e.U64(^uint64(0))
	e.I64(-42)
	e.Int(17)
	e.Time(3 * Second)
	e.F64(3.14159)
	e.F64(-0.0)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Str("")
	e.Blob([]byte{1, 2, 3})

	d := NewDec(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Errorf("U64 = %d, want 0", got)
	}
	if got := d.U64(); got != ^uint64(0) {
		t.Errorf("U64 = %d, want max", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if got := d.Int(); got != 17 {
		t.Errorf("Int = %d, want 17", got)
	}
	if got := d.Time(); got != 3*Second {
		t.Errorf("Time = %v, want 3s", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); got != 0 {
		t.Errorf("F64 = %v, want -0.0", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("Str = %q, want empty", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecTruncationIsStickyError(t *testing.T) {
	var e Enc
	e.U64(7)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		_ = d.U64()
		if d.Err() == nil {
			t.Fatalf("cut=%d: no error on truncated input", cut)
		}
		// Sticky: later reads keep returning zero values, same error.
		first := d.Err()
		if got := d.I64(); got != 0 {
			t.Errorf("cut=%d: read after error = %d, want 0", cut, got)
		}
		if d.Err() != first {
			t.Errorf("cut=%d: error replaced after first failure", cut)
		}
	}
}

func TestDecHostileLengths(t *testing.T) {
	// A blob length far past the end must error, not allocate.
	var e Enc
	e.U64(1 << 60)
	d := NewDec(e.Bytes())
	if b := d.Blob(); b != nil || d.Err() == nil {
		t.Fatalf("hostile blob: got %v err %v, want nil + error", b, d.Err())
	}

	// A negative count must error.
	e.Reset()
	e.I64(-1)
	d = NewDec(e.Bytes())
	if n := d.Count(1); n != 0 || d.Err() == nil {
		t.Fatalf("negative count: got %d err %v", n, d.Err())
	}

	// A count claiming more elements than bytes remain must error.
	e.Reset()
	e.I64(1 << 40)
	d = NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("oversized count: got %d err %v", n, d.Err())
	}

	// An out-of-range bool byte must error.
	d = NewDec([]byte{2})
	if d.Bool(); d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestEncResetKeepsCapacityAndAllocatesNothing(t *testing.T) {
	var e Enc
	for i := 0; i < 4; i++ { // warm the buffer
		e.Reset()
		for j := 0; j < 64; j++ {
			e.U64(uint64(j))
			e.Str("thread")
			e.Bool(true)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for j := 0; j < 64; j++ {
			e.U64(uint64(j))
			e.Str("thread")
			e.Bool(true)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Enc allocates %v per encode, want 0", allocs)
	}
}

func TestEngineResetDropsPendingAndForcesCounters(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(2, func() { fired++ })
	e.RunUntil(1)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	seq, nFired := e.Seq(), e.Fired()
	e.Reset(5, seq, nFired)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset, want 0", e.Pending())
	}
	if e.Now() != 5 || e.Seq() != seq || e.Fired() != nFired {
		t.Fatalf("Reset state = (%v, %d, %d), want (5, %d, %d)",
			e.Now(), e.Seq(), e.Fired(), seq, nFired)
	}
	// The engine is still usable; same-instant FIFO order still holds.
	var order []int
	e.At(7, func() { order = append(order, 1) })
	e.At(7, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("post-Reset order = %v, want [1 2]", order)
	}
	if fired != 1 {
		t.Fatalf("dropped event fired anyway (fired = %d)", fired)
	}
}

func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(123)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := NewRand(0)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after SetState = %d, want %d", i, got, w)
		}
	}
}
