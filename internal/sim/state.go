package sim

import (
	"fmt"
	"math"
)

// This file is the bottom of the checkpoint stack: a tiny canonical binary
// codec that every layer (cpu, sched, core, workload, trace) uses to save
// and load its mutable state. It lives in sim so that the layers above can
// implement their Stater hooks without import cycles; the framing, version
// and integrity header live higher up, in internal/checkpoint.
//
// Encoding rules (the canon that makes snapshots content-addressable):
// fixed-width little-endian for every scalar, float64 as IEEE-754 bits,
// strings and byte blobs length-prefixed with a u64. There is no varint and
// no map iteration anywhere near an encoder: the same state always encodes
// to the same bytes.

// Enc is an append-only canonical encoder. The zero value is ready to use;
// Reset keeps the underlying buffer so steady-state encoding into a warm
// Enc performs no allocations (guarded by alloc_guard_test.go).
type Enc struct {
	buf []byte
}

// Reset empties the encoder, retaining capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded bytes. The slice aliases the encoder's buffer
// and is invalidated by the next Reset or append.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Enc) Len() int { return len(e.buf) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int (as int64).
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// Time appends a simulation Time.
func (e *Enc) Time(t Time) { e.I64(int64(t)) }

// F64 appends a float64 as its IEEE-754 bit pattern, so encode/decode is
// exact (no formatting round trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec decodes bytes produced by Enc. Errors are sticky: after the first
// malformed or truncated read every subsequent read returns a zero value,
// so decode paths can be written straight-line and check Err once. A Dec
// never panics on hostile input — lengths and counts are bounded by the
// remaining input before any allocation.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over b. The decoder does not copy b.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("sim: truncated input at offset %d: need 8 bytes, have %d", d.off, d.Remaining())
		return 0
	}
	b := d.buf[d.off : d.off+8]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// Time reads a simulation Time.
func (d *Dec) Time() Time { return Time(d.I64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("sim: truncated input at offset %d: need 1 byte", d.off)
		return false
	}
	v := d.buf[d.off]
	d.off++
	if v > 1 {
		d.fail("sim: invalid bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// Blob reads a length-prefixed byte slice. The returned slice aliases the
// decoder's input. A length exceeding the remaining input is an error, not
// an allocation.
func (d *Dec) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("sim: blob length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Count reads a non-negative element count and validates it against the
// remaining input assuming each element occupies at least minBytes bytes,
// so hostile counts cannot drive huge allocations.
func (d *Dec) Count(minBytes int) int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.fail("sim: negative count %d", n)
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > int64(d.Remaining()/minBytes) {
		d.fail("sim: count %d exceeds remaining input (%d bytes, >=%d per element)",
			n, d.Remaining(), minBytes)
		return 0
	}
	return int(n)
}
