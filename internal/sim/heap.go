package sim

// This file provides the intrusive min-heap used by every priority queue
// on the scheduling hot path: the simulation event queue, the runnable
// child heaps of the hierarchy (internal/core), and the heap-based leaf
// schedulers (internal/sched). It replaces container/heap, whose
// interface-typed Push/Pop box every element into an `any` and dispatch
// every comparison through an interface table; here elements carry their
// own index and the comparison is a direct (generic) method call, so a
// steady-state push/pop/fix cycle performs no allocation at all.
//
// The sift-up/sift-down algorithm is the same as container/heap's, and
// because HeapLess is required to be a strict total order (keys tie-broken
// by a monotone sequence number), the minimum element — the only element
// scheduling decisions observe — is identical no matter how the rest of
// the array is arranged. Schedules are therefore bit-for-bit those of the
// container/heap implementation this replaced; TestHeapMatchesContainerHeap
// pins that equivalence.

// HeapItem constrains the element type of Heap. T is invariably a pointer
// to a struct that embeds its own heap-index field.
type HeapItem[T any] interface {
	// HeapLess reports whether the receiver must pop before other. It
	// must implement a strict total order: implementations compare their
	// priority key first and break exact ties on a monotonically
	// increasing sequence number, so equal keys pop FIFO and the heap
	// minimum is unique.
	HeapLess(other T) bool

	// HeapIndex returns a pointer to the field in which the heap keeps
	// the item's current position. The heap updates it on every move and
	// sets it to -1 when the item leaves the heap; items must initialize
	// it to -1 and never write it while queued.
	HeapIndex() *int
}

// Heap is an intrusive min-heap. The zero value is an empty heap ready
// for use. An item may be in at most one heap at a time (its index field
// admits only one position); this is exactly the ownership discipline the
// schedulers already maintain.
type Heap[T HeapItem[T]] struct {
	items []T
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Min returns the minimum item without removing it. It panics on an empty
// heap, like indexing a slice out of range.
func (h *Heap[T]) Min() T { return h.items[0] }

// Items exposes the underlying array for read-only scans (EEVDF's
// eligibility filter, invariant checkers). Callers must not reorder or
// mutate ordering keys through it.
func (h *Heap[T]) Items() []T { return h.items }

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	*x.HeapIndex() = len(h.items)
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum item, setting its index to -1.
func (h *Heap[T]) Pop() T {
	n := len(h.items) - 1
	h.swap(0, n)
	h.down(0, n)
	return h.remove(n)
}

// Remove removes and returns the item at index i, setting its index to -1.
func (h *Heap[T]) Remove(i int) T {
	n := len(h.items) - 1
	if n != i {
		h.swap(i, n)
		if !h.down(i, n) {
			h.up(i)
		}
	}
	return h.remove(n)
}

// Fix restores heap order after the item at index i changed its key. It is
// equivalent to Remove followed by Push of the same item, but cheaper.
func (h *Heap[T]) Fix(i int) {
	if !h.down(i, len(h.items)) {
		h.up(i)
	}
}

// remove detaches the (already sifted-to-last) item at position n.
func (h *Heap[T]) remove(n int) T {
	x := h.items[n]
	var zero T
	h.items[n] = zero // release the reference; the pool may outlive the item
	h.items = h.items[:n]
	*x.HeapIndex() = -1
	return x
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	*h.items[i].HeapIndex() = i
	*h.items[j].HeapIndex() = j
}

func (h *Heap[T]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.items[j].HeapLess(h.items[i]) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *Heap[T]) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.items[j2].HeapLess(h.items[j1]) {
			j = j2 // right child
		}
		if !h.items[j].HeapLess(h.items[i]) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}
