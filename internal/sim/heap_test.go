package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// hItem is a test heap element with the (key, seq) strict total order every
// scheduler in this repository uses.
type hItem struct {
	key float64
	seq uint64
	idx int
}

func (a *hItem) HeapLess(b *hItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (a *hItem) HeapIndex() *int { return &a.idx }

// refHeap drives the same elements through container/heap as the oracle.
type refHeap []*refItem

type refItem struct {
	key float64
	seq uint64
	idx int
}

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refItem)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// TestHeapMatchesContainerHeap drives Heap and container/heap through the
// same random operation sequences — push, pop, fix (with key mutation),
// remove at a random index — and requires identical minima, lengths, and
// pop order throughout. Keys are drawn from a small set so seq tie-breaks
// are exercised constantly.
func TestHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var h Heap[*hItem]
		var ref refHeap
		var hs []*hItem
		var rs []*refItem
		var seq uint64

		check := func(op string) {
			t.Helper()
			if h.Len() != ref.Len() {
				t.Fatalf("trial %d after %s: Len %d, oracle %d", trial, op, h.Len(), ref.Len())
			}
			if h.Len() > 0 {
				m, o := h.Min(), ref[0]
				if m.key != o.key || m.seq != o.seq {
					t.Fatalf("trial %d after %s: Min (%v,%d), oracle (%v,%d)",
						trial, op, m.key, m.seq, o.key, o.seq)
				}
			}
		}

		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 4 || h.Len() == 0: // push
				key := float64(rng.Intn(5))
				a := &hItem{key: key, seq: seq, idx: -1}
				b := &refItem{key: key, seq: seq, idx: -1}
				seq++
				h.Push(a)
				heap.Push(&ref, b)
				hs = append(hs, a)
				rs = append(rs, b)
				check("push")
			case r < 6: // pop
				a := h.Pop()
				b := heap.Pop(&ref).(*refItem)
				if a.key != b.key || a.seq != b.seq {
					t.Fatalf("trial %d: Pop (%v,%d), oracle (%v,%d)", trial, a.key, a.seq, b.key, b.seq)
				}
				if a.idx != -1 {
					t.Fatalf("trial %d: popped item keeps index %d", trial, a.idx)
				}
				hs = drop(hs, a)
				rs = dropRef(rs, b)
				check("pop")
			case r < 8: // fix with key mutation, same element in both heaps
				i := rng.Intn(len(hs))
				a, b := hs[i], rs[i]
				key := float64(rng.Intn(5))
				newSeq := seq
				seq++
				a.key, a.seq = key, newSeq
				b.key, b.seq = key, newSeq
				h.Fix(a.idx)
				heap.Fix(&ref, b.idx)
				check("fix")
			default: // remove a random live element
				i := rng.Intn(len(hs))
				a, b := hs[i], rs[i]
				got := h.Remove(a.idx)
				if got != a {
					t.Fatalf("trial %d: Remove returned wrong item", trial)
				}
				if a.idx != -1 {
					t.Fatalf("trial %d: removed item keeps index %d", trial, a.idx)
				}
				heap.Remove(&ref, b.idx)
				hs = drop(hs, a)
				rs = dropRef(rs, b)
				check("remove")
			}
			// Index integrity on every step.
			for i, it := range h.Items() {
				if it.idx != i {
					t.Fatalf("trial %d: item at %d has index %d", trial, i, it.idx)
				}
			}
		}

		// Drain: pop order must match exactly, including all ties.
		for h.Len() > 0 {
			a := h.Pop()
			b := heap.Pop(&ref).(*refItem)
			if a.key != b.key || a.seq != b.seq {
				t.Fatalf("trial %d drain: Pop (%v,%d), oracle (%v,%d)", trial, a.key, a.seq, b.key, b.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: oracle retains %d items", trial, ref.Len())
		}
	}
}

func drop(s []*hItem, x *hItem) []*hItem {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func dropRef(s []*refItem, x *refItem) []*refItem {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// TestHeapOperationsDoNotAllocate verifies the steady-state heap cycle is
// allocation-free once the backing array has grown.
func TestHeapOperationsDoNotAllocate(t *testing.T) {
	var h Heap[*hItem]
	items := make([]*hItem, 64)
	for i := range items {
		items[i] = &hItem{key: float64(i % 7), seq: uint64(i), idx: -1}
	}
	for _, it := range items {
		h.Push(it)
	}
	allocs := testing.AllocsPerRun(100, func() {
		it := h.Pop()
		it.key++
		h.Push(it)
		h.Fix(it.idx)
		min := h.Min()
		h.Remove(min.idx)
		h.Push(min)
	})
	if allocs != 0 {
		t.Fatalf("heap cycle allocates %v times per run, want 0", allocs)
	}
}

// TestEventPoolRecycles verifies fired and cancelled events are reused
// rather than reallocated, and that the pooled At/After path is
// allocation-free in steady state.
func TestEventPoolRecycles(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		eng.At(eng.Now(), fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(100, func() {
		ev := eng.At(eng.Now()+1, fn)
		eng.Cancel(ev)
		eng.At(eng.Now()+1, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("pooled event scheduling allocates %v times per run, want 0", allocs)
	}
}
