package synch

import (
	"testing"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func newSFQMachine(quantum sim.Time) (*cpu.Machine, *sched.SFQ) {
	leaf := sched.NewSFQ(quantum)
	return cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf), leaf
}

func msWork(ms int64) sched.Work { return cpu.DefaultRate.WorkFor(sim.Time(ms) * sim.Millisecond) }

func TestMutexHandsOverFIFO(t *testing.T) {
	m, leaf := newSFQMachine(10 * sim.Millisecond)
	mu := NewMutex("m", m, leaf)

	loops := make([]*CriticalLoop, 3)
	for i := range loops {
		th := sched.NewThread(i+1, "t", 1)
		loops[i] = &CriticalLoop{Mutex: mu, Thread: th, CS: msWork(5), Rounds: 50}
		m.Add(th, loops[i], sim.Time(i)) // staggered by 1 ns: deterministic order
	}
	m.Run(5 * sim.Second)

	for i, l := range loops {
		if len(l.AcquireDelays) != 50 {
			t.Errorf("loop %d acquired %d times, want 50", i, len(l.AcquireDelays))
		}
	}
	if mu.Owner() != nil || mu.Waiters() != 0 {
		t.Errorf("mutex not clean at end: owner=%v waiters=%d", mu.Owner(), mu.Waiters())
	}
	if mu.Contentions == 0 {
		t.Error("no contention recorded despite 3 threads")
	}
}

func TestMutexSerializesCriticalSections(t *testing.T) {
	// With pure lock/CS/unlock loops the total CS work equals total CPU
	// work: nothing overlaps, nothing is lost.
	m, leaf := newSFQMachine(10 * sim.Millisecond)
	mu := NewMutex("m", m, leaf)
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	m.Add(a, &CriticalLoop{Mutex: mu, Thread: a, CS: msWork(3)}, 0)
	m.Add(b, &CriticalLoop{Mutex: mu, Thread: b, CS: msWork(7)}, 0)
	m.Run(2 * sim.Second)
	m.Flush()
	st := m.Stats()
	total := a.Done + b.Done
	if total != st.Work {
		t.Errorf("accounting: %d vs %d", total, st.Work)
	}
	// The CPU is never idle: one of the two always owns or computes.
	if st.Idle > sim.Millisecond {
		t.Errorf("idle %v with a contended mutex", st.Idle)
	}
}

// TestPriorityInversionAvoidance reproduces §4's scenario: a low-weight
// thread holds a lock a high-weight thread needs while a medium-weight
// CPU hog runs. Without weight transfer the holder crawls at its own
// weight and the high-weight thread waits; with transfer the holder
// finishes the critical section at the combined weight.
func TestPriorityInversionAvoidance(t *testing.T) {
	run := func(transfer bool) sim.Time {
		leaf := sched.NewSFQ(sim.Millisecond)
		m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf)
		var donate *sched.SFQ
		if transfer {
			donate = leaf
		}
		mu := NewMutex("m", m, donate)

		low := sched.NewThread(1, "low", 1)
		lowLoop := &CriticalLoop{Mutex: mu, Thread: low, CS: msWork(50), Think: 5 * sim.Millisecond}
		m.Add(low, lowLoop, 0)

		// The hog saturates the CPU at weight 8.
		hog := sched.NewThread(2, "hog", 8)
		m.Add(hog, cpu.Forever(cpu.Compute(1_000_000)), 0)

		// The high-weight thread requests the lock at t=10ms, while low
		// holds it.
		high := sched.NewThread(3, "high", 16)
		highLoop := &CriticalLoop{Mutex: mu, Thread: high, CS: msWork(1), Rounds: 1}
		m.Add(high, highLoop, 10*sim.Millisecond)

		m.Run(10 * sim.Second)
		if len(highLoop.AcquireDelays) != 1 {
			t.Fatalf("high acquired %d times", len(highLoop.AcquireDelays))
		}
		return highLoop.AcquireDelays[0]
	}

	without := run(false)
	with := run(true)
	t.Logf("high-weight lock wait: without transfer %v, with transfer %v", without, with)
	// Without transfer, low runs its ~50 ms critical section at weight
	// 1/25 of the CPU; with the waiter's 16 donated it runs at 17/25.
	if with >= without {
		t.Fatalf("weight transfer did not help: %v >= %v", with, without)
	}
	if without < 5*with {
		t.Errorf("expected a large improvement, got %v -> %v", without, with)
	}
}

func TestMutexDonationRevokedAfterUnlock(t *testing.T) {
	m, leaf := newSFQMachine(sim.Millisecond)
	mu := NewMutex("m", m, leaf)
	holder := sched.NewThread(1, "holder", 1)
	waiter := sched.NewThread(2, "waiter", 9)

	if !mu.TryLock(holder) {
		t.Fatal("lock not free")
	}
	m.Add(holder, cpu.Forever(cpu.Compute(1_000_000)), 0)
	m.Add(waiter, cpu.ProgramFunc(func(now sim.Time) cpu.Action {
		if mu.Owner() == waiter {
			mu.Unlock(waiter)
			return cpu.Exit()
		}
		if mu.TryLock(waiter) {
			mu.Unlock(waiter)
			return cpu.Exit()
		}
		return cpu.Block()
	}), 0)

	m.Run(time10ms())
	if leaf.EffectiveWeight(holder) != 10 {
		t.Fatalf("effective weight %v during wait, want 10", leaf.EffectiveWeight(holder))
	}
	mu.Unlock(holder)
	if leaf.EffectiveWeight(holder) != 1 {
		t.Errorf("effective weight %v after unlock, want 1", leaf.EffectiveWeight(holder))
	}
	// The handover woke the waiter, whose program immediately unlocked
	// and exited.
	if waiter.State != sched.StateExited || mu.Owner() != nil {
		t.Errorf("handover failed: waiter=%v owner=%v", waiter.State, mu.Owner())
	}
}

func time10ms() sim.Time { return 10 * sim.Millisecond }

func TestMutexMisusePanics(t *testing.T) {
	m, leaf := newSFQMachine(sim.Millisecond)
	mu := NewMutex("m", m, leaf)
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)

	if !mu.TryLock(a) {
		t.Fatal("lock busy")
	}
	for name, fn := range map[string]func(){
		"relock":         func() { mu.TryLock(a) },
		"unlock by peer": func() { mu.Unlock(b) },
		"nil trylock":    func() { mu.TryLock(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWakeSemantics(t *testing.T) {
	leaf := sched.NewSFQ(sim.Millisecond)
	m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf)
	a := sched.NewThread(1, "a", 1)
	woke := false
	m.Add(a, cpu.ProgramFunc(func(now sim.Time) cpu.Action {
		if woke {
			return cpu.Exit()
		}
		woke = true
		return cpu.Block()
	}), 0)
	m.Run(sim.Millisecond)
	if a.State != sched.StateBlocked {
		t.Fatalf("state %v", a.State)
	}
	// Waking a runnable thread is a no-op; waking a blocked one works;
	// waking it twice is a no-op again.
	if !m.Wake(a) {
		t.Error("wake of blocked thread failed")
	}
	m.Run(10 * sim.Millisecond)
	if a.State != sched.StateExited {
		t.Errorf("state %v after wake", a.State)
	}
	if m.Wake(a) {
		t.Error("wake of exited thread succeeded")
	}
}

// TestWakeCancelsTimedSleep: a Wake may arrive before a timed sleep
// expires (lock released early); the timer must be cancelled, not fire a
// second wake.
func TestWakeCancelsTimedSleep(t *testing.T) {
	leaf := sched.NewSFQ(sim.Millisecond)
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, cpu.DefaultRate, leaf)
	a := sched.NewThread(1, "a", 1)
	phase := 0
	m.Add(a, cpu.ProgramFunc(func(now sim.Time) cpu.Action {
		phase++
		switch phase {
		case 1:
			return cpu.Sleep(sim.Second)
		case 2:
			if now != 10*sim.Millisecond {
				t.Errorf("woke at %v, want 10ms", now)
			}
			return cpu.Compute(1000)
		default:
			return cpu.Exit()
		}
	}), 0)
	eng.At(10*sim.Millisecond, func() { m.Wake(a) })
	m.Run(2 * sim.Second)
	if a.State != sched.StateExited {
		t.Errorf("state %v", a.State)
	}
	if phase != 3 {
		t.Errorf("program advanced %d phases, want 3 (timer must not re-fire)", phase)
	}
}
