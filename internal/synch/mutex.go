// Package synch provides simulated synchronization between threads and
// implements the paper's §4 remedy for priority inversion under an SFQ
// leaf: "priority inversion can be avoided by transferring the weight of
// the blocked thread to the thread that is blocking it. Such a transfer
// will ensure that the blocking thread will have a weight (and hence, the
// CPU allocation) that is at least as large as the weight of the blocked
// thread."
//
// A Mutex hands ownership to waiters in FIFO order. While a thread waits,
// its weight is donated to the current owner (when the leaf scheduler is
// SFQ and transfer is enabled), and re-donated if ownership changes before
// the waiter gets its turn.
package synch

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Mutex is a simulated lock. It is driven from thread programs via
// TryLock/Unlock; blocking and waking go through the machine.
type Mutex struct {
	machine *cpu.Machine
	sfq     *sched.SFQ // non-nil: donate waiter weights to the owner
	name    string

	owner     *sched.Thread
	waiters   []*sched.Thread
	donations map[*sched.Thread]sched.Donation // by waiter

	// Contentions counts TryLock calls that had to wait.
	Contentions int
}

// NewMutex returns a mutex for threads running on m. If leaf is non-nil,
// waiter weights are transferred to the owner for the duration of the
// wait (the paper's priority-inversion avoidance); it must be the SFQ
// scheduler of the leaf class the participating threads share.
func NewMutex(name string, m *cpu.Machine, leaf *sched.SFQ) *Mutex {
	if m == nil {
		panic("synch: nil machine")
	}
	return &Mutex{
		machine:   m,
		sfq:       leaf,
		name:      name,
		donations: make(map[*sched.Thread]sched.Donation),
	}
}

// Owner returns the current owner, or nil.
func (mu *Mutex) Owner() *sched.Thread { return mu.owner }

// Waiters returns the number of queued waiters.
func (mu *Mutex) Waiters() int { return len(mu.waiters) }

// TryLock attempts to take the mutex for t. On success (the mutex was
// free) it returns true. Otherwise t is queued, its weight is donated to
// the owner, and false is returned — the calling program must then return
// cpu.Block(); when the mutex is handed over, t is woken already owning
// it.
func (mu *Mutex) TryLock(t *sched.Thread) bool {
	if t == nil {
		panic("synch: TryLock(nil)")
	}
	if mu.owner == t {
		panic(fmt.Sprintf("synch: %v relocking %s", t, mu.name))
	}
	if mu.owner == nil {
		mu.owner = t
		return true
	}
	for _, w := range mu.waiters {
		if w == t {
			panic(fmt.Sprintf("synch: %v already waiting on %s", t, mu.name))
		}
	}
	mu.waiters = append(mu.waiters, t)
	mu.Contentions++
	if mu.sfq != nil {
		mu.donations[t] = mu.sfq.Donate(t, mu.owner)
	}
	return false
}

// Unlock releases the mutex, which t must own. Donations made to t are
// revoked; the first waiter (if any) becomes the owner, receives the
// remaining waiters' donations, and is woken.
func (mu *Mutex) Unlock(t *sched.Thread) {
	if mu.owner != t {
		panic(fmt.Sprintf("synch: %v unlocking %s owned by %v", t, mu.name, mu.owner))
	}
	if mu.sfq != nil {
		for w, d := range mu.donations {
			mu.sfq.Revoke(d)
			delete(mu.donations, w)
		}
	}
	if len(mu.waiters) == 0 {
		mu.owner = nil
		return
	}
	next := mu.waiters[0]
	mu.waiters = mu.waiters[1:]
	mu.owner = next
	if mu.sfq != nil {
		for _, w := range mu.waiters {
			mu.donations[w] = mu.sfq.Donate(w, next)
		}
	}
	if !mu.machine.Wake(next) {
		panic(fmt.Sprintf("synch: handing %s to %v which is not blocked", mu.name, next))
	}
}

// CriticalLoop is a program that repeatedly acquires Mutex, computes CS
// inside the critical section, releases, computes Outside, then sleeps
// Think. Outside and Think may be zero. AcquireDelays records, per
// acquisition, how long the thread waited for the lock.
type CriticalLoop struct {
	Mutex   *Mutex
	Thread  *sched.Thread
	CS      sched.Work
	Outside sched.Work
	Think   sim.Time
	// Rounds bounds the number of lock/unlock cycles; 0 means forever.
	Rounds int

	// AcquireDelays[i] is the wall time between requesting and holding
	// the lock the i-th time.
	AcquireDelays []sim.Time

	phase       loopPhase
	requestedAt sim.Time
	done        int
}

type loopPhase int

const (
	phAcquire loopPhase = iota
	phWokenOwner
	phCSDone
	phOutsideDone
)

// Next implements cpu.Program. Each call is the completion of the
// previous action; the phase names what that previous action was about to
// achieve.
func (c *CriticalLoop) Next(now sim.Time) cpu.Action {
	if c.Mutex == nil || c.Thread == nil || c.CS <= 0 {
		panic("synch: CriticalLoop misconfigured")
	}
	for {
		switch c.phase {
		case phAcquire:
			if c.Rounds > 0 && c.done >= c.Rounds {
				return cpu.Exit()
			}
			c.requestedAt = now
			if c.Mutex.TryLock(c.Thread) {
				c.AcquireDelays = append(c.AcquireDelays, 0)
				c.phase = phCSDone
				return cpu.Compute(c.CS)
			}
			// Blocked; Unlock hands us ownership and wakes us.
			c.phase = phWokenOwner
			return cpu.Block()
		case phWokenOwner:
			if c.Mutex.Owner() != c.Thread {
				panic(fmt.Sprintf("synch: %v woke without owning %s", c.Thread, c.Mutex.name))
			}
			c.AcquireDelays = append(c.AcquireDelays, now-c.requestedAt)
			c.phase = phCSDone
			return cpu.Compute(c.CS)
		case phCSDone:
			c.Mutex.Unlock(c.Thread)
			c.done++
			c.phase = phOutsideDone
			if c.Outside > 0 {
				return cpu.Compute(c.Outside)
			}
		case phOutsideDone:
			c.phase = phAcquire
			if c.Think > 0 {
				return cpu.Sleep(c.Think)
			}
		}
	}
}

// MaxAcquireDelay returns the largest recorded lock wait.
func (c *CriticalLoop) MaxAcquireDelay() sim.Time {
	var max sim.Time
	for _, d := range c.AcquireDelays {
		if d > max {
			max = d
		}
	}
	return max
}
