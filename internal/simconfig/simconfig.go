// Package simconfig builds a complete simulation — scheduling structure,
// machine, interrupt sources, threads and their programs — from a JSON
// description, the configuration surface of cmd/hsfqsim.
//
// A minimal config:
//
//	{
//	  "rate_mips": 100,
//	  "horizon": "30s",
//	  "nodes": [
//	    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
//	    {"path": "/be/user1", "weight": 6, "leaf": "svr4"}
//	  ],
//	  "threads": [
//	    {"name": "dec", "leaf": "/soft", "weight": 5,
//	     "program": {"kind": "mpeg", "frames": 100000, "loop": true}},
//	    {"name": "hog", "leaf": "/be/user1",
//	     "program": {"kind": "loop"}}
//	  ]
//	}
package simconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/trace"
	"hsfq/internal/workload"
)

// Duration is a sim.Time that unmarshals from Go duration strings
// ("10ms") or bare nanosecond numbers.
type Duration sim.Time

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("simconfig: bad duration %q: %w", s, err)
		}
		*d = Duration(v.Nanoseconds())
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("simconfig: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Time converts to the simulator unit.
func (d Duration) Time() sim.Time { return sim.Time(d) }

// Config is the top-level simulation description.
type Config struct {
	// RateMIPS is the CPU speed; 0 means 100 MIPS.
	RateMIPS int64 `json:"rate_mips"`
	// Horizon is how long to simulate; 0 means 30 s.
	Horizon Duration `json:"horizon"`
	// Seed drives all randomness; same seed, same run.
	Seed uint64 `json:"seed"`
	// Cores is the machine's core count; 0 means 1. The new multicore
	// fields all carry omitempty so that single-core configs marshal to
	// exactly the pre-SMP JSON — checkpoint embeddings and sweep job keys
	// are unchanged.
	Cores int `json:"cores,omitempty"`
	// Policy selects how cores share scheduling state: "partitioned"
	// (default; one hierarchy per core, static placement), "global" (one
	// shared hierarchy feeding all cores), or "steal" (partitioned plus
	// work stealing). Ignored at cores <= 1.
	Policy string `json:"policy,omitempty"`
	// SwitchCost is CPU time charged on every dispatch; MigrationCost is
	// charged additionally when the dispatched thread last ran on a
	// different core. Both default to 0, the paper's free-dispatch
	// idealization.
	SwitchCost    Duration `json:"switch_cost,omitempty"`
	MigrationCost Duration `json:"migration_cost,omitempty"`
	// EventQueue selects the engine's pending-event structure by
	// sim.NewEventQueue name: "heap" (default) or "wheel". Any conforming
	// queue produces byte-identical output — the knob only changes speed —
	// so it carries omitempty and configs that omit it marshal to exactly
	// the pre-PR-7 JSON (checkpoint embeddings and sweep job keys are
	// unchanged).
	EventQueue string `json:"event_queue,omitempty"`
	// Nodes describe the scheduling structure; parents are created
	// implicitly with weight 1 (override by listing them first).
	Nodes []NodeConfig `json:"nodes"`
	// Threads to run.
	Threads []ThreadConfig `json:"threads"`
	// Interrupts optionally load the CPU at top priority.
	Interrupts []InterruptConfig `json:"interrupts"`
}

// NodeConfig describes one node of the scheduling structure.
type NodeConfig struct {
	Path   string  `json:"path"`
	Weight float64 `json:"weight"`
	// Leaf selects a scheduler by registry name (any of sched.Names():
	// "sfq", "rr", "fifo", "priority", "reserves", "edf", "rm", "svr4",
	// "lottery", "stride", "eevdf", "mlfq", "drr"); empty means
	// intermediate node.
	Leaf    string   `json:"leaf"`
	Quantum Duration `json:"quantum"`
	// Levels and Aging parameterize multilevel feedback leaves (mlfq):
	// the priority-level count and the starvation-boost wait bound. Zero
	// selects the algorithm defaults; other leaves ignore them. Both carry
	// omitempty so pre-existing configs marshal byte-identically
	// (checkpoint embeddings and sweep job keys are unchanged).
	Levels int      `json:"levels,omitempty"`
	Aging  Duration `json:"aging,omitempty"`
}

// ThreadConfig describes one thread.
type ThreadConfig struct {
	Name    string        `json:"name"`
	Leaf    string        `json:"leaf"`
	Weight  float64       `json:"weight"`
	Start   Duration      `json:"start"`
	Program ProgramConfig `json:"program"`
	// RTPriority places the thread in an SVR4 leaf's real-time class.
	RTPriority *int `json:"rt_priority"`
	// ReserveCost/ReservePeriod grant the thread a capacity reserve in a
	// "reserves" leaf: ReserveCost of CPU time every ReservePeriod.
	ReserveCost   Duration `json:"reserve_cost"`
	ReservePeriod Duration `json:"reserve_period"`
	// Affinity pins the thread to a home core on a multicore machine;
	// unset threads are placed round-robin (thread index mod cores).
	Affinity *int `json:"affinity,omitempty"`
	// Period declares the thread's job period to deadline-driven leaves
	// (edf assigns each job the deadline release+Period, rm ranks by
	// period). It is a declaration, not a behavior: nothing checks that
	// the program's actual release pattern honors it, which is exactly
	// the lying-task surface internal/adversary's deadline-inflation
	// attack exercises. Zero means background (no deadline). Carries
	// omitempty so pre-existing configs marshal byte-identically.
	Period Duration `json:"period,omitempty"`
}

// ProgramConfig describes a thread's behaviour.
type ProgramConfig struct {
	// Kind: "loop", "dhrystone", "mpeg", "trace", "periodic",
	// "interactive", "onoff".
	Kind string `json:"kind"`
	// trace: path to a recorded per-item cost file (workload.ReadCosts
	// format); played through a Decoder, honoring Loop.
	File string `json:"file"`
	// loop/dhrystone: work per burst (instructions); 0 = 10 ms worth.
	Burst int64 `json:"burst"`
	// dhrystone: fault cadence.
	FaultEvery int      `json:"fault_every"`
	FaultSleep Duration `json:"fault_sleep"`
	// mpeg: trace length and looping.
	Frames int  `json:"frames"`
	Loop   bool `json:"loop"`
	// periodic: cost per period.
	Period Duration `json:"period"`
	Cost   Duration `json:"cost"`
	// interactive: think/burst means.
	ThinkMean Duration `json:"think_mean"`
	// onoff: bursts per on-phase and off duration.
	Bursts int      `json:"bursts"`
	Off    Duration `json:"off"`
}

// InterruptConfig describes an interrupt source.
type InterruptConfig struct {
	// Kind: "periodic", "poisson", "burst".
	Kind    string   `json:"kind"`
	Period  Duration `json:"period"`
	Service Duration `json:"service"`
	// poisson: arrivals per second and mean service.
	RatePerSec float64 `json:"rate_per_sec"`
	// burst: interrupts per burst.
	Count int `json:"count"`
}

// Simulation is a ready-to-run build of a Config.
type Simulation struct {
	Config  Config
	Engine  *sim.Engine
	Machine *cpu.Machine
	// Structure is Structures[0]: the machine's only scheduling structure
	// on a single-core build or under the global policy.
	Structure *core.Structure
	// Structures holds every scheduling structure the build created — one
	// per core for the partitioned and steal policies, one shared
	// otherwise. All of them are part of a checkpoint's mutable state.
	Structures []*core.Structure
	Threads    []*sched.Thread
	// Periodics exposes deadline-tracking programs by thread name.
	Periodics map[string]*workload.Periodic
	// Decoders exposes frame-counting programs by thread name.
	Decoders map[string]*workload.Decoder
}

// Parse decodes a JSON config.
func Parse(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("simconfig: %w", err)
	}
	return c, nil
}

// programKinds mirrors the switch in buildProgram; Validate checks
// against it so a bad kind is reported before any simulation state is
// built. Interrupt kinds are validated in the per-kind switch in
// Validate, which also enforces each source's parameter constraints.
var programKinds = map[string]bool{
	"": true, "loop": true, "dhrystone": true, "mpeg": true,
	"trace": true, "periodic": true, "interactive": true, "onoff": true,
}

// FieldError is a validation failure located by the JSON field path of
// the offending value ("threads[2].leaf"), so request-scoped callers —
// the hsfqd daemon's 400 responses in particular — can point clients at
// the exact field without parsing the message. Error() keeps the
// human-readable form CLI tools print.
type FieldError struct {
	// Field is the JSON path of the bad value, e.g. "nodes[0].leaf".
	Field string
	// Msg is the human-readable description, without the package prefix.
	Msg string
}

func (e *FieldError) Error() string { return "simconfig: " + e.Msg }

func fieldErr(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the config's structural consistency — at least one
// node, registered leaf/program/interrupt kinds, thread names present and
// unique, every thread attached to a declared leaf — without building
// anything. Build calls it; sweep engines call it once per grid point
// before instantiating the point at many seeds. Failures are *FieldError
// values carrying the JSON path of the offending field.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fieldErr("nodes", "no nodes")
	}
	if c.RateMIPS < 0 {
		return fieldErr("rate_mips", "negative rate %d", c.RateMIPS)
	}
	if c.Horizon < 0 {
		return fieldErr("horizon", "negative horizon %d", c.Horizon)
	}
	if c.Cores < 0 {
		return fieldErr("cores", "negative core count %d", c.Cores)
	}
	if _, err := cpu.ParsePolicy(c.Policy); err != nil {
		return fieldErr("policy", "unknown policy %q (have partitioned, global, steal)", c.Policy)
	}
	if c.SwitchCost < 0 {
		return fieldErr("switch_cost", "negative switch cost %d", c.SwitchCost)
	}
	if c.MigrationCost < 0 {
		return fieldErr("migration_cost", "negative migration cost %d", c.MigrationCost)
	}
	if !sim.KnownEventQueue(c.EventQueue) {
		return fieldErr("event_queue", "unknown event queue %q (have %v)", c.EventQueue, sim.EventQueueNames())
	}
	leaves := map[string]bool{}
	for i, nc := range c.Nodes {
		if nc.Path == "" {
			return fieldErr(fmt.Sprintf("nodes[%d].path", i), "node with empty path")
		}
		if !validWeight(nc.Weight) {
			return fieldErr(fmt.Sprintf("nodes[%d].weight", i), "node %q: weight must be a finite non-negative number, got %v", nc.Path, nc.Weight)
		}
		if nc.Quantum < 0 {
			return fieldErr(fmt.Sprintf("nodes[%d].quantum", i), "node %q: negative quantum", nc.Path)
		}
		// The mlfq/drr constructors panic on out-of-range level geometry;
		// every such combination must be a validation error instead
		// (FuzzParseConfig enforces the equivalence).
		if nc.Levels < 0 || nc.Levels > sched.MLFQMaxLevels {
			return fieldErr(fmt.Sprintf("nodes[%d].levels", i), "node %q: levels %d outside [0, %d]", nc.Path, nc.Levels, sched.MLFQMaxLevels)
		}
		if nc.Aging < 0 {
			return fieldErr(fmt.Sprintf("nodes[%d].aging", i), "node %q: negative aging bound", nc.Path)
		}
		if nc.Leaf == "mlfq" && sched.MLFQQuantumOverflows(nc.Levels, nc.Quantum.Time()) {
			return fieldErr(fmt.Sprintf("nodes[%d].quantum", i), "node %q: quantum %v cannot be doubled across %d mlfq levels", nc.Path, nc.Quantum.Time(), nc.Levels)
		}
		if nc.Leaf == "drr" && sched.DRRQuantumOverflows(nc.Quantum.Time()) {
			return fieldErr(fmt.Sprintf("nodes[%d].quantum", i), "node %q: quantum %v overflows drr's adaptation band", nc.Path, nc.Quantum.Time())
		}
		if nc.Leaf != "" {
			if !sched.Known(nc.Leaf) {
				return fieldErr(fmt.Sprintf("nodes[%d].leaf", i), "node %q: unknown leaf scheduler %q (have %v)", nc.Path, nc.Leaf, sched.Names())
			}
			// The global and stealing policies remove a running thread
			// from the shared hierarchy and re-enqueue it before charging;
			// only position-independent leaves survive that protocol.
			if c.NumCores() > 1 && c.Policy != "" && c.Policy != "partitioned" && !sched.SMPSafe(nc.Leaf) {
				return fieldErr(fmt.Sprintf("nodes[%d].leaf", i),
					"node %q: leaf %q does not support the %q policy (dequeue-safe leaves: %v); use partitioned placement",
					nc.Path, nc.Leaf, c.Policy, sched.SMPSafeNames())
			}
			leaves[nc.Path] = true
		}
	}
	names := map[string]bool{}
	for i, tc := range c.Threads {
		if tc.Name == "" {
			return fieldErr(fmt.Sprintf("threads[%d].name", i), "thread %d has no name", i)
		}
		if names[tc.Name] {
			return fieldErr(fmt.Sprintf("threads[%d].name", i), "duplicate thread name %q", tc.Name)
		}
		names[tc.Name] = true
		if !leaves[tc.Leaf] {
			return fieldErr(fmt.Sprintf("threads[%d].leaf", i), "thread %q: no leaf %q", tc.Name, tc.Leaf)
		}
		if !validWeight(tc.Weight) {
			return fieldErr(fmt.Sprintf("threads[%d].weight", i), "thread %q: weight must be a finite non-negative number, got %v", tc.Name, tc.Weight)
		}
		if tc.Start < 0 {
			return fieldErr(fmt.Sprintf("threads[%d].start", i), "thread %q: negative start time", tc.Name)
		}
		if tc.RTPriority != nil && (*tc.RTPriority < 0 || *tc.RTPriority >= sched.RTLevels) {
			return fieldErr(fmt.Sprintf("threads[%d].rt_priority", i), "thread %q: rt_priority %d outside [0, %d)", tc.Name, *tc.RTPriority, sched.RTLevels)
		}
		if tc.ReserveCost < 0 || tc.ReservePeriod < 0 {
			return fieldErr(fmt.Sprintf("threads[%d].reserve_cost", i), "thread %q: negative reserve cost or period", tc.Name)
		}
		if tc.ReserveCost > 0 && tc.ReservePeriod <= 0 {
			return fieldErr(fmt.Sprintf("threads[%d].reserve_period", i), "thread %q: reserve cost without a positive period", tc.Name)
		}
		if tc.Affinity != nil && (*tc.Affinity < 0 || *tc.Affinity >= c.NumCores()) {
			return fieldErr(fmt.Sprintf("threads[%d].affinity", i), "thread %q: affinity %d outside [0, %d)", tc.Name, *tc.Affinity, c.NumCores())
		}
		if tc.Period < 0 {
			return fieldErr(fmt.Sprintf("threads[%d].period", i), "thread %q: negative period", tc.Name)
		}
		if !programKinds[tc.Program.Kind] {
			return fieldErr(fmt.Sprintf("threads[%d].program.kind", i), "thread %q: unknown program %q", tc.Name, tc.Program.Kind)
		}
		if err := tc.Program.validate(fmt.Sprintf("threads[%d].program", i), tc.Name); err != nil {
			return err
		}
	}
	for i, ic := range c.Interrupts {
		// The cpu interrupt sources panic on misconfiguration — they treat
		// it as a programming error — so every constraint they enforce
		// must be rejected here, where bad input is a 400, not a crash.
		switch ic.Kind {
		case "periodic":
			if ic.Period <= 0 || ic.Service < 0 {
				return fieldErr(fmt.Sprintf("interrupts[%d].period", i), "periodic interrupt needs a positive period and non-negative service")
			}
		case "poisson":
			if !(ic.RatePerSec > 0) || math.IsInf(ic.RatePerSec, 1) {
				return fieldErr(fmt.Sprintf("interrupts[%d].rate_per_sec", i), "poisson interrupt rate must be a finite positive number, got %v", ic.RatePerSec)
			}
			if ic.Service <= 0 {
				return fieldErr(fmt.Sprintf("interrupts[%d].service", i), "poisson interrupt needs a positive mean service time")
			}
		case "burst":
			if ic.Period <= 0 || ic.Count <= 0 || ic.Service <= 0 {
				return fieldErr(fmt.Sprintf("interrupts[%d]", i), "burst interrupt needs positive period, count, and service")
			}
		default:
			return fieldErr(fmt.Sprintf("interrupts[%d].kind", i), "unknown interrupt kind %q", ic.Kind)
		}
	}
	return nil
}

// NumCores returns the effective core count: Cores, with 0 meaning 1.
func (c Config) NumCores() int {
	if c.Cores <= 0 {
		return 1
	}
	return c.Cores
}

// StructureOf returns the structure t is attached to, or nil for a thread
// the build does not know.
func (s *Simulation) StructureOf(t *sched.Thread) *core.Structure {
	for _, st := range s.Structures {
		if st.LeafOf(t) != nil {
			return st
		}
	}
	return nil
}

// validWeight rejects the values that would panic deep inside the
// scheduler layer: negatives (sched.NewThread panics), NaN and Inf
// (virtual-time tags would stop ordering). Zero is fine — Build treats it
// as "default 1".
func validWeight(w float64) bool {
	return w >= 0 && !math.IsInf(w, 1)
}

func (p ProgramConfig) validate(field, thread string) error {
	if p.Burst < 0 {
		return fieldErr(field+".burst", "thread %q: negative burst", thread)
	}
	if p.FaultEvery < 0 || p.FaultSleep < 0 {
		return fieldErr(field+".fault_every", "thread %q: negative fault cadence", thread)
	}
	if p.Frames < 0 {
		return fieldErr(field+".frames", "thread %q: negative frame count", thread)
	}
	if p.Period < 0 || p.Cost < 0 {
		return fieldErr(field+".period", "thread %q: negative period or cost", thread)
	}
	if p.ThinkMean < 0 {
		return fieldErr(field+".think_mean", "thread %q: negative think time", thread)
	}
	if p.Bursts < 0 || p.Off < 0 {
		return fieldErr(field+".bursts", "thread %q: negative on-off shape", thread)
	}
	return nil
}

// BuildOptions parameterize one instantiation of a parsed Config.
type BuildOptions struct {
	// Seed, when non-zero, overrides the config's seed, so one parsed
	// Config can be instantiated at many seeds without re-reading JSON.
	Seed uint64
}

// Build constructs the simulation described by c at the options' seed.
func Build(c Config, opt BuildOptions) (*Simulation, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Seed != 0 {
		c.Seed = opt.Seed
	}
	if c.RateMIPS == 0 {
		c.RateMIPS = 100
	}
	if c.Horizon == 0 {
		c.Horizon = Duration(30 * sim.Second)
	}
	rate := cpu.MIPS(c.RateMIPS)
	queue, err := sim.NewEventQueue(c.EventQueue)
	if err != nil {
		return nil, fmt.Errorf("simconfig: %w", err)
	}
	eng := sim.NewEngineWith(queue)
	rng := sim.NewRand(c.Seed)
	nCores := c.NumCores()
	policy, err := cpu.ParsePolicy(c.Policy)
	if err != nil {
		return nil, fmt.Errorf("simconfig: %w", err)
	}
	// One structure per core under partitioned/steal, one shared structure
	// under global or on a uniprocessor. Structures are built in core
	// order, nodes in config order, so every leaf RNG fork is drawn in a
	// deterministic sequence — and a single-core build draws exactly the
	// pre-SMP sequence.
	nStructs := nCores
	if policy == cpu.PolicyGlobal || nCores == 1 {
		nStructs = 1
	}
	structures := make([]*core.Structure, nStructs)
	leaves := make([]map[string]core.NodeID, nStructs)
	svr4s := make([]map[string]*sched.SVR4, nStructs)
	reserves := make([]map[string]*sched.Reserves, nStructs)
	for k := 0; k < nStructs; k++ {
		s := core.NewStructure()
		structures[k] = s
		leaves[k] = map[string]core.NodeID{}
		svr4s[k] = map[string]*sched.SVR4{}
		reserves[k] = map[string]*sched.Reserves{}
		for _, nc := range c.Nodes {
			w := nc.Weight
			if w == 0 {
				w = 1
			}
			var leaf sched.Scheduler
			if nc.Leaf != "" {
				var err error
				leaf, err = sched.New(nc.Leaf, sched.LeafConfig{
					Quantum: nc.Quantum.Time(),
					IPS:     int64(rate),
					RNG:     rng,
					Levels:  nc.Levels,
					Aging:   nc.Aging.Time(),
				})
				if err != nil {
					return nil, fmt.Errorf("simconfig: node %q: %w", nc.Path, err)
				}
			}
			id, err := s.MknodPath(nc.Path, w, leaf)
			if err != nil {
				return nil, fmt.Errorf("simconfig: node %q: %w", nc.Path, err)
			}
			if leaf != nil {
				leaves[k][nc.Path] = id
				if v, ok := leaf.(*sched.SVR4); ok {
					svr4s[k][nc.Path] = v
				}
				if v, ok := leaf.(*sched.Reserves); ok {
					reserves[k][nc.Path] = v
				}
			}
		}
	}

	scheds := make([]sched.Scheduler, nStructs)
	for k, s := range structures {
		scheds[k] = s
	}
	m := cpu.NewSMP(eng, rate, cpu.SMPConfig{
		Cores:         nCores,
		Policy:        policy,
		Schedulers:    scheds,
		SwitchCost:    c.SwitchCost.Time(),
		MigrationCost: c.MigrationCost.Time(),
	})
	simn := &Simulation{
		Config:     c,
		Engine:     eng,
		Machine:    m,
		Structure:  structures[0],
		Structures: structures,
		Periodics:  map[string]*workload.Periodic{},
		Decoders:   map[string]*workload.Decoder{},
	}

	for i, tc := range c.Threads {
		home := i % nCores
		if tc.Affinity != nil {
			home = *tc.Affinity
		}
		sidx := home
		if nStructs == 1 {
			sidx = 0
		}
		id, ok := leaves[sidx][tc.Leaf]
		if !ok {
			return nil, fmt.Errorf("simconfig: thread %q: no leaf %q", tc.Name, tc.Leaf)
		}
		w := tc.Weight
		if w == 0 {
			w = 1
		}
		th := sched.NewThread(i+1, tc.Name, w)
		th.Period = tc.Period.Time()
		prog, err := buildProgram(simn, tc, rate, rng)
		if err != nil {
			return nil, err
		}
		if tc.RTPriority != nil {
			v, ok := svr4s[sidx][tc.Leaf]
			if !ok {
				return nil, fmt.Errorf("simconfig: thread %q: rt_priority needs an svr4 leaf", tc.Name)
			}
			v.SetRealTime(th, *tc.RTPriority)
		}
		if tc.ReserveCost > 0 || tc.ReservePeriod > 0 {
			v, ok := reserves[sidx][tc.Leaf]
			if !ok {
				return nil, fmt.Errorf("simconfig: thread %q: reserve needs a reserves leaf", tc.Name)
			}
			if tc.ReserveCost <= 0 || tc.ReservePeriod <= 0 {
				return nil, fmt.Errorf("simconfig: thread %q: reserve needs both cost and period", tc.Name)
			}
			v.SetReserve(th, rate.WorkFor(tc.ReserveCost.Time()), tc.ReservePeriod.Time())
		}
		if err := structures[sidx].Attach(th, id); err != nil {
			return nil, fmt.Errorf("simconfig: thread %q: %w", tc.Name, err)
		}
		m.AddOn(th, prog, tc.Start.Time(), home)
		simn.Threads = append(simn.Threads, th)
	}

	for _, ic := range c.Interrupts {
		src, err := buildInterrupt(ic, rng)
		if err != nil {
			return nil, err
		}
		m.AddInterrupts(src)
	}
	return simn, nil
}

// Run executes the simulation to its horizon and settles accounting.
func (s *Simulation) Run() {
	s.Machine.Run(s.Config.Horizon.Time())
	s.Machine.Flush()
}

// ThreadMetas returns each thread's position in the scheduling tree —
// the sideband trace streams and hierarchy-aware renderers need to lay
// events out by depth. Order matches s.Threads (and thus config order).
func (s *Simulation) ThreadMetas() []trace.ThreadMeta {
	out := make([]trace.ThreadMeta, 0, len(s.Threads))
	for _, th := range s.Threads {
		m := trace.ThreadMeta{TID: th.ID, Name: th.Name}
		if st := s.StructureOf(th); st != nil {
			m.Path = st.PathOf(st.LeafOf(th).ID())
			m.Depth = trace.DepthFromPath(m.Path)
		}
		out = append(out, m)
	}
	return out
}

func buildProgram(s *Simulation, tc ThreadConfig, rate cpu.Rate, rng *sim.Rand) (cpu.Program, error) {
	pc := tc.Program
	burst := sched.Work(pc.Burst)
	if burst == 0 {
		burst = rate.WorkFor(10 * sim.Millisecond)
	}
	switch pc.Kind {
	case "", "loop":
		return workload.CPUBound(burst), nil
	case "dhrystone":
		d := workload.Dhrystone{
			LoopWork:   rate.WorkFor(100 * sim.Microsecond),
			FaultEvery: pc.FaultEvery,
			FaultSleep: pc.FaultSleep.Time(),
		}
		return d.Program(), nil
	case "mpeg":
		frames := pc.Frames
		if frames == 0 {
			frames = 100000
		}
		gen := workload.DefaultMPEG(int64(rate), rng.Fork())
		dec := workload.NewDecoder(gen.Trace(frames), pc.Loop)
		s.Decoders[tc.Name] = dec
		return dec, nil
	case "trace":
		if pc.File == "" {
			return nil, fmt.Errorf("simconfig: thread %q: trace needs a file", tc.Name)
		}
		f, err := os.Open(pc.File)
		if err != nil {
			return nil, fmt.Errorf("simconfig: thread %q: %w", tc.Name, err)
		}
		costs, err := workload.ReadCosts(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("simconfig: thread %q: %w", tc.Name, err)
		}
		dec := workload.NewDecoder(costs, pc.Loop)
		s.Decoders[tc.Name] = dec
		return dec, nil
	case "periodic":
		if pc.Period == 0 || pc.Cost == 0 {
			return nil, fmt.Errorf("simconfig: thread %q: periodic needs period and cost", tc.Name)
		}
		p := &workload.Periodic{
			Period: pc.Period.Time(),
			Cost:   rate.WorkFor(pc.Cost.Time()),
		}
		s.Periodics[tc.Name] = p
		return p, nil
	case "interactive":
		think := pc.ThinkMean.Time()
		if think == 0 {
			think = 150 * sim.Millisecond
		}
		iv := workload.Interactive{ThinkMean: think, BurstMean: burst, Rand: rng.Fork()}
		return iv.Program(), nil
	case "onoff":
		bursts := pc.Bursts
		if bursts == 0 {
			bursts = 10
		}
		off := pc.Off.Time()
		if off == 0 {
			off = sim.Second
		}
		return workload.OnOff(burst, bursts, off), nil
	default:
		return nil, fmt.Errorf("simconfig: thread %q: unknown program %q", tc.Name, pc.Kind)
	}
}

func buildInterrupt(ic InterruptConfig, rng *sim.Rand) (cpu.InterruptSource, error) {
	switch ic.Kind {
	case "periodic":
		return &cpu.PeriodicInterrupts{Period: ic.Period.Time(), Service: ic.Service.Time()}, nil
	case "poisson":
		return &cpu.PoissonInterrupts{RatePerSec: ic.RatePerSec, ServiceMean: ic.Service.Time(), Rand: rng.Fork()}, nil
	case "burst":
		return &cpu.BurstInterrupts{Period: ic.Period.Time(), Count: ic.Count, Service: ic.Service.Time()}, nil
	default:
		return nil, fmt.Errorf("simconfig: unknown interrupt kind %q", ic.Kind)
	}
}
