package simconfig

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestShippedExampleConfigs builds and runs every JSON config under
// examples/configs, so the shipped configurations can never rot.
func TestShippedExampleConfigs(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "configs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected shipped configs in %s, found %d", dir, len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cfg, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			// Cap the horizon so the test stays fast regardless of what
			// the config ships with.
			if cfg.Horizon.Time() > 5_000_000_000 {
				cfg.Horizon = Duration(5_000_000_000)
			}
			s, err := Build(cfg, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			if s.Machine.Stats().Work == 0 {
				t.Error("config ran but did no work")
			}
			for name, p := range s.Periodics {
				if p.MissedDeadlines() > 0 {
					t.Errorf("periodic %q missed %d deadlines", name, p.MissedDeadlines())
				}
			}
			if err := s.Structure.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestTraceProgramKind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "costs.txt")
	if err := os.WriteFile(path, []byte("1000000\n2000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	js := `{
	  "horizon": "1s",
	  "nodes": [{"path": "/a", "leaf": "sfq"}],
	  "threads": [{"name": "replay", "leaf": "/a",
	    "program": {"kind": "trace", "file": ` + strconv.Quote(path) + `, "loop": true}}]
	}`
	cfg, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Decoders["replay"] == nil || s.Threads[0].Done == 0 {
		t.Error("trace program did not run")
	}
	// Missing file is a build error.
	cfg2, _ := Parse(strings.NewReader(`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"x","leaf":"/a","program":{"kind":"trace","file":"/no/such"}}]}`))
	if _, err := Build(cfg2, BuildOptions{}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestReserveLeafConfig(t *testing.T) {
	js := `{
	  "horizon": "2s",
	  "nodes": [{"path": "/r", "leaf": "reserves", "quantum": "5ms"}],
	  "threads": [
	    {"name": "res", "leaf": "/r",
	     "reserve_cost": "20ms", "reserve_period": "100ms",
	     "program": {"kind": "loop"}},
	    {"name": "bg", "leaf": "/r", "program": {"kind": "loop"}}
	  ]
	}`
	cfg, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	share := float64(s.Threads[0].Done) / float64(s.Machine.Stats().Work)
	// Soft reserve: 20% guaranteed plus half the background band.
	if share < 0.55 || share > 0.65 {
		t.Errorf("reserved thread share %.3f, want ~0.60", share)
	}
	// Reserve on a non-reserves leaf refused.
	bad, _ := Parse(strings.NewReader(`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"x","leaf":"/a","reserve_cost":"1ms","reserve_period":"10ms"}]}`))
	if _, err := Build(bad, BuildOptions{}); err == nil {
		t.Error("reserve on sfq leaf accepted")
	}
}
