package simconfig

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hsfq/internal/sim"
)

const fullConfig = `{
  "rate_mips": 100,
  "horizon": "5s",
  "seed": 7,
  "nodes": [
    {"path": "/hard", "weight": 1, "leaf": "rm", "quantum": "25ms"},
    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
    {"path": "/be", "weight": 6},
    {"path": "/be/u1", "weight": 1, "leaf": "sfq"},
    {"path": "/be/u2", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "rt", "leaf": "/hard",
     "program": {"kind": "periodic", "period": "100ms", "cost": "5ms"}},
    {"name": "video", "leaf": "/soft", "weight": 2,
     "program": {"kind": "mpeg", "frames": 5000, "loop": true}},
    {"name": "hog1", "leaf": "/be/u1", "program": {"kind": "loop"}},
    {"name": "hog2", "leaf": "/be/u2", "program": {"kind": "dhrystone", "fault_every": 500, "fault_sleep": "2ms"}},
    {"name": "think", "leaf": "/be/u2", "program": {"kind": "interactive", "think_mean": "100ms"}},
    {"name": "pulse", "leaf": "/be/u1", "program": {"kind": "onoff", "bursts": 5, "off": "500ms"}}
  ],
  "interrupts": [
    {"kind": "periodic", "period": "10ms", "service": "100us"},
    {"kind": "poisson", "rate_per_sec": 20, "service": "50us"},
    {"kind": "burst", "period": "1s", "count": 3, "service": "200us"}
  ]
}`

func TestParseAndBuildFullConfig(t *testing.T) {
	cfg, err := Parse(strings.NewReader(fullConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Horizon.Time() != 5*sim.Second || cfg.Seed != 7 {
		t.Errorf("parsed %+v", cfg)
	}
	s, err := Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Threads) != 6 {
		t.Fatalf("%d threads", len(s.Threads))
	}
	s.Run()

	if s.Engine.Now() != 5*sim.Second {
		t.Errorf("clock %v", s.Engine.Now())
	}
	p := s.Periodics["rt"]
	if p == nil || len(p.Slack) < 45 {
		t.Fatalf("periodic did not run: %+v", p)
	}
	if p.MissedDeadlines() != 0 {
		t.Errorf("rt missed %d deadlines", p.MissedDeadlines())
	}
	d := s.Decoders["video"]
	if d == nil || d.FramesDecoded(5*sim.Second) == 0 {
		t.Error("decoder decoded nothing")
	}
	// Shares: hard uses ~16.7% of its budget; soft (2/2 weight) gets the
	// video thread a solid share.
	if s.Machine.Stats().Work == 0 {
		t.Fatal("no work")
	}
}

func TestBuildDeterministic(t *testing.T) {
	run := func() int64 {
		cfg, err := Parse(strings.NewReader(fullConfig))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Build(cfg, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		var sum int64
		for _, th := range s.Threads {
			sum = sum*31 + int64(th.Done)
		}
		return sum
	}
	if run() != run() {
		t.Error("same config produced different runs")
	}
}

func TestDurationUnmarshal(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1.5ms"`)); err != nil || d.Time() != 1500*sim.Microsecond {
		t.Errorf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`2500`)); err != nil || d.Time() != 2500 {
		t.Errorf("numeric form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("bad duration accepted")
	}
	if err := d.UnmarshalJSON([]byte(`{}`)); err == nil {
		t.Error("object accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string]string{
		"no nodes":        `{"threads":[]}`,
		"unknown leaf":    `{"nodes":[{"path":"/a","leaf":"bogus"}]}`,
		"unknown program": `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"bogus"}}]}`,
		"missing leaf":    `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/b"}]}`,
		"nameless thread": `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"leaf":"/a"}]}`,
		"periodic params": `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"periodic"}}]}`,
		"rt non-svr4":     `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","rt_priority":5}]}`,
		"bad interrupt":   `{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"bogus"}]}`,
	}
	for name, js := range cases {
		cfg, err := Parse(strings.NewReader(js))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Build(cfg, BuildOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unknown fields are rejected at parse time.
	if _, err := Parse(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestRTPriorityPlacement(t *testing.T) {
	js := `{
	  "horizon": "2s",
	  "nodes": [{"path": "/svr", "leaf": "svr4"}],
	  "threads": [
	    {"name": "rt", "leaf": "/svr", "rt_priority": 10,
	     "program": {"kind": "periodic", "period": "50ms", "cost": "5ms"}},
	    {"name": "ts", "leaf": "/svr", "program": {"kind": "loop"}}
	  ]
	}`
	cfg, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// RT class preempts TS: the periodic thread gets exactly its 10%.
	p := s.Periodics["rt"]
	if p.MissedDeadlines() != 0 {
		t.Errorf("rt missed %d deadlines under TS load", p.MissedDeadlines())
	}
	rtShare := float64(s.Threads[0].Done) / float64(s.Machine.Stats().Work)
	if math.Abs(rtShare-0.1) > 0.01 {
		t.Errorf("rt share %.3f", rtShare)
	}
}

func TestDefaults(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Defaults: 100 MIPS for 30 s, program "loop".
	if s.Engine.Now() != 30*sim.Second {
		t.Errorf("default horizon: %v", s.Engine.Now())
	}
	if got := int64(s.Threads[0].Done); got < 2_999_000_000 {
		t.Errorf("default loop did %d work", got)
	}
}

func TestValidate(t *testing.T) {
	good := `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a"}]}`
	cfg, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := map[string]string{
		"no nodes":       `{"threads":[]}`,
		"empty path":     `{"nodes":[{"path":"","leaf":"sfq"}]}`,
		"unknown leaf":   `{"nodes":[{"path":"/a","leaf":"bogus"}]}`,
		"dup thread":     `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a"},{"name":"t","leaf":"/a"}]}`,
		"no such leaf":   `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/b"}]}`,
		"thread to node": `{"nodes":[{"path":"/a"}],"threads":[{"name":"t","leaf":"/a"}]}`,
		"bad program":    `{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"bogus"}}]}`,
		"bad interrupt":  `{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"bogus"}]}`,
	}
	for name, js := range bad {
		cfg, err := Parse(strings.NewReader(js))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBuildSeedOverride checks a BuildOptions seed overrides the config's
// and that the zero options value keeps the config's own.
func TestBuildSeedOverride(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{"seed":7,"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, BuildOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config.Seed != 99 {
		t.Errorf("override seed = %d, want 99", s.Config.Seed)
	}
	s, err = Build(cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config.Seed != 7 {
		t.Errorf("config seed = %d, want 7", s.Config.Seed)
	}
}

// TestValidateFieldPaths checks every Validate failure is a *FieldError
// locating the offending JSON field, the contract hsfqd's 400 responses
// are built on.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct{ js, field string }{
		{`{"threads":[]}`, "nodes"},
		{`{"nodes":[{"path":""}]}`, "nodes[0].path"},
		{`{"nodes":[{"path":"/a","leaf":"bogus"}]}`, "nodes[0].leaf"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"leaf":"/a"}]}`, "threads[0].name"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a"},{"name":"t","leaf":"/a"}]}`, "threads[1].name"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/b"}]}`, "threads[0].leaf"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"bogus"}}]}`, "threads[0].program.kind"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"periodic","period":"5ms"},{"kind":"bogus"}]}`, "interrupts[1].kind"},
		{`{"nodes":[{"path":"/a","leaf":"sfq","weight":-1}]}`, "nodes[0].weight"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","weight":-2}]}`, "threads[0].weight"},
		{`{"nodes":[{"path":"/a","leaf":"svr4"}],"threads":[{"name":"t","leaf":"/a","rt_priority":60}]}`, "threads[0].rt_priority"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","start":-1}]}`, "threads[0].start"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"periodic","period":-1,"cost":"1ms"}}]}`, "threads[0].program.period"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"periodic"}]}`, "interrupts[0].period"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"poisson","rate_per_sec":-3,"service":"1ms"}]}`, "interrupts[0].rate_per_sec"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"interrupts":[{"kind":"burst","period":"1ms","service":"1us"}]}`, "interrupts[0]"},
		{`{"cores":-2,"nodes":[{"path":"/a","leaf":"sfq"}]}`, "cores"},
		{`{"cores":2,"policy":"gang","nodes":[{"path":"/a","leaf":"sfq"}]}`, "policy"},
		{`{"cores":2,"switch_cost":-1,"nodes":[{"path":"/a","leaf":"sfq"}]}`, "switch_cost"},
		{`{"cores":2,"migration_cost":-1,"nodes":[{"path":"/a","leaf":"sfq"}]}`, "migration_cost"},
		{`{"cores":2,"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","affinity":5}]}`, "threads[0].affinity"},
		{`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","affinity":-1}]}`, "threads[0].affinity"},
	}
	for _, tc := range cases {
		cfg, err := Parse(strings.NewReader(tc.js))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.js, err)
		}
		err = cfg.Validate()
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FieldError", tc.js, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: field %q, want %q", tc.js, fe.Field, tc.field)
		}
		if !strings.HasPrefix(fe.Error(), "simconfig: ") {
			t.Errorf("%s: error %q lost the package prefix", tc.js, fe.Error())
		}
	}
}
