package simconfig

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseConfig feeds arbitrary bytes through the full config intake
// path — Parse then Validate — the same pipeline every untrusted input
// crosses (hsfqd request bodies, sweep spec base configs, CLI files). The
// invariants: never panic, and inputs that are not valid JSON objects
// must be rejected by Parse, not limp through to Validate half-decoded.
func FuzzParseConfig(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json`,
		`[]`,
		`{"rate_mips": 100}`,
		`{"horizon": "10ms", "nodes": []}`,
		`{"horizon": "-5ms"}`,
		`{"horizon": 1e999}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"nodes": [{"path": "/a", "leaf": "nope", "weight": -1}]}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq", "quantum": "xyz"}]}`,
		`{"threads": [{"name": "t", "leaf": "/missing"}]}`,
		`{"threads": [{"name": "", "program": {"kind": "unknowable"}}]}`,
		`{"interrupts": [{"kind": "poisson", "rate_per_sec": -3}]}`,
		`{"rate_mips": 100, "horizon": "20ms", "seed": 7,
		  "nodes": [{"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"}],
		  "threads": [{"name": "a", "leaf": "/soft", "program": {"kind": "loop"}}]}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq"}], "unknown_field": 1}`,
		"{\"horizon\": \"10éms\"}",
		`{"cores": -2, "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"cores": 2, "policy": "gang", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"cores": 2, "policy": "steal", "switch_cost": "-1ms", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"cores": 2, "migration_cost": "-5us", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"cores": 2, "nodes": [{"path": "/a", "leaf": "sfq"}],
		  "threads": [{"name": "t", "leaf": "/a", "affinity": 5}]}`,
		`{"cores": 3, "policy": "global", "nodes": [{"path": "/a", "leaf": "sfq"}],
		  "threads": [{"name": "t", "leaf": "/a", "affinity": -1}]}`,
		`{"event_queue": "wheel", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"event_queue": "heap", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		`{"event_queue": "splay", "nodes": [{"path": "/a", "leaf": "sfq"}]}`,
		// Multilevel-feedback and dynamic-quantum leaves: valid geometry,
		// then every combination their constructors panic on — Validate
		// must reject all of them (levels range, aging sign, per-level
		// quantum overflow, adaptation-band overflow).
		`{"nodes": [{"path": "/a", "leaf": "mlfq", "levels": 6, "quantum": "2ms", "aging": "200ms"}]}`,
		`{"nodes": [{"path": "/a", "leaf": "drr", "quantum": "4ms"}]}`,
		`{"nodes": [{"path": "/a", "leaf": "mlfq", "levels": -1}]}`,
		`{"nodes": [{"path": "/a", "leaf": "mlfq", "levels": 17}]}`,
		`{"nodes": [{"path": "/a", "leaf": "mlfq", "aging": "-1s"}]}`,
		`{"nodes": [{"path": "/a", "leaf": "mlfq", "levels": 16, "quantum": 1152921504606846976}]}`,
		`{"nodes": [{"path": "/a", "leaf": "drr", "quantum": 2305843009213693952}]}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq", "levels": 3, "aging": "1s"}]}`,
		// An adversary-suite scenario: attacker and victim contending in
		// one arena leaf (the shape internal/adversary builds).
		`{"rate_mips": 100, "horizon": "2s", "seed": 11,
		  "nodes": [{"path": "/arena", "weight": 1, "leaf": "mlfq", "levels": 4, "quantum": "5ms", "aging": "300ms"}],
		  "threads": [
		    {"name": "victim", "leaf": "/arena", "program": {"kind": "loop"}},
		    {"name": "attacker", "leaf": "/arena", "program": {"kind": "onoff", "burst": 490000, "bursts": 1, "off": "100us"}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(bytes.NewReader(data))
		if err != nil {
			// Rejected input carries no obligations; but the error must
			// be labeled as ours, not a raw json internal.
			if !strings.HasPrefix(err.Error(), "simconfig: ") {
				t.Fatalf("unlabeled parse error: %v", err)
			}
			return
		}
		// Whatever decoded must survive validation without panicking, and
		// a validation failure must locate the offending field.
		if verr := c.Validate(); verr != nil {
			fe, ok := verr.(*FieldError)
			if !ok {
				t.Fatalf("Validate returned %T (%v), want *FieldError", verr, verr)
			}
			if fe.Field == "" {
				t.Fatalf("FieldError without a field path: %v", verr)
			}
		}
	})
}
