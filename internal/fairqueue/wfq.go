package fairqueue

import (
	"math"

	"hsfq/internal/sim"
)

// gps simulates the hypothetical bit-by-bit weighted round-robin reference
// system that defines WFQ's virtual time v(t) (§6, Eq. 12):
//
//	dv/dt = C / sum_{j in B(t)} w_j
//
// where C is the *assumed, constant* capacity and B(t) the set of flows
// backlogged in the reference system. This is the crucial flaw the paper
// exploits: the reference system's clock keeps advancing at capacity C
// even when the real server is slower (interrupts, a parent class giving
// the node less bandwidth), so tags drift from reality and fairness is
// lost under fluctuation. SFQ needs no such reference and is immune.
type gps struct {
	capacity float64
	v        float64
	lastReal float64 // seconds
	flowF    []float64
	weights  []float64
}

func newGPS(capacity float64, weights []float64) *gps {
	return &gps{capacity: capacity, weights: weights, flowF: make([]float64, len(weights))}
}

// advance brings v up to real time t, processing reference-system
// departures (flows whose backlog drains) along the way. A flow is
// backlogged in the reference system exactly while its last finish tag
// exceeds v; the scan per step is O(flows), fine for the small flow
// counts fair queuing is used with.
func (g *gps) advance(t sim.Time) {
	now := t.Seconds()
	for g.lastReal < now {
		sumW := 0.0
		next := math.Inf(1)
		for i, f := range g.flowF {
			if f > g.v {
				sumW += g.weights[i]
				if f < next {
					next = f
				}
			}
		}
		if sumW == 0 {
			// Reference system idle: its clock freezes until an arrival.
			break
		}
		rate := g.capacity / sumW
		reach := g.v + (now-g.lastReal)*rate
		if reach < next {
			g.v = reach
			break
		}
		// One or more reference flows drain at virtual time next; real
		// time advances to that instant and the round rate changes.
		g.lastReal += (next - g.v) / rate
		g.v = next
	}
	g.lastReal = now
}

// arrive registers a packet arrival in the reference system and returns
// its start and finish tags.
func (g *gps) arrive(flow int, size float64, t sim.Time) (start, finish float64) {
	g.advance(t)
	start = g.v
	if f := g.flowF[flow]; f > start {
		start = f
	}
	finish = start + size/g.weights[flow]
	g.flowF[flow] = finish
	return start, finish
}

// WFQ is Weighted Fair Queuing [3]: tags from the GPS reference system,
// service in finish-tag order. It needs packet sizes at arrival (the
// paper's first objection for CPU scheduling) and its reference clock
// assumes constant capacity (the second).
type WFQ struct {
	weights []float64
	ref     *gps
	heap    packetHeap
	seq     int
}

// NewWFQ returns a packet WFQ over flows with the given weights, assuming
// server capacity is the constant capacity (work/second).
func NewWFQ(capacity float64, weights []float64) *WFQ {
	return &WFQ{
		weights: weights,
		ref:     newGPS(capacity, weights),
		heap:    packetHeap{byFinish: true},
	}
}

// Name implements Algorithm.
func (w *WFQ) Name() string { return "wfq" }

// Arrive implements Algorithm.
func (w *WFQ) Arrive(p *Packet, now sim.Time) {
	checkFlow(w.weights, p.Flow)
	p.Start, p.Finish = w.ref.arrive(p.Flow, float64(p.Size), now)
	p.seq = w.seq
	w.seq++
	w.heap.push(p)
}

// Dequeue implements Algorithm.
func (w *WFQ) Dequeue(now sim.Time) *Packet {
	if len(w.heap.pkts) == 0 {
		return nil
	}
	return w.heap.pop()
}

// Complete implements Algorithm.
func (w *WFQ) Complete(p *Packet, now sim.Time) {}

// Backlogged implements Algorithm.
func (w *WFQ) Backlogged() int { return len(w.heap.pkts) }

// FQS is Fair Queuing based on Start-time [7]: WFQ's tags, but service in
// start-tag order, which removes the need to know packet sizes at
// scheduling time. It still inherits the constant-capacity reference
// clock, so — as §6 notes — "it does not provide fairness when the
// available CPU bandwidth fluctuates over time".
type FQS struct {
	weights []float64
	ref     *gps
	heap    packetHeap
	seq     int
}

// NewFQS returns a packet FQS over flows with the given weights.
func NewFQS(capacity float64, weights []float64) *FQS {
	return &FQS{weights: weights, ref: newGPS(capacity, weights)}
}

// Name implements Algorithm.
func (f *FQS) Name() string { return "fqs" }

// Arrive implements Algorithm.
func (f *FQS) Arrive(p *Packet, now sim.Time) {
	checkFlow(f.weights, p.Flow)
	p.Start, p.Finish = f.ref.arrive(p.Flow, float64(p.Size), now)
	p.seq = f.seq
	f.seq++
	f.heap.push(p)
}

// Dequeue implements Algorithm.
func (f *FQS) Dequeue(now sim.Time) *Packet {
	if len(f.heap.pkts) == 0 {
		return nil
	}
	return f.heap.pop()
}

// Complete implements Algorithm.
func (f *FQS) Complete(p *Packet, now sim.Time) {}

// Backlogged implements Algorithm.
func (f *FQS) Backlogged() int { return len(f.heap.pkts) }
