package fairqueue

import (
	"fmt"
	"sort"

	"hsfq/internal/sim"
)

// RateChange sets the server's service rate (work/second) from time At
// onward. The real CPU behind a scheduling class is exactly such a
// server: its rate drops when interrupts fire or when sibling classes
// become busy.
type RateChange struct {
	At   sim.Time
	Rate float64
}

// Server serves packets one at a time, non-preemptively, at a piecewise
// constant rate. Algorithms that assume a constant capacity (WFQ, FQS)
// are constructed with the *nominal* rate and are not told about changes —
// reproducing the mismatch the paper identifies.
type Server struct {
	alg     Algorithm
	changes []RateChange
}

// NewServer returns a server over alg. changes must be sorted by time and
// start at or before 0; rates must be positive.
func NewServer(alg Algorithm, changes []RateChange) *Server {
	if len(changes) == 0 {
		panic("fairqueue: server without a rate")
	}
	if changes[0].At > 0 {
		panic("fairqueue: first rate change after time 0")
	}
	for i, c := range changes {
		if c.Rate <= 0 {
			panic(fmt.Sprintf("fairqueue: non-positive rate at %v", c.At))
		}
		if i > 0 && c.At <= changes[i-1].At {
			panic("fairqueue: rate changes out of order")
		}
	}
	return &Server{alg: alg, changes: changes}
}

// ConstantServer is shorthand for a fixed-rate server.
func ConstantServer(alg Algorithm, rate float64) *Server {
	return NewServer(alg, []RateChange{{At: 0, Rate: rate}})
}

// rateIndex returns the index of the rate segment containing t.
func (s *Server) rateIndex(t sim.Time) int {
	i := sort.Search(len(s.changes), func(i int) bool { return s.changes[i].At > t })
	return i - 1
}

// WorkIn returns the work the server can perform in [a, b].
func (s *Server) WorkIn(a, b sim.Time) float64 {
	if b <= a {
		return 0
	}
	total := 0.0
	i := s.rateIndex(a)
	for a < b {
		segEnd := b
		if i+1 < len(s.changes) && s.changes[i+1].At < b {
			segEnd = s.changes[i+1].At
		}
		total += s.changes[i].Rate * (segEnd - a).Seconds()
		a = segEnd
		i++
	}
	return total
}

// serviceEnd returns when service of size work starting at t0 completes.
func (s *Server) serviceEnd(t0 sim.Time, size float64) sim.Time {
	i := s.rateIndex(t0)
	t := t0
	remaining := size
	for {
		rate := s.changes[i].Rate
		var segEnd sim.Time = 1 << 62
		if i+1 < len(s.changes) {
			segEnd = s.changes[i+1].At
		}
		capacity := rate * (segEnd - t).Seconds()
		if remaining <= capacity {
			return t + sim.Time(remaining/rate*float64(sim.Second))
		}
		remaining -= capacity
		t = segEnd
		i++
	}
}

// Run serves the given packets (which must be sorted by arrival time) to
// completion, filling Began and Departed on each. It returns the packets
// in service order.
func (s *Server) Run(pkts []*Packet) []*Packet {
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Arrive < pkts[i-1].Arrive {
			panic("fairqueue: packets not sorted by arrival")
		}
	}
	var served []*Packet
	i := 0
	now := sim.Time(0)
	for {
		if s.alg.Backlogged() == 0 {
			if i >= len(pkts) {
				return served
			}
			// Idle until the next arrival.
			if pkts[i].Arrive > now {
				now = pkts[i].Arrive
			}
			for i < len(pkts) && pkts[i].Arrive <= now {
				s.alg.Arrive(pkts[i], pkts[i].Arrive)
				i++
			}
			continue
		}
		p := s.alg.Dequeue(now)
		p.Began = now
		done := s.serviceEnd(now, float64(p.Size))
		// Arrivals during service are stamped at their true times, in
		// order, before the completion is processed.
		for i < len(pkts) && pkts[i].Arrive < done {
			at := pkts[i].Arrive
			if at < now {
				at = now
			}
			s.alg.Arrive(pkts[i], at)
			i++
		}
		now = done
		p.Departed = done
		s.alg.Complete(p, done)
		served = append(served, p)
	}
}

// FlowService returns the work delivered to a flow within [a, b], given
// the served packets: each packet receives the server's full rate during
// [Began, Departed].
func (s *Server) FlowService(served []*Packet, flow int, a, b sim.Time) float64 {
	total := 0.0
	for _, p := range served {
		if p.Flow != flow || p.Departed <= a || p.Began >= b {
			continue
		}
		lo, hi := p.Began, p.Departed
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		total += s.WorkIn(lo, hi)
	}
	return total
}
