package fairqueue

import (
	"sort"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Batch returns n packets of the given size for one flow, all arriving at
// the same instant — the standard way to make a flow continuously
// backlogged in a packet-level experiment.
func Batch(flow int, size sched.Work, n int, at sim.Time) []*Packet {
	out := make([]*Packet, n)
	for i := range out {
		out[i] = &Packet{Flow: flow, Size: size, Arrive: at}
	}
	return out
}

// Spaced returns n packets of the given size for one flow arriving every
// gap starting at start.
func Spaced(flow int, size sched.Work, n int, start, gap sim.Time) []*Packet {
	out := make([]*Packet, n)
	for i := range out {
		out[i] = &Packet{Flow: flow, Size: size, Arrive: start + sim.Time(i)*gap}
	}
	return out
}

// Merge combines packet slices into one arrival-ordered slice. The sort is
// stable, so same-instant packets keep their batch order.
func Merge(batches ...[]*Packet) []*Packet {
	var all []*Packet
	for _, b := range batches {
		all = append(all, b...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Arrive < all[j].Arrive })
	return all
}

// NormalizedService returns service/weight for each flow over [a, b].
func NormalizedService(s *Server, served []*Packet, weights []float64, a, b sim.Time) []float64 {
	out := make([]float64, len(weights))
	for f := range weights {
		out[f] = s.FlowService(served, f, a, b) / weights[f]
	}
	return out
}

// MaxGap returns the largest pairwise difference among values.
func MaxGap(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
