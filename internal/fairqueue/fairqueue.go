// Package fairqueue implements packet-level fair queuing algorithms over
// flows — SFQ, WFQ, SCFQ, and FQS — together with a server whose service
// rate fluctuates over time. It exists for two purposes:
//
//   - The related-work ablations (DESIGN.md A1/A2): the paper argues SFQ
//     is the right intermediate-node scheduler because, unlike WFQ and
//     FQS, its fairness holds when available bandwidth fluctuates, and its
//     delay to low-throughput flows beats WFQ's. These claims are packet
//     scheduling results from [6]; this package reproduces them directly.
//
//   - Cross-checks: packet SFQ and the CPU-scheduler SFQ in internal/sched
//     must produce identical schedules for identical inputs.
//
// The units mirror the rest of the repository: packet sizes are work
// (instructions), rates are work per second.
package fairqueue

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Packet is one service request from a flow.
type Packet struct {
	Flow   int
	Size   sched.Work
	Arrive sim.Time

	// Outputs, filled by the algorithm and server.
	Start    float64  // start tag (SFQ/FQS/WFQ)
	Finish   float64  // finish tag
	Began    sim.Time // service start in the real server
	Departed sim.Time // service completion in the real server

	seq int
	idx int
}

// Algorithm is a work-conserving packet scheduler over a fixed set of
// weighted flows.
type Algorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Arrive stamps and enqueues a packet at time now.
	Arrive(p *Packet, now sim.Time)
	// Dequeue removes and returns the next packet to serve, or nil.
	// begun tells the algorithm service starts now (for virtual time).
	Dequeue(now sim.Time) *Packet
	// Complete informs the algorithm the packet's service finished.
	Complete(p *Packet, now sim.Time)
	// Backlogged returns the number of queued packets.
	Backlogged() int
}

// packetHeap is an intrusive min-heap of packets ordered by a tag then
// FIFO. The tag is selected by byFinish (start tags for SFQ/FQS, finish
// tags for SCFQ/WFQ) so push and pop stay direct calls with no interface
// boxing or per-comparison indirection.
type packetHeap struct {
	pkts     []*Packet
	byFinish bool // order by Finish tag instead of Start
}

func (h *packetHeap) less(a, b *Packet) bool {
	ka, kb := a.Start, b.Start
	if h.byFinish {
		ka, kb = a.Finish, b.Finish
	}
	if ka != kb {
		return ka < kb
	}
	return a.seq < b.seq
}

func (h *packetHeap) swap(i, j int) {
	h.pkts[i], h.pkts[j] = h.pkts[j], h.pkts[i]
	h.pkts[i].idx = i
	h.pkts[j].idx = j
}

func (h *packetHeap) push(p *Packet) {
	p.idx = len(h.pkts)
	h.pkts = append(h.pkts, p)
	h.up(p.idx)
}

func (h *packetHeap) pop() *Packet {
	n := len(h.pkts) - 1
	h.swap(0, n)
	h.down(0, n)
	p := h.pkts[n]
	h.pkts[n] = nil
	p.idx = -1
	h.pkts = h.pkts[:n]
	return p
}

func (h *packetHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(h.pkts[j], h.pkts[i]) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *packetHeap) down(i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(h.pkts[j2], h.pkts[j1]) {
			j = j2
		}
		if !h.less(h.pkts[j], h.pkts[i]) {
			return
		}
		h.swap(i, j)
		i = j
	}
}

func checkFlow(weights []float64, flow int) {
	if flow < 0 || flow >= len(weights) {
		panic(fmt.Sprintf("fairqueue: flow %d out of range", flow))
	}
}

// SFQ is packet Start-time Fair Queuing: S = max(v, F_flow),
// F = S + size/w, serve in start-tag order; v is the start tag of the
// packet in service (max finish tag while idle). Its fairness is
// independent of server rate fluctuation.
type SFQ struct {
	weights   []float64
	flowF     []float64
	heap      packetHeap
	vtime     float64
	maxFinish float64
	inService *Packet
	seq       int
}

// NewSFQ returns a packet SFQ over flows with the given weights.
func NewSFQ(weights []float64) *SFQ {
	return &SFQ{weights: weights, flowF: make([]float64, len(weights))}
}

// Name implements Algorithm.
func (s *SFQ) Name() string { return "sfq" }

// VirtualTime returns v(t).
func (s *SFQ) VirtualTime() float64 {
	if s.inService != nil {
		return s.inService.Start
	}
	if len(s.heap.pkts) > 0 {
		return s.heap.pkts[0].Start
	}
	return s.maxFinish
}

// Arrive implements Algorithm.
func (s *SFQ) Arrive(p *Packet, now sim.Time) {
	checkFlow(s.weights, p.Flow)
	v := s.VirtualTime()
	p.Start = v
	if f := s.flowF[p.Flow]; f > p.Start {
		p.Start = f
	}
	p.Finish = p.Start + float64(p.Size)/s.weights[p.Flow]
	s.flowF[p.Flow] = p.Finish
	p.seq = s.seq
	s.seq++
	s.heap.push(p)
}

// Dequeue implements Algorithm.
func (s *SFQ) Dequeue(now sim.Time) *Packet {
	if len(s.heap.pkts) == 0 {
		return nil
	}
	p := s.heap.pop()
	s.inService = p
	return p
}

// Complete implements Algorithm.
func (s *SFQ) Complete(p *Packet, now sim.Time) {
	if s.inService == p {
		s.inService = nil
	}
	if p.Finish > s.maxFinish {
		s.maxFinish = p.Finish
	}
}

// Backlogged implements Algorithm.
func (s *SFQ) Backlogged() int { return len(s.heap.pkts) }

// SCFQ is Self-Clocked Fair Queuing [2,4]: tags as in WFQ but v(t)
// approximated by the finish tag of the packet in service; serve in
// finish-tag order.
type SCFQ struct {
	weights   []float64
	flowF     []float64
	heap      packetHeap
	vtime     float64
	inService *Packet
	seq       int
}

// NewSCFQ returns a packet SCFQ over flows with the given weights.
func NewSCFQ(weights []float64) *SCFQ {
	return &SCFQ{
		weights: weights,
		flowF:   make([]float64, len(weights)),
		heap:    packetHeap{byFinish: true},
	}
}

// Name implements Algorithm.
func (s *SCFQ) Name() string { return "scfq" }

// Arrive implements Algorithm.
func (s *SCFQ) Arrive(p *Packet, now sim.Time) {
	checkFlow(s.weights, p.Flow)
	v := s.vtime
	if s.inService != nil {
		v = s.inService.Finish
	}
	p.Start = v
	if f := s.flowF[p.Flow]; f > p.Start {
		p.Start = f
	}
	p.Finish = p.Start + float64(p.Size)/s.weights[p.Flow]
	s.flowF[p.Flow] = p.Finish
	p.seq = s.seq
	s.seq++
	s.heap.push(p)
}

// Dequeue implements Algorithm.
func (s *SCFQ) Dequeue(now sim.Time) *Packet {
	if len(s.heap.pkts) == 0 {
		return nil
	}
	p := s.heap.pop()
	s.inService = p
	return p
}

// Complete implements Algorithm.
func (s *SCFQ) Complete(p *Packet, now sim.Time) {
	if s.inService == p {
		s.inService = nil
		s.vtime = p.Finish
	}
}

// Backlogged implements Algorithm.
func (s *SCFQ) Backlogged() int { return len(s.heap.pkts) }
