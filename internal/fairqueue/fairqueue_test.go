package fairqueue

import (
	"math"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

const mega = 1_000_000

func algorithms(capacity float64, weights []float64) map[string]Algorithm {
	return map[string]Algorithm{
		"sfq":  NewSFQ(weights),
		"scfq": NewSCFQ(weights),
		"wfq":  NewWFQ(capacity, weights),
		"fqs":  NewFQS(capacity, weights),
	}
}

// TestProportionalOnConstantServer: on a constant-rate server with all
// flows continuously backlogged, every algorithm shares in proportion to
// weights.
func TestProportionalOnConstantServer(t *testing.T) {
	weights := []float64{1, 2, 3}
	for name, alg := range algorithms(mega, weights) {
		t.Run(name, func(t *testing.T) {
			pkts := Merge(
				Batch(0, 1000, 4000, 0),
				Batch(1, 1000, 4000, 0),
				Batch(2, 1000, 4000, 0),
			)
			srv := ConstantServer(alg, mega)
			served := srv.Run(pkts)
			norm := NormalizedService(srv, served, weights, sim.Second, 5*sim.Second)
			if gap := MaxGap(norm); gap > 3000 {
				t.Errorf("normalized service %v, gap %v", norm, gap)
			}
		})
	}
}

func TestPacketTagsSFQ(t *testing.T) {
	s := NewSFQ([]float64{1, 2})
	p1 := &Packet{Flow: 0, Size: 100}
	s.Arrive(p1, 0)
	if p1.Start != 0 || p1.Finish != 100 {
		t.Errorf("p1 tags %v %v", p1.Start, p1.Finish)
	}
	p2 := &Packet{Flow: 1, Size: 100}
	s.Arrive(p2, 0)
	if p2.Start != 0 || p2.Finish != 50 {
		t.Errorf("p2 tags %v %v", p2.Start, p2.Finish)
	}
	// Back-to-back packet of flow 0 starts at the flow's finish tag.
	p3 := &Packet{Flow: 0, Size: 100}
	s.Arrive(p3, 0)
	if p3.Start != 100 || p3.Finish != 200 {
		t.Errorf("p3 tags %v %v", p3.Start, p3.Finish)
	}
	// Service order: start tags 0, 0, 100 -> p1 then p2 (FIFO tie) then p3.
	if got := s.Dequeue(0); got != p1 {
		t.Errorf("first dequeue %v", got)
	}
	s.Complete(p1, 0)
	if got := s.Dequeue(0); got != p2 {
		t.Errorf("second dequeue %v", got)
	}
	s.Complete(p2, 0)
	if s.VirtualTime() != 100 {
		t.Errorf("v = %v after completing tag-0 packets", s.VirtualTime())
	}
	if got := s.Dequeue(0); got != p3 {
		t.Errorf("third %v", got)
	}
	s.Complete(p3, 0)
	// Idle: v = max finish tag.
	if s.VirtualTime() != 200 {
		t.Errorf("idle v = %v", s.VirtualTime())
	}
}

func TestPacketSFQIdleRestamp(t *testing.T) {
	s := NewSFQ([]float64{1, 1})
	p1 := &Packet{Flow: 0, Size: 100}
	s.Arrive(p1, 0)
	s.Dequeue(0)
	s.Complete(p1, sim.Millisecond)
	// Flow 1 arrives after idle: its start tag is v=100, not 0.
	p2 := &Packet{Flow: 1, Size: 50}
	s.Arrive(p2, sim.Second)
	if p2.Start != 100 {
		t.Errorf("post-idle start %v, want 100", p2.Start)
	}
}

func TestWFQNeedsSizesUpfrontAndOrdersByFinish(t *testing.T) {
	w := NewWFQ(mega, []float64{1, 1})
	big := &Packet{Flow: 0, Size: 1000}
	small := &Packet{Flow: 1, Size: 10}
	w.Arrive(big, 0)
	w.Arrive(small, 0)
	// WFQ orders by finish tag: the small packet goes first even though
	// both arrived together (SFQ would tie on start tags and go FIFO).
	if got := w.Dequeue(0); got != small {
		t.Errorf("WFQ served %v first", got)
	}
}

func TestGPSVirtualTimeConstantRate(t *testing.T) {
	// One backlogged flow of weight 1 on capacity 1000: v advances at
	// 1000/s while busy.
	g := newGPS(1000, []float64{1, 1})
	s, f := g.arrive(0, 500, 0)
	if s != 0 || f != 500 {
		t.Fatalf("tags %v %v", s, f)
	}
	// At t=0.1s, v should be 100 (rate 1000, one active flow).
	s2, _ := g.arrive(1, 100, 100*sim.Millisecond)
	if math.Abs(s2-100) > 1e-6 {
		t.Errorf("v(0.1s) = %v, want 100", s2)
	}
	// Now two active flows: v advances at 500/s. At t=0.2s, v = 100+50.
	s3, _ := g.arrive(1, 100, 200*sim.Millisecond)
	if math.Abs(s3-200) > 1e-6 {
		// flow 1's own finish tag dominates: 100+100/1 = 200
		t.Errorf("S = %v, want 200 (flow finish tag)", s3)
	}
}

func TestGPSDeparturesSpeedUpClock(t *testing.T) {
	g := newGPS(1000, []float64{1, 1})
	g.arrive(0, 100, 0) // drains in GPS at v=100
	g.arrive(1, 400, 0)
	// After flow 0 drains (at v=100, real t=0.2s since rate is 500/s for
	// each), v advances at 1000/s for flow 1 alone. At t=0.4s:
	// v = 100 + 0.2*1000 = 300.
	s, _ := g.arrive(0, 10, 400*sim.Millisecond)
	if math.Abs(s-300) > 1e-6 {
		t.Errorf("v(0.4s) = %v, want 300", s)
	}
}

func TestServerWorkInAndFlowService(t *testing.T) {
	alg := NewSFQ([]float64{1})
	srv := NewServer(alg, []RateChange{
		{At: 0, Rate: 1000},
		{At: sim.Second, Rate: 500},
	})
	if got := srv.WorkIn(0, 2*sim.Second); got != 1500 {
		t.Errorf("WorkIn = %v", got)
	}
	if got := srv.WorkIn(500*sim.Millisecond, 1500*sim.Millisecond); got != 750 {
		t.Errorf("WorkIn straddling = %v", got)
	}
	pkts := Batch(0, 1200, 1, 0)
	served := srv.Run(pkts)
	// 1000 work in the first second, 200 more at 500/s: departs at 1.4s.
	if served[0].Departed != 1400*sim.Millisecond {
		t.Errorf("departed %v", served[0].Departed)
	}
	if got := srv.FlowService(served, 0, 0, sim.Second); got != 1000 {
		t.Errorf("flow service in first second %v", got)
	}
}

func TestServerValidation(t *testing.T) {
	for _, bad := range [][]RateChange{
		nil,
		{{At: sim.Second, Rate: 1}},
		{{At: 0, Rate: 0}},
		{{At: 0, Rate: 1}, {At: 0, Rate: 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad rate changes %v did not panic", bad)
				}
			}()
			NewServer(NewSFQ([]float64{1}), bad)
		}()
	}
}

func TestGenerators(t *testing.T) {
	b := Batch(2, 50, 3, sim.Second)
	if len(b) != 3 || b[0].Flow != 2 || b[2].Arrive != sim.Second {
		t.Errorf("batch %v", b)
	}
	sp := Spaced(1, 10, 3, 0, sim.Millisecond)
	if sp[2].Arrive != 2*sim.Millisecond {
		t.Errorf("spaced %v", sp)
	}
	m := Merge(Batch(0, 1, 2, sim.Second), Spaced(1, 1, 2, 0, 10*sim.Second))
	if m[0].Flow != 1 || m[1].Arrive != sim.Second || m[3].Arrive != 10*sim.Second {
		t.Errorf("merge order wrong")
	}
	if MaxGap([]float64{3, 1, 7}) != 6 || MaxGap(nil) != 0 {
		t.Error("MaxGap wrong")
	}
}

// TestPacketSFQMatchesThreadSFQ cross-checks the two SFQ implementations:
// the packet scheduler over continuously backlogged flows must produce
// the same service order as the CPU scheduler over always-runnable
// threads with the same weights and quanta.
func TestPacketSFQMatchesThreadSFQ(t *testing.T) {
	weights := []float64{1, 2, 5}
	const quantum = 1000
	const rounds = 300

	// Packet side.
	alg := NewSFQ(weights)
	var pkts []*Packet
	for f := range weights {
		pkts = append(pkts, Batch(f, quantum, rounds, 0)...)
	}
	srv := ConstantServer(NewSFQOrderProbe(alg), mega)
	served := srv.Run(Merge(pkts))
	var packetOrder []int
	for _, p := range served {
		packetOrder = append(packetOrder, p.Flow)
	}

	// Thread side.
	ts := sched.NewSFQ(0)
	threads := make([]*sched.Thread, len(weights))
	for i, w := range weights {
		threads[i] = sched.NewThread(i, "t", w)
		ts.Enqueue(threads[i], 0)
	}
	var threadOrder []int
	for i := 0; i < len(packetOrder); i++ {
		p := ts.Pick(0)
		threadOrder = append(threadOrder, p.ID)
		ts.Charge(p, quantum, 0, true)
	}

	// "Ties are broken arbitrarily" (§3), and the two implementations
	// break equal start tags differently (arrival order vs charge
	// recency), so exact orders may permute within a tie group. The
	// schedules are equivalent iff every flow's cumulative service
	// matches within one quantum at every prefix.
	pc := make([]int, len(weights))
	tc := make([]int, len(weights))
	for i := range packetOrder {
		pc[packetOrder[i]]++
		tc[threadOrder[i]]++
		if pc[packetOrder[i]] == rounds {
			// This flow's packet queue is exhausted; the flows stop
			// being equivalent to always-runnable threads here.
			break
		}
		for f := range weights {
			if d := pc[f] - tc[f]; d > 1 || d < -1 {
				t.Fatalf("step %d: flow %d served %d packets vs %d quanta", i, f, pc[f], tc[f])
			}
		}
	}
}

// NewSFQOrderProbe passes through an algorithm unchanged; it exists so the
// cross-check reads clearly at the call site.
func NewSFQOrderProbe(a Algorithm) Algorithm { return a }

// TestFQSOrdersByStartTag: FQS uses WFQ's tags but serves in start order,
// so it does not need packet sizes at dispatch time — the §6 motivation.
func TestFQSOrdersByStartTag(t *testing.T) {
	f := NewFQS(mega, []float64{1, 1})
	big := &Packet{Flow: 0, Size: 1000}
	small := &Packet{Flow: 1, Size: 10}
	f.Arrive(big, 0)
	f.Arrive(small, 0)
	// Equal start tags: FIFO tie-break serves the earlier arrival first,
	// unlike WFQ which jumps the small packet ahead by finish tag.
	if got := f.Dequeue(0); got != big {
		t.Errorf("FQS served %v first, want arrival order on start-tag tie", got)
	}
}

// TestSCFQVirtualTimeFollowsService: SCFQ's v(t) is the finish tag of the
// packet in service — self-clocked, no reference system.
func TestSCFQVirtualTimeFollowsService(t *testing.T) {
	s := NewSCFQ([]float64{1})
	p1 := &Packet{Flow: 0, Size: 100}
	s.Arrive(p1, 0)
	s.Dequeue(0)
	// A packet arriving during service is stamped with the in-service
	// packet's finish tag.
	p2 := &Packet{Flow: 0, Size: 50}
	s.Arrive(p2, sim.Millisecond)
	if p2.Start != p1.Finish {
		t.Errorf("S2 = %v, want F1 = %v", p2.Start, p1.Finish)
	}
	s.Complete(p1, 2*sim.Millisecond)
}

// TestServerUnsortedPanics guards the arrival-order contract.
func TestServerUnsortedPanics(t *testing.T) {
	srv := ConstantServer(NewSFQ([]float64{1}), mega)
	pkts := []*Packet{
		{Flow: 0, Size: 1, Arrive: sim.Second},
		{Flow: 0, Size: 1, Arrive: 0},
	}
	defer func() {
		if recover() == nil {
			t.Error("unsorted packets accepted")
		}
	}()
	srv.Run(pkts)
}
