package adversary

import (
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// Attacks returns the attack registry in its fixed order. Each entry
// names the weakness it targets; the expectation per leaf states whether
// the policy's design withstands it (Isolated) or rewards it (Gameable).
//
// Bound derivations:
//
//   - Theorem 1 (sfq, stride): for flows f, m backlogged over [t1, t2],
//     |Wf/rf − Wm/rm| ≤ qf/rf + qm/rm. With K+1 unit-weight contenders,
//     quantum q and horizon T, the victim's share is at least
//     1/(K+1) − K·2q/T. The flood cells use exactly that number; the
//     two-contender cells round the same expression to 0.48.
//
//   - Rotation bound (rr, drr): a round-robin visits every runnable
//     thread once per rotation, so against a single attacker who can use
//     at most a full quantum per visit the victim retains ≥ 1/2 minus
//     one quantum of slack per rotation. The attacker sleeping only
//     raises the victim's share, so 0.45 is conservative.
//
//   - Gameable bounds are empirical ceilings with margin: the attack
//     must hold the victim far below its 1/2 (or utilization-required)
//     fair share, and well below every Isolated bound, so a cell can
//     never satisfy both expectations at once.
func Attacks() []Attack {
	return []Attack{
		{
			Name: "boost-abuse",
			Description: "sleep just before quantum expiry: svr4 grants a " +
				"sleep-return priority boost and mlfq never demotes a thread " +
				"that blocks early, so a hog that naps 4ms-on/1ms-off outranks " +
				"a steadily CPU-bound victim; sfq's start tags advance while " +
				"sleeping earns nothing, which is the paper's answer",
			Targets: []Target{
				{Leaf: "svr4", Expect: Gameable, Predicate: "victim-share<=0.35", Bound: 0.35},
				{Leaf: "mlfq", Expect: Gameable, Predicate: "victim-share<=0.35", Bound: 0.35},
				{Leaf: "sfq", Expect: Isolated, Predicate: "victim-share>=0.48 (Theorem 1)", Bound: 0.48},
			},
			build: func(t Target, cores int) simconfig.Config {
				// The victim starts 10ms after the attacker. svr4's ladder
				// needs one completed run segment before the sleep-return
				// boost applies; without the head start the victim's
				// front-of-queue monopoly at the shared initial priority
				// hides the attack behind a 1s starvation-boost cold start.
				victim := loopThread(victimName)
				victim.Start = dur(10 * sim.Millisecond)
				return arena(t.Leaf, cores, []simconfig.ThreadConfig{
					victim,
					napThread("attacker", 4*workMS, sim.Millisecond),
				})
			},
		},
		{
			Name: "tag-flood",
			Description: "four CPU-bound flooders try to drown a unit-weight " +
				"victim; sfq and stride owe the victim 1/5 minus the Theorem 1 " +
				"slack, mlfq owes the weaker equal-rotation-at-the-bottom-level " +
				"bound",
			Targets: []Target{
				{Leaf: "sfq", Expect: Isolated, Predicate: "victim-share>=0.18 (Theorem 1)", Bound: 0.18},
				{Leaf: "stride", Expect: Isolated, Predicate: "victim-share>=0.18 (Theorem 1)", Bound: 0.18},
				{Leaf: "mlfq", Expect: Isolated, Predicate: "victim-share>=0.15 (bottom-level rotation)", Bound: 0.15},
			},
			build: func(t Target, cores int) simconfig.Config {
				return arena(t.Leaf, cores, []simconfig.ThreadConfig{
					loopThread(victimName),
					loopThread("flood1"), loopThread("flood2"),
					loopThread("flood3"), loopThread("flood4"),
				})
			},
		},
		{
			Name: "deadline-inflation",
			Description: "the attacker declares a 2ms period it has no " +
				"intention of honoring and then runs CPU-bound; edf assigns it " +
				"the earliest deadline forever and rm the highest rank, so an " +
				"honest 30ms/8ms periodic victim is starved — neither policy " +
				"has admission control, it trusts the declaration",
			Targets: []Target{
				{Leaf: "edf", Expect: Gameable, Predicate: "victim-share<=0.10", Bound: 0.10},
				{Leaf: "rm", Expect: Gameable, Predicate: "victim-share<=0.10", Bound: 0.10},
			},
			build: func(t Target, cores int) simconfig.Config {
				return arena(t.Leaf, cores, []simconfig.ThreadConfig{
					{Name: victimName, Leaf: "/arena", Weight: 1,
						Period: dur(30 * sim.Millisecond),
						Program: simconfig.ProgramConfig{Kind: "periodic",
							Period: dur(30 * sim.Millisecond), Cost: dur(8 * sim.Millisecond)}},
					{Name: "attacker", Leaf: "/arena", Weight: 1,
						Period:  dur(2 * sim.Millisecond),
						Program: simconfig.ProgramConfig{Kind: "loop"}},
				})
			},
		},
		{
			Name: "ticket-churn",
			Description: "the attacker blocks and wakes every millisecond, " +
				"churning the ticket pool between draws; lottery holds no " +
				"per-thread credit across sleeps, so the victim keeps at least " +
				"the share the attacker's 50% duty cycle leaves on the table",
			Targets: []Target{
				{Leaf: "lottery", Expect: Isolated, Predicate: "victim-share>=0.45 (duty-cycle floor)", Bound: 0.45},
			},
			build: func(t Target, cores int) simconfig.Config {
				return arena(t.Leaf, cores, []simconfig.ThreadConfig{
					loopThread(victimName),
					napThread("attacker", 1*workMS, sim.Millisecond),
				})
			},
		},
		{
			Name: "quantum-edge",
			Description: "the attacker exploits the quantum boundary: under " +
				"rr and drr it yields at 98% of its slice hoping to dodge the " +
				"rotation (both re-enqueue at the tail, so it gains nothing); " +
				"under fifo's unbounded quantum the degenerate form — simply " +
				"never yielding — starves any victim that ever blocks",
			Targets: []Target{
				{Leaf: "rr", Expect: Isolated, Predicate: "victim-share>=0.45 (rotation bound)", Bound: 0.45},
				{Leaf: "drr", Expect: Isolated, Predicate: "victim-share>=0.45 (rotation bound)", Bound: 0.45},
				{Leaf: "fifo", Expect: Gameable, Predicate: "victim-share<=0.05", Bound: 0.05},
			},
			build: func(t Target, cores int) simconfig.Config {
				if t.Leaf == "fifo" {
					// Run-to-block: the victim is well behaved (blocks for
					// 1ms every 4ms of work) and the attacker never yields.
					return arena(t.Leaf, cores, []simconfig.ThreadConfig{
						napThread(victimName, 4*workMS, sim.Millisecond),
						loopThread("attacker"),
					})
				}
				// 98% of the 5ms arena quantum, then a 100µs nap.
				return arena(t.Leaf, cores, []simconfig.ThreadConfig{
					loopThread(victimName),
					napThread("attacker", 49*workMS/10, 100*sim.Microsecond),
				})
			},
		},
	}
}
