// Package adversary is the repo's standing red team: a registry of
// attacker programs that each target a specific scheduler weakness,
// paired with a victim workload and a machine-checkable isolation
// predicate. The paper's central claim (§3, Theorem 1) is that start-time
// fair queueing bounds how far any flow can fall behind its entitled
// share; every other policy in the registry makes a weaker promise — or
// none. This package turns both kinds of claim into executable checks:
//
//   - Where a policy promises isolation (sfq, stride: Theorem 1; rr, drr:
//     bounded rotation), the predicate asserts the victim's measured
//     share stays above a bound derived from that promise, and a run
//     where the attack lands is a bug.
//
//   - Where a policy is gameable by design (svr4 and mlfq reward
//     sleeping before quantum expiry, edf and rm trust declared periods,
//     fifo trusts threads to yield), the predicate asserts the attack
//     actually lands: the victim's share must fall BELOW a bound. These
//     weaknesses are documented, not fixed — if a future change
//     accidentally "fixes" one, the suite fails and forces the change to
//     be explained (see DESIGN.md §12).
//
// Every cell is a plain simconfig.Config, so any result reproduces under
// hsfqsim and bisects under hsfqdiff from the config alone.
package adversary

import (
	"fmt"

	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
)

// Expectation states what the scheduling policy promises under an attack.
type Expectation string

const (
	// Isolated: the policy bounds the attacker's damage; the victim's
	// share must stay at or above the cell's bound.
	Isolated Expectation = "isolated"
	// Gameable: the policy is known to reward this attack; the attack
	// must demonstrably land (victim share at or below the bound).
	Gameable Expectation = "gameable"
)

// Cell is one attack × leaf × core-count instance of the matrix.
type Cell struct {
	Attack string
	Leaf   string
	Cores  int
	Expect Expectation
	// Predicate names the machine-checked isolation condition; it is the
	// string a failing run prints on stderr.
	Predicate string
	// Bound is the victim-share threshold the predicate compares against
	// (minimum for Isolated cells, maximum for Gameable cells).
	Bound float64
	// Victim is the thread name whose share the predicate inspects.
	Victim string
	// Config is the complete scenario; running it at Config.Seed
	// reproduces the cell bit-for-bit.
	Config simconfig.Config
}

// ID identifies a cell in logs and failure lines.
func (c Cell) ID() string { return fmt.Sprintf("%s/%s/c%d", c.Attack, c.Leaf, c.Cores) }

// Result is the outcome of running one cell.
type Result struct {
	Cell
	// Digest is the sweep outcome digest of the run: equal digests across
	// repeat runs are the determinism contract advsmoke enforces.
	Digest string
	// VictimShare is the victim's fraction of all work done.
	VictimShare float64
	// Violation is empty when the predicate holds, else one line naming
	// the predicate and the measured value.
	Violation string
}

// Run executes the cell's scenario and evaluates its predicate.
func (c Cell) Run() (Result, error) {
	digest, metrics, err := sweep.ExecuteConfig(c.Config, 0)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.ID(), err)
	}
	r := Result{Cell: c, Digest: digest, VictimShare: metrics["share:"+c.Victim]}
	switch c.Expect {
	case Isolated:
		if r.VictimShare < c.Bound {
			r.Violation = fmt.Sprintf("%s: predicate %q violated: victim share %.4f < %.4f", c.ID(), c.Predicate, r.VictimShare, c.Bound)
		}
	case Gameable:
		if r.VictimShare > c.Bound {
			r.Violation = fmt.Sprintf("%s: predicate %q violated: victim share %.4f > %.4f (documented attack no longer lands)", c.ID(), c.Predicate, r.VictimShare, c.Bound)
		}
	}
	return r, nil
}

// Attack is one registered attacker: a description of the weakness it
// targets and the per-leaf cells it expands to.
type Attack struct {
	Name        string
	Description string
	// Targets lists the leaves the attack applies to with the expected
	// outcome on each.
	Targets []Target
	// build assembles the scenario for one target at one core count.
	build func(t Target, cores int) simconfig.Config
}

// Target is one leaf a registered attack applies to.
type Target struct {
	Leaf   string
	Expect Expectation
	// Predicate and Bound define the cell's machine-checked condition.
	Predicate string
	Bound     float64
}

// Cells expands the attack over its targets at the given core count.
func (a Attack) Cells(cores int) []Cell {
	out := make([]Cell, 0, len(a.Targets))
	for _, t := range a.Targets {
		out = append(out, Cell{
			Attack:    a.Name,
			Leaf:      t.Leaf,
			Cores:     cores,
			Expect:    t.Expect,
			Predicate: t.Predicate,
			Bound:     t.Bound,
			Victim:    victimName,
			Config:    a.build(t, cores),
		})
	}
	return out
}

// Matrix expands every registered attack over every target at each of the
// given core counts, in registry order — the deterministic work list
// advsmoke and the adversary tests run.
func Matrix(coreCounts []int) []Cell {
	var out []Cell
	for _, cores := range coreCounts {
		for _, a := range Attacks() {
			out = append(out, a.Cells(cores)...)
		}
	}
	return out
}

// Scenario geometry shared by every attack. The horizon is long enough to
// amortize startup transients against the Theorem 1 slack terms, and short
// enough that the full matrix stays a sub-second smoke.
const (
	victimName   = "victim"
	horizon      = 2 * sim.Second
	rateMIPS     = 100 // 100 MIPS: 1 ms of CPU = 100_000 instructions
	arenaQuantum = 5 * sim.Millisecond
	// workMS converts milliseconds of CPU at rateMIPS into instructions.
	workMS = rateMIPS * 1000
)

func dur(t sim.Time) simconfig.Duration { return simconfig.Duration(t) }

// arena builds the shared scenario scaffold: every contender in one leaf
// node. On multicore cells the machine runs the partitioned policy with
// every thread pinned to core 0 — the arena's contention (and therefore
// every predicate bound) is identical to the single-core cell, while the
// run still exercises the multicore dispatch path, per-core structures,
// and core-tagged digests. Partitioned is also the only policy the svr4
// leaf supports.
func arena(leaf string, cores int, threads []simconfig.ThreadConfig) simconfig.Config {
	node := simconfig.NodeConfig{Path: "/arena", Weight: 1, Leaf: leaf, Quantum: dur(arenaQuantum)}
	if leaf == "mlfq" {
		node.Levels = 3
		node.Aging = dur(300 * sim.Millisecond)
	}
	cfg := simconfig.Config{
		RateMIPS: rateMIPS,
		Horizon:  dur(horizon),
		Seed:     1,
		Nodes:    []simconfig.NodeConfig{node},
		Threads:  threads,
	}
	if cores > 1 {
		cfg.Cores = cores
		cfg.Policy = "partitioned"
		zero := 0
		for i := range cfg.Threads {
			cfg.Threads[i].Affinity = &zero
		}
	}
	return cfg
}

// loopThread is a well-behaved CPU-bound contender.
func loopThread(name string) simconfig.ThreadConfig {
	return simconfig.ThreadConfig{Name: name, Leaf: "/arena", Weight: 1,
		Program: simconfig.ProgramConfig{Kind: "loop"}}
}

// napThread computes burst instructions then sleeps off, forever — the
// shape of every sleep-to-win attacker (and of a well-behaved interactive
// victim).
func napThread(name string, burst int64, off sim.Time) simconfig.ThreadConfig {
	return simconfig.ThreadConfig{Name: name, Leaf: "/arena", Weight: 1,
		Program: simconfig.ProgramConfig{Kind: "onoff", Burst: burst, Bursts: 1, Off: dur(off)}}
}
