package adversary

import (
	"strings"
	"testing"
)

// TestMatrixPredicatesHold runs every attack × leaf × {1, 4}-core cell
// and requires every isolation predicate to hold — Isolated cells keep
// their victims above the bound, Gameable cells demonstrably land.
func TestMatrixPredicatesHold(t *testing.T) {
	cells := Matrix([]int{1, 4})
	if len(cells) == 0 {
		t.Fatal("empty matrix")
	}
	for _, c := range cells {
		r, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		t.Logf("%-28s expect=%-8s share=%.4f bound=%.4f", c.ID(), c.Expect, r.VictimShare, c.Bound)
		if r.Violation != "" {
			t.Errorf("%s", r.Violation)
		}
	}
}

// TestMatrixDeterminism runs the single-core matrix twice and requires
// identical outcome digests — the reproducibility contract that makes any
// suite failure bisectable from the cell's config alone.
func TestMatrixDeterminism(t *testing.T) {
	first := map[string]string{}
	for _, c := range Matrix([]int{1}) {
		r, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		first[c.ID()] = r.Digest
	}
	for _, c := range Matrix([]int{1}) {
		r, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		if r.Digest != first[c.ID()] {
			t.Errorf("%s: digest changed across runs: %s then %s", c.ID(), first[c.ID()], r.Digest)
		}
	}
}

// TestMatrixShape pins the matrix structure: every cell's config
// validates, cell IDs are unique, the victim thread exists in each
// scenario, and 4-core cells pin every thread to core 0 under the
// partitioned policy so their contention matches the 1-core cell.
func TestMatrixShape(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Matrix([]int{1, 4}) {
		if seen[c.ID()] {
			t.Errorf("duplicate cell %s", c.ID())
		}
		seen[c.ID()] = true
		if err := c.Config.Validate(); err != nil {
			t.Errorf("%s: config invalid: %v", c.ID(), err)
		}
		found := false
		for _, th := range c.Config.Threads {
			if th.Name == c.Victim {
				found = true
			}
			if c.Cores > 1 && (th.Affinity == nil || *th.Affinity != 0) {
				t.Errorf("%s: thread %s not pinned to core 0", c.ID(), th.Name)
			}
		}
		if !found {
			t.Errorf("%s: no victim thread %q", c.ID(), c.Victim)
		}
		if c.Cores > 1 && c.Config.Policy != "partitioned" {
			t.Errorf("%s: policy %q, want partitioned", c.ID(), c.Config.Policy)
		}
		if !strings.Contains(c.Predicate, "victim-share") {
			t.Errorf("%s: predicate %q does not name its condition", c.ID(), c.Predicate)
		}
	}
}
