package cpu

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// ActionKind discriminates the actions a program can request.
type ActionKind int

// Program actions.
const (
	// ActionCompute executes Work instructions, possibly across several
	// quanta and preemptions.
	ActionCompute ActionKind = iota
	// ActionSleep blocks the thread for Duration of simulated time.
	ActionSleep
	// ActionSleepUntil blocks the thread until the absolute time Until;
	// periodic real-time programs use it to wait for their next release.
	ActionSleepUntil
	// ActionBlock blocks the thread indefinitely, until another event
	// calls Machine.Wake — the primitive under simulated synchronization
	// (internal/synch) and IPC.
	ActionBlock
	// ActionExit terminates the thread.
	ActionExit
)

// Action is one step of a thread's behaviour.
type Action struct {
	Kind     ActionKind
	Work     sched.Work
	Duration sim.Time
	Until    sim.Time
}

// Compute returns an action executing w instructions.
func Compute(w sched.Work) Action { return Action{Kind: ActionCompute, Work: w} }

// Sleep returns an action blocking for d.
func Sleep(d sim.Time) Action { return Action{Kind: ActionSleep, Duration: d} }

// SleepUntil returns an action blocking until the absolute time at.
func SleepUntil(at sim.Time) Action { return Action{Kind: ActionSleepUntil, Until: at} }

// Block returns an action blocking until Machine.Wake.
func Block() Action { return Action{Kind: ActionBlock} }

// Exit returns the terminating action.
func Exit() Action { return Action{Kind: ActionExit} }

// Program generates the behaviour of a thread, one action at a time. Next
// is called when the thread is created and whenever the previous action
// completes (a compute burst finishes, a sleep elapses). Implementations
// live mostly in internal/workload.
type Program interface {
	Next(now sim.Time) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(now sim.Time) Action

// Next implements Program.
func (f ProgramFunc) Next(now sim.Time) Action { return f(now) }

// Sequence returns a program that performs the given actions in order and
// then exits. The returned program supports checkpointing (Stater).
func Sequence(actions ...Action) Program {
	return &seqProgram{actions: actions}
}

// Forever returns a program that repeats the given actions in a loop. The
// returned program supports checkpointing (Stater).
func Forever(actions ...Action) Program {
	if len(actions) == 0 {
		panic("cpu: Forever with no actions")
	}
	return &loopProgram{actions: actions}
}

// seqProgram runs a fixed action list once. It is a struct rather than a
// closure so its position survives a checkpoint.
type seqProgram struct {
	actions []Action
	i       int
}

// Next implements Program.
func (p *seqProgram) Next(now sim.Time) Action {
	if p.i >= len(p.actions) {
		return Exit()
	}
	a := p.actions[p.i]
	p.i++
	return a
}

// SaveState implements Stater.
func (p *seqProgram) SaveState(e *sim.Enc) { e.Int(p.i) }

// LoadState implements Stater.
func (p *seqProgram) LoadState(d *sim.Dec) error {
	i := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if i < 0 || i > len(p.actions) {
		return fmt.Errorf("cpu: sequence position %d out of range [0, %d]", i, len(p.actions))
	}
	p.i = i
	return nil
}

// loopProgram repeats a fixed action list forever.
type loopProgram struct {
	actions []Action
	i       int
}

// Next implements Program.
func (p *loopProgram) Next(now sim.Time) Action {
	a := p.actions[p.i%len(p.actions)]
	p.i++
	return a
}

// SaveState implements Stater.
func (p *loopProgram) SaveState(e *sim.Enc) { e.Int(p.i) }

// LoadState implements Stater.
func (p *loopProgram) LoadState(d *sim.Dec) error {
	i := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if i < 0 {
		return fmt.Errorf("cpu: negative loop position %d", i)
	}
	p.i = i
	return nil
}

func (k ActionKind) String() string {
	switch k {
	case ActionCompute:
		return "compute"
	case ActionSleep:
		return "sleep"
	case ActionSleepUntil:
		return "sleep-until"
	case ActionBlock:
		return "block"
	case ActionExit:
		return "exit"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}
