package cpu

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// ActionKind discriminates the actions a program can request.
type ActionKind int

// Program actions.
const (
	// ActionCompute executes Work instructions, possibly across several
	// quanta and preemptions.
	ActionCompute ActionKind = iota
	// ActionSleep blocks the thread for Duration of simulated time.
	ActionSleep
	// ActionSleepUntil blocks the thread until the absolute time Until;
	// periodic real-time programs use it to wait for their next release.
	ActionSleepUntil
	// ActionBlock blocks the thread indefinitely, until another event
	// calls Machine.Wake — the primitive under simulated synchronization
	// (internal/synch) and IPC.
	ActionBlock
	// ActionExit terminates the thread.
	ActionExit
)

// Action is one step of a thread's behaviour.
type Action struct {
	Kind     ActionKind
	Work     sched.Work
	Duration sim.Time
	Until    sim.Time
}

// Compute returns an action executing w instructions.
func Compute(w sched.Work) Action { return Action{Kind: ActionCompute, Work: w} }

// Sleep returns an action blocking for d.
func Sleep(d sim.Time) Action { return Action{Kind: ActionSleep, Duration: d} }

// SleepUntil returns an action blocking until the absolute time at.
func SleepUntil(at sim.Time) Action { return Action{Kind: ActionSleepUntil, Until: at} }

// Block returns an action blocking until Machine.Wake.
func Block() Action { return Action{Kind: ActionBlock} }

// Exit returns the terminating action.
func Exit() Action { return Action{Kind: ActionExit} }

// Program generates the behaviour of a thread, one action at a time. Next
// is called when the thread is created and whenever the previous action
// completes (a compute burst finishes, a sleep elapses). Implementations
// live mostly in internal/workload.
type Program interface {
	Next(now sim.Time) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(now sim.Time) Action

// Next implements Program.
func (f ProgramFunc) Next(now sim.Time) Action { return f(now) }

// Sequence returns a program that performs the given actions in order and
// then exits.
func Sequence(actions ...Action) Program {
	i := 0
	return ProgramFunc(func(now sim.Time) Action {
		if i >= len(actions) {
			return Exit()
		}
		a := actions[i]
		i++
		return a
	})
}

// Forever returns a program that repeats the given actions in a loop.
func Forever(actions ...Action) Program {
	if len(actions) == 0 {
		panic("cpu: Forever with no actions")
	}
	i := 0
	return ProgramFunc(func(now sim.Time) Action {
		a := actions[i%len(actions)]
		i++
		return a
	})
}

func (k ActionKind) String() string {
	switch k {
	case ActionCompute:
		return "compute"
	case ActionSleep:
		return "sleep"
	case ActionSleepUntil:
		return "sleep-until"
	case ActionBlock:
		return "block"
	case ActionExit:
		return "exit"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}
