// Package cpu simulates a uniprocessor machine executing threads under a
// pluggable scheduler. It is the substrate standing in for the paper's
// Solaris 2.4 kernel on a SPARCstation 10: it implements preemption,
// quantum expiry, blocking and wakeup, and top-priority interrupt
// servicing, all in deterministic simulated time.
//
// The machine charges schedulers with the work a thread *actually*
// consumed, which is how the paper's hsfq_update operates and the property
// SFQ depends on ("the length of the quantum is required only when it
// finishes execution").
package cpu

import (
	"fmt"
	"math/bits"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Rate is a CPU speed in instructions per second. The paper models the CPU
// in MIPS; DefaultRate corresponds to a 100 MIPS machine, the example used
// in §3 ("a thread that needs 30% of a 100MIPS CPU would have a rate of 30
// MIPS").
type Rate int64

// DefaultRate is 100 MIPS.
const DefaultRate Rate = 100_000_000

// MIPS constructs a Rate from a MIPS figure.
func MIPS(m int64) Rate { return Rate(m * 1_000_000) }

// TimeFor returns the time needed to execute w instructions at rate r,
// rounded up so that scheduling a segment of TimeFor(w) always completes
// at least w instructions.
func (r Rate) TimeFor(w sched.Work) sim.Time {
	if w < 0 {
		panic(fmt.Sprintf("cpu: TimeFor of negative work %d", w))
	}
	return sim.Time(mulDivCeil(uint64(w), uint64(sim.Second), uint64(r)))
}

// WorkFor returns the instructions executed in duration d at rate r,
// rounded down.
func (r Rate) WorkFor(d sim.Time) sched.Work {
	if d < 0 {
		panic(fmt.Sprintf("cpu: WorkFor of negative duration %d", d))
	}
	return sched.Work(mulDivFloor(uint64(d), uint64(r), uint64(sim.Second)))
}

// mulDivFloor computes floor(a*b/c) without intermediate overflow.
func mulDivFloor(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		panic("cpu: mulDiv overflow")
	}
	q, _ := bits.Div64(hi, lo, c)
	return q
}

// mulDivCeil computes ceil(a*b/c) without intermediate overflow.
func mulDivCeil(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		panic("cpu: mulDiv overflow")
	}
	q, r := bits.Div64(hi, lo, c)
	if r > 0 {
		q++
	}
	return q
}
