package cpu_test

import (
	"testing"
	"testing/quick"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

// TestEDFSchedulabilityBoundary is the classic EDF property, checked
// end-to-end through the machine: any periodic task set with total
// utilization <= 1 on a dedicated CPU meets every deadline under
// preemptive EDF. Task sets are drawn randomly below the boundary.
func TestEDFSchedulabilityBoundary(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := sim.NewRand(seed)
		tasks := int(n)%4 + 2
		// Draw utilizations that sum below ~0.95 to stay clear of
		// rounding at the boundary.
		budget := 0.95
		type spec struct {
			period sim.Time
			cost   sched.Work
		}
		var specs []spec
		for i := 0; i < tasks; i++ {
			u := budget * (0.2 + 0.6*rng.Float64()) / float64(tasks)
			period := sim.Time(rng.Intn(400)+20) * sim.Millisecond
			cost := cpu.DefaultRate.WorkFor(sim.Time(u * float64(period)))
			if cost < 1 {
				cost = 1
			}
			specs = append(specs, spec{period, cost})
		}

		eng := sim.NewEngine()
		m := cpu.NewMachine(eng, cpu.DefaultRate, sched.NewEDF(0))
		var progs []*workload.Periodic
		for i, s := range specs {
			p := &workload.Periodic{Period: s.period, Cost: s.cost}
			th := sched.NewThread(i+1, "rt", 1)
			th.Period = s.period
			m.Add(th, p, 0)
			progs = append(progs, p)
		}
		m.Run(20 * sim.Second)

		for i, p := range progs {
			if p.MissedDeadlines() > 0 {
				t.Logf("seed %d: task %d (T=%v C=%d) missed %d deadlines, min slack %v",
					seed, i, specs[i].period, specs[i].cost, p.MissedDeadlines(), p.MinSlack())
				return false
			}
			if len(p.Slack) < 10 {
				t.Logf("seed %d: task %d ran only %d rounds", seed, i, len(p.Slack))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEDFOverloadMissesDeadlines is the converse control: utilization
// well above 1 must miss deadlines — if it didn't, the simulator would
// be giving away CPU time.
func TestEDFOverloadMissesDeadlines(t *testing.T) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, cpu.DefaultRate, sched.NewEDF(0))
	var progs []*workload.Periodic
	for i := 0; i < 3; i++ {
		// Each task needs 50% -> total 150%.
		p := &workload.Periodic{Period: 100 * sim.Millisecond, Cost: cpu.DefaultRate.WorkFor(50 * sim.Millisecond)}
		th := sched.NewThread(i+1, "rt", 1)
		th.Period = p.Period
		m.Add(th, p, 0)
		progs = append(progs, p)
	}
	m.Run(5 * sim.Second)
	missed := 0
	for _, p := range progs {
		missed += p.MissedDeadlines()
	}
	if missed == 0 {
		t.Error("150% utilization missed no deadlines")
	}
}

// TestRMBoundIsConservative: task sets accepted by the Liu-Layland bound
// meet all deadlines under the RM leaf with preemption.
func TestRMSchedulabilityUnderMachine(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		// Two tasks within the n=2 bound (0.828): draw u_total <= 0.8.
		p1 := sim.Time(rng.Intn(80)+20) * sim.Millisecond
		p2 := p1 * sim.Time(rng.Intn(4)+2) // longer period
		u1 := 0.1 + 0.3*rng.Float64()
		u2 := 0.8 - u1 - 0.05
		c1 := cpu.DefaultRate.WorkFor(sim.Time(u1 * float64(p1)))
		c2 := cpu.DefaultRate.WorkFor(sim.Time(u2 * float64(p2)))
		if c1 < 1 || c2 < 1 {
			return true
		}
		if !sched.SchedulableRM(
			[]sim.Time{cpu.DefaultRate.TimeFor(c1), cpu.DefaultRate.TimeFor(c2)},
			[]sim.Time{p1, p2}) {
			return true // outside the sufficient bound: no claim
		}
		eng := sim.NewEngine()
		m := cpu.NewMachine(eng, cpu.DefaultRate, sched.NewRM(0))
		mk := func(id int, period sim.Time, cost sched.Work) *workload.Periodic {
			p := &workload.Periodic{Period: period, Cost: cost}
			th := sched.NewThread(id, "rt", 1)
			th.Period = period
			m.Add(th, p, 0)
			return p
		}
		j1 := mk(1, p1, c1)
		j2 := mk(2, p2, c2)
		m.Run(10 * sim.Second)
		if j1.MissedDeadlines() > 0 || j2.MissedDeadlines() > 0 {
			t.Logf("seed %d: T1=%v C1=%d T2=%v C2=%d missed %d/%d",
				seed, p1, c1, p2, c2, j1.MissedDeadlines(), j2.MissedDeadlines())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
