package cpu

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Policy selects how the cores of a multicore machine share scheduling
// state. On a single-core machine all three policies degenerate to the
// same uniprocessor behavior.
type Policy int

const (
	// PolicyPartitioned gives every core its own scheduler instance with
	// static thread placement: each core runs the exact uniprocessor
	// protocol against its own hierarchy, so the paper's per-scheduler
	// guarantees (Theorem 1) hold per core.
	PolicyPartitioned Policy = iota
	// PolicyGlobal feeds all cores from one shared scheduler. A picked
	// thread leaves the runnable set while it runs (dequeue-on-dispatch),
	// which is the guard that keeps one thread from running on two cores
	// at once.
	PolicyGlobal
	// PolicySteal is partitioned scheduling plus work stealing: an idle
	// core scans the other cores' schedulers in fixed order and runs the
	// first thread it finds, paying the machine's migration cost. Tags are
	// always charged to the thread's home scheduler.
	PolicySteal
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyPartitioned:
		return "partitioned"
	case PolicyGlobal:
		return "global"
	case PolicySteal:
		return "steal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the configuration names to Policy values; the empty
// string selects PolicyPartitioned, the default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "partitioned":
		return PolicyPartitioned, nil
	case "global":
		return PolicyGlobal, nil
	case "steal":
		return PolicySteal, nil
	default:
		return 0, fmt.Errorf("cpu: unknown policy %q (have partitioned, global, steal)", s)
	}
}

// SMPConfig describes a machine of N cores.
type SMPConfig struct {
	// Cores is the core count; 0 means len(Schedulers).
	Cores int
	// Policy selects how cores share scheduling state.
	Policy Policy
	// Schedulers supplies the scheduling state: one scheduler per core
	// under PolicyPartitioned and PolicySteal, exactly one shared
	// scheduler under PolicyGlobal.
	Schedulers []sched.Scheduler
	// SwitchCost is CPU time charged to a core on every dispatch, the
	// context-switch overhead. Zero keeps dispatch free, the paper's
	// idealization.
	SwitchCost sim.Time
	// MigrationCost is additional CPU time charged when the dispatched
	// thread last ran on a different core (cache refill, TLB shootdown).
	MigrationCost sim.Time
}

// NewSMP returns a machine of cfg.Cores identical cores executing on eng
// at the given rate. rate <= 0 selects DefaultRate. Construction panics on
// inconsistent configs — simconfig.Validate rejects the same inputs with
// field errors before they can reach here.
func NewSMP(eng *sim.Engine, rate Rate, cfg SMPConfig) *Machine {
	if eng == nil {
		panic("cpu: nil engine")
	}
	n := cfg.Cores
	if n == 0 {
		n = len(cfg.Schedulers)
	}
	if n <= 0 {
		panic(fmt.Sprintf("cpu: machine needs at least one core, got %d", n))
	}
	for i, s := range cfg.Schedulers {
		if s == nil {
			panic(fmt.Sprintf("cpu: nil scheduler for core %d", i))
		}
	}
	switch cfg.Policy {
	case PolicyGlobal:
		if len(cfg.Schedulers) != 1 {
			panic(fmt.Sprintf("cpu: global policy wants 1 shared scheduler, got %d", len(cfg.Schedulers)))
		}
	case PolicyPartitioned, PolicySteal:
		if len(cfg.Schedulers) != n {
			panic(fmt.Sprintf("cpu: %v policy wants %d schedulers, got %d", cfg.Policy, n, len(cfg.Schedulers)))
		}
	default:
		panic(fmt.Sprintf("cpu: invalid policy %d", int(cfg.Policy)))
	}
	if cfg.SwitchCost < 0 {
		panic(fmt.Sprintf("cpu: negative switch cost %v", cfg.SwitchCost))
	}
	if cfg.MigrationCost < 0 {
		panic(fmt.Sprintf("cpu: negative migration cost %v", cfg.MigrationCost))
	}
	if rate <= 0 {
		rate = DefaultRate
	}
	m := &Machine{
		eng:           eng,
		rate:          rate,
		policy:        cfg.Policy,
		dequeue:       n > 1 && cfg.Policy != PolicyPartitioned,
		switchCost:    cfg.SwitchCost,
		migrationCost: cfg.MigrationCost,
		threads:       make(map[*sched.Thread]*tstate),
		nextID:        1,
	}
	for i := 0; i < n; i++ {
		sch := cfg.Schedulers[0]
		if cfg.Policy != PolicyGlobal {
			sch = cfg.Schedulers[i]
		}
		c := &coreCtx{id: i, sched: sch, idle: true}
		c.segEndFn = func() { m.segmentEnd(c) }
		m.cores = append(m.cores, c)
	}
	m.intrDoneFn = m.interruptDone
	return m
}

// NumCores returns the machine's core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Policy returns the machine's scheduling policy.
func (m *Machine) Policy() Policy { return m.policy }

// SchedulerOn returns the scheduler core picks from; under PolicyGlobal
// every core returns the same instance.
func (m *Machine) SchedulerOn(core int) sched.Scheduler { return m.cores[core].sched }

// CoreStats returns a snapshot of one core's counters.
func (m *Machine) CoreStats(core int) Stats { return m.cores[core].stats }

// HomeCore returns the core a thread was added on, its static placement.
func (m *Machine) HomeCore(t *sched.Thread) int {
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: HomeCore of unknown thread %v", t))
	}
	return ts.core
}

// LastCore returns the core the thread most recently ran on, or -1 if it
// has never been dispatched.
func (m *Machine) LastCore(t *sched.Thread) int {
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: LastCore of unknown thread %v", t))
	}
	return ts.lastCore
}
