package cpu

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Listener observes scheduling events; internal/trace and the experiment
// drivers implement it. Embed BaseListener to opt into a subset.
type Listener interface {
	OnDispatch(t *sched.Thread, now sim.Time)
	OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool)
	OnWake(t *sched.Thread, now sim.Time)
	OnBlock(t *sched.Thread, now sim.Time)
	OnExit(t *sched.Thread, now sim.Time)
	OnInterrupt(now, service sim.Time)
	OnIdle(now sim.Time)
}

// BaseListener implements Listener with no-ops, for embedding.
type BaseListener struct{}

// OnDispatch implements Listener.
func (BaseListener) OnDispatch(*sched.Thread, sim.Time) {}

// OnCharge implements Listener.
func (BaseListener) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}

// OnWake implements Listener.
func (BaseListener) OnWake(*sched.Thread, sim.Time) {}

// OnBlock implements Listener.
func (BaseListener) OnBlock(*sched.Thread, sim.Time) {}

// OnExit implements Listener.
func (BaseListener) OnExit(*sched.Thread, sim.Time) {}

// OnInterrupt implements Listener.
func (BaseListener) OnInterrupt(sim.Time, sim.Time) {}

// OnIdle implements Listener.
func (BaseListener) OnIdle(sim.Time) {}

// Stats aggregates machine-level counters.
type Stats struct {
	Dispatches  int64    // run segments started
	Preemptions int64    // segments cut short by a wakeup
	Interrupts  int64    // interrupts serviced
	Stolen      sim.Time // CPU time consumed by interrupt handling
	SchedCost   sim.Time // CPU time consumed by scheduling decisions
	Idle        sim.Time // CPU time with no runnable thread
	Work        sched.Work
}

// segment is the state of the thread currently on the CPU.
type segment struct {
	ts       *tstate
	left     sched.Work // work remaining before the segment ends
	used     sched.Work // work consumed so far, across pauses
	resumeAt sim.Time   // when execution last (re)started
	end      *sim.Event
	paused   bool
}

// tstate is the machine's per-thread bookkeeping.
type tstate struct {
	t         *sched.Thread
	prog      Program
	burstLeft sched.Work
	start     *sim.Event // pending program-start event, nil once fired
	wake      *sim.Event
	wakeFn    func() // timed-wakeup callback, built once at Add
	startFn   func() // program-start callback, built once at Add
}

// intrState tracks one registered interrupt source: the pending arrival
// event, the service length drawn for it, and the fire callback reused
// across arrivals. Keeping it a named struct (instead of the former local
// closures) is what lets checkpoints re-arm arrivals after a restore.
type intrState struct {
	src     InterruptSource
	service sim.Time
	next    *sim.Event // pending arrival, nil once fired or exhausted
	fire    func()
}

// Machine is a simulated uniprocessor.
type Machine struct {
	eng       *sim.Engine
	rate      Rate
	scheduler sched.Scheduler
	threads   map[*sched.Thread]*tstate
	listeners []Listener

	seg          *segment
	segbuf       segment  // backing store for seg: one segment is in flight at a time
	inCallback   int      // depth of program-callback nesting (see progNext)
	intrUntil    sim.Time // CPU busy with interrupts until this time
	intrEnd      *sim.Event
	intrs        []*intrState // registration order; part of the checkpoint canon
	idleFrom     sim.Time
	idle         bool
	stats        Stats
	nextID       int
	dispatchCost func(t *sched.Thread) sim.Time

	saveScratch []*tstate // reused by SaveState so snapshots stay alloc-free

	// Method values are built once here; evaluating m.segmentEnd at each
	// dispatch would allocate a fresh closure per run segment.
	segEndFn   func()
	intrDoneFn func()
}

// SetDispatchCost models the CPU time consumed by each scheduling
// decision, as a function of the picked thread (so a hierarchy can charge
// per tree level, the cost Fig. 7 measures). The real simulator schedules
// for free; without this the overhead experiments would be vacuous.
func (m *Machine) SetDispatchCost(f func(t *sched.Thread) sim.Time) { m.dispatchCost = f }

// NewMachine returns a machine executing on eng at the given rate under
// scheduler. rate <= 0 selects DefaultRate.
func NewMachine(eng *sim.Engine, rate Rate, scheduler sched.Scheduler) *Machine {
	if eng == nil {
		panic("cpu: nil engine")
	}
	if scheduler == nil {
		panic("cpu: nil scheduler")
	}
	if rate <= 0 {
		rate = DefaultRate
	}
	m := &Machine{
		eng:       eng,
		rate:      rate,
		scheduler: scheduler,
		threads:   make(map[*sched.Thread]*tstate),
		idle:      true,
		nextID:    1,
	}
	m.segEndFn = m.segmentEnd
	m.intrDoneFn = m.interruptDone
	return m
}

// Engine returns the simulation engine driving the machine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Rate returns the machine's instruction rate.
func (m *Machine) Rate() Rate { return m.rate }

// Scheduler returns the machine's scheduler.
func (m *Machine) Scheduler() sched.Scheduler { return m.scheduler }

// Stats returns a snapshot of the machine counters.
func (m *Machine) Stats() Stats { return m.stats }

// Listen registers a Listener.
func (m *Machine) Listen(l Listener) { m.listeners = append(m.listeners, l) }

// Spawn creates a thread with a fresh ID, registers it, and starts its
// program at startAt. It is the convenience path for flat schedulers; when
// the scheduler is a hierarchy the thread must be attached to a leaf
// before its first action, so use sched.NewThread + Structure.Attach +
// Machine.Add instead.
func (m *Machine) Spawn(name string, weight float64, prog Program, startAt sim.Time) *sched.Thread {
	t := sched.NewThread(m.nextID, name, weight)
	m.nextID++
	m.Add(t, prog, startAt)
	return t
}

// Add registers an externally created thread and starts its program at
// startAt.
func (m *Machine) Add(t *sched.Thread, prog Program, startAt sim.Time) {
	if _, dup := m.threads[t]; dup {
		panic(fmt.Sprintf("cpu: thread %v added twice", t))
	}
	if prog == nil {
		panic(fmt.Sprintf("cpu: thread %v with nil program", t))
	}
	if t.ID >= m.nextID {
		m.nextID = t.ID + 1
	}
	ts := &tstate{t: t, prog: prog}
	ts.wakeFn = func() {
		ts.wake = nil
		ts.t.WokeAt = m.eng.Now()
		m.advance(ts)
	}
	ts.startFn = func() {
		ts.start = nil
		m.advance(ts)
	}
	m.threads[t] = ts
	t.MachSlot.Set(m, ts)
	ts.start = m.eng.At(startAt, ts.startFn)
}

// stateOf returns t's machine state, consulting the threads map only after
// a cache miss.
func (m *Machine) stateOf(t *sched.Thread) *tstate {
	if v, ok := t.MachSlot.Get(m); ok {
		return v.(*tstate)
	}
	if ts := m.threads[t]; ts != nil {
		t.MachSlot.Set(m, ts)
		return ts
	}
	return nil
}

// AddInterrupts registers an interrupt source and schedules its first
// arrival. The fire callback is reused for every arrival of this source;
// the order inside it (service first, then re-arm) matters, because it
// gives the interrupt-end event an earlier sequence number than the next
// arrival and same-instant events fire in scheduling order.
func (m *Machine) AddInterrupts(src InterruptSource) {
	is := &intrState{src: src}
	is.fire = func() {
		is.next = nil
		m.interrupt(is.service)
		m.armInterrupt(is)
	}
	m.intrs = append(m.intrs, is)
	m.armInterrupt(is)
}

// armInterrupt draws the source's next arrival and schedules it.
func (m *Machine) armInterrupt(is *intrState) {
	at, svc, ok := is.src.Next(m.eng.Now())
	if !ok {
		return
	}
	is.service = svc
	is.next = m.eng.At(at, is.fire)
}

// Run executes the simulation until the given time.
func (m *Machine) Run(until sim.Time) { m.eng.RunUntil(until) }

// progNext invokes a thread's program. Programs may re-enter the machine
// (a mutex Unlock inside Next calls Wake); the counter lets makeRunnable
// detect that and defer preemption/dispatch to the enclosing step.
func (m *Machine) progNext(ts *tstate, now sim.Time) Action {
	m.inCallback++
	a := ts.prog.Next(now)
	m.inCallback--
	return a
}

// kick dispatches if the machine is between steps and the CPU is free —
// the catch-up for wakeups that arrived during a program callback.
func (m *Machine) kick() {
	if m.inCallback == 0 {
		m.maybeDispatch()
	}
}

// advance consumes program actions until the thread computes, blocks, or
// exits. It is called at thread start and at every wakeup.
func (m *Machine) advance(ts *tstate) {
	now := m.eng.Now()
	const maxNoops = 1 << 20
	for i := 0; ; i++ {
		if i == maxNoops {
			panic(fmt.Sprintf("cpu: program of %v made no progress", ts.t))
		}
		a := m.progNext(ts, now)
		switch a.Kind {
		case ActionCompute:
			if a.Work <= 0 {
				continue
			}
			ts.burstLeft = a.Work
			m.makeRunnable(ts)
			return
		case ActionSleep:
			if a.Duration <= 0 {
				continue
			}
			m.block(ts, now+a.Duration)
			m.kick()
			return
		case ActionSleepUntil:
			if a.Until <= now {
				continue
			}
			m.block(ts, a.Until)
			m.kick()
			return
		case ActionBlock:
			ts.t.State = sched.StateBlocked
			m.notifyBlock(ts.t, now)
			m.kick()
			return
		case ActionExit:
			ts.t.State = sched.StateExited
			m.notifyExit(ts.t, now)
			m.forget(ts.t)
			m.kick()
			return
		default:
			panic(fmt.Sprintf("cpu: program of %v returned invalid action %v", ts.t, a.Kind))
		}
	}
}

func (m *Machine) block(ts *tstate, until sim.Time) {
	now := m.eng.Now()
	ts.t.State = sched.StateBlocked
	m.notifyBlock(ts.t, now)
	ts.wake = m.eng.At(until, ts.wakeFn)
}

// makeRunnable enqueues the thread and resolves preemption/dispatch.
func (m *Machine) makeRunnable(ts *tstate) {
	now := m.eng.Now()
	ts.t.State = sched.StateRunnable
	ts.t.ReadyAt = now
	m.scheduler.Enqueue(ts.t, now)
	m.notifyWake(ts.t, now)
	if m.inCallback > 0 {
		// Woken from inside another thread's program callback (e.g. a
		// mutex handover): the enclosing machine step charges and
		// dispatches right after; preempting here would act on a
		// half-finished segment. The woken thread competes at the next
		// decision, at most a quantum away — the same bound as cross-leaf
		// wakeups.
		return
	}
	if m.seg != nil {
		if m.scheduler.Preempts(m.seg.ts.t, ts.t, now) {
			m.preempt()
			m.maybeDispatch()
		}
		return
	}
	m.maybeDispatch()
	// While an interrupt is in progress the interrupt-end handler
	// dispatches instead.
}

// maybeDispatch dispatches if the CPU is actually free.
func (m *Machine) maybeDispatch() {
	if m.seg == nil && !m.interruptBusy() {
		m.dispatch()
	}
}

// dispatch selects the next thread and starts a run segment. The CPU must
// be free of both segments and interrupts.
func (m *Machine) dispatch() {
	if m.seg != nil || m.interruptBusy() {
		panic("cpu: dispatch while busy")
	}
	now := m.eng.Now()
	t := m.scheduler.Pick(now)
	if t == nil {
		if !m.idle {
			m.idle = true
			m.idleFrom = now
			m.notifyIdle(now)
		}
		return
	}
	if m.idle {
		m.idle = false
		m.stats.Idle += now - m.idleFrom
	}
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: scheduler picked unknown thread %v", t))
	}
	if ts.burstLeft <= 0 {
		panic(fmt.Sprintf("cpu: scheduler picked thread %v with no work", t))
	}
	grant := m.rate.WorkFor(m.scheduler.Quantum(t, now))
	if grant < 1 {
		grant = 1
	}
	if grant > ts.burstLeft {
		grant = ts.burstLeft
	}
	var cost sim.Time
	if m.dispatchCost != nil {
		cost = m.dispatchCost(t)
		m.stats.SchedCost += cost
	}
	if now > t.ReadyAt {
		t.Waited += now - t.ReadyAt
	}
	t.State = sched.StateRunning
	// Reuse the machine's single segment buffer: dispatch requires the CPU
	// to be free (m.seg == nil), so at most one segment is ever in flight
	// and no reference to a previous segment outlives its charge.
	m.segbuf = segment{ts: ts, left: grant, resumeAt: now + cost}
	m.seg = &m.segbuf
	m.seg.end = m.eng.After(cost+m.rate.TimeFor(grant), m.segEndFn)
	m.stats.Dispatches++
	m.notifyDispatch(t, now)
}

// progress charges the running segment for the time elapsed since it last
// resumed and cancels its end event.
func (m *Machine) progress() {
	s := m.seg
	if s.paused {
		return
	}
	m.eng.Cancel(s.end)
	s.end = nil
	var w sched.Work
	// resumeAt can lie ahead of now while the dispatch cost is still
	// being paid; no thread work has happened yet in that case.
	if elapsed := m.eng.Now() - s.resumeAt; elapsed > 0 {
		w = m.rate.WorkFor(elapsed)
	}
	if w > s.left {
		w = s.left
	}
	s.left -= w
	s.used += w
	s.ts.burstLeft -= w
}

// segmentEnd fires when the running segment's granted work is complete:
// either the quantum expired or the burst finished.
func (m *Machine) segmentEnd() {
	s := m.seg
	now := m.eng.Now()
	s.end = nil
	// The event was scheduled for exactly the remaining work; rounding in
	// WorkFor must not lose the tail, so settle it explicitly.
	s.used += s.left
	s.ts.burstLeft -= s.left
	s.left = 0
	ts := s.ts
	if ts.burstLeft > 0 {
		// Quantum expiry: charge and compete again.
		ts.t.State = sched.StateRunnable
		ts.t.ReadyAt = now
		m.charge(true)
		m.dispatch()
		return
	}
	// Burst complete: the next program action decides what happens, and —
	// as in the paper — the scheduler learns the actual quantum length
	// only now.
	m.finishBurst(ts)
}

// finishBurst processes the program action following a completed burst.
func (m *Machine) finishBurst(ts *tstate) {
	now := m.eng.Now()
	const maxNoops = 1 << 20
	for i := 0; ; i++ {
		if i == maxNoops {
			panic(fmt.Sprintf("cpu: program of %v made no progress", ts.t))
		}
		a := m.progNext(ts, now)
		switch a.Kind {
		case ActionCompute:
			if a.Work <= 0 {
				continue
			}
			// Back-to-back burst: the thread never blocks.
			ts.burstLeft = a.Work
			ts.t.State = sched.StateRunnable
			ts.t.ReadyAt = now
			m.charge(true)
			m.maybeDispatch()
			return
		case ActionSleep, ActionSleepUntil:
			until := now + a.Duration
			if a.Kind == ActionSleepUntil {
				until = a.Until
			}
			if until <= now {
				continue
			}
			m.charge(false)
			m.block(ts, until)
			m.maybeDispatch()
			return
		case ActionBlock:
			m.charge(false)
			ts.t.State = sched.StateBlocked
			m.notifyBlock(ts.t, now)
			m.maybeDispatch()
			return
		case ActionExit:
			m.charge(false)
			ts.t.State = sched.StateExited
			m.notifyExit(ts.t, now)
			m.forget(ts.t)
			m.maybeDispatch()
			return
		default:
			panic(fmt.Sprintf("cpu: program of %v returned invalid action %v", ts.t, a.Kind))
		}
	}
}

// forget lets the scheduler drop per-thread state for an exited thread,
// so tag maps do not grow without bound in long simulations.
func (m *Machine) forget(t *sched.Thread) {
	if f, ok := m.scheduler.(interface{ Forget(*sched.Thread) }); ok {
		f.Forget(t)
	}
}

// charge closes the current segment and accounts it to the scheduler.
func (m *Machine) charge(runnable bool) {
	s := m.seg
	if s == nil {
		panic("cpu: charge with no segment")
	}
	now := m.eng.Now()
	m.seg = nil
	t := s.ts.t
	t.Done += s.used
	t.Segments++
	m.stats.Work += s.used
	m.scheduler.Charge(t, s.used, now, runnable)
	m.notifyCharge(t, s.used, now, runnable)
}

// preempt cuts the running segment short after a wakeup the scheduler
// wants to act on. If the wakeup landed at the exact instant the burst
// completed, the burst is finished instead — the thread must not stay
// runnable with no work.
func (m *Machine) preempt() {
	s := m.seg
	m.progress()
	m.stats.Preemptions++
	if s.ts.burstLeft == 0 {
		m.finishBurst(s.ts)
		return
	}
	s.ts.t.State = sched.StateRunnable
	s.ts.t.ReadyAt = m.eng.Now()
	m.charge(true)
}

// Flush charges the in-flight run segment for the work completed so far,
// so that accounting is exact at a measurement horizon instead of
// quantized at whole quanta. The machine stays consistent and may keep
// running afterwards.
func (m *Machine) Flush() {
	if m.seg == nil {
		return
	}
	s := m.seg
	m.progress()
	if s.ts.burstLeft == 0 {
		m.finishBurst(s.ts)
		return
	}
	s.ts.t.State = sched.StateRunnable
	s.ts.t.ReadyAt = m.eng.Now()
	m.charge(true)
	m.maybeDispatch()
}

// Wake makes a blocked thread runnable immediately: the counterpart of
// cpu.Block for event-driven sleeps (lock releases, message arrival). A
// pending timed wakeup, if any, is cancelled. Waking a thread that is not
// blocked is a no-op and returns false.
func (m *Machine) Wake(t *sched.Thread) bool {
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: Wake of unknown thread %v", t))
	}
	if t.State != sched.StateBlocked {
		return false
	}
	if ts.wake != nil {
		m.eng.Cancel(ts.wake)
		ts.wake = nil
	}
	t.WokeAt = m.eng.Now()
	m.advance(ts)
	return true
}

// interrupt services a hardware interrupt: the running thread is paused
// and the CPU is consumed until the service time elapses. Overlapping
// interrupts queue back to back.
func (m *Machine) interrupt(service sim.Time) {
	now := m.eng.Now()
	m.stats.Interrupts++
	m.stats.Stolen += service
	m.notifyInterrupt(now, service)
	if m.idle {
		// The CPU is busy with the handler now, even with no thread ready.
		m.idle = false
		m.stats.Idle += now - m.idleFrom
	}
	if m.seg != nil && !m.seg.paused {
		m.progress()
		m.seg.paused = true
	}
	if m.intrUntil < now {
		m.intrUntil = now
	}
	m.intrUntil += service
	if m.intrEnd != nil {
		m.eng.Cancel(m.intrEnd)
	}
	m.intrEnd = m.eng.At(m.intrUntil, m.intrDoneFn)
}

func (m *Machine) interruptDone() {
	m.intrEnd = nil
	if m.seg != nil {
		if !m.seg.paused {
			panic("cpu: running segment during interrupt")
		}
		s := m.seg
		s.paused = false
		s.resumeAt = m.eng.Now()
		s.end = m.eng.After(m.rate.TimeFor(s.left), m.segEndFn)
		return
	}
	// Wakeups or preemption charges may have arrived during the
	// interrupt; dispatch decides whether anything can run (and records
	// the transition back to idle if not).
	m.dispatch()
}

func (m *Machine) interruptBusy() bool { return m.intrEnd != nil }

// Latency returns now minus the thread's ReadyAt, the time a runnable
// thread has waited since it last became ready.
func (m *Machine) Latency(t *sched.Thread) sim.Time { return m.eng.Now() - t.ReadyAt }

func (m *Machine) notifyDispatch(t *sched.Thread, now sim.Time) {
	for _, l := range m.listeners {
		l.OnDispatch(t, now)
	}
}
func (m *Machine) notifyCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	for _, l := range m.listeners {
		l.OnCharge(t, used, now, runnable)
	}
}
func (m *Machine) notifyWake(t *sched.Thread, now sim.Time) {
	for _, l := range m.listeners {
		l.OnWake(t, now)
	}
}
func (m *Machine) notifyBlock(t *sched.Thread, now sim.Time) {
	for _, l := range m.listeners {
		l.OnBlock(t, now)
	}
}
func (m *Machine) notifyExit(t *sched.Thread, now sim.Time) {
	for _, l := range m.listeners {
		l.OnExit(t, now)
	}
}
func (m *Machine) notifyInterrupt(now, service sim.Time) {
	for _, l := range m.listeners {
		l.OnInterrupt(now, service)
	}
}
func (m *Machine) notifyIdle(now sim.Time) {
	for _, l := range m.listeners {
		l.OnIdle(now)
	}
}
