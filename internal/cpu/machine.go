package cpu

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Listener observes scheduling events; internal/trace and the experiment
// drivers implement it. Embed BaseListener to opt into a subset. A
// listener that also implements SMPListener receives the core-tagged
// variants of the dispatch/charge/idle events on multicore machines.
type Listener interface {
	OnDispatch(t *sched.Thread, now sim.Time)
	OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool)
	OnWake(t *sched.Thread, now sim.Time)
	OnBlock(t *sched.Thread, now sim.Time)
	OnExit(t *sched.Thread, now sim.Time)
	OnInterrupt(now, service sim.Time)
	OnIdle(now sim.Time)
}

// SMPListener is the multicore extension of Listener: events that happen
// on a particular core carry its index. The machine calls these INSTEAD of
// the corresponding Listener methods, and only when it has more than one
// core — a single-core machine always uses the plain Listener surface, so
// existing listeners observe byte-identical streams at cores: 1.
type SMPListener interface {
	OnDispatchCore(core int, t *sched.Thread, now sim.Time)
	OnChargeCore(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool)
	OnIdleCore(core int, now sim.Time)
}

// BaseListener implements Listener with no-ops, for embedding.
type BaseListener struct{}

// OnDispatch implements Listener.
func (BaseListener) OnDispatch(*sched.Thread, sim.Time) {}

// OnCharge implements Listener.
func (BaseListener) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}

// OnWake implements Listener.
func (BaseListener) OnWake(*sched.Thread, sim.Time) {}

// OnBlock implements Listener.
func (BaseListener) OnBlock(*sched.Thread, sim.Time) {}

// OnExit implements Listener.
func (BaseListener) OnExit(*sched.Thread, sim.Time) {}

// OnInterrupt implements Listener.
func (BaseListener) OnInterrupt(sim.Time, sim.Time) {}

// OnIdle implements Listener.
func (BaseListener) OnIdle(sim.Time) {}

// Stats aggregates machine-level counters. The machine keeps one Stats per
// core plus this aggregate; on a single-core machine the two coincide.
type Stats struct {
	Dispatches  int64    // run segments started
	Preemptions int64    // segments cut short by a wakeup
	Interrupts  int64    // interrupts serviced
	Stolen      sim.Time // CPU time consumed by interrupt handling
	SchedCost   sim.Time // CPU time consumed by scheduling decisions
	Idle        sim.Time // CPU time with no runnable thread
	Work        sched.Work
	Migrations  int64 // dispatches on a different core than the last one
}

// segment is the state of a thread currently on a core.
type segment struct {
	ts       *tstate
	left     sched.Work // work remaining before the segment ends
	used     sched.Work // work consumed so far, across pauses
	resumeAt sim.Time   // when execution last (re)started
	end      *sim.Event
	paused   bool
}

// tstate is the machine's per-thread bookkeeping.
type tstate struct {
	t         *sched.Thread
	prog      Program
	burstLeft sched.Work
	core      int        // home core: where the thread is enqueued
	lastCore  int        // core of the last dispatch, -1 before the first
	start     *sim.Event // pending program-start event, nil once fired
	wake      *sim.Event
	wakeFn    func() // timed-wakeup callback, built once at Add
	startFn   func() // program-start callback, built once at Add
}

// intrState tracks one registered interrupt source: the pending arrival
// event, the service length drawn for it, and the fire callback reused
// across arrivals. Keeping it a named struct (instead of the former local
// closures) is what lets checkpoints re-arm arrivals after a restore.
type intrState struct {
	src     InterruptSource
	service sim.Time
	next    *sim.Event // pending arrival, nil once fired or exhausted
	fire    func()
}

// coreCtx is one core's execution context: the scheduler it picks from,
// the in-flight run segment, idle bookkeeping, and per-core counters.
// Under PolicyGlobal every core shares one scheduler; otherwise each core
// owns its own instance.
type coreCtx struct {
	id       int
	sched    sched.Scheduler
	seg      *segment
	segbuf   segment // backing store for seg: one segment in flight per core
	idleFrom sim.Time
	idle     bool
	stats    Stats
	segEndFn func() // bound to this core once, so dispatch never allocates
}

// listenerEntry caches the SMPListener upgrade so the per-event notify
// loops perform no type assertions.
type listenerEntry struct {
	l   Listener
	smp SMPListener // non-nil only on a multicore machine
}

// Machine is a simulated machine of one or more identical cores sharing a
// single event clock. Cores are always examined in fixed index order, so a
// multicore run is exactly as deterministic as a uniprocessor one.
type Machine struct {
	eng     *sim.Engine
	rate    Rate
	policy  Policy
	dequeue bool // running threads leave the runnable set (global/steal)
	cores   []*coreCtx

	switchCost    sim.Time // charged on every dispatch
	migrationCost sim.Time // charged when a thread changes cores

	threads   map[*sched.Thread]*tstate
	listeners []listenerEntry

	inCallback   int      // depth of program-callback nesting (see progNext)
	intrUntil    sim.Time // core 0 busy with interrupts until this time
	intrEnd      *sim.Event
	intrs        []*intrState // registration order; part of the checkpoint canon
	stats        Stats        // aggregate across cores
	nextID       int
	dispatchCost func(t *sched.Thread) sim.Time

	saveScratch []*tstate // reused by SaveState so snapshots stay alloc-free

	intrDoneFn func()
}

// SetDispatchCost models the CPU time consumed by each scheduling
// decision, as a function of the picked thread (so a hierarchy can charge
// per tree level, the cost Fig. 7 measures). The real simulator schedules
// for free; without this the overhead experiments would be vacuous.
func (m *Machine) SetDispatchCost(f func(t *sched.Thread) sim.Time) { m.dispatchCost = f }

// NewMachine returns a single-core machine executing on eng at the given
// rate under scheduler. rate <= 0 selects DefaultRate.
func NewMachine(eng *sim.Engine, rate Rate, scheduler sched.Scheduler) *Machine {
	return NewSMP(eng, rate, SMPConfig{Schedulers: []sched.Scheduler{scheduler}})
}

// Engine returns the simulation engine driving the machine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Rate returns the machine's instruction rate.
func (m *Machine) Rate() Rate { return m.rate }

// Scheduler returns core 0's scheduler: the machine's only scheduler on a
// uniprocessor or under PolicyGlobal.
func (m *Machine) Scheduler() sched.Scheduler { return m.cores[0].sched }

// Stats returns a snapshot of the aggregate machine counters.
func (m *Machine) Stats() Stats { return m.stats }

// Listen registers a Listener. On a multicore machine a listener that also
// implements SMPListener is upgraded to the core-tagged event variants,
// and one implementing SetNumCores(int) is told the core count.
func (m *Machine) Listen(l Listener) {
	le := listenerEntry{l: l}
	if s, ok := l.(SMPListener); ok && len(m.cores) > 1 {
		le.smp = s
	}
	if s, ok := l.(interface{ SetNumCores(int) }); ok {
		s.SetNumCores(len(m.cores))
	}
	m.listeners = append(m.listeners, le)
}

// Spawn creates a thread with a fresh ID, registers it, and starts its
// program at startAt. It is the convenience path for flat schedulers; when
// the scheduler is a hierarchy the thread must be attached to a leaf
// before its first action, so use sched.NewThread + Structure.Attach +
// Machine.Add instead.
func (m *Machine) Spawn(name string, weight float64, prog Program, startAt sim.Time) *sched.Thread {
	t := sched.NewThread(m.nextID, name, weight)
	m.nextID++
	m.Add(t, prog, startAt)
	return t
}

// Add registers an externally created thread on core 0 and starts its
// program at startAt.
func (m *Machine) Add(t *sched.Thread, prog Program, startAt sim.Time) {
	m.AddOn(t, prog, startAt, 0)
}

// AddOn registers an externally created thread with the given home core
// and starts its program at startAt. The home core decides which scheduler
// the thread is enqueued on; under PolicyGlobal all cores share one
// scheduler and the home core only seeds wakeup placement.
func (m *Machine) AddOn(t *sched.Thread, prog Program, startAt sim.Time, core int) {
	if core < 0 || core >= len(m.cores) {
		panic(fmt.Sprintf("cpu: thread %v on core %d of a %d-core machine", t, core, len(m.cores)))
	}
	if _, dup := m.threads[t]; dup {
		panic(fmt.Sprintf("cpu: thread %v added twice", t))
	}
	if prog == nil {
		panic(fmt.Sprintf("cpu: thread %v with nil program", t))
	}
	if t.ID >= m.nextID {
		m.nextID = t.ID + 1
	}
	ts := &tstate{t: t, prog: prog, core: core, lastCore: -1}
	ts.wakeFn = func() {
		ts.wake = nil
		ts.t.WokeAt = m.eng.Now()
		m.advance(ts)
	}
	ts.startFn = func() {
		ts.start = nil
		m.advance(ts)
	}
	m.threads[t] = ts
	t.MachSlot.Set(m, ts)
	ts.start = m.eng.At(startAt, ts.startFn)
}

// stateOf returns t's machine state, consulting the threads map only after
// a cache miss.
func (m *Machine) stateOf(t *sched.Thread) *tstate {
	if v, ok := t.MachSlot.Get(m); ok {
		return v.(*tstate)
	}
	if ts := m.threads[t]; ts != nil {
		t.MachSlot.Set(m, ts)
		return ts
	}
	return nil
}

// schedOf returns the scheduler that owns t's queue entry and tags: the
// home core's. Under PolicyGlobal every core holds the same scheduler.
func (m *Machine) schedOf(ts *tstate) sched.Scheduler { return m.cores[ts.core].sched }

// AddInterrupts registers an interrupt source and schedules its first
// arrival. The fire callback is reused for every arrival of this source;
// the order inside it (service first, then re-arm) matters, because it
// gives the interrupt-end event an earlier sequence number than the next
// arrival and same-instant events fire in scheduling order.
func (m *Machine) AddInterrupts(src InterruptSource) {
	is := &intrState{src: src}
	is.fire = func() {
		is.next = nil
		m.interrupt(is.service)
		m.armInterrupt(is)
	}
	m.intrs = append(m.intrs, is)
	m.armInterrupt(is)
}

// armInterrupt draws the source's next arrival and schedules it.
func (m *Machine) armInterrupt(is *intrState) {
	at, svc, ok := is.src.Next(m.eng.Now())
	if !ok {
		return
	}
	is.service = svc
	is.next = m.eng.At(at, is.fire)
}

// Run executes the simulation until the given time.
func (m *Machine) Run(until sim.Time) { m.eng.RunUntil(until) }

// progNext invokes a thread's program. Programs may re-enter the machine
// (a mutex Unlock inside Next calls Wake); the counter lets makeRunnable
// detect that and defer preemption/dispatch to the enclosing step.
func (m *Machine) progNext(ts *tstate, now sim.Time) Action {
	m.inCallback++
	a := ts.prog.Next(now)
	m.inCallback--
	return a
}

// kick dispatches every free core if the machine is between steps — the
// catch-up for wakeups that arrived during a program callback.
func (m *Machine) kick() {
	if m.inCallback != 0 {
		return
	}
	for _, c := range m.cores {
		m.maybeDispatch(c)
	}
}

// kickOthers gives every other free core a dispatch chance. On a
// uniprocessor it is a no-op; on a multicore machine it is what places
// wakeups deferred during a program callback onto sibling cores.
func (m *Machine) kickOthers(c *coreCtx) {
	for _, o := range m.cores {
		if o != c {
			m.maybeDispatch(o)
		}
	}
}

// advance consumes program actions until the thread computes, blocks, or
// exits. It is called at thread start and at every wakeup.
func (m *Machine) advance(ts *tstate) {
	now := m.eng.Now()
	const maxNoops = 1 << 20
	for i := 0; ; i++ {
		if i == maxNoops {
			panic(fmt.Sprintf("cpu: program of %v made no progress", ts.t))
		}
		a := m.progNext(ts, now)
		switch a.Kind {
		case ActionCompute:
			if a.Work <= 0 {
				continue
			}
			ts.burstLeft = a.Work
			m.makeRunnable(ts)
			return
		case ActionSleep:
			if a.Duration <= 0 {
				continue
			}
			m.block(ts, now+a.Duration)
			m.kick()
			return
		case ActionSleepUntil:
			if a.Until <= now {
				continue
			}
			m.block(ts, a.Until)
			m.kick()
			return
		case ActionBlock:
			ts.t.State = sched.StateBlocked
			m.notifyBlock(ts.t, now)
			m.kick()
			return
		case ActionExit:
			ts.t.State = sched.StateExited
			m.notifyExit(ts.t, now)
			m.forget(ts)
			m.kick()
			return
		default:
			panic(fmt.Sprintf("cpu: program of %v returned invalid action %v", ts.t, a.Kind))
		}
	}
}

func (m *Machine) block(ts *tstate, until sim.Time) {
	now := m.eng.Now()
	ts.t.State = sched.StateBlocked
	m.notifyBlock(ts.t, now)
	ts.wake = m.eng.At(until, ts.wakeFn)
}

// makeRunnable enqueues the thread on its home scheduler and resolves
// preemption/dispatch.
func (m *Machine) makeRunnable(ts *tstate) {
	now := m.eng.Now()
	ts.t.State = sched.StateRunnable
	ts.t.ReadyAt = now
	m.schedOf(ts).Enqueue(ts.t, now)
	m.notifyWake(ts.t, now)
	if m.inCallback > 0 {
		// Woken from inside another thread's program callback (e.g. a
		// mutex handover): the enclosing machine step charges and
		// dispatches right after; preempting here would act on a
		// half-finished segment. The woken thread competes at the next
		// decision, at most a quantum away — the same bound as cross-leaf
		// wakeups.
		return
	}
	m.placeWoken(ts)
}

// placeWoken decides which core reacts to a fresh wakeup. Cores are always
// scanned in index order, so placement is deterministic.
func (m *Machine) placeWoken(ts *tstate) {
	now := m.eng.Now()
	h := m.cores[ts.core]
	switch {
	case len(m.cores) == 1 || m.policy == PolicyPartitioned:
		// Uniprocessor protocol, per core: only the home core reacts.
		if h.seg != nil {
			if h.sched.Preempts(h.seg.ts.t, ts.t, now) {
				m.preempt(h)
				m.maybeDispatch(h)
			}
			return
		}
		m.maybeDispatch(h)
		// While an interrupt is in progress the interrupt-end handler
		// dispatches instead.
	case m.policy == PolicyGlobal:
		// Any idle core may serve the shared queue; failing that, the
		// first core whose running thread the scheduler wants preempted.
		for _, c := range m.cores {
			if c.seg == nil && !m.coreIntrBusy(c) {
				m.dispatch(c)
				return
			}
		}
		for _, c := range m.cores {
			if c.seg != nil && c.sched.Preempts(c.seg.ts.t, ts.t, now) {
				m.preempt(c)
				m.maybeDispatch(c)
				return
			}
		}
	default: // PolicySteal
		if h.seg == nil {
			m.maybeDispatch(h)
			return
		}
		// Preemption is meaningful only against a thread whose tags live
		// in the same (home) structure; a stolen guest is left alone.
		if h.seg.ts.core == ts.core && h.sched.Preempts(h.seg.ts.t, ts.t, now) {
			m.preempt(h)
			m.maybeDispatch(h)
			return
		}
		// The home core is busy; the first idle sibling steals the wakeup.
		for _, c := range m.cores {
			if c != h && c.seg == nil && !m.coreIntrBusy(c) {
				m.maybeDispatch(c)
				return
			}
		}
	}
}

// maybeDispatch dispatches if the core is actually free.
func (m *Machine) maybeDispatch(c *coreCtx) {
	if c.seg == nil && !m.coreIntrBusy(c) {
		m.dispatch(c)
	}
}

// dispatch selects the next thread for core c and starts a run segment.
// The core must be free of both segments and interrupts.
//
// Under the dequeue policies (global, steal) a picked thread is
// immediately charged zero work as not-runnable, which removes it from the
// runnable set while it occupies the core: the no-double-run guard — no
// other core can pick it until its segment is charged back in.
func (m *Machine) dispatch(c *coreCtx) {
	if c.seg != nil || m.coreIntrBusy(c) {
		panic("cpu: dispatch while busy")
	}
	now := m.eng.Now()
	t := c.sched.Pick(now)
	if t != nil && m.dequeue {
		c.sched.Charge(t, 0, now, false)
	}
	if t == nil && m.policy == PolicySteal {
		// Work stealing: scan victims in fixed order starting after this
		// core, so the choice is deterministic and load spreads.
		for i := 1; i < len(m.cores); i++ {
			v := m.cores[(c.id+i)%len(m.cores)]
			if t = v.sched.Pick(now); t != nil {
				v.sched.Charge(t, 0, now, false)
				break
			}
		}
	}
	if t == nil {
		if !c.idle {
			c.idle = true
			c.idleFrom = now
			m.notifyIdle(c, now)
		}
		return
	}
	if c.idle {
		c.idle = false
		c.stats.Idle += now - c.idleFrom
		m.stats.Idle += now - c.idleFrom
	}
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: scheduler picked unknown thread %v", t))
	}
	if ts.burstLeft <= 0 {
		panic(fmt.Sprintf("cpu: scheduler picked thread %v with no work", t))
	}
	grant := m.rate.WorkFor(m.schedOf(ts).Quantum(t, now))
	if grant < 1 {
		grant = 1
	}
	if grant > ts.burstLeft {
		grant = ts.burstLeft
	}
	var cost sim.Time
	if m.dispatchCost != nil {
		cost = m.dispatchCost(t)
	}
	cost += m.switchCost
	if len(m.cores) > 1 && ts.lastCore >= 0 && ts.lastCore != c.id {
		cost += m.migrationCost
		c.stats.Migrations++
		m.stats.Migrations++
	}
	if cost > 0 {
		c.stats.SchedCost += cost
		m.stats.SchedCost += cost
	}
	ts.lastCore = c.id
	if now > t.ReadyAt {
		t.Waited += now - t.ReadyAt
	}
	t.State = sched.StateRunning
	// Reuse the core's single segment buffer: dispatch requires the core
	// to be free (c.seg == nil), so at most one segment is ever in flight
	// per core and no reference to a previous segment outlives its charge.
	c.segbuf = segment{ts: ts, left: grant, resumeAt: now + cost}
	c.seg = &c.segbuf
	c.seg.end = m.eng.After(cost+m.rate.TimeFor(grant), c.segEndFn)
	c.seg.end.Core = c.id
	c.stats.Dispatches++
	m.stats.Dispatches++
	m.notifyDispatch(c, t, now)
}

// progress charges core c's running segment for the time elapsed since it
// last resumed and cancels its end event.
func (m *Machine) progress(c *coreCtx) {
	s := c.seg
	if s.paused {
		return
	}
	m.eng.Cancel(s.end)
	s.end = nil
	var w sched.Work
	// resumeAt can lie ahead of now while the dispatch cost is still
	// being paid; no thread work has happened yet in that case.
	if elapsed := m.eng.Now() - s.resumeAt; elapsed > 0 {
		w = m.rate.WorkFor(elapsed)
	}
	if w > s.left {
		w = s.left
	}
	s.left -= w
	s.used += w
	s.ts.burstLeft -= w
}

// segmentEnd fires when a running segment's granted work is complete:
// either the quantum expired or the burst finished.
func (m *Machine) segmentEnd(c *coreCtx) {
	s := c.seg
	now := m.eng.Now()
	s.end = nil
	// The event was scheduled for exactly the remaining work; rounding in
	// WorkFor must not lose the tail, so settle it explicitly.
	s.used += s.left
	s.ts.burstLeft -= s.left
	s.left = 0
	ts := s.ts
	if ts.burstLeft > 0 {
		// Quantum expiry: charge and compete again.
		ts.t.State = sched.StateRunnable
		ts.t.ReadyAt = now
		m.charge(c, true)
		m.dispatch(c)
		m.kickOthers(c)
		return
	}
	// Burst complete: the next program action decides what happens, and —
	// as in the paper — the scheduler learns the actual quantum length
	// only now.
	m.finishBurst(c, ts)
}

// finishBurst processes the program action following a completed burst.
func (m *Machine) finishBurst(c *coreCtx, ts *tstate) {
	now := m.eng.Now()
	const maxNoops = 1 << 20
	for i := 0; ; i++ {
		if i == maxNoops {
			panic(fmt.Sprintf("cpu: program of %v made no progress", ts.t))
		}
		a := m.progNext(ts, now)
		switch a.Kind {
		case ActionCompute:
			if a.Work <= 0 {
				continue
			}
			// Back-to-back burst: the thread never blocks.
			ts.burstLeft = a.Work
			ts.t.State = sched.StateRunnable
			ts.t.ReadyAt = now
			m.charge(c, true)
			m.maybeDispatch(c)
			m.kickOthers(c)
			return
		case ActionSleep, ActionSleepUntil:
			until := now + a.Duration
			if a.Kind == ActionSleepUntil {
				until = a.Until
			}
			if until <= now {
				continue
			}
			m.charge(c, false)
			m.block(ts, until)
			m.maybeDispatch(c)
			m.kickOthers(c)
			return
		case ActionBlock:
			m.charge(c, false)
			ts.t.State = sched.StateBlocked
			m.notifyBlock(ts.t, now)
			m.maybeDispatch(c)
			m.kickOthers(c)
			return
		case ActionExit:
			m.charge(c, false)
			ts.t.State = sched.StateExited
			m.notifyExit(ts.t, now)
			m.forget(ts)
			m.maybeDispatch(c)
			m.kickOthers(c)
			return
		default:
			panic(fmt.Sprintf("cpu: program of %v returned invalid action %v", ts.t, a.Kind))
		}
	}
}

// forget lets the thread's scheduler drop per-thread state for an exited
// thread, so tag maps do not grow without bound in long simulations.
func (m *Machine) forget(ts *tstate) {
	if f, ok := m.schedOf(ts).(interface{ Forget(*sched.Thread) }); ok {
		f.Forget(ts.t)
	}
}

// charge closes core c's current segment and accounts it to the thread's
// home scheduler (the one it was picked from: a stolen thread's tags live
// in its home structure, which is what keeps stealing fair).
func (m *Machine) charge(c *coreCtx, runnable bool) {
	s := c.seg
	if s == nil {
		panic("cpu: charge with no segment")
	}
	now := m.eng.Now()
	c.seg = nil
	t := s.ts.t
	t.Done += s.used
	t.Segments++
	c.stats.Work += s.used
	m.stats.Work += s.used
	sch := m.schedOf(s.ts)
	if m.dequeue {
		// The thread left the runnable set at dispatch; re-enter it so the
		// charge can stamp fresh tags (and drop it again if it blocked).
		sch.Enqueue(t, now)
	}
	sch.Charge(t, s.used, now, runnable)
	m.notifyCharge(c, t, s.used, now, runnable)
}

// preempt cuts core c's running segment short after a wakeup the scheduler
// wants to act on. If the wakeup landed at the exact instant the burst
// completed, the burst is finished instead — the thread must not stay
// runnable with no work.
func (m *Machine) preempt(c *coreCtx) {
	s := c.seg
	m.progress(c)
	c.stats.Preemptions++
	m.stats.Preemptions++
	if s.ts.burstLeft == 0 {
		m.finishBurst(c, s.ts)
		return
	}
	s.ts.t.State = sched.StateRunnable
	s.ts.t.ReadyAt = m.eng.Now()
	m.charge(c, true)
}

// Flush charges every in-flight run segment for the work completed so far,
// so that accounting is exact at a measurement horizon instead of
// quantized at whole quanta. The machine stays consistent and may keep
// running afterwards.
func (m *Machine) Flush() {
	for _, c := range m.cores {
		if c.seg == nil {
			continue
		}
		s := c.seg
		m.progress(c)
		if s.ts.burstLeft == 0 {
			m.finishBurst(c, s.ts)
			continue
		}
		s.ts.t.State = sched.StateRunnable
		s.ts.t.ReadyAt = m.eng.Now()
		m.charge(c, true)
		m.maybeDispatch(c)
	}
}

// Wake makes a blocked thread runnable immediately: the counterpart of
// cpu.Block for event-driven sleeps (lock releases, message arrival). A
// pending timed wakeup, if any, is cancelled. Waking a thread that is not
// blocked is a no-op and returns false.
func (m *Machine) Wake(t *sched.Thread) bool {
	ts := m.stateOf(t)
	if ts == nil {
		panic(fmt.Sprintf("cpu: Wake of unknown thread %v", t))
	}
	if t.State != sched.StateBlocked {
		return false
	}
	if ts.wake != nil {
		m.eng.Cancel(ts.wake)
		ts.wake = nil
	}
	t.WokeAt = m.eng.Now()
	m.advance(ts)
	return true
}

// interrupt services a hardware interrupt. Interrupts are delivered to
// core 0 only — the boot-CPU convention — so only core 0's running thread
// is paused and only its time is consumed. Overlapping interrupts queue
// back to back.
func (m *Machine) interrupt(service sim.Time) {
	now := m.eng.Now()
	c0 := m.cores[0]
	c0.stats.Interrupts++
	m.stats.Interrupts++
	c0.stats.Stolen += service
	m.stats.Stolen += service
	m.notifyInterrupt(now, service)
	if c0.idle {
		// The core is busy with the handler now, even with no thread ready.
		c0.idle = false
		c0.stats.Idle += now - c0.idleFrom
		m.stats.Idle += now - c0.idleFrom
	}
	if c0.seg != nil && !c0.seg.paused {
		m.progress(c0)
		c0.seg.paused = true
	}
	if m.intrUntil < now {
		m.intrUntil = now
	}
	m.intrUntil += service
	if m.intrEnd != nil {
		m.eng.Cancel(m.intrEnd)
	}
	m.intrEnd = m.eng.At(m.intrUntil, m.intrDoneFn)
}

func (m *Machine) interruptDone() {
	m.intrEnd = nil
	c0 := m.cores[0]
	if c0.seg != nil {
		if !c0.seg.paused {
			panic("cpu: running segment during interrupt")
		}
		s := c0.seg
		s.paused = false
		s.resumeAt = m.eng.Now()
		s.end = m.eng.After(m.rate.TimeFor(s.left), c0.segEndFn)
		s.end.Core = c0.id
		return
	}
	// Wakeups or preemption charges may have arrived during the
	// interrupt; dispatch decides whether anything can run (and records
	// the transition back to idle if not).
	m.dispatch(c0)
}

// coreIntrBusy reports whether c is consumed by interrupt handling, which
// can only ever be true of core 0.
func (m *Machine) coreIntrBusy(c *coreCtx) bool { return c.id == 0 && m.intrEnd != nil }

func (m *Machine) interruptBusy() bool { return m.intrEnd != nil }

// Latency returns now minus the thread's ReadyAt, the time a runnable
// thread has waited since it last became ready.
func (m *Machine) Latency(t *sched.Thread) sim.Time { return m.eng.Now() - t.ReadyAt }

func (m *Machine) notifyDispatch(c *coreCtx, t *sched.Thread, now sim.Time) {
	for _, le := range m.listeners {
		if le.smp != nil {
			le.smp.OnDispatchCore(c.id, t, now)
		} else {
			le.l.OnDispatch(t, now)
		}
	}
}
func (m *Machine) notifyCharge(c *coreCtx, t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	for _, le := range m.listeners {
		if le.smp != nil {
			le.smp.OnChargeCore(c.id, t, used, now, runnable)
		} else {
			le.l.OnCharge(t, used, now, runnable)
		}
	}
}
func (m *Machine) notifyWake(t *sched.Thread, now sim.Time) {
	for _, le := range m.listeners {
		le.l.OnWake(t, now)
	}
}
func (m *Machine) notifyBlock(t *sched.Thread, now sim.Time) {
	for _, le := range m.listeners {
		le.l.OnBlock(t, now)
	}
}
func (m *Machine) notifyExit(t *sched.Thread, now sim.Time) {
	for _, le := range m.listeners {
		le.l.OnExit(t, now)
	}
}
func (m *Machine) notifyInterrupt(now, service sim.Time) {
	for _, le := range m.listeners {
		le.l.OnInterrupt(now, service)
	}
}
func (m *Machine) notifyIdle(c *coreCtx, now sim.Time) {
	for _, le := range m.listeners {
		if le.smp != nil {
			le.smp.OnIdleCore(c.id, now)
		} else {
			le.l.OnIdle(now)
		}
	}
}
