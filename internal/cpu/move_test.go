package cpu_test

import (
	"math"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

// TestMoveThreadMidSimulation exercises hsfq_move end to end: a thread is
// moved from a low-weight leaf to a high-weight leaf while the machine
// runs (during one of its sleeps), and its throughput changes accordingly.
func TestMoveThreadMidSimulation(t *testing.T) {
	s := core.NewStructure()
	smallID, err := s.Mknod("small", core.RootID, 1, sched.NewSFQ(10*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	bigID, err := s.Mknod("big", core.RootID, 9, sched.NewSFQ(10*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, cpu.DefaultRate, s)

	// The migrant computes with a brief periodic sleep so a blocked
	// window exists to move it in.
	migrant := sched.NewThread(1, "migrant", 1)
	if err := s.Attach(migrant, smallID); err != nil {
		t.Fatal(err)
	}
	m.Add(migrant, workload.OnOff(cpu.DefaultRate.WorkFor(50*sim.Millisecond), 1, sim.Millisecond), 0)

	// A pinned hog keeps the big leaf busy so shares are visible.
	hog := sched.NewThread(2, "hog", 1)
	if err := s.Attach(hog, bigID); err != nil {
		t.Fatal(err)
	}
	m.Add(hog, workload.CPUBound(1_000_000), 0)

	// Phase 1: migrant in the 10% leaf.
	m.Run(10 * sim.Second)
	m.Flush()
	phase1 := migrant.Done

	// Move during a blocked window: poll each millisecond until the
	// migrant is asleep, then hsfq_move it.
	moved := false
	var tryMove func()
	tryMove = func() {
		if migrant.State == sched.StateBlocked {
			if err := s.Move(migrant, bigID); err != nil {
				t.Errorf("move: %v", err)
			}
			moved = true
			return
		}
		eng.After(sim.Millisecond, tryMove)
	}
	eng.After(0, tryMove)
	m.Run(20 * sim.Second)
	m.Flush()
	if !moved {
		t.Fatal("never observed a blocked window to move in")
	}
	phase2 := migrant.Done - phase1

	// Phase 1: the migrant alone owns the small leaf's 10%. Phase 2: the
	// small leaf is now empty, so the big leaf takes the whole CPU and
	// the migrant splits it evenly with the hog (minus its 2% sleep
	// duty): ~49%.
	share1 := float64(phase1) / float64(cpu.DefaultRate.WorkFor(10*sim.Second))
	share2 := float64(phase2) / float64(cpu.DefaultRate.WorkFor(10*sim.Second))
	if math.Abs(share1-0.10) > 0.02 {
		t.Errorf("pre-move share %.3f, want ~0.10", share1)
	}
	if math.Abs(share2-0.49) > 0.03 {
		t.Errorf("post-move share %.3f, want ~0.49", share2)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
