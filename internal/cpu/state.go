package cpu

import (
	"fmt"
	"slices"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Stater is implemented by programs and interrupt sources whose mutable
// state can be captured into a checkpoint and restored into a freshly
// rebuilt simulation. Static configuration (action lists, periods, traces)
// is NOT serialized — the rebuild recreates it deterministically — only
// the state that advances as the simulation runs (positions, counters,
// RNG streams).
type Stater interface {
	SaveState(e *sim.Enc)
	LoadState(d *sim.Dec) error
}

// saveEvent appends a pending-event descriptor: presence, absolute fire
// time, and the original scheduling sequence number. The sequence number
// is essential: events at the same instant fire in seq order, so restore
// re-arms pending events sorted by their saved seqs, preserving every
// same-instant ordering of the original run.
func saveEvent(e *sim.Enc, ev *sim.Event) {
	if ev == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Time(ev.At)
	e.U64(ev.Seq())
}

// rearm is one pending event to be rescheduled after decode. set stores
// the fresh handle wherever the machine tracks it.
type rearm struct {
	seq uint64
	at  sim.Time
	fn  func()
	set func(*sim.Event)
}

// loadEvent reads a descriptor written by saveEvent.
func loadEvent(d *sim.Dec) (ok bool, at sim.Time, seq uint64) {
	if !d.Bool() {
		return false, 0, 0
	}
	return d.Err() == nil, d.Time(), d.U64()
}

// SaveState serializes the machine's entire mutable state: counters,
// per-thread accounting and program positions, the in-flight run segment,
// interrupt bookkeeping, and a descriptor for every pending event the
// machine owns (thread starts, timed wakeups, segment end, interrupt end,
// interrupt arrivals). Threads are emitted sorted by ID so the encoding is
// canonical — the same state always produces the same bytes. It must be
// called at an event boundary (never from inside a program callback).
func (m *Machine) SaveState(e *sim.Enc) error {
	if m.inCallback != 0 {
		return fmt.Errorf("cpu: SaveState from inside a program callback")
	}
	e.I64(m.stats.Dispatches)
	e.I64(m.stats.Preemptions)
	e.I64(m.stats.Interrupts)
	e.Time(m.stats.Stolen)
	e.Time(m.stats.SchedCost)
	e.Time(m.stats.Idle)
	e.I64(int64(m.stats.Work))
	e.Int(m.nextID)
	e.Bool(m.idle)
	e.Time(m.idleFrom)
	e.Time(m.intrUntil)

	m.saveScratch = m.saveScratch[:0]
	for _, ts := range m.threads {
		m.saveScratch = append(m.saveScratch, ts)
	}
	slices.SortFunc(m.saveScratch, func(a, b *tstate) int { return a.t.ID - b.t.ID })
	e.Int(len(m.saveScratch))
	for _, ts := range m.saveScratch {
		t := ts.t
		e.Int(t.ID)
		e.F64(t.Weight)
		e.Int(t.Priority)
		e.Time(t.Period)
		e.Time(t.RelDeadline)
		e.Int(int(t.State))
		e.I64(int64(t.Done))
		e.Int(t.Segments)
		e.Time(t.ReadyAt)
		e.Time(t.WokeAt)
		e.Time(t.Waited)
		e.I64(int64(ts.burstLeft))
		saveEvent(e, ts.start)
		saveEvent(e, ts.wake)
		p, ok := ts.prog.(Stater)
		if !ok {
			return fmt.Errorf("cpu: program %T of thread %v does not support checkpointing", ts.prog, t)
		}
		p.SaveState(e)
	}

	if s := m.seg; s != nil {
		e.Bool(true)
		e.Int(s.ts.t.ID)
		e.I64(int64(s.left))
		e.I64(int64(s.used))
		e.Time(s.resumeAt)
		e.Bool(s.paused)
		saveEvent(e, s.end)
	} else {
		e.Bool(false)
	}
	saveEvent(e, m.intrEnd)

	e.Int(len(m.intrs))
	for _, is := range m.intrs {
		saveEvent(e, is.next)
		e.Time(is.service)
		s, ok := is.src.(Stater)
		if !ok {
			return fmt.Errorf("cpu: interrupt source %T does not support checkpointing", is.src)
		}
		s.SaveState(e)
	}
	return nil
}

// LoadState restores state saved by SaveState into a freshly built
// machine: same thread set (resolved by ID), same interrupt sources in the
// same registration order, and an engine already Reset to the checkpoint's
// clock and sequence counter (so the build's initial events are gone).
// Pending events are re-armed under their original sequence numbers
// (Engine.AtSeq), so the restored engine is indistinguishable from the
// saved one: same-instant orderings are preserved exactly and
// save→restore→save is a byte-level fixed point — the properties the
// resume-equivalence and canonicality tests pin down.
func (m *Machine) LoadState(d *sim.Dec, resolve func(id int) *sched.Thread) error {
	if m.eng.Pending() != 0 {
		return fmt.Errorf("cpu: LoadState with %d events still pending; Reset the engine first", m.eng.Pending())
	}
	now := m.eng.Now()
	m.stats.Dispatches = d.I64()
	m.stats.Preemptions = d.I64()
	m.stats.Interrupts = d.I64()
	m.stats.Stolen = d.Time()
	m.stats.SchedCost = d.Time()
	m.stats.Idle = d.Time()
	m.stats.Work = sched.Work(d.I64())
	m.nextID = d.Int()
	m.idle = d.Bool()
	m.idleFrom = d.Time()
	m.intrUntil = d.Time()

	// The engine reset discarded the build's pending events; drop the now
	// dangling handles before decoding re-arms.
	for _, ts := range m.threads {
		ts.start, ts.wake = nil, nil
	}
	m.seg, m.intrEnd = nil, nil
	for _, is := range m.intrs {
		is.next = nil
	}

	var rearms []rearm
	n := d.Count(1)
	if d.Err() == nil && n != len(m.threads) {
		return fmt.Errorf("cpu: checkpoint has %d threads, machine has %d", n, len(m.threads))
	}
	prevID := -1 << 62
	for i := 0; i < n; i++ {
		id := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if id <= prevID {
			return fmt.Errorf("cpu: thread IDs not strictly increasing at %d", id)
		}
		prevID = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("cpu: checkpoint references unknown thread %d", id)
		}
		ts := m.stateOf(t)
		if ts == nil {
			return fmt.Errorf("cpu: thread %d not registered with this machine", id)
		}
		t.Weight = d.F64()
		t.Priority = d.Int()
		t.Period = d.Time()
		t.RelDeadline = d.Time()
		st := sched.ThreadState(d.Int())
		if d.Err() == nil && (st < sched.StateNew || st > sched.StateExited) {
			return fmt.Errorf("cpu: thread %d with invalid state %d", id, st)
		}
		t.State = st
		t.Done = sched.Work(d.I64())
		t.Segments = d.Int()
		t.ReadyAt = d.Time()
		t.WokeAt = d.Time()
		t.Waited = d.Time()
		ts.burstLeft = sched.Work(d.I64())
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, ts.startFn, func(ev *sim.Event) { ts.start = ev }})
		}
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, ts.wakeFn, func(ev *sim.Event) { ts.wake = ev }})
		}
		p, ok := ts.prog.(Stater)
		if !ok {
			return fmt.Errorf("cpu: program %T of thread %v does not support checkpointing", ts.prog, t)
		}
		if err := p.LoadState(d); err != nil {
			return err
		}
		if d.Err() != nil {
			return d.Err()
		}
	}

	if d.Bool() {
		id := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("cpu: segment references unknown thread %d", id)
		}
		ts := m.stateOf(t)
		if ts == nil {
			return fmt.Errorf("cpu: segment thread %d not registered", id)
		}
		m.segbuf = segment{
			ts:       ts,
			left:     sched.Work(d.I64()),
			used:     sched.Work(d.I64()),
			resumeAt: d.Time(),
			paused:   d.Bool(),
		}
		m.seg = &m.segbuf
		hasEnd, at, seq := loadEvent(d)
		if hasEnd {
			rearms = append(rearms, rearm{seq, at, m.segEndFn, func(ev *sim.Event) { m.segbuf.end = ev }})
		}
		if d.Err() == nil {
			if m.segbuf.paused == hasEnd {
				return fmt.Errorf("cpu: segment paused=%v with end-event=%v", m.segbuf.paused, hasEnd)
			}
			if t.State != sched.StateRunning {
				return fmt.Errorf("cpu: segment thread %d in state %v, want running", id, t.State)
			}
		}
	}

	hadIntrEnd := false
	if ok, at, seq := loadEvent(d); ok {
		hadIntrEnd = true
		rearms = append(rearms, rearm{seq, at, m.intrDoneFn, func(ev *sim.Event) { m.intrEnd = ev }})
	}
	if d.Err() == nil && m.seg != nil && m.segbuf.paused && !hadIntrEnd {
		return fmt.Errorf("cpu: paused segment with no interrupt in flight")
	}

	cnt := d.Count(1)
	if d.Err() == nil && cnt != len(m.intrs) {
		return fmt.Errorf("cpu: checkpoint has %d interrupt sources, machine has %d", cnt, len(m.intrs))
	}
	for i := 0; i < cnt; i++ {
		is := m.intrs[i]
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, is.fire, func(ev *sim.Event) { is.next = ev }})
		}
		is.service = d.Time()
		s, ok := is.src.(Stater)
		if !ok {
			return fmt.Errorf("cpu: interrupt source %T does not support checkpointing", is.src)
		}
		if err := s.LoadState(d); err != nil {
			return err
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	if d.Err() != nil {
		return d.Err()
	}

	for _, r := range rearms {
		if r.at < now {
			return fmt.Errorf("cpu: pending event at %v lies before checkpoint time %v", r.at, now)
		}
		if r.seq >= m.eng.Seq() {
			return fmt.Errorf("cpu: pending event seq %d not below engine seq %d", r.seq, m.eng.Seq())
		}
	}
	slices.SortStableFunc(rearms, func(a, b rearm) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	for i, r := range rearms {
		if i > 0 && r.seq == rearms[i-1].seq {
			return fmt.Errorf("cpu: two pending events share seq %d", r.seq)
		}
		r.set(m.eng.AtSeq(r.at, r.seq, r.fn))
	}
	return nil
}
