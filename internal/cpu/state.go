package cpu

import (
	"fmt"
	"slices"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Stater is implemented by programs and interrupt sources whose mutable
// state can be captured into a checkpoint and restored into a freshly
// rebuilt simulation. Static configuration (action lists, periods, traces)
// is NOT serialized — the rebuild recreates it deterministically — only
// the state that advances as the simulation runs (positions, counters,
// RNG streams).
type Stater interface {
	SaveState(e *sim.Enc)
	LoadState(d *sim.Dec) error
}

// saveEvent appends a pending-event descriptor: presence, absolute fire
// time, and the original scheduling sequence number. The sequence number
// is essential: events at the same instant fire in seq order, so restore
// re-arms pending events sorted by their saved seqs, preserving every
// same-instant ordering of the original run.
func saveEvent(e *sim.Enc, ev *sim.Event) {
	if ev == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Time(ev.At)
	e.U64(ev.Seq())
}

// rearm is one pending event to be rescheduled after decode. set stores
// the fresh handle wherever the machine tracks it.
type rearm struct {
	seq  uint64
	at   sim.Time
	core int // observability tag re-applied to the fresh handle
	fn   func()
	set  func(*sim.Event)
}

// loadEvent reads a descriptor written by saveEvent.
func loadEvent(d *sim.Dec) (ok bool, at sim.Time, seq uint64) {
	if !d.Bool() {
		return false, 0, 0
	}
	return d.Err() == nil, d.Time(), d.U64()
}

// saveSegment appends one core's in-flight run segment (or its absence).
func saveSegment(e *sim.Enc, s *segment) {
	if s == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(s.ts.t.ID)
	e.I64(int64(s.left))
	e.I64(int64(s.used))
	e.Time(s.resumeAt)
	e.Bool(s.paused)
	saveEvent(e, s.end)
}

// saveStats appends one Stats block in field order. The legacy (core 0 /
// aggregate) slot predates the Migrations counter and omits it so a
// single-core machine's encoding is byte-identical to the uniprocessor
// format; the multicore extension records all fields.
func saveStats(e *sim.Enc, s *Stats, withMigrations bool) {
	e.I64(s.Dispatches)
	e.I64(s.Preemptions)
	e.I64(s.Interrupts)
	e.Time(s.Stolen)
	e.Time(s.SchedCost)
	e.Time(s.Idle)
	e.I64(int64(s.Work))
	if withMigrations {
		e.I64(s.Migrations)
	}
}

func loadStats(d *sim.Dec, s *Stats, withMigrations bool) {
	s.Dispatches = d.I64()
	s.Preemptions = d.I64()
	s.Interrupts = d.I64()
	s.Stolen = d.Time()
	s.SchedCost = d.Time()
	s.Idle = d.Time()
	s.Work = sched.Work(d.I64())
	if withMigrations {
		s.Migrations = d.I64()
	}
}

// SaveState serializes the machine's entire mutable state: counters,
// per-thread accounting and program positions, the in-flight run segments,
// interrupt bookkeeping, and a descriptor for every pending event the
// machine owns (thread starts, timed wakeups, segment ends, interrupt end,
// interrupt arrivals). Threads are emitted sorted by ID so the encoding is
// canonical — the same state always produces the same bytes. It must be
// called at an event boundary (never from inside a program callback).
//
// The layout is the uniprocessor format followed, only when the machine
// has more than one core, by a multicore extension (per-core counters and
// segments, per-thread last-run cores). A single-core machine therefore
// produces byte-identical checkpoints to the pre-SMP encoding, and the
// decoder knows whether the extension is present from the core count of
// the rebuilt machine.
func (m *Machine) SaveState(e *sim.Enc) error {
	if m.inCallback != 0 {
		return fmt.Errorf("cpu: SaveState from inside a program callback")
	}
	c0 := m.cores[0]
	saveStats(e, &m.stats, false)
	e.Int(m.nextID)
	e.Bool(c0.idle)
	e.Time(c0.idleFrom)
	e.Time(m.intrUntil)

	m.saveScratch = m.saveScratch[:0]
	for _, ts := range m.threads {
		m.saveScratch = append(m.saveScratch, ts)
	}
	slices.SortFunc(m.saveScratch, func(a, b *tstate) int { return a.t.ID - b.t.ID })
	e.Int(len(m.saveScratch))
	for _, ts := range m.saveScratch {
		t := ts.t
		e.Int(t.ID)
		e.F64(t.Weight)
		e.Int(t.Priority)
		e.Time(t.Period)
		e.Time(t.RelDeadline)
		e.Int(int(t.State))
		e.I64(int64(t.Done))
		e.Int(t.Segments)
		e.Time(t.ReadyAt)
		e.Time(t.WokeAt)
		e.Time(t.Waited)
		e.I64(int64(ts.burstLeft))
		saveEvent(e, ts.start)
		saveEvent(e, ts.wake)
		p, ok := ts.prog.(Stater)
		if !ok {
			return fmt.Errorf("cpu: program %T of thread %v does not support checkpointing", ts.prog, t)
		}
		p.SaveState(e)
	}

	saveSegment(e, c0.seg)
	saveEvent(e, m.intrEnd)

	e.Int(len(m.intrs))
	for _, is := range m.intrs {
		saveEvent(e, is.next)
		e.Time(is.service)
		s, ok := is.src.(Stater)
		if !ok {
			return fmt.Errorf("cpu: interrupt source %T does not support checkpointing", is.src)
		}
		s.SaveState(e)
	}

	if len(m.cores) > 1 {
		for _, c := range m.cores {
			saveStats(e, &c.stats, true)
			e.Bool(c.idle)
			e.Time(c.idleFrom)
		}
		e.I64(m.stats.Migrations)
		for _, c := range m.cores[1:] {
			saveSegment(e, c.seg)
		}
		for _, ts := range m.saveScratch {
			e.Int(ts.lastCore)
		}
	}
	return nil
}

// loadSegment decodes one core's segment slot written by saveSegment and
// queues the end-event rearm. Core 0 is the only core interrupts can
// pause, so a paused segment on any other core is rejected.
func (m *Machine) loadSegment(d *sim.Dec, c *coreCtx, resolve func(id int) *sched.Thread, seen map[int]bool, rearms *[]rearm) error {
	if !d.Bool() {
		return d.Err()
	}
	id := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	t := resolve(id)
	if t == nil {
		return fmt.Errorf("cpu: segment references unknown thread %d", id)
	}
	ts := m.stateOf(t)
	if ts == nil {
		return fmt.Errorf("cpu: segment thread %d not registered", id)
	}
	if seen[id] {
		return fmt.Errorf("cpu: thread %d running on two cores", id)
	}
	seen[id] = true
	c.segbuf = segment{
		ts:       ts,
		left:     sched.Work(d.I64()),
		used:     sched.Work(d.I64()),
		resumeAt: d.Time(),
		paused:   d.Bool(),
	}
	c.seg = &c.segbuf
	hasEnd, at, seq := loadEvent(d)
	if hasEnd {
		core := c
		*rearms = append(*rearms, rearm{seq, at, c.id, c.segEndFn, func(ev *sim.Event) { core.segbuf.end = ev }})
	}
	if d.Err() == nil {
		if c.segbuf.paused == hasEnd {
			return fmt.Errorf("cpu: segment paused=%v with end-event=%v", c.segbuf.paused, hasEnd)
		}
		if c.segbuf.paused && c.id != 0 {
			return fmt.Errorf("cpu: paused segment on core %d", c.id)
		}
		if t.State != sched.StateRunning {
			return fmt.Errorf("cpu: segment thread %d in state %v, want running", id, t.State)
		}
	}
	return d.Err()
}

// LoadState restores state saved by SaveState into a freshly built
// machine: same thread set (resolved by ID), same core count and policy,
// same interrupt sources in the same registration order, and an engine
// already Reset to the checkpoint's clock and sequence counter (so the
// build's initial events are gone). Pending events are re-armed under
// their original sequence numbers (Engine.AtSeq), so the restored engine
// is indistinguishable from the saved one: same-instant orderings are
// preserved exactly and save→restore→save is a byte-level fixed point —
// the properties the resume-equivalence and canonicality tests pin down.
func (m *Machine) LoadState(d *sim.Dec, resolve func(id int) *sched.Thread) error {
	if m.eng.Pending() != 0 {
		return fmt.Errorf("cpu: LoadState with %d events still pending; Reset the engine first", m.eng.Pending())
	}
	now := m.eng.Now()
	c0 := m.cores[0]
	loadStats(d, &m.stats, false)
	m.nextID = d.Int()
	c0.idle = d.Bool()
	c0.idleFrom = d.Time()
	m.intrUntil = d.Time()

	// The engine reset discarded the build's pending events; drop the now
	// dangling handles before decoding re-arms.
	for _, ts := range m.threads {
		ts.start, ts.wake = nil, nil
	}
	for _, c := range m.cores {
		c.seg = nil
	}
	m.intrEnd = nil
	for _, is := range m.intrs {
		is.next = nil
	}
	if len(m.cores) == 1 {
		// Single core: the aggregate and the core's counters coincide.
		c0.stats = m.stats
	}

	var rearms []rearm
	m.saveScratch = m.saveScratch[:0]
	n := d.Count(1)
	if d.Err() == nil && n != len(m.threads) {
		return fmt.Errorf("cpu: checkpoint has %d threads, machine has %d", n, len(m.threads))
	}
	prevID := -1 << 62
	for i := 0; i < n; i++ {
		id := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if id <= prevID {
			return fmt.Errorf("cpu: thread IDs not strictly increasing at %d", id)
		}
		prevID = id
		t := resolve(id)
		if t == nil {
			return fmt.Errorf("cpu: checkpoint references unknown thread %d", id)
		}
		ts := m.stateOf(t)
		if ts == nil {
			return fmt.Errorf("cpu: thread %d not registered with this machine", id)
		}
		m.saveScratch = append(m.saveScratch, ts)
		t.Weight = d.F64()
		t.Priority = d.Int()
		t.Period = d.Time()
		t.RelDeadline = d.Time()
		st := sched.ThreadState(d.Int())
		if d.Err() == nil && (st < sched.StateNew || st > sched.StateExited) {
			return fmt.Errorf("cpu: thread %d with invalid state %d", id, st)
		}
		t.State = st
		t.Done = sched.Work(d.I64())
		t.Segments = d.Int()
		t.ReadyAt = d.Time()
		t.WokeAt = d.Time()
		t.Waited = d.Time()
		ts.burstLeft = sched.Work(d.I64())
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, 0, ts.startFn, func(ev *sim.Event) { ts.start = ev }})
		}
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, 0, ts.wakeFn, func(ev *sim.Event) { ts.wake = ev }})
		}
		p, ok := ts.prog.(Stater)
		if !ok {
			return fmt.Errorf("cpu: program %T of thread %v does not support checkpointing", ts.prog, t)
		}
		if err := p.LoadState(d); err != nil {
			return err
		}
		if d.Err() != nil {
			return d.Err()
		}
	}

	seen := map[int]bool{}
	if err := m.loadSegment(d, c0, resolve, seen, &rearms); err != nil {
		return err
	}

	hadIntrEnd := false
	if ok, at, seq := loadEvent(d); ok {
		hadIntrEnd = true
		rearms = append(rearms, rearm{seq, at, 0, m.intrDoneFn, func(ev *sim.Event) { m.intrEnd = ev }})
	}
	if d.Err() == nil && c0.seg != nil && c0.segbuf.paused && !hadIntrEnd {
		return fmt.Errorf("cpu: paused segment with no interrupt in flight")
	}

	cnt := d.Count(1)
	if d.Err() == nil && cnt != len(m.intrs) {
		return fmt.Errorf("cpu: checkpoint has %d interrupt sources, machine has %d", cnt, len(m.intrs))
	}
	for i := 0; i < cnt; i++ {
		is := m.intrs[i]
		if ok, at, seq := loadEvent(d); ok {
			rearms = append(rearms, rearm{seq, at, 0, is.fire, func(ev *sim.Event) { is.next = ev }})
		}
		is.service = d.Time()
		s, ok := is.src.(Stater)
		if !ok {
			return fmt.Errorf("cpu: interrupt source %T does not support checkpointing", is.src)
		}
		if err := s.LoadState(d); err != nil {
			return err
		}
		if d.Err() != nil {
			return d.Err()
		}
	}

	if len(m.cores) > 1 {
		for _, c := range m.cores {
			loadStats(d, &c.stats, true)
			c.idle = d.Bool()
			c.idleFrom = d.Time()
		}
		m.stats.Migrations = d.I64()
		for _, c := range m.cores[1:] {
			if err := m.loadSegment(d, c, resolve, seen, &rearms); err != nil {
				return err
			}
		}
		for _, ts := range m.saveScratch {
			lc := d.Int()
			if d.Err() == nil && (lc < -1 || lc >= len(m.cores)) {
				return fmt.Errorf("cpu: thread %d last ran on core %d of a %d-core machine", ts.t.ID, lc, len(m.cores))
			}
			ts.lastCore = lc
		}
	}
	if d.Err() != nil {
		return d.Err()
	}

	for _, r := range rearms {
		if r.at < now {
			return fmt.Errorf("cpu: pending event at %v lies before checkpoint time %v", r.at, now)
		}
		if r.seq >= m.eng.Seq() {
			return fmt.Errorf("cpu: pending event seq %d not below engine seq %d", r.seq, m.eng.Seq())
		}
	}
	slices.SortStableFunc(rearms, func(a, b rearm) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	for i, r := range rearms {
		if i > 0 && r.seq == rearms[i-1].seq {
			return fmt.Errorf("cpu: two pending events share seq %d", r.seq)
		}
		ev := m.eng.AtSeq(r.at, r.seq, r.fn)
		ev.Core = r.core
		r.set(ev)
	}
	return nil
}
