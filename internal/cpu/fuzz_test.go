package cpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"hsfq/internal/core"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// randomProgram emits a deterministic pseudo-random mix of computes,
// sleeps and occasional exits, driven by its own stream.
func randomProgram(rng *sim.Rand, exitAfter int) Program {
	steps := 0
	return ProgramFunc(func(now sim.Time) Action {
		steps++
		if exitAfter > 0 && steps > exitAfter {
			return Exit()
		}
		switch rng.Intn(10) {
		case 0, 1:
			return Sleep(sim.Time(rng.Intn(20)+1) * sim.Millisecond)
		case 2:
			return Sleep(sim.Time(rng.Intn(200)+1) * sim.Microsecond)
		default:
			return Compute(sched.Work(rng.Intn(5_000_000) + 1))
		}
	})
}

// TestMachineFuzz drives random workloads through every scheduler with
// random interrupt load and checks global invariants: the simulation
// terminates, thread states are consistent, work is conserved against
// wall time, and re-running with the same seed is bit-identical.
func TestMachineFuzz(t *testing.T) {
	mkSched := []func(rng *sim.Rand) sched.Scheduler{
		func(*sim.Rand) sched.Scheduler { return sched.NewSFQ(5 * sim.Millisecond) },
		func(*sim.Rand) sched.Scheduler { return sched.NewRoundRobin(3 * sim.Millisecond) },
		func(*sim.Rand) sched.Scheduler { return sched.NewEDF(4 * sim.Millisecond) },
		func(*sim.Rand) sched.Scheduler { return sched.NewStride(5 * sim.Millisecond) },
		func(r *sim.Rand) sched.Scheduler { return sched.NewLottery(5*sim.Millisecond, r.Fork()) },
		func(*sim.Rand) sched.Scheduler { return sched.NewSVR4(nil, int64(DefaultRate), 25*sim.Millisecond) },
		func(*sim.Rand) sched.Scheduler { return sched.NewEEVDF(5*sim.Millisecond, 500_000) },
	}

	run := func(seed uint64, pick int, nThreads int) (sched.Work, []sched.ThreadState) {
		rng := sim.NewRand(seed)
		s := mkSched[pick%len(mkSched)](rng)
		m := NewMachine(sim.NewEngine(), DefaultRate, s)
		m.AddInterrupts(&PoissonInterrupts{
			RatePerSec:  50,
			ServiceMean: 200 * sim.Microsecond,
			ServiceCap:  2 * sim.Millisecond,
			Rand:        rng.Fork(),
		})
		var threads []*sched.Thread
		for i := 0; i < nThreads; i++ {
			th := sched.NewThread(i+1, "t", float64(rng.Intn(8)+1))
			th.Period = sim.Time(rng.Intn(200)+10) * sim.Millisecond
			exitAfter := 0
			if rng.Intn(3) == 0 {
				exitAfter = rng.Intn(200) + 1
			}
			m.Add(th, randomProgram(rng.Fork(), exitAfter), sim.Time(rng.Intn(50))*sim.Millisecond)
			threads = append(threads, th)
		}
		m.Run(3 * sim.Second)
		m.Flush()

		st := m.Stats()
		elapsed := DefaultRate.TimeFor(st.Work) + st.Stolen + st.Idle
		if elapsed > 3*sim.Second+5*sim.Millisecond {
			t.Fatalf("seed %d sched %d: over-accounted %v", seed, pick, elapsed)
		}
		var sum sched.Work
		states := make([]sched.ThreadState, len(threads))
		for i, th := range threads {
			sum += th.Done
			states[i] = th.State
			switch th.State {
			case sched.StateRunnable, sched.StateBlocked, sched.StateExited, sched.StateRunning:
			default:
				t.Fatalf("seed %d: thread %v in state %v", seed, th, th.State)
			}
		}
		if sum != st.Work {
			t.Fatalf("seed %d sched %d: thread work %d != machine work %d", seed, pick, sum, st.Work)
		}
		return st.Work, states
	}

	f := func(seed uint64, pick uint8, n uint8) bool {
		nThreads := int(n)%6 + 1
		w1, s1 := run(seed, int(pick), nThreads)
		w2, s2 := run(seed, int(pick), nThreads)
		if w1 != w2 {
			t.Logf("seed %d: nondeterministic work %d vs %d", seed, w1, w2)
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Logf("seed %d: nondeterministic state", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyFuzz runs random workloads under a random hierarchy and
// checks the structure's invariants at the end plus work conservation.
func TestHierarchyFuzz(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := sim.NewRand(seed)
		// Build via the experiments' canonical shapes indirectly: a
		// two-level tree with 2-4 leaves of mixed schedulers.
		leaves := int(n)%3 + 2
		structure, ids := buildRandomTree(rng, leaves)
		m := NewMachine(sim.NewEngine(), DefaultRate, structure)
		nThreads := leaves * 2
		var threads []*sched.Thread
		for i := 0; i < nThreads; i++ {
			th := sched.NewThread(i+1, "t", float64(rng.Intn(5)+1))
			th.Period = sim.Time(rng.Intn(100)+20) * sim.Millisecond
			if err := structure.Attach(th, ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
			m.Add(th, randomProgram(rng.Fork(), 0), 0)
			threads = append(threads, th)
		}
		m.Run(2 * sim.Second)
		m.Flush()
		if err := structure.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		var sum sched.Work
		for _, th := range threads {
			sum += th.Done
		}
		return sum == m.Stats().Work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// buildRandomTree builds root -> group(0..1 deep) -> leaves with mixed
// leaf schedulers and random weights.
func buildRandomTree(rng *sim.Rand, leaves int) (*core.Structure, []core.NodeID) {
	s := core.NewStructure()
	parent := core.RootID
	if rng.Intn(2) == 0 {
		id, err := s.Mknod("group", core.RootID, float64(rng.Intn(4)+1), nil)
		if err != nil {
			panic(err)
		}
		parent = id
	}
	mk := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewSFQ(5 * sim.Millisecond) },
		func() sched.Scheduler { return sched.NewRoundRobin(5 * sim.Millisecond) },
		func() sched.Scheduler { return sched.NewEDF(5 * sim.Millisecond) },
		func() sched.Scheduler { return sched.NewSVR4(nil, int64(DefaultRate), 25*sim.Millisecond) },
	}
	var ids []core.NodeID
	for i := 0; i < leaves; i++ {
		p := parent
		if i%2 == 0 {
			p = core.RootID
		}
		id, err := s.Mknod(fmt.Sprintf("leaf%d", i), p, float64(rng.Intn(6)+1), mk[rng.Intn(len(mk))]())
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	return s, ids
}
