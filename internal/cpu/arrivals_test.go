package cpu_test

import (
	"math"
	"testing"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

// TestPoissonArrivalsMM1 runs an open M/M/1 workload through the machine
// under FIFO and compares the mean response time with queueing theory:
// E[T] = 1/(mu - lambda). With lambda = 5/s and mu = 10/s, E[T] = 200 ms.
func TestPoissonArrivalsMM1(t *testing.T) {
	const (
		lambda  = 5.0
		mu      = 10.0
		horizon = 400 * sim.Second
	)
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, cpu.DefaultRate, sched.NewFIFO())
	rng := sim.NewRand(11)

	type job struct {
		arrive sim.Time
		done   sim.Time
	}
	var jobs []*job
	workload.Arrivals(eng, rng.Fork(), lambda, horizon-5*sim.Second, func(i int, at sim.Time) {
		j := &job{arrive: at}
		jobs = append(jobs, j)
		service := sim.Time(rng.ExpFloat64() / mu * float64(sim.Second))
		if service < sim.Microsecond {
			service = sim.Microsecond
		}
		th := sched.NewThread(100+i, "job", 1)
		issued := false
		m.Add(th, cpu.ProgramFunc(func(now sim.Time) cpu.Action {
			if issued {
				j.done = now
				return cpu.Exit()
			}
			issued = true
			return cpu.Compute(cpu.DefaultRate.WorkFor(service))
		}), at)
	})
	m.Run(horizon)

	var sum float64
	n := 0
	for _, j := range jobs {
		if j.done > 0 {
			sum += (j.done - j.arrive).Seconds()
			n++
		}
	}
	if n < 1500 {
		t.Fatalf("only %d jobs completed", n)
	}
	mean := sum / float64(n)
	want := 1.0 / (mu - lambda)
	if math.Abs(mean-want) > 0.3*want {
		t.Errorf("mean response %.3fs, M/M/1 predicts %.3fs", mean, want)
	}
}
