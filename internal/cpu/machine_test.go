package cpu

import (
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// testRate makes 1 instruction take exactly 1 ms, so work numbers match
// the paper's millisecond examples.
const testRate Rate = 1000

func newTestMachine(s sched.Scheduler) *Machine {
	return NewMachine(sim.NewEngine(), testRate, s)
}

func TestRateConversions(t *testing.T) {
	cases := []struct {
		rate Rate
		work sched.Work
	}{
		{DefaultRate, 1},
		{DefaultRate, 12345},
		{DefaultRate, 100_000_000},
		{MIPS(333), 999_999_937},
		{testRate, 10},
	}
	for _, c := range cases {
		d := c.rate.TimeFor(c.work)
		back := c.rate.WorkFor(d)
		if back < c.work {
			t.Errorf("rate %d: TimeFor(%d)=%v but WorkFor back gives %d", c.rate, c.work, d, back)
		}
		// Ceiling rounding may add at most one instruction worth of time.
		if back > c.work+1 {
			t.Errorf("rate %d: round trip inflated %d -> %d", c.rate, c.work, back)
		}
	}
}

func TestMachineProportionalShare(t *testing.T) {
	m := newTestMachine(sched.NewSFQ(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	b := m.Spawn("b", 2, Forever(Compute(1_000_000)), 0)
	m.Run(30 * sim.Second)

	if a.Done+b.Done == 0 {
		t.Fatal("no work executed")
	}
	ratio := float64(b.Done) / float64(a.Done)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("work ratio b:a = %v, want 2.0", ratio)
	}
	total := m.Rate().WorkFor(30 * sim.Second)
	if a.Done+b.Done < total-1 || a.Done+b.Done > total {
		t.Errorf("conservation: did %d work, CPU offered %d", a.Done+b.Done, total)
	}
}

// TestMachineFig3 replays the worked example of the paper's §3/Fig. 3:
// threads A (weight 1) and B (weight 2), 10 ms quanta, B blocking at
// t=60ms until 115ms, A blocking at t=90ms until 110ms.
func TestMachineFig3(t *testing.T) {
	leaf := sched.NewSFQ(10 * sim.Millisecond)
	m := newTestMachine(leaf)

	// 1 work unit == 1 ms of CPU. A consumes 50 ms then sleeps until 110;
	// B consumes 40 ms then sleeps until 115.
	a := m.Spawn("A", 1, Sequence(
		Compute(50), SleepUntil(110*sim.Millisecond), Compute(20), Exit(),
	), 0)
	b := m.Spawn("B", 2, Sequence(
		Compute(40), SleepUntil(115*sim.Millisecond), Compute(40), Exit(),
	), 0)

	type span struct {
		t     *sched.Thread
		start sim.Time
	}
	var spans []span
	m.Listen(listenerFunc(func(th *sched.Thread, now sim.Time) {
		spans = append(spans, span{th, now})
	}))
	finalTags := map[*sched.Thread][2]float64{}
	m.Listen(exitListener(func(th *sched.Thread, now sim.Time) {
		s, f := leaf.Tags(th)
		finalTags[th] = [2]float64{s, f}
	}))

	m.Run(200 * sim.Millisecond)

	// Paper: before B blocks at t=60, A ran 20 ms and B ran 40 ms.
	var aBy60, bBy60 sim.Time
	for i, s := range spans {
		end := sim.Time(200 * sim.Millisecond)
		if i+1 < len(spans) {
			end = spans[i+1].start
		}
		if s.start >= 60*sim.Millisecond {
			break
		}
		d := sim.MinTime(end, 60*sim.Millisecond) - s.start
		if s.t == a {
			aBy60 += d
		} else {
			bBy60 += d
		}
	}
	if aBy60 != 20*sim.Millisecond || bBy60 != 40*sim.Millisecond {
		t.Errorf("by t=60: A ran %v (want 20ms), B ran %v (want 40ms)", aBy60, bBy60)
	}

	// Paper: when A blocks at t=90 the system idles with v = 50; A wakes
	// at 110 with S=50 and B at 115 with S=max(v,20)=50. Final tags were
	// captured at exit, before the machine forgets the threads.
	sa, fa := finalTags[a][0], finalTags[a][1]
	sb, fb := finalTags[b][0], finalTags[b][1]
	if fa != 70 { // resumed at S=50, +20/1 for the final burst
		t.Errorf("final F_A = %v, want 70", fa)
	}
	if fb != 70 { // resumed at S=max(v,20)=50, +40/2 for the final burst
		t.Errorf("final F_B = %v, want 70", fb)
	}
	if sa < 50 || sb < 50 {
		t.Errorf("post-wake start tags S_A=%v S_B=%v, both should be >= 50", sa, sb)
	}
	if a.State != sched.StateExited || b.State != sched.StateExited {
		t.Errorf("threads did not exit: A=%v B=%v", a.State, b.State)
	}
}

type listenerFunc func(*sched.Thread, sim.Time)

func (f listenerFunc) OnDispatch(t *sched.Thread, now sim.Time)         { f(t, now) }
func (listenerFunc) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}
func (listenerFunc) OnWake(*sched.Thread, sim.Time)                     {}
func (listenerFunc) OnBlock(*sched.Thread, sim.Time)                    {}
func (listenerFunc) OnExit(*sched.Thread, sim.Time)                     {}
func (listenerFunc) OnInterrupt(sim.Time, sim.Time)                     {}
func (listenerFunc) OnIdle(sim.Time)                                    {}

func TestMachineInterruptsStealTime(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	// 1 ms of interrupt handling every 10 ms: 10% of the CPU.
	m.AddInterrupts(&PeriodicInterrupts{Period: 10 * sim.Millisecond, Service: sim.Millisecond})
	m.Run(10 * sim.Second)

	want := testRate.WorkFor(9 * sim.Second)
	if a.Done < want-20 || a.Done > want+20 {
		t.Errorf("thread did %d work under 10%% interrupt load, want about %d", a.Done, want)
	}
	// Interrupts fire at 0, 10ms, ..., 10s: the one at exactly the horizon
	// is still charged, so 1001 interrupts in total.
	st := m.Stats()
	if st.Stolen < sim.Second || st.Stolen > sim.Second+sim.Millisecond {
		t.Errorf("stolen = %v, want about 1s", st.Stolen)
	}
	if st.Interrupts != 1001 {
		t.Errorf("interrupts = %d, want 1001", st.Interrupts)
	}
}

func TestMachinePreemption(t *testing.T) {
	// EDF leaf: a long-deadline hog and a short-deadline periodic thread;
	// the periodic thread must preempt the hog on each release.
	e := sched.NewEDF(0)
	m := newTestMachine(e)
	hog := sched.NewThread(1, "hog", 1)
	hog.RelDeadline = 10 * sim.Second
	m.Add(hog, Forever(Compute(1_000_000)), 0)

	period := sched.NewThread(2, "periodic", 1)
	period.Period = 100 * sim.Millisecond
	period.RelDeadline = 20 * sim.Millisecond
	var maxLatency sim.Time
	m.Add(period, periodicProbe(&maxLatency), 0)

	m.Run(2 * sim.Second)
	if m.Stats().Preemptions == 0 {
		t.Fatal("expected preemptions under EDF")
	}
	if maxLatency > sim.Millisecond {
		t.Errorf("periodic thread dispatch latency %v, want at most ~0 under preemptive EDF", maxLatency)
	}
}

// periodicProbe runs 5 ms of work every 100 ms and records, per job, how
// much later than release+service the job completed (its queueing delay).
func periodicProbe(maxLatency *sim.Time) Program {
	next := sim.Time(0)
	lastRelease := sim.Time(-1)
	return ProgramFunc(func(now sim.Time) Action {
		if lastRelease >= 0 {
			if lat := now - lastRelease - 5*sim.Millisecond; lat > *maxLatency {
				*maxLatency = lat
			}
			lastRelease = -1
		}
		if now < next {
			return SleepUntil(next)
		}
		lastRelease = now
		next += 100 * sim.Millisecond
		return Compute(5)
	})
}

type exitListener func(*sched.Thread, sim.Time)

func (exitListener) OnDispatch(*sched.Thread, sim.Time)                 {}
func (exitListener) OnCharge(*sched.Thread, sched.Work, sim.Time, bool) {}
func (exitListener) OnWake(*sched.Thread, sim.Time)                     {}
func (exitListener) OnBlock(*sched.Thread, sim.Time)                    {}
func (f exitListener) OnExit(t *sched.Thread, now sim.Time)             { f(t, now) }
func (exitListener) OnInterrupt(sim.Time, sim.Time)                     {}
func (exitListener) OnIdle(sim.Time)                                    {}

func TestMulDivOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	// work * 1e9 overflows the 128/64 division when the quotient cannot
	// fit: force hi >= c.
	Rate(1).TimeFor(sched.Work(1 << 62))
}

func TestMIPSAndNegativePanics(t *testing.T) {
	if MIPS(100) != DefaultRate {
		t.Errorf("MIPS(100) = %d", MIPS(100))
	}
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		DefaultRate.TimeFor(-1)
		return
	}(); !recovered {
		t.Error("negative work accepted")
	}
	if recovered := func() (r bool) {
		defer func() { r = recover() != nil }()
		DefaultRate.WorkFor(-1)
		return
	}(); !recovered {
		t.Error("negative duration accepted")
	}
}

func TestActionKindStrings(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActionCompute:    "compute",
		ActionSleep:      "sleep",
		ActionSleepUntil: "sleep-until",
		ActionBlock:      "block",
		ActionExit:       "exit",
		ActionKind(99):   "action(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestSequenceAndForever(t *testing.T) {
	p := Sequence(Compute(5), Sleep(3))
	if a := p.Next(0); a.Kind != ActionCompute || a.Work != 5 {
		t.Errorf("%+v", a)
	}
	if a := p.Next(0); a.Kind != ActionSleep {
		t.Errorf("%+v", a)
	}
	if a := p.Next(0); a.Kind != ActionExit {
		t.Errorf("sequence did not exit: %+v", a)
	}
	f := Forever(Compute(1), Sleep(2))
	for i := 0; i < 6; i++ {
		a := f.Next(0)
		if i%2 == 0 && a.Kind != ActionCompute {
			t.Fatalf("step %d: %+v", i, a)
		}
		if i%2 == 1 && a.Kind != ActionSleep {
			t.Fatalf("step %d: %+v", i, a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Forever() did not panic")
		}
	}()
	Forever()
}
