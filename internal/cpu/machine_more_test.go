package cpu

import (
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func TestMachineFlushExactAccounting(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(20 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	// Horizon not aligned to the quantum: 50 ms = 2.5 quanta.
	m.Run(50 * sim.Millisecond)
	if a.Done != 40 { // only two whole quanta charged
		t.Errorf("pre-flush Done = %d, want 40", a.Done)
	}
	m.Flush()
	if a.Done != 50 {
		t.Errorf("post-flush Done = %d, want 50", a.Done)
	}
	// The machine keeps running correctly after a flush.
	m.Run(100 * sim.Millisecond)
	m.Flush()
	if a.Done != 100 {
		t.Errorf("after resume Done = %d, want 100", a.Done)
	}
}

func TestMachineFlushIdleNoop(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(0))
	m.Run(10 * sim.Millisecond)
	m.Flush() // no segment: must not panic
	if m.Stats().Work != 0 {
		t.Error("work from nothing")
	}
}

func TestMachineDispatchCost(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	m.SetDispatchCost(func(*sched.Thread) sim.Time { return sim.Millisecond })
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	m.Run(110 * sim.Millisecond)
	// Each 10 ms quantum costs 1 ms to dispatch: 10 segments in 110 ms.
	if a.Done != 100 {
		t.Errorf("Done = %d, want 100 (10 quanta of 10)", a.Done)
	}
	// 10 completed quanta plus the dispatch landing exactly on the
	// horizon: 11 decisions paid for.
	st := m.Stats()
	if st.SchedCost != 11*sim.Millisecond {
		t.Errorf("SchedCost = %v", st.SchedCost)
	}
}

func TestMachineOverlappingInterrupts(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	// Two sources colliding: 3 ms at t=5 ms and 2 ms at t=6 ms; they
	// serialize, so the CPU is busy with handlers during [5ms, 10ms].
	m.AddInterrupts(&onceInterrupt{at: 5 * sim.Millisecond, service: 3 * sim.Millisecond})
	m.AddInterrupts(&onceInterrupt{at: 6 * sim.Millisecond, service: 2 * sim.Millisecond})
	m.Run(20 * sim.Millisecond)
	m.Flush()
	if a.Done != 15 {
		t.Errorf("Done = %d, want 15 (20ms - 5ms stolen)", a.Done)
	}
	if st := m.Stats(); st.Stolen != 5*sim.Millisecond || st.Interrupts != 2 {
		t.Errorf("stats %+v", st)
	}
}

// onceInterrupt fires a single interrupt.
type onceInterrupt struct {
	at, service sim.Time
	done        bool
}

func (o *onceInterrupt) Next(now sim.Time) (sim.Time, sim.Time, bool) {
	if o.done {
		return 0, 0, false
	}
	o.done = true
	return o.at, o.service, true
}

func TestMachineInterruptDuringIdle(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	// Thread starts at 20 ms; an interrupt hits the idle CPU at 5 ms.
	m.Spawn("late", 1, Sequence(Compute(10), Exit()), 20*sim.Millisecond)
	m.AddInterrupts(&onceInterrupt{at: 5 * sim.Millisecond, service: 2 * sim.Millisecond})
	m.Run(50 * sim.Millisecond)
	st := m.Stats()
	// Idle: [0,5) + [7,20) + [30,50) = 38 ms... the final idle stretch is
	// still open at the horizon, so only closed idle intervals count.
	if st.Idle < 18*sim.Millisecond {
		t.Errorf("idle %v too small", st.Idle)
	}
	if st.Stolen != 2*sim.Millisecond {
		t.Errorf("stolen %v", st.Stolen)
	}
}

func TestMachineWakeDuringInterruptDefersDispatch(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	var dispatchedAt sim.Time = -1
	m.Listen(listenerFunc(func(th *sched.Thread, now sim.Time) {
		if dispatchedAt == -1 {
			dispatchedAt = now
		}
	}))
	m.Spawn("t", 1, Sequence(Compute(10), Exit()), 5*sim.Millisecond)
	m.AddInterrupts(&onceInterrupt{at: 4 * sim.Millisecond, service: 3 * sim.Millisecond})
	m.Run(50 * sim.Millisecond)
	// The thread woke at 5 ms, mid-interrupt; it must run only when the
	// handler finishes at 7 ms.
	if dispatchedAt != 7*sim.Millisecond {
		t.Errorf("dispatched at %v, want 7ms", dispatchedAt)
	}
}

func TestMachinePreemptionDuringInterrupt(t *testing.T) {
	// An EDF wakeup that lands while an interrupt is being serviced must
	// preempt the (paused) running thread, with dispatch deferred to the
	// interrupt's end.
	e := sched.NewEDF(0)
	m := newTestMachine(e)
	hog := sched.NewThread(1, "hog", 1)
	hog.RelDeadline = 10 * sim.Second
	m.Add(hog, Forever(Compute(1_000_000)), 0)
	urgent := sched.NewThread(2, "urgent", 1)
	urgent.RelDeadline = sim.Millisecond
	m.Add(urgent, Sequence(Compute(2), Exit()), 5*sim.Millisecond)
	m.AddInterrupts(&onceInterrupt{at: 4 * sim.Millisecond, service: 3 * sim.Millisecond})

	var order []string
	m.Listen(listenerFunc(func(th *sched.Thread, now sim.Time) {
		order = append(order, th.Name)
	}))
	m.Run(20 * sim.Millisecond)
	// hog runs first; interrupt at 4, urgent wakes at 5 (during
	// interrupt), preempts; at 7 the handler ends and urgent runs.
	if len(order) < 3 || order[0] != "hog" || order[1] != "urgent" {
		t.Errorf("dispatch order %v", order)
	}
	if urgent.State != sched.StateExited {
		t.Error("urgent did not complete")
	}
}

func TestMachineSpawnMidRun(t *testing.T) {
	m := newTestMachine(sched.NewSFQ(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	m.Run(sim.Second)
	b := m.Spawn("b", 1, Forever(Compute(1_000_000)), m.Engine().Now())
	m.Run(2 * sim.Second)
	m.Flush()
	// b joined at 1s: both get ~500ms of the second half.
	if d := int64(a.Done) - 1500; d < -20 || d > 20 {
		t.Errorf("a.Done = %d, want ~1500", a.Done)
	}
	if d := int64(b.Done) - 500; d < -20 || d > 20 {
		t.Errorf("b.Done = %d, want ~500", b.Done)
	}
}

func TestMachineZeroAndNegativeActionsSkipped(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(0))
	a := m.Spawn("a", 1, Sequence(
		Compute(0), Sleep(0), Compute(5), SleepUntil(0), Compute(5), Exit(),
	), 0)
	m.Run(sim.Second)
	if a.Done != 10 || a.State != sched.StateExited {
		t.Errorf("Done=%d state=%v", a.Done, a.State)
	}
}

func TestMachineDuplicateAddPanics(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(0))
	th := sched.NewThread(1, "t", 1)
	m.Add(th, Forever(Compute(1)), 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	m.Add(th, Forever(Compute(1)), 0)
}

func TestMachineSVR4EndToEnd(t *testing.T) {
	// The SVR4 leaf under the machine: an interactive thread must get
	// dispatched promptly after sleep (slpret boost) despite two hogs.
	s := sched.NewSVR4(nil, int64(testRate), 0)
	m := newTestMachine(s)
	m.Spawn("hog1", 1, Forever(Compute(1_000_000)), 0)
	m.Spawn("hog2", 1, Forever(Compute(1_000_000)), 0)
	inter := m.Spawn("inter", 1, Forever(Compute(2), Sleep(50*sim.Millisecond)), 0)
	m.Run(10 * sim.Second)
	// The interactive thread needs 2ms per 52ms cycle = ~385 ms of CPU
	// over 10 s if scheduled promptly every time.
	if inter.Done < 300 {
		t.Errorf("interactive thread got %d ms of CPU, want ~385", inter.Done)
	}
}

func TestMachineMLFQEndToEnd(t *testing.T) {
	// The multilevel feedback leaf under the machine: hogs burn full
	// quanta and sink to the bottom level; an interactive thread blocks
	// early, floats at level 0, and preempts the hogs on every wakeup.
	s := sched.NewMLFQ(3, 10*sim.Millisecond, 200*sim.Millisecond, int64(testRate))
	m := newTestMachine(s)
	hog1 := m.Spawn("hog1", 1, Forever(Compute(1_000_000)), 0)
	hog2 := m.Spawn("hog2", 1, Forever(Compute(1_000_000)), 0)
	inter := m.Spawn("inter", 1, Forever(Compute(2), Sleep(50*sim.Millisecond)), 0)
	m.Run(10 * sim.Second)
	// ~385 ms of CPU if dispatched promptly every cycle (2 ms per 52 ms).
	if inter.Done < 300 {
		t.Errorf("interactive thread got %d ms of CPU, want ~385", inter.Done)
	}
	if lv := s.Level(inter); lv != 0 {
		t.Errorf("interactive thread at level %d, want 0", lv)
	}
	for _, hog := range []*sched.Thread{hog1, hog2} {
		if lv := s.Level(hog); lv != s.NumLevels()-1 {
			t.Errorf("%v at level %d, want bottom %d", hog, lv, s.NumLevels()-1)
		}
	}
}

func TestMachineDRREndToEnd(t *testing.T) {
	// The dynamic-quantum leaf under the machine: a hog is always cut off
	// at its full quantum, so its quantum holds at the base; the
	// interactive thread's short bursts pull its quantum down toward the
	// observed burst length.
	s := sched.NewDRR(10*sim.Millisecond, int64(testRate))
	m := newTestMachine(s)
	hog := m.Spawn("hog", 1, Forever(Compute(1_000_000)), 0)
	inter := m.Spawn("inter", 1, Forever(Compute(2), Sleep(20*sim.Millisecond)), 0)
	m.Run(10 * sim.Second)
	hq, iq := s.ThreadQuantum(hog), s.ThreadQuantum(inter)
	if hq != 10*sim.Millisecond {
		t.Errorf("hog quantum = %v, want the 10ms base", hq)
	}
	// Converges geometrically to the 2 ms burst; well under 3 ms by now.
	if iq < 2*sim.Millisecond || iq > 3*sim.Millisecond {
		t.Errorf("interactive quantum = %v, want ~2ms", iq)
	}
}

func TestMachineStatsConservation(t *testing.T) {
	// Run at the realistic rate: interrupt pause/resume rounding is at
	// most one instruction per interrupt, i.e. 10 ns here.
	m := NewMachine(sim.NewEngine(), DefaultRate, sched.NewSFQ(10*sim.Millisecond))
	m.Spawn("a", 1, Forever(Compute(100_000_000)), 0)
	m.Spawn("b", 3, Forever(Compute(100_000_000)), 0)
	m.AddInterrupts(&PeriodicInterrupts{Period: 50 * sim.Millisecond, Service: sim.Millisecond})
	m.SetDispatchCost(func(*sched.Thread) sim.Time { return 100 * sim.Microsecond })
	m.Run(10 * sim.Second)
	m.Flush()
	st := m.Stats()
	// Work time + stolen + sched cost + idle must cover the horizon.
	total := DefaultRate.TimeFor(st.Work) + st.Stolen + st.SchedCost + st.Idle
	// The interrupt and the dispatch landing exactly on the horizon are
	// charged although their time lies beyond it: up to ~1.1 ms over.
	if total < 10*sim.Second-100*sim.Microsecond || total > 10*sim.Second+2*sim.Millisecond {
		t.Errorf("conservation: accounted %v of 10s (work=%v stolen=%v cost=%v idle=%v)",
			total, DefaultRate.TimeFor(st.Work), st.Stolen, st.SchedCost, st.Idle)
	}
}

func TestMachineWaitedAccounting(t *testing.T) {
	// Two equal threads alternating 10 ms quanta: over any long run each
	// waits roughly half the wall time.
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	b := m.Spawn("b", 1, Forever(Compute(1_000_000)), 0)
	m.Run(10 * sim.Second)
	for _, th := range []*sched.Thread{a, b} {
		if th.Waited < 4900*sim.Millisecond || th.Waited > 5100*sim.Millisecond {
			t.Errorf("%v waited %v, want ~5s", th, th.Waited)
		}
	}
	// A lone thread never waits.
	m2 := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	solo := m2.Spawn("solo", 1, Forever(Compute(1_000_000)), 0)
	m2.Run(sim.Second)
	if solo.Waited != 0 {
		t.Errorf("solo thread waited %v", solo.Waited)
	}
}

func TestBurstInterrupts(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(10 * sim.Millisecond))
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	// 3 back-to-back 1 ms interrupts every 100 ms.
	m.AddInterrupts(&BurstInterrupts{Period: 100 * sim.Millisecond, Count: 3, Service: sim.Millisecond})
	m.Run(sim.Second)
	m.Flush()
	st := m.Stats()
	// Ten full bursts at 0..900ms (30 interrupts) plus the first
	// interrupt of the burst starting exactly at the 1s horizon; its two
	// back-to-back followers lie beyond it.
	if st.Interrupts != 31 {
		t.Errorf("interrupts %d, want 31", st.Interrupts)
	}
	if st.Stolen != 31*sim.Millisecond {
		t.Errorf("stolen %v", st.Stolen)
	}
	// Thread work within the horizon: 1s minus the 30 ms stolen inside it.
	if got, want := a.Done, testRate.WorkFor(sim.Second-30*sim.Millisecond); got < want-3 || got > want+3 {
		t.Errorf("work %d, want ~%d", got, want)
	}
}

func TestMachineAccessorsAndLatency(t *testing.T) {
	s := sched.NewRoundRobin(0)
	m := newTestMachine(s)
	if m.Scheduler() != sched.Scheduler(s) || m.Rate() != testRate {
		t.Error("accessors wrong")
	}
	a := m.Spawn("a", 1, Forever(Compute(1_000_000)), 0)
	b := m.Spawn("b", 1, Forever(Compute(1_000_000)), 0)
	m.Run(15 * sim.Millisecond)
	// b has been ready since t=0 and is still waiting behind a's quantum.
	if got := m.Latency(b); got != 15*sim.Millisecond {
		t.Errorf("latency of waiting thread %v", got)
	}
	_ = a
}

func TestWakeUnknownThreadPanics(t *testing.T) {
	m := newTestMachine(sched.NewRoundRobin(0))
	defer func() {
		if recover() == nil {
			t.Error("Wake of unknown thread did not panic")
		}
	}()
	m.Wake(sched.NewThread(99, "ghost", 1))
}
