package cpu

import (
	"fmt"

	"hsfq/internal/sim"
)

// InterruptSource generates hardware-interrupt arrivals. Interrupts are
// serviced at the highest priority and steal cycles from whatever thread
// is running, which is exactly why the paper models the effective CPU as a
// Fluctuation Constrained server (§3, property 3): "In most operating
// systems processing of hardware interrupts occurs at the highest
// priority. Consequently, the effective bandwidth of CPU fluctuates over
// time."
type InterruptSource interface {
	// Next returns the arrival time (>= now) and service duration of the
	// next interrupt, or ok=false if the source is exhausted.
	Next(now sim.Time) (at, service sim.Time, ok bool)
}

// PeriodicInterrupts models a fixed-rate source such as the clock tick:
// one interrupt every Period taking Service to handle, starting at Offset.
type PeriodicInterrupts struct {
	Period  sim.Time
	Service sim.Time
	Offset  sim.Time

	next sim.Time
	init bool
}

// Next implements InterruptSource.
func (p *PeriodicInterrupts) Next(now sim.Time) (sim.Time, sim.Time, bool) {
	if p.Period <= 0 || p.Service < 0 {
		panic("cpu: periodic interrupt source with non-positive period or negative service")
	}
	if !p.init {
		p.next = p.Offset
		p.init = true
	}
	for p.next < now {
		p.next += p.Period
	}
	at := p.next
	p.next += p.Period
	return at, p.Service, true
}

// SaveState implements Stater.
func (p *PeriodicInterrupts) SaveState(e *sim.Enc) {
	e.Time(p.next)
	e.Bool(p.init)
}

// LoadState implements Stater.
func (p *PeriodicInterrupts) LoadState(d *sim.Dec) error {
	p.next = d.Time()
	p.init = d.Bool()
	return d.Err()
}

// PoissonInterrupts models an irregular source (network, disk) with
// exponentially distributed inter-arrival times of mean 1/RatePerSec and
// exponentially distributed service times of mean ServiceMean, optionally
// truncated at ServiceCap. The stream is deterministic given the Rand.
type PoissonInterrupts struct {
	RatePerSec  float64
	ServiceMean sim.Time
	ServiceCap  sim.Time
	Rand        *sim.Rand
}

// Next implements InterruptSource.
func (p *PoissonInterrupts) Next(now sim.Time) (sim.Time, sim.Time, bool) {
	if p.RatePerSec <= 0 || p.ServiceMean <= 0 || p.Rand == nil {
		panic("cpu: poisson interrupt source misconfigured")
	}
	gap := sim.Time(p.Rand.ExpFloat64() / p.RatePerSec * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	svc := sim.Time(p.Rand.ExpFloat64() * float64(p.ServiceMean))
	if svc < 1 {
		svc = 1
	}
	if p.ServiceCap > 0 && svc > p.ServiceCap {
		svc = p.ServiceCap
	}
	return now + gap, svc, true
}

// SaveState implements Stater. The RNG state is the source's whole
// mutable state: without it a resumed run would draw a different arrival
// stream and diverge from the uninterrupted one.
func (p *PoissonInterrupts) SaveState(e *sim.Enc) {
	e.Bool(p.Rand != nil)
	if p.Rand != nil {
		e.U64(p.Rand.State())
	}
}

// LoadState implements Stater.
func (p *PoissonInterrupts) LoadState(d *sim.Dec) error {
	if d.Bool() {
		st := d.U64()
		if d.Err() == nil {
			if p.Rand == nil {
				return fmt.Errorf("cpu: checkpoint carries RNG state for a source without one")
			}
			p.Rand.SetState(st)
		}
	}
	return d.Err()
}

// BurstInterrupts models a source that delivers Count back-to-back
// interrupts of the given Service length every Period — the worst case for
// the FC burstiness parameter.
type BurstInterrupts struct {
	Period  sim.Time
	Count   int
	Service sim.Time
	Offset  sim.Time

	burstStart sim.Time
	inBurst    int
	init       bool
}

// Next implements InterruptSource.
func (b *BurstInterrupts) Next(now sim.Time) (sim.Time, sim.Time, bool) {
	if b.Period <= 0 || b.Count <= 0 || b.Service <= 0 {
		panic("cpu: burst interrupt source misconfigured")
	}
	if !b.init {
		b.burstStart = b.Offset
		b.init = true
	}
	at := b.burstStart + sim.Time(b.inBurst)*b.Service
	b.inBurst++
	if b.inBurst >= b.Count {
		b.inBurst = 0
		b.burstStart += b.Period
	}
	if at < now {
		at = now
	}
	return at, b.Service, true
}

// SaveState implements Stater.
func (b *BurstInterrupts) SaveState(e *sim.Enc) {
	e.Time(b.burstStart)
	e.Int(b.inBurst)
	e.Bool(b.init)
}

// LoadState implements Stater.
func (b *BurstInterrupts) LoadState(d *sim.Dec) error {
	b.burstStart = d.Time()
	b.inBurst = d.Int()
	b.init = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if b.inBurst < 0 || (b.Count > 0 && b.inBurst >= b.Count) {
		return fmt.Errorf("cpu: burst position %d out of range", b.inBurst)
	}
	return nil
}
