// Package workload provides the thread programs used by the paper's
// evaluation: a Dhrystone-like CPU-bound loop benchmark, a VBR MPEG
// decode-cost generator with frame- and scene-scale variability, periodic
// hard real-time tasks that track deadlines, and interactive (think-time)
// tasks that stand in for the "normal system processes" present in the
// paper's multiuser measurements.
package workload

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Dhrystone mimics the paper's Dhrystone V2.1 usage: a CPU-bound loop
// whose performance metric is loops completed in a fixed duration. Loops
// completed = thread.Done / LoopWork.
type Dhrystone struct {
	// LoopWork is the cost of one benchmark loop in instructions.
	LoopWork sched.Work

	// FaultEvery and FaultSleep optionally model the brief involuntary
	// sleeps (page-ins, TLB fills through the kernel) that real benchmark
	// processes experience: after each FaultEvery loops the thread sleeps
	// for FaultSleep. These sleeps are what let SVR4's slpret boost kick
	// in and make time-sharing throughput diverge across identical
	// threads (Fig. 5); under SFQ they are invisible in the totals.
	FaultEvery int
	FaultSleep sim.Time

	// Phase staggers the first fault so identical threads do not fault in
	// lockstep.
	Phase int
}

// Program returns a fresh program instance; each thread needs its own.
//
// A CPU-bound benchmark never traps into the scheduler between loops, so
// the program computes in long bursts — FaultEvery loops at a time when
// faults are modeled, effectively unbounded otherwise — and lets quantum
// expiry slice them. Completed loops are Done/LoopWork.
func (d Dhrystone) Program() cpu.Program {
	if d.LoopWork <= 0 {
		panic("workload: Dhrystone with non-positive loop work")
	}
	if d.FaultEvery <= 0 {
		// About 28 hours of loops per burst: unbounded in practice.
		return cpu.Forever(cpu.Compute(d.LoopWork * 1_000_000_000))
	}
	return &dhrystoneProgram{
		loopWork:   d.LoopWork,
		faultEvery: d.FaultEvery,
		faultSleep: d.FaultSleep,
		batch:      d.FaultEvery - d.Phase%d.FaultEvery,
	}
}

// dhrystoneProgram is the faulting Dhrystone loop. It is a struct rather
// than a closure so its position survives a checkpoint.
type dhrystoneProgram struct {
	loopWork   sched.Work
	faultEvery int
	faultSleep sim.Time

	computing bool
	batch     int
}

// Next implements cpu.Program.
func (p *dhrystoneProgram) Next(now sim.Time) cpu.Action {
	p.computing = !p.computing
	if p.computing {
		w := cpu.Compute(p.loopWork * sched.Work(p.batch))
		p.batch = p.faultEvery
		return w
	}
	return cpu.Sleep(p.faultSleep)
}

// Loops returns the number of completed benchmark loops given the total
// work the thread has executed.
func (d Dhrystone) Loops(done sched.Work) int64 {
	return int64(done / d.LoopWork)
}

// CPUBound returns the simplest possible program: compute forever in
// bursts of the given size.
func CPUBound(burst sched.Work) cpu.Program {
	if burst <= 0 {
		panic("workload: CPUBound with non-positive burst")
	}
	return cpu.Forever(cpu.Compute(burst))
}

// OnOff alternates between computing for onDur worth of work and sleeping
// for offDur, starting in the on phase. It generates the fluctuating
// background load of the Fig. 8(a) experiment.
func OnOff(burst sched.Work, bursts int, offDur sim.Time) cpu.Program {
	if burst <= 0 || bursts <= 0 || offDur <= 0 {
		panic("workload: OnOff misconfigured")
	}
	return &onOffProgram{burst: burst, bursts: bursts, offDur: offDur}
}

// onOffProgram alternates compute bursts and sleeps; a struct so its
// phase survives a checkpoint.
type onOffProgram struct {
	burst  sched.Work
	bursts int
	offDur sim.Time
	i      int
}

// Next implements cpu.Program.
func (p *onOffProgram) Next(now sim.Time) cpu.Action {
	p.i++
	if p.i%(p.bursts+1) == 0 {
		return cpu.Sleep(p.offDur)
	}
	return cpu.Compute(p.burst)
}

// Window is a half-open interval of simulated time.
type Window struct {
	From, To sim.Time
}

// ScheduledLoop is a CPU-bound loop that is forcibly asleep during the
// given windows, the mechanism behind Fig. 11's "thread 1 was put to sleep
// at time 6 ... resumed execution at time 9".
func ScheduledLoop(burst sched.Work, asleep []Window) cpu.Program {
	if burst <= 0 {
		panic("workload: ScheduledLoop with non-positive burst")
	}
	for _, w := range asleep {
		if w.To <= w.From {
			panic(fmt.Sprintf("workload: bad sleep window %v-%v", w.From, w.To))
		}
	}
	return &scheduledLoopProgram{burst: burst, asleep: asleep}
}

// scheduledLoopProgram has no mutable state — its behaviour depends only
// on the current time — but being a named struct lets it participate in
// checkpointing.
type scheduledLoopProgram struct {
	burst  sched.Work
	asleep []Window
}

// Next implements cpu.Program.
func (p *scheduledLoopProgram) Next(now sim.Time) cpu.Action {
	for _, w := range p.asleep {
		if now >= w.From && now < w.To {
			return cpu.SleepUntil(w.To)
		}
	}
	return cpu.Compute(p.burst)
}

// Interactive models a think-compute loop: sleep for an exponentially
// distributed think time, then compute an exponentially distributed burst.
// A handful of these stand in for the "normal system processes" running
// during all of the paper's experiments.
type Interactive struct {
	ThinkMean sim.Time
	BurstMean sched.Work
	Rand      *sim.Rand
}

// Program returns a fresh program instance.
func (iv Interactive) Program() cpu.Program {
	if iv.ThinkMean <= 0 || iv.BurstMean <= 0 || iv.Rand == nil {
		panic("workload: Interactive misconfigured")
	}
	return &interactiveProgram{
		thinkMean: iv.ThinkMean,
		burstMean: iv.BurstMean,
		rand:      iv.Rand,
		thinking:  true,
	}
}

// interactiveProgram is the think-compute loop; a struct so its phase and
// RNG stream survive a checkpoint.
type interactiveProgram struct {
	thinkMean sim.Time
	burstMean sched.Work
	rand      *sim.Rand
	thinking  bool
}

// Next implements cpu.Program.
func (p *interactiveProgram) Next(now sim.Time) cpu.Action {
	if p.thinking {
		p.thinking = false
		d := sim.Time(p.rand.ExpFloat64() * float64(p.thinkMean))
		if d < 1 {
			d = 1
		}
		return cpu.Sleep(d)
	}
	p.thinking = true
	w := sched.Work(p.rand.ExpFloat64() * float64(p.burstMean))
	if w < 1 {
		w = 1
	}
	return cpu.Compute(w)
}

// Arrivals schedules spawn at Poisson arrival instants with the given
// rate until the horizon, for open-workload experiments (batch job
// streams, request arrivals). The callback receives the arrival index and
// instant; it typically calls Machine.Add with a fresh thread.
func Arrivals(eng *sim.Engine, rng *sim.Rand, ratePerSec float64, horizon sim.Time, spawn func(i int, at sim.Time)) {
	if eng == nil || rng == nil || ratePerSec <= 0 || spawn == nil {
		panic("workload: Arrivals misconfigured")
	}
	at := sim.Time(0)
	for i := 0; ; i++ {
		gap := sim.Time(rng.ExpFloat64() / ratePerSec * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		at += gap
		if at > horizon {
			return
		}
		i, instant := i, at
		eng.At(instant, func() { spawn(i, instant) })
	}
}
