package workload

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/sim"
)

// This file implements cpu.Stater for every workload program, so a
// simulation built from these programs can be checkpointed mid-run and
// resumed without diverging. Static configuration (costs, periods,
// traces) is not serialized — the rebuild recreates it — only positions,
// phases, RNG streams, and the recorded metric series (slack, lateness,
// completion times) that the experiment reports at the end.

var (
	_ cpu.Stater = (*dhrystoneProgram)(nil)
	_ cpu.Stater = (*onOffProgram)(nil)
	_ cpu.Stater = (*scheduledLoopProgram)(nil)
	_ cpu.Stater = (*interactiveProgram)(nil)
	_ cpu.Stater = (*Decoder)(nil)
	_ cpu.Stater = (*PacedDecoder)(nil)
	_ cpu.Stater = (*Periodic)(nil)
)

func saveTimes(e *sim.Enc, ts []sim.Time) {
	e.Int(len(ts))
	for _, t := range ts {
		e.Time(t)
	}
}

func loadTimes(d *sim.Dec) []sim.Time {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Time())
	}
	return out
}

// SaveState implements cpu.Stater.
func (p *dhrystoneProgram) SaveState(e *sim.Enc) {
	e.Bool(p.computing)
	e.Int(p.batch)
}

// LoadState implements cpu.Stater.
func (p *dhrystoneProgram) LoadState(d *sim.Dec) error {
	p.computing = d.Bool()
	p.batch = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if p.batch < 0 {
		return fmt.Errorf("workload: negative dhrystone batch %d", p.batch)
	}
	return nil
}

// SaveState implements cpu.Stater.
func (p *onOffProgram) SaveState(e *sim.Enc) { e.Int(p.i) }

// LoadState implements cpu.Stater.
func (p *onOffProgram) LoadState(d *sim.Dec) error {
	p.i = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if p.i < 0 {
		return fmt.Errorf("workload: negative on-off phase %d", p.i)
	}
	return nil
}

// SaveState implements cpu.Stater. The program is stateless: behaviour
// depends only on the current time.
func (p *scheduledLoopProgram) SaveState(e *sim.Enc) {}

// LoadState implements cpu.Stater.
func (p *scheduledLoopProgram) LoadState(d *sim.Dec) error { return d.Err() }

// SaveState implements cpu.Stater. The RNG stream is the essential part:
// without it a resumed run would draw different think times and diverge.
func (p *interactiveProgram) SaveState(e *sim.Enc) {
	e.Bool(p.thinking)
	e.U64(p.rand.State())
}

// LoadState implements cpu.Stater.
func (p *interactiveProgram) LoadState(d *sim.Dec) error {
	p.thinking = d.Bool()
	st := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	p.rand.SetState(st)
	return nil
}

// SaveState implements cpu.Stater. Completion times are part of the
// state because FramesDecoded — the experiment's metric — is computed
// from them after the run.
func (p *Decoder) SaveState(e *sim.Enc) {
	e.Int(p.idx)
	saveTimes(e, p.doneTimes)
}

// LoadState implements cpu.Stater.
func (p *Decoder) LoadState(d *sim.Dec) error {
	idx := d.Int()
	times := loadTimes(d)
	if err := d.Err(); err != nil {
		return err
	}
	if idx < 0 || idx > len(p.trace) {
		return fmt.Errorf("workload: decoder position %d out of range [0, %d]", idx, len(p.trace))
	}
	p.idx = idx
	p.doneTimes = times
	return nil
}

// SaveState implements cpu.Stater.
func (p *PacedDecoder) SaveState(e *sim.Enc) {
	e.Int(p.idx)
	e.Bool(p.pending)
	e.Time(p.pendingDeadline)
	saveTimes(e, p.Lateness)
}

// LoadState implements cpu.Stater.
func (p *PacedDecoder) LoadState(d *sim.Dec) error {
	idx := d.Int()
	pending := d.Bool()
	deadline := d.Time()
	lateness := loadTimes(d)
	if err := d.Err(); err != nil {
		return err
	}
	if idx < 0 || idx > len(p.trace) {
		return fmt.Errorf("workload: paced decoder position %d out of range [0, %d]", idx, len(p.trace))
	}
	p.idx = idx
	p.pending = pending
	p.pendingDeadline = deadline
	p.Lateness = lateness
	return nil
}

// SaveState implements cpu.Stater.
func (p *Periodic) SaveState(e *sim.Enc) {
	e.Time(p.nextRelease)
	e.Bool(p.pending)
	e.Time(p.deadline)
	e.Bool(p.started)
	e.Int(p.done)
	saveTimes(e, p.Slack)
	saveTimes(e, p.Releases)
}

// LoadState implements cpu.Stater.
func (p *Periodic) LoadState(d *sim.Dec) error {
	nextRelease := d.Time()
	pending := d.Bool()
	deadline := d.Time()
	started := d.Bool()
	done := d.Int()
	slack := loadTimes(d)
	releases := loadTimes(d)
	if err := d.Err(); err != nil {
		return err
	}
	if done < 0 {
		return fmt.Errorf("workload: negative completed-round count %d", done)
	}
	p.nextRelease = nextRelease
	p.pending = pending
	p.deadline = deadline
	p.started = started
	p.done = done
	p.Slack = slack
	p.Releases = releases
	return nil
}
