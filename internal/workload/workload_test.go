package workload

import (
	"strings"
	"testing"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func TestDhrystoneBatching(t *testing.T) {
	d := Dhrystone{LoopWork: 100, FaultEvery: 50, FaultSleep: 2 * sim.Millisecond, Phase: 10}
	p := d.Program()
	a := p.Next(0)
	if a.Kind != cpu.ActionCompute || a.Work != 100*(50-10) {
		t.Errorf("first batch %+v, want compute of 40 loops", a)
	}
	b := p.Next(0)
	if b.Kind != cpu.ActionSleep || b.Duration != 2*sim.Millisecond {
		t.Errorf("expected fault sleep, got %+v", b)
	}
	c := p.Next(0)
	if c.Kind != cpu.ActionCompute || c.Work != 100*50 {
		t.Errorf("steady batch %+v, want 50 loops", c)
	}
	if d.Loops(100*75) != 75 {
		t.Errorf("Loops conversion wrong")
	}
}

func TestDhrystoneFaultless(t *testing.T) {
	d := Dhrystone{LoopWork: 100}
	p := d.Program()
	for i := 0; i < 5; i++ {
		a := p.Next(0)
		if a.Kind != cpu.ActionCompute || a.Work <= 0 {
			t.Fatalf("action %d: %+v", i, a)
		}
	}
}

func TestCPUBoundAndValidation(t *testing.T) {
	p := CPUBound(500)
	if a := p.Next(0); a.Kind != cpu.ActionCompute || a.Work != 500 {
		t.Errorf("%+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("CPUBound(0) did not panic")
		}
	}()
	CPUBound(0)
}

func TestOnOff(t *testing.T) {
	p := OnOff(100, 2, sim.Second)
	seq := []cpu.ActionKind{cpu.ActionCompute, cpu.ActionCompute, cpu.ActionSleep, cpu.ActionCompute, cpu.ActionCompute, cpu.ActionSleep}
	for i, want := range seq {
		if a := p.Next(0); a.Kind != want {
			t.Fatalf("action %d kind %v, want %v", i, a.Kind, want)
		}
	}
}

func TestScheduledLoop(t *testing.T) {
	p := ScheduledLoop(100, []Window{{From: sim.Second, To: 2 * sim.Second}})
	if a := p.Next(0); a.Kind != cpu.ActionCompute {
		t.Errorf("before window: %+v", a)
	}
	a := p.Next(1500 * sim.Millisecond)
	if a.Kind != cpu.ActionSleepUntil || a.Until != 2*sim.Second {
		t.Errorf("inside window: %+v", a)
	}
	if a := p.Next(2 * sim.Second); a.Kind != cpu.ActionCompute {
		t.Errorf("after window: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted window did not panic")
		}
	}()
	ScheduledLoop(100, []Window{{From: 5, To: 5}})
}

func TestInteractiveAlternates(t *testing.T) {
	iv := Interactive{ThinkMean: 100 * sim.Millisecond, BurstMean: 1000, Rand: sim.NewRand(1)}
	p := iv.Program()
	for i := 0; i < 20; i++ {
		a := p.Next(0)
		wantSleep := i%2 == 0
		if wantSleep && a.Kind != cpu.ActionSleep {
			t.Fatalf("action %d: %+v, want sleep", i, a)
		}
		if !wantSleep && a.Kind != cpu.ActionCompute {
			t.Fatalf("action %d: %+v, want compute", i, a)
		}
		if a.Kind == cpu.ActionSleep && a.Duration < 1 {
			t.Fatal("non-positive think time")
		}
		if a.Kind == cpu.ActionCompute && a.Work < 1 {
			t.Fatal("non-positive burst")
		}
	}
}

func TestMPEGTraceDeterministicAndShaped(t *testing.T) {
	g1 := DefaultMPEG(100_000_000, sim.NewRand(5))
	g2 := DefaultMPEG(100_000_000, sim.NewRand(5))
	t1, t2 := g1.Trace(500), g2.Trace(500)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("same seed produced different traces")
		}
		if t1[i] <= 0 {
			t.Fatal("non-positive frame cost")
		}
	}
	// I frames cost more than B frames on average.
	var iSum, bSum sched.Work
	var iN, bN int
	for i, w := range t1 {
		switch g1.GOP[i%len(g1.GOP)] {
		case 'I':
			iSum += w
			iN++
		case 'B':
			bSum += w
			bN++
		}
	}
	if float64(iSum)/float64(iN) < 1.5*float64(bSum)/float64(bN) {
		t.Errorf("I/B cost ratio too small: %v vs %v", iSum/sched.Work(iN), bSum/sched.Work(bN))
	}
}

func TestMPEGValidation(t *testing.T) {
	g := DefaultMPEG(100_000_000, sim.NewRand(1))
	g.GOP = "IXP"
	defer func() {
		if recover() == nil {
			t.Error("bad GOP did not panic")
		}
	}()
	g.Trace(10)
}

func TestDecoderCountsFrames(t *testing.T) {
	trace := []sched.Work{100, 200, 300}
	d := NewDecoder(trace, false)
	if a := d.Next(0); a.Work != 100 {
		t.Fatalf("first frame %+v", a)
	}
	if a := d.Next(10 * sim.Millisecond); a.Work != 200 {
		t.Fatalf("second frame %+v", a)
	}
	if a := d.Next(30 * sim.Millisecond); a.Work != 300 {
		t.Fatalf("third frame %+v", a)
	}
	if a := d.Next(60 * sim.Millisecond); a.Kind != cpu.ActionExit {
		t.Fatalf("expected exit, got %+v", a)
	}
	if d.FramesDecoded(5*sim.Millisecond) != 0 {
		t.Error("frames at 5ms")
	}
	if d.FramesDecoded(10*sim.Millisecond) != 1 {
		t.Error("frames at 10ms")
	}
	if d.FramesDecoded(sim.Second) != 3 {
		t.Errorf("total frames %d", d.FramesDecoded(sim.Second))
	}
	if got := d.CompletionTimes(); len(got) != 3 || got[2] != 60*sim.Millisecond {
		t.Errorf("completions %v", got)
	}
}

func TestDecoderLoops(t *testing.T) {
	d := NewDecoder([]sched.Work{100}, true)
	for i := 0; i < 5; i++ {
		if a := d.Next(sim.Time(i) * sim.Millisecond); a.Kind != cpu.ActionCompute {
			t.Fatalf("loop decoder stopped at %d: %+v", i, a)
		}
	}
	if d.FramesDecoded(sim.Second) != 4 {
		t.Errorf("frames %d, want 4 (first Next starts frame 1)", d.FramesDecoded(sim.Second))
	}
}

func TestPacedDecoderDeadlines(t *testing.T) {
	period := 33 * sim.Millisecond
	d := NewPacedDecoder([]sched.Work{100, 100, 100}, period)
	// Frame 0 available immediately.
	if a := d.Next(0); a.Kind != cpu.ActionCompute {
		t.Fatalf("%+v", a)
	}
	// Completed at 10ms, deadline 33ms: lateness -23ms; next frame
	// released at 33ms.
	a := d.Next(10 * sim.Millisecond)
	if a.Kind != cpu.ActionSleepUntil || a.Until != period {
		t.Fatalf("%+v", a)
	}
	if len(d.Lateness) != 1 || d.Lateness[0] != -23*sim.Millisecond {
		t.Fatalf("lateness %v", d.Lateness)
	}
	if a := d.Next(period); a.Kind != cpu.ActionCompute {
		t.Fatalf("%+v", a)
	}
	// Completed late at 80ms (deadline 66ms).
	a = d.Next(80 * sim.Millisecond)
	if a.Kind != cpu.ActionCompute { // frame 2 overdue, decode immediately
		t.Fatalf("%+v", a)
	}
	if d.Lateness[1] != 14*sim.Millisecond {
		t.Errorf("lateness[1] = %v", d.Lateness[1])
	}
	if a := d.Next(90 * sim.Millisecond); a.Kind != cpu.ActionExit {
		t.Fatalf("%+v", a)
	}
	if d.MissedDeadlines() != 1 {
		t.Errorf("missed %d", d.MissedDeadlines())
	}
}

func TestPeriodicSlackAndReleases(t *testing.T) {
	p := &Periodic{Period: 100 * sim.Millisecond, Cost: 1000, Rounds: 3}
	if a := p.Next(0); a.Kind != cpu.ActionCompute || a.Work != 1000 {
		t.Fatalf("%+v", a)
	}
	// Round 0 completes at 20ms: slack 80ms; next release 100ms.
	a := p.Next(20 * sim.Millisecond)
	if a.Kind != cpu.ActionSleepUntil || a.Until != 100*sim.Millisecond {
		t.Fatalf("%+v", a)
	}
	if len(p.Slack) != 1 || p.Slack[0] != 80*sim.Millisecond {
		t.Fatalf("slack %v", p.Slack)
	}
	if a := p.Next(100 * sim.Millisecond); a.Kind != cpu.ActionCompute {
		t.Fatalf("%+v", a)
	}
	// Round 1 overruns: completes at 250ms, deadline 200ms.
	a = p.Next(250 * sim.Millisecond)
	if a.Kind != cpu.ActionCompute { // round 2 releases immediately (200ms passed)
		t.Fatalf("%+v", a)
	}
	if p.Slack[1] != -50*sim.Millisecond {
		t.Errorf("slack[1] = %v", p.Slack[1])
	}
	if p.MissedDeadlines() != 1 {
		t.Errorf("missed %d", p.MissedDeadlines())
	}
	// Third round exhausts Rounds.
	if a := p.Next(260 * sim.Millisecond); a.Kind != cpu.ActionExit {
		t.Fatalf("%+v", a)
	}
	if p.MinSlack() != -50*sim.Millisecond {
		t.Errorf("min slack %v", p.MinSlack())
	}
	if len(p.Releases) != 3 || p.Releases[2] != 200*sim.Millisecond {
		t.Errorf("releases %v", p.Releases)
	}
}

// TestPeriodicUnderMachine integrates the periodic program with the real
// machine: a lone RT thread on an idle CPU must never miss and its jobs
// must complete exactly cost after each release.
func TestPeriodicUnderMachine(t *testing.T) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, 1000, sched.NewSFQ(10*sim.Millisecond))
	p := &Periodic{Period: 100 * sim.Millisecond, Cost: 10} // 10ms of work
	m.Spawn("rt", 1, p, 0)
	m.Run(5 * sim.Second)
	if len(p.Slack) < 49 {
		t.Fatalf("only %d rounds ran", len(p.Slack))
	}
	for i, s := range p.Slack {
		if s != 90*sim.Millisecond {
			t.Fatalf("round %d slack %v, want 90ms", i, s)
		}
	}
}

func TestCostTraceRoundTrip(t *testing.T) {
	orig := []sched.Work{100, 2500, 7}
	var buf strings.Builder
	if err := WriteCosts(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCosts(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip %v", got)
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Errorf("cost %d: %v != %v", i, got[i], orig[i])
		}
	}
}

func TestReadCostsFormat(t *testing.T) {
	in := `
# measured on a SPARCstation 10
2400000 I
  800000 B

1400000 P
`
	got, err := ReadCosts(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2400000 || got[2] != 1400000 {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"", "abc", "-5", "0", "# only comments\n"} {
		if _, err := ReadCosts(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}
