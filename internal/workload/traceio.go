package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hsfq/internal/sched"
)

// ReadCosts parses a per-item cost trace — for instance real MPEG frame
// decode costs measured on actual hardware — so recorded traces can drive
// Decoder and PacedDecoder in place of the synthetic generator. The
// format is one cost per line, in instructions; blank lines and
// #-comments are ignored, and an optional second whitespace-separated
// column (e.g. a frame type annotation) is tolerated.
func ReadCosts(r io.Reader) ([]sched.Work, error) {
	var out []sched.Work
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		v, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive cost %d", line, v)
		}
		out = append(out, sched.Work(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty cost trace")
	}
	return out, nil
}

// WriteCosts emits a cost trace in the format ReadCosts parses.
func WriteCosts(w io.Writer, costs []sched.Work) error {
	bw := bufio.NewWriter(w)
	for _, c := range costs {
		if _, err := fmt.Fprintln(bw, int64(c)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
