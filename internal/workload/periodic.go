package workload

import (
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Periodic is a hard real-time task: it releases a job of Cost
// instructions every Period, waking on a simulated clock interrupt exactly
// at each release, as the paper's Fig. 9 threads do ("a clock interrupt
// was used to announce the deadline for the current round and the start of
// a new round of computation").
//
// Per round it records the slack time — "the difference in time between
// the deadline and the time at which the current round of computation
// completes" (Fig. 9b). Scheduling latency (Fig. 9a) is a dispatch-time
// quantity recorded by metrics.LatencyRecorder, not by the program.
type Periodic struct {
	Period sim.Time
	Cost   sched.Work
	Offset sim.Time
	// Rounds bounds the number of jobs; 0 means run forever.
	Rounds int

	// Slack[i] = deadline(i) - completion(i); positive means the deadline
	// was met.
	Slack []sim.Time
	// Releases[i] is the release time of round i.
	Releases []sim.Time

	nextRelease sim.Time
	pending     bool
	deadline    sim.Time
	started     bool
	done        int
}

// Next implements cpu.Program.
func (p *Periodic) Next(now sim.Time) cpu.Action {
	if p.Period <= 0 || p.Cost <= 0 {
		panic("workload: Periodic misconfigured")
	}
	if !p.started {
		p.started = true
		p.nextRelease = p.Offset
	}
	if p.pending {
		p.Slack = append(p.Slack, p.deadline-now)
		p.pending = false
		p.done++
	}
	if p.Rounds > 0 && p.done >= p.Rounds {
		return cpu.Exit()
	}
	if now < p.nextRelease {
		return cpu.SleepUntil(p.nextRelease)
	}
	release := p.nextRelease
	p.Releases = append(p.Releases, release)
	p.nextRelease = release + p.Period
	p.deadline = release + p.Period
	p.pending = true
	return cpu.Compute(p.Cost)
}

// MissedDeadlines returns the number of rounds that finished after their
// deadline.
func (p *Periodic) MissedDeadlines() int {
	n := 0
	for _, s := range p.Slack {
		if s < 0 {
			n++
		}
	}
	return n
}

// MinSlack returns the smallest recorded slack, or 0 if none.
func (p *Periodic) MinSlack() sim.Time {
	if len(p.Slack) == 0 {
		return 0
	}
	min := p.Slack[0]
	for _, s := range p.Slack[1:] {
		if s < min {
			min = s
		}
	}
	return min
}
