package workload

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// MPEG generates per-frame decode costs for a VBR MPEG stream. The paper's
// Fig. 1 observes that decompression cost "varies from frame-to-frame
// (i.e., at the time scale of tens of milliseconds) as well as from
// scene-to-scene (i.e., at the time scale of seconds)", and that the
// variations are unpredictable. The generator reproduces both time scales:
//
//   - Frame scale: a repeating group-of-pictures pattern in which I frames
//     cost the most, P frames less, B frames least, each with
//     multiplicative noise.
//
//   - Scene scale: a Markov-modulated complexity level that jumps to a new
//     random multiplier every geometrically distributed scene length
//     (seconds of frames), modeling cuts between simple and complex scenes.
type MPEG struct {
	// GOP is the group-of-pictures pattern, e.g. "IBBPBBPBB".
	GOP string
	// FPS is the nominal display rate (frames per second).
	FPS int
	// IMean, PMean, BMean are mean decode costs per frame type, in
	// instructions.
	IMean, PMean, BMean sched.Work
	// Noise is the multiplicative frame-scale jitter: each frame's cost is
	// scaled by (1 +- Noise) uniformly. 0.25 is typical.
	Noise float64
	// SceneMeanFrames is the mean scene length in frames; each scene draws
	// a complexity multiplier uniformly in [SceneLow, SceneHigh].
	SceneMeanFrames     int
	SceneLow, SceneHigh float64
	// Rand drives all randomness; required.
	Rand *sim.Rand
}

// DefaultMPEG returns a generator tuned so the mean frame decode time is
// about 12 ms at the given machine rate with a typical 1990s GOP — close
// to the 20-40 ms/frame decode costs of the Berkeley player era relative
// to a SPARCstation-class CPU.
func DefaultMPEG(rate int64, rng *sim.Rand) MPEG {
	msWork := func(ms float64) sched.Work { return sched.Work(ms / 1000 * float64(rate)) }
	return MPEG{
		GOP:             "IBBPBBPBB",
		FPS:             30,
		IMean:           msWork(24),
		PMean:           msWork(14),
		BMean:           msWork(8),
		Noise:           0.25,
		SceneMeanFrames: 120,
		SceneLow:        0.6,
		SceneHigh:       1.8,
		Rand:            rng,
	}
}

func (m MPEG) validate() {
	if m.GOP == "" || m.FPS <= 0 || m.IMean <= 0 || m.PMean <= 0 || m.BMean <= 0 {
		panic("workload: MPEG misconfigured")
	}
	if m.Noise < 0 || m.Noise >= 1 {
		panic(fmt.Sprintf("workload: MPEG noise %v out of [0,1)", m.Noise))
	}
	if m.SceneMeanFrames <= 0 || m.SceneLow <= 0 || m.SceneHigh < m.SceneLow {
		panic("workload: MPEG scene model misconfigured")
	}
	if m.Rand == nil {
		panic("workload: MPEG without Rand")
	}
	for _, c := range m.GOP {
		if c != 'I' && c != 'P' && c != 'B' {
			panic(fmt.Sprintf("workload: MPEG GOP contains %q", c))
		}
	}
}

// Trace generates the decode costs of n consecutive frames.
func (m MPEG) Trace(n int) []sched.Work {
	m.validate()
	out := make([]sched.Work, n)
	sceneLeft := 0
	sceneMul := 1.0
	for i := 0; i < n; i++ {
		if sceneLeft == 0 {
			// Geometric scene length with the configured mean.
			sceneLeft = 1 + int(m.Rand.ExpFloat64()*float64(m.SceneMeanFrames))
			sceneMul = m.SceneLow + m.Rand.Float64()*(m.SceneHigh-m.SceneLow)
		}
		sceneLeft--
		var mean sched.Work
		switch m.GOP[i%len(m.GOP)] {
		case 'I':
			mean = m.IMean
		case 'P':
			mean = m.PMean
		default:
			mean = m.BMean
		}
		jitter := 1 + m.Noise*(2*m.Rand.Float64()-1)
		w := sched.Work(float64(mean) * sceneMul * jitter)
		if w < 1 {
			w = 1
		}
		out[i] = w
	}
	return out
}

// Decoder is a thread program that decodes a frame trace as fast as its
// CPU allocation allows, like the Berkeley MPEG player free-running in the
// paper's Fig. 10 experiment. FramesDecoded(now) is the reproduced metric.
type Decoder struct {
	trace     []sched.Work
	idx       int
	doneTimes []sim.Time
	loop      bool
}

// NewDecoder returns a decoder over the given trace. If loop is true the
// trace repeats; otherwise the thread exits at the end.
func NewDecoder(trace []sched.Work, loop bool) *Decoder {
	if len(trace) == 0 {
		panic("workload: decoder with empty trace")
	}
	return &Decoder{trace: trace, loop: loop}
}

// Next implements cpu.Program.
func (d *Decoder) Next(now sim.Time) cpu.Action {
	if d.idx > 0 || len(d.doneTimes) > 0 {
		d.doneTimes = append(d.doneTimes, now)
	}
	if d.idx >= len(d.trace) {
		if !d.loop {
			return cpu.Exit()
		}
		d.idx = 0
	}
	w := d.trace[d.idx]
	d.idx++
	return cpu.Compute(w)
}

// FramesDecoded returns how many frames had completed by time t.
func (d *Decoder) FramesDecoded(t sim.Time) int {
	n := 0
	for _, dt := range d.doneTimes {
		if dt <= t {
			n++
		}
	}
	return n
}

// CompletionTimes returns a copy of the per-frame completion times.
func (d *Decoder) CompletionTimes() []sim.Time {
	out := make([]sim.Time, len(d.doneTimes))
	copy(out, d.doneTimes)
	return out
}

// PacedDecoder decodes one frame per display period, sleeping when ahead:
// the soft real-time presentation mode. It records per-frame lateness
// relative to the display deadline.
type PacedDecoder struct {
	trace           []sched.Work
	period          sim.Time
	idx             int // next frame to decode
	pending         bool
	pendingDeadline sim.Time
	// Lateness[i] = completion - deadline of frame i; <= 0 means on time.
	Lateness []sim.Time
}

// NewPacedDecoder returns a decoder displaying one frame every period.
func NewPacedDecoder(trace []sched.Work, period sim.Time) *PacedDecoder {
	if len(trace) == 0 || period <= 0 {
		panic("workload: paced decoder misconfigured")
	}
	return &PacedDecoder{trace: trace, period: period}
}

// Next implements cpu.Program.
func (p *PacedDecoder) Next(now sim.Time) cpu.Action {
	if p.pending {
		p.Lateness = append(p.Lateness, now-p.pendingDeadline)
		p.pending = false
	}
	if p.idx >= len(p.trace) {
		return cpu.Exit()
	}
	release := sim.Time(p.idx) * p.period
	if now < release {
		return cpu.SleepUntil(release)
	}
	w := p.trace[p.idx]
	// The frame must be decoded by the end of its display slot.
	p.pendingDeadline = sim.Time(p.idx+1) * p.period
	p.pending = true
	p.idx++
	return cpu.Compute(w)
}

// MissedDeadlines returns how many frames completed after their deadline.
func (p *PacedDecoder) MissedDeadlines() int {
	n := 0
	for _, l := range p.Lateness {
		if l > 0 {
			n++
		}
	}
	return n
}
