package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders aligned columns, the textual form of the paper's result
// rows used by cmd/experiments.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// AsciiPlot renders series as a crude character plot, height rows tall,
// one column per sample, for eyeballing figure shapes in a terminal. Each
// series is drawn with its own rune.
func AsciiPlot(w io.Writer, height int, series map[rune][]float64) error {
	if height < 2 {
		height = 2
	}
	width := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s) > width {
			width = len(s)
		}
		for _, v := range s {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if width == 0 || math.IsInf(lo, 1) {
		_, err := io.WriteString(w, "(no data)\n")
		return err
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	// Deterministic draw order.
	var marks []rune
	for r := range series {
		marks = append(marks, r)
	}
	for i := 1; i < len(marks); i++ {
		for j := i; j > 0 && marks[j-1] > marks[j]; j-- {
			marks[j-1], marks[j] = marks[j], marks[j-1]
		}
	}
	for _, r := range marks {
		for x, v := range series[r] {
			if math.IsNaN(v) {
				continue
			}
			y := int((v - lo) / (hi - lo) * float64(height-1))
			grid[height-1-y][x] = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g ┐\n", hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g ┘\n", lo)
	_, err := io.WriteString(w, b.String())
	return err
}
