package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// CounterSet is a small ordered collection of named int64 counters, safe
// for concurrent use. The dispatch layer keeps one per backend
// (dispatched/retried/hedged/quarantined/...); rendering preserves the
// registration order so operator output is stable.
type CounterSet struct {
	mu    sync.Mutex
	names []string
	vals  map[string]int64
}

// NewCounterSet creates a set with the given counters preregistered (all
// zero). Adding to an unregistered name registers it at the end.
func NewCounterSet(names ...string) *CounterSet {
	c := &CounterSet{vals: make(map[string]int64, len(names))}
	for _, n := range names {
		c.names = append(c.names, n)
		c.vals[n] = 0
	}
	return c
}

// Add increments name by d.
func (c *CounterSet) Add(name string, d int64) {
	c.mu.Lock()
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += d
	c.mu.Unlock()
}

// Inc increments name by one.
func (c *CounterSet) Inc(name string) { c.Add(name, 1) }

// Get returns name's current value (zero if never touched).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Snapshot returns a copy of every counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		m[k] = v
	}
	return m
}

// String renders "name=value" pairs in registration order.
func (c *CounterSet) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]string, len(c.names))
	for i, n := range c.names {
		parts[i] = fmt.Sprintf("%s=%d", n, c.vals[n])
	}
	return strings.Join(parts, " ")
}
