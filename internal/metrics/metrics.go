// Package metrics collects and summarizes the quantities the paper
// reports: windowed per-thread throughput (loops / frames per interval),
// scheduling latency, fairness indices over intervals, and simple ASCII
// tables and plots for the experiment drivers.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Sampler snapshots the cumulative work of a set of threads at a fixed
// interval, producing the time series behind Figs. 5, 8, 10 and 11.
type Sampler struct {
	interval sim.Time
	threads  []*sched.Thread
	times    []sim.Time
	samples  [][]sched.Work // samples[i][j]: Done of thread j at times[i]
}

// NewSampler creates a sampler over the given threads. Call Install to
// attach it to an engine.
func NewSampler(interval sim.Time, threads ...*sched.Thread) *Sampler {
	if interval <= 0 {
		panic("metrics: non-positive sampling interval")
	}
	if len(threads) == 0 {
		panic("metrics: sampler without threads")
	}
	return &Sampler{interval: interval, threads: threads}
}

// Install schedules the periodic samples on eng from time 0 through horizon.
func (s *Sampler) Install(eng *sim.Engine, horizon sim.Time) {
	for at := sim.Time(0); at <= horizon; at += s.interval {
		at := at
		eng.At(at, func() {
			s.times = append(s.times, at)
			row := make([]sched.Work, len(s.threads))
			for j, t := range s.threads {
				row[j] = t.Done
			}
			s.samples = append(s.samples, row)
		})
	}
}

// Times returns the sample instants.
func (s *Sampler) Times() []sim.Time { return s.times }

// Cumulative returns the cumulative-work series of thread j.
func (s *Sampler) Cumulative(j int) []sched.Work {
	out := make([]sched.Work, len(s.samples))
	for i, row := range s.samples {
		out[i] = row[j]
	}
	return out
}

// Deltas returns per-interval work (the throughput series) of thread j.
func (s *Sampler) Deltas(j int) []sched.Work {
	cum := s.Cumulative(j)
	if len(cum) == 0 {
		return nil
	}
	out := make([]sched.Work, len(cum)-1)
	for i := 1; i < len(cum); i++ {
		out[i-1] = cum[i] - cum[i-1]
	}
	return out
}

// RatioSeries returns the per-interval throughput ratio of threads a and b
// (NaN where b's delta is zero), Fig. 11(b)'s metric.
func (s *Sampler) RatioSeries(a, b int) []float64 {
	da, db := s.Deltas(a), s.Deltas(b)
	out := make([]float64, len(da))
	for i := range da {
		if db[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = float64(da[i]) / float64(db[i])
		}
	}
	return out
}

// JainIndex computes Jain's fairness index over normalized allocations
// x_i = work_i / weight_i: (sum x)^2 / (n * sum x^2). 1.0 is perfectly
// fair.
func JainIndex(work []sched.Work, weight []float64) float64 {
	if len(work) != len(weight) || len(work) == 0 {
		panic("metrics: JainIndex with mismatched inputs")
	}
	var sum, sumsq float64
	for i := range work {
		x := float64(work[i]) / weight[i]
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(work)) * sumsq)
}

// MaxNormalizedGap returns max_ij |W_i/w_i - W_j/w_j|, the quantity SFQ's
// fairness theorem bounds by l_i^max/w_i + l_j^max/w_j.
func MaxNormalizedGap(work []sched.Work, weight []float64) float64 {
	if len(work) != len(weight) || len(work) == 0 {
		panic("metrics: MaxNormalizedGap with mismatched inputs")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range work {
		x := float64(work[i]) / weight[i]
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

// CoefficientOfVariation returns stddev/mean of the values, the spread
// statistic used to contrast Fig. 5's two panels.
func CoefficientOfVariation(values []float64) float64 {
	if len(values) == 0 {
		panic("metrics: CoefficientOfVariation of nothing")
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(values))) / mean
}

// Summary holds order statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P90, P99 float64
}

// Summarize computes order statistics. It copies the input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(v)-1))
		return v[idx]
	}
	return Summary{
		N:      len(v),
		Min:    v[0],
		Max:    v[len(v)-1],
		Mean:   mean,
		Stddev: math.Sqrt(ss / float64(len(v))),
		P50:    pct(0.50),
		P90:    pct(0.90),
		P99:    pct(0.99),
	}
}

// Durations converts a slice of times to float64 milliseconds, the unit
// the paper plots latency and slack in.
func Durations(ts []sim.Time) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = t.Milliseconds()
	}
	return out
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f mean=%.3f sd=%.3f",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.Stddev)
}
