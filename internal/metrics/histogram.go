package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram accumulates values into fixed-width buckets over [Lo, Hi);
// values outside the range land in underflow/overflow counters. It renders
// the latency/slack distributions of the Fig. 9 experiments textually.
type Histogram struct {
	Lo, Hi  float64
	buckets []int
	under   int
	over    int
	n       int
	sum     float64
}

// NewHistogram creates a histogram with the given bucket count over
// [lo, hi).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets < 1 {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v)/%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int, buckets)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.buckets)))
		if idx == len(h.buckets) { // v == Hi-epsilon rounding
			idx--
		}
		h.buckets[idx]++
	}
}

// AddAll records a slice of values.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// N returns the number of recorded values.
func (h *Histogram) N() int { return h.n }

// Mean returns the mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bucket returns the count of bucket i and its bounds.
func (h *Histogram) Bucket(i int) (count int, lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.buckets))
	return h.buckets[i], h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Quantile returns an estimate of the q-quantile (0..1) assuming uniform
// distribution within buckets; outliers clamp to the range ends.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	target := q * float64(h.n)
	acc := float64(h.under)
	if acc >= target {
		return h.Lo
	}
	w := (h.Hi - h.Lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		if acc+float64(c) >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.Lo + (float64(i)+frac)*w
		}
		acc += float64(c)
	}
	return h.Hi
}

// HistogramSnapshot is an exportable point-in-time view of a Histogram,
// safe to marshal as JSON: the quantiles of an empty histogram are 0
// rather than the NaN Quantile reports (NaN has no JSON encoding).
type HistogramSnapshot struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Under  int     `json:"under"`
	Over   int     `json:"over"`
	Counts []int   `json:"counts"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Snapshot copies the histogram's current state for export (hsfqd's
// /metrics endpoint). The bucket counts are copied, so the snapshot stays
// valid while the histogram keeps accumulating.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		N:      h.n,
		Mean:   h.Mean(),
		Lo:     h.Lo,
		Hi:     h.Hi,
		Under:  h.under,
		Over:   h.over,
		Counts: append([]int(nil), h.buckets...),
	}
	if h.n > 0 {
		s.P50 = h.Quantile(0.50)
		s.P90 = h.Quantile(0.90)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// WriteTo renders the histogram as rows of "lo-hi count bar".
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	max := 1
	for _, c := range h.buckets {
		if c > max {
			max = c
		}
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s  %6d\n", fmt.Sprintf("< %.3g", h.Lo), h.under)
	}
	for i := range h.buckets {
		c, lo, hi := h.Bucket(i)
		bar := strings.Repeat("█", c*40/max)
		fmt.Fprintf(&b, "%12s  %6d %s\n", fmt.Sprintf("%.3g-%.3g", lo, hi), c, bar)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%12s  %6d\n", fmt.Sprintf(">= %.3g", h.Hi), h.over)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
