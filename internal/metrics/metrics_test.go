package metrics

import (
	"math"
	"strings"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func TestSamplerSeries(t *testing.T) {
	eng := sim.NewEngine()
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	s := NewSampler(sim.Second, a, b)
	s.Install(eng, 3*sim.Second)
	// Simulate work accrual between samples.
	eng.At(500*sim.Millisecond, func() { a.Done = 10; b.Done = 5 })
	eng.At(1500*sim.Millisecond, func() { a.Done = 30; b.Done = 10 })
	eng.At(2500*sim.Millisecond, func() { a.Done = 60; b.Done = 30 })
	eng.Run()

	if got := s.Times(); len(got) != 4 || got[3] != 3*sim.Second {
		t.Fatalf("times %v", got)
	}
	if got := s.Cumulative(0); got[0] != 0 || got[1] != 10 || got[2] != 30 || got[3] != 60 {
		t.Errorf("cumulative %v", got)
	}
	if got := s.Deltas(0); got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("deltas %v", got)
	}
	r := s.RatioSeries(0, 1)
	if r[0] != 2 || r[1] != 4 || r[2] != 1.5 {
		t.Errorf("ratios %v", r)
	}
}

func TestSamplerRatioNaNOnZero(t *testing.T) {
	eng := sim.NewEngine()
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	s := NewSampler(sim.Second, a, b)
	s.Install(eng, sim.Second)
	eng.At(500*sim.Millisecond, func() { a.Done = 10 })
	eng.Run()
	if r := s.RatioSeries(0, 1); !math.IsNaN(r[0]) {
		t.Errorf("ratio %v, want NaN", r)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]sched.Work{100, 100, 100}, []float64{1, 1, 1}); got != 1 {
		t.Errorf("perfect fairness index %v", got)
	}
	// Weighted: 300 at weight 3 and 100 at weight 1 is perfectly fair.
	if got := JainIndex([]sched.Work{300, 100}, []float64{3, 1}); got != 1 {
		t.Errorf("weighted fairness index %v", got)
	}
	got := JainIndex([]sched.Work{100, 0}, []float64{1, 1})
	if got > 0.51 || got < 0.49 {
		t.Errorf("one-sided index %v, want 0.5", got)
	}
	if got := JainIndex([]sched.Work{0, 0}, []float64{1, 1}); got != 1 {
		t.Errorf("all-zero index %v", got)
	}
}

func TestMaxNormalizedGap(t *testing.T) {
	if got := MaxNormalizedGap([]sched.Work{300, 100}, []float64{3, 1}); got != 0 {
		t.Errorf("gap %v", got)
	}
	if got := MaxNormalizedGap([]sched.Work{100, 100}, []float64{1, 2}); got != 50 {
		t.Errorf("gap %v, want 50", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CV of constants %v", got)
	}
	got := CoefficientOfVariation([]float64{1, 3})
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CV %v, want 0.5", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mean CV %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Mean != 3 {
		t.Errorf("%+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	if !strings.Contains(s.String(), "p50=3.000") {
		t.Errorf("summary string %q", s.String())
	}
	// Summarize must not mutate its input.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestDurations(t *testing.T) {
	got := Durations([]sim.Time{sim.Millisecond, 2500 * sim.Microsecond})
	if got[0] != 1 || got[1] != 2.5 {
		t.Errorf("%v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value", "ratio")
	tbl.AddRow("alpha", 42, 1.5)
	tbl.AddRow("b", int64(7), math.NaN())
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Errorf("row %q", lines[2])
	}
	if !strings.Contains(lines[3], "-") { // NaN renders as -
		t.Errorf("NaN row %q", lines[3])
	}
}

func TestAsciiPlot(t *testing.T) {
	var b strings.Builder
	err := AsciiPlot(&b, 5, map[rune][]float64{
		'a': {0, 1, 2, 3, 4},
		'b': {4, 3, 2, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("plot missing marks:\n%s", out)
	}
	// Empty input.
	b.Reset()
	if err := AsciiPlot(&b, 5, nil); err != nil || !strings.Contains(b.String(), "no data") {
		t.Errorf("empty plot: %v %q", err, b.String())
	}
	// Flat series must not divide by zero.
	b.Reset()
	if err := AsciiPlot(&b, 3, map[rune][]float64{'x': {2, 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	r := NewLatencyRecorder(a)

	r.OnWake(a, 100)
	r.OnDispatch(a, 150)
	// Untracked thread ignored.
	r.OnWake(b, 100)
	r.OnDispatch(b, 500)
	// Re-dispatch without a wake (preemption resume) records nothing.
	r.OnDispatch(a, 300)
	// Second wake.
	r.OnWake(a, 1000)
	r.OnDispatch(a, 1010)

	got := r.Latencies(a)
	if len(got) != 2 || got[0] != 50 || got[1] != 10 {
		t.Errorf("latencies %v", got)
	}
	if r.MaxLatency(a) != 50 {
		t.Errorf("max %v", r.MaxLatency(a))
	}
	if len(r.Latencies(b)) != 0 {
		t.Error("untracked thread recorded")
	}
	// Untargeted recorder tracks everything.
	all := NewLatencyRecorder()
	all.OnWake(b, 0)
	all.OnDispatch(b, 7)
	if all.MaxLatency(b) != 7 {
		t.Error("untargeted recorder missed thread")
	}
}

func TestLatencyRecorderDoubleWake(t *testing.T) {
	// Two wakes without a dispatch: latency measured from the first.
	a := sched.NewThread(1, "a", 1)
	r := NewLatencyRecorder(a)
	r.OnWake(a, 100)
	r.OnWake(a, 200)
	r.OnDispatch(a, 300)
	if got := r.Latencies(a); len(got) != 1 || got[0] != 200 {
		t.Errorf("latencies %v", got)
	}
}
