package metrics

import (
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// LatencyRecorder observes machine events and records, per tracked thread,
// the scheduling latency of each wakeup: "the duration for which a thread
// has to wait prior to getting access to the CPU after its clock
// interrupt" (Fig. 9a).
type LatencyRecorder struct {
	cpu.BaseListener
	tracked map[*sched.Thread]bool
	wokeAt  map[*sched.Thread]sim.Time
	lat     map[*sched.Thread][]sim.Time
}

// NewLatencyRecorder tracks the given threads; with none given it tracks
// every thread it sees.
func NewLatencyRecorder(threads ...*sched.Thread) *LatencyRecorder {
	r := &LatencyRecorder{
		wokeAt: make(map[*sched.Thread]sim.Time),
		lat:    make(map[*sched.Thread][]sim.Time),
	}
	if len(threads) > 0 {
		r.tracked = make(map[*sched.Thread]bool, len(threads))
		for _, t := range threads {
			r.tracked[t] = true
		}
	}
	return r
}

func (r *LatencyRecorder) tracks(t *sched.Thread) bool {
	return r.tracked == nil || r.tracked[t]
}

// OnWake implements cpu.Listener.
func (r *LatencyRecorder) OnWake(t *sched.Thread, now sim.Time) {
	if !r.tracks(t) {
		return
	}
	if _, pending := r.wokeAt[t]; !pending {
		r.wokeAt[t] = now
	}
}

// OnDispatch implements cpu.Listener.
func (r *LatencyRecorder) OnDispatch(t *sched.Thread, now sim.Time) {
	if !r.tracks(t) {
		return
	}
	if at, pending := r.wokeAt[t]; pending {
		r.lat[t] = append(r.lat[t], now-at)
		delete(r.wokeAt, t)
	}
}

// Latencies returns the recorded wake-to-dispatch latencies of t.
func (r *LatencyRecorder) Latencies(t *sched.Thread) []sim.Time {
	out := make([]sim.Time, len(r.lat[t]))
	copy(out, r.lat[t])
	return out
}

// MaxLatency returns the largest recorded latency of t, or 0.
func (r *LatencyRecorder) MaxLatency(t *sched.Thread) sim.Time {
	var max sim.Time
	for _, l := range r.lat[t] {
		if l > max {
			max = l
		}
	}
	return max
}
