package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42})
	if h.N() != 8 {
		t.Errorf("n=%d", h.N())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers %d %d", under, over)
	}
	c0, lo, hi := h.Bucket(0) // {0, 1.9}
	if c0 != 2 || lo != 0 || hi != 2 {
		t.Errorf("bucket 0: %d [%v,%v)", c0, lo, hi)
	}
	if c1, _, _ := h.Bucket(1); c1 != 1 { // 2
		t.Errorf("bucket 1: %d", c1)
	}
	if c4, _, _ := h.Bucket(4); c4 != 1 { // 9.999
		t.Errorf("bucket 4: %d", c4)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("p50 = %v", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 2 {
		t.Errorf("p90 = %v", q)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestHistogramMeanAndRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.AddAll([]float64{1, 1, 3, -5, 100})
	if h.Mean() != 20 {
		t.Errorf("mean %v", h.Mean())
	}
	var b strings.Builder
	if _, err := h.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"< 0", ">= 4", "1-2", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad range did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
