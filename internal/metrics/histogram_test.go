package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42})
	if h.N() != 8 {
		t.Errorf("n=%d", h.N())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers %d %d", under, over)
	}
	c0, lo, hi := h.Bucket(0) // {0, 1.9}
	if c0 != 2 || lo != 0 || hi != 2 {
		t.Errorf("bucket 0: %d [%v,%v)", c0, lo, hi)
	}
	if c1, _, _ := h.Bucket(1); c1 != 1 { // 2
		t.Errorf("bucket 1: %d", c1)
	}
	if c4, _, _ := h.Bucket(4); c4 != 1 { // 9.999
		t.Errorf("bucket 4: %d", c4)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("p50 = %v", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 2 {
		t.Errorf("p90 = %v", q)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestHistogramMeanAndRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.AddAll([]float64{1, 1, 3, -5, 100})
	if h.Mean() != 20 {
		t.Errorf("mean %v", h.Mean())
	}
	var b strings.Builder
	if _, err := h.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"< 0", ">= 4", "1-2", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramEmpty: every accessor must behave on a histogram that never
// saw a value — hsfqd snapshots endpoint latency histograms that may not
// have served a request yet.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.N() != 0 || h.Mean() != 0 {
		t.Errorf("n=%d mean=%v", h.N(), h.Mean())
	}
	if !math.IsNaN(h.Quantile(0.99)) {
		t.Error("empty quantile not NaN")
	}
	var b strings.Builder
	if _, err := h.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if snap.N != 0 || snap.P50 != 0 || snap.P99 != 0 {
		t.Errorf("empty snapshot %+v", snap)
	}
	if len(snap.Counts) != 5 {
		t.Errorf("snapshot counts %v", snap.Counts)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("empty snapshot does not marshal: %v", err)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	if h.N() != 1 || h.Mean() != 3 {
		t.Errorf("n=%d mean=%v", h.N(), h.Mean())
	}
	// Every quantile lands inside the sample's bucket [2, 4).
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if v := h.Quantile(q); v < 2 || v > 4 {
			t.Errorf("Quantile(%v) = %v outside [2,4]", q, v)
		}
	}
	snap := h.Snapshot()
	if snap.Counts[1] != 1 || snap.P50 < 2 || snap.P50 > 4 {
		t.Errorf("snapshot %+v", snap)
	}
}

// TestHistogramOverflowOnly: values entirely above the range must land in
// the overflow counter, clamp quantiles to Hi, and survive a snapshot.
func TestHistogramOverflowOnly(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{10, 50, 1e9})
	if under, over := h.Outliers(); under != 0 || over != 3 {
		t.Errorf("outliers %d %d", under, over)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("overflow quantile %v, want clamp to Hi", q)
	}
	snap := h.Snapshot()
	if snap.Over != 3 || snap.P99 != 10 {
		t.Errorf("snapshot %+v", snap)
	}
	for _, c := range snap.Counts {
		if c != 0 {
			t.Errorf("in-range bucket counted an overflow value: %v", snap.Counts)
		}
	}
	// Underflow-only clamps to Lo symmetrically.
	h2 := NewHistogram(5, 10, 5)
	h2.Add(-1)
	if q := h2.Quantile(0.5); q != 5 {
		t.Errorf("underflow quantile %v, want clamp to Lo", q)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad range did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
