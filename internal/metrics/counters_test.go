package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetOrderAndValues(t *testing.T) {
	c := NewCounterSet("dispatched", "retried")
	c.Inc("dispatched")
	c.Add("dispatched", 2)
	c.Inc("hedged") // late registration appends
	if got := c.Get("dispatched"); got != 3 {
		t.Errorf("dispatched = %d, want 3", got)
	}
	if got := c.Get("retried"); got != 0 {
		t.Errorf("retried = %d, want 0", got)
	}
	if got := c.String(); got != "dispatched=3 retried=0 hedged=1" {
		t.Errorf("String() = %q", got)
	}
	snap := c.Snapshot()
	if snap["hedged"] != 1 || len(snap) != 3 {
		t.Errorf("snapshot %v", snap)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet("n")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
