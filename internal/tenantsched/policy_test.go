package tenantsched

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy(strings.NewReader(`{
	  "default_weight": 2,
	  "default_quota": 10,
	  "strict": true,
	  "tenants": {
	    "gold":   {"weight": 4, "quota": 64, "key": "sekrit"},
	    "bronze": {"weight": 1}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.weightOf("gold"); got != 4 {
		t.Errorf("gold weight %v", got)
	}
	if got := p.weightOf("bronze"); got != 1 {
		t.Errorf("bronze weight %v", got)
	}
	if got := p.weightOf("stranger"); got != 2 {
		t.Errorf("default weight %v", got)
	}
	if got := p.quotaOf("gold", 5); got != 64 {
		t.Errorf("gold quota %d", got)
	}
	if got := p.quotaOf("bronze", 5); got != 10 {
		t.Errorf("bronze quota %d (want default_quota)", got)
	}
	if names := p.TenantNames(); len(names) != 2 || names[0] != "bronze" || names[1] != "gold" {
		t.Errorf("names %v", names)
	}
}

func TestParsePolicyRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown field":   `{"bogus": 1}`,
		"bad name":        `{"tenants": {"-dash-first": {}}}`,
		"slash name":      `{"tenants": {"a/b": {}}}`,
		"negative weight": `{"tenants": {"a": {"weight": -1}}}`,
		"negative quota":  `{"tenants": {"a": {"quota": -1}}}`,
		"malformed":       `{"tenants": `,
	} {
		if _, err := ParsePolicy(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	p := &Policy{}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.weightOf("anyone") != 1 {
		t.Errorf("zero policy weight %v", p.weightOf("anyone"))
	}
	if p.quotaOf("anyone", 16) != 16 {
		t.Errorf("zero policy quota %d (want fallback)", p.quotaOf("anyone", 16))
	}
}

func TestIdentify(t *testing.T) {
	p := &Policy{Tenants: map[string]TenantPolicy{
		"gold": {Weight: 4, Key: "sekrit"},
		"open": {Weight: 1},
	}}

	// Header-less traffic is the default tenant.
	if name, err := p.Identify("", ""); err != nil || name != DefaultTenant {
		t.Errorf("headerless: %q %v", name, err)
	}
	// A keyed tenant needs its key; the right key passes.
	if _, err := p.Identify("gold", ""); err == nil || err.Status != 401 {
		t.Errorf("missing key: %v", err)
	}
	if _, err := p.Identify("gold", "wrong"); err == nil || err.Status != 401 {
		t.Errorf("wrong key: %v", err)
	}
	if name, err := p.Identify("gold", "sekrit"); err != nil || name != "gold" {
		t.Errorf("right key: %q %v", name, err)
	}
	// Keyless tenants and unknown tenants pass under a lax policy.
	if name, err := p.Identify("open", ""); err != nil || name != "open" {
		t.Errorf("open: %q %v", name, err)
	}
	if name, err := p.Identify("stranger", ""); err != nil || name != "stranger" {
		t.Errorf("stranger under lax policy: %q %v", name, err)
	}
	// Malformed names are a 400 regardless of policy.
	for _, bad := range []string{"-x", ".hidden", "a/b", strings.Repeat("a", 65), "sp ace"} {
		if _, err := p.Identify(bad, ""); err == nil || err.Status != 400 {
			t.Errorf("bad name %q: %v", bad, err)
		}
	}

	// Strict policies reject unknown tenants with 403, but never the
	// default tenant.
	p.Strict = true
	if _, err := p.Identify("stranger", ""); err == nil || err.Status != 403 {
		t.Errorf("stranger under strict policy: %v", err)
	}
	if name, err := p.Identify("", ""); err != nil || name != DefaultTenant {
		t.Errorf("headerless under strict policy: %q %v", name, err)
	}
}
