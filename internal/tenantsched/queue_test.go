package tenantsched

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// drainOne pulls a single request synchronously and completes it with the
// given service time, returning the dispatched task's effect.
func drainOne(t *testing.T, q *Queue, d time.Duration) {
	t.Helper()
	task, finish, ok := q.Next()
	if !ok {
		t.Fatal("Next returned ok=false with work queued")
	}
	task()
	finish(d)
}

func TestSingleTenantFIFOOrder(t *testing.T) {
	q := NewQueue(nil, Options{})
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if err := q.Submit(DefaultTenant, "simulate", func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		drainOne(t, q, time.Millisecond)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dispatch order %v, want FIFO", got)
		}
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaShedIsPerTenant(t *testing.T) {
	p := &Policy{Tenants: map[string]TenantPolicy{
		"small": {Quota: 2},
		"big":   {Quota: 8},
	}}
	q := NewQueue(p, Options{})
	for i := 0; i < 2; i++ {
		if err := q.Submit("small", "simulate", func() {}); err != nil {
			t.Fatal(err)
		}
	}
	err := q.Submit("small", "simulate", func() {})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("over-quota submit: %v, want ErrShed", err)
	}
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("over-quota submit: %T, want *ShedError", err)
	}
	if se.Tenant != "small" || se.Backlog != 2 {
		t.Errorf("ShedError = %+v", se)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("RetryAfter %v < 1s floor", se.RetryAfter)
	}
	// The other tenant's admission is untouched by small's full queue.
	if err := q.Submit("big", "simulate", func() {}); err != nil {
		t.Fatalf("big tenant shed by small tenant's backlog: %v", err)
	}
	snaps, _ := q.Snapshot()
	if snaps["small"].Shed != 1 || snaps["small"].Submitted != 2 {
		t.Errorf("small snapshot %+v", snaps["small"])
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainSemantics(t *testing.T) {
	q := NewQueue(nil, Options{})
	ran := 0
	for i := 0; i < 3; i++ {
		if err := q.Submit(DefaultTenant, "simulate", func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Submit(DefaultTenant, "simulate", func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after Close: %v, want ErrDraining", err)
	}
	// Queued work still drains...
	for i := 0; i < 3; i++ {
		drainOne(t, q, time.Millisecond)
	}
	if ran != 3 {
		t.Fatalf("ran %d of 3 queued tasks", ran)
	}
	// ...then Next reports completion instead of blocking.
	if _, _, ok := q.Next(); ok {
		t.Fatal("Next returned work from a drained queue")
	}
}

func TestNextBlocksUntilSubmit(t *testing.T) {
	q := NewQueue(nil, Options{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		task, finish, ok := q.Next()
		if !ok {
			t.Error("Next returned ok=false before Close")
			return
		}
		task()
		finish(time.Millisecond)
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer block
	if err := q.Submit(DefaultTenant, "simulate", func() {}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Next never woke after Submit")
	}
}

// TestWeightedDispatchRatio saturates two tenants with equal-cost requests
// at weights 3:1 and checks the dispatch counts land on the weight ratio
// to within the SFQ fairness bound (one request's worth per tenant).
func TestWeightedDispatchRatio(t *testing.T) {
	p := &Policy{Tenants: map[string]TenantPolicy{
		"gold":   {Weight: 3, Quota: 200},
		"bronze": {Weight: 1, Quota: 200},
	}}
	q := NewQueue(p, Options{})
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		if err := q.Submit("gold", "simulate", func() { counts["gold"]++ }); err != nil {
			t.Fatal(err)
		}
		if err := q.Submit("bronze", "simulate", func() { counts["bronze"]++ }); err != nil {
			t.Fatal(err)
		}
	}
	const decisions = 80
	for i := 0; i < decisions; i++ {
		drainOne(t, q, time.Millisecond)
	}
	// Theorem 1 with unit requests: |n_gold/3 - n_bronze/1| <= 1/3 + 1,
	// so with 80 decisions gold gets 60 +- 1 and bronze 20 -+ 1.
	if g := counts["gold"]; g < 59 || g > 61 {
		t.Errorf("gold dispatched %d of %d, want 60 +- 1 (bronze %d)", g, decisions, counts["bronze"])
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetPolicyReload(t *testing.T) {
	q := NewQueue(&Policy{Tenants: map[string]TenantPolicy{
		"a": {Weight: 1, Quota: 4},
	}}, Options{})
	if err := q.Submit("a", "simulate", func() {}); err != nil {
		t.Fatal(err)
	}
	q.SetPolicy(&Policy{Tenants: map[string]TenantPolicy{
		"a": {Weight: 5, Quota: 1},
	}})
	snaps, _ := q.Snapshot()
	if snaps["a"].Weight != 5 || snaps["a"].Quota != 1 {
		t.Errorf("after reload: %+v", snaps["a"])
	}
	// The shrunk quota bites immediately: backlog 1 >= quota 1.
	if err := q.Submit("a", "simulate", func() {}); !errors.Is(err, ErrShed) {
		t.Fatalf("submit over shrunk quota: %v, want ErrShed", err)
	}
	// New tenants are created under the new policy's defaults.
	q.SetPolicy(&Policy{DefaultWeight: 2})
	if err := q.Submit("fresh", "simulate", func() {}); err != nil {
		t.Fatal(err)
	}
	snaps, _ = q.Snapshot()
	if snaps["fresh"].Weight != 2 {
		t.Errorf("fresh tenant weight %v, want new default 2", snaps["fresh"].Weight)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterTracksTenantBacklog seeds the service-time estimate, then
// sheds from two tenants with different backlogs: the deeper backlog must
// get the longer Retry-After — the per-tenant derivation the global FIFO
// could not provide.
func TestRetryAfterTracksTenantBacklog(t *testing.T) {
	p := &Policy{Tenants: map[string]TenantPolicy{
		"deep":    {Quota: 8},
		"shallow": {Quota: 1},
	}}
	q := NewQueue(p, Options{Workers: 1})
	// One completed 2s request seeds the EWMA.
	if err := q.Submit("deep", "simulate", func() {}); err != nil {
		t.Fatal(err)
	}
	drainOne(t, q, 2*time.Second)

	for i := 0; i < 8; i++ {
		if err := q.Submit("deep", "simulate", func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Submit("shallow", "simulate", func() {}); err != nil {
		t.Fatal(err)
	}
	shedAfter := func(tenant string) time.Duration {
		err := q.Submit(tenant, "simulate", func() {})
		var se *ShedError
		if !errors.As(err, &se) {
			t.Fatalf("submit %s: %v, want *ShedError", tenant, err)
		}
		return se.RetryAfter
	}
	deep, shallow := shedAfter("deep"), shedAfter("shallow")
	if deep <= shallow {
		t.Errorf("Retry-After deep(backlog 8)=%v <= shallow(backlog 1)=%v; not tracking tenant backlog", deep, shallow)
	}
	if deep < time.Second || deep > 60*time.Second {
		t.Errorf("Retry-After %v outside [1s, 60s]", deep)
	}
}

// TestConcurrentStress exercises the queue the way the serving pool does:
// several producers across several tenants against several consumers, with
// the race detector watching, then checks the tree and bookkeeping
// invariants and that every admitted request ran exactly once.
func TestConcurrentStress(t *testing.T) {
	p := &Policy{
		DefaultQuota: 1000,
		Tenants: map[string]TenantPolicy{
			"a": {Weight: 3},
			"b": {Weight: 1},
			"c": {Weight: 2},
		},
	}
	q := NewQueue(p, Options{Workers: 4})
	var executed sync.Map
	var admitted, shed int64
	var mu sync.Mutex

	var consumers sync.WaitGroup
	for w := 0; w < 4; w++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				task, finish, ok := q.Next()
				if !ok {
					return
				}
				start := time.Now()
				task()
				finish(time.Since(start) + time.Microsecond)
			}
		}()
	}

	var producers sync.WaitGroup
	for pi, tenant := range []string{"a", "b", "c"} {
		for g := 0; g < 2; g++ {
			producers.Add(1)
			go func(tenant string, base int) {
				defer producers.Done()
				for i := 0; i < 50; i++ {
					id := base*1000 + i
					err := q.Submit(tenant, "simulate", func() {
						if _, dup := executed.LoadOrStore(id, true); dup {
							t.Errorf("task %d executed twice", id)
						}
					})
					mu.Lock()
					if err != nil {
						shed++
					} else {
						admitted++
					}
					mu.Unlock()
				}
			}(tenant, pi*10+g)
		}
	}
	producers.Wait()
	q.Close()
	consumers.Wait()

	var ran int64
	executed.Range(func(_, _ any) bool { ran++; return true })
	if ran != admitted {
		t.Errorf("admitted %d but executed %d", admitted, ran)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := q.Snapshot()
	var completed, snapShed int64
	for _, s := range snaps {
		completed += s.Completed
		snapShed += s.Shed
		if s.QueueDepth != 0 || s.InFlight != 0 {
			t.Errorf("post-drain snapshot %+v", s)
		}
	}
	if completed != admitted || snapShed != shed {
		t.Errorf("snapshot completed %d shed %d, want %d / %d", completed, snapShed, admitted, shed)
	}
	if q.Backlog() != 0 {
		t.Errorf("backlog %d after drain", q.Backlog())
	}
}
