package tenantsched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hsfq/internal/core"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// ErrShed is the sentinel a *ShedError matches with errors.Is: the
// submission was refused because the tenant's backlog is at its quota.
var ErrShed = errors.New("tenantsched: tenant queue full")

// ErrDraining rejects submissions once Close has begun.
var ErrDraining = errors.New("tenantsched: draining")

// ShedError reports a per-tenant admission refusal, with enough context
// for the serving layer to answer an honest per-tenant Retry-After: the
// refused tenant's own backlog and a wait estimate derived from it (and
// from the tenant's weight share and the observed mean service time) —
// not from any global queue depth.
type ShedError struct {
	Tenant  string
	Backlog int
	// RetryAfter estimates when a slot frees up: backlog x mean service
	// time over the tenant's share of the workers, clamped to [1s, 60s].
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("tenantsched: tenant %q queue full (%d queued, retry after %v)",
		e.Tenant, e.Backlog, e.RetryAfter)
}

// Is makes errors.Is(err, ErrShed) work.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// Options parameterizes a Queue.
type Options struct {
	// Workers is the number of concurrent consumers (the serving pool
	// size); it scales the Retry-After estimate. <= 0 means 1.
	Workers int
	// FallbackQuota is the per-tenant backlog cap used when neither the
	// tenant's entry nor the policy's default_quota sets one; <= 0 means
	// 64. A policy-less queue therefore sheds exactly like the global
	// FIFO of the same depth it replaced, because all traffic shares the
	// default tenant.
	FallbackQuota int
}

// classQueue is one (tenant, endpoint class) FIFO, represented in the
// scheduling tree by a single thread attached to the tenant's leaf node.
type classQueue struct {
	tn     *tenant
	th     *sched.Thread
	fifo   []func()
	queued bool // thread currently in the structure's runnable set
}

// tenant is one scheduling class: a leaf node of the tree whose weight is
// the tenant's policy weight, plus admission and accounting state.
type tenant struct {
	name     string
	nodeID   core.NodeID
	node     *core.Node
	weight   float64
	quota    int
	backlog  int // queued across classes, excluding in-flight
	inflight int
	classes  map[string]*classQueue

	submitted, completed, shed int64
}

// Queue is a bounded multi-tenant request queue whose dispatch order is
// decided by a hierarchical SFQ tree: the root schedules tenant nodes by
// SFQ (weights from the policy), each tenant leaf schedules its endpoint
// classes by SFQ, and within a class requests are FIFO. Virtual time
// advances by measured request service time, charged at completion — the
// paper's "the length of the quantum is required only when it finishes
// execution", with a request's service time as the quantum.
//
// Concurrent dispatch closes each Pick's critical section with an
// immediate zero-work charge, the only charge shape that lets several of
// one tenant's requests be in service at once without distorting the
// tags: a class whose FIFO still holds requests stays in the runnable
// set with its start tag unchanged (for a continuing thread S equals F,
// so the zero charge is a tag no-op that merely refreshes the FIFO
// tie-break), while a class whose FIFO went empty leaves the runnable
// set exactly like a blocking thread. The measured service time is then
// charged at completion — the paper's deferred accounting — advancing
// the tenant's tags in proportion to service consumed over weight.
// Dequeue-and-re-enqueue at dispatch (the multicore machine's protocol)
// would be wrong here: re-entry stamps S = max(v, F), which strips a
// still-backlogged tenant of its weight advantage every dispatch and
// collapses weighted SFQ into round-robin.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond

	st       *core.Structure
	pol      *Policy
	opts     Options
	tenants  map[string]*tenant
	byThread map[*sched.Thread]*classQueue
	nextID   int

	backlog int // total queued across tenants
	closed  bool

	start       time.Time
	meanService float64 // EWMA of service seconds, feeds Retry-After
}

// NewQueue builds a queue under the given policy (nil means the zero
// policy: open admission, weight 1, fallback quota).
func NewQueue(p *Policy, opts Options) *Queue {
	if p == nil {
		p = &Policy{}
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.FallbackQuota <= 0 {
		opts.FallbackQuota = 64
	}
	q := &Queue{
		st:       core.NewStructure(),
		pol:      p,
		opts:     opts,
		tenants:  make(map[string]*tenant),
		byThread: make(map[*sched.Thread]*classQueue),
		nextID:   1,
		start:    time.Now(),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// clock is the "now" handed to the scheduling tree. SFQ is driven purely
// by virtual time, but the Scheduler contract carries real time, so pass
// the queue's monotonic age.
func (q *Queue) clock() sim.Time { return sim.Time(time.Since(q.start)) }

// tenantLocked returns (creating on first contact) the tenant's class
// state. New tenants enter the tree at S = max(v, 0): they cannot claim
// credit for service that predates their arrival.
func (q *Queue) tenantLocked(name string) *tenant {
	if tn, ok := q.tenants[name]; ok {
		return tn
	}
	id, err := q.st.MknodPath("/"+name, q.pol.weightOf(name), sched.NewSFQ(0))
	if err != nil {
		// Names were validated by Identify/ValidTenantName; a collision
		// here is a programming error.
		panic(fmt.Sprintf("tenantsched: mknod /%s: %v", name, err))
	}
	tn := &tenant{
		name:    name,
		nodeID:  id,
		node:    q.st.Node(id),
		weight:  q.pol.weightOf(name),
		quota:   q.pol.quotaOf(name, q.opts.FallbackQuota),
		classes: make(map[string]*classQueue),
	}
	q.tenants[name] = tn
	return tn
}

// classLocked returns (creating on first contact) the tenant's per-class
// FIFO and its thread in the tree.
func (q *Queue) classLocked(tn *tenant, class string) *classQueue {
	if cq, ok := tn.classes[class]; ok {
		return cq
	}
	th := sched.NewThread(q.nextID, tn.name+"/"+class, 1)
	q.nextID++
	if err := q.st.Attach(th, tn.nodeID); err != nil {
		panic(fmt.Sprintf("tenantsched: attach %s: %v", th, err))
	}
	cq := &classQueue{tn: tn, th: th}
	tn.classes[class] = cq
	q.byThread[th] = cq
	return cq
}

// Submit admits task into tenant's class FIFO, or refuses it without
// blocking: ErrDraining once Close has begun, or a *ShedError when the
// tenant's backlog is at its quota. Admission is strictly per tenant — a
// flooding tenant exhausts its own quota and nobody else's.
func (q *Queue) Submit(tenantName, class string, task func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	tn := q.tenantLocked(tenantName)
	if tn.backlog >= tn.quota {
		tn.shed++
		return &ShedError{Tenant: tenantName, Backlog: tn.backlog, RetryAfter: q.retryAfterLocked(tn)}
	}
	cq := q.classLocked(tn, class)
	cq.fifo = append(cq.fifo, task)
	tn.backlog++
	tn.submitted++
	q.backlog++
	if !cq.queued {
		q.st.Enqueue(cq.th, q.clock())
		cq.queued = true
	}
	q.cond.Signal()
	return nil
}

// retryAfterLocked estimates when the tenant will next have queue room:
// its backlog, drained at the tenant's weighted share of the worker pool,
// at the observed mean service time per request. Clamped to [1s, 60s]
// and rounded up to whole seconds (the Retry-After header granularity).
func (q *Queue) retryAfterLocked(tn *tenant) time.Duration {
	mean := q.meanService
	if mean <= 0 {
		return time.Second
	}
	var activeWeight float64
	for _, t := range q.tenants {
		if t.backlog > 0 || t.inflight > 0 || t == tn {
			activeWeight += t.weight
		}
	}
	share := tn.weight / activeWeight
	sec := float64(tn.backlog) * mean / (float64(q.opts.Workers) * share)
	sec = math.Ceil(sec)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return time.Duration(sec) * time.Second
}

// Next blocks until a request is available (or the queue is closed and
// fully drained, in which case ok is false) and dispatches the one the
// SFQ tree orders first: the root picks the tenant with the minimum
// start tag, the tenant's leaf picks the class, the class FIFO yields
// its head. The returned finish func MUST be called exactly once with
// the request's measured service time; it performs the virtual-time
// charge that keeps the tree fair.
func (q *Queue) Next() (task func(), finish func(time.Duration), ok bool) {
	q.mu.Lock()
	for q.backlog == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.backlog == 0 {
		q.mu.Unlock()
		return nil, nil, false
	}
	now := q.clock()
	th := q.st.Pick(now)
	cq := q.byThread[th]
	task = cq.fifo[0]
	cq.fifo[0] = nil
	cq.fifo = cq.fifo[1:]
	cq.tn.backlog--
	q.backlog--
	// The zero-work charge ends the Pick critical section (so other
	// workers may Pick before this request completes) without moving any
	// tags: the class stays runnable at an unchanged start tag while its
	// FIFO holds more requests, and leaves the runnable set like a
	// blocking thread when it is out of work.
	still := len(cq.fifo) > 0
	q.st.Charge(th, 0, now, still)
	cq.queued = still
	cq.tn.inflight++
	q.mu.Unlock()
	return task, func(d time.Duration) { q.complete(cq, d) }, true
}

// complete charges the finished request's measured service time to its
// class thread, advancing the tenant's tags through the whole tree; this
// is the hsfq_update of the serving layer.
func (q *Queue) complete(cq *classQueue, d time.Duration) {
	used := sched.Work(d.Nanoseconds())
	if used < 1 {
		used = 1 // zero-length charges would stall virtual time
	}
	q.mu.Lock()
	now := q.clock()
	if cq.queued {
		q.st.Charge(cq.th, used, now, true)
	} else {
		// The FIFO went empty at dispatch (or drained since): re-enter
		// the runnable set just long enough to stamp the charge, the
		// same Enqueue+Charge step the multicore machine uses when a
		// dequeued thread's segment ends.
		q.st.Enqueue(cq.th, now)
		q.st.Charge(cq.th, used, now, false)
	}
	cq.tn.inflight--
	cq.tn.completed++
	s := d.Seconds()
	if q.meanService == 0 {
		q.meanService = s
	} else {
		q.meanService += 0.2 * (s - q.meanService)
	}
	q.mu.Unlock()
}

// Close stops admission and wakes every blocked Next. Consumers keep
// draining queued requests; once the backlog is empty Next returns
// ok=false. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Backlog is the number of admitted requests not yet dispatched.
func (q *Queue) Backlog() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.backlog
}

// SetPolicy swaps the policy: existing tenants take their new weights
// (effective at the next charge, exactly like hsfq_admin's weight
// change) and quotas; tenants first seen after the swap are created
// under the new policy. The caller validates the policy first.
func (q *Queue) SetPolicy(p *Policy) {
	if p == nil {
		p = &Policy{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pol = p
	for name, tn := range q.tenants {
		if w := p.weightOf(name); w != tn.weight {
			// SetNodeWeight only fails for unknown nodes or w <= 0;
			// neither can happen here.
			if err := q.st.SetNodeWeight(tn.nodeID, w); err == nil {
				tn.weight = w
			}
		}
		tn.quota = p.quotaOf(name, q.opts.FallbackQuota)
	}
}

// CheckInvariants validates the scheduling tree's structural invariants
// plus the queue's own bookkeeping (backlog totals, queued flags); the
// race/property tests call it after workloads.
func (q *Queue) CheckInvariants() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.st.CheckInvariants(); err != nil {
		return err
	}
	total := 0
	for name, tn := range q.tenants {
		sum := 0
		for class, cq := range tn.classes {
			sum += len(cq.fifo)
			if cq.queued != (len(cq.fifo) > 0) {
				return fmt.Errorf("tenantsched: %s/%s queued=%v with %d queued requests",
					name, class, cq.queued, len(cq.fifo))
			}
		}
		if sum != tn.backlog {
			return fmt.Errorf("tenantsched: tenant %s backlog %d but %d queued requests", name, tn.backlog, sum)
		}
		total += sum
	}
	if total != q.backlog {
		return fmt.Errorf("tenantsched: global backlog %d but %d queued requests", q.backlog, total)
	}
	return nil
}

// TenantSnapshot is a point-in-time view of one tenant's scheduling
// state, for /metrics.
type TenantSnapshot struct {
	Weight    float64 `json:"weight"`
	Quota     int     `json:"quota"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Shed      int64   `json:"shed"`
	// QueueDepth is the tenant's queued (undispatched) backlog.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// StartTag and FinishTag are the tenant node's SFQ tags in the
	// root's virtual-time domain (nanoseconds of service over weight).
	StartTag  float64 `json:"start_tag"`
	FinishTag float64 `json:"finish_tag"`
	// VirtualTimeLag is the root's virtual time minus the tenant's
	// finish tag: how far the tenant's accounted service trails the
	// tree. Busy tenants hover near zero; idle tenants fall behind
	// (large positive lag) and re-enter at the current virtual time.
	VirtualTimeLag float64 `json:"virtual_time_lag"`
}

// Snapshot returns every seen tenant's state plus the root's virtual
// time.
func (q *Queue) Snapshot() (map[string]TenantSnapshot, float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	vt := q.st.Root().VirtualTime()
	out := make(map[string]TenantSnapshot, len(q.tenants))
	for name, tn := range q.tenants {
		start, finish := tn.node.Tags()
		out[name] = TenantSnapshot{
			Weight:         tn.weight,
			Quota:          tn.quota,
			Submitted:      tn.submitted,
			Completed:      tn.completed,
			Shed:           tn.shed,
			QueueDepth:     tn.backlog,
			InFlight:       tn.inflight,
			StartTag:       start,
			FinishTag:      finish,
			VirtualTimeLag: vt - finish,
		}
	}
	return out, vt
}
