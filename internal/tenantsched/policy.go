// Package tenantsched makes hsfqd a first-class user of the paper's own
// algorithm: the serving daemon's request queue is a weighted hierarchical
// SFQ tree (internal/core + internal/sched) whose classes are tenants.
//
// The package has two halves. Policy is the control plane: a JSON file
// mapping tenant names to weights, admission quotas, and optional API
// keys, hot-reloadable on SIGHUP. Queue is the data plane: a bounded
// multi-tenant request queue whose dispatch order is decided by a real
// core.Structure — one SFQ-scheduled leaf node per tenant (node weight =
// tenant weight), one thread per (tenant, endpoint class) inside the
// leaf — with virtual time advanced by each request's measured service
// time. A tenant's requests therefore receive CPU in proportion to its
// weight with exactly the fairness bound of Theorem 1, and a one-tenant
// flood cannot starve the others: the flooding tenant's start tags race
// ahead of the global virtual time and every other tenant's next request
// is dispatched before the flood's backlog.
package tenantsched

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// DefaultTenant is the class requests without an X-Tenant header belong
// to. With no policy file loaded every request lands here, which makes
// the tenant-scheduled queue behave exactly like the single FIFO it
// replaced: one class, FIFO within the class.
const DefaultTenant = "default"

// tenantNameRE bounds tenant names: header-safe, path-safe (they appear
// in metrics keys and logs), and short. The first character is
// alphanumeric so "-" and "." cannot smuggle option-like or dotfile-like
// names through.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidTenantName reports whether name is an acceptable tenant name.
func ValidTenantName(name string) bool { return tenantNameRE.MatchString(name) }

// TenantPolicy is one tenant's entry in the policy file.
type TenantPolicy struct {
	// Weight is the tenant's share of serving capacity relative to its
	// siblings, the phi of the paper; <= 0 selects DefaultWeight.
	Weight float64 `json:"weight,omitempty"`
	// Quota caps the tenant's queued (not yet dispatched) requests;
	// beyond it submissions are shed with a per-tenant 429. <= 0 selects
	// DefaultQuota.
	Quota int `json:"quota,omitempty"`
	// Key, when non-empty, must be presented in X-API-Key by every
	// request claiming this tenant.
	Key string `json:"key,omitempty"`
	// Streams caps the tenant's concurrent live trace streams
	// (GET /v1/trace/{key}?follow=1); beyond it new follows get 429.
	// <= 0 selects DefaultStreams.
	Streams int `json:"streams,omitempty"`
}

// Policy is the tenant policy document, loaded from JSON and hot-swapped
// on SIGHUP. The zero value is a valid open policy: every tenant is
// admitted at weight 1 with the server's fallback quota.
type Policy struct {
	// DefaultWeight applies to tenants without an explicit weight
	// (including unknown tenants); <= 0 means 1.
	DefaultWeight float64 `json:"default_weight,omitempty"`
	// DefaultQuota applies to tenants without an explicit quota; <= 0
	// defers to the queue's fallback (the server's global queue depth,
	// which is what keeps a policy-less daemon byte-compatible with the
	// pre-tenant FIFO).
	DefaultQuota int `json:"default_quota,omitempty"`
	// DefaultStreams applies to tenants without an explicit stream cap;
	// <= 0 defers to the server's fallback.
	DefaultStreams int `json:"default_streams,omitempty"`
	// Strict rejects tenants not named in Tenants with 403 instead of
	// admitting them under the defaults. The default tenant is always
	// admitted so header-less traffic keeps working.
	Strict bool `json:"strict,omitempty"`
	// Tenants maps tenant names to their entries.
	Tenants map[string]TenantPolicy `json:"tenants,omitempty"`
}

// ParsePolicy decodes and validates a policy document. Unknown fields are
// rejected so typos fail loudly at load/reload time rather than silently
// granting default treatment.
func ParsePolicy(r io.Reader) (*Policy, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("tenantsched: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPolicy reads and validates a policy file.
func LoadPolicy(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenantsched: %w", err)
	}
	defer f.Close()
	p, err := ParsePolicy(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// Validate checks the policy document: names must be valid, weights
// positive where given, quotas non-negative.
func (p *Policy) Validate() error {
	if p.DefaultWeight < 0 {
		return fmt.Errorf("tenantsched: default_weight %v is negative", p.DefaultWeight)
	}
	if p.DefaultQuota < 0 {
		return fmt.Errorf("tenantsched: default_quota %d is negative", p.DefaultQuota)
	}
	if p.DefaultStreams < 0 {
		return fmt.Errorf("tenantsched: default_streams %d is negative", p.DefaultStreams)
	}
	for name, t := range p.Tenants {
		if !ValidTenantName(name) {
			return fmt.Errorf("tenantsched: invalid tenant name %q", name)
		}
		if t.Weight < 0 {
			return fmt.Errorf("tenantsched: tenant %q weight %v is negative", name, t.Weight)
		}
		if t.Quota < 0 {
			return fmt.Errorf("tenantsched: tenant %q quota %d is negative", name, t.Quota)
		}
		if t.Streams < 0 {
			return fmt.Errorf("tenantsched: tenant %q streams %d is negative", name, t.Streams)
		}
	}
	return nil
}

// TenantNames returns the tenants explicitly named by the policy, sorted.
func (p *Policy) TenantNames() []string {
	names := make([]string, 0, len(p.Tenants))
	for n := range p.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// weightOf resolves a tenant's effective weight.
func (p *Policy) weightOf(name string) float64 {
	if t, ok := p.Tenants[name]; ok && t.Weight > 0 {
		return t.Weight
	}
	if p.DefaultWeight > 0 {
		return p.DefaultWeight
	}
	return 1
}

// quotaOf resolves a tenant's effective quota; fallback is the queue's
// global default (0 quota entries and 0 default_quota defer to it).
func (p *Policy) quotaOf(name string, fallback int) int {
	if t, ok := p.Tenants[name]; ok && t.Quota > 0 {
		return t.Quota
	}
	if p.DefaultQuota > 0 {
		return p.DefaultQuota
	}
	return fallback
}

// StreamsOf resolves a tenant's concurrent-trace-stream cap; fallback is
// the serving layer's default (0 entries and 0 default_streams defer to
// it).
func (p *Policy) StreamsOf(name string, fallback int) int {
	if t, ok := p.Tenants[name]; ok && t.Streams > 0 {
		return t.Streams
	}
	if p.DefaultStreams > 0 {
		return p.DefaultStreams
	}
	return fallback
}

// AuthError is an identity rejection, carrying the HTTP status the
// serving layer should answer with: 400 for a malformed tenant name, 401
// for a missing or wrong API key, 403 for an unknown tenant under a
// strict policy.
type AuthError struct {
	Status int
	Msg    string
}

func (e *AuthError) Error() string { return e.Msg }

// Identify resolves a request's tenant from its X-Tenant and X-API-Key
// header values. An empty tenant header selects DefaultTenant, which is
// what keeps header-less traffic byte-compatible with the pre-tenant
// daemon. The returned name is valid and admitted under this policy.
func (p *Policy) Identify(tenantHdr, keyHdr string) (string, *AuthError) {
	name := tenantHdr
	if name == "" {
		name = DefaultTenant
	} else if !ValidTenantName(name) {
		return "", &AuthError{Status: 400, Msg: fmt.Sprintf("tenantsched: invalid tenant name %q", tenantHdr)}
	}
	t, known := p.Tenants[name]
	if !known && p.Strict && name != DefaultTenant {
		return "", &AuthError{Status: 403, Msg: fmt.Sprintf("tenantsched: unknown tenant %q (policy is strict)", name)}
	}
	if known && t.Key != "" && keyHdr != t.Key {
		return "", &AuthError{Status: 401, Msg: fmt.Sprintf("tenantsched: tenant %q requires a valid X-API-Key", name)}
	}
	return name, nil
}
