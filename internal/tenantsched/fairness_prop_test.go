// Property-based check that the serving queue inherits Theorem 1 from the
// tree it schedules with: for two tenants f and g continuously backlogged
// over any interval,
//
//	| W_f(t1,t2)/phi_f  -  W_g(t1,t2)/phi_g |  <=  l_f/phi_f + l_g/phi_g
//
// where W is the service time dispatched to the tenant's requests in the
// interval and l is the tenant's maximum single-request service time. The
// harness mirrors internal/sched/fairness_prop_test.go: seeded random
// weights and per-request costs, the bound checked over EVERY interval via
// the range of the prefix differences — but the system under test is the
// whole Queue (Submit/Next/finish), not a bare scheduler, so the dispatch
// protocol (dequeue-on-dispatch, charge-at-completion) is inside the loop.
package tenantsched

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

type tenantTrial struct {
	seed      int64
	wf, wg    float64
	lf, lg    int64 // max service nanoseconds per request
	decisions int
}

func newTenantTrial(seed int64) tenantTrial {
	rng := rand.New(rand.NewSource(seed))
	w := func() float64 { return math.Round((0.1+rng.Float64()*7.9)*100) / 100 }
	l := func() int64 { return 1 + rng.Int63n(2000) }
	return tenantTrial{
		seed: seed, wf: w(), wg: w(), lf: l(), lg: l(),
		decisions: 200 + rng.Intn(300),
	}
}

// driveQueue saturates tenants f and g (both backlogged for the whole
// run), dispatches tr.decisions requests through a single synchronous
// consumer charging random service times, and returns the worst interval
// gap in normalized service alongside the Theorem 1 bound built from the
// observed per-request maxima. It also returns each tenant's completed
// count for the equal-weight corollary.
func driveQueue(t *testing.T, q *Queue, tr tenantTrial) (gap, bound float64, nf, ng int) {
	t.Helper()
	rng := rand.New(rand.NewSource(tr.seed + 1))
	var last string
	for i := 0; i < tr.decisions+5; i++ {
		if err := q.Submit("f", "simulate", func() { last = "f" }); err != nil {
			t.Fatalf("submit f #%d: %v", i, err)
		}
		if err := q.Submit("g", "simulate", func() { last = "g" }); err != nil {
			t.Fatalf("submit g #%d: %v", i, err)
		}
	}
	var df, dg float64     // cumulative normalized service
	var maxLf, maxLg int64 // observed per-request maxima
	minDelta, maxDelta := 0.0, 0.0
	for i := 0; i < tr.decisions; i++ {
		task, finish, ok := q.Next()
		if !ok {
			t.Fatalf("decision %d: Next returned ok=false with both tenants backlogged", i)
		}
		task()
		var used int64
		switch last {
		case "f":
			used = 1 + rng.Int63n(tr.lf)
			df += float64(used) / tr.wf
			if used > maxLf {
				maxLf = used
			}
			nf++
		case "g":
			used = 1 + rng.Int63n(tr.lg)
			dg += float64(used) / tr.wg
			if used > maxLg {
				maxLg = used
			}
			ng++
		default:
			t.Fatalf("decision %d: dispatched task belongs to neither tenant", i)
		}
		finish(time.Duration(used))
		delta := df - dg
		if delta < minDelta {
			minDelta = delta
		}
		if delta > maxDelta {
			maxDelta = delta
		}
	}
	if maxLf == 0 || maxLg == 0 {
		t.Fatalf("a tenant was never dispatched (f %d, g %d of %d decisions)", nf, ng, tr.decisions)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("post-run invariants: %v", err)
	}
	return maxDelta - minDelta, float64(maxLf)/tr.wf + float64(maxLg)/tr.wg, nf, ng
}

const tenantEps = 1e-6

func newTrialQueue(tr tenantTrial) *Queue {
	return NewQueue(&Policy{Tenants: map[string]TenantPolicy{
		"f": {Weight: tr.wf, Quota: 2 * (tr.decisions + 10)},
		"g": {Weight: tr.wg, Quota: 2 * (tr.decisions + 10)},
	}}, Options{Workers: 1})
}

func TestQueueFairnessBoundProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		tr := newTenantTrial(seed)
		gap, bound, _, _ := driveQueue(t, newTrialQueue(tr), tr)
		if gap > bound+tenantEps {
			t.Errorf("trial %d (%+v): fairness gap %v exceeds Theorem 1 bound %v",
				seed, tr, gap, bound)
		}
	}
}

// TestEqualWeightCompletedCounts is the satellite's headline corollary:
// equal weights, saturating load, unit-cost requests — completed counts
// per tenant may differ by at most the SFQ prefix bound, which for unit
// requests at weight parity is l/phi + l/phi = 2 requests.
func TestEqualWeightCompletedCounts(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := newTenantTrial(seed)
		tr.wf, tr.wg = 1, 1
		tr.lf, tr.lg = 1, 1 // every request costs exactly one unit
		_, _, nf, ng := driveQueue(t, newTrialQueue(tr), tr)
		if diff := nf - ng; diff < -2 || diff > 2 {
			t.Errorf("trial %d: completed counts %d vs %d differ by %d > prefix bound 2",
				seed, nf, ng, diff)
		}
	}
}
