package server

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestSimulateWithCheckpointStore extends a served run's horizon and
// checks the daemon's answer is byte-identical to a storeless daemon's:
// the checkpoint store may only change how the result is computed, never
// what is returned.
func TestSimulateWithCheckpointStore(t *testing.T) {
	dir := t.TempDir()
	withStore := New(Config{Workers: 2, QueueDepth: 8, CheckpointDir: filepath.Join(dir, "ck")})
	defer withStore.Drain()
	plain := New(Config{Workers: 2, QueueDepth: 8})
	defer plain.Drain()

	tsStore := httptest.NewServer(withStore)
	defer tsStore.Close()
	tsPlain := httptest.NewServer(plain)
	defer tsPlain.Close()

	short := scenarioJSON(7) // horizon 50ms
	long := strings.Replace(scenarioJSON(7), `"horizon": "50ms"`, `"horizon": "140ms"`, 1)

	if resp, body := post(t, tsStore, "/v1/simulate", short); resp.StatusCode != 200 {
		t.Fatalf("short: %d %s", resp.StatusCode, body)
	}
	resp, got := post(t, tsStore, "/v1/simulate", long)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("long: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	respPlain, want := post(t, tsPlain, "/v1/simulate", long)
	if respPlain.StatusCode != 200 {
		t.Fatalf("plain long: %d", respPlain.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint-resumed response differs from storeless:\n%s\nvs\n%s", got, want)
	}

	// The store directory holds checkpoints for the served horizons.
	matches, err := filepath.Glob(filepath.Join(dir, "ck", "*.ckpt"))
	if err != nil || len(matches) < 2 {
		t.Fatalf("checkpoint files: %v (err %v)", matches, err)
	}
}
