package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
)

// readEvent reads one SSE frame (event name + single data line) from the
// stream, skipping keepalive comments.
func readEvent(t *testing.T, br *bufio.Reader) (name, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended mid-event: %v (name=%q data=%q)", err, name, data)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"): // keepalive comment
		case line == "":
			if name != "" || data != "" {
				return name, data
			}
		}
	}
}

// watchStream opens GET /v1/jobs/{key}?watch=1 and returns a buffered
// reader over the event stream.
func watchStream(t *testing.T, ts *httptest.Server, key string) (*bufio.Reader, func()) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + key + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("watch open: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("watch content type %q", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestJobWatchSSE follows a job from before submission to completion:
// the stream reports unknown → queued → running → done, and the done
// event carries exactly the bytes the POST returned.
func TestJobWatchSSE(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain()
	release := make(chan struct{})
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		<-release
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The job key is the content address, known before submitting.
	cfg, err := simconfig.Parse(strings.NewReader(scenarioJSON(42)))
	if err != nil {
		t.Fatal(err)
	}
	key := sweep.JobKey(cfg, cfg.Seed)

	br, closeStream := watchStream(t, ts, key)
	defer closeStream()
	if name, data := readEvent(t, br); name != "status" || !strings.Contains(data, "unknown") {
		t.Fatalf("initial event %q %q, want unknown status", name, data)
	}

	type posted struct {
		status int
		body   []byte
	}
	done := make(chan posted, 1)
	go func() {
		resp, body := post(t, ts, "/v1/simulate", scenarioJSON(42))
		done <- posted{resp.StatusCode, body}
	}()

	if name, data := readEvent(t, br); name != "status" || !strings.Contains(data, "queued") {
		t.Fatalf("event %q %q, want queued status", name, data)
	}
	if name, data := readEvent(t, br); name != "status" || !strings.Contains(data, "running") {
		t.Fatalf("event %q %q, want running status", name, data)
	}
	close(release)
	name, data := readEvent(t, br)
	if name != "done" {
		t.Fatalf("terminal event %q %q, want done", name, data)
	}
	p := <-done
	if p.status != 200 {
		t.Fatalf("post: %d", p.status)
	}
	if !bytes.Equal([]byte(data), p.body) {
		t.Errorf("done payload differs from response body:\n%s\nvs\n%s", data, p.body)
	}
	// The stream is closed after the terminal event.
	if _, err := br.ReadByte(); err == nil {
		t.Error("stream still open after done event")
	}

	// A watch on an already-cached job answers done immediately.
	br2, closeStream2 := watchStream(t, ts, key)
	defer closeStream2()
	if name, data := readEvent(t, br2); name != "done" || !bytes.Equal([]byte(data), p.body) {
		t.Errorf("cached watch: %q %q", name, data)
	}
}

// TestJobWatchDrainClosesStreams: drain must end every open watch stream
// with a final draining status, and refuse new watches with 503 — so a
// long-lived stream can never hold graceful shutdown hostage.
func TestJobWatchDrainClosesStreams(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	key := strings.Repeat("ab", 32)
	br, closeStream := watchStream(t, ts, key)
	defer closeStream()
	if name, data := readEvent(t, br); name != "status" || !strings.Contains(data, "unknown") {
		t.Fatalf("initial event %q %q", name, data)
	}

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()
	if name, data := readEvent(t, br); name != "status" || !strings.Contains(data, "draining") {
		t.Fatalf("drain event %q %q, want draining status", name, data)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Error("stream still open after drain")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain blocked on an open watch stream")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + key + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("watch after drain: %d, want 503", resp.StatusCode)
	}
}
