package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCacheSpillIntegrity covers the spill frame itself: every flavor of
// on-disk damage — truncation, header corruption, body corruption, an
// empty or headerless file — must read back as a miss (never an error,
// never wrong bytes), increment the disk_corrupt counter, and remove the
// bad file so a later eviction can rewrite it.
func TestCacheSpillIntegrity(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		corrupt bool
	}{
		{"intact", func(b []byte) []byte { return b }, false},
		{"truncated-mid-body", func(b []byte) []byte { return b[:len(b)-3] }, true},
		{"truncated-mid-header", func(b []byte) []byte { return b[:20] }, true},
		{"flipped-header-digit", func(b []byte) []byte {
			if b[0] == '0' {
				b[0] = '1'
			} else {
				b[0] = '0'
			}
			return b
		}, true},
		{"flipped-body-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, true},
		{"empty-file", func([]byte) []byte { return nil }, true},
		{"no-newline", func(b []byte) []byte { return bytes.ReplaceAll(b, []byte("\n"), nil) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := newCache(1, 0, dir)
			c.Put("victim", []byte(`{"result": "the real bytes"}`))
			c.Put("evictor", []byte("x")) // pushes victim to disk
			path := filepath.Join(dir, "victim.json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("spill file never written: %v", err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			body, ok := c.Get("victim")
			st := c.Stats()
			if tc.corrupt {
				if ok {
					t.Fatalf("corrupt spill served as a hit: %q", body)
				}
				if st.DiskCorrupt != 1 {
					t.Errorf("disk_corrupt = %d, want 1 (stats %+v)", st.DiskCorrupt, st)
				}
				if _, err := os.Stat(path); !os.IsNotExist(err) {
					t.Errorf("corrupt spill file not removed (err %v)", err)
				}
			} else {
				if !ok || !bytes.Equal(body, []byte(`{"result": "the real bytes"}`)) {
					t.Fatalf("intact spill not served: %q %v", body, ok)
				}
				if st.DiskCorrupt != 0 {
					t.Errorf("disk_corrupt = %d on intact file", st.DiskCorrupt)
				}
			}
		})
	}
}

// TestCacheConcurrentSpillChurn hammers a tiny cache (capacity 2, disk
// spill on) from many goroutines with overlapping keys, so gets, puts,
// evictions, spills, disk re-admissions, and concurrent-admit races all
// interleave — run under -race this is the proof the lock discipline
// around the unlocked disk I/O holds. A background vandal concurrently
// corrupts random spill files; correctness demands every successful Get
// still returns exactly the bytes put under that key, corrupt files are
// only ever misses, and counters stay consistent.
func TestCacheConcurrentSpillChurn(t *testing.T) {
	dir := t.TempDir()
	c := newCache(2, 64, dir)
	const keys = 8
	body := func(k int) []byte { return []byte(fmt.Sprintf(`{"key": %d, "pad": "0123456789"}`, k)) }

	var workers sync.WaitGroup
	stop := make(chan struct{})
	vandalDone := make(chan struct{})
	// The vandal: flips bytes in whatever spill files exist right now.
	go func() {
		defer close(vandalDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ents, _ := os.ReadDir(dir)
			for _, e := range ents {
				p := filepath.Join(dir, e.Name())
				raw, err := os.ReadFile(p)
				if err != nil || len(raw) == 0 {
					continue
				}
				raw[len(raw)/2] ^= 0xff
				_ = os.WriteFile(p, raw, 0o644)
			}
		}
	}()
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 500; i++ {
				k := (g + i) % keys
				key := fmt.Sprintf("key-%d", k)
				if got, ok := c.Get(key); ok {
					if !bytes.Equal(got, body(k)) {
						t.Errorf("Get(%s) = %q, want %q", key, got, body(k))
						return
					}
				} else {
					c.Put(key, body(k))
				}
			}
		}(g)
	}
	for g := 8; g < 10; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				c.Stats()
			}
		}()
	}
	workers.Wait()
	close(stop)
	<-vandalDone
}
