package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
	"hsfq/internal/tracestream"
)

// This file implements GET /v1/trace/{key}: the simulator's live event
// stream as a service. Simulate and batch-job executions run with a
// tracestream.Broadcaster attached (when Config.TraceBytes > 0); the
// trace hub keys broadcasters by job content address, so
//
//	?follow=1        streams the run's events over SSE — live while the
//	                 job runs, seeded from the recording for gap-free
//	                 delivery from tick zero, replayed wholesale for a
//	                 finished job;
//	(no params)      serves the recorded wire-format frames raw, with the
//	                 digest in X-Trace-Digest;
//	?view=timeline   serves the depth-grouped timeline JSON;
//	?view=gantt      serves a self-contained HTML timeline page.
//
// Replay is sound because the simulator is deterministic: the recorded
// stream of a key-addressed job is THE stream of that job, whichever
// execution produced it.

// defaultStreamsPerTenant caps concurrent follow streams per tenant when
// the policy does not say otherwise.
const defaultStreamsPerTenant = 8

// Follow subscriber pending-buffer bounds; ?buf= is clamped into range.
// The buffer must absorb the gap between the simulation producing events
// (an in-process engine, tens of MB/s of frames) and SSE delivery, so
// the ceiling is generous; a client that wants a lossless live stream of
// a long run asks for a large buffer, a sampling dashboard asks for a
// small one and accepts drops.
const (
	minFollowBuf     = 4 << 10
	maxFollowBuf     = 64 << 20
	defaultFollowBuf = 8 << 20
)

// traceEntry is one job's trace: its broadcaster (which owns the
// recording) plus the run geometry views need.
type traceEntry struct {
	bc *tracestream.Broadcaster

	mu        sync.Mutex
	state     string // "pending" → "running" → "done" | "failed"
	horizonNs int64
	numCores  int
	bytes     int // recording size, for finished-LRU accounting
}

func (e *traceEntry) setRunning(horizonNs int64, numCores int) {
	e.mu.Lock()
	e.state, e.horizonNs, e.numCores = "running", horizonNs, numCores
	e.mu.Unlock()
}

func (e *traceEntry) info() (state string, horizonNs int64, numCores int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state, e.horizonNs, e.numCores
}

// traceHub tracks live and finished traces. Live entries are bounded by
// pool concurrency; finished recordings live in an LRU bounded by total
// bytes.
type traceHub struct {
	mu       sync.Mutex
	closed   bool
	drain    chan struct{} // closed while draining; follow streams select on it
	live     map[string]*traceEntry
	done     map[string]*traceEntry
	order    []string // finished keys, oldest first
	doneSize int64
	maxBytes int64

	evicted atomic.Int64
}

func newTraceHub(maxBytes int64) *traceHub {
	if maxBytes <= 0 {
		maxBytes = 32 << 20
	}
	return &traceHub{
		drain:    make(chan struct{}),
		live:     map[string]*traceEntry{},
		done:     map[string]*traceEntry{},
		maxBytes: maxBytes,
	}
}

// begin opens a live trace for key, or returns nil when the key is
// already being traced (a concurrent execution of the same job — only
// one stream per key can be canonical), or the hub is draining.
func (h *traceHub) begin(key string, recBytes int) *traceEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	if _, busy := h.live[key]; busy {
		return nil
	}
	e := &traceEntry{bc: tracestream.New(), state: "pending"}
	e.bc.EnableRecording(recBytes)
	h.live[key] = e
	return e
}

// finish seals a live trace and moves it into the finished LRU,
// replacing any older recording of the same key (determinism makes them
// interchangeable) and evicting oldest-first past the byte cap.
func (h *traceHub) finish(key string, ok bool) {
	h.mu.Lock()
	e, found := h.live[key]
	h.mu.Unlock()
	if !found {
		return
	}
	e.bc.Finish()
	rec := e.bc.Snapshot()
	e.mu.Lock()
	if ok {
		e.state = "done"
	} else {
		e.state = "failed"
	}
	e.bytes = len(rec.Frames)
	e.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.live, key)
	if old, dup := h.done[key]; dup {
		h.doneSize -= int64(old.bytes)
		h.removeFromOrder(key)
	}
	h.done[key] = e
	h.order = append(h.order, key)
	h.doneSize += int64(e.bytes)
	for h.doneSize > h.maxBytes && len(h.order) > 1 {
		victim := h.order[0]
		h.order = h.order[1:]
		if v, okv := h.done[victim]; okv {
			h.doneSize -= int64(v.bytes)
			delete(h.done, victim)
			h.evicted.Add(1)
		}
	}
}

func (h *traceHub) removeFromOrder(key string) {
	for i, k := range h.order {
		if k == key {
			h.order = append(h.order[:i], h.order[i+1:]...)
			return
		}
	}
}

// get returns the trace for key, live entries first.
func (h *traceHub) get(key string) (*traceEntry, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.live[key]; ok {
		return e, true
	}
	e, ok := h.done[key]
	return e, ok
}

// counts reports live and finished entry counts plus finished bytes.
func (h *traceHub) counts() (live, done int, doneBytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.live), len(h.done), h.doneSize
}

// shutdown refuses new follows and wakes every active follow stream to
// emit a final "draining" status and end, mirroring the watch hub.
// Idempotent.
func (h *traceHub) shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.drain)
}

// reopen accepts follow streams again after a shutdown.
func (h *traceHub) reopen() {
	h.mu.Lock()
	if h.closed {
		h.closed = false
		h.drain = make(chan struct{})
	}
	h.mu.Unlock()
}

func (h *traceHub) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// drainChan returns the current drain channel; it is closed when the hub
// shuts down.
func (h *traceHub) drainChan() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.drain
}

// executeJob is the execution path for simulate and batch jobs: the
// plain seam when tracing is off (or the key is already being traced),
// or a listened run wired to a broadcaster registered under the job key.
func (s *Server) executeJob(key string, cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
	if s.traces == nil {
		return s.execute(cfg, seed)
	}
	entry := s.traces.begin(key, s.cfg.TraceBytes)
	if entry == nil {
		return s.execute(cfg, seed)
	}
	digest, m, err := s.executeListened(cfg, seed, func(sm *simconfig.Simulation) {
		entry.setRunning(int64(sm.Config.Horizon.Time()), sm.Machine.NumCores())
		sm.Machine.Listen(entry.bc)
		entry.bc.Begin(sm.ThreadMetas())
	})
	s.traces.finish(key, err == nil)
	return digest, m, err
}

func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request, tenant string) int {
	key := r.PathValue("key")
	if !jobKeyRE.MatchString(key) {
		return writeError(w, http.StatusNotFound, errors.New("server: malformed job key (want 64-char hex digest)"))
	}
	if s.traces == nil {
		return writeError(w, http.StatusNotFound, errors.New("server: tracing disabled (start with a positive trace-bytes)"))
	}
	entry, ok := s.traces.get(key)
	if !ok {
		return writeError(w, http.StatusNotFound, errors.New("server: no trace for this job (not traced yet, or evicted)"))
	}
	q := r.URL.Query()
	if q.Get("follow") != "" {
		return s.serveTraceFollow(w, r, tenant, entry)
	}
	switch q.Get("view") {
	case "":
		return s.serveTraceRaw(w, entry)
	case "timeline":
		return s.serveTraceTimeline(w, key, entry, false)
	case "gantt":
		return s.serveTraceTimeline(w, key, entry, true)
	default:
		return writeError(w, http.StatusBadRequest, fmt.Errorf("server: unknown view %q (want timeline or gantt)", q.Get("view")))
	}
}

// serveTraceRaw serves the recorded wire-format frames. For a running
// job this is the stream so far (no end frame yet); for a finished job
// the complete stream, digest in X-Trace-Digest.
func (s *Server) serveTraceRaw(w http.ResponseWriter, entry *traceEntry) int {
	rec := entry.bc.Snapshot()
	state, _, _ := entry.info()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Trace-State", state)
	w.Header().Set("X-Trace-Digest", rec.Digest)
	w.Header().Set("X-Trace-Rows", strconv.Itoa(rec.Rows))
	if rec.Truncated {
		w.Header().Set("X-Trace-Truncated", strconv.FormatUint(rec.Lost, 10))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(rec.Frames)
	return http.StatusOK
}

// decodeRecording turns recorded frames back into events + metadata.
func decodeRecording(frames []byte) (events []trace.Event, meta []trace.ThreadMeta, numCores int, err error) {
	dec := tracestream.NewDecoder()
	dec.Feed(frames)
	numCores = 1
	for {
		f, ferr := dec.Next()
		if ferr != nil {
			return nil, nil, 0, ferr
		}
		if f == nil {
			return events, meta, numCores, nil
		}
		switch f.Type {
		case tracestream.FrameHeader:
			numCores = f.NumCores
		case tracestream.FrameThreads:
			meta = append(meta, f.Threads...)
		case tracestream.FrameEvent:
			events = append(events, f.Event)
		}
	}
}

// traceTimelineResponse wraps the timeline document with trace identity.
type traceTimelineResponse struct {
	Key       string         `json:"key"`
	State     string         `json:"state"`
	Digest    string         `json:"digest"`
	Rows      int            `json:"rows"`
	Truncated bool           `json:"truncated,omitempty"`
	Timeline  trace.Timeline `json:"timeline"`
}

func (s *Server) serveTraceTimeline(w http.ResponseWriter, key string, entry *traceEntry, asHTML bool) int {
	rec := entry.bc.Snapshot()
	state, horizonNs, numCores := entry.info()
	events, meta, decCores, err := decodeRecording(rec.Frames)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, &internalError{err})
	}
	if numCores == 0 {
		numCores = decCores
	}
	to := sim.Time(horizonNs)
	if to <= 0 {
		for _, e := range events {
			if e.At > to {
				to = e.At
			}
		}
	}
	tl := trace.BuildTimeline(trace.SpansOf(events), meta, 0, to, numCores)
	resp := traceTimelineResponse{
		Key: key, State: state, Digest: rec.Digest, Rows: rec.Rows,
		Truncated: rec.Truncated, Timeline: tl,
	}
	if !asHTML {
		b, merr := json.Marshal(resp)
		if merr != nil {
			return writeError(w, http.StatusInternalServerError, &internalError{merr})
		}
		return writeResult(w, b, "trace")
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := ganttTemplate.Execute(w, ganttPage(resp)); err != nil {
		return http.StatusOK // headers already sent; nothing better to do
	}
	return http.StatusOK
}

// serveTraceFollow streams a trace over SSE: wire frames decoded into
// text events (`header`, `threads`, `row`, `dropped`, `end`), one `row`
// per canonical event row — hashing the rows reproduces the trace
// digest. Draining mirrors the watch=1 protocol: new follows are refused
// with 503 while not ready, and active streams get a final "draining"
// status.
func (s *Server) serveTraceFollow(w http.ResponseWriter, r *http.Request, tenant string, entry *traceEntry) int {
	fl, ok := w.(http.Flusher)
	if !ok {
		return writeError(w, http.StatusInternalServerError, errors.New("server: streaming unsupported"))
	}
	if s.traces.isClosed() {
		return writeError(w, http.StatusServiceUnavailable, ErrDraining)
	}
	if !s.acquireStream(tenant) {
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server: tenant %q is at its concurrent trace-stream cap", tenant))
	}
	defer s.releaseStream(tenant)

	buf := defaultFollowBuf
	if v := r.URL.Query().Get("buf"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad buf %q", v))
		}
		buf = min(max(n, minFollowBuf), maxFollowBuf)
	}
	sub := entry.bc.Subscribe(buf)
	defer entry.bc.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// All SSE output goes through one buffered writer, flushed per batch:
	// a live stream is hundreds of thousands of tiny events, and per-row
	// writes straight to the ResponseWriter would make SSE delivery the
	// bottleneck that overflows the subscriber buffer.
	bw := bufio.NewWriterSize(w, 64<<10)
	flush := func() {
		bw.Flush()
		fl.Flush()
	}
	dec := tracestream.NewDecoder()
	drain := s.traces.drainChan()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		// Drain whatever is pending before waiting.
		if chunk := sub.Take(); chunk != nil {
			dec.Feed(chunk)
			done, err := writeTraceSSE(bw, dec)
			if err != nil {
				// The frame stream is producer-encoded; a decode failure is
				// a server bug, but headers are sent — just end the stream.
				flush()
				return http.StatusOK
			}
			flush()
			if done {
				return http.StatusOK
			}
			continue
		}
		select {
		case <-sub.Notify():
		case <-keepalive.C:
			fmt.Fprint(bw, ": keepalive\n\n")
			flush()
		case <-r.Context().Done():
			return http.StatusOK
		case <-drain:
			// Server shutdown mid-stream: match the watch=1 protocol.
			writeSSE(bw, statusEvent("draining"))
			flush()
			return http.StatusOK
		}
	}
}

// writeTraceSSE emits SSE events for every complete frame in the
// decoder; done reports that the end frame was sent.
func writeTraceSSE(w io.Writer, dec *tracestream.Decoder) (done bool, err error) {
	for {
		f, ferr := dec.Next()
		if ferr != nil {
			return false, ferr
		}
		if f == nil {
			return false, nil
		}
		switch f.Type {
		case tracestream.FrameHeader:
			b, _ := json.Marshal(struct {
				Version  int `json:"version"`
				NumCores int `json:"num_cores"`
			}{f.Version, f.NumCores})
			writeSSE(w, watchEvent{"header", b})
		case tracestream.FrameThreads:
			b, _ := json.Marshal(f.Threads)
			writeSSE(w, watchEvent{"threads", b})
		case tracestream.FrameEvent:
			writeSSE(w, watchEvent{"row", []byte(trace.RowText(f.Event, dec.NumCores()))})
		case tracestream.FrameDrop:
			b, _ := json.Marshal(struct {
				Dropped uint64 `json:"dropped"`
			}{f.Dropped})
			writeSSE(w, watchEvent{"dropped", b})
		case tracestream.FrameEnd:
			b, _ := json.Marshal(struct {
				Rows   uint64 `json:"rows"`
				Digest string `json:"digest"`
			}{f.Rows, f.Digest})
			writeSSE(w, watchEvent{"end", b})
			return true, nil
		}
	}
}

// acquireStream admits one more concurrent follow stream for the tenant
// under its policy cap.
func (s *Server) acquireStream(tenant string) bool {
	limit := s.pol.Load().StreamsOf(tenant, defaultStreamsPerTenant)
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.streams[tenant] >= limit {
		return false
	}
	s.streams[tenant]++
	return true
}

func (s *Server) releaseStream(tenant string) {
	s.streamMu.Lock()
	if s.streams[tenant] > 1 {
		s.streams[tenant]--
	} else {
		delete(s.streams, tenant)
	}
	s.streamMu.Unlock()
}

// ganttRow is one rendered bar of the HTML timeline.
type ganttRow struct {
	Label string
	Tip   string
	Left  float64 // percent
	Width float64 // percent
}

type ganttLaneView struct {
	Title string
	Rows  map[string][]ganttRow // thread label → bars
	Order []string
}

type ganttView struct {
	Key    string
	State  string
	Digest string
	Rows   int
	ToMs   float64
	Lanes  []ganttLaneView
}

// ganttPage projects the timeline document into template-ready bars.
func ganttPage(resp traceTimelineResponse) ganttView {
	v := ganttView{
		Key: resp.Key, State: resp.State, Digest: resp.Digest, Rows: resp.Rows,
		ToMs: float64(resp.Timeline.ToNs) / 1e6,
	}
	span := float64(resp.Timeline.ToNs - resp.Timeline.FromNs)
	if span <= 0 {
		span = 1
	}
	for _, lane := range resp.Timeline.Lanes {
		lv := ganttLaneView{Rows: map[string][]ganttRow{}}
		if lane.Depth < 0 {
			lv.Title = "depth ?"
		} else {
			lv.Title = fmt.Sprintf("depth %d", lane.Depth)
		}
		for _, th := range lane.Threads {
			label := th.Name
			if th.Path != "" {
				label = fmt.Sprintf("%s (%s)", th.Name, th.Path)
			}
			lv.Order = append(lv.Order, label)
			for _, sp := range th.Spans {
				lv.Rows[label] = append(lv.Rows[label], ganttRow{
					Label: label,
					Tip:   fmt.Sprintf("%s %.3f–%.3fms", th.Name, float64(sp.StartNs)/1e6, float64(sp.EndNs)/1e6),
					Left:  float64(sp.StartNs-resp.Timeline.FromNs) / span * 100,
					Width: float64(sp.EndNs-sp.StartNs) / span * 100,
				})
			}
		}
		v.Lanes = append(v.Lanes, lv)
	}
	return v
}

// ganttTemplate is the self-contained HTML timeline: depth lanes on the
// vertical axis, simulated time on the horizontal, no external assets.
var ganttTemplate = template.Must(template.New("gantt").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>trace {{.Key}}</title><style>
body { font: 13px/1.4 monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 15px; word-break: break-all; }
.meta { color: #666; margin-bottom: 1em; }
.lane { border-top: 2px solid #444; margin-top: 1em; padding-top: .3em; }
.lane h2 { font-size: 13px; margin: 0 0 .3em; }
.thread { display: flex; align-items: center; margin: 2px 0; }
.thread .name { width: 22em; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.track { position: relative; flex: 1; height: 14px; background: #eee; }
.bar { position: absolute; top: 0; height: 100%; background: #2a7ab0; min-width: 1px; }
.axis { text-align: right; color: #666; margin-top: .5em; }
</style></head><body>
<h1>trace {{.Key}}</h1>
<div class="meta">state {{.State}} · {{.Rows}} events · digest {{.Digest}}</div>
{{range .Lanes}}<div class="lane"><h2>{{.Title}}</h2>
{{$lane := .}}{{range .Order}}<div class="thread"><div class="name">{{.}}</div><div class="track">
{{range index $lane.Rows .}}<div class="bar" title="{{.Tip}}" style="left:{{printf "%.4f" .Left}}%;width:{{printf "%.4f" .Width}}%"></div>{{end}}
</div></div>{{end}}</div>{{end}}
<div class="axis">0 – {{printf "%.1f" .ToMs}} ms</div>
</body></html>
`))
