package server

import (
	"sync"

	"hsfq/internal/metrics"
)

// endpointStats aggregates request count, error count, and a latency
// histogram for one endpoint. The histogram spans 0–10 s in 50 buckets
// (200 ms wide); sub-millisecond cache hits land in bucket 0 and anything
// pathological lands in the overflow counter, both visible in /metrics.
type endpointStats struct {
	mu     sync.Mutex
	count  int64
	errors int64
	hist   *metrics.Histogram
}

func newEndpointStats() *endpointStats {
	return &endpointStats{hist: metrics.NewHistogram(0, 10_000, 50)}
}

// observe records one request: its wall latency in milliseconds and
// whether it ended in an error status (>= 400).
func (e *endpointStats) observe(ms float64, isErr bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.count++
	if isErr {
		e.errors++
	}
	e.hist.Add(ms)
}

// EndpointStats is the exported per-endpoint view in /metrics.
type EndpointStats struct {
	Count     int64                     `json:"count"`
	Errors    int64                     `json:"errors"`
	LatencyMS metrics.HistogramSnapshot `json:"latency_ms"`
}

func (e *endpointStats) snapshot() EndpointStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EndpointStats{Count: e.count, Errors: e.errors, LatencyMS: e.hist.Snapshot()}
}
