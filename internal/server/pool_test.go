package server

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolAdmission: with 1 worker and a queue of 1, the third concurrent
// submission must be refused with ErrQueueFull, and admitted work must
// still complete.
func TestPoolAdmission(t *testing.T) {
	p := newPool(1, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64

	// First task occupies the worker...
	if err := p.Submit(func() { close(started); <-release; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the queue...
	if err := p.Submit(func() { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 1 || p.Capacity() != 1 {
		t.Errorf("depth=%d cap=%d", p.Depth(), p.Capacity())
	}
	// ...third is shed.
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if got := p.InFlight(); got != 1 {
		t.Errorf("in-flight %d", got)
	}
	close(release)
	p.Close() // drains the queued task
	if got := ran.Load(); got != 2 {
		t.Errorf("ran %d tasks, want 2", got)
	}
	if p.Done() != 2 {
		t.Errorf("done %d", p.Done())
	}
}

// TestPoolDrain: Close must wait for queued work, refuse new work, and be
// idempotent.
func TestPoolDrain(t *testing.T) {
	p := newPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Submit(func() { time.Sleep(time.Millisecond); ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 8 {
		t.Errorf("drained %d of 8 tasks", got)
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-close submit: %v, want ErrDraining", err)
	}
	p.Close() // second close is a no-op
}
