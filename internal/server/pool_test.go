package server

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hsfq/internal/tenantsched"
)

// TestPoolAdmission: with 1 worker and a fallback quota of 1, the third
// concurrent submission (all default-tenant, the header-less path) must
// be refused with ErrQueueFull, and admitted work must still complete —
// exactly the old global-FIFO shed behaviour.
func TestPoolAdmission(t *testing.T) {
	p := newPool(1, 1, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64

	// First task occupies the worker...
	if err := p.Submit(tenantsched.DefaultTenant, "simulate", func() { close(started); <-release; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the tenant's queue...
	if err := p.Submit(tenantsched.DefaultTenant, "simulate", func() { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 1 || p.Capacity() != 1 {
		t.Errorf("depth=%d cap=%d", p.Depth(), p.Capacity())
	}
	// ...third is shed.
	if err := p.Submit(tenantsched.DefaultTenant, "simulate", func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if got := p.InFlight(); got != 1 {
		t.Errorf("in-flight %d", got)
	}
	close(release)
	p.Close() // drains the queued task
	if got := ran.Load(); got != 2 {
		t.Errorf("ran %d tasks, want 2", got)
	}
	if p.Done() != 2 {
		t.Errorf("done %d", p.Done())
	}
}

// TestPoolDrain: Close must wait for queued work, refuse new work, and be
// idempotent.
func TestPoolDrain(t *testing.T) {
	p := newPool(2, 8, nil)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Submit(tenantsched.DefaultTenant, "simulate", func() { time.Sleep(time.Millisecond); ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 8 {
		t.Errorf("drained %d of 8 tasks", got)
	}
	if err := p.Submit(tenantsched.DefaultTenant, "simulate", func() {}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-close submit: %v, want ErrDraining", err)
	}
	p.Close() // second close is a no-op
}

// TestPoolTenantIsolation: one tenant's full quota must not shed another
// tenant's submissions, and dispatch under contention must favour the
// heavier tenant in weight proportion.
func TestPoolTenantIsolation(t *testing.T) {
	pol := &tenantsched.Policy{Tenants: map[string]tenantsched.TenantPolicy{
		"noisy": {Weight: 1, Quota: 2},
		"quiet": {Weight: 1, Quota: 2},
	}}
	p := newPool(1, 4, pol)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := p.Submit("noisy", "simulate", func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if err := p.Submit("noisy", "simulate", func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Submit("noisy", "simulate", func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota noisy submit: %v, want ErrQueueFull", err)
	}
	// noisy's full queue is invisible to quiet.
	if err := p.Submit("quiet", "simulate", func() {}); err != nil {
		t.Fatalf("quiet submission shed by noisy tenant: %v", err)
	}
	close(release)
	p.Close()
}
