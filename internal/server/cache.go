package server

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is a content-addressed response store: an in-memory LRU bounded
// by entry count and total body bytes, with an optional disk spill
// directory that receives evicted entries and is consulted on memory
// misses (a disk hit is re-admitted to memory).
//
// Keys are canonical job digests (sweep.JobKey/SweepKey) of deterministic
// simulations, so a hit is byte-identical to re-execution by
// construction; the server's VerifyFraction turns that argument into a
// runtime check.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	dir        string
	lru        *list.List // front = most recently used
	index      map[string]*list.Element
	bytes      int64

	hits, misses, evictions, diskHits, diskCorrupt int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newCache creates a cache bounded by maxEntries entries and maxBytes
// body bytes; dir, when non-empty, enables disk spill (it must exist).
func newCache(maxEntries int, maxBytes int64, dir string) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		dir:        dir,
		lru:        list.New(),
		index:      map[string]*list.Element{},
	}
}

// Get returns the cached body for key. Callers must not mutate the
// returned slice: it is shared with the cache.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true
	}
	if c.dir == "" || !diskSafe(key) {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	// The disk read happens without the lock: a spill-directory miss must
	// not stall unrelated in-memory hits behind disk latency.
	c.mu.Unlock()
	raw, err := os.ReadFile(c.path(key))
	var b []byte
	corrupt := false
	if err == nil {
		if b, err = decodeSpill(raw); err != nil {
			// A truncated or bit-rotted spill file is a miss, never an
			// error and never served: the caller recomputes (determinism
			// makes that safe) and the bad file is dropped so the next
			// eviction can rewrite it.
			corrupt = true
			_ = os.Remove(c.path(key))
		}
	}
	c.mu.Lock()
	if err != nil {
		c.misses++
		if corrupt {
			c.diskCorrupt++
		}
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.diskHits++
	var evicted []*cacheEntry
	if el, ok := c.index[key]; ok {
		// Admitted concurrently while we were at the disk; either copy is
		// fine (content addressing makes the bodies identical), keep the
		// one already in memory.
		c.lru.MoveToFront(el)
		b = el.Value.(*cacheEntry).body
	} else {
		evicted = c.admit(key, b)
	}
	c.mu.Unlock()
	c.spill(evicted)
	return b, true
}

// Put stores body under key. A key already present is left untouched:
// content addressing means the bodies are identical anyway.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	if _, ok := c.index[key]; ok {
		c.mu.Unlock()
		return
	}
	evicted := c.admit(key, body)
	c.mu.Unlock()
	c.spill(evicted)
}

// admit inserts at the LRU front and evicts from the back until both caps
// hold again, returning the evicted entries for the caller to spill once
// the lock is released; the entry just admitted is never evicted, even if
// it alone exceeds the byte cap. Caller holds c.mu.
func (c *Cache) admit(key string, body []byte) []*cacheEntry {
	el := c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.index[key] = el
	c.bytes += int64(len(body))
	var evicted []*cacheEntry
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		last := c.lru.Back()
		if last == nil || last == el {
			break
		}
		e := last.Value.(*cacheEntry)
		c.lru.Remove(last)
		delete(c.index, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions++
		evicted = append(evicted, e)
	}
	return evicted
}

// spill writes evicted bodies to the spill directory. Best-effort (a
// failed write just loses the spill copy, never cache correctness) and
// called without c.mu held, so disk latency never serializes the cache.
func (c *Cache) spill(evicted []*cacheEntry) {
	if c.dir == "" {
		return
	}
	for _, e := range evicted {
		if diskSafe(e.key) {
			_ = os.WriteFile(c.path(e.key), encodeSpill(e.body), 0o644)
		}
	}
}

// Spill files carry their own integrity: a 64-char hex SHA-256 of the
// body, a newline, then the body. The spill key names the *request*
// (sweep.JobKey of config+seed), not the bytes, so without the header a
// truncated write or on-disk corruption would be served as if it were the
// real result — the header makes any damaged file detectably invalid.

// encodeSpill frames body for the spill directory.
func encodeSpill(body []byte) []byte {
	sum := sha256.Sum256(body)
	out := make([]byte, 0, hex.EncodedLen(len(sum))+1+len(body))
	out = append(out, []byte(hex.EncodeToString(sum[:]))...)
	out = append(out, '\n')
	return append(out, body...)
}

// decodeSpill unframes a spill file, failing on any integrity violation.
func decodeSpill(raw []byte) ([]byte, error) {
	i := bytes.IndexByte(raw, '\n')
	if i != 64 {
		return nil, errSpillCorrupt
	}
	body := raw[i+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(raw[:i]) {
		return nil, errSpillCorrupt
	}
	return body, nil
}

// diskSafe rejects keys that could name anything outside the spill
// directory. The server only issues hex digests and validates client-
// supplied keys before lookup; this is defense in depth for any future
// caller.
func diskSafe(key string) bool {
	return key != "" && key != "." && key != ".." && !strings.ContainsAny(key, `/\`)
}

// path maps a disk-safe key to its spill file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// errSpillCorrupt marks a spill file that failed its integrity check.
var errSpillCorrupt = errSpill("server: corrupt spill file")

type errSpill string

func (e errSpill) Error() string { return string(e) }

// CacheStats is a point-in-time view of the cache's counters for the
// /metrics endpoint.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	DiskHits    int64 `json:"disk_hits"`
	DiskCorrupt int64 `json:"disk_corrupt"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     c.lru.Len(),
		Bytes:       c.bytes,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		DiskHits:    c.diskHits,
		DiskCorrupt: c.diskCorrupt,
	}
}
