package server

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a content-addressed response store: an in-memory LRU bounded
// by entry count and total body bytes, with an optional disk spill
// directory that receives evicted entries and is consulted on memory
// misses (a disk hit is re-admitted to memory).
//
// Keys are canonical job digests (sweep.JobKey/SweepKey) of deterministic
// simulations, so a hit is byte-identical to re-execution by
// construction; the server's VerifyFraction turns that argument into a
// runtime check.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	dir        string
	lru        *list.List // front = most recently used
	index      map[string]*list.Element
	bytes      int64

	hits, misses, evictions, diskHits int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newCache creates a cache bounded by maxEntries entries and maxBytes
// body bytes; dir, when non-empty, enables disk spill (it must exist).
func newCache(maxEntries int, maxBytes int64, dir string) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		dir:        dir,
		lru:        list.New(),
		index:      map[string]*list.Element{},
	}
}

// Get returns the cached body for key. Callers must not mutate the
// returned slice: it is shared with the cache.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).body, true
	}
	if c.dir != "" {
		if b, err := os.ReadFile(c.path(key)); err == nil {
			c.hits++
			c.diskHits++
			c.admit(key, b)
			return b, true
		}
	}
	c.misses++
	return nil, false
}

// Put stores body under key. A key already present is left untouched:
// content addressing means the bodies are identical anyway.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[key]; ok {
		return
	}
	c.admit(key, body)
}

// admit inserts at the LRU front and evicts from the back until both caps
// hold again; the entry just admitted is never evicted, even if it alone
// exceeds the byte cap.
func (c *Cache) admit(key string, body []byte) {
	el := c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.index[key] = el
	c.bytes += int64(len(body))
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		last := c.lru.Back()
		if last == nil || last == el {
			break
		}
		c.evict(last)
	}
}

// evict removes the entry, spilling its body to disk when a spill
// directory is configured (best-effort: a failed write just loses the
// spill copy, never the correctness of the cache).
func (c *Cache) evict(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.body))
	c.evictions++
	if c.dir != "" {
		_ = os.WriteFile(c.path(e.key), e.body, 0o644)
	}
}

// path maps a key (hex digest, so filename-safe) to its spill file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// CacheStats is a point-in-time view of the cache's counters for the
// /metrics endpoint.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	DiskHits  int64 `json:"disk_hits"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskHits:  c.diskHits,
	}
}
