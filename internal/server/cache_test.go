package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, 0, "")
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C")) // evicts a (least recently used)
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction")
	}
	if b, ok := c.Get("b"); !ok || string(b) != "B" {
		t.Errorf("b: %q %v", b, ok)
	}
	// b is now most recent; inserting d evicts c.
	c.Put("d", []byte("D"))
	if _, ok := c.Get("c"); ok {
		t.Error("c survived eviction despite b being fresher")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheByteCap(t *testing.T) {
	c := newCache(100, 10, "")
	c.Put("a", make([]byte, 6))
	c.Put("b", make([]byte, 6)) // 12 bytes > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("byte cap not enforced")
	}
	if st := c.Stats(); st.Bytes != 6 {
		t.Errorf("bytes %d", st.Bytes)
	}
	// A single entry above the cap is admitted anyway (never evict the
	// entry just inserted).
	c.Put("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized entry not admitted")
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	c := newCache(1, 0, dir)
	c.Put("a", []byte("body-a"))
	c.Put("b", []byte("body-b")) // evicts a to disk
	if _, err := os.Stat(filepath.Join(dir, "a.json")); err != nil {
		t.Fatalf("spill file: %v", err)
	}
	// A miss in memory falls through to disk and re-admits.
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("body-a")) {
		t.Fatalf("disk hit: %q %v", got, ok)
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("stats %+v", st)
	}
	// Re-admitting a evicted b; b must also come back from disk.
	if got, ok := c.Get("b"); !ok || !bytes.Equal(got, []byte("body-b")) {
		t.Errorf("b after spill: %q %v", got, ok)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := newCache(8, 0, "")
	if _, ok := c.Get("nope"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("v"))
	c.Put("k", []byte("other")) // duplicate Put is a no-op
	if b, _ := c.Get("k"); string(b) != "v" {
		t.Errorf("duplicate Put replaced body: %q", b)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := newCache(1024, 0, "")
	body := make([]byte, 1024)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%d", i), body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fmt.Sprintf("key-%d", i%256))
	}
}
