package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/tenantsched"
	"hsfq/internal/trace"
	"hsfq/internal/tracediff"
	"hsfq/internal/tracestream"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits a complete SSE body into events, skipping keepalives.
func parseSSE(body string) []sseEvent {
	var out []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				ev.name = name
			} else if data, ok := strings.CutPrefix(line, "data: "); ok {
				ev.data = data
			}
		}
		if ev.name != "" {
			out = append(out, ev)
		}
	}
	return out
}

// TestTraceFollowReplayDigest is the acceptance check of the trace
// service: hashing the rows a follow stream delivers reproduces the
// trace.Hasher digest of the run — the stream is the trace, byte for
// byte.
func TestTraceFollowReplayDigest(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, TraceBytes: 4 << 20})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := post(t, ts, "/v1/simulate", scenarioJSON(7))
	if resp.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var r simulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}

	// Reference digest: the same job run directly with a stream hasher.
	cfg, err := simconfig.Parse(strings.NewReader(scenarioJSON(7)))
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	if _, _, err := sweep.ExecuteConfigListened(cfg, cfg.Seed, nil, func(s *simconfig.Simulation) {
		s.Machine.Listen(h)
	}); err != nil {
		t.Fatal(err)
	}

	fresp, fbody := get(t, ts, "/v1/trace/"+r.Key+"?follow=1")
	if fresp.StatusCode != 200 {
		t.Fatalf("follow: %d %s", fresp.StatusCode, fbody)
	}
	events := parseSSE(string(fbody))
	sum := sha256.New()
	rows := 0
	var endDigest string
	var endRows int
	for _, ev := range events {
		switch ev.name {
		case "row":
			fmt.Fprintf(sum, "%s\n", ev.data)
			rows++
		case "dropped":
			t.Fatalf("follow of a complete recording dropped events: %s", ev.data)
		case "end":
			var e struct {
				Rows   int    `json:"rows"`
				Digest string `json:"digest"`
			}
			if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
				t.Fatal(err)
			}
			endDigest, endRows = e.Digest, e.Rows
		}
	}
	if rows == 0 || endDigest == "" {
		t.Fatalf("stream had %d rows, end digest %q", rows, endDigest)
	}
	got := fmt.Sprintf("%x", sum.Sum(nil))
	if got != endDigest || rows != endRows {
		t.Fatalf("client digest %s (%d rows) != stream's end digest %s (%d rows)", got, rows, endDigest, endRows)
	}
	if got != h.Sum() || rows != h.Rows() {
		t.Fatalf("stream digest %s (%d rows) != direct hasher %s (%d rows)", got, rows, h.Sum(), h.Rows())
	}
}

// TestTraceRawAndViews covers the replay modes: raw wire frames decode
// back to the digested stream, and the timeline/gantt views render from
// the same recording.
func TestTraceRawAndViews(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, TraceBytes: 4 << 20})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, body := post(t, ts, "/v1/simulate", scenarioJSON(3))
	var r simulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}

	resp, raw := get(t, ts, "/v1/trace/"+r.Key)
	if resp.StatusCode != 200 {
		t.Fatalf("raw: %d %s", resp.StatusCode, raw)
	}
	if st := resp.Header.Get("X-Trace-State"); st != "done" {
		t.Fatalf("state %q", st)
	}
	dec := tracestream.NewDecoder()
	dec.Feed(raw)
	rd := tracestream.NewRowDigest(1)
	var endDigest string
	for {
		f, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			break
		}
		switch f.Type {
		case tracestream.FrameEvent:
			rd.Add(f.Event)
		case tracestream.FrameEnd:
			endDigest = f.Digest
		}
	}
	if endDigest == "" || rd.Sum() != endDigest {
		t.Fatalf("raw replay digest %s != end frame %s", rd.Sum(), endDigest)
	}
	if resp.Header.Get("X-Trace-Digest") != endDigest {
		t.Fatalf("X-Trace-Digest %q != %s", resp.Header.Get("X-Trace-Digest"), endDigest)
	}

	resp, tl := get(t, ts, "/v1/trace/"+r.Key+"?view=timeline")
	if resp.StatusCode != 200 {
		t.Fatalf("timeline: %d %s", resp.StatusCode, tl)
	}
	var doc traceTimelineResponse
	if err := json.Unmarshal(tl, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Digest != endDigest || len(doc.Timeline.Lanes) == 0 {
		t.Fatalf("timeline doc: digest %s, %d lanes", doc.Digest, len(doc.Timeline.Lanes))
	}
	// Threads sit at depth 1 in the scenario's tree (/soft, /be).
	if doc.Timeline.Lanes[0].Depth != 1 || len(doc.Timeline.Lanes[0].Threads) != 2 {
		t.Fatalf("lane 0: %+v", doc.Timeline.Lanes[0])
	}

	resp, page := get(t, ts, "/v1/trace/"+r.Key+"?view=gantt")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("gantt: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	html := string(page)
	for _, want := range []string{"depth 1", "dec (/soft)", "hog (/be)", "class=\"bar\"", endDigest} {
		if !strings.Contains(html, want) {
			t.Fatalf("gantt page missing %q", want)
		}
	}

	if resp, _ := get(t, ts, "/v1/trace/"+r.Key+"?view=bogus"); resp.StatusCode != 400 {
		t.Errorf("bogus view: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/trace/"+strings.Repeat("0", 64)); resp.StatusCode != 404 {
		t.Errorf("unknown key: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/trace/nothex"); resp.StatusCode != 404 {
		t.Errorf("malformed key: %d", resp.StatusCode)
	}
}

// TestTraceDisabled pins the opt-in: without TraceBytes the endpoint is
// 404 and executions stay on the plain path.
func TestTraceDisabled(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, body := post(t, ts, "/v1/simulate", scenarioJSON(1))
	var r simulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts, "/v1/trace/"+r.Key); resp.StatusCode != 404 {
		t.Fatalf("tracing disabled: %d", resp.StatusCode)
	}
}

// TestDiffEndpointMatchesBatch plants a divergence and checks the
// endpoint localizes it to the same event as a direct tracediff run —
// the CLI and the service share one bisection.
func TestDiffEndpointMatchesBatch(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	a := scenarioJSON(7)
	// Same structure, one weight bumped: the SFQ tags drift apart and the
	// schedules part ways at some dispatch after t=0.
	b := strings.Replace(a, `"path": "/soft", "weight": 3`, `"path": "/soft", "weight": 4`, 1)
	if a == b {
		t.Fatal("failed to plant divergence")
	}
	body := fmt.Sprintf(`{"a":{"config":%s},"b":{"config":%s},"grid":8}`, a, b)

	resp, out := post(t, ts, "/v1/diff", body)
	if resp.StatusCode != 200 {
		t.Fatalf("diff: %d %s", resp.StatusCode, out)
	}
	var res tracediff.Result
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Divergent() || res.DivergenceAtNs <= 0 || res.FirstRows == nil {
		t.Fatalf("result: %+v", res)
	}

	cfgA, err := simconfig.Parse(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := simconfig.Parse(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	want, err := tracediff.Diff(
		tracediff.Input{Label: "a", Config: cfgA, Seed: cfgA.Seed},
		tracediff.Input{Label: "b", Config: cfgB, Seed: cfgB.Seed}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergenceAtNs != want.DivergenceAtNs || res.FirstRows.A != want.FirstRows.A {
		t.Fatalf("endpoint localized t=%d (%q), direct diff t=%d (%q)",
			res.DivergenceAtNs, res.FirstRows.A, want.DivergenceAtNs, want.FirstRows.A)
	}

	// Repeating the diff is a cache hit with identical bytes.
	resp2, out2 := post(t, ts, "/v1/diff", body)
	if resp2.Header.Get("X-Cache") != "hit" || string(out2) != string(out) {
		t.Fatalf("repeat: X-Cache=%q, bytes equal=%v", resp2.Header.Get("X-Cache"), string(out2) == string(out))
	}

	// A self-diff is identical.
	resp3, out3 := post(t, ts, "/v1/diff", fmt.Sprintf(`{"a":{"config":%s},"b":{"config":%s}}`, a, a))
	if resp3.StatusCode != 200 {
		t.Fatalf("self-diff: %d %s", resp3.StatusCode, out3)
	}
	var same tracediff.Result
	if err := json.Unmarshal(out3, &same); err != nil {
		t.Fatal(err)
	}
	if same.Status != tracediff.StatusIdentical || same.Rows == 0 {
		t.Fatalf("self-diff: %+v", same)
	}

	if resp, _ := post(t, ts, "/v1/diff", `{"a":{"config":{}},"b":{"config":{}},"grid":100000}`); resp.StatusCode != 400 {
		t.Errorf("absurd grid: %d", resp.StatusCode)
	}
}

// TestTraceFollowQuotaAndDraining holds a live follow stream open and
// checks the per-tenant stream cap (429 beyond it) and the draining
// protocol (active stream gets a final "draining" status; new follows
// get 503).
func TestTraceFollowQuotaAndDraining(t *testing.T) {
	srv := New(Config{
		Workers: 1, QueueDepth: 4, TraceBytes: 1 << 20,
		Policy: &tenantsched.Policy{DefaultStreams: 1},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A live trace that never finishes: the stream stays open.
	key := strings.Repeat("ab", 32)
	entry := srv.traces.begin(key, 1<<20)
	if entry == nil {
		t.Fatal("begin refused")
	}
	entry.bc.Begin([]trace.ThreadMeta{{TID: 1, Name: "dec", Depth: 1, Path: "/soft"}})

	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/trace/" + key + "?follow=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 1<<16)
		var all []byte
		for {
			n, rerr := resp.Body.Read(buf)
			all = append(all, buf[:n]...)
			if rerr != nil {
				break
			}
		}
		done <- result{body: string(all)}
	}()

	waitFor(t, func() bool {
		srv.streamMu.Lock()
		defer srv.streamMu.Unlock()
		return srv.streams[tenantsched.DefaultTenant] == 1
	})

	// Second follow for the same (default) tenant: over the cap.
	if resp, _ := get(t, ts, "/v1/trace/"+key+"?follow=1"); resp.StatusCode != 429 {
		t.Fatalf("over-cap follow: %d", resp.StatusCode)
	}

	// Drain: the open stream ends with a "draining" status.
	srv.SetReady(false)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	events := parseSSE(res.body)
	last := events[len(events)-1]
	if last.name != "status" || !strings.Contains(last.data, "draining") {
		t.Fatalf("final event %q %q", last.name, last.data)
	}

	// New follows are refused while draining, accepted after reopen.
	if resp, _ := get(t, ts, "/v1/trace/"+key+"?follow=1"); resp.StatusCode != 503 {
		t.Fatalf("draining follow: %d", resp.StatusCode)
	}
	srv.SetReady(true)
	entry.bc.Finish()
	resp, body := get(t, ts, "/v1/trace/"+key+"?follow=1")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "event: end") {
		t.Fatalf("reopened follow: %d %s", resp.StatusCode, body)
	}

	srv.streamMu.Lock()
	open := srv.streams[tenantsched.DefaultTenant]
	srv.streamMu.Unlock()
	if open != 0 {
		t.Fatalf("streams not released: %d", open)
	}

	m := srv.Snapshot()
	if m.Trace == nil || m.Trace.Live != 1 {
		t.Fatalf("trace metrics: %+v", m.Trace)
	}
}
