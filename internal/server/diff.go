package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/tracediff"
)

// This file implements POST /v1/diff: the hsfqdiff bisection as a
// service. The request carries two full configs (plus optional seed
// overrides); the response is the tracediff.Result JSON — byte-for-byte
// the schema of `hsfqdiff -json` — localizing the first divergent
// scheduling event between the two runs. The endpoint rides the same
// pool/cache/coalescing path as simulate: a diff's key is derived from
// both sides' job keys plus the grid, so repeating a diff is a cache hit
// and concurrent identical diffs coalesce onto one bisection.

// Grid bounds: a finer grid replays a narrower window but stores more
// checkpoints per probe; the cap keeps one request's memory bounded.
const (
	defaultDiffGrid = 16
	maxDiffGrid     = 256
)

// diffRequest is the body of POST /v1/diff.
type diffRequest struct {
	A    diffSide `json:"a"`
	B    diffSide `json:"b"`
	Grid int      `json:"grid,omitempty"`
}

// diffSide is one run under comparison. Seed 0 keeps the config's own
// seed, matching batch-job semantics.
type diffSide struct {
	Config simconfig.Config `json:"config"`
	Seed   uint64           `json:"seed,omitempty"`
}

func (s *Server) serveDiff(w http.ResponseWriter, r *http.Request, tenant string) int {
	var req diffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("server: %w", err))
	}
	if err := req.A.Config.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("server: a: %w", err))
	}
	if err := req.B.Config.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("server: b: %w", err))
	}
	if req.Grid < 0 || req.Grid > maxDiffGrid {
		return writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: grid %d out of range [1,%d]", req.Grid, maxDiffGrid))
	}
	grid := req.Grid
	if grid == 0 {
		grid = defaultDiffGrid
	}
	seedA, seedB := req.A.Seed, req.B.Seed
	if seedA == 0 {
		seedA = req.A.Config.Seed
	}
	if seedB == 0 {
		seedB = req.B.Config.Seed
	}
	// The diff's content address: both sides' job keys plus the grid. Job
	// keys canonicalize the configs, so equivalent requests coalesce and
	// cache-hit regardless of JSON formatting.
	key := fmt.Sprintf("%x", sha256.Sum256(fmt.Appendf(nil, "diff|%s|%s|%d",
		sweep.JobKey(req.A.Config, seedA), sweep.JobKey(req.B.Config, seedB), grid)))

	recompute := func() ([]byte, bool, error) {
		res, err := tracediff.Diff(
			tracediff.Input{Label: "a", Config: req.A.Config, Seed: seedA},
			tracediff.Input{Label: "b", Config: req.B.Config, Seed: seedB},
			grid, nil)
		if err != nil {
			return nil, false, err
		}
		b, merr := json.Marshal(res)
		if merr != nil {
			return nil, false, &internalError{merr}
		}
		return b, true, nil
	}
	return s.serveComputed(w, r, tenant, "diff", key, recompute)
}
