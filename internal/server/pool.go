package server

import (
	"sync"
	"sync/atomic"
	"time"

	"hsfq/internal/tenantsched"
)

// ErrQueueFull rejects a submission when the submitting tenant's admission
// quota is exhausted. Handlers translate it to 429 + Retry-After: shedding
// the excess request outright keeps queueing delay bounded for everyone
// already admitted, instead of degrading all requests together. It aliases
// tenantsched.ErrShed, so errors.As can still recover the *ShedError with
// the tenant's own backlog and retry estimate.
var ErrQueueFull = tenantsched.ErrShed

// ErrDraining rejects submissions once Close has begun.
var ErrDraining = tenantsched.ErrDraining

// pool is a fixed set of worker goroutines consuming a multi-tenant
// request queue whose dispatch order is a weighted hierarchical SFQ tree
// (internal/tenantsched) rather than a single FIFO channel. Submit never
// blocks: a request is either admitted (queued under its tenant) or
// refused with ErrQueueFull/ErrDraining, so admission control happens at
// the door — and per tenant — rather than by silent queueing. Each
// worker measures its task's wall-clock service time and charges it back
// to the tenant's class, which is what advances the tree's virtual time.
type pool struct {
	q       *tenantsched.Queue
	workers int
	depth   int
	wg      sync.WaitGroup

	inFlight atomic.Int64
	done     atomic.Int64
}

// newPool starts workers goroutines consuming a tenant-scheduled queue.
// depth is the per-tenant fallback quota; with no policy (all traffic on
// the default tenant) it reproduces the old global FIFO's admission
// behaviour exactly.
func newPool(workers, depth int, policy *tenantsched.Policy) *pool {
	p := &pool{
		q:       tenantsched.NewQueue(policy, tenantsched.Options{Workers: workers, FallbackQuota: depth}),
		workers: workers,
		depth:   depth,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				task, finish, ok := p.q.Next()
				if !ok {
					return
				}
				p.inFlight.Add(1)
				start := time.Now()
				task()
				finish(time.Since(start))
				p.inFlight.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// Submit enqueues f under the tenant's class without blocking.
func (p *pool) Submit(tenant, class string, f func()) error {
	return p.q.Submit(tenant, class, f)
}

// SetPolicy hot-swaps tenant weights and quotas.
func (p *pool) SetPolicy(pol *tenantsched.Policy) { p.q.SetPolicy(pol) }

// Queue exposes the scheduling queue for metrics snapshots.
func (p *pool) Queue() *tenantsched.Queue { return p.q }

// Depth is the number of admitted tasks not yet picked up by a worker.
func (p *pool) Depth() int { return p.q.Backlog() }

// Capacity is the per-tenant fallback admission quota (the old global
// queue size; kept under its original metrics name for compatibility).
func (p *pool) Capacity() int { return p.depth }

// InFlight is the number of tasks currently executing.
func (p *pool) InFlight() int64 { return p.inFlight.Load() }

// Done is the number of tasks completed since the pool started.
func (p *pool) Done() int64 { return p.done.Load() }

// Workers is the pool size.
func (p *pool) Workers() int { return p.workers }

// Close stops admission, runs everything already queued, and waits for
// the workers to finish — the drain step of graceful shutdown. Safe to
// call more than once.
func (p *pool) Close() {
	p.q.Close()
	p.wg.Wait()
}
