package server

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull rejects a submission when the admission queue is at
// capacity. Handlers translate it to 429 + Retry-After: shedding the
// excess request outright keeps queueing delay bounded for everyone
// already admitted, instead of degrading all requests together.
var ErrQueueFull = errors.New("server: queue full")

// ErrDraining rejects submissions once Close has begun.
var ErrDraining = errors.New("server: draining")

// pool is a fixed set of worker goroutines behind a bounded admission
// queue. Submit never blocks: a request is either admitted (queued or
// picked up immediately) or refused with ErrQueueFull/ErrDraining, so
// admission control happens at the door rather than by silent queueing.
type pool struct {
	queue   chan func()
	workers int

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	inFlight atomic.Int64
	done     atomic.Int64
}

// newPool starts workers goroutines consuming a queue of the given depth.
func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan func(), depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.queue {
				p.inFlight.Add(1)
				f()
				p.inFlight.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// Submit enqueues f without blocking.
func (p *pool) Submit(f func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- f:
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth is the number of admitted tasks not yet picked up by a worker.
func (p *pool) Depth() int { return len(p.queue) }

// Capacity is the admission queue's size.
func (p *pool) Capacity() int { return cap(p.queue) }

// InFlight is the number of tasks currently executing.
func (p *pool) InFlight() int64 { return p.inFlight.Load() }

// Done is the number of tasks completed since the pool started.
func (p *pool) Done() int64 { return p.done.Load() }

// Workers is the pool size.
func (p *pool) Workers() int { return p.workers }

// Close stops admission, runs everything already queued, and waits for
// the workers to finish — the drain step of graceful shutdown. Safe to
// call more than once.
func (p *pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
