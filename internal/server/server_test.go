package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/tenantsched"
)

// scenarioJSON is a small real scenario; seed variations make distinct
// jobs (distinct content addresses) from the same structure.
func scenarioJSON(seed int) string {
	return fmt.Sprintf(`{
	  "rate_mips": 100,
	  "horizon": "50ms",
	  "seed": %d,
	  "nodes": [
	    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "5ms"},
	    {"path": "/be", "weight": 1, "leaf": "rr"}
	  ],
	  "threads": [
	    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
	    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
	  ]
	}`, seed)
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSimulateCacheByteIdentical is the core serving contract: the same
// scenario submitted twice runs once, the second response is a recorded
// cache hit, and the bytes are identical. VerifyFraction 1 re-executes the
// hit and must find nothing wrong.
func TestSimulateCacheByteIdentical(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, VerifyFraction: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp1, body1 := post(t, ts, "/v1/simulate", scenarioJSON(7))
	if resp1.StatusCode != 200 || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first: %d %q %s", resp1.StatusCode, resp1.Header.Get("X-Cache"), body1)
	}
	resp2, body2 := post(t, ts, "/v1/simulate", scenarioJSON(7))
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second: %d %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs:\n%s\nvs\n%s", body1, body2)
	}

	var r simulateResponse
	if err := json.Unmarshal(body1, &r); err != nil {
		t.Fatal(err)
	}
	if r.Key == "" || r.Digest == "" || r.Seed != 7 || r.Metrics["work_total"] <= 0 {
		t.Fatalf("response: %+v", r)
	}

	// The job is retrievable by its content address, byte-identically.
	resp3, body3 := get(t, ts, "/v1/jobs/"+r.Key)
	if resp3.StatusCode != 200 || !bytes.Equal(body3, body1) {
		t.Fatalf("jobs retrieval: %d", resp3.StatusCode)
	}
	if resp4, _ := get(t, ts, "/v1/jobs/deadbeef"); resp4.StatusCode != 404 {
		t.Errorf("unknown job: %d", resp4.StatusCode)
	}

	m := srv.Snapshot()
	if m.Cache.Hits < 2 || m.Cache.Misses < 1 {
		t.Errorf("cache counters %+v", m.Cache)
	}
	// Verification is asynchronous; wait for the sampled hit's re-execution.
	waitFor(t, func() bool { return srv.Snapshot().VerifyRuns == 1 })
	if f := srv.Snapshot().VerifyFailures; f != 0 {
		t.Errorf("verify failures=%d", f)
	}
	if m.Endpoints["simulate"].Count != 2 {
		t.Errorf("simulate endpoint count %d", m.Endpoints["simulate"].Count)
	}
}

func TestSimulateValidationErrors(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Malformed JSON.
	resp, _ := post(t, ts, "/v1/simulate", `{"nodes": [`)
	if resp.StatusCode != 400 {
		t.Errorf("malformed: %d", resp.StatusCode)
	}
	// Unknown field (DisallowUnknownFields via simconfig.Parse).
	resp, _ = post(t, ts, "/v1/simulate", `{"bogus": 1}`)
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}
	// Validation failure carries the JSON field path.
	resp, body := post(t, ts, "/v1/simulate",
		`{"nodes":[{"path":"/a","leaf":"bogus"}]}`)
	if resp.StatusCode != 400 {
		t.Fatalf("bad leaf: %d", resp.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Field != "nodes[0].leaf" || !strings.Contains(e.Error, "unknown leaf scheduler") {
		t.Errorf("error response: %+v", e)
	}
	// Build-time failure (validates, but the trace file is missing) is
	// also the client's problem: 400, not 500.
	resp, _ = post(t, ts, "/v1/simulate",
		`{"nodes":[{"path":"/a","leaf":"sfq"}],"threads":[{"name":"t","leaf":"/a","program":{"kind":"trace","file":"/nonexistent"}}]}`)
	if resp.StatusCode != 400 {
		t.Errorf("build failure: %d", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, SweepWorkers: 2})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := fmt.Sprintf(`{
	  "name": "api",
	  "seeds": 2,
	  "base": %s,
	  "axes": [{"param": "weight", "target": "/be", "values": [1, 3]}]
	}`, scenarioJSON(42))
	resp1, body1 := post(t, ts, "/v1/sweep", spec)
	if resp1.StatusCode != 200 || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("sweep: %d %s", resp1.StatusCode, body1)
	}
	var r sweepResponse
	if err := json.Unmarshal(body1, &r); err != nil {
		t.Fatal(err)
	}
	if r.Report.Jobs != 4 || r.Report.Failed != 0 || len(r.Report.Aggregates) != 2 {
		t.Fatalf("report: jobs=%d failed=%d aggs=%d", r.Report.Jobs, r.Report.Failed, len(r.Report.Aggregates))
	}
	// Same spec again: cache hit, identical bytes, retrievable by key.
	resp2, body2 := post(t, ts, "/v1/sweep", spec)
	if resp2.Header.Get("X-Cache") != "hit" || !bytes.Equal(body1, body2) {
		t.Fatalf("sweep rerun: %q identical=%v", resp2.Header.Get("X-Cache"), bytes.Equal(body1, body2))
	}
	if resp3, body3 := get(t, ts, "/v1/jobs/"+r.Key); resp3.StatusCode != 200 || !bytes.Equal(body3, body1) {
		t.Errorf("sweep by key: %d", resp3.StatusCode)
	}
	// A bad axis is rejected up front with 400.
	resp4, _ := post(t, ts, "/v1/sweep", fmt.Sprintf(`{"base": %s, "axes": [{"param": "bogus", "values": [1]}]}`, scenarioJSON(1)))
	if resp4.StatusCode != 400 {
		t.Errorf("bad axis: %d", resp4.StatusCode)
	}
}

// TestAdmissionControl stubs execution with a blocking job: with 1 worker
// and a queue of 1, a third concurrent request must be shed with 429 and
// a Retry-After header, while admitted requests complete with 200.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		started <- struct{}{}
		<-release
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	results := make(chan int, 2)
	fire := func(seed int) {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(scenarioJSON(seed)))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	fire(1)
	<-started // worker now busy and the queue empty...
	fire(2)   // ...so this one is admitted to the queue
	waitFor(t, func() bool { return srv.pool.Depth() == 1 })

	// Queue full: this one is shed.
	resp, _ := post(t, ts, "/v1/simulate", scenarioJSON(3))
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed request: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	close(release)
	for i := 0; i < 2; i++ {
		if status := <-results; status != 200 {
			t.Errorf("admitted request got %d", status)
		}
	}
	if shed := srv.Snapshot().Shed; shed != 1 {
		t.Errorf("shed counter %d", shed)
	}
	srv.Drain()
}

// TestRetryAfterPerTenant is the regression test for the shed header: a
// 429's Retry-After must be derived from the shedding tenant's own
// backlog, not the global queue depth. With one worker pinned, a tenant
// shed at backlog 6 must be told to wait longer than a tenant shed at
// backlog 1.
func TestRetryAfterPerTenant(t *testing.T) {
	pol := &tenantsched.Policy{Tenants: map[string]tenantsched.TenantPolicy{
		"deep":    {Quota: 6},
		"shallow": {Quota: 1},
	}}
	srv := New(Config{Workers: 1, QueueDepth: 8, Policy: pol})
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		if first.CompareAndSwap(true, false) {
			// The first request completes in ~half a second, seeding the
			// queue's mean-service estimate the Retry-After math uses.
			time.Sleep(500 * time.Millisecond)
		} else {
			started <- struct{}{}
			<-release
		}
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := postTenant(t, ts, "/v1/simulate", "deep", "", scenarioJSON(1)); resp.StatusCode != 200 {
		t.Fatalf("seeding request: %d", resp.StatusCode)
	}
	results := make(chan int, 16)
	fire := func(tenant string, seed int) {
		go func() {
			resp, _ := postTenant(t, ts, "/v1/simulate", tenant, "", scenarioJSON(seed))
			results <- resp.StatusCode
		}()
	}
	fire("deep", 2) // occupies the worker
	<-started
	for seed := 3; seed <= 8; seed++ {
		fire("deep", seed) // fills deep's quota of 6
	}
	waitFor(t, func() bool { return srv.pool.Depth() == 6 })

	retryOf := func(tenant string, seed int) int {
		resp, body := postTenant(t, ts, "/v1/simulate", tenant, "", scenarioJSON(seed))
		if resp.StatusCode != 429 {
			t.Fatalf("%s over quota: %d %s", tenant, resp.StatusCode, body)
		}
		sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("%s Retry-After %q: %v", tenant, resp.Header.Get("Retry-After"), err)
		}
		return sec
	}
	deep := retryOf("deep", 9)
	fire("shallow", 10) // shallow's quota of 1
	waitFor(t, func() bool { return srv.pool.Depth() == 7 })
	shallow := retryOf("shallow", 11)

	// deep is shed at backlog 6 with a ~0.5 s mean: at least 3 s. shallow
	// is shed at backlog 1: at most 2 s even after its share halves. The
	// old global derivation answered a constant "1" for both.
	if deep <= shallow {
		t.Errorf("Retry-After deep(backlog 6)=%ds <= shallow(backlog 1)=%ds; not derived from tenant backlog", deep, shallow)
	}
	if deep < 3 {
		t.Errorf("deep Retry-After %ds, want >= 3s for backlog 6 at ~0.5s/request", deep)
	}
	if shallow > 2 {
		t.Errorf("shallow Retry-After %ds, want <= 2s for backlog 1", shallow)
	}
	close(release)
	for i := 0; i < 8; i++ {
		if status := <-results; status != 200 {
			t.Errorf("admitted request got %d", status)
		}
	}
	srv.Drain()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestDeadline: a job slower than the request timeout yields 504
// without wedging the worker pool.
func TestRequestDeadline(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2, RequestTimeout: 20 * time.Millisecond})
	release := make(chan struct{})
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		<-release
		return "d", nil, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := post(t, ts, "/v1/simulate", scenarioJSON(1))
	if resp.StatusCode != 504 {
		t.Fatalf("slow job: %d", resp.StatusCode)
	}
	close(release)
	srv.Drain()
	if got := srv.Snapshot().InFlight; got != 0 {
		t.Errorf("in-flight after drain: %d", got)
	}
}

// TestVerifyCacheDetectsDivergence: if execution stops matching the
// cached bytes (injected nondeterminism), the sampled verification on the
// next hit must count a failure.
func TestVerifyCacheDetectsDivergence(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2, VerifyFraction: 1})
	defer srv.Drain()
	calls := 0
	var mu sync.Mutex
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		return fmt.Sprintf("digest-%d", n), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post(t, ts, "/v1/simulate", scenarioJSON(1)) // miss: digest-1 cached
	post(t, ts, "/v1/simulate", scenarioJSON(1)) // hit: verify recomputes digest-2
	waitFor(t, func() bool {
		m := srv.Snapshot()
		return m.VerifyRuns == 1 && m.VerifyFailures == 1
	})
}

// TestJobKeyRejectsTraversal: with a spill directory configured, a job
// key that decodes to a relative path (r.PathValue decodes %2F) must be
// rejected before it can reach the cache's disk lookup — otherwise
// GET /v1/jobs/..%2Fsecret would read and serve arbitrary .json files.
func TestJobKeyRejectsTraversal(t *testing.T) {
	base := t.TempDir()
	if err := os.WriteFile(filepath.Join(base, "secret.json"), []byte(`{"stolen":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, QueueDepth: 2, CacheDir: filepath.Join(base, "cache")})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, key := range []string{
		"..%2Fsecret",
		"..%2F..%2Fetc%2Fcreds",
		"deadbeef",                           // too short
		strings.Repeat("Z", 64),              // right length, not hex
		strings.Repeat("a", 64)[:63] + "%2F", // separator smuggled into the last byte
	} {
		resp, body := get(t, ts, "/v1/jobs/"+key)
		if resp.StatusCode != 404 {
			t.Errorf("key %q: status %d (want 404), body %s", key, resp.StatusCode, body)
		}
		if bytes.Contains(body, []byte("stolen")) {
			t.Fatalf("key %q leaked file contents outside the cache dir", key)
		}
	}
}

// TestCoalescedMisses: two concurrent requests for the same uncached key
// run one simulation; the follower waits for the leader's result instead
// of taking a pool slot, and both get byte-identical 200s.
func TestCoalescedMisses(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	var executions atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		executions.Add(1)
		started <- struct{}{}
		<-release
		return "digest", map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan result, 2)
	fire := func() {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(scenarioJSON(1)))
			if err != nil {
				results <- result{status: -1}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("X-Cache"), b}
		}()
	}
	fire()
	<-started // leader is executing
	fire()    // same key while in flight: must coalesce, not re-execute
	waitFor(t, func() bool { return srv.Snapshot().Coalesced == 1 })
	close(release)

	caches := map[string]int{}
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != 200 {
			t.Fatalf("status %d", r.status)
		}
		caches[r.cache]++
		bodies = append(bodies, r.body)
	}
	if n := executions.Load(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	if caches["miss"] != 1 || caches["coalesced"] != 1 {
		t.Errorf("X-Cache counts: %v", caches)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("coalesced responses differ")
	}
	srv.Drain()
}

// TestInternalErrorIs500: a server-side fault (the sweep engine dying
// without a report) is 500, not a 400 blaming the request.
func TestInternalErrorIs500(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Drain()
	srv.runSweep = func(spec sweep.Spec, opt sweep.Options) (*sweep.Report, error) {
		return nil, errors.New("simulator exploded")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := fmt.Sprintf(`{"base": %s, "axes": [{"param": "weight", "target": "/be", "values": [1]}]}`, scenarioJSON(1))
	resp, body := post(t, ts, "/v1/sweep", spec)
	if resp.StatusCode != 500 {
		t.Errorf("internal fault: status %d (want 500), body %s", resp.StatusCode, body)
	}
}

// TestVerifyBounded: cache-hit responses return immediately while
// verification runs in the background, and the verification semaphore
// skips (not queues) samples arriving while one is already running.
func TestVerifyBounded(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, VerifyFraction: 1})
	var verifying atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		if verifying.Load() {
			entered <- struct{}{}
			<-release
		}
		return "d", map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post(t, ts, "/v1/simulate", scenarioJSON(1)) // miss: populate cache
	verifying.Store(true)

	// This hit samples a verification that blocks in the background; the
	// response itself must come back while it is still blocked.
	resp, _ := post(t, ts, "/v1/simulate", scenarioJSON(1))
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("hit during verification: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	<-entered // the verification is now occupying the only slot

	// Further sampled hits find the semaphore full and are skipped.
	post(t, ts, "/v1/simulate", scenarioJSON(1))
	waitFor(t, func() bool { return srv.Snapshot().VerifySkipped == 1 })

	close(release)
	srv.Drain() // waits for the in-flight verification
	m := srv.Snapshot()
	if m.VerifyRuns != 1 || m.VerifyFailures != 0 {
		t.Errorf("verify runs=%d failures=%d, want 1/0", m.VerifyRuns, m.VerifyFailures)
	}
}

func TestReadyzAndDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != 200 {
		t.Errorf("readyz %d", resp.StatusCode)
	}
	srv.SetReady(false)
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != 503 {
		t.Errorf("readyz while draining: %d", resp.StatusCode)
	}
	srv.Drain()
	// Work arriving after the drain is refused as unavailable, not queued.
	resp, _ := post(t, ts, "/v1/simulate", scenarioJSON(1))
	if resp.StatusCode != 503 {
		t.Errorf("post-drain request: %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{Workers: 3, QueueDepth: 5})
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post(t, ts, "/v1/simulate", scenarioJSON(1))
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Workers != 3 || m.QueueCapacity != 5 || !m.Ready {
		t.Errorf("metrics %+v", m)
	}
	if m.Endpoints["simulate"].Count != 1 || m.Endpoints["simulate"].LatencyMS.N != 1 {
		t.Errorf("endpoint stats %+v", m.Endpoints["simulate"])
	}
	if m.TasksDone != 1 || m.Cache.Misses != 1 {
		t.Errorf("tasks=%d cache=%+v", m.TasksDone, m.Cache)
	}
}

// TestConcurrentLoad is the acceptance scenario: 64 concurrent requests
// over 8 distinct scenarios against a queue of 16 — no 5xx ever, shed
// requests get 429 and succeed on retry, every scenario's responses are
// byte-identical, and the final drain leaves nothing in flight. Run under
// -race this also proves the serving layer shares no simulation state.
func TestConcurrentLoad(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		requests  = 64
		scenarios = 8
	)
	var (
		mu     sync.Mutex
		bodies = map[int][][]byte{}
		shed   int
	)
	var wg sync.WaitGroup
	errCh := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		scenario := i % scenarios
		go func() {
			defer wg.Done()
			for attempt := 0; attempt < 400; attempt++ {
				resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
					strings.NewReader(scenarioJSON(scenario+1)))
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				switch {
				case resp.StatusCode == 200:
					mu.Lock()
					bodies[scenario] = append(bodies[scenario], body)
					mu.Unlock()
					return
				case resp.StatusCode == 429:
					mu.Lock()
					shed++
					mu.Unlock()
					time.Sleep(5 * time.Millisecond)
				case resp.StatusCode >= 500:
					errCh <- fmt.Errorf("server error %d: %s", resp.StatusCode, body)
					return
				default:
					errCh <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
			errCh <- fmt.Errorf("scenario %d starved by shedding", scenario)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	for sc, bs := range bodies {
		if len(bs) != requests/scenarios {
			t.Errorf("scenario %d: %d responses", sc, len(bs))
		}
		for _, b := range bs {
			if !bytes.Equal(b, bs[0]) {
				t.Fatalf("scenario %d responses differ:\n%s\nvs\n%s", sc, b, bs[0])
			}
		}
	}

	m := srv.Snapshot()
	if int(m.Shed) != shed {
		t.Errorf("shed counter %d, observed %d 429s", m.Shed, shed)
	}
	// Each scenario simulated at least once; the rest were cache hits.
	if m.Cache.Misses < scenarios || m.Cache.Hits == 0 {
		t.Errorf("cache %+v", m.Cache)
	}

	// Graceful drain: nothing left queued or running afterwards.
	srv.Drain()
	m = srv.Snapshot()
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("after drain: in-flight=%d queued=%d", m.InFlight, m.QueueDepth)
	}
}
