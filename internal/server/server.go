// Package server implements hsfqd's serving layer: HTTP handlers that
// validate scenario and sweep requests through the simconfig
// Parse/Validate/Build pipeline, execute them on a shared bounded worker
// pool with queue-depth admission control and per-request deadlines, and
// serve repeated requests byte-identically from a content-addressed
// response cache.
//
// The cache is sound because the simulator is deterministic: a request's
// key is the SHA-256 of its canonical config and seed (sweep.JobKey), so
// two requests with the same key denote the same computation and must
// produce the same bytes. Config.VerifyFraction turns that argument into
// a runtime check by re-executing a sampled fraction of cache hits and
// comparing bytes.
//
// Admission control is load shedding, not backpressure: when the queue is
// full, new work is refused with 429 + Retry-After while admitted work
// keeps its latency, rather than every request degrading together.
//
// The worker pool's dispatch order is itself hierarchical SFQ
// (internal/tenantsched): requests are queued per tenant (X-Tenant
// header; header-less traffic is the "default" tenant) and dispatched by
// a weighted SFQ tree whose virtual time advances by measured request
// service time, so the daemon schedules its own serving traffic with the
// paper's algorithm. Admission quotas, shed decisions, and Retry-After
// estimates are per tenant; weights and quotas come from a JSON policy
// (Config.Policy, hot-swappable via SetPolicy on SIGHUP).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/tenantsched"
)

// maxRequestBytes bounds request bodies; a scenario or sweep spec is KBs.
const maxRequestBytes = 1 << 20

// Config parameterizes a Server.
type Config struct {
	// Workers is the execution pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth is the admission queue capacity; <= 0 means 64.
	QueueDepth int
	// SweepWorkers bounds parallelism inside one sweep request (a sweep
	// occupies one pool slot and fans out internally); <= 0 means Workers.
	SweepWorkers int
	// CacheEntries caps the in-memory result cache; <= 0 means 1024.
	CacheEntries int
	// CacheBytes caps the cache's total body bytes; <= 0 means 64 MiB.
	CacheBytes int64
	// CacheDir, when non-empty, spills evicted entries to disk and serves
	// them back on memory misses. Created if missing.
	CacheDir string
	// VerifyFraction in (0,1] re-executes that fraction of cache hits and
	// compares bytes, checking the determinism the cache relies on.
	VerifyFraction float64
	// MaxBatch caps the number of jobs one POST /v1/jobs claim may carry;
	// <= 0 means 256.
	MaxBatch int
	// RequestTimeout is the per-request deadline covering queue wait and
	// execution; <= 0 means 30 s.
	RequestTimeout time.Duration
	// CheckpointDir, when non-empty, names a sweep.Store: simulate and
	// sweep executions resume from stored run prefixes when a request
	// extends the horizon of a previously served run, and store their own
	// final states. Response bytes are unchanged by the store — resume
	// equivalence — so it composes with the result cache and the mesh.
	CheckpointDir string
	// Policy sets per-tenant weights, admission quotas, and API keys for
	// the tenant-scheduled worker pool; nil is the open zero policy
	// (every tenant at weight 1, quota QueueDepth), under which
	// header-less traffic behaves exactly like the pre-tenant FIFO.
	Policy *tenantsched.Policy
	// TraceBytes, when positive, attaches a tracestream.Broadcaster to
	// every simulate and batch-job execution and serves the streams at
	// GET /v1/trace/{key}; the value caps one recording's frame bytes
	// (the digest always covers the full run). 0 disables tracing, which
	// keeps executions on the plain path.
	TraceBytes int
	// TraceCacheBytes caps the total frame bytes of finished recordings
	// retained for replay; <= 0 means 32 MiB. Oldest recordings are
	// evicted first.
	TraceCacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server is the hsfqd HTTP service. It implements http.Handler; wire it
// into an http.Server to serve.
type Server struct {
	cfg   Config
	pool  *pool
	cache *Cache
	mux   *http.ServeMux
	ready atomic.Bool
	pol   atomic.Pointer[tenantsched.Policy]
	watch *watchHub

	simulateStats *endpointStats
	sweepStats    *endpointStats
	jobsStats     *endpointStats
	batchStats    *endpointStats

	tenantMu    sync.Mutex
	tenantStats map[string]*endpointStats

	shed      atomic.Int64
	coalesced atomic.Int64

	verifyRuns     atomic.Int64
	verifyFailures atomic.Int64
	verifySkipped  atomic.Int64
	verifyMu       sync.Mutex
	verifyRng      *rand.Rand
	verifySem      chan struct{}
	verifyWG       sync.WaitGroup

	// flights tracks in-progress computations by job key so concurrent
	// misses for the same key coalesce onto one execution.
	flightMu sync.Mutex
	flights  map[string]*flight

	// traces is the live/finished trace hub behind GET /v1/trace/{key};
	// nil when Config.TraceBytes is 0 (tracing disabled).
	traces     *traceHub
	traceStats *endpointStats
	diffStats  *endpointStats

	// streams counts each tenant's concurrent follow streams, capped by
	// the policy's streams settings.
	streamMu sync.Mutex
	streams  map[string]int

	// store is the checkpoint store (nil without Config.CheckpointDir);
	// traced executions contribute their final states through it too.
	store *sweep.Store

	// Seams for tests: the default paths run real simulations.
	execute         func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error)
	runSweep        func(spec sweep.Spec, opt sweep.Options) (*sweep.Report, error)
	executeListened func(cfg simconfig.Config, seed uint64, attach func(*simconfig.Simulation)) (string, map[string]float64, error)
}

// flight is one in-progress computation. Followers wait on done, then read
// the result fields (written exactly once, before done is closed).
type flight struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
}

// New builds a ready Server from cfg (zero values take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			log.Printf("server: cache dir %s: %v (disk spill disabled)", cfg.CacheDir, err)
			cfg.CacheDir = ""
		}
	}
	pol := cfg.Policy
	if pol == nil {
		pol = &tenantsched.Policy{}
	}
	s := &Server{
		cfg:           cfg,
		pool:          newPool(cfg.Workers, cfg.QueueDepth, pol),
		cache:         newCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheDir),
		watch:         newWatchHub(),
		simulateStats: newEndpointStats(),
		sweepStats:    newEndpointStats(),
		jobsStats:     newEndpointStats(),
		batchStats:    newEndpointStats(),
		traceStats:    newEndpointStats(),
		diffStats:     newEndpointStats(),
		tenantStats:   map[string]*endpointStats{},
		streams:       map[string]int{},
		verifyRng:     rand.New(rand.NewSource(1)),
		verifySem:     make(chan struct{}, 1),
		flights:       map[string]*flight{},
		execute:       sweep.ExecuteConfig,
		runSweep:      sweep.Run,
	}
	s.pol.Store(pol)
	if cfg.CheckpointDir != "" {
		if store, err := sweep.NewStore(cfg.CheckpointDir); err != nil {
			log.Printf("server: checkpoint dir %s: %v (checkpoint reuse disabled)", cfg.CheckpointDir, err)
		} else {
			s.store = store
			s.execute = func(c simconfig.Config, seed uint64) (string, map[string]float64, error) {
				digest, m, _, err := sweep.ExecuteConfigCheckpointed(c, seed, store)
				return digest, m, err
			}
			s.runSweep = func(spec sweep.Spec, opt sweep.Options) (*sweep.Report, error) {
				opt.CheckpointDir = cfg.CheckpointDir
				return sweep.Run(spec, opt)
			}
		}
	}
	// The listened path never resumes (a trace must cover the run from
	// tick zero) but still contributes checkpoints through the store.
	s.executeListened = func(c simconfig.Config, seed uint64, attach func(*simconfig.Simulation)) (string, map[string]float64, error) {
		return sweep.ExecuteConfigListened(c, seed, s.store, attach)
	}
	if cfg.TraceBytes > 0 {
		s.traces = newTraceHub(cfg.TraceCacheBytes)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.instrument(s.simulateStats, s.serveSimulate))
	mux.HandleFunc("POST /v1/sweep", s.instrument(s.sweepStats, s.serveSweep))
	mux.HandleFunc("GET /v1/jobs/{key}", s.instrument(s.jobsStats, s.serveJob))
	mux.HandleFunc("POST /v1/jobs", s.instrument(s.batchStats, s.serveJobsBatch))
	mux.HandleFunc("GET /v1/trace/{key}", s.instrument(s.traceStats, s.serveTrace))
	mux.HandleFunc("POST /v1/diff", s.instrument(s.diffStats, s.serveDiff))
	mux.HandleFunc("GET /healthz", s.serveHealthz)
	mux.HandleFunc("GET /readyz", s.serveReadyz)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	s.mux = mux
	s.ready.Store(true)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady flips the /readyz signal; shutdown flips it false first so
// load balancers stop routing before the listener closes. Going not-ready
// also ends every SSE watch stream (with a final "draining" status), so
// the HTTP server's Shutdown is not held open by long-lived streams.
func (s *Server) SetReady(ok bool) {
	s.ready.Store(ok)
	if ok {
		s.watch.reopen()
		if s.traces != nil {
			s.traces.reopen()
		}
	} else {
		s.watch.shutdown()
		if s.traces != nil {
			s.traces.shutdown()
		}
	}
}

// SetPolicy hot-swaps the tenant policy (SIGHUP reload): identity checks
// use it immediately, existing tenants take their new weights and quotas,
// and tenants first seen later are created under it. A nil policy resets
// to the open defaults.
func (s *Server) SetPolicy(p *tenantsched.Policy) {
	if p == nil {
		p = &tenantsched.Policy{}
	}
	s.pol.Store(p)
	s.pool.SetPolicy(p)
}

// Drain marks the server not ready, closes watch streams, stops pool
// admission, and waits for every queued and in-flight job, including
// background cache verifications. Call after the HTTP listener has
// stopped accepting requests; submissions racing the drain get 503.
func (s *Server) Drain() {
	s.ready.Store(false)
	s.watch.shutdown()
	if s.traces != nil {
		s.traces.shutdown()
	}
	s.pool.Close()
	s.verifyWG.Wait()
}

// instrument wraps a handler, resolving the request's tenant identity
// first (X-Tenant / X-API-Key against the current policy; identity
// failures never reach the handler) and recording count, errors, and wall
// latency both per endpoint and per tenant.
func (s *Server) instrument(st *endpointStats, fn func(http.ResponseWriter, *http.Request, string) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tenant, aerr := s.pol.Load().Identify(r.Header.Get("X-Tenant"), r.Header.Get("X-API-Key"))
		var status int
		if aerr != nil {
			status = writeError(w, aerr.Status, aerr)
		} else {
			status = fn(w, r, tenant)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		st.observe(ms, status >= 400)
		if aerr == nil {
			s.statsFor(tenant).observe(ms, status >= 400)
		}
	}
}

// statsFor returns (creating on first contact) a tenant's latency stats.
func (s *Server) statsFor(tenant string) *endpointStats {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	st, ok := s.tenantStats[tenant]
	if !ok {
		st = newEndpointStats()
		s.tenantStats[tenant] = st
	}
	return st
}

// simulateResponse is the body of POST /v1/simulate and GET /v1/jobs/{key}
// for scenario jobs. Marshaling is deterministic (struct field order;
// map keys sort), which is what makes the bodies cacheable byte-for-byte.
type simulateResponse struct {
	// Key is the request's content address, usable with GET /v1/jobs/{key}.
	Key string `json:"key"`
	// Digest is the SHA-256 of the simulation's canonical outcome.
	Digest string `json:"digest"`
	// Seed the simulation was instantiated at.
	Seed uint64 `json:"seed"`
	// Metrics are the per-job scalars (work totals, shares, frames, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// sweepResponse is the body of POST /v1/sweep.
type sweepResponse struct {
	Key    string        `json:"key"`
	Report *sweep.Report `json:"report"`
}

// errorResponse is every non-200 body. Field carries the JSON path of the
// offending config value when the error is a simconfig.FieldError.
type errorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// internalError marks a server-side fault (marshal failure, simulator
// crash) so compute answers 500 instead of blaming the request with 400.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

func (s *Server) serveSimulate(w http.ResponseWriter, r *http.Request, tenant string) int {
	cfg, err := simconfig.Parse(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	if err := cfg.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	key := sweep.JobKey(cfg, cfg.Seed)
	recompute := func() ([]byte, bool, error) {
		digest, m, err := s.executeJob(key, cfg, cfg.Seed)
		if err != nil {
			return nil, false, err
		}
		b, err := json.Marshal(simulateResponse{Key: key, Digest: digest, Seed: cfg.Seed, Metrics: m})
		if err != nil {
			return nil, false, &internalError{err}
		}
		return b, true, nil
	}
	return s.serveComputed(w, r, tenant, "simulate", key, recompute)
}

func (s *Server) serveSweep(w http.ResponseWriter, r *http.Request, tenant string) int {
	spec, err := sweep.ParseSpec(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	// Expand validates the whole grid up front, so a bad axis is a 400
	// here rather than a failed job later.
	if _, err := sweep.Expand(spec); err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	key := sweep.SweepKey(spec)
	recompute := func() ([]byte, bool, error) {
		rep, err := s.runSweep(spec, sweep.Options{Workers: s.cfg.SweepWorkers})
		if rep == nil {
			// The spec already expanded cleanly, so a reportless failure
			// is a server fault, not a request problem.
			if err == nil {
				err = errors.New("server: sweep returned no report")
			}
			return nil, false, &internalError{err}
		}
		// Job-level failures ride inside the report (the client sees
		// per-job errors); only a fully clean report is cached.
		b, merr := json.Marshal(sweepResponse{Key: key, Report: rep})
		if merr != nil {
			return nil, false, &internalError{merr}
		}
		return b, rep.Failed == 0, nil
	}
	return s.serveComputed(w, r, tenant, "sweep", key, recompute)
}

// jobsRequest is the body of POST /v1/jobs: a batch claim of independent
// simulation jobs, the transport unit of distributed sweep dispatch
// (cmd/hsfqmesh). Each job is a fully applied config plus the seed to
// instantiate it at; its content address is sweep.JobKey(config, seed),
// the same key space as POST /v1/simulate, so a job computed through
// either endpoint serves the other from cache.
type jobsRequest struct {
	Jobs []batchJob `json:"jobs"`
}

type batchJob struct {
	// ID correlates the outcome with the claim; opaque to the server.
	ID int `json:"id"`
	// Seed instantiates the config; 0 keeps the config's own seed.
	Seed   uint64           `json:"seed"`
	Config simconfig.Config `json:"config"`
}

type jobsResponse struct {
	Results []batchOutcome `json:"results"`
}

// batchOutcome mirrors simulateResponse plus the claim's correlation ID
// and a per-job error: one failing job fails alone, not the whole claim.
type batchOutcome struct {
	ID      int                `json:"id"`
	Key     string             `json:"key"`
	Seed    uint64             `json:"seed"`
	Digest  string             `json:"digest,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// serveJobsBatch answers a batch claim. The whole claim occupies one pool
// slot and fans out internally across SweepWorkers goroutines, exactly as
// a sweep request does, so admission control still counts claims rather
// than jobs; per-job results are served from or admitted to the shared
// content-addressed cache.
func (s *Server) serveJobsBatch(w http.ResponseWriter, r *http.Request, tenant string) int {
	var req jobsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("server: %w", err))
	}
	if len(req.Jobs) == 0 {
		return writeError(w, http.StatusBadRequest, errors.New("server: empty batch"))
	}
	if len(req.Jobs) > s.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: batch of %d jobs exceeds cap %d", len(req.Jobs), s.cfg.MaxBatch))
	}
	// Validate every config up front: a structurally bad job is the
	// client's 400, not a claim outcome.
	for i, j := range req.Jobs {
		if err := j.Config.Validate(); err != nil {
			return writeError(w, http.StatusBadRequest, fmt.Errorf("server: jobs[%d]: %w", i, err))
		}
	}
	compute := func() ([]byte, bool, error) {
		out := make([]batchOutcome, len(req.Jobs))
		workers := s.cfg.SweepWorkers
		if workers > len(req.Jobs) {
			workers = len(req.Jobs)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = s.runBatchJob(req.Jobs[i])
				}
			}()
		}
		for i := range req.Jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
		b, err := json.Marshal(jobsResponse{Results: out})
		if err != nil {
			return nil, false, &internalError{err}
		}
		// The batch body itself is not cached (claims are arbitrary
		// groupings); the per-job bodies were cached inside runBatchJob.
		return b, false, nil
	}
	body, _, status, err := s.compute(r, tenant, "batch", compute)
	if err != nil {
		return writeComputeError(w, status, err)
	}
	return writeResult(w, body, "batch")
}

// runBatchJob answers one claimed job: a cache hit by content address is
// decoded and re-labeled; a miss executes and populates the shared cache
// with exactly the body /v1/simulate would have stored for the same job.
func (s *Server) runBatchJob(j batchJob) batchOutcome {
	seed := j.Seed
	if seed == 0 {
		seed = j.Config.Seed
	}
	key := sweep.JobKey(j.Config, seed)
	out := batchOutcome{ID: j.ID, Key: key, Seed: seed}
	if body, ok := s.cache.Get(key); ok {
		var resp simulateResponse
		if err := json.Unmarshal(body, &resp); err == nil {
			out.Digest, out.Metrics = resp.Digest, resp.Metrics
			return out
		}
		// An undecodable cached body falls through to re-execution.
	}
	digest, m, err := s.executeJob(key, j.Config, seed)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Digest, out.Metrics = digest, m
	if b, err := json.Marshal(simulateResponse{Key: key, Digest: digest, Seed: seed, Metrics: m}); err == nil {
		s.cache.Put(key, b)
		s.watch.complete(key, b)
	}
	return out
}

// serveComputed is the shared hit-or-execute path: serve from cache
// (optionally verifying in the background), or run recompute on the pool
// under the request deadline and cache the result when recompute says it
// may. Concurrent misses for the same key coalesce: the first request
// (the leader) executes, later ones wait for its outcome instead of
// burning pool slots on identical work.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, tenant, class, key string, recompute func() ([]byte, bool, error)) int {
	if body, ok := s.cache.Get(key); ok {
		s.maybeVerify(key, body, recompute)
		return writeResult(w, body, "hit")
	}
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		return s.serveFollower(w, r, f)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	s.watch.announce(key, "queued")
	exec := func() ([]byte, bool, error) {
		s.watch.announce(key, "running")
		return recompute()
	}
	body, cacheable, status, err := s.compute(r, tenant, class, exec)
	if err == nil && cacheable {
		s.cache.Put(key, body)
	}
	// Publish before removing from the map, so a request either finds the
	// flight (and waits) or finds the cache already populated.
	f.body, f.status, f.err = body, status, err
	close(f.done)
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()

	if err != nil {
		s.watch.fail(key, err.Error())
		return writeComputeError(w, status, err)
	}
	s.watch.complete(key, body)
	return writeResult(w, body, "miss")
}

// serveFollower waits for a coalesced leader's outcome, bounded by this
// request's own deadline, and serves whatever the leader got.
func (s *Server) serveFollower(w http.ResponseWriter, r *http.Request, f *flight) int {
	s.coalesced.Add(1)
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case <-f.done:
	case <-r.Context().Done():
		return writeError(w, http.StatusGatewayTimeout, r.Context().Err())
	case <-timer.C:
		return writeError(w, http.StatusGatewayTimeout, context.DeadlineExceeded)
	}
	if f.err != nil {
		return writeComputeError(w, f.status, f.err)
	}
	return writeResult(w, f.body, "coalesced")
}

// writeComputeError writes a failed computation's status, adding
// Retry-After when the failure was load shedding. The retry estimate is
// the shedding tenant's own — derived in tenantsched from that tenant's
// backlog, weight share, and the observed mean service time — not the
// global queue depth, so a flooded tenant is told to back off for longer
// while a lightly loaded one may retry almost immediately.
func writeComputeError(w http.ResponseWriter, status int, err error) int {
	if status == http.StatusTooManyRequests {
		retry := "1"
		var se *tenantsched.ShedError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			retry = strconv.Itoa(int(se.RetryAfter / time.Second))
		}
		w.Header().Set("Retry-After", retry)
	}
	return writeError(w, status, err)
}

// compute runs fn on the worker pool under the tenant's scheduling class,
// bounded by the per-request deadline. The returned status is meaningful
// only when err is non-nil.
func (s *Server) compute(r *http.Request, tenant, class string, fn func() ([]byte, bool, error)) (body []byte, cacheable bool, status int, err error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	type out struct {
		body      []byte
		cacheable bool
		err       error
	}
	ch := make(chan out, 1) // buffered: a worker never blocks on an abandoned request
	submitErr := s.pool.Submit(tenant, class, func() {
		if err := ctx.Err(); err != nil {
			ch <- out{err: err} // request gave up while queued; skip the work
			return
		}
		b, c, err := fn()
		ch <- out{b, c, err}
	})
	switch {
	case errors.Is(submitErr, ErrQueueFull):
		s.shed.Add(1)
		return nil, false, http.StatusTooManyRequests, submitErr
	case errors.Is(submitErr, ErrDraining):
		return nil, false, http.StatusServiceUnavailable, submitErr
	case submitErr != nil:
		return nil, false, http.StatusInternalServerError, submitErr
	}
	select {
	case o := <-ch:
		if o.err != nil {
			var ie *internalError
			switch {
			case errors.As(o.err, &ie):
				return nil, false, http.StatusInternalServerError, o.err
			case ctx.Err() != nil:
				return nil, false, http.StatusGatewayTimeout, o.err
			default:
				// The config parsed and validated but failed to build —
				// a request-level problem, not a server fault.
				return nil, false, http.StatusBadRequest, o.err
			}
		}
		return o.body, o.cacheable, http.StatusOK, nil
	case <-ctx.Done():
		return nil, false, http.StatusGatewayTimeout, ctx.Err()
	}
}

// maybeVerify re-executes a sampled fraction of cache hits and compares
// bytes, counting any divergence. Verification runs in the background so
// the hit keeps its latency, outside pool admission so a full queue
// cannot starve the determinism check, and behind a one-slot semaphore so
// sampled hits can never pile up unbounded re-executions: when a
// verification is already running the sample is skipped and counted
// (verify_skipped) instead of queued.
func (s *Server) maybeVerify(key string, cached []byte, recompute func() ([]byte, bool, error)) {
	f := s.cfg.VerifyFraction
	if f <= 0 {
		return
	}
	if f < 1 {
		s.verifyMu.Lock()
		p := s.verifyRng.Float64()
		s.verifyMu.Unlock()
		if p >= f {
			return
		}
	}
	select {
	case s.verifySem <- struct{}{}:
	default:
		s.verifySkipped.Add(1)
		return
	}
	s.verifyWG.Add(1)
	go func() {
		defer func() {
			<-s.verifySem
			s.verifyWG.Done()
		}()
		s.verifyRuns.Add(1)
		b, _, err := recompute()
		if err != nil || !bytes.Equal(b, cached) {
			s.verifyFailures.Add(1)
			log.Printf("server: cache verification FAILED for %s (err=%v): cached bytes differ from re-execution", key, err)
		}
	}()
}

// jobKeyRE matches the only keys the server ever issues: 64-char
// lowercase-hex SHA-256 digests (sweep.JobKey/SweepKey). Anything else —
// in particular traversal attempts like "..%2F..%2Fetc%2Fcreds", which
// r.PathValue decodes to path segments — must never reach the cache or
// its spill directory.
var jobKeyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, tenant string) int {
	key := r.PathValue("key")
	if !jobKeyRE.MatchString(key) {
		return writeError(w, http.StatusNotFound, errors.New("server: malformed job key (want 64-char hex digest)"))
	}
	if r.URL.Query().Get("watch") != "" {
		return s.serveJobWatch(w, r, key)
	}
	if body, ok := s.cache.Get(key); ok {
		return writeResult(w, body, "hit")
	}
	return writeError(w, http.StatusNotFound, errors.New("server: unknown job (never submitted, or evicted without a spill directory)"))
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// Metrics is the /metrics document: queue and pool state, shed and
// verification counters, cache counters, and per-endpoint latency
// histograms.
type Metrics struct {
	Workers           int                      `json:"workers"`
	QueueDepth        int                      `json:"queue_depth"`
	QueueCapacity     int                      `json:"queue_capacity"`
	InFlight          int64                    `json:"in_flight"`
	WorkerUtilization float64                  `json:"worker_utilization"`
	TasksDone         int64                    `json:"tasks_done"`
	Shed              int64                    `json:"shed"`
	Coalesced         int64                    `json:"coalesced"`
	Ready             bool                     `json:"ready"`
	VerifyRuns        int64                    `json:"verify_runs"`
	VerifyFailures    int64                    `json:"verify_failures"`
	VerifySkipped     int64                    `json:"verify_skipped"`
	Cache             CacheStats               `json:"cache"`
	Endpoints         map[string]EndpointStats `json:"endpoints"`
	// Trace reports the live-trace hub's state; omitted when tracing is
	// disabled.
	Trace *TraceMetrics `json:"trace,omitempty"`
	// VirtualTime is the scheduling tree's global virtual time
	// (nanoseconds of service over weight at the root).
	VirtualTime float64 `json:"virtual_time"`
	// Tenants holds per-tenant scheduling state and latency; keys are
	// tenant names (header-less traffic appears as "default").
	Tenants map[string]TenantMetrics `json:"tenants"`
}

// TraceMetrics is the /metrics entry for the live-trace hub.
type TraceMetrics struct {
	// Live is the number of executions currently streaming.
	Live int `json:"live"`
	// Finished is the number of retained finished recordings; Bytes their
	// total frame bytes; Evicted how many recordings the byte cap pushed
	// out.
	Finished int   `json:"finished"`
	Bytes    int64 `json:"bytes"`
	Evicted  int64 `json:"evicted"`
	// Streams is the number of open follow streams across all tenants.
	Streams int `json:"streams"`
}

// TenantMetrics is one tenant's /metrics entry: the scheduling queue's
// counters and tags plus request latency quantiles from the shared
// histogram machinery.
type TenantMetrics struct {
	tenantsched.TenantSnapshot
	Requests EndpointStats `json:"requests"`
}

// Snapshot collects the current Metrics.
func (s *Server) Snapshot() Metrics {
	inFlight := s.pool.InFlight()
	snaps, vt := s.pool.Queue().Snapshot()
	tenants := make(map[string]TenantMetrics, len(snaps))
	s.tenantMu.Lock()
	for name, snap := range snaps {
		tm := TenantMetrics{TenantSnapshot: snap}
		if st, ok := s.tenantStats[name]; ok {
			tm.Requests = st.snapshot()
		}
		tenants[name] = tm
	}
	// Tenants whose requests never reached the pool (all cache hits, or
	// all identity/validation failures) still show up with latency stats.
	for name, st := range s.tenantStats {
		if _, ok := tenants[name]; !ok {
			tenants[name] = TenantMetrics{Requests: st.snapshot()}
		}
	}
	s.tenantMu.Unlock()
	var tm *TraceMetrics
	if s.traces != nil {
		live, done, bytes := s.traces.counts()
		s.streamMu.Lock()
		open := 0
		for _, n := range s.streams {
			open += n
		}
		s.streamMu.Unlock()
		tm = &TraceMetrics{
			Live: live, Finished: done, Bytes: bytes,
			Evicted: s.traces.evicted.Load(), Streams: open,
		}
	}
	return Metrics{
		Workers:           s.pool.Workers(),
		QueueDepth:        s.pool.Depth(),
		QueueCapacity:     s.pool.Capacity(),
		InFlight:          inFlight,
		WorkerUtilization: float64(inFlight) / float64(s.pool.Workers()),
		TasksDone:         s.pool.Done(),
		Shed:              s.shed.Load(),
		Coalesced:         s.coalesced.Load(),
		Ready:             s.ready.Load(),
		VerifyRuns:        s.verifyRuns.Load(),
		VerifyFailures:    s.verifyFailures.Load(),
		VerifySkipped:     s.verifySkipped.Load(),
		Cache:             s.cache.Stats(),
		Endpoints: map[string]EndpointStats{
			"simulate":   s.simulateStats.snapshot(),
			"sweep":      s.sweepStats.snapshot(),
			"jobs":       s.jobsStats.snapshot(),
			"jobs_batch": s.batchStats.snapshot(),
			"trace":      s.traceStats.snapshot(),
			"diff":       s.diffStats.snapshot(),
		},
		Trace:       tm,
		VirtualTime: vt,
		Tenants:     tenants,
	}
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(b, '\n'))
}

// writeResult serves a computed or cached body; hitOrMiss lands in the
// X-Cache header so clients and load tests can see cache behaviour.
func writeResult(w http.ResponseWriter, body []byte, hitOrMiss string) int {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", hitOrMiss)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return http.StatusOK
}

func writeError(w http.ResponseWriter, status int, err error) int {
	resp := errorResponse{Error: err.Error()}
	var fe *simconfig.FieldError
	if errors.As(err, &fe) {
		resp.Field = fe.Field
	}
	b, merr := json.Marshal(resp)
	if merr != nil {
		b = []byte(`{"error":"internal"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
	return status
}
